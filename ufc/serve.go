package ufc

import (
	"repro/internal/controlplane"
)

// Online serving layer, re-exported from internal/controlplane: a
// background pipeline re-solves successive time slots on a rolling
// horizon (warm-started from the previous slot's converged iterate) and
// publishes each result as an immutable routing snapshot. Request-path
// reads are a single atomic pointer load — no locks, no allocation —
// so decision latency is independent of solve time.
type (
	// ControlPlane is the rolling-horizon solve pipeline. Construct with
	// NewControlPlane, start with Run (or drive slots manually with
	// RunSlot), answer requests with Decide, and stop with Stop.
	ControlPlane = controlplane.Pipeline
	// ServeConfig configures a ControlPlane: the per-slot instance
	// source, solver options, warm-start policy, memoization cache size
	// and quantum, slot pacing, and optional telemetry registry.
	ServeConfig = controlplane.Config
	// ServeReport aggregates a ControlPlane's solve and cache counters.
	ServeReport = controlplane.Report
	// RouteSnapshot is one published slot's immutable routing table.
	RouteSnapshot = controlplane.Snapshot
	// RouteSolveInfo describes how a snapshot's slot was solved (warm or
	// cold, iterations, convergence, cache provenance).
	RouteSolveInfo = controlplane.SolveInfo
	// ServeStats is the decoded statistics vector a serving hub exposes
	// to lookup clients.
	ServeStats = controlplane.Stats
)

// NewControlPlane builds an idle rolling-horizon control plane; the
// caller starts it with Run. The first slot solves synchronously inside
// Run, so a snapshot is already published when Run returns.
func NewControlPlane(cfg ServeConfig) (*ControlPlane, error) {
	return controlplane.New(cfg)
}
