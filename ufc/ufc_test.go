package ufc_test

import (
	"bytes"
	"context"
	"math"
	"testing"

	"repro/ufc"
)

func buildTwoDCInstance(t *testing.T) *ufc.Instance {
	t.Helper()
	inst, err := ufc.NewBuilder().
		Datacenter("San Jose", 37.34, -121.89, 2000, 95, 0.30).
		Datacenter("Dallas", 32.78, -96.80, 2000, 30, 0.55).
		FrontEnd("Chicago", 41.88, -87.63, 900).
		FrontEnd("Seattle", 47.61, -122.33, 700).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestBuilderAndSolve(t *testing.T) {
	inst := buildTwoDCInstance(t)
	alloc, bd, stats, err := ufc.Solve(context.Background(), inst, ufc.Options{})
	if err != nil {
		t.Fatalf("solve: %v (iters %d)", err, stats.Iterations)
	}
	if !ufc.CheckFeasibility(inst, alloc).Ok(1e-2 * 1600) {
		t.Error("infeasible allocation")
	}
	if bd.DemandMWh <= 0 || bd.AvgLatencySec <= 0 {
		t.Errorf("degenerate breakdown: %+v", bd)
	}
}

func TestBuilderValidation(t *testing.T) {
	if _, err := ufc.NewBuilder().Build(); err == nil {
		t.Error("empty builder accepted")
	}
	if _, err := ufc.NewBuilder().Utility(nil).Build(); err == nil {
		t.Error("nil utility accepted")
	}
	// Overloaded cloud.
	_, err := ufc.NewBuilder().
		Datacenter("X", 0, 0, 10, 40, 0.5).
		FrontEnd("Y", 1, 1, 100).
		Build()
	if err == nil {
		t.Error("overload accepted")
	}
}

func TestBuilderCustomKnobs(t *testing.T) {
	inst, err := ufc.NewBuilder().
		FuelCellPrice(50).
		CarbonTax(100).
		Weight(5).
		Utility(ufc.LinearUtility{}).
		Datacenter("A", 10, 10, 1000, 60, 0.4).
		FrontEnd("B", 11, 11, 400).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if inst.FuelCellPriceUSD != 50 || inst.WeightW != 5 {
		t.Error("knobs not applied")
	}
	if inst.EmissionCost[0].(ufc.LinearTax).Rate != 100 {
		t.Error("carbon tax not applied")
	}
}

func TestStrategiesViaFacade(t *testing.T) {
	inst := buildTwoDCInstance(t)
	var ufcVals []float64
	for _, s := range []ufc.Strategy{ufc.Hybrid, ufc.GridOnly, ufc.FuelCellOnly} {
		_, bd, _, err := ufc.Solve(context.Background(), inst, ufc.Options{Strategy: s})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		ufcVals = append(ufcVals, bd.UFC)
	}
	tol := 1e-3 * (1 + math.Abs(ufcVals[0]))
	if ufcVals[0] < ufcVals[1]-tol || ufcVals[0] < ufcVals[2]-tol {
		t.Errorf("hybrid %g must dominate grid %g and fuel cell %g",
			ufcVals[0], ufcVals[1], ufcVals[2])
	}
}

func TestSolveDistributedMatchesSolve(t *testing.T) {
	inst := buildTwoDCInstance(t)
	_, bdSeq, _, err := ufc.Solve(context.Background(), inst, ufc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, bdDist, _, err := ufc.SolveDistributed(context.Background(), inst, ufc.Options{}, ufc.DistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if bdSeq.UFC != bdDist.UFC {
		t.Errorf("distributed UFC %v != sequential %v", bdDist.UFC, bdSeq.UFC)
	}
}

func TestImprovementFacade(t *testing.T) {
	x := ufc.Breakdown{UFC: -10}
	y := ufc.Breakdown{UFC: -20}
	if got := ufc.Improvement(x, y); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("improvement = %g", got)
	}
}

func TestScenarioFacade(t *testing.T) {
	cfg := ufc.DefaultScenarioConfig()
	cfg.Scale = 0.02
	cfg.Hours = 6
	sc, err := ufc.NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Cloud.N() != 4 {
		t.Fatalf("N = %d", sc.Cloud.N())
	}
	w, err := ufc.RunWeekComparison(context.Background(), cfg, ufc.Options{MaxIterations: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Hybrid) != 6 {
		t.Fatalf("hours = %d", len(w.Hybrid))
	}
}

func TestExtensionFacades(t *testing.T) {
	hw, err := ufc.NewHoltWinters(0.4, 0.05, 0.3, 24)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, 24*6)
	for i := range values {
		values[i] = 100 + 40*math.Sin(2*math.Pi*float64(i%24)/24)
	}
	acc, err := ufc.EvaluatePredictor(hw, values, 48)
	if err != nil {
		t.Fatal(err)
	}
	if acc.MAPE > 0.05 {
		t.Errorf("facade predictor MAPE %g", acc.MAPE)
	}

	inst := buildTwoDCInstance(t)
	var buf bytes.Buffer
	if err := ufc.WriteInstance(&buf, inst); err != nil {
		t.Fatal(err)
	}
	got, err := ufc.ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cloud.N() != inst.Cloud.N() {
		t.Error("round trip lost topology")
	}

	sched, err := ufc.OptimizeRamp(ufc.RampConfig{
		CapMW: 2, RampMW: 0.5, FuelCellPriceUSD: 80,
		PriceUSD:     []float64{50, 120, 120, 50},
		CarbonRate:   []float64{0.5, 0.5, 0.5, 0.5},
		EmissionCost: ufc.LinearTax{Rate: 25},
	}, []float64{1.5, 1.5, 1.5, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.MuMW) != 4 {
		t.Error("ramp schedule shape wrong")
	}
}
