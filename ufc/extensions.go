package ufc

import (
	"io"

	"repro/internal/codec"
	"repro/internal/forecast"
	"repro/internal/ramp"
)

// Forecasting re-exports: the arrival predictors the paper's system model
// assumes (§II-A).
type (
	// Predictor produces one-step-ahead arrival forecasts.
	Predictor = forecast.Predictor
	// ForecastAccuracy summarizes one-step-ahead errors.
	ForecastAccuracy = forecast.Accuracy
)

// NewHoltWinters builds an additive Holt–Winters predictor (level, trend
// and seasonal smoothing factors in (0, 1); period in slots, e.g. 24).
func NewHoltWinters(alpha, beta, gamma float64, period int) (Predictor, error) {
	return forecast.NewHoltWinters(alpha, beta, gamma, period)
}

// NewEWMA builds a simple exponential-smoothing predictor.
func NewEWMA(alpha float64) (Predictor, error) { return forecast.NewEWMA(alpha) }

// NewSeasonalNaive builds a predictor repeating the value one season ago.
func NewSeasonalNaive(period int) (Predictor, error) { return forecast.NewSeasonalNaive(period) }

// EvaluatePredictor runs the predictor through a series and reports
// one-step-ahead accuracy, skipping the first warmup forecasts.
func EvaluatePredictor(p Predictor, values []float64, warmup int) (ForecastAccuracy, error) {
	return forecast.Evaluate(p, values, warmup)
}

// Ramp-scheduling re-exports: the load-following extension relaxing the
// paper's perfect-tunability assumption.
type (
	// RampConfig describes a datacenter's fuel-cell scheduling problem.
	RampConfig = ramp.Config
	// RampSchedule is an optimized output trajectory.
	RampSchedule = ramp.Schedule
)

// OptimizeRamp schedules a fuel-cell trajectory under a ramp-rate limit.
func OptimizeRamp(cfg RampConfig, demandMW []float64) (*RampSchedule, error) {
	return ramp.Optimize(cfg, demandMW)
}

// UnconstrainedRamp is the per-slot greedy optimum (infinite ramp rate).
func UnconstrainedRamp(cfg RampConfig, demandMW []float64) (*RampSchedule, error) {
	return ramp.Unconstrained(cfg, demandMW)
}

// WriteInstance serializes an instance as JSON (the format consumed by
// cmd/ufcnode).
func WriteInstance(w io.Writer, inst *Instance) error { return codec.EncodeInstance(w, inst) }

// ReadInstance parses an instance previously written with WriteInstance.
func ReadInstance(r io.Reader) (*Instance, error) { return codec.DecodeInstance(r) }
