package ufc_test

import (
	"context"
	"fmt"
	"log"
	"math"
	"testing"

	"repro/ufc"
)

// ExampleSolve shows the minimal end-to-end use of the library: build a
// two-datacenter cloud, maximize UFC for one slot, and read the result.
func ExampleSolve() {
	inst, err := ufc.NewBuilder().
		Datacenter("Cheap&Dirty", 40.0, -100.0, 10000, 30, 0.80).
		Datacenter("Pricey&Clean", 40.0, -80.0, 10000, 95, 0.15).
		FrontEnd("Metro", 40.0, -90.0, 8000).
		FuelCellPrice(80).
		CarbonTax(25).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	_, bd, stats, err := ufc.Solve(context.Background(), inst, ufc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("converged:", stats.Converged)
	fmt.Println("fuel cells used:", bd.FuelCellMWh > 0)
	// Output:
	// converged: true
	// fuel cells used: true
}

// ExampleImprovement computes the paper's I_hg metric from two strategy
// runs.
func ExampleImprovement() {
	hybrid := ufc.Breakdown{UFC: -80}
	grid := ufc.Breakdown{UFC: -100}
	fmt.Printf("I_hg = %.0f%%\n", ufc.Improvement(hybrid, grid)*100)
	// Output:
	// I_hg = 20%
}

func TestFacadeSweeps(t *testing.T) {
	cfg := ufc.DefaultScenarioConfig()
	cfg.Scale = 0.02
	cfg.Hours = 6
	opts := ufc.Options{MaxIterations: 4000}
	p, err := ufc.SweepFuelCellPrice(context.Background(), cfg, opts, []float64{25, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rows) != 2 || p.Rows[0].AvgUtilization < p.Rows[1].AvgUtilization {
		t.Errorf("price sweep shape wrong: %+v", p.Rows)
	}
	c, err := ufc.SweepCarbonTax(context.Background(), cfg, opts, []float64{0, 150})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Rows) != 2 || c.Rows[1].AvgUtilization < c.Rows[0].AvgUtilization-1e-9 {
		t.Errorf("tax sweep shape wrong: %+v", c.Rows)
	}
}

func TestFacadeHelpers(t *testing.T) {
	// Evaluate + NewCloud + DefaultPowerModel.
	dc := ufc.Datacenter{
		Location: ufc.Location{Name: "A", Lat: 10, Lon: 10},
		Servers:  1000,
		Power:    ufc.DefaultPowerModel(),
	}.FullFuelCell()
	dcs := []ufc.Datacenter{dc}
	fes := []ufc.FrontEnd{{Location: ufc.Location{Name: "B", Lat: 11, Lon: 11}}}
	cloud, err := ufc.NewCloud(dcs, fes)
	if err != nil {
		t.Fatal(err)
	}
	stepped, err := ufc.NewSteppedTax([]float64{2}, []float64{10, 50})
	if err != nil {
		t.Fatal(err)
	}
	inst := &ufc.Instance{
		Cloud:            cloud,
		Arrivals:         []float64{500},
		PriceUSD:         []float64{60},
		FuelCellPriceUSD: 80,
		CarbonRate:       []float64{0.5},
		EmissionCost:     []ufc.CostFunc{stepped},
		Utility:          ufc.QuadraticUtility{},
		WeightW:          10,
	}
	alloc, _, _, err := ufc.Solve(context.Background(), inst, ufc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bd := ufc.Evaluate(inst, alloc)
	if bd.DemandMWh <= 0 {
		t.Error("evaluate broken")
	}

	// Builder knobs: Power and RightSizing.
	inst2, err := ufc.NewBuilder().
		Power(ufc.PowerModel{IdleW: 90, PeakW: 210, PUE: 1.3}).
		RightSizing().
		Datacenter("C", 10, 10, 1000, 50, 0.5).
		FrontEnd("D", 11, 11, 400).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if !inst2.RightSizing {
		t.Error("RightSizing not applied")
	}
	if inst2.Cloud.Datacenters[0].Power.PUE != 1.3 {
		t.Error("Power not applied")
	}

	// Predictor constructors.
	if _, err := ufc.NewEWMA(0.5); err != nil {
		t.Error(err)
	}
	if _, err := ufc.NewSeasonalNaive(24); err != nil {
		t.Error(err)
	}

	// UnconstrainedRamp facade.
	sched, err := ufc.UnconstrainedRamp(ufc.RampConfig{
		CapMW: 1, FuelCellPriceUSD: 80,
		PriceUSD: []float64{120}, CarbonRate: []float64{0.4},
		EmissionCost: ufc.LinearTax{Rate: 25},
	}, []float64{0.8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sched.MuMW[0]-0.8) > 1e-9 {
		t.Errorf("expensive grid hour should use fuel cells: %v", sched.MuMW)
	}
}
