// Package ufc is the public API of the repository: a library for studying
// fuel-cell generation in geo-distributed cloud services, reproducing
// "Fuel Cell Generation in Geo-Distributed Cloud Services: A Quantitative
// Study" (ICDCS 2014).
//
// The library models a cloud of N geo-distributed datacenters (each with a
// fuel-cell installation) fed by M front-end proxies, defines the UFC
// index — the operator's combined satisfaction from workload latency,
// energy cost and carbon emission — and maximizes it by jointly choosing
// per-datacenter fuel-cell output and geographic request routing with the
// paper's distributed 4-block ADM-G algorithm.
//
// Quick start:
//
//	inst, err := ufc.NewBuilder().
//		Datacenter("San Jose", 37.34, -121.89, 20000, 95, 0.30).
//		Datacenter("Dallas", 32.78, -96.80, 20000, 35, 0.55).
//		FrontEnd("Chicago", 41.88, -87.63, 12000).
//		Build()
//	alloc, breakdown, stats, err := ufc.Solve(ctx, inst, ufc.Options{})
//
// # Contexts and deprecation
//
// Every solving entry point is context-first: Solve, SolveDistributed,
// RunDistributed, RunWeekComparison, SweepFuelCellPrice and SweepCarbonTax
// all take a context.Context as their first argument, checked once per
// ADM-G iteration (no allocation), so callers can cancel or deadline-bound
// any solve. The pre-context signatures survive as thin deprecated
// wrappers named *Background (SolveBackground, SolveDistributedBackground,
// …) that pass context.Background; migrate by adding a ctx argument and
// dropping the suffix. SolveDistributed's old positional maxDelay is now
// DistOptions.MaxDelay.
//
// See examples/ for runnable programs and cmd/experiments for the full
// reproduction of the paper's tables and figures.
package ufc

import (
	"context"
	"errors"
	"time"

	"repro/internal/carbon"
	"repro/internal/core"
	"repro/internal/distsim"
	"repro/internal/model"
	"repro/internal/utility"
)

// Core problem types, re-exported from the implementation packages.
type (
	// Instance is one time slot of the UFC maximization problem.
	Instance = core.Instance
	// Allocation is a joint routing and power decision.
	Allocation = core.Allocation
	// Breakdown decomposes the UFC of an allocation.
	Breakdown = core.Breakdown
	// Options configures the ADM-G solver.
	Options = core.Options
	// Stats reports solver behaviour.
	Stats = core.Stats
	// Strategy selects the allowed energy sources.
	Strategy = core.Strategy
	// FeasibilityReport quantifies constraint violations.
	FeasibilityReport = core.FeasibilityReport

	// Cloud is the static topology.
	Cloud = model.Cloud
	// Datacenter is a back-end site.
	Datacenter = model.Datacenter
	// FrontEnd is a front-end proxy server.
	FrontEnd = model.FrontEnd
	// Location is a point on Earth.
	Location = model.Location
	// PowerModel is the per-server power characterization.
	PowerModel = model.PowerModel

	// CostFunc is an emission cost function V_j.
	CostFunc = carbon.CostFunc
	// LinearTax is a flat carbon tax.
	LinearTax = carbon.LinearTax
	// CapAndTrade is a permit-based emission cost.
	CapAndTrade = carbon.CapAndTrade
	// SteppedTax is a progressive piecewise-linear tax.
	SteppedTax = carbon.SteppedTax
	// QuadraticCost is an offset program with growing marginal price.
	QuadraticCost = carbon.QuadraticCost

	// UtilityFunc is a latency-utility function U.
	UtilityFunc = utility.Func
	// QuadraticUtility is the paper's Eq. (2) utility.
	QuadraticUtility = utility.Quadratic
	// LinearUtility decreases linearly with latency-weighted traffic.
	LinearUtility = utility.Linear
	// ExponentialUtility punishes long latencies sharply.
	ExponentialUtility = utility.Exponential

	// Resilience configures the hardened distributed protocol: retry
	// backoff, degrade deadlines, staleness cap and liveness thresholds.
	Resilience = distsim.Resilience
	// FaultPlan is a seeded, deterministic chaos schedule applied to the
	// distributed transport (drops, duplicates, delays, partitions,
	// crashes).
	FaultPlan = distsim.FaultPlan
	// LinkFault is one per-link fault rule of a FaultPlan.
	LinkFault = distsim.LinkFault
	// Partition isolates agents for an iteration window.
	Partition = distsim.Partition
	// Crash silences an agent from an iteration onward.
	Crash = distsim.Crash
	// FaultStats counts the faults a plan actually injected.
	FaultStats = distsim.FaultStats
	// Degradation reports how a resilient distributed run deviated from
	// fault-free operation.
	Degradation = distsim.Degradation
	// DistributedResult is the full outcome of a distributed run,
	// including any Degradation.
	DistributedResult = distsim.Result
)

// Strategies.
const (
	// Hybrid coordinates grid power with fuel cells (the paper's
	// proposal).
	Hybrid = core.Hybrid
	// GridOnly forbids fuel cells.
	GridOnly = core.GridOnly
	// FuelCellOnly forbids grid power.
	FuelCellOnly = core.FuelCellOnly
)

// Solve maximizes UFC for the instance with the distributed 4-block ADM-G
// algorithm (run in-process) and returns a feasible allocation, its UFC
// breakdown and solver statistics. ctx is checked once per iteration — a
// cancelled or expired context aborts the solve with its error.
func Solve(ctx context.Context, inst *Instance, opts Options) (*Allocation, Breakdown, *Stats, error) {
	return core.SolveContext(ctx, inst, opts)
}

// SolveBackground is Solve with context.Background.
//
// Deprecated: use Solve with an explicit context.
func SolveBackground(inst *Instance, opts Options) (*Allocation, Breakdown, *Stats, error) {
	return Solve(context.Background(), inst, opts) //ufc:ctx deprecated shim: the caller chose the pre-context API and owns the root
}

// Evaluate computes the UFC breakdown of an arbitrary allocation.
func Evaluate(inst *Instance, alloc *Allocation) Breakdown {
	return core.Evaluate(inst, alloc)
}

// CheckFeasibility measures an allocation's constraint violations.
func CheckFeasibility(inst *Instance, alloc *Allocation) FeasibilityReport {
	return core.CheckFeasibility(inst, alloc)
}

// Improvement returns the relative UFC improvement of x over y (the
// paper's I_hg / I_hf / I_fg metrics).
func Improvement(x, y Breakdown) float64 { return core.Improvement(x, y) }

// NewCloud builds a topology from datacenters and front-ends.
func NewCloud(dcs []Datacenter, fes []FrontEnd) (*Cloud, error) {
	return model.NewCloud(dcs, fes)
}

// DefaultPowerModel is the paper's server power model (100 W idle, 200 W
// peak, PUE 1.2).
func DefaultPowerModel() PowerModel { return model.DefaultPowerModel() }

// NewSteppedTax validates and builds a progressive piecewise-linear carbon
// tax (rates must be non-decreasing for convexity).
func NewSteppedTax(thresholds, rates []float64) (SteppedTax, error) {
	return carbon.NewSteppedTax(thresholds, rates)
}

// Transport choices for DistOptions.
const (
	// TransportChan runs the protocol over the in-memory channel
	// transport (the default).
	TransportChan = "chan"
	// TransportTCP pushes every message through a real TCP hub speaking
	// the binary wire codec; with an empty HubAddr a loopback hub is spun
	// up for the run and torn down afterwards.
	TransportTCP = "tcp"
)

// WireSecurity configures transport security for TransportTCP runs and
// hub listeners: optional TLS (mutual when certificate verification is
// configured on both sides), a shared auth token carried in the v2
// handshake, and wire-version pinning. The zero value is the legacy
// plaintext v1 wire.
type WireSecurity = distsim.SecurityConfig

// Wire protocol versions for WireSecurity.WireVersion.
const (
	// WireVersionAuto negotiates: v1 for a plain dial, v2 when TLS or a
	// token demands it.
	WireVersionAuto = distsim.WireVersionAuto
	// WireVersion1 pins the legacy plaintext framing (no handshake bytes).
	WireVersion1 = distsim.WireVersion1
	// WireVersion2 pins the versioned handshake.
	WireVersion2 = distsim.WireVersion2
)

// HubConfig configures a standalone hub started with ListenHub.
type HubConfig = distsim.ListenConfig

// ListenHub starts a TCP hub (optionally secured, optionally a serving
// control plane via cfg.Decider) that distributed runs and lookup
// clients connect to. Close the returned hub to stop it.
func ListenHub(ctx context.Context, cfg HubConfig) (*distsim.TCPHub, error) {
	return distsim.Listen(ctx, cfg)
}

// DistOptions configures a distributed run beyond the solver options. The
// zero value reproduces the historical behaviour: in-memory transport, no
// injected delay, fail-fast protocol, no faults.
type DistOptions struct {
	// Transport selects TransportChan (default) or TransportTCP.
	Transport string
	// HubAddr is the TCP hub to connect to (TransportTCP only). Empty
	// spins up a private loopback hub for the duration of the run.
	HubAddr string
	// Seed drives the in-memory transport's delay/reordering generator
	// (0 uses seed 1, the historical default).
	Seed int64
	// MaxDelay bounds the in-memory transport's injected uniform delivery
	// delay; zero disables delays (TransportChan only).
	MaxDelay time.Duration
	// Timeout bounds each message wait of the legacy fail-fast protocol
	// (default 30s). Ignored when Resilience is set.
	Timeout time.Duration
	// HeartbeatInterval enables hub heartbeats at this period
	// (TransportTCP only); zero disables them.
	HeartbeatInterval time.Duration
	// HeartbeatMiss is the missed-heartbeat tolerance before the link is
	// declared dead (default 3; TransportTCP only).
	HeartbeatMiss int
	// Resilience, when non-nil, runs the hardened protocol: bounded
	// retransmission, duplicate suppression, degrade deadlines with
	// stale-iterate fallback, and liveness-based degradation.
	Resilience *Resilience
	// FaultPlan, when non-nil, wraps the transport in a deterministic
	// chaos injector. Pair with Resilience — the fail-fast protocol
	// aborts on the first lost message.
	FaultPlan *FaultPlan
	// Security configures the TCP dial's transport security (TLS, auth
	// token, wire version); nil keeps the legacy plaintext v1 wire
	// (TransportTCP only). With an empty HubAddr the private loopback hub
	// shares the token and version, but TLS is refused — a client TLS
	// config cannot also serve; run a hub via ListenHub and set HubAddr.
	Security *WireSecurity
}

// SolveDistributed runs the same algorithm as Solve but as a real
// message-passing protocol: one agent per front-end and datacenter plus a
// coordinator, exchanging typed messages over the transport selected by
// dist. With a zero DistOptions the result is numerically identical to
// Solve.
func SolveDistributed(ctx context.Context, inst *Instance, opts Options, dist DistOptions) (*Allocation, Breakdown, *Stats, error) {
	res, err := RunDistributed(ctx, inst, opts, dist)
	if err != nil {
		return nil, Breakdown{}, nil, err
	}
	return res.Allocation, res.Breakdown, res.Stats, nil
}

// SolveDistributedBackground preserves the pre-context signature: an
// in-memory transport with the given artificial per-message delay bound.
//
// Deprecated: use SolveDistributed with a context and DistOptions
// (maxDelay is DistOptions.MaxDelay).
func SolveDistributedBackground(inst *Instance, opts Options, maxDelay time.Duration) (*Allocation, Breakdown, *Stats, error) {
	//ufc:ctx deprecated shim: the caller chose the pre-context API and owns the root
	return SolveDistributed(context.Background(), inst, opts, DistOptions{MaxDelay: maxDelay})
}

// RunDistributed is SolveDistributed returning the full distributed
// result, including the Degradation report of a resilient run (nil when
// the run saw no faults worth degrading over).
func RunDistributed(ctx context.Context, inst *Instance, opts Options, dist DistOptions) (*DistributedResult, error) {
	m, n := inst.Cloud.M(), inst.Cloud.N()
	ids := distsim.AllAgentIDs(m, n)

	var tr distsim.Transport
	var hub *distsim.TCPHub
	switch dist.Transport {
	case "", TransportChan:
		seed := dist.Seed
		if seed == 0 {
			seed = 1
		}
		tr = distsim.NewChanTransport(ids, distsim.ChanOptions{Seed: seed, MaxDelay: dist.MaxDelay})
	case TransportTCP:
		sec := dist.Security
		if sec == nil {
			sec = &WireSecurity{}
		}
		hubAddr := dist.HubAddr
		if hubAddr == "" {
			if sec.TLS != nil {
				return nil, errors.New("ufc: DistOptions.Security.TLS requires HubAddr; a private loopback hub cannot serve the dialer's client TLS config")
			}
			var err error
			hub, err = distsim.Listen(ctx, distsim.ListenConfig{Addr: "127.0.0.1:0", Security: *sec})
			if err != nil {
				return nil, err
			}
			hubAddr = hub.Addr()
		}
		ep, err := distsim.Dial(ctx, distsim.DialConfig{
			Addr:              hubAddr,
			AgentIDs:          ids,
			HeartbeatInterval: dist.HeartbeatInterval,
			HeartbeatMiss:     dist.HeartbeatMiss,
			Security:          *sec,
		})
		if err != nil {
			if hub != nil {
				//ufc:ctx teardown must drain the hub's writer goroutines even when cancelled
				_ = hub.Close() //ufc:discard dial failure is the error being reported
			}
			return nil, err
		}
		tr = ep.(*distsim.TCPNode)
	default:
		return nil, &UnknownTransportError{Transport: dist.Transport}
	}
	if dist.FaultPlan != nil {
		ft, err := distsim.NewFaultTransport(tr, dist.FaultPlan)
		if err != nil {
			_ = tr.Close() //ufc:discard plan validation failure is the error being reported
			if hub != nil {
				//ufc:ctx teardown must drain the hub's writer goroutines even when cancelled
				_ = hub.Close() //ufc:discard plan validation failure is the error being reported
			}
			return nil, err
		}
		tr = ft
	}
	defer func() {
		_ = tr.Close() //ufc:discard in-process transport; Run already surfaced any failure
		if hub != nil {
			//ufc:ctx teardown must drain the hub's writer goroutines even when cancelled
			_ = hub.Close() //ufc:discard private loopback hub; the run's outcome was already decided
		}
	}()
	return distsim.Run(ctx, inst, distsim.RunOptions{
		Solver:     opts,
		Timeout:    dist.Timeout,
		Resilience: dist.Resilience,
	}, tr)
}

// UnknownTransportError reports an unrecognized DistOptions.Transport.
type UnknownTransportError struct{ Transport string }

func (e *UnknownTransportError) Error() string {
	return "ufc: unknown distributed transport " + e.Transport
}
