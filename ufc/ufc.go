// Package ufc is the public API of the repository: a library for studying
// fuel-cell generation in geo-distributed cloud services, reproducing
// "Fuel Cell Generation in Geo-Distributed Cloud Services: A Quantitative
// Study" (ICDCS 2014).
//
// The library models a cloud of N geo-distributed datacenters (each with a
// fuel-cell installation) fed by M front-end proxies, defines the UFC
// index — the operator's combined satisfaction from workload latency,
// energy cost and carbon emission — and maximizes it by jointly choosing
// per-datacenter fuel-cell output and geographic request routing with the
// paper's distributed 4-block ADM-G algorithm.
//
// Quick start:
//
//	inst, err := ufc.NewBuilder().
//		Datacenter("San Jose", 37.34, -121.89, 20000, 95, 0.30).
//		Datacenter("Dallas", 32.78, -96.80, 20000, 35, 0.55).
//		FrontEnd("Chicago", 41.88, -87.63, 12000).
//		Build()
//	alloc, breakdown, stats, err := ufc.Solve(inst, ufc.Options{})
//
// See examples/ for runnable programs and cmd/experiments for the full
// reproduction of the paper's tables and figures.
package ufc

import (
	"time"

	"repro/internal/carbon"
	"repro/internal/core"
	"repro/internal/distsim"
	"repro/internal/model"
	"repro/internal/utility"
)

// Core problem types, re-exported from the implementation packages.
type (
	// Instance is one time slot of the UFC maximization problem.
	Instance = core.Instance
	// Allocation is a joint routing and power decision.
	Allocation = core.Allocation
	// Breakdown decomposes the UFC of an allocation.
	Breakdown = core.Breakdown
	// Options configures the ADM-G solver.
	Options = core.Options
	// Stats reports solver behaviour.
	Stats = core.Stats
	// Strategy selects the allowed energy sources.
	Strategy = core.Strategy
	// FeasibilityReport quantifies constraint violations.
	FeasibilityReport = core.FeasibilityReport

	// Cloud is the static topology.
	Cloud = model.Cloud
	// Datacenter is a back-end site.
	Datacenter = model.Datacenter
	// FrontEnd is a front-end proxy server.
	FrontEnd = model.FrontEnd
	// Location is a point on Earth.
	Location = model.Location
	// PowerModel is the per-server power characterization.
	PowerModel = model.PowerModel

	// CostFunc is an emission cost function V_j.
	CostFunc = carbon.CostFunc
	// LinearTax is a flat carbon tax.
	LinearTax = carbon.LinearTax
	// CapAndTrade is a permit-based emission cost.
	CapAndTrade = carbon.CapAndTrade
	// SteppedTax is a progressive piecewise-linear tax.
	SteppedTax = carbon.SteppedTax
	// QuadraticCost is an offset program with growing marginal price.
	QuadraticCost = carbon.QuadraticCost

	// UtilityFunc is a latency-utility function U.
	UtilityFunc = utility.Func
	// QuadraticUtility is the paper's Eq. (2) utility.
	QuadraticUtility = utility.Quadratic
	// LinearUtility decreases linearly with latency-weighted traffic.
	LinearUtility = utility.Linear
	// ExponentialUtility punishes long latencies sharply.
	ExponentialUtility = utility.Exponential
)

// Strategies.
const (
	// Hybrid coordinates grid power with fuel cells (the paper's
	// proposal).
	Hybrid = core.Hybrid
	// GridOnly forbids fuel cells.
	GridOnly = core.GridOnly
	// FuelCellOnly forbids grid power.
	FuelCellOnly = core.FuelCellOnly
)

// Solve maximizes UFC for the instance with the distributed 4-block ADM-G
// algorithm (run in-process) and returns a feasible allocation, its UFC
// breakdown and solver statistics.
func Solve(inst *Instance, opts Options) (*Allocation, Breakdown, *Stats, error) {
	return core.Solve(inst, opts)
}

// Evaluate computes the UFC breakdown of an arbitrary allocation.
func Evaluate(inst *Instance, alloc *Allocation) Breakdown {
	return core.Evaluate(inst, alloc)
}

// CheckFeasibility measures an allocation's constraint violations.
func CheckFeasibility(inst *Instance, alloc *Allocation) FeasibilityReport {
	return core.CheckFeasibility(inst, alloc)
}

// Improvement returns the relative UFC improvement of x over y (the
// paper's I_hg / I_hf / I_fg metrics).
func Improvement(x, y Breakdown) float64 { return core.Improvement(x, y) }

// NewCloud builds a topology from datacenters and front-ends.
func NewCloud(dcs []Datacenter, fes []FrontEnd) (*Cloud, error) {
	return model.NewCloud(dcs, fes)
}

// DefaultPowerModel is the paper's server power model (100 W idle, 200 W
// peak, PUE 1.2).
func DefaultPowerModel() PowerModel { return model.DefaultPowerModel() }

// NewSteppedTax validates and builds a progressive piecewise-linear carbon
// tax (rates must be non-decreasing for convexity).
func NewSteppedTax(thresholds, rates []float64) (SteppedTax, error) {
	return carbon.NewSteppedTax(thresholds, rates)
}

// SolveDistributed runs the same algorithm as Solve but as a real
// message-passing protocol: one agent per front-end and datacenter plus a
// coordinator, exchanging messages over an in-memory transport with the
// given artificial per-message delay bound (0 disables delays). The result
// is numerically identical to Solve.
func SolveDistributed(inst *Instance, opts Options, maxDelay time.Duration) (*Allocation, Breakdown, *Stats, error) {
	m, n := inst.Cloud.M(), inst.Cloud.N()
	tr := distsim.NewChanTransport(distsim.AllAgentIDs(m, n), distsim.ChanOptions{
		Seed:     1,
		MaxDelay: maxDelay,
	})
	defer func() { _ = tr.Close() }() //ufc:discard in-process transport; Run already surfaced any failure
	res, err := distsim.Run(inst, distsim.RunOptions{Solver: opts}, tr)
	if err != nil {
		return nil, Breakdown{}, nil, err
	}
	return res.Allocation, res.Breakdown, res.Stats, nil
}
