package ufc_test

import (
	"testing"
	"time"

	"repro/ufc"
)

// TestControlPlaneFacade drives the public serving surface end to end:
// a two-datacenter instance with slowly drifting arrivals, three slots,
// warm starts and the memo cache on.
func TestControlPlaneFacade(t *testing.T) {
	base := buildTwoDCInstance(t)
	cp, err := ufc.NewControlPlane(ufc.ServeConfig{
		Instance: func(slot int64) *ufc.Instance {
			inst := *base
			arr := append([]float64(nil), base.Arrivals...)
			for i := range arr {
				arr[i] *= 1 + 0.02*float64(slot%4)
			}
			inst.Arrivals = arr
			return &inst
		},
		Solver:       ufc.Options{MaxIterations: 2000},
		WarmStart:    true,
		CacheSize:    4,
		SlotInterval: time.Hour, // loop never fires a second slot during the test
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cp.Stop() }() //ufc:discard test cleanup

	for slot := 0; slot < 2; slot++ {
		if err := cp.RunSlot(); err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
	}
	dc, _, age, ok := cp.Decide(0, 1<<63)
	if !ok {
		t.Fatal("no decision from a running control plane")
	}
	if dc > 1 {
		t.Fatalf("decision %d outside the two-datacenter fleet", dc)
	}
	if age < 0 {
		t.Fatalf("negative snapshot age %d", age)
	}
	r := cp.Report()
	if r.Solves != 3 || r.WarmSolves != 2 {
		t.Fatalf("report %+v: want 3 solves of which 2 warm", r)
	}
	if snap := cp.Router().Current(); snap.M != base.Cloud.M() || snap.N != base.Cloud.N() {
		t.Fatalf("snapshot shape %dx%d, want %dx%d", snap.M, snap.N, base.Cloud.M(), base.Cloud.N())
	}
}
