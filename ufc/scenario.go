package ufc

import (
	"context"

	"repro/internal/experiments"
)

// Evaluation-scenario types, re-exported so downstream users can reproduce
// or extend the paper's experiments programmatically.
type (
	// ScenarioConfig parameterizes the paper scenario.
	ScenarioConfig = experiments.Config
	// Scenario is the materialized evaluation environment.
	Scenario = experiments.Scenario
	// WeekResult holds per-hour strategy outcomes.
	WeekResult = experiments.WeekResult
	// WeekComparison is the three-strategy week run behind Figs. 4–8.
	WeekComparison = experiments.WeekComparison
	// SweepResult is a Fig. 9 / Fig. 10 parameter sweep.
	SweepResult = experiments.SweepResult
)

// DefaultScenarioConfig returns the paper's evaluation setting (4
// datacenters of 1.7–2.3 × 10⁴ servers, 10 front-ends, one week of hourly
// traces, p0 = 80 $/MWh, 25 $/ton tax, w = 10).
func DefaultScenarioConfig() ScenarioConfig { return experiments.DefaultConfig() }

// NewScenario materializes the paper scenario (topology plus traces).
func NewScenario(cfg ScenarioConfig) (*Scenario, error) { return experiments.NewScenario(cfg) }

// RunWeekComparison solves every hour under Hybrid, GridOnly and
// FuelCellOnly — the computation behind the paper's Figs. 4–8 and 11.
// ctx cancellation aborts outstanding hourly solves between iterations.
func RunWeekComparison(ctx context.Context, cfg ScenarioConfig, opts Options) (*WeekComparison, error) {
	return experiments.RunWeekComparison(ctx, cfg, opts)
}

// RunWeekComparisonBackground is RunWeekComparison with
// context.Background.
//
// Deprecated: use RunWeekComparison with an explicit context.
func RunWeekComparisonBackground(cfg ScenarioConfig, opts Options) (*WeekComparison, error) {
	return RunWeekComparison(context.Background(), cfg, opts) //ufc:ctx deprecated shim: the caller chose the pre-context API and owns the root
}

// SweepFuelCellPrice reproduces Fig. 9: average UFC improvement and
// fuel-cell utilization as the fuel-cell price varies. A nil price grid
// uses the default.
func SweepFuelCellPrice(ctx context.Context, cfg ScenarioConfig, opts Options, prices []float64) (*SweepResult, error) {
	return experiments.RunFigNine(ctx, cfg, opts, prices)
}

// SweepFuelCellPriceBackground is SweepFuelCellPrice with
// context.Background.
//
// Deprecated: use SweepFuelCellPrice with an explicit context.
func SweepFuelCellPriceBackground(cfg ScenarioConfig, opts Options, prices []float64) (*SweepResult, error) {
	return SweepFuelCellPrice(context.Background(), cfg, opts, prices) //ufc:ctx deprecated shim: the caller chose the pre-context API and owns the root
}

// SweepCarbonTax reproduces Fig. 10: the same metrics as the carbon tax
// varies. A nil tax grid uses the default.
func SweepCarbonTax(ctx context.Context, cfg ScenarioConfig, opts Options, taxes []float64) (*SweepResult, error) {
	return experiments.RunFigTen(ctx, cfg, opts, taxes)
}

// SweepCarbonTaxBackground is SweepCarbonTax with context.Background.
//
// Deprecated: use SweepCarbonTax with an explicit context.
func SweepCarbonTaxBackground(cfg ScenarioConfig, opts Options, taxes []float64) (*SweepResult, error) {
	return SweepCarbonTax(context.Background(), cfg, opts, taxes) //ufc:ctx deprecated shim: the caller chose the pre-context API and owns the root
}
