package ufc

import (
	"errors"
	"fmt"

	"repro/internal/carbon"
	"repro/internal/model"
	"repro/internal/utility"
)

// Builder assembles a single-slot Instance fluently. Defaults follow the
// paper's evaluation: full fuel-cell coverage per datacenter, fuel-cell
// price 80 $/MWh, a 25 $/ton carbon tax, the quadratic latency utility and
// weight w = 10 $/s².
type Builder struct {
	dcs    []model.Datacenter
	prices []float64
	rates  []float64
	costs  []carbon.CostFunc

	fes      []model.FrontEnd
	arrivals []float64

	fuelCellPrice float64
	taxRate       float64
	weight        float64
	util          utility.Func
	power         model.PowerModel
	rightSizing   bool

	err error
}

// NewBuilder returns a Builder with the paper's default parameters.
func NewBuilder() *Builder {
	return &Builder{
		fuelCellPrice: 80,
		taxRate:       25,
		weight:        10,
		util:          utility.Quadratic{},
		power:         model.DefaultPowerModel(),
	}
}

// Datacenter adds a back-end site with full fuel-cell coverage, a grid
// price in $/MWh and a carbon emission rate in t/MWh. The emission cost is
// the builder's carbon tax; use DatacenterCustom for other policies.
func (b *Builder) Datacenter(name string, lat, lon, servers, priceUSD, carbonRate float64) *Builder {
	dc := model.Datacenter{
		Location: model.Location{Name: name, Lat: lat, Lon: lon},
		Servers:  servers,
		Power:    b.power,
	}.FullFuelCell()
	return b.DatacenterCustom(dc, priceUSD, carbonRate, nil)
}

// DatacenterCustom adds a fully specified datacenter. A nil cost selects
// the builder's carbon tax.
func (b *Builder) DatacenterCustom(dc Datacenter, priceUSD, carbonRate float64, cost CostFunc) *Builder {
	b.dcs = append(b.dcs, dc)
	b.prices = append(b.prices, priceUSD)
	b.rates = append(b.rates, carbonRate)
	b.costs = append(b.costs, cost)
	return b
}

// FrontEnd adds a front-end proxy with its slot arrivals (in servers).
func (b *Builder) FrontEnd(name string, lat, lon, arrivals float64) *Builder {
	b.fes = append(b.fes, model.FrontEnd{Location: model.Location{Name: name, Lat: lat, Lon: lon}})
	b.arrivals = append(b.arrivals, arrivals)
	return b
}

// FuelCellPrice sets p0 in $/MWh.
func (b *Builder) FuelCellPrice(usdPerMWh float64) *Builder {
	b.fuelCellPrice = usdPerMWh
	return b
}

// CarbonTax sets the default linear tax rate in $/ton for datacenters
// added without an explicit cost function.
func (b *Builder) CarbonTax(usdPerTon float64) *Builder {
	b.taxRate = usdPerTon
	return b
}

// Weight sets the utility weight w.
func (b *Builder) Weight(w float64) *Builder {
	b.weight = w
	return b
}

// Utility sets the latency-utility function.
func (b *Builder) Utility(u UtilityFunc) *Builder {
	if u == nil {
		b.err = errors.New("ufc: nil utility")
		return b
	}
	b.util = u
	return b
}

// Power sets the per-server power model used by subsequently added
// datacenters (Datacenter shorthand only).
func (b *Builder) Power(pm PowerModel) *Builder {
	b.power = pm
	return b
}

// RightSizing enables the idle-servers-off extension (paper §II-C Remark):
// each datacenter powers only the servers its routed load requires.
func (b *Builder) RightSizing() *Builder {
	b.rightSizing = true
	return b
}

// Build validates and assembles the instance.
func (b *Builder) Build() (*Instance, error) {
	if b.err != nil {
		return nil, b.err
	}
	cloud, err := model.NewCloud(b.dcs, b.fes)
	if err != nil {
		return nil, fmt.Errorf("ufc: %w", err)
	}
	costs := make([]carbon.CostFunc, len(b.costs))
	for j, c := range b.costs {
		if c == nil {
			c = carbon.LinearTax{Rate: b.taxRate}
		}
		costs[j] = c
	}
	inst := &Instance{
		Cloud:            cloud,
		Arrivals:         append([]float64(nil), b.arrivals...),
		PriceUSD:         append([]float64(nil), b.prices...),
		FuelCellPriceUSD: b.fuelCellPrice,
		CarbonRate:       append([]float64(nil), b.rates...),
		EmissionCost:     costs,
		Utility:          b.util,
		WeightW:          b.weight,
		RightSizing:      b.rightSizing,
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return inst, nil
}
