// Package repro is the root of a from-scratch Go reproduction of
// "Fuel Cell Generation in Geo-Distributed Cloud Services: A Quantitative
// Study" (Zhou, Liu, Li, Li, Jin, Zou, Liu — IEEE ICDCS 2014).
//
// The public API lives in package repro/ufc; the experiment runners that
// regenerate the paper's tables and figures live in
// repro/internal/experiments and are exposed through cmd/experiments and
// the benchmarks in bench_test.go. See README.md for an overview,
// DESIGN.md for the system inventory, and EXPERIMENTS.md for the
// paper-versus-measured record.
package repro
