//go:build gobbaseline

package repro_test

import (
	"context"
	"testing"

	"repro/internal/distsim"
)

// Gob-baseline transport benchmarks, compiled only with -tags gobbaseline
// alongside internal/distsim/tcp_gob.go. They pin the legacy transport's
// msgs/sec and bytes/msg so the framed wire layer's speedup stays
// quantified:
//
//	go test -tags gobbaseline -bench Gob .

func newGobPair(b *testing.B) transportPair {
	b.Helper()
	hub, err := distsim.NewGobTCPHub("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	recv, err := distsim.NewGobTCPNode(hub.Addr(), []string{"dc-0"}, 4096)
	if err != nil {
		b.Fatal(err)
	}
	send, err := distsim.NewGobTCPNode(hub.Addr(), []string{"fe-0"}, 4096)
	if err != nil {
		b.Fatal(err)
	}
	inbox, err := recv.Inbox("dc-0")
	if err != nil {
		b.Fatal(err)
	}
	return transportPair{
		send:  send.Send,
		inbox: inbox,
		stats: send.Stats,
		cleanup: func() {
			_ = send.Close()
			_ = recv.Close()
			_ = hub.Close()
		},
	}
}

// BenchmarkTransportThroughputGob measures the retained gob baseline
// (one gob encode + one unbuffered socket write per message) that the
// wire layer replaced. It carries the pre-optimization routing message,
// which spent a third float64 duplicating the sender index the string
// addresses already encoded. Compare msgs/sec and bytes/msg against
// BenchmarkTransportThroughput.
func BenchmarkTransportThroughputGob(b *testing.B) {
	benchTransportThroughput(b, newGobPair(b), []float64{0, 0.5227926331, 0.1893718274})
}

// BenchmarkSolveDistributedTCPGob is the same solve as
// BenchmarkSolveDistributedTCP over the gob baseline transport.
func BenchmarkSolveDistributedTCPGob(b *testing.B) {
	inst := benchInstance(b)
	m, n := inst.Cloud.M(), inst.Cloud.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hub, err := distsim.NewGobTCPHub("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		node, err := distsim.NewGobTCPNode(hub.Addr(), distsim.AllAgentIDs(m, n), 256)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := distsim.Run(context.Background(), inst, distsim.RunOptions{Solver: benchSolver}, node); err != nil {
			b.Fatal(err)
		}
		_ = node.Close()
		_ = hub.Close()
	}
}
