// Command ufcload drives a control-plane hub (ufchub -serve) with an
// open-loop stream of routing lookups and reports decision latency,
// achieved throughput and solve freshness. Each connection multiplexes
// the traffic of many simulated users: requests are sent on a fixed
// schedule derived from -rps regardless of response progress (open loop),
// so queueing delay shows up in the latency distribution instead of
// silently throttling the offered load.
//
//	ufcload -addr 127.0.0.1:7070 -conns 4 -rps 20000 -duration 10s
//
// CI gates latency and cache behaviour directly:
//
//	ufcload -addr ... -duration 2s -max-p99 50ms -min-cache-hits 1
//
// With -bench it instead self-hosts the whole measurement: for each
// -points topology it replays the same slot trace through a warm-started
// rolling-horizon pipeline and a cold one (quantifying the warm-start
// iteration advantage and the memo-cache hit rate), then serves the warm
// pipeline through a real TCP hub and load-tests it, emitting
// BENCH_controlplane.json. -validate re-reads such a file strictly and
// enforces its gates.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/distsim"
	"repro/internal/experiments"
	"repro/internal/netcfg"
	"repro/internal/telemetry"
	"repro/internal/telemetry/tracing"
)

const schemaID = "ufc-bench-controlplane/v1"

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ufcload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ufcload", flag.ContinueOnError)
	addr := fs.String("addr", "", "control-plane hub address (load mode)")
	conns := fs.Int("conns", 4, "concurrent connections")
	rps := fs.Int("rps", 5000, "aggregate offered requests per second (open loop)")
	duration := fs.Duration("duration", 5*time.Second, "load duration")
	seed := fs.Int64("seed", 1, "workload randomness seed (front-end choice and routing entropy)")
	maxP99 := fs.Duration("max-p99", 0, "fail if p99 decision latency exceeds this (0 disables)")
	minCacheHits := fs.Uint64("min-cache-hits", 0, "fail if the server reports fewer memo-cache hits")
	bench := fs.Bool("bench", false, "self-hosted benchmark over -points instead of driving -addr")
	points := fs.String("points", "20,200,4;100,2000,8", "with -bench: semicolon-separated topology points \"N,M,R\"")
	slots := fs.Int("slots", 4, "with -bench: slots per trace replay")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "with -bench: solver workers")
	out := fs.String("out", "BENCH_controlplane.json", "with -bench: output file (\"-\" for stdout)")
	validate := fs.String("validate", "", "validate an existing result file instead of measuring")
	traceSample := fs.Int("trace-sample", 0, "trace every Nth lookup end-to-end and report exemplar trace ids at p99/p999 (0 disables)")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus /metrics, health probes and /debug/ufc/trace on this address")
	var sec netcfg.Flags
	sec.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := sec.Validate(); err != nil {
		return err
	}
	if *validate != "" {
		return validateFile(*validate)
	}
	if *conns < 1 || *rps < 1 || *duration <= 0 {
		return fmt.Errorf("need -conns >= 1, -rps >= 1 and -duration > 0 (got %d, %d, %v)", *conns, *rps, *duration)
	}
	if *bench {
		return runBench(*points, *slots, *workers, *conns, *rps, *duration, *seed, *out)
	}
	if *addr == "" {
		return errors.New("-addr is required (or use -bench)")
	}

	// Optional observability sidecar: a tracing ring when sampling is on,
	// and a metrics/health server when an address is given. Neither alters
	// the load schedule or the text report's existing lines.
	var lc loadConfig
	security, err := sec.ClientSecurity()
	if err != nil {
		return err
	}
	lc.security = security
	var traceReg *tracing.Registry
	if *traceSample > 0 {
		traceReg = tracing.NewRegistry()
		lc.tracer = traceReg.Recorder(tracing.Config{Component: "loadgen", IDs: tracing.NewIDSource(*seed), SampleEvery: uint64(*traceSample)})
	}
	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		telemetry.RegisterBuildInfo(reg, "ufcload")
		lc.hist = reg.Histogram("ufc_load_decide_latency_seconds",
			"Client-observed decision latency of answered lookups.",
			telemetry.ExponentialBuckets(1e-6, 2, 20), telemetry.L("component", "loadgen"))
		srvOpts := telemetry.ServerOptions{}
		if traceReg != nil {
			srvOpts.Trace = traceReg.Handler()
		}
		msrv, err := telemetry.StartServerOpts(*metricsAddr, reg, srvOpts)
		if err != nil {
			return err
		}
		defer func() { _ = msrv.Close() }() //ufc:discard process is exiting; nothing to salvage from the listener
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", msrv.Addr())
	}

	res, stats, err := runLoad(*addr, *conns, *rps, *duration, *seed, lc)
	if err != nil {
		return err
	}
	fmt.Printf("topology %dx%d, slot %d: %d sent, %d answered (%d unavailable, %d unanswered)\n",
		stats.M, stats.N, stats.Slot, res.Sent, res.Answered, res.Unavailable, res.Sent-res.Answered)
	fmt.Printf("latency p50 %v  p99 %v  p999 %v\n",
		time.Duration(res.P50Ns), time.Duration(res.P99Ns), time.Duration(res.P999Ns))
	if lc.tracer != nil {
		fmt.Printf("exemplar traces p99 %s  p999 %s (fetch via /debug/ufc/trace?trace=ID on the hub)\n",
			res.P99Trace, res.P999Trace)
	}
	fmt.Printf("achieved %.0f rps (offered %d), max snapshot age %v\n",
		res.AchievedRPS, *rps, time.Duration(res.MaxAgeNanos))
	fmt.Printf("server: %d solves (%d warm avg %.0f iters, %d cold avg %.0f iters), cache %d hits / %d misses\n",
		stats.Solves, stats.WarmSolves, stats.WarmPerSolve(), stats.ColdSolves, stats.ColdPerSolve(),
		stats.CacheHits, stats.CacheMisses)
	if *maxP99 > 0 && res.P99Ns > maxP99.Nanoseconds() {
		return fmt.Errorf("p99 %v exceeds -max-p99 %v", time.Duration(res.P99Ns), *maxP99)
	}
	if stats.CacheHits < *minCacheHits {
		return fmt.Errorf("server reports %d cache hits, want >= %d", stats.CacheHits, *minCacheHits)
	}
	if res.Answered == 0 {
		return errors.New("no lookups were answered")
	}
	return nil
}

// loadResult aggregates one load run.
type loadResult struct {
	Sent        uint64
	Answered    uint64
	Unavailable uint64
	AchievedRPS float64
	P50Ns       int64
	P99Ns       int64
	P999Ns      int64
	MaxAgeNanos int64
	// Exemplar trace ids nearest the p99/p999 observations (zero when
	// tracing is off or no traced request landed in the tail).
	P99Trace  tracing.TraceID
	P999Trace tracing.TraceID
}

// loadConfig is the optional observability and transport security
// attached to a load run: a recorder that samples end-to-end request
// traces, a histogram fed the same latencies as the exact percentile
// arrays, and the dial-side security block. All are nil-safe/zero off
// switches — a zero loadConfig reproduces the bare run byte for byte.
type loadConfig struct {
	tracer   *tracing.Recorder
	hist     *telemetry.Histogram
	security distsim.SecurityConfig
}

// connState is one connection's request ledger. Send and receive sides
// run on different goroutines, so both timestamp arrays are accessed
// atomically; the request sequence number doubles as the array index.
// traceHi/traceLo hold the sampled request's trace and root-span ids
// (zero = untraced), atomically for the same reason.
type connState struct {
	client    *distsim.LookupClient
	sendNanos []int64
	latNanos  []int64
	traceHi   []uint64
	traceLo   []uint64
	answered  atomic.Uint64
	unavail   atomic.Uint64
	maxAge    atomic.Int64
}

// runLoad drives addr with conns×(rps/conns) open-loop lookups for the
// given duration and collects exact latency percentiles. The final stats
// record comes from the server itself (cpstats record).
func runLoad(addr string, conns, rps int, duration time.Duration, seed int64, lc loadConfig) (*loadResult, controlplane.Stats, error) {
	var zero controlplane.Stats
	total := int(float64(rps) * duration.Seconds())
	if total < 1 {
		total = 1
	}
	states := make([]*connState, conns)
	for c := range states {
		per := total / conns
		if c < total%conns {
			per++
		}
		cs := &connState{sendNanos: make([]int64, per), latNanos: make([]int64, per)}
		if lc.tracer != nil {
			cs.traceHi = make([]uint64, per)
			cs.traceLo = make([]uint64, per)
		}
		ep, err := distsim.Dial(context.Background(), distsim.DialConfig{
			Addr:       addr,
			LookupName: fmt.Sprintf("lg-%d", c),
			Security:   lc.security,
			OnDecision: func(d distsim.Decision) {
				seq := d.ReqID
				if seq >= uint64(len(cs.sendNanos)) {
					return
				}
				if !d.OK {
					cs.unavail.Add(1)
					return
				}
				sent := atomic.LoadInt64(&cs.sendNanos[seq])
				if sent == 0 {
					return
				}
				now := time.Now().UnixNano()
				atomic.StoreInt64(&cs.latNanos[seq], now-sent)
				if lc.hist != nil {
					lc.hist.Observe(float64(now-sent) / 1e9)
				}
				if lc.tracer != nil {
					tc := tracing.Context{
						Trace: tracing.TraceID(atomic.LoadUint64(&cs.traceHi[seq])),
						Span:  tracing.SpanID(atomic.LoadUint64(&cs.traceLo[seq])),
					}
					if tc.Valid() {
						lc.tracer.RecordSpan(tc, "load.decide", sent, now,
							tracing.I64("req", int64(seq)), tracing.I64("dc", int64(d.DC)))
					}
				}
				for {
					cur := cs.maxAge.Load()
					if d.AgeNanos <= cur || cs.maxAge.CompareAndSwap(cur, d.AgeNanos) {
						break
					}
				}
				cs.answered.Add(1)
			},
		})
		if err != nil {
			return nil, zero, err
		}
		cs.client = ep.(*distsim.LookupClient)
		states[c] = cs
	}
	defer func() {
		for _, cs := range states {
			_ = cs.client.Close() //ufc:discard teardown after measurement
		}
	}()

	// The server tells us the front-end count before any lookup is sent.
	pre, err := queryStats(states[0].client)
	if err != nil {
		return nil, zero, err
	}
	if pre.M < 1 {
		return nil, zero, fmt.Errorf("server reports %d front-ends", pre.M)
	}

	var sent atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for c, cs := range states {
		wg.Add(1)
		go func(c int, cs *connState) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			for k := range cs.sendNanos {
				// Open loop: request k of connection c is due at its
				// schedule slot whatever the responses are doing.
				due := start.Add(time.Duration(int64(k)*int64(conns)+int64(c)) * time.Second / time.Duration(rps))
				if wait := time.Until(due); wait > 0 {
					time.Sleep(wait)
				}
				fe := uint32(rng.Intn(pre.M))
				u := rng.Uint64()
				var tc tracing.Context
				if lc.tracer != nil {
					// The recorder's head sampler decides which requests get
					// a trace; unsampled ones yield a zero context and a
					// byte-identical untraced lookup on the wire.
					sp := lc.tracer.Root("load.request")
					sp.Attr("conn", int64(c))
					sp.Attr("req", int64(k))
					tc = sp.Context()
					atomic.StoreUint64(&cs.traceHi[k], uint64(tc.Trace))
					atomic.StoreUint64(&cs.traceLo[k], uint64(tc.Span))
					sp.End()
				}
				atomic.StoreInt64(&cs.sendNanos[k], time.Now().UnixNano())
				if err := cs.client.LookupTraced(fe, uint64(k), u, tc); err != nil {
					return
				}
				sent.Add(1)
			}
		}(c, cs)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Grace period for in-flight responses.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		var pending bool
		for _, cs := range states {
			if cs.answered.Load()+cs.unavail.Load() < uint64(len(cs.sendNanos)) {
				pending = true
			}
		}
		if !pending {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	post, err := queryStats(states[0].client)
	if err != nil {
		return nil, zero, err
	}

	res := &loadResult{Sent: sent.Load()}
	var lats []int64
	var traces []tracing.TraceID
	for _, cs := range states {
		res.Answered += cs.answered.Load()
		res.Unavailable += cs.unavail.Load()
		if age := cs.maxAge.Load(); age > res.MaxAgeNanos {
			res.MaxAgeNanos = age
		}
		for i := range cs.latNanos {
			if l := atomic.LoadInt64(&cs.latNanos[i]); l > 0 {
				lats = append(lats, l)
				if cs.traceHi != nil {
					traces = append(traces, tracing.TraceID(atomic.LoadUint64(&cs.traceHi[i])))
				}
			}
		}
	}
	res.AchievedRPS = float64(res.Answered) / elapsed.Seconds()
	if len(lats) > 0 {
		if traces != nil {
			// Keep the trace ids aligned with their latencies through the
			// sort so the tail exemplars can be looked up afterwards.
			idx := make([]int, len(lats))
			for i := range idx {
				idx[i] = i
			}
			sort.Slice(idx, func(i, j int) bool { return lats[idx[i]] < lats[idx[j]] })
			sortedLats := make([]int64, len(lats))
			sortedTraces := make([]tracing.TraceID, len(lats))
			for i, k := range idx {
				sortedLats[i] = lats[k]
				sortedTraces[i] = traces[k]
			}
			lats, traces = sortedLats, sortedTraces
			res.P99Trace = exemplarAt(traces, percentileIdx(len(lats), 0.99))
			res.P999Trace = exemplarAt(traces, percentileIdx(len(lats), 0.999))
		} else {
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		}
		res.P50Ns = lats[percentileIdx(len(lats), 0.50)]
		res.P99Ns = lats[percentileIdx(len(lats), 0.99)]
		res.P999Ns = lats[percentileIdx(len(lats), 0.999)]
	}
	return res, post, nil
}

func queryStats(c *distsim.LookupClient) (controlplane.Stats, error) {
	vals, err := c.QueryStats(5 * time.Second)
	if err != nil {
		return controlplane.Stats{}, fmt.Errorf("stats query: %w", err)
	}
	return controlplane.ParseStatsPayload(vals)
}

// percentileIdx returns the nearest-rank index of the p-quantile in a
// sorted array of n observations.
func percentileIdx(n int, p float64) int {
	k := int(p*float64(n)+0.5) - 1
	if k < 0 {
		k = 0
	}
	if k >= n {
		k = n - 1
	}
	return k
}

// exemplarAt returns the trace id at or nearest below the given index —
// under sampling most observations carry no trace, so walk down (toward
// faster requests, which are plentiful) and then up for a non-zero id.
func exemplarAt(traces []tracing.TraceID, idx int) tracing.TraceID {
	for i := idx; i >= 0; i-- {
		if traces[i] != 0 {
			return traces[i]
		}
	}
	for i := idx + 1; i < len(traces); i++ {
		if traces[i] != 0 {
			return traces[i]
		}
	}
	return 0
}

// BenchFile is the JSON document -bench emits and -validate checks.
type BenchFile struct {
	Schema   string    `json:"schema"`
	Go       string    `json:"go"`
	Conns    int       `json:"conns"`
	RPS      int       `json:"rps"`
	Duration string    `json:"duration"`
	Points   []CPPoint `json:"points"`
}

// CPPoint is one topology's control-plane measurement.
type CPPoint struct {
	Topology          string  `json:"topology"`
	M                 int     `json:"frontEnds"`
	N                 int     `json:"datacenters"`
	Slots             int     `json:"slots"`
	WarmIterPerSolve  float64 `json:"warmItersPerSolve"`
	ColdIterPerSolve  float64 `json:"coldItersPerSolve"`
	WarmSpeedup       float64 `json:"warmSpeedup"` // cold/warm iteration ratio
	CacheHits         uint64  `json:"cacheHits"`
	CacheMisses       uint64  `json:"cacheMisses"`
	CacheHitRate      float64 `json:"cacheHitRate"`
	AllocsPerDecide   float64 `json:"allocsPerDecide"` // must be 0
	Requests          uint64  `json:"requests"`
	Answered          uint64  `json:"answered"`
	AchievedRPS       float64 `json:"achievedRps"`
	DecisionP50Ns     int64   `json:"decisionP50Ns"`
	DecisionP99Ns     int64   `json:"decisionP99Ns"`
	DecisionP999Ns    int64   `json:"decisionP999Ns"`
	MaxSnapshotAgeNs  int64   `json:"maxSnapshotAgeNs"`
	SolveNsPerSlot    int64   `json:"solveNsPerSlot"` // warm pipeline mean
	UnconvergedSolves uint64  `json:"unconvergedSolves"`
}

func runBench(points string, slots, workers, conns, rps int, duration time.Duration, seed int64, out string) error {
	if slots < 2 {
		return fmt.Errorf("-slots %d: need at least 2 (slot 0 is always cold)", slots)
	}
	file := BenchFile{Schema: schemaID, Go: runtime.Version(), Conns: conns, RPS: rps, Duration: duration.String()}
	for _, spec := range strings.Split(points, ";") {
		topo, err := experiments.ParseTopology(strings.TrimSpace(spec))
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "point %s...\n", topo)
		pt, err := benchPoint(topo, slots, workers, conns, rps, duration, seed)
		if err != nil {
			return fmt.Errorf("point %s: %w", topo, err)
		}
		file.Points = append(file.Points, *pt)
		fmt.Fprintf(os.Stderr, "  warm %.0f vs cold %.0f iters/solve (%.2fx), cache %d/%d hits, p99 %v at %.0f rps\n",
			pt.WarmIterPerSolve, pt.ColdIterPerSolve, pt.WarmSpeedup,
			pt.CacheHits, pt.CacheHits+pt.CacheMisses, time.Duration(pt.DecisionP99Ns), pt.AchievedRPS)
	}

	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	return validateFile(out)
}

// benchPoint measures one topology: a cold trace replay, a warm replay of
// the same trace (plus a second cycle that exercises the memo cache), a
// zero-allocation check on the decision path, and a TCP load phase
// against the warm pipeline.
func benchPoint(spec experiments.Topology, slots, workers, conns, rps int, duration time.Duration, seed int64) (*CPPoint, error) {
	st, err := experiments.NewSyntheticTopology(spec, seed)
	if err != nil {
		return nil, err
	}
	solver := core.Options{
		Workers:       workers,
		MaxIterations: 8000,
		Tolerance:     core.OneServerTolerance(st.Instance(seed)),
	}
	if spec.Regions > 1 {
		solver.SparsityCutoff = st.CutoffSec
	}
	trace := func(slot int64) *core.Instance {
		return st.SlotInstance(seed, slot%int64(slots))
	}

	// Cold baseline: same trace, every slot from the zero state, no cache.
	cold, err := controlplane.New(controlplane.Config{Instance: trace, Solver: solver, WarmStart: false})
	if err != nil {
		return nil, err
	}
	for s := 0; s < slots; s++ {
		if err := cold.RunSlot(); err != nil {
			_ = cold.Stop() //ufc:discard already failing with the slot error
			return nil, fmt.Errorf("cold slot %d: %w", s, err)
		}
	}
	coldReport := cold.Report()
	if err := cold.Stop(); err != nil {
		return nil, err
	}

	// Warm rolling horizon over the identical trace, then a second cycle
	// through the same slots: every repeat is a memo-cache hit.
	warm, err := controlplane.New(controlplane.Config{
		Instance: trace, Solver: solver, WarmStart: true, CacheSize: slots,
	})
	if err != nil {
		return nil, err
	}
	stopWarm := warm.Stop
	defer func() { _ = stopWarm() }() //ufc:discard teardown; first error already returned
	for s := 0; s < 2*slots; s++ {
		if err := warm.RunSlot(); err != nil {
			return nil, fmt.Errorf("warm slot %d: %w", s, err)
		}
	}
	warmReport := warm.Report()

	router := warm.Router()
	allocs := testing.AllocsPerRun(1000, func() {
		if _, _, _, ok := router.Decide(0, 1<<63); !ok {
			panic("no snapshot")
		}
	})

	// Load phase: serve the warm pipeline through a real hub on loopback.
	hub, err := distsim.Listen(context.Background(), distsim.ListenConfig{Addr: "127.0.0.1:0", Decider: warm})
	if err != nil {
		return nil, err
	}
	defer func() { _ = hub.Close() }() //ufc:discard measurement teardown
	res, _, err := runLoad(hub.Addr(), conns, rps, duration, seed, loadConfig{})
	if err != nil {
		return nil, err
	}

	pt := &CPPoint{
		Topology:          spec.String(),
		M:                 spec.M,
		N:                 spec.N,
		Slots:             slots,
		WarmIterPerSolve:  warmReport.WarmPerSolve(),
		ColdIterPerSolve:  coldReport.ColdPerSolve(),
		CacheHits:         warmReport.CacheHits,
		CacheMisses:       warmReport.CacheMisses,
		AllocsPerDecide:   allocs,
		Requests:          res.Sent,
		Answered:          res.Answered,
		AchievedRPS:       res.AchievedRPS,
		DecisionP50Ns:     res.P50Ns,
		DecisionP99Ns:     res.P99Ns,
		DecisionP999Ns:    res.P999Ns,
		MaxSnapshotAgeNs:  res.MaxAgeNanos,
		UnconvergedSolves: coldReport.Unconverged + warmReport.Unconverged,
	}
	if pt.WarmIterPerSolve > 0 {
		pt.WarmSpeedup = pt.ColdIterPerSolve / pt.WarmIterPerSolve
	}
	if total := pt.CacheHits + pt.CacheMisses; total > 0 {
		pt.CacheHitRate = float64(pt.CacheHits) / float64(total)
	}
	if warmReport.Solves > 0 {
		pt.SolveNsPerSlot = int64(warmReport.SolveNanos / warmReport.Solves)
	}
	return pt, nil
}

// validateFile strictly re-reads a result file and enforces the
// control-plane gates: warm solves must beat cold solves on iterations,
// the memo cache must have hit, the decision path must not allocate, and
// the load phase must have measured real traffic.
func validateFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }() //ufc:discard read-only file
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var file BenchFile
	if err := dec.Decode(&file); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if file.Schema != schemaID {
		return fmt.Errorf("%s: schema %q, want %q", path, file.Schema, schemaID)
	}
	if len(file.Points) == 0 {
		return fmt.Errorf("%s: no points", path)
	}
	for _, pt := range file.Points {
		if _, err := experiments.ParseTopology(pt.Topology); err != nil {
			return fmt.Errorf("%s: point %q: %w", path, pt.Topology, err)
		}
		if pt.WarmIterPerSolve <= 0 || pt.ColdIterPerSolve <= 0 {
			return fmt.Errorf("%s: point %s: missing warm/cold iteration data", path, pt.Topology)
		}
		if pt.WarmIterPerSolve >= pt.ColdIterPerSolve {
			return fmt.Errorf("%s: point %s: warm solves average %.0f iterations vs cold %.0f — no warm-start advantage",
				path, pt.Topology, pt.WarmIterPerSolve, pt.ColdIterPerSolve)
		}
		if pt.CacheHits == 0 {
			return fmt.Errorf("%s: point %s: no memo-cache hits", path, pt.Topology)
		}
		if pt.AllocsPerDecide >= 1 {
			return fmt.Errorf("%s: point %s: %v allocs per decision, want 0", path, pt.Topology, pt.AllocsPerDecide)
		}
		if pt.Answered == 0 || pt.AchievedRPS <= 0 || pt.DecisionP99Ns <= 0 {
			return fmt.Errorf("%s: point %s: empty load measurement", path, pt.Topology)
		}
		if pt.UnconvergedSolves > 0 {
			return fmt.Errorf("%s: point %s: %d unconverged solves", path, pt.Topology, pt.UnconvergedSolves)
		}
	}
	fmt.Fprintf(os.Stderr, "%s: valid (%d points)\n", path, len(file.Points))
	return nil
}
