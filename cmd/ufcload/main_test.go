package main

import (
	"testing"

	"repro/internal/telemetry/tracing"
)

// TestPercentileIdx pins the nearest-rank indexing the latency report and
// the exemplar selection share.
func TestPercentileIdx(t *testing.T) {
	cases := []struct {
		n    int
		p    float64
		want int
	}{
		{1, 0.50, 0},
		{1, 0.999, 0},
		{100, 0.50, 49},
		{100, 0.99, 98},
		{100, 0.999, 99},
		{1000, 0.999, 998},
		{4, 0.01, 0},
	}
	for _, tc := range cases {
		if got := percentileIdx(tc.n, tc.p); got != tc.want {
			t.Errorf("percentileIdx(%d, %g) = %d, want %d", tc.n, tc.p, got, tc.want)
		}
	}
}

// TestExemplarAt: under sampling most observations carry no trace id; the
// exemplar walk must find the nearest traced neighbour and prefer the
// faster (more plentiful) side first.
func TestExemplarAt(t *testing.T) {
	traces := []tracing.TraceID{0, 7, 0, 0, 9, 0}
	if got := exemplarAt(traces, 4); got != 9 {
		t.Errorf("exact hit: got %v, want 9", got)
	}
	if got := exemplarAt(traces, 3); got != 7 {
		t.Errorf("walk down: got %v, want 7", got)
	}
	if got := exemplarAt(traces, 0); got != 7 {
		t.Errorf("walk up from head: got %v, want 7", got)
	}
	if got := exemplarAt([]tracing.TraceID{0, 0}, 1); got != 0 {
		t.Errorf("no traced observation: got %v, want 0", got)
	}
}
