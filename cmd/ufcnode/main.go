// Command ufcnode hosts a subset of the distributed ADM-G agents
// (front-ends, datacenters and/or the coordinator) in one process,
// connected to a ufchub. Every node loads the same instance file; the node
// hosting the coordinator prints the solution as JSON when the protocol
// converges.
//
//	ufcnode -hub 127.0.0.1:7070 -instance inst.json -agents fe-0,fe-1,dc-0,coord
//
// The special value -agents all hosts every agent (single-node mode).
// Generate an instance file with:
//
//	ufcnode -write-instance inst.json [-hour 12] [-scale 0.2]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/distsim"
	"repro/internal/experiments"
	"repro/internal/netcfg"
	"repro/internal/telemetry"
	"repro/internal/telemetry/tracing"
)

// metricsStarted, when non-nil, is invoked with the metrics server's
// resolved listen address. Tests hook it to scrape a node bound to an
// ephemeral port.
var metricsStarted func(addr string)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ufcnode:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ufcnode", flag.ContinueOnError)
	hub := fs.String("hub", "127.0.0.1:7070", "hub address")
	instPath := fs.String("instance", "", "instance JSON file (required unless -write-instance)")
	agents := fs.String("agents", "all", "comma-separated agent ids (fe-0, dc-1, coord) or all")
	timeout := fs.Duration("timeout", time.Minute, "per-message wait timeout")
	maxIters := fs.Int("maxiters", 3000, "ADM-G iteration budget")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus /metrics and net/http/pprof on this address")
	writeInstance := fs.String("write-instance", "", "write a scenario slot as an instance file and exit")
	hour := fs.Int("hour", 12, "scenario hour for -write-instance")
	scale := fs.Float64("scale", 0.2, "scenario fleet scale for -write-instance")
	faultPlanPath := fs.String("fault-plan", "", "JSON fault plan injected between this node's agents and the hub (enables the resilient protocol)")
	resilient := fs.Bool("resilient", false, "run the retry/deadline/degradation protocol even without a fault plan")
	retryInterval := fs.Duration("retry-interval", 0, "base retransmit interval (0 uses the default)")
	maxRetries := fs.Int("max-retries", 0, "retransmissions per blocked wait (0 uses the default)")
	messageDeadline := fs.Duration("message-deadline", 0, "per-message degradation deadline (0 uses the default)")
	stalenessCap := fs.Int("staleness-cap", 0, "consecutive stale rounds tolerated per peer before aborting (0 uses the default)")
	deadAfter := fs.Int("dead-after", 0, "missed reports before the coordinator declares an agent dead (0 uses the default)")
	heartbeatInterval := fs.Duration("heartbeat-interval", 0, "hub liveness ping interval (0 disables heartbeats)")
	heartbeatMiss := fs.Int("heartbeat-miss", 0, "missed heartbeat windows before the hub link is declared dead (0 uses the default)")
	var sec netcfg.Flags
	sec.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := sec.Validate(); err != nil {
		return err
	}

	if *writeInstance != "" {
		return writeScenarioInstance(*writeInstance, *hour, *scale)
	}
	if *instPath == "" {
		return fmt.Errorf("-instance is required")
	}
	f, err := os.Open(*instPath)
	if err != nil {
		return err
	}
	inst, err := codec.DecodeInstance(f)
	_ = f.Close() //ufc:discard read-only file; the decode error is the one that matters
	if err != nil {
		return err
	}

	m, n := inst.Cloud.M(), inst.Cloud.N()
	ids := strings.Split(*agents, ",")
	if *agents == "all" {
		ids = distsim.AllAgentIDs(m, n)
	}

	// Tracing is wired whenever there is somewhere to see it: a metrics
	// server to serve /debug/ufc/trace from, or a hardened run whose
	// flight recorder dumps to stderr on degrade deadlines and crashes.
	var traceReg *tracing.Registry
	var nodeTracer *tracing.Recorder
	var flight *tracing.Flight
	if *metricsAddr != "" || *resilient || *faultPlanPath != "" {
		traceReg = tracing.NewRegistry()
		nodeTracer = traceReg.Recorder(tracing.Config{Component: "node", IDs: tracing.NewIDSource(1), SampleEvery: 1})
		flight = tracing.NewFlight(traceReg, os.Stderr, 0, 0)
	}

	security, err := sec.ClientSecurity()
	if err != nil {
		return err
	}
	ep, err := distsim.Dial(context.Background(), distsim.DialConfig{
		Addr:              *hub,
		AgentIDs:          ids,
		Buffer:            256,
		HeartbeatInterval: *heartbeatInterval,
		HeartbeatMiss:     *heartbeatMiss,
		Tracer:            nodeTracer,
		Security:          security,
	})
	if err != nil {
		return err
	}
	node := ep.(*distsim.TCPNode)
	defer func() { _ = node.Close() }() //ufc:discard best-effort cleanup; RunAgents already reported the run's outcome

	var tr distsim.Transport = node
	var faults *distsim.FaultTransport
	if *faultPlanPath != "" {
		data, err := os.ReadFile(*faultPlanPath)
		if err != nil {
			return err
		}
		plan, err := distsim.ParseFaultPlan(data)
		if err != nil {
			return fmt.Errorf("fault plan %s: %w", *faultPlanPath, err)
		}
		faults, err = distsim.NewFaultTransport(node, plan)
		if err != nil {
			return fmt.Errorf("fault plan %s: %w", *faultPlanPath, err)
		}
		tr = faults
		*resilient = true
		faults.AttachFlight(nodeTracer, flight)
	}
	var resil *distsim.Resilience
	if *resilient {
		resil = &distsim.Resilience{
			RetryInterval:   *retryInterval,
			MaxRetries:      *maxRetries,
			MessageDeadline: *messageDeadline,
			StalenessCap:    *stalenessCap,
			DeadAfter:       *deadAfter,
			Tracer:          nodeTracer,
			Flight:          flight,
		}
	}

	probe := telemetry.NewSolverProbe()
	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		telemetry.RegisterBuildInfo(reg, "ufcnode")
		probe.Register(reg)
		node.RegisterMetrics(reg, telemetry.L("component", "node"))
		if faults != nil {
			faults.RegisterMetrics(reg, telemetry.L("component", "node"))
		}
		// The server is deliberately left open until process exit so the
		// final counters of a finished solve remain scrapeable.
		msrv, err := telemetry.StartServerOpts(*metricsAddr, reg, telemetry.ServerOptions{Trace: traceReg.Handler()})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (pprof at /debug/pprof/, traces at /debug/ufc/trace)\n", msrv.Addr())
		if metricsStarted != nil {
			metricsStarted(msrv.Addr())
		}
	}

	fmt.Fprintf(os.Stderr, "node hosting %v against hub %s\n", ids, *hub)
	res, err := distsim.RunAgents(context.Background(), inst, distsim.RunOptions{
		Solver:     core.Options{MaxIterations: *maxIters, Probe: probe},
		Timeout:    *timeout,
		Resilience: resil,
	}, tr, ids)
	if faults != nil {
		fst := faults.Stats()
		fmt.Fprintf(os.Stderr, "faults: dropped %d, duplicated %d, delayed %d, partition-dropped %d, crash-dropped %d\n",
			fst.Dropped, fst.Duplicated, fst.Delayed, fst.PartitionDropped, fst.CrashDropped)
	}
	if st := node.Stats(); st.MessagesSent > 0 || st.MessagesReceived > 0 {
		fmt.Fprintf(os.Stderr,
			"transport: sent %d msgs / %d bytes (%.1f bytes/msg), received %d msgs / %d bytes, %d flushes (avg batch %.1f, max %d)\n",
			st.MessagesSent, st.BytesSent,
			float64(st.BytesSent)/float64(max(st.MessagesSent, 1)),
			st.MessagesReceived, st.BytesReceived,
			st.Flushes, st.AvgBatch(), st.MaxBatch)
	}
	if err != nil {
		return err
	}
	if res == nil {
		fmt.Fprintln(os.Stderr, "agents finished (coordinator ran elsewhere)")
		return nil
	}
	return codec.EncodeResult(os.Stdout, res.Allocation, res.Breakdown, res.Stats)
}

func writeScenarioInstance(path string, hour int, scale float64) error {
	cfg := experiments.DefaultConfig()
	cfg.Scale = scale
	sc, err := experiments.NewScenario(cfg)
	if err != nil {
		return err
	}
	if hour < 0 || hour >= cfg.Hours {
		return fmt.Errorf("hour %d outside horizon [0, %d)", hour, cfg.Hours)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := codec.EncodeInstance(f, sc.InstanceAt(hour)); err != nil {
		_ = f.Close() //ufc:discard the encode error is the one returned
		return err
	}
	return f.Close()
}
