package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/codec"
	"repro/internal/distsim"
)

func TestWriteInstance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := run([]string{"-write-instance", path, "-hour", "3", "-scale", "0.05"}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	inst, err := codec.DecodeInstance(f)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Cloud.N() != 4 || inst.Cloud.M() != 10 {
		t.Fatalf("unexpected topology %dx%d", inst.Cloud.N(), inst.Cloud.M())
	}
}

func TestWriteInstanceBadHour(t *testing.T) {
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := run([]string{"-write-instance", path, "-hour", "9999"}); err == nil {
		t.Fatal("out-of-range hour accepted")
	}
}

func TestSingleNodeSolveOverHub(t *testing.T) {
	hub, err := distsim.NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }()

	path := filepath.Join(t.TempDir(), "inst.json")
	if err := run([]string{"-write-instance", path, "-hour", "2", "-scale", "0.05"}); err != nil {
		t.Fatal(err)
	}
	// Single-node mode: hosts every agent, pushes all traffic through the
	// hub, prints the result to stdout (suppressed here).
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	err = run([]string{"-hub", hub.Addr(), "-instance", path, "-agents", "all"})
	os.Stdout = old
	_ = devnull.Close()
	if err != nil {
		t.Fatal(err)
	}
}

func TestMissingInstanceFlag(t *testing.T) {
	if err := run([]string{"-agents", "all"}); err == nil {
		t.Fatal("missing -instance accepted")
	}
}

// TestMetricsEndpointAfterSolve is the end-to-end acceptance check for
// the observability subsystem: run a full single-node solve over a hub
// with -metrics-addr, then scrape /metrics over real HTTP and demand the
// solver and transport series that a dashboard would alert on.
func TestMetricsEndpointAfterSolve(t *testing.T) {
	hub, err := distsim.NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }()

	path := filepath.Join(t.TempDir(), "inst.json")
	if err := run([]string{"-write-instance", path, "-hour", "5", "-scale", "0.05"}); err != nil {
		t.Fatal(err)
	}

	var metricsURL string
	metricsStarted = func(addr string) { metricsURL = "http://" + addr + "/metrics" }
	defer func() { metricsStarted = nil }()

	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	err = run([]string{"-hub", hub.Addr(), "-instance", path, "-agents", "all", "-metrics-addr", "127.0.0.1:0"})
	os.Stdout = old
	_ = devnull.Close()
	if err != nil {
		t.Fatal(err)
	}
	if metricsURL == "" {
		t.Fatal("metrics server never reported its address")
	}

	resp, err := http.Get(metricsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", metricsURL, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"ufc_solver_solves_total 1",
		"ufc_solver_converged_total 1",
		"ufc_solver_iterations_total",
		"ufc_solver_iteration_residual_bucket",
		`ufc_transport_msgs_sent_total{component="node"}`,
		`ufc_transport_bytes_sent_total{component="node"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
