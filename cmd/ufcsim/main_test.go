package main

import "testing"

func TestRunTinySimulation(t *testing.T) {
	if err := run([]string{"-hours", "3", "-scale", "0.05"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDistributedTiny(t *testing.T) {
	if err := run([]string{"-hours", "2", "-scale", "0.05", "-distributed"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunStrategies(t *testing.T) {
	for _, s := range []string{"grid", "fuelcell"} {
		if err := run([]string{"-hours", "2", "-scale", "0.05", "-strategy", s}); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	if err := run([]string{"-strategy", "nuclear"}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}
