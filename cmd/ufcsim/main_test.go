package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunTinySimulation(t *testing.T) {
	if err := run([]string{"-hours", "3", "-scale", "0.05"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDistributedTiny(t *testing.T) {
	if err := run([]string{"-hours", "2", "-scale", "0.05", "-distributed"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunStrategies(t *testing.T) {
	for _, s := range []string{"grid", "fuelcell"} {
		if err := run([]string{"-hours", "2", "-scale", "0.05", "-strategy", s}); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	if err := run([]string{"-strategy", "nuclear"}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

// TestWarmWeekWithNDJSON runs the warm-started week path with residual
// tracing and the per-slot NDJSON emitter, then checks every record
// parses and carries the figure quantities.
func TestWarmWeekWithNDJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "slots.ndjson")
	if err := run([]string{
		"-hours", "4", "-scale", "0.05", "-warm", "-trace-residuals",
		"-ndjson", path, "-metrics-addr", "127.0.0.1:0",
	}); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	hour := 0
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("slot %d: %v", hour, err)
		}
		if got := int(rec["hour"].(float64)); got != hour {
			t.Errorf("record %d has hour %d", hour, got)
		}
		for _, key := range []string{"ufc", "energyCostUSD", "carbonCostUSD", "gridMWh", "fuelCellMWh", "iterations", "dcLoad", "residualTrace"} {
			if _, ok := rec[key]; !ok {
				t.Errorf("slot %d missing %q", hour, key)
			}
		}
		if warm := rec["warmStarted"].(bool); warm != (hour > 0) {
			t.Errorf("slot %d warmStarted = %v", hour, warm)
		}
		if conv := rec["converged"].(bool); !conv {
			t.Errorf("slot %d did not converge", hour)
		}
		hour++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if hour != 4 {
		t.Fatalf("expected 4 NDJSON records, got %d", hour)
	}
}

// TestWarmRejectsDistributed: the two execution modes are exclusive.
func TestWarmRejectsDistributed(t *testing.T) {
	if err := run([]string{"-warm", "-distributed"}); err == nil {
		t.Fatal("-warm -distributed accepted")
	}
}

// TestTopologyFlagValidation: every malformed -topology spec and the
// -sparse dependency must be rejected before any work starts.
func TestTopologyFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"two fields", []string{"-topology", "4,10"}},
		{"four fields", []string{"-topology", "4,10,1,9"}},
		{"non-numeric", []string{"-topology", "4,ten,1"}},
		{"zero datacenters", []string{"-topology", "0,10,1"}},
		{"zero front-ends", []string{"-topology", "4,0,1"}},
		{"zero regions", []string{"-topology", "4,10,0"}},
		{"regions above N", []string{"-topology", "4,10,5"}},
		{"regions above M", []string{"-topology", "10,4,5"}},
		{"negative", []string{"-topology", "-4,10,1"}},
		{"sparse without topology", []string{"-sparse"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(append([]string{"-hours", "1", "-scale", "0.05"}, tc.args...)); err == nil {
				t.Errorf("%v accepted", tc.args)
			}
		})
	}
}

// TestTopologyFlagAccepted: a well-formed spec runs end to end, with and
// without the sparsity mask.
func TestTopologyFlagAccepted(t *testing.T) {
	if err := run([]string{"-hours", "1", "-topology", "2,4,2", "-sparse"}); err != nil {
		t.Fatal(err)
	}
}
