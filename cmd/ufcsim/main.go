// Command ufcsim runs the one-week trace-driven simulation of the paper's
// evaluation and prints per-hour results for the chosen strategy: UFC,
// energy cost, carbon cost, average latency, fuel-cell utilization and
// ADM-G iteration count.
//
// Usage:
//
//	ufcsim [-strategy hybrid|grid|fuelcell] [-hours n] [-scale f] [-seed n] [-distributed]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/distsim"
	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ufcsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ufcsim", flag.ContinueOnError)
	strategyName := fs.String("strategy", "hybrid", "hybrid, grid or fuelcell")
	hours := fs.Int("hours", 168, "horizon length in hours")
	scale := fs.Float64("scale", 1, "fleet scale relative to the paper")
	seed := fs.Int64("seed", 2012, "master random seed")
	maxIters := fs.Int("maxiters", 3000, "ADM-G iteration budget per slot")
	distributed := fs.Bool("distributed", false, "run each slot over the message-passing runtime")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var strategy core.Strategy
	switch *strategyName {
	case "hybrid":
		strategy = core.Hybrid
	case "grid":
		strategy = core.GridOnly
	case "fuelcell":
		strategy = core.FuelCellOnly
	default:
		return fmt.Errorf("unknown strategy %q", *strategyName)
	}

	cfg := experiments.DefaultConfig()
	cfg.Hours = *hours
	cfg.Scale = *scale
	cfg.Seed = *seed
	sc, err := experiments.NewScenario(cfg)
	if err != nil {
		return err
	}
	opts := core.Options{Strategy: strategy, MaxIterations: *maxIters}

	fmt.Printf("%4s  %12s  %10s  %10s  %8s  %6s  %5s\n",
		"hour", "UFC($)", "energy($)", "carbon($)", "lat(ms)", "FCutil", "iters")
	start := time.Now()
	var totalEnergy, totalCarbon float64
	for t := 0; t < cfg.Hours; t++ {
		inst := sc.InstanceAt(t)
		var (
			bd  core.Breakdown
			st  *core.Stats
			err error
		)
		if *distributed {
			m, n := inst.Cloud.M(), inst.Cloud.N()
			tr := distsim.NewChanTransport(distsim.AllAgentIDs(m, n), distsim.ChanOptions{Seed: int64(t)})
			var res *distsim.Result
			res, err = distsim.Run(inst, distsim.RunOptions{Solver: opts}, tr)
			if err == nil {
				bd, st = res.Breakdown, res.Stats
			}
			_ = tr.Close() //ufc:discard in-process transport; Run already surfaced any failure
		} else {
			_, bd, st, err = core.Solve(inst, opts)
		}
		if err != nil {
			return fmt.Errorf("hour %d: %w", t, err)
		}
		totalEnergy += bd.EnergyCostUSD
		totalCarbon += bd.CarbonCostUSD
		fmt.Printf("%4d  %12.2f  %10.2f  %10.2f  %8.2f  %5.1f%%  %5d\n",
			t, bd.UFC, bd.EnergyCostUSD, bd.CarbonCostUSD,
			bd.AvgLatencySec*1000, bd.FuelCellUtilization*100, st.Iterations)
	}
	fmt.Printf("\nstrategy %s: weekly energy $%.0f, carbon $%.0f, elapsed %v\n",
		strategy, totalEnergy, totalCarbon, time.Since(start).Round(time.Millisecond))
	return nil
}
