// Command ufcsim runs the one-week trace-driven simulation of the paper's
// evaluation and prints per-hour results for the chosen strategy: UFC,
// energy cost, carbon cost, average latency, fuel-cell utilization and
// ADM-G iteration count.
//
// Usage:
//
//	ufcsim [-strategy hybrid|grid|fuelcell] [-hours n] [-scale f] [-seed n]
//	       [-topology N,M,R] [-sparse]
//	       [-warm] [-distributed] [-transport chan|tcp] [-hub host:port]
//	       [-trace-residuals]
//	       [-metrics-addr host:port] [-ndjson file]
//	       [-fault-plan plan.json] [-retry-interval d] [-message-deadline d]
//	       [-staleness-cap n] [-dead-after n]
//	       [-tls-cert f] [-tls-key f] [-tls-ca f] [-auth-token s] [-wire-version v]
//
// With -topology N,M,R the paper's fixed 4×10 fleet is replaced by a
// synthetic one: N datacenters and M front-ends clustered into R
// geographic regions (see internal/experiments.NewSyntheticTopology).
// Adding -sparse restricts routing to intra-region pairs by setting the
// solver's SparsityCutoff to the topology's region cutoff — per-iteration
// work and wire traffic then scale with the number of feasible pairs
// instead of M·N.
//
// With -metrics-addr the run exposes a Prometheus /metrics endpoint
// (solver counters, phase timings, residual histograms) and net/http/pprof
// on the same listener for live profiling. With -ndjson every solved slot
// is appended to the given file (or stdout with "-") as one JSON record —
// the raw data behind the paper's Figs. 5–9.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/distsim"
	"repro/internal/experiments"
	"repro/internal/netcfg"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ufcsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ufcsim", flag.ContinueOnError)
	strategyName := fs.String("strategy", "hybrid", "hybrid, grid or fuelcell")
	hours := fs.Int("hours", 168, "horizon length in hours")
	scale := fs.Float64("scale", 1, "fleet scale relative to the paper")
	seed := fs.Int64("seed", 2012, "master random seed")
	topoSpec := fs.String("topology", "", "synthetic topology \"N,M,R\" (N datacenters, M front-ends, R regions) instead of the paper's 4x10 fleet")
	sparse := fs.Bool("sparse", false, "with -topology: restrict routing to intra-region pairs (sets the solver's SparsityCutoff to the region cutoff)")
	maxIters := fs.Int("maxiters", 3000, "ADM-G iteration budget per slot")
	distributed := fs.Bool("distributed", false, "run each slot over the message-passing runtime")
	transport := fs.String("transport", "chan", "with -distributed: chan (in-memory) or tcp (real wire)")
	hubAddr := fs.String("hub", "", "with -transport tcp: hub address (empty spins up a private loopback hub)")
	warm := fs.Bool("warm", false, "warm-start each slot from the previous slot's iterate")
	traceResiduals := fs.Bool("trace-residuals", false, "record per-iteration residuals (printed summary + ndjson residualTrace)")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus /metrics and net/http/pprof on this address")
	ndjsonPath := fs.String("ndjson", "", "append one JSON record per solved slot to this file (\"-\" for stdout)")
	faultPlanPath := fs.String("fault-plan", "", "JSON fault plan injected into the -distributed transport (enables the resilient protocol)")
	retryInterval := fs.Duration("retry-interval", 0, "base retransmit interval under -fault-plan (0 uses the default)")
	maxRetries := fs.Int("max-retries", 0, "retransmissions per blocked wait under -fault-plan (0 uses the default)")
	messageDeadline := fs.Duration("message-deadline", 0, "per-message degradation deadline under -fault-plan (0 uses the default; it dominates wall-clock once agents die)")
	stalenessCap := fs.Int("staleness-cap", 0, "consecutive stale rounds tolerated per peer before aborting (0 uses the default)")
	deadAfter := fs.Int("dead-after", 0, "missed reports before the coordinator declares an agent dead (0 uses the default)")
	var sec netcfg.Flags
	sec.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := sec.Validate(); err != nil {
		return err
	}
	if *warm && *distributed {
		return fmt.Errorf("-warm requires the in-process engine; it cannot be combined with -distributed")
	}
	switch *transport {
	case "chan", "tcp":
	default:
		return fmt.Errorf("-transport %q: must be chan or tcp", *transport)
	}
	if *transport == "chan" && *hubAddr != "" {
		return fmt.Errorf("-hub requires -transport tcp")
	}
	security, err := sec.ClientSecurity()
	if err != nil {
		return err
	}
	hubTarget := *hubAddr
	if *distributed && *transport == "tcp" && hubTarget == "" {
		if security.TLS != nil {
			return fmt.Errorf("-tls-* with a private loopback hub is unsupported; start a ufchub and pass -hub")
		}
		// The loopback hub shares the token/version flags, so the wire the
		// slots cross is the same one a real deployment would negotiate.
		hub, err := distsim.Listen(context.Background(), distsim.ListenConfig{Addr: "127.0.0.1:0", Security: security})
		if err != nil {
			return err
		}
		defer func() { _ = hub.Close() }() //ufc:discard private loopback hub; the run's outcome was already decided
		hubTarget = hub.Addr()
	}
	var faultPlan *distsim.FaultPlan
	if *faultPlanPath != "" {
		if !*distributed {
			return fmt.Errorf("-fault-plan requires -distributed")
		}
		data, err := os.ReadFile(*faultPlanPath)
		if err != nil {
			return err
		}
		faultPlan, err = distsim.ParseFaultPlan(data)
		if err != nil {
			return fmt.Errorf("fault plan %s: %w", *faultPlanPath, err)
		}
	}

	var strategy core.Strategy
	switch *strategyName {
	case "hybrid":
		strategy = core.Hybrid
	case "grid":
		strategy = core.GridOnly
	case "fuelcell":
		strategy = core.FuelCellOnly
	default:
		return fmt.Errorf("unknown strategy %q", *strategyName)
	}

	cfg := experiments.DefaultConfig()
	cfg.Hours = *hours
	cfg.Scale = *scale
	cfg.Seed = *seed
	sc, err := experiments.NewScenario(cfg)
	if err != nil {
		return err
	}
	var topo *experiments.SyntheticTopology
	if *topoSpec != "" {
		spec, err := experiments.ParseTopology(*topoSpec)
		if err != nil {
			return err
		}
		topo, err = experiments.NewSyntheticTopology(spec, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "synthetic topology %s: %.0f servers, region cutoff %.2fms\n",
			spec, topo.Cloud.TotalServers(), topo.CutoffSec*1000)
	} else if *sparse {
		return fmt.Errorf("-sparse requires -topology")
	}
	// instanceAt yields hour t's instance: the paper trace scenario, or the
	// synthetic topology with per-hour arrival/price draws.
	instanceAt := func(t int) *core.Instance {
		if topo != nil {
			return topo.Instance(*seed + int64(t))
		}
		return sc.InstanceAt(t)
	}
	probe := telemetry.NewSolverProbe()
	opts := core.Options{
		Strategy:       strategy,
		MaxIterations:  *maxIters,
		TrackResiduals: *traceResiduals,
		Probe:          probe,
	}
	if *sparse {
		opts.SparsityCutoff = topo.CutoffSec
	}

	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		telemetry.RegisterBuildInfo(reg, "ufcsim")
		probe.Register(reg)
		msrv, err := telemetry.StartServerOpts(*metricsAddr, reg, telemetry.ServerOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = msrv.Close() }() //ufc:discard process is exiting; nothing to salvage from the listener
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (pprof at /debug/pprof/)\n", msrv.Addr())
	}

	var emit *telemetry.NDJSONEmitter
	if *ndjsonPath != "" {
		w := io.Writer(os.Stdout)
		if *ndjsonPath != "-" {
			f, err := os.Create(*ndjsonPath)
			if err != nil {
				return err
			}
			defer func() { _ = f.Close() }() //ufc:discard emitter Flush below reports the meaningful write errors
			w = f
		}
		emit = telemetry.NewNDJSONEmitter(w)
	}

	// Warm-start mode keeps one engine and one iterate alive across the
	// whole week: Reset swaps in each slot's prices/arrivals and
	// SolveState continues from the previous slot's converged state.
	var (
		eng   *core.Engine
		state *core.State
	)
	if *warm {
		inst0 := instanceAt(0)
		eng, err = core.NewEngine(inst0, opts)
		if err != nil {
			return err
		}
		defer eng.Close()
		state = core.NewState(inst0.Cloud.M(), inst0.Cloud.N())
	}

	fmt.Printf("%4s  %12s  %10s  %10s  %8s  %6s  %5s\n",
		"hour", "UFC($)", "energy($)", "carbon($)", "lat(ms)", "FCutil", "iters")
	start := time.Now()
	var totalEnergy, totalCarbon float64
	var totalIters int
	for t := 0; t < cfg.Hours; t++ {
		inst := instanceAt(t)
		var (
			alloc *core.Allocation
			bd    core.Breakdown
			st    *core.Stats
			err   error
		)
		switch {
		case *distributed:
			m, n := inst.Cloud.M(), inst.Cloud.N()
			ids := distsim.AllAgentIDs(m, n)
			var tr distsim.Transport
			if *transport == "tcp" {
				var ep distsim.Endpoint
				ep, err = distsim.Dial(context.Background(), distsim.DialConfig{Addr: hubTarget, AgentIDs: ids, Security: security})
				if err != nil {
					return fmt.Errorf("hour %d: %w", t, err)
				}
				tr = ep.(*distsim.TCPNode)
			} else {
				tr = distsim.NewChanTransport(ids, distsim.ChanOptions{Seed: int64(t)})
			}
			ro := distsim.RunOptions{Solver: opts}
			if faultPlan != nil {
				tr, err = distsim.NewFaultTransport(tr, faultPlan)
				if err != nil {
					return fmt.Errorf("hour %d: %w", t, err)
				}
				ro.Resilience = &distsim.Resilience{
					Seed:            faultPlan.Seed,
					RetryInterval:   *retryInterval,
					MaxRetries:      *maxRetries,
					MessageDeadline: *messageDeadline,
					StalenessCap:    *stalenessCap,
					DeadAfter:       *deadAfter,
				}
			}
			var res *distsim.Result
			res, err = distsim.Run(context.Background(), inst, ro, tr)
			if err == nil {
				alloc, bd, st = res.Allocation, res.Breakdown, res.Stats
				if res.Degradation != nil {
					d := res.Degradation
					fmt.Fprintf(os.Stderr, "      degraded: dead=%v missedReports=%d staleRounds=%d proximityFE=%v\n",
						d.DeadAgents, d.MissedReports, d.StaleRounds, d.ProximityFrontEnds)
				}
			}
			_ = tr.Close() //ufc:discard in-process transport; Run already surfaced any failure
		case *warm:
			if t > 0 {
				err = eng.Reset(inst)
			}
			if err == nil {
				alloc, bd, st, err = eng.SolveState(state)
			}
		default:
			alloc, bd, st, err = core.Solve(inst, opts)
		}
		if err != nil {
			return fmt.Errorf("hour %d: %w", t, err)
		}
		totalEnergy += bd.EnergyCostUSD
		totalCarbon += bd.CarbonCostUSD
		totalIters += st.Iterations
		fmt.Printf("%4d  %12.2f  %10.2f  %10.2f  %8.2f  %5.1f%%  %5d\n",
			t, bd.UFC, bd.EnergyCostUSD, bd.CarbonCostUSD,
			bd.AvgLatencySec*1000, bd.FuelCellUtilization*100, st.Iterations)
		if *traceResiduals && len(st.ResidualTrace) > 0 {
			first, last := st.ResidualTrace[0], st.ResidualTrace[len(st.ResidualTrace)-1]
			fmt.Printf("      residuals: %d recorded, first %.3e, last %.3e\n",
				len(st.ResidualTrace), first, last)
		}
		if emit != nil {
			if err := emit.Emit(experiments.NewSlotRecord(t, strategy, bd, alloc, st, *warm && t > 0)); err != nil {
				return fmt.Errorf("hour %d: ndjson: %w", t, err)
			}
		}
	}
	if emit != nil {
		if err := emit.Flush(); err != nil {
			return fmt.Errorf("ndjson flush: %w", err)
		}
	}
	fmt.Printf("\nstrategy %s: weekly energy $%.0f, carbon $%.0f, %d ADM-G iterations (%d warm-started solves), elapsed %v\n",
		strategy, totalEnergy, totalCarbon, totalIters, probe.WarmStarts(), time.Since(start).Round(time.Millisecond))
	return nil
}
