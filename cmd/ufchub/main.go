// Command ufchub runs the TCP message hub for a multi-process distributed
// solve. Start the hub, then start one or more ufcnode processes pointing
// at it; together they execute the distributed 4-block ADM-G protocol.
//
//	ufchub -listen 127.0.0.1:7070
//	ufcnode -hub 127.0.0.1:7070 -instance inst.json -agents fe-0,fe-1,...  &
//	ufcnode -hub 127.0.0.1:7070 -instance inst.json -agents dc-0,...      &
//	ufcnode -hub 127.0.0.1:7070 -instance inst.json -agents coord
//
// Hubs compose into a tree for large topologies: start a root hub, then
// one sub-hub per region with -parent pointing at the root, and connect
// each region's nodes to its sub-hub. Intra-region traffic terminates at
// the sub-hub; the rest travels the hub↔hub links as coalesced batch
// records.
//
//	ufchub -listen :7070                                          # root
//	ufchub -listen :7071 -parent 127.0.0.1:7070 -region 0         # region 0
//	ufchub -listen :7072 -parent 127.0.0.1:7070 -region 1         # region 1
//
// With -serve the hub additionally becomes an online control plane: a
// background pipeline re-solves the -topology instance every
// -slot-interval on a rolling horizon (warm-started from the previous
// slot's iterate) and publishes each slot's routing table as an immutable
// snapshot. Lookup records arriving on any connection are answered from
// the current snapshot — one atomic load, no locks, no allocation — so
// decision latency is independent of solve time. Drive it with ufcload:
//
//	ufchub -listen :7070 -serve -topology 20,200,4 -slot-interval 500ms -slot-cycle 8
//	ufcload -addr 127.0.0.1:7070 -conns 4 -rps 20000 -duration 10s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/distsim"
	"repro/internal/experiments"
	"repro/internal/netcfg"
	"repro/internal/telemetry"
	"repro/internal/telemetry/tracing"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ufchub:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ufchub", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7070", "address to listen on")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus /metrics and net/http/pprof on this address")
	idleTimeout := fs.Duration("idle-timeout", 0, "drop node connections silent for this long (0 disables; pair with ufcnode -heartbeat-interval)")
	parent := fs.String("parent", "", "parent hub address; makes this a regional sub-hub in a hub tree")
	region := fs.Int("region", 0, "region tag reported to the parent hub (with -parent)")
	routeShards := fs.Int("route-shards", 0, "routing-table shards, power of two (0 uses the default)")
	serve := fs.Bool("serve", false, "run an online control plane: rolling-horizon solves of -topology, lookups answered from the live snapshot")
	topoSpec := fs.String("topology", "", "with -serve: synthetic topology \"N,M,R\" to serve (required)")
	seed := fs.Int64("seed", 7, "with -serve: synthetic topology base seed")
	slotInterval := fs.Duration("slot-interval", time.Second, "with -serve: pacing between slot re-solves")
	slotCycle := fs.Int("slot-cycle", 0, "with -serve: cycle per-slot inputs over this many distinct slots (> 0 exercises the memo cache; 0 = every slot distinct)")
	cacheSize := fs.Int("cache-size", 64, "with -serve: solve memoization cache entries (0 disables)")
	maxIters := fs.Int("maxiters", 0, "with -serve: per-slot solver iteration budget (0 = solver default)")
	solverWorkers := fs.Int("solver-workers", runtime.GOMAXPROCS(0), "with -serve: solver worker goroutines")
	cold := fs.Bool("cold", false, "with -serve: disable warm starts (every slot solves from zero; the baseline ufcload's bench compares against)")
	var sec netcfg.Flags
	sec.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := sec.Validate(); err != nil {
		return err
	}

	var reg *telemetry.Registry
	var traceReg *tracing.Registry
	var hubTracer, cpTracer *tracing.Recorder
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
		telemetry.RegisterBuildInfo(reg, "ufchub")
		// One deterministic ID stream per process; recorders share it so a
		// hub-side span never collides with a pipeline-side one.
		traceReg = tracing.NewRegistry()
		ids := tracing.NewIDSource(*seed)
		hubTracer = traceReg.Recorder(tracing.Config{Component: "hub", IDs: ids, SampleEvery: 1})
		cpTracer = traceReg.Recorder(tracing.Config{Component: "controlplane", IDs: ids, SampleEvery: 1})
	}

	security, err := sec.ServerSecurity()
	if err != nil {
		return err
	}
	cfg := distsim.ListenConfig{
		Addr:        *listen,
		IdleTimeout: *idleTimeout,
		RouteShards: *routeShards,
		Parent:      *parent,
		Region:      *region,
		Tracer:      hubTracer,
		Security:    security,
	}
	if *parent != "" {
		// The uplink is a dial: reuse the same flag block as a client
		// (-tls-ca verifies the parent, -tls-cert/-tls-key is presented
		// when the parent demands mutual TLS).
		psec, err := sec.ClientSecurity()
		if err != nil {
			return err
		}
		cfg.ParentSecurity = &psec
	}

	var pipe *controlplane.Pipeline
	if *serve {
		var err error
		if pipe, err = newServePipeline(*topoSpec, *seed, *slotCycle, *cacheSize, *maxIters, *solverWorkers, *slotInterval, !*cold, reg, cpTracer); err != nil {
			return err
		}
		cfg.Decider = pipe
	} else {
		for _, f := range []struct {
			set  bool
			name string
		}{
			{*topoSpec != "", "-topology"},
			{*slotCycle != 0, "-slot-cycle"},
			{*cold, "-cold"},
		} {
			if f.set {
				return fmt.Errorf("%s requires -serve", f.name)
			}
		}
	}

	hub, err := distsim.Listen(context.Background(), cfg)
	if err != nil {
		return err
	}
	defer func() { _ = hub.Close() }() //ufc:discard best-effort cleanup on the signal-driven exit path
	fmt.Println("hub listening on", hub.Addr())

	if pipe != nil {
		// First solve completes before Run returns: the hub never serves a
		// "no snapshot" decision to a client that waited for this line.
		if err := pipe.Run(); err != nil {
			return fmt.Errorf("control plane: %w", err)
		}
		defer func() { _ = pipe.Stop() }() //ufc:discard report below prints the final state
		r := pipe.Report()
		fmt.Printf("control plane serving %s (slot 0: %d iterations)\n", *topoSpec, r.ColdIterations)
	}

	if reg != nil {
		hub.RegisterMetrics(reg, telemetry.L("component", "hub"))
		srvOpts := telemetry.ServerOptions{Trace: traceReg.Handler()}
		if pipe != nil {
			// A serving hub is ready once a snapshot has been published;
			// plain forwarding hubs are ready as soon as they listen.
			router := pipe.Router()
			srvOpts.Ready = func() bool { return router.Current() != nil }
		}
		msrv, err := telemetry.StartServerOpts(*metricsAddr, reg, srvOpts)
		if err != nil {
			return err
		}
		defer func() { _ = msrv.Close() }() //ufc:discard process is exiting; nothing to salvage from the listener
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (pprof at /debug/pprof/, traces at /debug/ufc/trace)\n", msrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := hub.Stats()
	fmt.Printf("shutting down: forwarded %d msgs / %d bytes, %d flushes (avg batch %.1f, max %d)\n",
		st.MessagesSent, st.BytesSent, st.Flushes, st.AvgBatch(), st.MaxBatch)
	if pipe != nil {
		r := pipe.Report()
		fmt.Printf("control plane: %d solves (%d warm avg %.0f iters, %d cold avg %.0f iters), cache %d hits / %d misses, %d decisions\n",
			r.Solves, r.WarmSolves, r.WarmPerSolve(), r.ColdSolves, r.ColdPerSolve(), r.CacheHits, r.CacheMisses, st.DecisionsAnswered)
	}
	return nil
}

// newServePipeline validates the -serve flag set and builds the rolling
// horizon pipeline (idle; the caller starts it).
func newServePipeline(topoSpec string, seed int64, slotCycle, cacheSize, maxIters, workers int, interval time.Duration, warm bool, reg *telemetry.Registry, tracer *tracing.Recorder) (*controlplane.Pipeline, error) {
	if topoSpec == "" {
		return nil, fmt.Errorf("-serve requires -topology \"N,M,R\"")
	}
	spec, err := experiments.ParseTopology(topoSpec)
	if err != nil {
		return nil, err
	}
	if slotCycle < 0 {
		return nil, fmt.Errorf("-slot-cycle %d: must be >= 0", slotCycle)
	}
	if cacheSize < 0 {
		return nil, fmt.Errorf("-cache-size %d: must be >= 0", cacheSize)
	}
	if maxIters < 0 {
		return nil, fmt.Errorf("-maxiters %d: must be >= 0", maxIters)
	}
	if interval < 0 {
		return nil, fmt.Errorf("-slot-interval %v: must be >= 0", interval)
	}
	st, err := experiments.NewSyntheticTopology(spec, seed)
	if err != nil {
		return nil, err
	}
	solver := core.Options{
		Workers:       workers,
		MaxIterations: maxIters,
		Tolerance:     core.OneServerTolerance(st.Instance(seed)),
	}
	if spec.Regions > 1 {
		solver.SparsityCutoff = st.CutoffSec
	}
	return controlplane.New(controlplane.Config{
		Instance: func(slot int64) *core.Instance {
			if slotCycle > 0 {
				slot %= int64(slotCycle)
			}
			return st.SlotInstance(seed, slot)
		},
		Solver:       solver,
		WarmStart:    warm,
		CacheSize:    cacheSize,
		Quantum:      1e-3,
		SlotInterval: interval,
		Metrics:      reg,
		Tracer:       tracer,
	})
}
