// Command ufchub runs the TCP message hub for a multi-process distributed
// solve. Start the hub, then start one or more ufcnode processes pointing
// at it; together they execute the distributed 4-block ADM-G protocol.
//
//	ufchub -listen 127.0.0.1:7070
//	ufcnode -hub 127.0.0.1:7070 -instance inst.json -agents fe-0,fe-1,...  &
//	ufcnode -hub 127.0.0.1:7070 -instance inst.json -agents dc-0,...      &
//	ufcnode -hub 127.0.0.1:7070 -instance inst.json -agents coord
//
// Hubs compose into a tree for large topologies: start a root hub, then
// one sub-hub per region with -parent pointing at the root, and connect
// each region's nodes to its sub-hub. Intra-region traffic terminates at
// the sub-hub; the rest travels the hub↔hub links as coalesced batch
// records.
//
//	ufchub -listen :7070                                          # root
//	ufchub -listen :7071 -parent 127.0.0.1:7070 -region 0         # region 0
//	ufchub -listen :7072 -parent 127.0.0.1:7070 -region 1         # region 1
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/distsim"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ufchub:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ufchub", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7070", "address to listen on")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus /metrics and net/http/pprof on this address")
	idleTimeout := fs.Duration("idle-timeout", 0, "drop node connections silent for this long (0 disables; pair with ufcnode -heartbeat-interval)")
	parent := fs.String("parent", "", "parent hub address; makes this a regional sub-hub in a hub tree")
	region := fs.Int("region", 0, "region tag reported to the parent hub (with -parent)")
	routeShards := fs.Int("route-shards", 0, "routing-table shards, power of two (0 uses the default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	hub, err := distsim.NewTCPHubOpts(*listen, distsim.HubOptions{
		IdleTimeout: *idleTimeout,
		RouteShards: *routeShards,
		Parent:      *parent,
		Region:      *region,
	})
	if err != nil {
		return err
	}
	defer func() { _ = hub.Close() }() //ufc:discard best-effort cleanup on the signal-driven exit path
	fmt.Println("hub listening on", hub.Addr())

	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		hub.RegisterMetrics(reg, telemetry.L("component", "hub"))
		msrv, err := telemetry.StartServer(*metricsAddr, reg)
		if err != nil {
			return err
		}
		defer func() { _ = msrv.Close() }() //ufc:discard process is exiting; nothing to salvage from the listener
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (pprof at /debug/pprof/)\n", msrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := hub.Stats()
	fmt.Printf("shutting down: forwarded %d msgs / %d bytes, %d flushes (avg batch %.1f, max %d)\n",
		st.MessagesSent, st.BytesSent, st.Flushes, st.AvgBatch(), st.MaxBatch)
	return nil
}
