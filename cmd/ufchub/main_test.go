package main

import (
	"strings"
	"testing"
	"time"
)

// TestRunFlagValidation: every invalid flag combination must fail fast —
// before a listener is bound or a solve starts.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"route shards not power of two", []string{"-route-shards", "3"}, "power of two"},
		{"route shards negative", []string{"-route-shards", "-2"}, "power of two"},
		{"topology without serve", []string{"-topology", "4,10,1"}, "-topology requires -serve"},
		{"slot cycle without serve", []string{"-slot-cycle", "4"}, "-slot-cycle requires -serve"},
		{"cold without serve", []string{"-cold"}, "-cold requires -serve"},
		{"serve without topology", []string{"-serve"}, "-serve requires -topology"},
		{"serve bad topology", []string{"-serve", "-topology", "4,10"}, "want N,M,R"},
		{"serve zero-agent topology", []string{"-serve", "-topology", "0,10,1"}, "N ≥ 1"},
		{"serve regions above min", []string{"-serve", "-topology", "4,10,5"}, "1 ≤ R ≤ min(N, M)"},
		{"negative slot cycle", []string{"-serve", "-topology", "4,10,1", "-slot-cycle", "-1"}, "-slot-cycle"},
		{"negative cache size", []string{"-serve", "-topology", "4,10,1", "-cache-size", "-1"}, "-cache-size"},
		{"negative maxiters", []string{"-serve", "-topology", "4,10,1", "-maxiters", "-5"}, "-maxiters"},
		{"negative slot interval", []string{"-serve", "-topology", "4,10,1", "-slot-interval", "-1s"}, "-slot-interval"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(append([]string{"-listen", "127.0.0.1:0"}, tc.args...))
			if err == nil {
				t.Fatalf("%v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestNewServePipelineValid: a well-formed -serve flag set yields an idle
// pipeline whose first slot solves on demand.
func TestNewServePipelineValid(t *testing.T) {
	pipe, err := newServePipeline("3,6,3", 7, 2, 8, 500, 1, 50*time.Millisecond, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.RunSlot(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pipe.Stop() }() //ufc:discard test cleanup
	if _, _, _, ok := pipe.Decide(0, 0); !ok {
		t.Fatal("no decision after the first slot solved")
	}
	if r := pipe.Report(); r.Solves != 1 {
		t.Fatalf("%d solves after one RunSlot", r.Solves)
	}
}
