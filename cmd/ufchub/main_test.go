package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/distsim"
	"repro/internal/telemetry/tracing"
)

// TestRunFlagValidation: every invalid flag combination must fail fast —
// before a listener is bound or a solve starts.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"route shards not power of two", []string{"-route-shards", "3"}, "power of two"},
		{"route shards negative", []string{"-route-shards", "-2"}, "power of two"},
		{"topology without serve", []string{"-topology", "4,10,1"}, "-topology requires -serve"},
		{"slot cycle without serve", []string{"-slot-cycle", "4"}, "-slot-cycle requires -serve"},
		{"cold without serve", []string{"-cold"}, "-cold requires -serve"},
		{"serve without topology", []string{"-serve"}, "-serve requires -topology"},
		{"serve bad topology", []string{"-serve", "-topology", "4,10"}, "want N,M,R"},
		{"serve zero-agent topology", []string{"-serve", "-topology", "0,10,1"}, "N ≥ 1"},
		{"serve regions above min", []string{"-serve", "-topology", "4,10,5"}, "1 ≤ R ≤ min(N, M)"},
		{"negative slot cycle", []string{"-serve", "-topology", "4,10,1", "-slot-cycle", "-1"}, "-slot-cycle"},
		{"negative cache size", []string{"-serve", "-topology", "4,10,1", "-cache-size", "-1"}, "-cache-size"},
		{"negative maxiters", []string{"-serve", "-topology", "4,10,1", "-maxiters", "-5"}, "-maxiters"},
		{"negative slot interval", []string{"-serve", "-topology", "4,10,1", "-slot-interval", "-1s"}, "-slot-interval"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(append([]string{"-listen", "127.0.0.1:0"}, tc.args...))
			if err == nil {
				t.Fatalf("%v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestNewServePipelineValid: a well-formed -serve flag set yields an idle
// pipeline whose first slot solves on demand.
func TestNewServePipelineValid(t *testing.T) {
	pipe, err := newServePipeline("3,6,3", 7, 2, 8, 500, 1, 50*time.Millisecond, true, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.RunSlot(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pipe.Stop() }() //ufc:discard test cleanup
	if _, _, _, ok := pipe.Decide(0, 0); !ok {
		t.Fatal("no decision after the first slot solved")
	}
	if r := pipe.Report(); r.Solves != 1 {
		t.Fatalf("%d solves after one RunSlot", r.Solves)
	}
}

// TestTraceSpansThreeComponents wires the full serving plane in-process —
// load-generator client, TCP hub and control-plane pipeline sharing one
// trace registry, exactly as a ufchub -serve -metrics-addr process does —
// and asserts that a single traced lookup yields one trace id whose spans
// are retrievable over /debug/ufc/trace and cover all three components.
func TestTraceSpansThreeComponents(t *testing.T) {
	traceReg := tracing.NewRegistry()
	ids := tracing.NewIDSource(7)
	lgTracer := traceReg.Recorder(tracing.Config{Component: "loadgen", IDs: ids, SampleEvery: 1})
	hubTracer := traceReg.Recorder(tracing.Config{Component: "hub", IDs: ids, SampleEvery: 1})
	cpTracer := traceReg.Recorder(tracing.Config{Component: "controlplane", IDs: ids, SampleEvery: 1})

	pipe, err := newServePipeline("3,6,3", 7, 2, 8, 500, 1, 50*time.Millisecond, true, nil, cpTracer)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pipe.Stop() }() //ufc:discard test cleanup
	if err := pipe.RunSlot(); err != nil {
		t.Fatal(err)
	}

	hub, err := distsim.NewTCPHubOpts("127.0.0.1:0", distsim.HubOptions{Decider: pipe, Tracer: hubTracer})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }() //ufc:discard test cleanup

	got := make(chan distsim.Decision, 1)
	client, err := distsim.DialLookup(hub.Addr(), "lg-0", func(d distsim.Decision) { got <- d })
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }() //ufc:discard test cleanup

	sp := lgTracer.Root("load.request")
	tc := sp.Context()
	sp.End()
	if !tc.Valid() {
		t.Fatal("root span has no context with SampleEvery=1")
	}
	sentNanos := time.Now().UnixNano()
	if err := client.LookupTraced(0, 1, 42, tc); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-got:
		if !d.OK {
			t.Fatal("lookup answered unavailable with a published snapshot")
		}
		lgTracer.RecordSpan(tc, "load.decide", sentNanos, time.Now().UnixNano(),
			tracing.I64("req", 1), tracing.I64("dc", int64(d.DC)))
	case <-time.After(5 * time.Second):
		t.Fatal("no decision within 5s")
	}

	// The hub-side spans commit on the hub's reader goroutine; the decision
	// reaching the client happens-after them, but poll briefly anyway.
	srv := httptest.NewServer(traceReg.Handler())
	defer srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/?trace=" + tc.Trace.String())
		if err != nil {
			t.Fatal(err)
		}
		var dump struct {
			Spans []tracing.SpanRecord `json:"spans"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close() //ufc:discard test loop
		comps := map[string]bool{}
		for _, s := range dump.Spans {
			if s.Trace != tc.Trace.String() {
				t.Fatalf("span %q has trace %s, want %s", s.Name, s.Trace, tc.Trace)
			}
			comps[s.Component] = true
		}
		if comps["loadgen"] && comps["hub"] && comps["controlplane"] {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s spans components %v, want loadgen+hub+controlplane (spans: %+v)",
				tc.Trace, comps, dump.Spans)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
