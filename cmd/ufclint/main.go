// Command ufclint runs the repository's custom static analyzers (see
// internal/analysis): detrand, hotalloc, wiresafe and errdiscard enforce
// the solver's determinism, zero-allocation and wire-safety invariants at
// compile time.
//
// Two modes:
//
//	ufclint ./...                          # standalone: load, check, report
//	go vet -vettool=$(which ufclint) ./... # vet unit-checker protocol
//
// Standalone mode shells out to `go list -export -deps -json` and
// type-checks each target package against its dependencies' export data —
// no third-party loader required. Vet-tool mode implements the cmd/go unit
// checker contract: it is invoked once per package with a JSON config file
// argument, and with -V=full for the toolchain's cache key.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args))
}

func run(argv []string) int {
	progname := filepath.Base(argv[0])
	args := argv[1:]

	// cmd/go probes the tool before every vet run: -V=full for the action
	// cache key (the reply must start with "<name> version") and -flags for
	// the tool's analyzer flags (a JSON array).
	for _, a := range args {
		switch a {
		case "-V=full", "-V":
			fmt.Printf("%s version 1.0.0\n", strings.TrimSuffix(progname, ".exe"))
			return 0
		case "-flags":
			fmt.Println("[]")
			return 0
		}
	}

	fs := flag.NewFlagSet(progname, flag.ContinueOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := analysis.All()
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "%s: unknown analyzer %q\n", progname, name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitCheck(rest[0], analyzers)
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	return standalone(rest, analyzers)
}

// ---------------------------------------------------------------------------
// Standalone mode: go list -export -deps -json.

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

func standalone(patterns []string, analyzers []*analysis.Analyzer) int {
	cmdArgs := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ufclint: go list: %v\n", err)
		return 2
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "ufclint: parse go list output: %v\n", err)
			return 2
		}
		pkgs = append(pkgs, p)
	}

	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	exitCode := 0
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			fmt.Fprintf(os.Stderr, "ufclint: %s: %s\n", p.ImportPath, p.Error.Err)
			exitCode = 2
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		diags, err := checkPackage(fset, p.ImportPath, files, p.ImportMap, exports, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ufclint: %s: %v\n", p.ImportPath, err)
			exitCode = 2
			continue
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		if len(diags) > 0 {
			exitCode = 1
		}
	}
	return exitCode
}

// checkPackage parses and type-checks one package against precompiled
// export data and runs the analyzers over it.
func checkPackage(fset *token.FileSet, path string, files []string, importMap, exports map[string]string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, af)
	}
	imp := importer.ForCompiler(fset, "gc", func(p string) (io.ReadCloser, error) {
		if mapped, ok := importMap[p]; ok {
			p = mapped
		}
		file, ok := exports[p]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(file)
	})
	conf := types.Config{Importer: imp}
	info := analysis.NewInfo()
	pkg, err := conf.Check(path, fset, syntax, info)
	if err != nil {
		return nil, err
	}
	diags, err := analysis.Run(fset, syntax, pkg, info, analyzers)
	sortDiags(fset, diags)
	return diags, err
}

func sortDiags(fset *token.FileSet, diags []analysis.Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
}

// ---------------------------------------------------------------------------
// Vet-tool mode: the cmd/go unit checker protocol.

// vetConfig mirrors the JSON config cmd/go hands a -vettool (one package
// per invocation).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitCheck(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ufclint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ufclint: parse %s: %v\n", cfgPath, err)
		return 2
	}
	// The analyzers export no facts, but cmd/go expects the facts file to
	// exist as a cacheable action output.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("ufclint: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "ufclint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var syntax []*ast.File
	for _, f := range cfg.GoFiles {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "ufclint: %v\n", err)
			return 2
		}
		syntax = append(syntax, af)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(p string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[p]; ok {
			p = mapped
		}
		file, ok := cfg.PackageFile[p]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(file)
	})
	conf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	info := analysis.NewInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, syntax, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "ufclint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	diags, err := analysis.Run(fset, syntax, pkg, info, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ufclint: %v\n", err)
		return 2
	}
	sortDiags(fset, diags)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
