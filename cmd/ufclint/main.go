// Command ufclint runs the repository's custom static analyzers (see
// internal/analysis): detrand, hotalloc, wiresafe, errdiscard, ctxflow,
// atomicpub and leakcheck enforce the solver's determinism,
// zero-allocation, wire-safety, error-handling and concurrency invariants
// at compile time.
//
// Two modes:
//
//	ufclint ./...                          # standalone: load, check, report
//	go vet -vettool=$(which ufclint) ./... # vet unit-checker protocol
//
// Standalone mode shells out to `go list -export -deps -json` and
// type-checks each target package against its dependencies' export data —
// no third-party loader required. Dependency packages inside the module
// are analyzed first (diagnostics suppressed) so their exported facts are
// visible when the target packages are checked.
//
// Vet-tool mode implements the cmd/go unit checker contract: it is invoked
// once per package with a JSON config file argument, and with -V=full for
// the toolchain's cache key. Facts are serialized to the config's
// VetxOutput and replayed from its PackageVetx map, so cross-package
// checks work identically under `go vet` — cmd/go schedules dependencies
// first and caches their fact files.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args))
}

// version is ufclint's nominal version — bumped to 2.x when facts replaced
// the stub vetx files.
const version = "2.0.0"

// versionLine is the -V=full reply. cmd/go keys its vet action cache (both
// diagnostics and vetx fact files) on it, so it must change whenever
// analyzer or fact semantics do; hashing the tool's own executable makes
// every rebuild a fresh key, the same scheme the x/tools unitchecker uses.
func versionLine(progname string) string {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			//ufc:discard a short hash of a partially read binary still changes on rebuild
			_, _ = io.Copy(h, f)
			//ufc:discard the file was only read
			_ = f.Close()
		}
	}
	return fmt.Sprintf("%s version %s buildID=%02x", progname, version, h.Sum(nil))
}

func run(argv []string) int {
	progname := filepath.Base(argv[0])
	args := argv[1:]

	// cmd/go probes the tool before every vet run: -V=full for the action
	// cache key (the reply must start with "<name> version") and -flags for
	// the tool's analyzer flags (a JSON array).
	for _, a := range args {
		switch a {
		case "-V=full", "-V":
			fmt.Println(versionLine(strings.TrimSuffix(progname, ".exe")))
			return 0
		case "-flags":
			fmt.Println("[]")
			return 0
		}
	}

	fs := flag.NewFlagSet(progname, flag.ContinueOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	dumpFacts := fs.Bool("facts", false, "after analysis, dump the accumulated fact store to stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := analysis.All()
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "%s: unknown analyzer %q\n", progname, name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitCheck(rest[0], analyzers)
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	return standalone(rest, analyzers, *jsonOut, *dumpFacts)
}

// ---------------------------------------------------------------------------
// Diagnostic output.

// jsonDiag is the -json wire form of one finding. File is relative to the
// working directory when possible, so golden output is machine-independent.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// sortDiags orders findings by resolved position (file, line, column),
// then analyzer — token.Pos order would depend on file registration order,
// which varies with the package iteration.
func sortDiags(fset *token.FileSet, diags []analysis.Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// relPath makes path relative to the working directory if it is beneath it.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	if rel, err := filepath.Rel(wd, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return path
}

// emitDiags prints findings — human-readable lines on stderr, or (jsonOut)
// one JSON array on stdout.
func emitDiags(fset *token.FileSet, diags []analysis.Diagnostic, jsonOut bool) {
	sortDiags(fset, diags)
	if !jsonOut {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		return
	}
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		out = append(out, jsonDiag{
			File:     relPath(pos.Filename),
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	//ufc:discard stdout encode failure is unreportable anyway
	_ = enc.Encode(out)
}

// ---------------------------------------------------------------------------
// Standalone mode: go list -export -deps -json.

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

func standalone(patterns []string, analyzers []*analysis.Analyzer, jsonOut, dumpFacts bool) int {
	cmdArgs := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ufclint: go list: %v\n", err)
		return 2
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "ufclint: parse go list output: %v\n", err)
			return 2
		}
		pkgs = append(pkgs, p)
	}

	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	// One store for the whole run: `go list -deps` emits dependencies
	// before dependents, so each package's exporters run before any
	// importer consults them. Dependency-only packages are analyzed for
	// their facts; only the named target packages report diagnostics.
	facts := analysis.NewFactStore(analyzers)
	fset := token.NewFileSet()
	exitCode := 0
	var all []analysis.Diagnostic
	for _, p := range pkgs {
		if p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			if p.DepOnly {
				continue
			}
			fmt.Fprintf(os.Stderr, "ufclint: %s: %s\n", p.ImportPath, p.Error.Err)
			exitCode = 2
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		diags, err := checkPackage(fset, p.ImportPath, files, p.ImportMap, exports, analyzers, facts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ufclint: %s: %v\n", p.ImportPath, err)
			exitCode = 2
			continue
		}
		if p.DepOnly {
			continue // facts are in the store; findings belong to its own lint run
		}
		all = append(all, diags...)
	}
	emitDiags(fset, all, jsonOut)
	if len(all) > 0 && exitCode == 0 {
		exitCode = 1
	}
	if dumpFacts {
		data, err := facts.Encode()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ufclint: encode facts: %v\n", err)
			return 2
		}
		_, _ = os.Stdout.Write(data) //ufc:discard a stdout write failure has nowhere to be reported
		fmt.Println()
	}
	return exitCode
}

// checkPackage parses and type-checks one package against precompiled
// export data and runs the analyzers over it, reading and growing the
// shared fact store.
func checkPackage(fset *token.FileSet, path string, files []string, importMap, exports map[string]string, analyzers []*analysis.Analyzer, facts *analysis.FactStore) ([]analysis.Diagnostic, error) {
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, af)
	}
	imp := importer.ForCompiler(fset, "gc", func(p string) (io.ReadCloser, error) {
		if mapped, ok := importMap[p]; ok {
			p = mapped
		}
		file, ok := exports[p]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(file)
	})
	conf := types.Config{Importer: imp}
	info := analysis.NewInfo()
	pkg, err := conf.Check(path, fset, syntax, info)
	if err != nil {
		return nil, err
	}
	return analysis.Run(fset, syntax, pkg, info, analyzers, facts)
}

// ---------------------------------------------------------------------------
// Vet-tool mode: the cmd/go unit checker protocol.

// vetConfig mirrors the JSON config cmd/go hands a -vettool (one package
// per invocation).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitCheck(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ufclint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ufclint: parse %s: %v\n", cfgPath, err)
		return 2
	}

	// Replay the dependencies' facts. cmd/go analyzes dependencies first
	// and hands us their vetx files; stdlib packages carry stub content
	// from other vet tools, which Decode ignores by design.
	facts := analysis.NewFactStore(analyzers)
	for _, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			continue // missing dep facts degrade to per-package analysis
		}
		if err := facts.Decode(data); err != nil {
			fmt.Fprintf(os.Stderr, "ufclint: %v\n", err)
			return 2
		}
	}

	writeVetx := func() int {
		if cfg.VetxOutput == "" {
			return 0
		}
		data, err := facts.Encode()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ufclint: %v\n", err)
			return 2
		}
		if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "ufclint: %v\n", err)
			return 2
		}
		return 0
	}

	fset := token.NewFileSet()
	var syntax []*ast.File
	for _, f := range cfg.GoFiles {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx()
			}
			fmt.Fprintf(os.Stderr, "ufclint: %v\n", err)
			return 2
		}
		syntax = append(syntax, af)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(p string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[p]; ok {
			p = mapped
		}
		file, ok := cfg.PackageFile[p]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(file)
	})
	conf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	info := analysis.NewInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, syntax, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx()
		}
		fmt.Fprintf(os.Stderr, "ufclint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	diags, err := analysis.Run(fset, syntax, pkg, info, analyzers, facts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ufclint: %v\n", err)
		return 2
	}
	if code := writeVetx(); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}
	sortDiags(fset, diags)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
