package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestVersionHandshake checks the -V=full reply cmd/go uses for its action
// cache key: it must start with "<tool name> version".
func TestVersionHandshake(t *testing.T) {
	if code := run([]string{"ufclint", "-V=full"}); code != 0 {
		t.Fatalf("-V=full exited %d", code)
	}
}

// TestStandaloneCleanOnDistsim runs the full standalone pipeline (go list
// -export, parse, type-check, all seven analyzers with cross-package
// facts) over the wire layer and requires a clean report: every invariant
// violation in distsim must be fixed or carry a justification directive.
func TestStandaloneCleanOnDistsim(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list -export")
	}
	code := run([]string{"ufclint", "repro/internal/distsim", "repro/internal/core"})
	if code != 0 {
		t.Fatalf("ufclint reported findings on internal/distsim + internal/core (exit %d); see stderr", code)
	}
}

// TestStandaloneFlagsInjectedViolation proves the standalone driver actually
// analyzes: a throwaway package with a hotpath Sprintf must be flagged.
func TestStandaloneFlagsInjectedViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list -export")
	}
	dir := t.TempDir()
	src := []byte(`package scratch

import "fmt"

//ufc:hotpath
func hot(n int) string { return fmt.Sprintf("%d", n) }
`)
	if err := os.WriteFile(dir+"/scratch.go", src, 0o644); err != nil {
		t.Fatal(err)
	}
	mod := []byte("module scratch\n\ngo 1.21\n")
	if err := os.WriteFile(dir+"/go.mod", mod, 0o644); err != nil {
		t.Fatal(err)
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	// Capture stderr to keep `go test` output clean and assert the message.
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	code := run([]string{"ufclint", "."})
	os.Stderr = old
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("expected exit 1 on a hotpath violation, got %d (output %q)", code, buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte("fmt.Sprintf allocates")) {
		t.Fatalf("expected a hotalloc diagnostic, got %q", buf.String())
	}
}

// writeModule lays out a throwaway module in dir and chdirs into it,
// restoring the working directory when the test ends.
func writeModule(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	})
}

// capture runs fn with the given standard stream redirected into the
// returned buffer.
func capture(t *testing.T, stream **os.File, fn func()) string {
	t.Helper()
	old := *stream
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	*stream = w
	fn()
	*stream = old
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// crossPackageModule is a two-package module whose violation is only
// visible through facts: the hotpath caller and the allocating callee live
// in different packages.
var crossPackageModule = map[string]string{
	"go.mod": "module scratch\n\ngo 1.21\n",
	"cold/cold.go": `package cold

import "fmt"

// Format allocates.
func Format(n int) string { return fmt.Sprintf("%d", n) }
`,
	"hot.go": `package scratch

import "scratch/cold"

//ufc:hotpath
func hot(n int) int { return len(cold.Format(n)) }
`,
}

// TestStandaloneCrossPackageFacts proves facts flow between packages in
// standalone mode: the dependency is analyzed first (diagnostics
// suppressed), and its allocatesFact flags the hotpath call site in the
// root package.
func TestStandaloneCrossPackageFacts(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list -export")
	}
	writeModule(t, t.TempDir(), crossPackageModule)
	var code int
	out := capture(t, &os.Stderr, func() { code = run([]string{"ufclint", "."}) })
	if code != 1 {
		t.Fatalf("expected exit 1, got %d (output %q)", code, out)
	}
	if !bytes.Contains([]byte(out), []byte("call to Format, which allocates")) {
		t.Fatalf("expected a cross-package hotalloc diagnostic, got %q", out)
	}
	if bytes.Contains([]byte(out), []byte("cold/cold.go")) {
		t.Fatalf("dependency-only package leaked its own diagnostics: %q", out)
	}
}

// TestVetToolCrossPackageFacts runs the real cmd/go unit-checker protocol:
// `go vet -vettool=ufclint` analyzes scratch/cold first, serializes its
// facts to the vetx file, and replays them (via PackageVetx) when checking
// the root package.
func TestVetToolCrossPackageFacts(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and shells out to go vet")
	}
	tool := filepath.Join(t.TempDir(), "ufclint")
	build := exec.Command("go", "build", "-o", tool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build ufclint: %v\n%s", err, out)
	}
	writeModule(t, t.TempDir(), crossPackageModule)
	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed; want a cross-package hotalloc diagnostic\n%s", out)
	}
	if !bytes.Contains(out, []byte("call to Format, which allocates")) {
		t.Fatalf("expected a cross-package hotalloc diagnostic, got:\n%s", out)
	}
}

// TestJSONOutputGolden pins the -json wire format: sorted diagnostics,
// working-directory-relative paths, one stable JSON array on stdout.
func TestJSONOutputGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list -export")
	}
	writeModule(t, t.TempDir(), crossPackageModule)
	var code int
	out := capture(t, &os.Stdout, func() { code = run([]string{"ufclint", "-json", "."}) })
	if code != 1 {
		t.Fatalf("expected exit 1, got %d (stdout %q)", code, out)
	}
	const golden = `[
  {
    "file": "hot.go",
    "line": 6,
    "col": 34,
    "analyzer": "hotalloc",
    "message": "hotpath: call to Format, which allocates (fmt.Sprintf allocates a string on every call); annotate and clean the callee with //ufc:hotpath, or justify the call with //ufc:alloc"
  }
]
`
	if out != golden {
		t.Fatalf("-json output mismatch\ngot:\n%s\nwant:\n%s", out, golden)
	}
}
