package main

import (
	"bytes"
	"os"
	"testing"
)

// TestVersionHandshake checks the -V=full reply cmd/go uses for its action
// cache key: it must start with "<tool name> version".
func TestVersionHandshake(t *testing.T) {
	if code := run([]string{"ufclint", "-V=full"}); code != 0 {
		t.Fatalf("-V=full exited %d", code)
	}
}

// TestStandaloneCleanOnDistsim runs the full standalone pipeline (go list
// -export, parse, type-check, all four analyzers) over the wire layer and
// requires a clean report: every invariant violation in distsim must be
// fixed or carry a justification directive.
func TestStandaloneCleanOnDistsim(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list -export")
	}
	code := run([]string{"ufclint", "repro/internal/distsim", "repro/internal/core"})
	if code != 0 {
		t.Fatalf("ufclint reported findings on internal/distsim + internal/core (exit %d); see stderr", code)
	}
}

// TestStandaloneFlagsInjectedViolation proves the standalone driver actually
// analyzes: a throwaway package with a hotpath Sprintf must be flagged.
func TestStandaloneFlagsInjectedViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list -export")
	}
	dir := t.TempDir()
	src := []byte(`package scratch

import "fmt"

//ufc:hotpath
func hot(n int) string { return fmt.Sprintf("%d", n) }
`)
	if err := os.WriteFile(dir+"/scratch.go", src, 0o644); err != nil {
		t.Fatal(err)
	}
	mod := []byte("module scratch\n\ngo 1.21\n")
	if err := os.WriteFile(dir+"/go.mod", mod, 0o644); err != nil {
		t.Fatal(err)
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	// Capture stderr to keep `go test` output clean and assert the message.
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	code := run([]string{"ufclint", "."})
	os.Stderr = old
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("expected exit 1 on a hotpath violation, got %d (output %q)", code, buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte("fmt.Sprintf allocates")) {
		t.Fatalf("expected a hotalloc diagnostic, got %q", buf.String())
	}
}
