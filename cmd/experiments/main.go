// Command experiments regenerates every table and figure of the paper's
// evaluation (§IV): Table I and Figs. 1, 3–11, plus the solver-design
// ablations. Each experiment prints a plain-text table; the combined
// output is the source for EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-run all|table1|fig1|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|
//	             forecast|ramp|rightsizing|ablations]
//	            [-scale f] [-hours n] [-seed n] [-sample n] [-maxiters n]
//	            [-warm] [-workers n]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	which := fs.String("run", "all", "experiment id (all, table1, fig1, fig3, fig4 ... fig11, forecast, ramp, rightsizing, ablations)")
	scale := fs.Float64("scale", 1, "fleet scale relative to the paper (1 = 1.7-2.3e4 servers per DC)")
	hours := fs.Int("hours", 168, "horizon length in hours")
	seed := fs.Int64("seed", 2012, "master random seed")
	sample := fs.Int("sample", 24, "hours sampled by the ablations")
	maxIters := fs.Int("maxiters", 3000, "ADM-G iteration budget per slot")
	warm := fs.Bool("warm", false, "run the week comparison sequentially, warm-starting each hour from the previous one")
	workers := fs.Int("workers", 0, "intra-iteration solver workers per engine (0 or 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.Hours = *hours
	cfg.Seed = *seed
	opts := core.Options{MaxIterations: *maxIters, Workers: *workers}

	ids := strings.Split(*which, ",")
	want := func(id string) bool {
		for _, w := range ids {
			if w == "all" || w == id {
				return true
			}
		}
		return false
	}

	start := time.Now()

	if want("table1") {
		res, err := experiments.RunTableOne(cfg)
		if err != nil {
			return fmt.Errorf("table1: %w", err)
		}
		fmt.Println(res.Table().Render())
	}
	if want("fig1") {
		res, err := experiments.RunFigOne(cfg)
		if err != nil {
			return fmt.Errorf("fig1: %w", err)
		}
		fmt.Println(res.Table().Render())
	}
	if want("fig3") {
		res, err := experiments.RunFigThree(cfg)
		if err != nil {
			return fmt.Errorf("fig3: %w", err)
		}
		fmt.Println(res.Table().Render())
	}

	needWeek := false
	for _, id := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig11"} {
		if want(id) {
			needWeek = true
		}
	}
	if needWeek {
		runWeek := experiments.RunWeekComparison
		if *warm {
			runWeek = experiments.RunWeekComparisonWarm
		}
		week, err := runWeek(context.Background(), cfg, opts)
		if err != nil {
			return fmt.Errorf("week comparison: %w", err)
		}
		if want("fig4") {
			fmt.Println(week.FigFourTable().Render())
		}
		if want("fig5") {
			fmt.Println(week.FigFiveTable().Render())
		}
		if want("fig6") {
			fmt.Println(week.FigSixTable().Render())
		}
		if want("fig7") {
			fmt.Println(week.FigSevenTable().Render())
		}
		if want("fig8") {
			fmt.Println(week.FigEightTable().Render())
		}
		if want("fig11") {
			f11, err := week.FigEleven()
			if err != nil {
				return fmt.Errorf("fig11: %w", err)
			}
			fmt.Println(f11.Table().Render())
		}
	}

	if want("fig9") {
		res, err := experiments.RunFigNine(context.Background(), cfg, opts, nil)
		if err != nil {
			return fmt.Errorf("fig9: %w", err)
		}
		fmt.Println(res.Table().Render())
	}
	if want("fig10") {
		res, err := experiments.RunFigTen(context.Background(), cfg, opts, nil)
		if err != nil {
			return fmt.Errorf("fig10: %w", err)
		}
		fmt.Println(res.Table().Render())
	}
	if want("forecast") {
		res, err := experiments.RunForecastStudy(cfg, opts, nil)
		if err != nil {
			return fmt.Errorf("forecast: %w", err)
		}
		fmt.Println(res.Table().Render())
	}
	if want("ramp") {
		res, err := experiments.RunRampStudy(cfg, opts, nil)
		if err != nil {
			return fmt.Errorf("ramp: %w", err)
		}
		fmt.Println(res.Table().Render())
	}
	if want("rightsizing") {
		res, err := experiments.RunRightSizingStudy(cfg, *sample, opts)
		if err != nil {
			return fmt.Errorf("rightsizing: %w", err)
		}
		fmt.Println(res.Table().Render())
	}
	if want("ablations") {
		rho, err := experiments.RunAblationRho(cfg, *sample, nil)
		if err != nil {
			return fmt.Errorf("ablation rho: %w", err)
		}
		fmt.Println(rho.Table().Render())
		eps, err := experiments.RunAblationEpsilon(cfg, *sample, nil)
		if err != nil {
			return fmt.Errorf("ablation epsilon: %w", err)
		}
		fmt.Println(eps.Table().Render())
		corr, err := experiments.RunAblationCorrection(cfg, *sample)
		if err != nil {
			return fmt.Errorf("ablation correction: %w", err)
		}
		fmt.Println(corr.Table().Render())
	}

	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
