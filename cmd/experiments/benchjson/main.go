// Command benchjson measures the topology scaling sweep behind
// BENCH_scaling.json: for each N,M,R point it builds the synthetic
// topology, solves one slot, and records iteration count, wall-clock per
// iteration, and the allocator footprint of the steady-state Iterate
// (allocs and heap bytes per iteration — both must stay 0 whatever the
// size). Points with R > 1 solve under the region sparsity cutoff, so
// per-iteration work covers the feasible pairs instead of M·N.
//
// With -hubtree it additionally deploys the 20×200 instance twice over
// real TCP — once on a flat hub, once on a root hub with one sub-hub per
// region — and records the root-hub byte reduction the hierarchy buys.
//
// Usage:
//
//	benchjson [-points "4,10,1;20,200,4;100,2000,8;200,20000,16"]
//	          [-workers n] [-hubtree] [-out BENCH_scaling.json]
//	benchjson -validate BENCH_scaling.json
//
// The -validate mode re-reads a result file strictly (unknown fields are
// errors) and checks its invariants; CI runs it against a freshly
// generated smoke point so the schema and the gates stay enforced.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/distsim"
	"repro/internal/experiments"
)

const schemaID = "ufc-bench-scaling/v1"

// BenchFile is the JSON document benchjson emits and validates.
type BenchFile struct {
	Schema  string         `json:"schema"`
	Go      string         `json:"go"`
	Workers int            `json:"workers"`
	Points  []PointResult  `json:"points"`
	HubTree *HubTreeResult `json:"hubTree,omitempty"`
}

// PointResult is one topology point of the sweep.
type PointResult struct {
	Topology      string  `json:"topology"` // "N,M,R"
	Sparse        bool    `json:"sparse"`
	FeasiblePairs int     `json:"feasiblePairs"`
	Tolerance     float64 `json:"tolerance"` // load-scaled (core.OneServerTolerance)
	Iterations    int     `json:"iterations"`
	Converged     bool    `json:"converged"`
	FinalResidual float64 `json:"finalResidual"`
	SolveNs       int64   `json:"solveNs"`       // whole-solve wall clock
	NsPerIter     int64   `json:"nsPerIter"`     // steady-state Iterate
	AllocsPerIter float64 `json:"allocsPerIter"` // must be 0
	BytesPerIter  int64   `json:"bytesPerIter"`  // must be 0
}

// HubTreeResult compares a flat hub against a root + per-region sub-hub
// tree on the same instance: identical results, fewer bytes at the root.
type HubTreeResult struct {
	Topology     string  `json:"topology"`
	Regions      int     `json:"regions"`
	Iterations   int     `json:"iterations"`
	UFCMatch     bool    `json:"ufcMatch"`
	FlatHubBytes uint64  `json:"flatHubBytes"`
	RootHubBytes uint64  `json:"rootHubBytes"`
	Reduction    float64 `json:"reduction"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	points := fs.String("points", "4,10,1;20,200,4;100,2000,8;200,20000,16",
		"semicolon-separated topology points \"N,M,R\" (R > 1 solves under the region sparsity cutoff)")
	workers := fs.Int("workers", 8, "solver workers per engine")
	hubTree := fs.Bool("hubtree", true, "measure flat-vs-tree root-hub bytes at 20,200,4 over real TCP")
	out := fs.String("out", "BENCH_scaling.json", "output file (\"-\" for stdout)")
	validate := fs.String("validate", "", "validate an existing result file instead of measuring")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *validate != "" {
		return validateFile(*validate)
	}

	file := BenchFile{Schema: schemaID, Go: runtime.Version(), Workers: *workers}
	for _, spec := range strings.Split(*points, ";") {
		topo, err := experiments.ParseTopology(strings.TrimSpace(spec))
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "point %s...\n", topo)
		pt, err := measurePoint(topo, *workers)
		if err != nil {
			return fmt.Errorf("point %s: %w", topo, err)
		}
		file.Points = append(file.Points, *pt)
		fmt.Fprintf(os.Stderr, "  %d pairs, %d iters (converged=%v), %.2fms/iter, %.0f allocs/iter\n",
			pt.FeasiblePairs, pt.Iterations, pt.Converged, float64(pt.NsPerIter)/1e6, pt.AllocsPerIter)
		if !pt.Converged {
			fmt.Fprintf(os.Stderr, "  WARNING: point %s did not converge within its %d-iteration budget (residual %.3g) — the file will fail validation\n",
				topo, pt.Iterations, pt.FinalResidual)
		}
	}
	if *hubTree {
		fmt.Fprintln(os.Stderr, "hub tree 20,200,4...")
		ht, err := measureHubTree()
		if err != nil {
			return fmt.Errorf("hub tree: %w", err)
		}
		file.HubTree = ht
		fmt.Fprintf(os.Stderr, "  flat %d B vs root %d B: %.2fx reduction (UFC match=%v)\n",
			ht.FlatHubBytes, ht.RootHubBytes, ht.Reduction, ht.UFCMatch)
	}

	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	return validateFile(*out)
}

// budgets picks the solve iteration budget and the microbench rep count
// by problem size. The budget is generous relative to the observed
// iteration counts at the load-scaled tolerance (see
// core.OneServerTolerance) — every sweep point is expected to converge;
// a point that does not is reported loudly and fails validation.
func budgets(pairs int) (solveIters, reps int) {
	switch {
	case pairs <= 10_000:
		return 3000, 50
	case pairs <= 100_000:
		return 4000, 20
	default:
		return 6000, 5
	}
}

func measurePoint(spec experiments.Topology, workers int) (*PointResult, error) {
	st, err := experiments.NewSyntheticTopology(spec, 7)
	if err != nil {
		return nil, err
	}
	inst := st.Instance(8)
	sparse := spec.Regions > 1
	// Budget by the approximate mask size (the engine reports the exact
	// count below, but it is only built once).
	approxPairs := spec.M * spec.N
	if sparse {
		approxPairs /= spec.Regions
	}
	solveIters, reps := budgets(approxPairs)
	// The sweep holds total demand roughly constant, so per-front-end
	// arrivals shrink as M grows and the default relative tolerance would
	// demand ever more absolute precision. Solve each point at its
	// one-misrouted-server tolerance instead — the same precision the
	// paper's scenario gets from the default.
	opts := core.Options{Workers: workers, MaxIterations: solveIters, Tolerance: core.OneServerTolerance(inst)}
	if sparse {
		opts.SparsityCutoff = st.CutoffSec
	}
	eng, err := core.NewEngine(inst, opts)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	pairs := eng.FeasiblePairs()

	state := core.NewState(inst.Cloud.M(), inst.Cloud.N())
	t0 := time.Now()
	_, _, stats, err := eng.SolveState(state)
	if err != nil && !errors.Is(err, core.ErrNotConverged) {
		return nil, err
	}
	solveDur := time.Since(t0)

	// Steady-state Iterate microbench on the solved state: the mask, the
	// scratch and the worker pool are warm, matching BenchmarkIterateScale.
	if err := eng.Iterate(state); err != nil {
		return nil, err
	}
	allocs := testing.AllocsPerRun(reps, func() {
		if err := eng.Iterate(state); err != nil {
			panic(err)
		}
	})
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	t1 := time.Now()
	for k := 0; k < reps; k++ {
		if err := eng.Iterate(state); err != nil {
			return nil, err
		}
	}
	perIter := time.Since(t1) / time.Duration(reps)
	runtime.ReadMemStats(&after)

	return &PointResult{
		Topology:      spec.String(),
		Sparse:        sparse,
		FeasiblePairs: pairs,
		Tolerance:     opts.Tolerance,
		Iterations:    stats.Iterations,
		Converged:     stats.Converged,
		FinalResidual: stats.FinalResidual,
		SolveNs:       solveDur.Nanoseconds(),
		NsPerIter:     perIter.Nanoseconds(),
		AllocsPerIter: allocs,
		BytesPerIter:  int64(after.TotalAlloc-before.TotalAlloc) / int64(reps),
	}, nil
}

// measureHubTree runs the 20×200 R=4 sparse instance over a flat hub and
// over a root + 4 sub-hub tree, both for a fixed 40 iterations, and
// reports the root-hub byte reduction.
func measureHubTree() (*HubTreeResult, error) {
	const regions = 4
	const iters = 40
	st, err := experiments.NewSyntheticTopology(experiments.Topology{N: 20, M: 200, Regions: regions}, 7)
	if err != nil {
		return nil, err
	}
	inst := st.Instance(1)
	opts := core.Options{SparsityCutoff: st.CutoffSec, MaxIterations: iters}
	m, n := inst.Cloud.M(), inst.Cloud.N()
	runOpts := distsim.RunOptions{Solver: opts, Timeout: time.Minute}

	// Flat deployment.
	flatHub, err := distsim.Listen(context.Background(), distsim.ListenConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		return nil, err
	}
	defer func() { _ = flatHub.Close() }() //ufc:discard measurement teardown
	flatEP, err := distsim.Dial(context.Background(), distsim.DialConfig{
		Addr: flatHub.Addr(), AgentIDs: distsim.AllAgentIDs(m, n), Buffer: 4096,
	})
	if err != nil {
		return nil, err
	}
	flatNode := flatEP.(*distsim.TCPNode)
	defer func() { _ = flatNode.Close() }() //ufc:discard measurement teardown
	flatRes, err := distsim.Run(context.Background(), inst, runOpts, flatNode)
	if err != nil {
		return nil, fmt.Errorf("flat run: %w", err)
	}
	flatStats := flatHub.Stats()

	// Tree deployment: coordinator on the root, each region's agents on
	// that region's sub-hub.
	root, err := distsim.Listen(context.Background(), distsim.ListenConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		return nil, err
	}
	defer func() { _ = root.Close() }() //ufc:discard measurement teardown
	regionIDs := make([][]string, regions)
	for i := 0; i < m; i++ {
		r := st.FERegion[i]
		regionIDs[r] = append(regionIDs[r], fmt.Sprintf("fe-%d", i))
	}
	for j := 0; j < n; j++ {
		r := st.DCRegion[j]
		regionIDs[r] = append(regionIDs[r], fmt.Sprintf("dc-%d", j))
	}
	var wg sync.WaitGroup
	errCh := make(chan error, regions)
	for r := 0; r < regions; r++ {
		sub, err := distsim.Listen(context.Background(), distsim.ListenConfig{Addr: "127.0.0.1:0", Parent: root.Addr(), Region: r})
		if err != nil {
			return nil, err
		}
		defer func() { _ = sub.Close() }() //ufc:discard measurement teardown
		regionEP, err := distsim.Dial(context.Background(), distsim.DialConfig{
			Addr: sub.Addr(), AgentIDs: regionIDs[r], Buffer: 1024,
		})
		if err != nil {
			return nil, err
		}
		node := regionEP.(*distsim.TCPNode)
		defer func() { _ = node.Close() }() //ufc:discard measurement teardown
		wg.Add(1)
		go func(r int, node *distsim.TCPNode) {
			defer wg.Done()
			if _, err := distsim.RunAgents(context.Background(), inst, runOpts, node, regionIDs[r]); err != nil {
				errCh <- fmt.Errorf("region %d agents: %w", r, err)
			}
		}(r, node)
	}
	coEP, err := distsim.Dial(context.Background(), distsim.DialConfig{
		Addr: root.Addr(), AgentIDs: []string{"coord"}, Buffer: 4096,
	})
	if err != nil {
		return nil, err
	}
	coNode := coEP.(*distsim.TCPNode)
	defer func() { _ = coNode.Close() }() //ufc:discard measurement teardown
	treeRes, err := distsim.RunAgents(context.Background(), inst, runOpts, coNode, []string{"coord"})
	if err != nil {
		return nil, fmt.Errorf("tree coordinator: %w", err)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return nil, err
	}
	rootStats := root.Stats()

	flatBytes := flatStats.BytesSent + flatStats.BytesReceived
	rootBytes := rootStats.BytesSent + rootStats.BytesReceived
	ht := &HubTreeResult{
		Topology:     "20,200,4",
		Regions:      regions,
		Iterations:   flatRes.Stats.Iterations,
		UFCMatch:     flatRes.Breakdown.UFC == treeRes.Breakdown.UFC,
		FlatHubBytes: flatBytes,
		RootHubBytes: rootBytes,
	}
	if rootBytes > 0 {
		ht.Reduction = float64(flatBytes) / float64(rootBytes)
	}
	return ht, nil
}

// validateFile strictly re-reads a result file and enforces the gates the
// scaling work promises: zero steady-state allocations at every point and
// a ≥4× root-hub byte reduction when the hub-tree section is present.
func validateFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }() //ufc:discard read-only file
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var file BenchFile
	if err := dec.Decode(&file); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if file.Schema != schemaID {
		return fmt.Errorf("%s: schema %q, want %q", path, file.Schema, schemaID)
	}
	if len(file.Points) == 0 {
		return fmt.Errorf("%s: no points", path)
	}
	for _, pt := range file.Points {
		if _, err := experiments.ParseTopology(pt.Topology); err != nil {
			return fmt.Errorf("%s: point %q: %w", path, pt.Topology, err)
		}
		if pt.FeasiblePairs <= 0 || pt.Iterations <= 0 || pt.NsPerIter <= 0 || pt.SolveNs <= 0 {
			return fmt.Errorf("%s: point %s: non-positive measurement", path, pt.Topology)
		}
		if pt.Tolerance <= 0 || pt.Tolerance >= 1 {
			return fmt.Errorf("%s: point %s: tolerance %g outside (0, 1)", path, pt.Topology, pt.Tolerance)
		}
		if pt.AllocsPerIter >= 1 {
			return fmt.Errorf("%s: point %s: %v allocs/iter, want 0 (zero-alloc gate)", path, pt.Topology, pt.AllocsPerIter)
		}
		if !pt.Converged {
			return fmt.Errorf("%s: point %s: not converged (residual %g; raise the budget or loosen the tolerance)", path, pt.Topology, pt.FinalResidual)
		}
	}
	if ht := file.HubTree; ht != nil {
		if !ht.UFCMatch {
			return fmt.Errorf("%s: hub tree UFC mismatch", path)
		}
		if ht.Reduction < 4 {
			return fmt.Errorf("%s: hub tree root-byte reduction %.2fx, want >= 4x", path, ht.Reduction)
		}
	}
	fmt.Fprintf(os.Stderr, "%s: valid (%d points%s)\n", path, len(file.Points),
		map[bool]string{true: " + hub tree", false: ""}[file.HubTree != nil])
	return nil
}
