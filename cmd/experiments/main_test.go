package main

import "testing"

func TestRunSmallArtifacts(t *testing.T) {
	// Cheap artifacts at reduced scale exercise the full flag plumbing.
	err := run([]string{
		"-run", "table1,fig1,fig3",
		"-hours", "24",
		"-scale", "0.05",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWeekArtifactsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	err := run([]string{
		"-run", "fig4,fig8,fig11",
		"-hours", "8",
		"-scale", "0.05",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
