package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

func TestRunWritesCSVs(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-hours", "12", "-scale", "0.05"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"workload.csv", "prices.csv", "carbon.csv", "power_demand.csv"} {
		path := filepath.Join(dir, name)
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		series, err := trace.ReadCSV(f)
		_ = f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(series) == 0 || series[0].Len() != 12 {
			t.Fatalf("%s: malformed series", name)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
