// Command tracegen writes the scenario's synthetic traces (workload,
// per-site electricity prices, per-site carbon emission rates and the
// Table I power-demand profile) as CSV for inspection or external
// plotting.
//
// Usage:
//
//	tracegen [-out dir] [-hours n] [-seed n] [-scale f]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	out := fs.String("out", "traces", "output directory")
	hours := fs.Int("hours", 168, "horizon length in hours")
	seed := fs.Int64("seed", 2012, "master random seed")
	scale := fs.Float64("scale", 1, "fleet scale relative to the paper")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.DefaultConfig()
	cfg.Hours = *hours
	cfg.Seed = *seed
	cfg.Scale = *scale
	sc, err := experiments.NewScenario(cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	write := func(name string, series []trace.Series) error {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }() //ufc:discard safety net for the error paths; the success path returns the real Close error below
		if err := trace.WriteCSV(f, series); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Println("wrote", path)
		return f.Close()
	}

	workload := append([]trace.Series{sc.TotalLoad}, sc.FrontEndLoad...)
	if err := write("workload.csv", workload); err != nil {
		return err
	}
	if err := write("prices.csv", sc.PriceUSD); err != nil {
		return err
	}
	if err := write("carbon.csv", sc.CarbonRate); err != nil {
		return err
	}

	demandCfg := trace.DefaultPowerDemandConfig()
	demandCfg.Seed = cfg.Seed + 100
	demandCfg.Hours = cfg.Hours
	demand, err := trace.GenPowerDemand(demandCfg)
	if err != nil {
		return err
	}
	return write("power_demand.csv", []trace.Series{demand})
}
