package model

// Well-known site coordinates used by the paper's evaluation (§IV-A): four
// datacenters in Calgary, San Jose, Dallas and Pittsburgh and ten front-end
// proxies scattered across the continental United States.
var (
	Calgary    = Location{Name: "Calgary", Lat: 51.05, Lon: -114.07}
	SanJose    = Location{Name: "San Jose", Lat: 37.34, Lon: -121.89}
	Dallas     = Location{Name: "Dallas", Lat: 32.78, Lon: -96.80}
	Pittsburgh = Location{Name: "Pittsburgh", Lat: 40.44, Lon: -79.99}
)

// PaperDatacenterSites returns the four datacenter locations in the paper's
// order: Calgary, San Jose, Dallas, Pittsburgh.
func PaperDatacenterSites() []Location {
	return []Location{Calgary, SanJose, Dallas, Pittsburgh}
}

// PaperFrontEndSites returns ten metro areas roughly uniformly scattered
// across the continental United States, standing in for the paper's ten
// front-end proxy servers.
func PaperFrontEndSites() []Location {
	return []Location{
		{Name: "Seattle", Lat: 47.61, Lon: -122.33},
		{Name: "Los Angeles", Lat: 34.05, Lon: -118.24},
		{Name: "Phoenix", Lat: 33.45, Lon: -112.07},
		{Name: "Denver", Lat: 39.74, Lon: -104.99},
		{Name: "Houston", Lat: 29.76, Lon: -95.37},
		{Name: "Minneapolis", Lat: 44.98, Lon: -93.27},
		{Name: "Chicago", Lat: 41.88, Lon: -87.63},
		{Name: "Atlanta", Lat: 33.75, Lon: -84.39},
		{Name: "New York", Lat: 40.71, Lon: -74.01},
		{Name: "Miami", Lat: 25.76, Lon: -80.19},
	}
}
