package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceKnownPairs(t *testing.T) {
	// San Jose <-> Dallas is roughly 2300 km great-circle.
	d := SanJose.DistanceKm(Dallas)
	if d < 2100 || d > 2500 {
		t.Fatalf("SanJose-Dallas distance = %g km", d)
	}
	if SanJose.DistanceKm(SanJose) != 0 {
		t.Fatal("self distance nonzero")
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Location{Lat: math.Mod(lat1, 90), Lon: math.Mod(lon1, 180)}
		b := Location{Lat: math.Mod(lat2, 90), Lon: math.Mod(lon2, 180)}
		if math.IsNaN(a.Lat) || math.IsNaN(a.Lon) || math.IsNaN(b.Lat) || math.IsNaN(b.Lon) {
			return true
		}
		d1, d2 := a.DistanceKm(b), b.DistanceKm(a)
		return math.Abs(d1-d2) < 1e-6 && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPowerModelValidate(t *testing.T) {
	if err := DefaultPowerModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := PowerModel{IdleW: 200, PeakW: 100, PUE: 1.2}
	if err := bad.Validate(); err == nil {
		t.Fatal("peak < idle accepted")
	}
	bad = PowerModel{IdleW: 100, PeakW: 200, PUE: 0.9}
	if err := bad.Validate(); err == nil {
		t.Fatal("PUE < 1 accepted")
	}
}

func TestAlphaBetaDemand(t *testing.T) {
	dc := Datacenter{
		Location: Dallas,
		Servers:  20000,
		Power:    DefaultPowerModel(),
	}
	// alpha = 20000 * 100 * 1.2 W = 2.4 MW
	if got := dc.AlphaMW(); math.Abs(got-2.4) > 1e-12 {
		t.Errorf("alpha = %g MW, want 2.4", got)
	}
	// beta = 100 * 1.2 W per server = 1.2e-4 MW
	if got := dc.BetaMW(); math.Abs(got-1.2e-4) > 1e-18 {
		t.Errorf("beta = %g MW, want 1.2e-4", got)
	}
	// demand at full load = 20000 * 200 * 1.2 W = 4.8 MW
	if got := dc.DemandMW(20000); math.Abs(got-4.8) > 1e-10 {
		t.Errorf("demand = %g MW, want 4.8", got)
	}
	if got := dc.PeakDemandMW(); math.Abs(got-4.8) > 1e-10 {
		t.Errorf("peak demand = %g MW, want 4.8", got)
	}
	full := dc.FullFuelCell()
	if math.Abs(full.FuelCellMaxMW-4.8) > 1e-10 {
		t.Errorf("full fuel cell = %g MW, want 4.8", full.FuelCellMaxMW)
	}
	if dc.FuelCellMaxMW != 0 {
		t.Error("FullFuelCell mutated the receiver")
	}
}

func TestNewCloudValidation(t *testing.T) {
	dc := Datacenter{Location: Dallas, Servers: 100, Power: DefaultPowerModel()}
	fe := FrontEnd{Location: SanJose}
	if _, err := NewCloud(nil, []FrontEnd{fe}); err == nil {
		t.Error("no datacenters accepted")
	}
	if _, err := NewCloud([]Datacenter{dc}, nil); err == nil {
		t.Error("no front-ends accepted")
	}
	bad := dc
	bad.Servers = 0
	if _, err := NewCloud([]Datacenter{bad}, []FrontEnd{fe}); err == nil {
		t.Error("zero servers accepted")
	}
	c, err := NewCloud([]Datacenter{dc}, []FrontEnd{fe})
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 1 || c.M() != 1 {
		t.Fatalf("N=%d M=%d", c.N(), c.M())
	}
}

func TestLatencyMatrix(t *testing.T) {
	dcs := []Datacenter{
		{Location: Dallas, Servers: 100, Power: DefaultPowerModel()},
		{Location: SanJose, Servers: 100, Power: DefaultPowerModel()},
	}
	fes := []FrontEnd{{Location: Dallas}}
	c, err := NewCloud(dcs, fes)
	if err != nil {
		t.Fatal(err)
	}
	// Dallas front-end to Dallas datacenter: zero latency.
	if c.LatencySec(0, 0) != 0 {
		t.Errorf("self latency = %g", c.LatencySec(0, 0))
	}
	// Dallas -> San Jose: ~2300 km * 0.02 ms/km = ~46 ms = 0.046 s.
	l := c.LatencySec(0, 1)
	if l < 0.040 || l > 0.052 {
		t.Errorf("Dallas-SanJose latency = %g s", l)
	}
	row := c.LatencyRow(0)
	row[0] = 99
	if c.LatencySec(0, 0) == 99 {
		t.Error("LatencyRow aliased internal state")
	}
}

func TestPaperSites(t *testing.T) {
	if got := len(PaperDatacenterSites()); got != 4 {
		t.Errorf("datacenter sites = %d, want 4", got)
	}
	if got := len(PaperFrontEndSites()); got != 10 {
		t.Errorf("front-end sites = %d, want 10", got)
	}
	seen := map[string]bool{}
	for _, s := range PaperFrontEndSites() {
		if seen[s.Name] {
			t.Errorf("duplicate front-end site %s", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestTotalServers(t *testing.T) {
	dcs := []Datacenter{
		{Location: Dallas, Servers: 100, Power: DefaultPowerModel()},
		{Location: SanJose, Servers: 250, Power: DefaultPowerModel()},
	}
	c, err := NewCloud(dcs, []FrontEnd{{Location: Dallas}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.TotalServers(); got != 350 {
		t.Errorf("TotalServers = %g", got)
	}
}
