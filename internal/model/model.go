// Package model describes the physical layer of the geo-distributed cloud:
// datacenters with their server fleets and power characteristics, front-end
// proxy servers with their request arrivals, and the propagation-latency
// matrix between them. It implements the server power model and the
// empirical latency rule (0.02 ms/km) from §II of the paper.
package model

import (
	"errors"
	"fmt"
	"math"
)

// MsPerKm is the paper's empirical propagation-latency rule: one kilometre
// of geographical distance costs about 0.02 ms of propagation latency.
const MsPerKm = 0.02

// earthRadiusKm is the mean Earth radius used by the haversine formula.
const earthRadiusKm = 6371.0

// Validation errors.
var (
	ErrNoDatacenters = errors.New("model: cloud has no datacenters")
	ErrNoFrontEnds   = errors.New("model: cloud has no front-end servers")
)

// Location is a point on the Earth's surface.
type Location struct {
	Name string  `json:"name"`
	Lat  float64 `json:"lat"`
	Lon  float64 `json:"lon"`
}

// DistanceKm returns the haversine great-circle distance to other.
func (l Location) DistanceKm(other Location) float64 {
	const deg = math.Pi / 180
	lat1, lat2 := l.Lat*deg, other.Lat*deg
	dLat := (other.Lat - l.Lat) * deg
	dLon := (other.Lon - l.Lon) * deg
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(s)))
}

// PowerModel is the per-server power characterization of a datacenter.
// Aggregate server power for S active servers serving load λ is
// S*IdleW + (PeakW-IdleW)*λ, scaled by the facility PUE (§II-B1).
type PowerModel struct {
	IdleW float64 `json:"idleW"` // idle power per server, watts
	PeakW float64 `json:"peakW"` // peak power per server, watts
	PUE   float64 `json:"pue"`   // facility power usage effectiveness
}

// DefaultPowerModel matches the paper's evaluation setting: 100 W idle,
// 200 W peak, PUE 1.2.
func DefaultPowerModel() PowerModel {
	return PowerModel{IdleW: 100, PeakW: 200, PUE: 1.2}
}

// Validate checks physical plausibility.
func (p PowerModel) Validate() error {
	if p.IdleW < 0 || p.PeakW < p.IdleW {
		return fmt.Errorf("model: power model idle %g W, peak %g W is not plausible", p.IdleW, p.PeakW)
	}
	if p.PUE < 1 {
		return fmt.Errorf("model: PUE %g < 1", p.PUE)
	}
	return nil
}

// Datacenter is a back-end processing site.
type Datacenter struct {
	Location      Location   `json:"location"`
	Servers       float64    `json:"servers"`       // S_j, number of homogeneous servers
	Power         PowerModel `json:"power"`         // per-server power model
	FuelCellMaxMW float64    `json:"fuelCellMaxMW"` // μ_j^max, MW
}

// AlphaMW returns α_j = S_j · P_idle · PUE in MW: the load-independent
// facility power draw.
func (d Datacenter) AlphaMW() float64 {
	return d.Servers * d.Power.IdleW * d.Power.PUE / 1e6
}

// BetaMW returns β_j = (P_peak − P_idle) · PUE in MW per unit of workload
// (one workload unit keeps one server busy).
func (d Datacenter) BetaMW() float64 {
	return (d.Power.PeakW - d.Power.IdleW) * d.Power.PUE / 1e6
}

// DemandMW returns the total facility power demand D_j(load) in MW for the
// given routed workload (in servers).
func (d Datacenter) DemandMW(load float64) float64 {
	return d.AlphaMW() + d.BetaMW()*load
}

// PeakDemandMW returns the facility demand when every server is busy.
func (d Datacenter) PeakDemandMW() float64 { return d.DemandMW(d.Servers) }

// FullFuelCell sets μ_j^max so fuel cells can cover peak facility demand,
// the paper's "all datacenters can be completely powered by fuel cells"
// assumption, and returns the datacenter for chaining.
func (d Datacenter) FullFuelCell() Datacenter {
	d.FuelCellMaxMW = d.PeakDemandMW()
	return d
}

// FrontEnd is a front-end proxy server aggregating a region's requests.
type FrontEnd struct {
	Location Location `json:"location"`
}

// Cloud is the static topology: datacenters, front-ends and the derived
// latency matrix.
type Cloud struct {
	Datacenters []Datacenter
	FrontEnds   []FrontEnd

	latencySec [][]float64 // [frontend][datacenter], seconds
}

// NewCloud builds a cloud and its latency matrix. The latency between
// front-end i and datacenter j follows L_ij = 0.02 ms/km × d_ij.
func NewCloud(dcs []Datacenter, fes []FrontEnd) (*Cloud, error) {
	if len(dcs) == 0 {
		return nil, ErrNoDatacenters
	}
	if len(fes) == 0 {
		return nil, ErrNoFrontEnds
	}
	for j, dc := range dcs {
		if err := dc.Power.Validate(); err != nil {
			return nil, fmt.Errorf("datacenter %d (%s): %w", j, dc.Location.Name, err)
		}
		if dc.Servers <= 0 {
			return nil, fmt.Errorf("datacenter %d (%s): %g servers", j, dc.Location.Name, dc.Servers)
		}
		if dc.FuelCellMaxMW < 0 {
			return nil, fmt.Errorf("datacenter %d (%s): negative fuel cell capacity", j, dc.Location.Name)
		}
	}
	c := &Cloud{
		Datacenters: append([]Datacenter(nil), dcs...),
		FrontEnds:   append([]FrontEnd(nil), fes...),
	}
	c.latencySec = make([][]float64, len(fes))
	for i, fe := range fes {
		row := make([]float64, len(dcs))
		for j, dc := range dcs {
			row[j] = fe.Location.DistanceKm(dc.Location) * MsPerKm / 1000 // seconds
		}
		c.latencySec[i] = row
	}
	return c, nil
}

// N returns the number of datacenters.
func (c *Cloud) N() int { return len(c.Datacenters) }

// M returns the number of front-end proxy servers.
func (c *Cloud) M() int { return len(c.FrontEnds) }

// LatencySec returns the propagation latency between front-end i and
// datacenter j in seconds.
func (c *Cloud) LatencySec(i, j int) float64 { return c.latencySec[i][j] }

// LatencyRow returns a copy of front-end i's latency row in seconds.
func (c *Cloud) LatencyRow(i int) []float64 {
	row := make([]float64, len(c.latencySec[i]))
	copy(row, c.latencySec[i])
	return row
}

// TotalServers returns Σ_j S_j.
func (c *Cloud) TotalServers() float64 {
	var s float64
	for _, dc := range c.Datacenters {
		s += dc.Servers
	}
	return s
}
