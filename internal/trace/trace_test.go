package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/carbon"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("x", []float64{1, 2, 3})
	if s.Len() != 3 || s.At(1) != 2 {
		t.Fatalf("series basics broken: %+v", s)
	}
	if s.Mean() != 2 || s.Sum() != 6 || s.Max() != 3 || s.Min() != 1 {
		t.Fatalf("stats broken: mean=%g sum=%g", s.Mean(), s.Sum())
	}
	sc := s.Scale(2)
	if sc.At(0) != 2 || s.At(0) != 1 {
		t.Fatal("Scale should not mutate the receiver")
	}
	c := s.Clone()
	c.Values[0] = 99
	if s.At(0) != 1 {
		t.Fatal("Clone aliased values")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	a := NewSeries("a", []float64{1.5, 2.5})
	b := NewSeries("b", []float64{-1, 0.25})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []Series{a, b}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "a" || got[1].At(1) != 0.25 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestCSVErrors(t *testing.T) {
	if err := WriteCSV(&bytes.Buffer{}, nil); err == nil {
		t.Error("empty series list accepted")
	}
	mismatch := []Series{NewSeries("a", []float64{1}), NewSeries("b", []float64{1, 2})}
	if err := WriteCSV(&bytes.Buffer{}, mismatch); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ReadCSV(strings.NewReader("nope\n")); err == nil {
		t.Error("malformed header accepted")
	}
	if _, err := ReadCSV(strings.NewReader("hour,a\n0,notanumber\n")); err == nil {
		t.Error("non-numeric field accepted")
	}
}

func TestGenWorkloadShape(t *testing.T) {
	cfg := DefaultWorkloadConfig(80000)
	w, err := GenWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != HoursPerWeek {
		t.Fatalf("len = %d", w.Len())
	}
	if w.Max() > 80000 || w.Min() < 0 {
		t.Fatalf("workload out of range: [%g, %g]", w.Min(), w.Max())
	}
	// Strong diurnal pattern: peak should be well above trough.
	if w.Max() < 1.8*w.Min() {
		t.Fatalf("workload lacks diurnality: min %g, max %g", w.Min(), w.Max())
	}
}

func TestGenWorkloadDeterministic(t *testing.T) {
	cfg := DefaultWorkloadConfig(1000)
	a, _ := GenWorkload(cfg)
	b, _ := GenWorkload(cfg)
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatal("same seed produced different traces")
		}
	}
	cfg.Seed++
	c, _ := GenWorkload(cfg)
	same := true
	for i := range a.Values {
		if a.Values[i] != c.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenWorkloadValidation(t *testing.T) {
	bad := DefaultWorkloadConfig(100)
	bad.MinUtil = 0.9
	bad.MaxUtil = 0.5
	if _, err := GenWorkload(bad); err == nil {
		t.Error("inverted utilization band accepted")
	}
	if _, err := GenWorkload(WorkloadConfig{Hours: 0, Servers: 1}); err == nil {
		t.Error("zero hours accepted")
	}
}

func TestSplitFrontEndsConservesMass(t *testing.T) {
	total, _ := GenWorkload(DefaultWorkloadConfig(50000))
	parts, err := SplitFrontEnds(total, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 10 {
		t.Fatalf("parts = %d", len(parts))
	}
	for t2 := 0; t2 < total.Len(); t2++ {
		var sum float64
		for _, p := range parts {
			if p.At(t2) < 0 {
				t.Fatalf("negative share at hour %d", t2)
			}
			sum += p.At(t2)
		}
		if math.Abs(sum-total.At(t2)) > 1e-6*total.At(t2) {
			t.Fatalf("hour %d: parts sum %g != total %g", t2, sum, total.At(t2))
		}
	}
	if _, err := SplitFrontEnds(total, 0, 1); err == nil {
		t.Error("zero front-ends accepted")
	}
}

func TestGenPriceProfiles(t *testing.T) {
	cases := []struct {
		profile PriceProfile
		minMean float64
		maxMean float64
	}{
		{DallasPriceProfile(), 18, 40},
		{SanJosePriceProfile(), 70, 95},
		{CalgaryPriceProfile(), 30, 60},
		{PittsburghPriceProfile(), 30, 60},
	}
	for _, c := range cases {
		s, err := GenPrice(c.profile, 1, HoursPerWeek)
		if err != nil {
			t.Fatalf("%s: %v", c.profile.Name, err)
		}
		if s.Min() < c.profile.FloorUSD-1e-9 {
			t.Errorf("%s: price %g below floor", c.profile.Name, s.Min())
		}
		if m := s.Mean(); m < c.minMean || m > c.maxMean {
			t.Errorf("%s: mean price %g outside [%g, %g]", c.profile.Name, m, c.minMean, c.maxMean)
		}
	}
}

func TestSanJoseOftenAboveFuelCellPrice(t *testing.T) {
	// Table I requires the San Jose hybrid to save substantially vs grid:
	// prices must frequently exceed the $80/MWh fuel-cell price.
	s, err := GenPrice(SanJosePriceProfile(), 1, HoursPerWeek)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, v := range s.Values {
		if v > 80 {
			count++
		}
	}
	frac := float64(count) / float64(s.Len())
	if frac < 0.25 || frac > 0.95 {
		t.Fatalf("San Jose hours above $80: %.0f%%, want 25-95%%", frac*100)
	}
}

func TestDallasRarelyAboveFuelCellPrice(t *testing.T) {
	s, err := GenPrice(DallasPriceProfile(), 1, HoursPerWeek)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, v := range s.Values {
		if v > 80 {
			count++
		}
	}
	if frac := float64(count) / float64(s.Len()); frac > 0.10 {
		t.Fatalf("Dallas hours above $80: %.0f%%, want <10%%", frac*100)
	}
}

func TestGenPriceValidation(t *testing.T) {
	if _, err := GenPrice(DallasPriceProfile(), 1, 0); err == nil {
		t.Error("zero hours accepted")
	}
	bad := DallasPriceProfile()
	bad.SpikeProb = 2
	if _, err := GenPrice(bad, 1, 10); err == nil {
		t.Error("invalid spike probability accepted")
	}
}

func TestGenCarbonRates(t *testing.T) {
	cases := []struct {
		profile MixProfile
		lo, hi  float64
	}{
		{CalgaryMixProfile(), 0.55, 0.85},
		{SanJoseMixProfile(), 0.18, 0.40},
		{DallasMixProfile(), 0.40, 0.65},
		{PittsburghMixProfile(), 0.45, 0.70},
	}
	for _, c := range cases {
		s, err := GenCarbonRate(c.profile, 3, HoursPerWeek)
		if err != nil {
			t.Fatalf("%s: %v", c.profile.Name, err)
		}
		if m := s.Mean(); m < c.lo || m > c.hi {
			t.Errorf("%s: mean carbon rate %g t/MWh outside [%g, %g]", c.profile.Name, m, c.lo, c.hi)
		}
		// Physical bound: within Table III extremes.
		if s.Max() > 0.968 || s.Min() < 0.0135 {
			t.Errorf("%s: rate out of physical bounds [%g, %g]", c.profile.Name, s.Min(), s.Max())
		}
	}
}

func TestGenMixesValidation(t *testing.T) {
	if _, err := GenMixes(MixProfile{Name: "empty"}, 1, 10); err == nil {
		t.Error("empty mix accepted")
	}
	bad := MixProfile{Name: "neg", Base: carbon.Mix{carbon.Coal: -1}}
	if _, err := GenMixes(bad, 1, 10); err == nil {
		t.Error("negative generation accepted")
	}
}

func TestGenPowerDemand(t *testing.T) {
	cfg := DefaultPowerDemandConfig()
	s, err := GenPowerDemand(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != HoursPerWeek {
		t.Fatalf("len = %d", s.Len())
	}
	// Mean should land near the configured mean so the Table I fuel-cell
	// cost is on the paper's scale.
	if m := s.Mean(); math.Abs(m-cfg.MeanMW) > 0.25*cfg.MeanMW {
		t.Fatalf("mean demand %g MW, want ≈ %g", m, cfg.MeanMW)
	}
	if s.Min() <= 0 {
		t.Fatal("non-positive demand")
	}
	if _, err := GenPowerDemand(PowerDemandConfig{Hours: 0, MeanMW: 1}); err == nil {
		t.Error("zero hours accepted")
	}
}

func TestDiurnalWeekendDamping(t *testing.T) {
	// The workload generator damps weekends (days 5-6): compare the
	// weekday peak-hour mean against the weekend peak-hour mean.
	cfg := DefaultWorkloadConfig(10000)
	cfg.Burstiness = 0 // isolate the deterministic shape
	w, err := GenWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	peakHour := 16
	var weekday, weekend float64
	for day := 0; day < 5; day++ {
		weekday += w.At(day*24+peakHour) / 5
	}
	for day := 5; day < 7; day++ {
		weekend += w.At(day*24+peakHour) / 2
	}
	if weekend >= weekday {
		t.Errorf("weekend peak %g should be below weekday peak %g", weekend, weekday)
	}
}

func TestPriceDiurnalStructure(t *testing.T) {
	// Daytime (peak) prices must exceed night prices on average.
	s, err := GenPrice(PittsburghPriceProfile(), 9, HoursPerWeek)
	if err != nil {
		t.Fatal(err)
	}
	var day, night float64
	var dayN, nightN int
	for t2, v := range s.Values {
		switch t2 % 24 {
		case 14, 15, 16, 17:
			day += v
			dayN++
		case 2, 3, 4, 5:
			night += v
			nightN++
		}
	}
	if day/float64(dayN) <= night/float64(nightN) {
		t.Errorf("day mean %g should exceed night mean %g", day/float64(dayN), night/float64(nightN))
	}
}

func TestCarbonRateDiurnalSwing(t *testing.T) {
	// The gas swing raises (or shifts) the carbon rate during the day for
	// coal-light regions; at minimum the series must not be constant.
	s, err := GenCarbonRate(SanJoseMixProfile(), 4, HoursPerWeek)
	if err != nil {
		t.Fatal(err)
	}
	if s.Max()-s.Min() < 1e-4 {
		t.Error("carbon rate series is (nearly) constant; swing missing")
	}
}
