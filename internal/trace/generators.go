package trace

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/carbon"
)

// WorkloadConfig drives the synthetic interactive-workload generator. The
// output follows the shape of the HP trace used in the paper: a strong
// diurnal pattern with high variability and bursts.
type WorkloadConfig struct {
	Seed       int64
	Hours      int
	Servers    float64 // total fleet size the trace is normalized against
	MinUtil    float64 // trough utilization of the fleet (e.g. 0.30)
	MaxUtil    float64 // peak utilization of the fleet (e.g. 0.85)
	Burstiness float64 // multiplicative noise std dev (e.g. 0.06)
}

// DefaultWorkloadConfig matches the paper's scenario scale.
func DefaultWorkloadConfig(servers float64) WorkloadConfig {
	return WorkloadConfig{
		Seed:       20120910,
		Hours:      HoursPerWeek,
		Servers:    servers,
		MinUtil:    0.30,
		MaxUtil:    0.85,
		Burstiness: 0.06,
	}
}

// GenWorkload produces the total hourly request demand in "servers
// required" units, never exceeding the fleet size.
func GenWorkload(cfg WorkloadConfig) (Series, error) {
	if cfg.Hours <= 0 || cfg.Servers <= 0 {
		return Series{}, fmt.Errorf("trace: workload config hours=%d servers=%g", cfg.Hours, cfg.Servers)
	}
	if cfg.MinUtil < 0 || cfg.MaxUtil > 1 || cfg.MinUtil >= cfg.MaxUtil {
		return Series{}, fmt.Errorf("trace: utilization band [%g, %g] invalid", cfg.MinUtil, cfg.MaxUtil)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	vals := make([]float64, cfg.Hours)
	for t := range vals {
		util := cfg.MinUtil + (cfg.MaxUtil-cfg.MinUtil)*diurnal(t)
		noise := 1 + cfg.Burstiness*rng.NormFloat64()
		if noise < 0.5 {
			noise = 0.5
		}
		v := util * noise * cfg.Servers
		if v > cfg.Servers {
			v = cfg.Servers
		}
		if v < 0 {
			v = 0
		}
		vals[t] = v
	}
	return Series{Name: "workload", Values: vals}, nil
}

// SplitFrontEnds distributes a total workload across m front-end proxies.
// Per the paper, the split follows a normal distribution: each front-end
// receives a fixed weight drawn from |N(1, 0.35)|, normalized, with small
// hourly jitter that is re-normalized so the per-hour sum is preserved
// exactly.
func SplitFrontEnds(total Series, m int, seed int64) ([]Series, error) {
	if m <= 0 {
		return nil, fmt.Errorf("trace: split into %d front-ends", m)
	}
	rng := rand.New(rand.NewSource(seed))
	weights := make([]float64, m)
	var wsum float64
	for i := range weights {
		w := math.Abs(1 + 0.35*rng.NormFloat64())
		if w < 0.1 {
			w = 0.1
		}
		weights[i] = w
		wsum += w
	}
	for i := range weights {
		weights[i] /= wsum
	}
	out := make([]Series, m)
	for i := range out {
		out[i] = Series{
			Name:   fmt.Sprintf("frontend-%d", i),
			Values: make([]float64, total.Len()),
		}
	}
	jitter := make([]float64, m)
	for t := 0; t < total.Len(); t++ {
		var jsum float64
		for i := range jitter {
			j := weights[i] * math.Abs(1+0.08*rng.NormFloat64())
			jitter[i] = j
			jsum += j
		}
		for i := range out {
			out[i].Values[t] = total.At(t) * jitter[i] / jsum
		}
	}
	return out, nil
}

// PriceProfile parameterizes a location's hourly electricity-price model
// (locational marginal prices, $/MWh): a base price plus a diurnal peak
// component, Gaussian noise, and occasional price spikes, floored at a
// minimum clearing price.
type PriceProfile struct {
	Name      string
	BaseUSD   float64 // off-peak base price, $/MWh
	PeakUSD   float64 // additional price at the daily peak, $/MWh
	NoiseStd  float64 // additive Gaussian noise, $/MWh
	SpikeProb float64 // per-hour probability of a spike
	SpikeUSD  float64 // mean spike magnitude, $/MWh
	FloorUSD  float64 // minimum clearing price
}

// GenPrice produces an hourly price series from the profile.
func GenPrice(p PriceProfile, seed int64, hours int) (Series, error) {
	if hours <= 0 {
		return Series{}, fmt.Errorf("trace: price series of %d hours", hours)
	}
	if p.BaseUSD < 0 || p.PeakUSD < 0 || p.SpikeProb < 0 || p.SpikeProb > 1 {
		return Series{}, fmt.Errorf("trace: price profile %+v invalid", p)
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, hours)
	for t := range vals {
		v := p.BaseUSD + p.PeakUSD*diurnal(t) + p.NoiseStd*rng.NormFloat64()
		if rng.Float64() < p.SpikeProb {
			v += p.SpikeUSD * (0.5 + rng.Float64())
		}
		if v < p.FloorUSD {
			v = p.FloorUSD
		}
		vals[t] = v
	}
	return Series{Name: p.Name, Values: vals}, nil
}

// Calibrated per-location price profiles. Dallas (ERCOT) is cheap with rare
// scarcity spikes; San Jose (CAISO) is expensive and frequently above the
// $80/MWh fuel-cell price; Calgary (AESO) and Pittsburgh (PJM) sit in
// between, with Pittsburgh showing pronounced evening peaks.
func DallasPriceProfile() PriceProfile {
	return PriceProfile{Name: "price-dallas", BaseUSD: 18, PeakUSD: 18, NoiseStd: 3.5, SpikeProb: 0.03, SpikeUSD: 70, FloorUSD: 8}
}

// SanJosePriceProfile returns the CAISO-like expensive profile: cheap
// off-peak nights but steep daytime peaks well above the fuel-cell price,
// giving the hybrid strategy its Table I arbitrage headroom.
func SanJosePriceProfile() PriceProfile {
	return PriceProfile{Name: "price-sanjose", BaseUSD: 22, PeakUSD: 125, NoiseStd: 7, SpikeProb: 0.05, SpikeUSD: 45, FloorUSD: 18}
}

// CalgaryPriceProfile returns the AESO-like moderate profile.
func CalgaryPriceProfile() PriceProfile {
	return PriceProfile{Name: "price-calgary", BaseUSD: 32, PeakUSD: 24, NoiseStd: 5, SpikeProb: 0.04, SpikeUSD: 60, FloorUSD: 12}
}

// PittsburghPriceProfile returns the PJM-like profile with evening peaks.
func PittsburghPriceProfile() PriceProfile {
	return PriceProfile{Name: "price-pittsburgh", BaseUSD: 28, PeakUSD: 30, NoiseStd: 5, SpikeProb: 0.035, SpikeUSD: 65, FloorUSD: 12}
}

// MixProfile parameterizes a region's hourly fuel mix: a base mix, plus a
// fuel whose share swings with the diurnal demand curve (gas peakers by
// day, or wind by night), as observed in the RTO fuel-mix data.
type MixProfile struct {
	Name       string
	Base       carbon.Mix
	SwingFuel  carbon.FuelType
	SwingShare float64 // added share of the swing fuel at peak (0..1 scale of base total)
	NoiseStd   float64 // relative noise on each component
}

// GenMixes produces the hourly fuel mixes for the region.
func GenMixes(p MixProfile, seed int64, hours int) ([]carbon.Mix, error) {
	if hours <= 0 {
		return nil, fmt.Errorf("trace: mix series of %d hours", hours)
	}
	// Visit fuels in sorted order: ranging over the map directly would
	// consume RNG draws in the per-process randomized iteration order,
	// producing a different trace on every run.
	fuels := p.Base.Fuels()
	var baseTotal float64
	for _, f := range fuels {
		if p.Base[f] < 0 {
			return nil, fmt.Errorf("trace: mix profile %s has negative generation", p.Name)
		}
		baseTotal += p.Base[f]
	}
	if baseTotal == 0 {
		return nil, fmt.Errorf("trace: mix profile %s is empty", p.Name)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]carbon.Mix, hours)
	for t := range out {
		m := make(carbon.Mix, len(p.Base)+1)
		for _, f := range fuels {
			m[f] = p.Base[f] * math.Abs(1+p.NoiseStd*rng.NormFloat64())
		}
		m[p.SwingFuel] += baseTotal * p.SwingShare * diurnal(t)
		out[t] = m
	}
	return out, nil
}

// GenCarbonRate converts the profile's hourly mixes to a carbon emission
// rate series (t/MWh) via the paper's Eq. (1).
func GenCarbonRate(p MixProfile, seed int64, hours int) (Series, error) {
	mixes, err := GenMixes(p, seed, hours)
	if err != nil {
		return Series{}, err
	}
	vals := make([]float64, hours)
	for t, m := range mixes {
		r, err := m.RateTonPerMWh()
		if err != nil {
			return Series{}, fmt.Errorf("trace: mix at hour %d: %w", t, err)
		}
		vals[t] = r
	}
	return Series{Name: "carbon-" + p.Name, Values: vals}, nil
}

// Calibrated per-location fuel-mix profiles (shares reflect the 2012-era
// grids: Alberta coal-heavy, California gas/hydro/nuclear, ERCOT
// gas/coal/wind, PJM coal/nuclear/gas).
func CalgaryMixProfile() MixProfile {
	return MixProfile{
		Name:       "calgary",
		Base:       carbon.Mix{carbon.Coal: 55, carbon.Gas: 32, carbon.Wind: 6, carbon.Hydro: 7},
		SwingFuel:  carbon.Gas,
		SwingShare: 0.15,
		NoiseStd:   0.04,
	}
}

// SanJoseMixProfile returns the CAISO-like clean profile.
func SanJoseMixProfile() MixProfile {
	return MixProfile{
		Name:       "sanjose",
		Base:       carbon.Mix{carbon.Gas: 45, carbon.Nuclear: 18, carbon.Hydro: 22, carbon.Wind: 12, carbon.Coal: 3},
		SwingFuel:  carbon.Gas,
		SwingShare: 0.20,
		NoiseStd:   0.05,
	}
}

// DallasMixProfile returns the ERCOT-like profile.
func DallasMixProfile() MixProfile {
	return MixProfile{
		Name:       "dallas",
		Base:       carbon.Mix{carbon.Gas: 45, carbon.Coal: 32, carbon.Wind: 12, carbon.Nuclear: 11},
		SwingFuel:  carbon.Gas,
		SwingShare: 0.18,
		NoiseStd:   0.05,
	}
}

// PittsburghMixProfile returns the PJM-like profile.
func PittsburghMixProfile() MixProfile {
	return MixProfile{
		Name:       "pittsburgh",
		Base:       carbon.Mix{carbon.Coal: 45, carbon.Nuclear: 32, carbon.Gas: 18, carbon.Hydro: 3, carbon.Wind: 2},
		SwingFuel:  carbon.Gas,
		SwingShare: 0.15,
		NoiseStd:   0.04,
	}
}

// PowerDemandConfig drives the Facebook-style facility power-demand profile
// used by Table I and Fig. 1: a diurnal MW curve with mild noise.
type PowerDemandConfig struct {
	Seed     int64
	Hours    int
	MeanMW   float64 // weekly mean demand
	SwingMW  float64 // peak-to-mean swing
	NoiseStd float64 // relative noise
}

// DefaultPowerDemandConfig calibrates the profile so a week of demand at
// the paper's fuel-cell price (80 $/MWh) costs on the order of the paper's
// Table I "Fuel Cell" figure (~$28k/week → mean ≈ 2.08 MW).
func DefaultPowerDemandConfig() PowerDemandConfig {
	return PowerDemandConfig{Seed: 8, Hours: HoursPerWeek, MeanMW: 2.08, SwingMW: 0.55, NoiseStd: 0.03}
}

// GenPowerDemand produces the hourly facility power demand in MW.
func GenPowerDemand(cfg PowerDemandConfig) (Series, error) {
	if cfg.Hours <= 0 || cfg.MeanMW <= 0 {
		return Series{}, fmt.Errorf("trace: power demand config hours=%d mean=%g", cfg.Hours, cfg.MeanMW)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	vals := make([]float64, cfg.Hours)
	for t := range vals {
		v := cfg.MeanMW + cfg.SwingMW*(diurnal(t)*2-1)
		v *= math.Abs(1 + cfg.NoiseStd*rng.NormFloat64())
		if v < 0.1*cfg.MeanMW {
			v = 0.1 * cfg.MeanMW
		}
		vals[t] = v
	}
	return Series{Name: "power-demand", Values: vals}, nil
}
