// Package trace provides the trace substrates of the evaluation. The paper
// drives its simulation with real one-week hourly traces (an HP request
// trace, RTO/ISO locational marginal prices, and RTO/ISO fuel-mix data)
// that are not redistributable; this package generates deterministic
// synthetic equivalents calibrated to the same shapes: a strongly diurnal
// bursty workload, spatially diverse electricity prices with peak/off-peak
// structure and spikes, and per-region fuel mixes with a diurnal pattern.
// Every generator is seeded, so all experiments are reproducible.
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
)

// HoursPerWeek is the length of the paper's evaluation window (Sep 10–16,
// 2012): one week of hourly slots.
const HoursPerWeek = 168

// Series is a named hourly time series.
type Series struct {
	Name   string
	Values []float64
}

// NewSeries builds a series, copying values.
func NewSeries(name string, values []float64) Series {
	return Series{Name: name, Values: append([]float64(nil), values...)}
}

// Len returns the number of samples.
func (s Series) Len() int { return len(s.Values) }

// At returns the sample at hour t.
func (s Series) At(t int) float64 { return s.Values[t] }

// Clone returns a deep copy.
func (s Series) Clone() Series { return NewSeries(s.Name, s.Values) }

// Mean returns the arithmetic mean (0 for the empty series).
func (s Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Sum returns the sum of all samples.
func (s Series) Sum() float64 {
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum
}

// Max returns the maximum sample; it panics on an empty series.
func (s Series) Max() float64 {
	if len(s.Values) == 0 {
		panic("trace: Max of empty series")
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum sample; it panics on an empty series.
func (s Series) Min() float64 {
	if len(s.Values) == 0 {
		panic("trace: Min of empty series")
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Scale multiplies every sample by f, returning a new series.
func (s Series) Scale(f float64) Series {
	out := s.Clone()
	for i := range out.Values {
		out.Values[i] *= f
	}
	return out
}

// WriteCSV writes the series as columns: an "hour" column followed by one
// column per series. All series must share a length.
func WriteCSV(w io.Writer, series []Series) error {
	if len(series) == 0 {
		return errors.New("trace: no series to write")
	}
	n := series[0].Len()
	for _, s := range series {
		if s.Len() != n {
			return fmt.Errorf("trace: series %q has %d samples, want %d", s.Name, s.Len(), n)
		}
	}
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(series)+1)
	header = append(header, "hour")
	for _, s := range series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	row := make([]string, len(series)+1)
	for t := 0; t < n; t++ {
		row[0] = strconv.Itoa(t)
		for k, s := range series {
			row[k+1] = strconv.FormatFloat(s.At(t), 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write row %d: %w", t, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads series previously written with WriteCSV.
func ReadCSV(r io.Reader) ([]Series, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(rows) < 1 || len(rows[0]) < 2 || rows[0][0] != "hour" {
		return nil, errors.New("trace: malformed csv header")
	}
	series := make([]Series, len(rows[0])-1)
	for k := range series {
		series[k] = Series{Name: rows[0][k+1], Values: make([]float64, 0, len(rows)-1)}
	}
	for i, row := range rows[1:] {
		if len(row) != len(rows[0]) {
			return nil, fmt.Errorf("trace: row %d has %d fields, want %d", i+1, len(row), len(rows[0]))
		}
		for k := range series {
			v, err := strconv.ParseFloat(row[k+1], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: row %d field %d: %w", i+1, k+1, err)
			}
			series[k].Values = append(series[k].Values, v)
		}
	}
	return series, nil
}

// diurnal returns a smooth [0,1] daily activity curve for hour-of-week t:
// low at night, peaking in the late afternoon, slightly damped on the
// weekend (days 5 and 6).
func diurnal(t int) float64 {
	hour := float64(t % 24)
	day := (t / 24) % 7
	// Peak near 16:00, trough near 04:00.
	base := 0.5 - 0.5*math.Cos((hour-4)/24*2*math.Pi)
	if day >= 5 {
		base *= 0.8
	}
	return base
}
