package carbon

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestEmissionRates(t *testing.T) {
	want := map[FuelType]float64{
		Nuclear: 15, Coal: 968, Gas: 440, Oil: 890, Hydro: 13.5, Wind: 22.5,
	}
	for f, w := range want {
		got, ok := f.EmissionRateG()
		if !ok || got != w {
			t.Errorf("%s rate = %g (%v), want %g", f, got, ok, w)
		}
	}
	if _, ok := FuelType(99).EmissionRateG(); ok {
		t.Error("unknown fuel has a rate")
	}
}

func TestMixRate(t *testing.T) {
	// Pure coal: 968 g/kWh = 0.968 t/MWh.
	r, err := Mix{Coal: 10}.RateTonPerMWh()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.968) > 1e-12 {
		t.Errorf("pure coal rate = %g", r)
	}
	// 50/50 coal/gas: (968+440)/2 = 704 g/kWh.
	r, err = Mix{Coal: 5, Gas: 5}.RateTonPerMWh()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.704) > 1e-12 {
		t.Errorf("coal/gas rate = %g", r)
	}
}

func TestMixRateErrors(t *testing.T) {
	if _, err := (Mix{}).RateTonPerMWh(); !errors.Is(err, ErrEmptyMix) {
		t.Errorf("empty mix error = %v", err)
	}
	if _, err := (Mix{Coal: -1}).RateTonPerMWh(); err == nil {
		t.Error("negative generation accepted")
	}
	if _, err := (Mix{FuelType(99): 1}).RateTonPerMWh(); err == nil {
		t.Error("unknown fuel accepted")
	}
}

// Property: the mix rate is always between the min and max fuel rates used.
func TestPropMixRateBounded(t *testing.T) {
	f := func(a, b, c, d, e, g uint16) bool {
		m := Mix{
			Nuclear: float64(a), Coal: float64(b), Gas: float64(c),
			Oil: float64(d), Hydro: float64(e), Wind: float64(g),
		}
		r, err := m.RateTonPerMWh()
		if errors.Is(err, ErrEmptyMix) {
			return true
		}
		if err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for fuel, gen := range m {
			if gen == 0 {
				continue
			}
			fr, _ := fuel.EmissionRateG()
			fr /= 1000
			lo, hi = math.Min(lo, fr), math.Max(hi, fr)
		}
		return r >= lo-1e-12 && r <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalized(t *testing.T) {
	n := Mix{Coal: 3, Gas: 1}.Normalized()
	if math.Abs(n[Coal]-0.75) > 1e-12 || math.Abs(n[Gas]-0.25) > 1e-12 {
		t.Errorf("normalized = %v", n)
	}
	if len(Mix{}.Normalized()) != 0 {
		t.Error("empty mix normalized non-empty")
	}
}

func TestLinearTax(t *testing.T) {
	v := LinearTax{Rate: 25}
	if v.Cost(2) != 50 {
		t.Errorf("cost(2) = %g", v.Cost(2))
	}
	if v.Cost(-1) != 0 {
		t.Errorf("cost(-1) = %g", v.Cost(-1))
	}
	if v.Marginal(10) != 25 {
		t.Errorf("marginal = %g", v.Marginal(10))
	}
}

func TestQuadraticCost(t *testing.T) {
	v := QuadraticCost{A: 10, B: 2}
	if v.Cost(3) != 10*3+2*9 {
		t.Errorf("cost(3) = %g", v.Cost(3))
	}
	if v.Marginal(3) != 10+12 {
		t.Errorf("marginal(3) = %g", v.Marginal(3))
	}
	if v.Cost(-1) != 0 {
		t.Errorf("cost(-1) = %g", v.Cost(-1))
	}
}

func TestCapAndTrade(t *testing.T) {
	v := CapAndTrade{CapTons: 10, Price: 30}
	if v.Cost(5) != 0 || v.Marginal(5) != 0 {
		t.Error("under-cap emission should be free")
	}
	if v.Cost(12) != 60 {
		t.Errorf("cost(12) = %g", v.Cost(12))
	}
	if v.Marginal(12) != 30 {
		t.Errorf("marginal(12) = %g", v.Marginal(12))
	}
}

func TestSteppedTax(t *testing.T) {
	s, err := NewSteppedTax([]float64{10, 20}, []float64{5, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	// 0..10 at $5, 10..20 at $10, beyond at $20.
	if got := s.Cost(10); got != 50 {
		t.Errorf("cost(10) = %g, want 50", got)
	}
	if got := s.Cost(25); got != 50+100+100 {
		t.Errorf("cost(25) = %g, want 250", got)
	}
	if got := s.Marginal(15); got != 10 {
		t.Errorf("marginal(15) = %g", got)
	}
	if got := s.Cost(-3); got != 0 {
		t.Errorf("cost(-3) = %g", got)
	}
}

func TestSteppedTaxValidation(t *testing.T) {
	if _, err := NewSteppedTax([]float64{10}, []float64{5}); err == nil {
		t.Error("rate count mismatch accepted")
	}
	if _, err := NewSteppedTax([]float64{20, 10}, []float64{1, 2, 3}); err == nil {
		t.Error("unsorted thresholds accepted")
	}
	if _, err := NewSteppedTax([]float64{10}, []float64{5, 2}); err == nil {
		t.Error("decreasing rates accepted (non-convex)")
	}
}

// Property: every cost function is non-decreasing and convex on a grid.
func TestPropCostFuncsConvex(t *testing.T) {
	stepped, _ := NewSteppedTax([]float64{5, 15}, []float64{2, 8, 25})
	funcs := []CostFunc{
		LinearTax{Rate: 25},
		QuadraticCost{A: 5, B: 1.5},
		CapAndTrade{CapTons: 7, Price: 40},
		stepped,
		ZeroCost{},
	}
	for _, v := range funcs {
		prev := v.Cost(0)
		prevSlope := math.Inf(-1)
		for e := 0.5; e <= 30; e += 0.5 {
			cur := v.Cost(e)
			if cur < prev-1e-12 {
				t.Errorf("%s: decreasing at %g", v.Name(), e)
			}
			slope := (cur - prev) / 0.5
			if slope < prevSlope-1e-9 {
				t.Errorf("%s: non-convex at %g (slope %g < %g)", v.Name(), e, slope, prevSlope)
			}
			prev, prevSlope = cur, slope
		}
	}
}
