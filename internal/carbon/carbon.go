// Package carbon models the carbon-emission side of the UFC index: fuel
// types with their per-kWh emission rates (Table III of the paper), the
// fuel-mix weighted carbon emission rate of a region (Eq. (1)), and the
// family of emission-cost functions V_j (carbon tax, cap-and-trade, stepped
// tax, offset-style quadratic), all of which are non-decreasing and convex
// as the paper requires.
package carbon

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// FuelType identifies an electricity generation fuel.
type FuelType int

// Fuel types from Table III of the paper.
const (
	Nuclear FuelType = iota + 1
	Coal
	Gas
	Oil
	Hydro
	Wind
)

var fuelNames = map[FuelType]string{
	Nuclear: "nuclear",
	Coal:    "coal",
	Gas:     "gas",
	Oil:     "oil",
	Hydro:   "hydro",
	Wind:    "wind",
}

// String returns the lowercase fuel name.
func (f FuelType) String() string {
	if n, ok := fuelNames[f]; ok {
		return n
	}
	return fmt.Sprintf("fuel(%d)", int(f))
}

// EmissionRateG returns the CO₂ emission of the fuel in grams per kWh
// (Table III). Unknown fuels return 0 and false.
func (f FuelType) EmissionRateG() (float64, bool) {
	switch f {
	case Nuclear:
		return 15, true
	case Coal:
		return 968, true
	case Gas:
		return 440, true
	case Oil:
		return 890, true
	case Hydro:
		return 13.5, true
	case Wind:
		return 22.5, true
	default:
		return 0, false
	}
}

// AllFuels lists the fuel types in Table III order.
func AllFuels() []FuelType {
	return []FuelType{Nuclear, Coal, Gas, Oil, Hydro, Wind}
}

// Mix is the electricity generation mix of a region at one time slot:
// the amount of electricity (any consistent unit) generated per fuel type.
type Mix map[FuelType]float64

// ErrEmptyMix is returned when a mix generates no electricity at all.
var ErrEmptyMix = errors.New("carbon: fuel mix has no generation")

// Fuels returns the mix's fuel types in ascending order. Map iteration
// order is randomized per process; visiting fuels in a fixed order keeps
// float accumulations and RNG draws — and therefore every downstream
// solve — reproducible across runs.
func (m Mix) Fuels() []FuelType {
	fs := make([]FuelType, 0, len(m))
	for f := range m {
		fs = append(fs, f)
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
	return fs
}

// RateTonPerMWh computes the fuel-mix weighted carbon emission rate of the
// region via the paper's Eq. (1), converted to metric tons of CO₂ per MWh
// (numerically equal to kg/kWh, i.e. g/kWh divided by 1000).
func (m Mix) RateTonPerMWh() (float64, error) {
	var totalGen, weighted float64
	for _, fuel := range m.Fuels() {
		gen := m[fuel]
		if gen < 0 {
			return 0, fmt.Errorf("carbon: negative generation %g for %s", gen, fuel)
		}
		rate, ok := fuel.EmissionRateG()
		if !ok {
			return 0, fmt.Errorf("carbon: unknown fuel %v", fuel)
		}
		totalGen += gen
		weighted += gen * rate
	}
	if totalGen == 0 {
		return 0, ErrEmptyMix
	}
	return weighted / totalGen / 1000, nil
}

// Normalized returns a copy of the mix scaled so generation sums to 1.
func (m Mix) Normalized() Mix {
	var total float64
	for _, f := range m.Fuels() {
		total += m[f]
	}
	out := make(Mix, len(m))
	if total == 0 {
		return out
	}
	for f, g := range m {
		out[f] = g / total
	}
	return out
}

// CostFunc is an emission cost function V_j. It must be non-decreasing and
// convex in the emission amount (metric tons of CO₂), as assumed in §II-B2.
type CostFunc interface {
	// Cost returns V(emission) in dollars for the emission in tons.
	Cost(emissionTons float64) float64
	// Marginal returns a subgradient dV/dE at the emission (dollars/ton).
	Marginal(emissionTons float64) float64
	// Name identifies the policy for reporting.
	Name() string
}

// LinearTax is the paper's evaluation policy: a flat carbon tax of Rate
// dollars per ton (e.g. $25/ton), V(E) = Rate·E.
type LinearTax struct {
	Rate float64 // $/ton
}

var _ CostFunc = LinearTax{}

// Cost implements CostFunc.
func (t LinearTax) Cost(e float64) float64 { return t.Rate * math.Max(e, 0) }

// Marginal implements CostFunc.
func (t LinearTax) Marginal(float64) float64 { return t.Rate }

// Name implements CostFunc.
func (t LinearTax) Name() string { return fmt.Sprintf("linear-tax(%g$/ton)", t.Rate) }

// QuadraticCost models an offset program whose marginal price grows with
// volume: V(E) = a·E + b·E².
type QuadraticCost struct {
	A float64 // $/ton
	B float64 // $/ton²
}

var _ CostFunc = QuadraticCost{}

// Cost implements CostFunc.
func (q QuadraticCost) Cost(e float64) float64 {
	if e < 0 {
		e = 0
	}
	return q.A*e + q.B*e*e
}

// Marginal implements CostFunc.
func (q QuadraticCost) Marginal(e float64) float64 {
	if e < 0 {
		e = 0
	}
	return q.A + 2*q.B*e
}

// Name implements CostFunc.
func (q QuadraticCost) Name() string { return fmt.Sprintf("quadratic(%g+%g·E)", q.A, 2*q.B) }

// CapAndTrade models an EU-style permit scheme: emissions up to the
// allocated cap are free; beyond the cap, permits must be bought at the
// market price. V(E) = Price · max(0, E − Cap). This is convex but not
// strongly convex — the case that motivates ADM-G over plain multi-block
// ADMM in the paper.
type CapAndTrade struct {
	CapTons float64 // free allocation, tons
	Price   float64 // permit price, $/ton
}

var _ CostFunc = CapAndTrade{}

// Cost implements CostFunc.
func (c CapAndTrade) Cost(e float64) float64 {
	over := e - c.CapTons
	if over <= 0 {
		return 0
	}
	return c.Price * over
}

// Marginal implements CostFunc.
func (c CapAndTrade) Marginal(e float64) float64 {
	if e <= c.CapTons {
		return 0
	}
	return c.Price
}

// Name implements CostFunc.
func (c CapAndTrade) Name() string {
	return fmt.Sprintf("cap-and-trade(cap=%gt, %g$/ton)", c.CapTons, c.Price)
}

// SteppedTax is a piecewise-linear tax whose marginal rate increases at
// each threshold (a progressive, "stepped" tax system). Thresholds must be
// increasing and rates non-decreasing so the function stays convex.
type SteppedTax struct {
	Thresholds []float64 // tons, strictly increasing
	Rates      []float64 // $/ton: Rates[0] below Thresholds[0], etc.; len = len(Thresholds)+1
}

var _ CostFunc = SteppedTax{}

// NewSteppedTax validates and builds a stepped tax.
func NewSteppedTax(thresholds, rates []float64) (SteppedTax, error) {
	if len(rates) != len(thresholds)+1 {
		return SteppedTax{}, fmt.Errorf("carbon: %d rates for %d thresholds", len(rates), len(thresholds))
	}
	if !sort.Float64sAreSorted(thresholds) {
		return SteppedTax{}, errors.New("carbon: thresholds must be increasing")
	}
	for i := 1; i < len(rates); i++ {
		if rates[i] < rates[i-1] {
			return SteppedTax{}, errors.New("carbon: rates must be non-decreasing for convexity")
		}
	}
	return SteppedTax{
		Thresholds: append([]float64(nil), thresholds...),
		Rates:      append([]float64(nil), rates...),
	}, nil
}

// Cost implements CostFunc.
func (s SteppedTax) Cost(e float64) float64 {
	if e <= 0 {
		return 0
	}
	var cost, prev float64
	for i, th := range s.Thresholds {
		if e <= th {
			return cost + s.Rates[i]*(e-prev)
		}
		cost += s.Rates[i] * (th - prev)
		prev = th
	}
	return cost + s.Rates[len(s.Rates)-1]*(e-prev)
}

// Marginal implements CostFunc.
func (s SteppedTax) Marginal(e float64) float64 {
	for i, th := range s.Thresholds {
		if e < th {
			return s.Rates[i]
		}
	}
	return s.Rates[len(s.Rates)-1]
}

// Name implements CostFunc.
func (s SteppedTax) Name() string { return fmt.Sprintf("stepped-tax(%d steps)", len(s.Thresholds)) }

// ZeroCost ignores emissions entirely (useful as a baseline / ablation).
type ZeroCost struct{}

var _ CostFunc = ZeroCost{}

// Cost implements CostFunc.
func (ZeroCost) Cost(float64) float64 { return 0 }

// Marginal implements CostFunc.
func (ZeroCost) Marginal(float64) float64 { return 0 }

// Name implements CostFunc.
func (ZeroCost) Name() string { return "zero" }
