package admm

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/qp"
)

// QuadraticBlock is a ready-made Block whose objective is the convex
// quadratic f(x) = ½xᵀPx + qᵀx over a polyhedral set (equalities,
// inequalities and bounds as in qp.Problem). Its ADMM sub-problem
//
//	min f(x) + yᵀKx + (ρ/2)‖Kx + rest‖²
//
// is itself a convex QP with Hessian P + ρKᵀK and is solved with the
// active-set solver, warm-started from the previous iterate.
type QuadraticBlock struct {
	P     *linalg.Matrix // dim x dim, PSD
	Q     linalg.Vector
	Kmat  *linalg.Matrix
	Aeq   *linalg.Matrix
	Beq   linalg.Vector
	Ain   *linalg.Matrix
	Bin   linalg.Vector
	Lower linalg.Vector
	Upper linalg.Vector
	Start linalg.Vector

	ktk  *linalg.Matrix // cached KᵀK
	warm linalg.Vector
}

var _ Block = (*QuadraticBlock)(nil)

// Dim implements Block.
func (b *QuadraticBlock) Dim() int { return b.Q.Len() }

// K implements Block.
func (b *QuadraticBlock) K() *linalg.Matrix { return b.Kmat }

// Objective implements Block.
func (b *QuadraticBlock) Objective(x linalg.Vector) float64 {
	return 0.5*x.Dot(b.P.MulVec(x)) + b.Q.Dot(x)
}

// Solve implements Block.
func (b *QuadraticBlock) Solve(y, rest linalg.Vector, rho float64) (linalg.Vector, error) {
	n := b.Dim()
	if b.ktk == nil {
		b.ktk = b.Kmat.Transpose().Mul(b.Kmat)
	}
	h := b.P.Clone()
	h.AddScaled(rho, b.ktk)
	h.Symmetrize()
	c := b.Q.Clone()
	c.AddScaled(1, b.Kmat.MulTransVec(y))
	c.AddScaled(rho, b.Kmat.MulTransVec(rest))

	start := b.warm
	if start == nil {
		start = b.Start
	}
	res, err := qp.Solve(&qp.Problem{
		H: h, C: c,
		Aeq: b.Aeq, Beq: b.Beq,
		Ain: b.Ain, Bin: b.Bin,
		Lower: b.Lower, Upper: b.Upper,
		Start: start,
	}, qp.Options{})
	if err != nil {
		return nil, fmt.Errorf("quadratic block of dim %d: %w", n, err)
	}
	b.warm = res.X.Clone()
	return res.X, nil
}
