// Package admm implements the generic m-block Alternating Direction Method
// with Gaussian back substitution (ADM-G, He–Tao–Yuan 2012) that the paper
// builds on (§III-A), for the linearly constrained separable program
//
//	min  Σ_i f_i(x_i)   s.t.  Σ_i K_i x_i = b,  x_i ∈ X_i.
//
// Each block supplies its own sub-problem solver; the framework runs the
// forward ADMM prediction sweep, the dual update, and the backward Gaussian
// back-substitution correction with the upper-triangular matrix G built
// from (K_iᵀK_i)⁻¹K_iᵀK_j products. Convergence requires K_iᵀK_i
// (i ≥ 2) nonsingular — Theorem 1 of the paper — which the constructor
// verifies. It serves as the reference implementation that the specialized
// distributed UFC solver in internal/core is tested against.
package admm

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/linalg"
	"repro/internal/telemetry"
)

// Errors returned by the framework.
var (
	ErrTooFewBlocks = errors.New("admm: need at least one block")
	ErrBadEpsilon   = errors.New("admm: epsilon must lie in (0.5, 1]")
	ErrBadRho       = errors.New("admm: rho must be positive")
	ErrNotConverged = errors.New("admm: iteration limit reached before convergence")
)

// Block is one variable block x_i of the separable program. Solve must
// return the minimizer over the block's own feasible set X_i of
//
//	f_i(x) + yᵀ(K x) + (ρ/2)‖K x + rest‖²
//
// where rest collects the contribution of all other blocks minus b.
type Block interface {
	// Dim is the number of variables in the block.
	Dim() int
	// K returns the block's relation matrix (l rows, Dim columns). The
	// returned matrix must not be mutated.
	K() *linalg.Matrix
	// Solve performs the block minimization described above.
	Solve(y, rest linalg.Vector, rho float64) (linalg.Vector, error)
	// Objective evaluates f_i at x (used for reporting).
	Objective(x linalg.Vector) float64
}

// Options configures a run.
type Options struct {
	Rho           float64 // augmented-Lagrangian penalty (default 1)
	Epsilon       float64 // Gaussian back-substitution step, in (0.5, 1] (default 1)
	MaxIterations int     // default 1000
	Tolerance     float64 // primal residual and iterate-change tolerance (default 1e-6)
	// Probe, when non-nil, records per-iteration relative primal
	// residuals and the solve outcome. Generic ADM-G always starts from
	// the zero point, so every solve is reported as a cold start.
	Probe *telemetry.SolverProbe
}

func (o Options) withDefaults() Options {
	if o.Rho == 0 {
		o.Rho = 1
	}
	if o.Epsilon == 0 {
		o.Epsilon = 1
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 1000
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-6
	}
	return o
}

// Result is the outcome of a run.
type Result struct {
	X          []linalg.Vector // per-block solutions
	Y          linalg.Vector   // final dual variable
	Objective  float64         // Σ f_i(x_i)
	Residual   float64         // ‖Σ K_i x_i − b‖₂
	Iterations int
	Converged  bool
}

// Solver holds the precomputed back-substitution operators.
type Solver struct {
	blocks []Block
	b      linalg.Vector
	l      int // number of linear constraints
	// corr[i][j] = (K_iᵀK_i)⁻¹ K_iᵀ K_j for 2 ≤ i < j ≤ m (0-indexed
	// internally: corr[i][j] defined for 1 ≤ i < j ≤ m−1).
	corr map[int]map[int]*linalg.Matrix
}

// New validates the problem and precomputes the Gaussian back-substitution
// operators. Blocks are indexed 1..m in the paper; here 0..m-1.
func New(blocks []Block, b linalg.Vector) (*Solver, error) {
	if len(blocks) == 0 {
		return nil, ErrTooFewBlocks
	}
	l := b.Len()
	for i, blk := range blocks {
		k := blk.K()
		if k.Rows() != l || k.Cols() != blk.Dim() {
			return nil, fmt.Errorf("admm: block %d has K %dx%d, want %dx%d: %w",
				i, k.Rows(), k.Cols(), l, blk.Dim(), linalg.ErrDimensionMismatch)
		}
	}
	s := &Solver{blocks: blocks, b: b.Clone(), l: l, corr: map[int]map[int]*linalg.Matrix{}}
	// Theorem 1 requires K_iᵀK_i nonsingular for i = 2..m (indexes 1..m-1).
	for i := 1; i < len(blocks); i++ {
		ki := blocks[i].K()
		kik := ki.Transpose().Mul(ki)
		ch, err := linalg.NewCholesky(kik)
		if err != nil {
			return nil, fmt.Errorf("admm: K_%dᵀK_%d singular (Theorem 1 assumption violated): %w", i+1, i+1, err)
		}
		if i == len(blocks)-1 {
			continue // last block's row in G has no off-diagonal products
		}
		row := map[int]*linalg.Matrix{}
		for j := i + 1; j < len(blocks); j++ {
			kij := ki.Transpose().Mul(blocks[j].K())
			// Solve (K_iᵀK_i) X = K_iᵀK_j column by column.
			out := linalg.NewMatrix(kij.Rows(), kij.Cols())
			for c := 0; c < kij.Cols(); c++ {
				col := linalg.NewVector(kij.Rows())
				for r := 0; r < kij.Rows(); r++ {
					col[r] = kij.At(r, c)
				}
				sol, err := ch.Solve(col)
				if err != nil {
					return nil, fmt.Errorf("admm: back-substitution operator (%d,%d): %w", i, j, err)
				}
				for r := 0; r < out.Rows(); r++ {
					out.Set(r, c, sol[r])
				}
			}
			row[j] = out
		}
		s.corr[i] = row
	}
	return s, nil
}

// Solve runs ADM-G from the zero initial point.
func (s *Solver) Solve(opts Options) (*Result, error) {
	return s.SolveContext(context.Background(), opts)
}

// SolveContext is Solve with cancellation, polled once per iteration.
func (s *Solver) SolveContext(ctx context.Context, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	if opts.Rho <= 0 {
		return nil, ErrBadRho
	}
	if opts.Epsilon <= 0.5 || opts.Epsilon > 1 {
		return nil, ErrBadEpsilon
	}
	m := len(s.blocks)
	x := make([]linalg.Vector, m)
	for i, blk := range s.blocks {
		x[i] = linalg.NewVector(blk.Dim())
	}
	y := linalg.NewVector(s.l)

	kx := make([]linalg.Vector, m) // cached K_i x_i
	for i, blk := range s.blocks {
		kx[i] = blk.K().MulVec(x[i])
	}

	xt := make([]linalg.Vector, m) // predicted x̃
	for iter := 1; iter <= opts.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("admm: solve cancelled at iteration %d: %w", iter, err)
		}
		// --- Prediction sweep (forward order). ---
		kxt := make([]linalg.Vector, m)
		for i, blk := range s.blocks {
			rest := linalg.NewVector(s.l)
			rest.AddScaled(-1, s.b)
			for j := 0; j < i; j++ {
				rest.AddScaled(1, kxt[j])
			}
			for j := i + 1; j < m; j++ {
				rest.AddScaled(1, kx[j])
			}
			sol, err := blk.Solve(y, rest, opts.Rho)
			if err != nil {
				return nil, fmt.Errorf("admm: iteration %d block %d: %w", iter, i, err)
			}
			xt[i] = sol
			kxt[i] = blk.K().MulVec(sol)
		}
		// Predicted dual: ỹ = y + ρ(Σ K x̃ − b).
		resid := linalg.NewVector(s.l)
		resid.AddScaled(-1, s.b)
		for i := range kxt {
			resid.AddScaled(1, kxt[i])
		}
		yt := y.Clone()
		yt.AddScaled(opts.Rho, resid)

		// --- Gaussian back substitution (backward order). ---
		// Δy = ε(ỹ − y); Δx_m = ε(x̃_m − x_m);
		// Δx_i = ε(x̃_i − x_i) − Σ_{j>i} corr[i][j] Δx_j (i = m−1..2).
		dy := yt.Sub(y)
		dy.Scale(opts.Epsilon)
		dx := make([]linalg.Vector, m)
		for i := m - 1; i >= 1; i-- {
			d := xt[i].Sub(x[i])
			d.Scale(opts.Epsilon)
			for j := i + 1; j < m; j++ {
				if op, ok := s.corr[i][j]; ok {
					d.AddScaled(-1, op.MulVec(dx[j]))
				}
			}
			dx[i] = d
		}

		var change float64
		for i := 1; i < m; i++ {
			x[i] = x[i].Add(dx[i])
			if c := dx[i].NormInf(); c > change {
				change = c
			}
		}
		if c := xt[0].Sub(x[0]).NormInf(); c > change {
			change = c
		}
		x[0] = xt[0]
		y = y.Add(dy)

		for i, blk := range s.blocks {
			kx[i] = blk.K().MulVec(x[i])
		}
		primal := linalg.NewVector(s.l)
		primal.AddScaled(-1, s.b)
		for i := range kx {
			primal.AddScaled(1, kx[i])
		}

		scale := 1 + s.b.NormInf()
		rel := primal.Norm2() / scale
		opts.Probe.ObserveIteration(rel)
		if primal.Norm2() <= opts.Tolerance*scale && change <= opts.Tolerance*scale {
			opts.Probe.ObserveSolve(iter, rel, true, false)
			return s.result(x, y, primal, iter, true), nil
		}
	}
	primal := linalg.NewVector(s.l)
	primal.AddScaled(-1, s.b)
	for i, blk := range s.blocks {
		primal.AddScaled(1, blk.K().MulVec(x[i]))
	}
	res := s.result(x, y, primal, opts.MaxIterations, false)
	opts.Probe.ObserveSolve(opts.MaxIterations, res.Residual/(1+s.b.NormInf()), false, false)
	return res, fmt.Errorf("residual %g after %d iterations: %w", res.Residual, opts.MaxIterations, ErrNotConverged)
}

// Epigraph note: the framework purposefully has no notion of inequality
// rows at the coupling level; following §III-A, general inequalities are
// modeled by the caller with an extra nonnegative slack block.

func (s *Solver) result(x []linalg.Vector, y, primal linalg.Vector, iters int, converged bool) *Result {
	var obj float64
	for i, blk := range s.blocks {
		obj += blk.Objective(x[i])
	}
	out := make([]linalg.Vector, len(x))
	for i := range x {
		out[i] = x[i].Clone()
	}
	return &Result{
		X:          out,
		Y:          y.Clone(),
		Objective:  obj,
		Residual:   primal.Norm2(),
		Iterations: iters,
		Converged:  converged,
	}
}
