package admm

import (
	"math"
	"testing"

	"repro/internal/linalg"
)

// TestScaledRelationMatrices exercises non-identity K_i: the back
// substitution operators (K_iᵀK_i)⁻¹K_iᵀK_j are nontrivial.
func TestScaledRelationMatrices(t *testing.T) {
	// min ½‖x1 − 4‖² + ½‖x2 − 1‖² s.t. 2·x1 + 3·x2 = 12 (scalars).
	// Lagrangian optimum: x1 = 4 + 2t, x2 = 1 + 3t with 2x1+3x2=12
	// → 8+4t+3+9t = 12 → t = 1/13 → x1 = 54/13, x2 = 16/13.
	k1 := linalg.NewMatrix(1, 1)
	k1.Set(0, 0, 2)
	k2 := linalg.NewMatrix(1, 1)
	k2.Set(0, 0, 3)
	b1 := freeScalarBlock(4, k1)
	b2 := freeScalarBlock(1, k2)
	s, err := New([]Block{b1, b2}, linalg.VectorOf(12))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(Options{Rho: 0.5, MaxIterations: 5000, Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0][0]-54.0/13) > 1e-5 || math.Abs(res.X[1][0]-16.0/13) > 1e-5 {
		t.Fatalf("x = (%v, %v), want (%v, %v)", res.X[0][0], res.X[1][0], 54.0/13, 16.0/13)
	}
	// Block objectives omit the constant ½‖target‖² terms:
	// Σ (½x² − t·x) = Σ ½(x−t)² − ½Σt².
	want := 0.5*math.Pow(54.0/13-4, 2) + 0.5*math.Pow(16.0/13-1, 2) - 0.5*(16+1)
	if math.Abs(res.Objective-want) > 1e-4 {
		t.Errorf("objective = %g, want %g", res.Objective, want)
	}
}

func freeScalarBlock(target float64, k *linalg.Matrix) *QuadraticBlock {
	return &QuadraticBlock{
		P:     linalg.Identity(1),
		Q:     linalg.VectorOf(-target),
		Kmat:  k,
		Lower: linalg.Constant(1, math.Inf(-1)),
		Upper: linalg.Constant(1, math.Inf(1)),
		Start: linalg.NewVector(1),
	}
}

// TestThreeBlockScaledKs verifies the Gaussian back substitution with
// three blocks of different K scalings — the full correction path.
func TestThreeBlockScaledKs(t *testing.T) {
	scales := []float64{1, 2, 0.5}
	targets := []float64{3, -1, 2}
	blocks := make([]Block, 3)
	for i := range blocks {
		k := linalg.NewMatrix(1, 1)
		k.Set(0, 0, scales[i])
		blocks[i] = freeScalarBlock(targets[i], k)
	}
	s, err := New(blocks, linalg.VectorOf(5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(Options{Rho: 0.7, Epsilon: 0.9, MaxIterations: 8000, Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	// KKT: x_i = t_i + s_i·y* with Σ s_i x_i = 5 →
	// y* = (5 − Σ s_i t_i) / Σ s_i².
	var st, ss float64
	for i := range scales {
		st += scales[i] * targets[i]
		ss += scales[i] * scales[i]
	}
	y := (5 - st) / ss
	for i := range blocks {
		want := targets[i] + scales[i]*y
		if math.Abs(res.X[i][0]-want) > 1e-5 {
			t.Errorf("x[%d] = %g, want %g", i, res.X[i][0], want)
		}
	}
	if res.Residual > 1e-8 {
		t.Errorf("residual %g", res.Residual)
	}
}
