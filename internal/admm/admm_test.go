package admm

import (
	"errors"
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/qp"
	"repro/internal/telemetry"
)

// freeQuadBlock builds an unconstrained quadratic block ½‖x−target‖².
func freeQuadBlock(target linalg.Vector, k *linalg.Matrix) *QuadraticBlock {
	n := target.Len()
	p := linalg.Identity(n)
	q := target.Clone()
	q.Scale(-1)
	return &QuadraticBlock{
		P:     p,
		Q:     q,
		Kmat:  k,
		Lower: linalg.Constant(n, math.Inf(-1)),
		Upper: linalg.Constant(n, math.Inf(1)),
		Start: linalg.NewVector(n),
	}
}

// Three-block consensus: min Σ ½‖x_i − t_i‖² s.t. x1+x2+x3 = d.
// Analytic optimum: x_i = t_i + (d − Σt_i)/3.
func TestThreeBlockAnalytic(t *testing.T) {
	n := 3
	targets := []linalg.Vector{
		linalg.VectorOf(1, 0, -1),
		linalg.VectorOf(2, 2, 2),
		linalg.VectorOf(0, -1, 3),
	}
	d := linalg.VectorOf(6, 3, 0)
	blocks := make([]Block, 3)
	for i := range blocks {
		blocks[i] = freeQuadBlock(targets[i], linalg.Identity(n))
	}
	s, err := New(blocks, d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(Options{Rho: 1, Epsilon: 1, MaxIterations: 2000, Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	sumT := targets[0].Add(targets[1]).Add(targets[2])
	for i := range blocks {
		for c := 0; c < n; c++ {
			want := targets[i][c] + (d[c]-sumT[c])/3
			if math.Abs(res.X[i][c]-want) > 1e-5 {
				t.Errorf("x[%d][%d] = %g, want %g", i, c, res.X[i][c], want)
			}
		}
	}
	if !res.Converged {
		t.Error("not converged")
	}
	if res.Residual > 1e-6 {
		t.Errorf("residual %g", res.Residual)
	}
}

// Four blocks with bound constraints, verified against a single centralized
// QP over the stacked variables.
func TestFourBlockMatchesCentralizedQP(t *testing.T) {
	n := 2
	targets := []linalg.Vector{
		linalg.VectorOf(3, -2),
		linalg.VectorOf(-1, 4),
		linalg.VectorOf(2, 2),
		linalg.VectorOf(0, 1),
	}
	d := linalg.VectorOf(2, 2)
	blocks := make([]Block, 4)
	for i := range blocks {
		b := freeQuadBlock(targets[i], linalg.Identity(n))
		b.Lower = linalg.NewVector(n) // x_i >= 0
		blocks[i] = b
	}
	s, err := New(blocks, d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(Options{Rho: 1, Epsilon: 0.9, MaxIterations: 5000, Tolerance: 1e-8})
	if err != nil {
		t.Fatal(err)
	}

	// Centralized: stack x = (x1..x4) ∈ R^8, H = I, c = -targets,
	// Aeq = [I I I I], beq = d, x >= 0.
	tot := 4 * n
	h := linalg.Identity(tot)
	c := linalg.NewVector(tot)
	for i := range targets {
		for j := 0; j < n; j++ {
			c[i*n+j] = -targets[i][j]
		}
	}
	aeq := linalg.NewMatrix(n, tot)
	for i := 0; i < 4; i++ {
		for j := 0; j < n; j++ {
			aeq.Set(j, i*n+j, 1)
		}
	}
	start := linalg.NewVector(tot)
	for j := 0; j < n; j++ {
		start[j] = d[j]
	}
	central, err := qp.Solve(&qp.Problem{
		H: h, C: c, Aeq: aeq, Beq: d,
		Lower: linalg.NewVector(tot),
		Upper: linalg.Constant(tot, math.Inf(1)),
		Start: start,
	}, qp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var admmObj float64
	for i := range res.X {
		diff := res.X[i].Sub(targets[i])
		admmObj += 0.5 * diff.Dot(diff)
	}
	var qpObj float64
	for i := 0; i < 4; i++ {
		for j := 0; j < n; j++ {
			dv := central.X[i*n+j] - targets[i][j]
			qpObj += 0.5 * dv * dv
		}
	}
	if math.Abs(admmObj-qpObj) > 1e-4*(1+math.Abs(qpObj)) {
		t.Fatalf("ADM-G obj %g vs centralized %g", admmObj, qpObj)
	}
}

func TestSlackBlockHandlesInequality(t *testing.T) {
	// min ½‖x − 5‖² s.t. x <= 3 (scalar), modeled as x + s = 3, s >= 0.
	xBlock := freeQuadBlock(linalg.VectorOf(5), linalg.Identity(1))
	slack := &QuadraticBlock{
		P:     linalg.NewMatrix(1, 1),
		Q:     linalg.NewVector(1),
		Kmat:  linalg.Identity(1),
		Lower: linalg.NewVector(1),
		Upper: linalg.Constant(1, math.Inf(1)),
		Start: linalg.VectorOf(3),
	}
	s, err := New([]Block{xBlock, slack}, linalg.VectorOf(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(Options{Rho: 1, MaxIterations: 3000, Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0][0]-3) > 1e-5 {
		t.Fatalf("x = %g, want 3", res.X[0][0])
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, linalg.VectorOf(1)); !errors.Is(err, ErrTooFewBlocks) {
		t.Errorf("empty blocks: %v", err)
	}
	// Dimension mismatch between K and b.
	blk := freeQuadBlock(linalg.VectorOf(1, 2), linalg.Identity(2))
	if _, err := New([]Block{blk}, linalg.VectorOf(1)); err == nil {
		t.Error("K/b mismatch accepted")
	}
	// Singular K_2ᵀK_2 violates Theorem 1.
	zeroK := linalg.NewMatrix(2, 2)
	bad := freeQuadBlock(linalg.VectorOf(1, 2), zeroK)
	good := freeQuadBlock(linalg.VectorOf(1, 2), linalg.Identity(2))
	if _, err := New([]Block{good, bad}, linalg.NewVector(2)); err == nil {
		t.Error("singular K_2ᵀK_2 accepted")
	}
}

func TestSolveOptionValidation(t *testing.T) {
	blk := freeQuadBlock(linalg.VectorOf(1), linalg.Identity(1))
	s, err := New([]Block{blk}, linalg.VectorOf(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(Options{Rho: -1}); !errors.Is(err, ErrBadRho) {
		t.Errorf("bad rho: %v", err)
	}
	if _, err := s.Solve(Options{Epsilon: 0.3}); !errors.Is(err, ErrBadEpsilon) {
		t.Errorf("bad epsilon: %v", err)
	}
	if _, err := s.Solve(Options{Epsilon: 1.5}); !errors.Is(err, ErrBadEpsilon) {
		t.Errorf("bad epsilon 1.5: %v", err)
	}
}

func TestNotConvergedReturnsPartialResult(t *testing.T) {
	blocks := []Block{
		freeQuadBlock(linalg.VectorOf(10), linalg.Identity(1)),
		freeQuadBlock(linalg.VectorOf(-10), linalg.Identity(1)),
		freeQuadBlock(linalg.VectorOf(0), linalg.Identity(1)),
	}
	s, err := New(blocks, linalg.VectorOf(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(Options{MaxIterations: 2, Tolerance: 1e-14})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v", err)
	}
	if res == nil || res.Converged {
		t.Fatal("expected a partial, non-converged result")
	}
}

func TestSingleBlockReducesToAugmentedLagrangian(t *testing.T) {
	// min ½‖x − t‖² s.t. x = d → x = d exactly.
	blk := freeQuadBlock(linalg.VectorOf(7, -2), linalg.Identity(2))
	s, err := New([]Block{blk}, linalg.VectorOf(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(Options{Rho: 2, MaxIterations: 2000, Tolerance: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0][0]-1) > 1e-6 || math.Abs(res.X[0][1]-1) > 1e-6 {
		t.Fatalf("x = %v, want (1,1)", res.X[0])
	}
}

// TestProbeObservesGenericSolve: a probe attached via Options must see
// every iteration and the final outcome of the generic ADM-G loop.
func TestProbeObservesGenericSolve(t *testing.T) {
	n := 3
	targets := []linalg.Vector{
		linalg.VectorOf(1, 0, -1),
		linalg.VectorOf(2, 2, 2),
	}
	d := linalg.VectorOf(3, 1, 2)
	blocks := make([]Block, len(targets))
	for i := range blocks {
		blocks[i] = freeQuadBlock(targets[i], linalg.Identity(n))
	}
	s, err := New(blocks, d)
	if err != nil {
		t.Fatal(err)
	}
	probe := telemetry.NewSolverProbe()
	res, err := s.Solve(Options{Rho: 1, MaxIterations: 2000, Tolerance: 1e-9, Probe: probe})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := probe.Iterations(), uint64(res.Iterations); got != want {
		t.Errorf("probe iterations = %d, want %d", got, want)
	}
	if probe.Solves() != 1 || probe.WarmStarts() != 0 {
		t.Errorf("probe solves = %d warm = %d, want 1/0", probe.Solves(), probe.WarmStarts())
	}
}
