package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || m != 2.5 {
		t.Fatalf("mean = %g, %v", m, err)
	}
	sd, err := StdDev([]float64{2, 2, 2})
	if err != nil || sd != 0 {
		t.Fatalf("stddev = %g, %v", sd, err)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty mean: %v", err)
	}
	if _, err := StdDev(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty stddev: %v", err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {50, 30}, {100, 50}, {25, 20},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil || math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%g = %g (%v), want %g", c.p, got, err, c.want)
		}
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("negative percentile accepted")
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty percentile: %v", err)
	}
	one, err := Percentile([]float64{7}, 83)
	if err != nil || one != 7 {
		t.Errorf("singleton percentile = %g, %v", one, err)
	}
}

func TestCDF(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %g", got)
	}
	if got := c.At(2); got != 0.5 {
		t.Errorf("At(2) = %g", got)
	}
	if got := c.At(10); got != 1 {
		t.Errorf("At(10) = %g", got)
	}
	if got := c.Quantile(0.5); got != 2 {
		t.Errorf("Q(0.5) = %g", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Errorf("Q(1) = %g", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Q(0) = %g", got)
	}
	if c.Min() != 1 || c.Max() != 4 {
		t.Errorf("min/max = %g/%g", c.Min(), c.Max())
	}
	vals, probs := c.Points()
	if len(vals) != 4 || probs[3] != 1 {
		t.Errorf("points = %v %v", vals, probs)
	}
	if _, err := NewCDF(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty cdf: %v", err)
	}
}

// Property: CDF is monotone and At(Quantile(q)) >= q.
func TestPropCDFMonotone(t *testing.T) {
	f := func(a, b, c, d float64, qRaw uint8) bool {
		for _, x := range []float64{a, b, c, d} {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		cdf, err := NewCDF([]float64{a, b, c, d})
		if err != nil {
			return false
		}
		q := float64(qRaw%100+1) / 100
		v := cdf.Quantile(q)
		return cdf.At(v) >= q-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
