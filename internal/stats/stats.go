// Package stats provides the small descriptive-statistics helpers used by
// the experiment harness: means, percentiles and empirical CDFs (Fig. 11
// reports the CDF of ADM-G iteration counts).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic of an empty sample is requested.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs))), nil
}

// Percentile returns the p-th percentile (p in [0, 100]) using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of [0, 100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds the empirical CDF of the sample.
func NewCDF(xs []float64) (*CDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}, nil
}

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the smallest sample value v with P(X ≤ v) ≥ q, for
// q in (0, 1].
func (c *CDF) Quantile(q float64) float64 {
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx]
}

// Points returns the CDF's (value, probability) support points, suitable
// for plotting.
func (c *CDF) Points() (values, probs []float64) {
	values = append([]float64(nil), c.sorted...)
	probs = make([]float64, len(values))
	for i := range values {
		probs[i] = float64(i+1) / float64(len(values))
	}
	return values, probs
}

// Min returns the sample minimum.
func (c *CDF) Min() float64 { return c.sorted[0] }

// Max returns the sample maximum.
func (c *CDF) Max() float64 { return c.sorted[len(c.sorted)-1] }
