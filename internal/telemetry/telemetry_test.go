package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}

	var g Gauge
	if g.Load() != 0 {
		t.Fatalf("zero gauge = %g, want 0", g.Load())
	}
	g.Set(1.5)
	g.Add(-0.25)
	if got := g.Load(); got != 1.25 {
		t.Fatalf("gauge = %g, want 1.25", got)
	}
	g.Max(0.5)
	if got := g.Load(); got != 1.25 {
		t.Fatalf("Max lowered the gauge to %g", got)
	}
	g.Max(7)
	if got := g.Load(); got != 7 {
		t.Fatalf("Max did not raise the gauge: %g", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 2.5, 9} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got := h.Sum(); math.Abs(got-13) > 1e-12 {
		t.Fatalf("sum = %g, want 13", got)
	}
	cum := h.snapshotCumulative(nil)
	want := []uint64{2, 2, 3, 4} // le1: {0.5,1}, le2: same, le4: +2.5, +Inf: +9
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative[%d] = %d, want %d (all %v)", i, cum[i], want[i], cum)
		}
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {2, 1}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0, 10, 3)
	if lin[0] != 0 || lin[1] != 10 || lin[2] != 20 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	exp := ExponentialBuckets(1, 2, 4)
	if exp[0] != 1 || exp[3] != 8 {
		t.Fatalf("ExponentialBuckets = %v", exp)
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup_total", "x", L("a", "1"))
	for name, f := range map[string]func(){
		"bad name":       func() { reg.Counter("bad name", "x") },
		"bad label":      func() { reg.Counter("ok_total", "x", L("bad key", "v")) },
		"kind clash":     func() { reg.Gauge("dup_total", "x") },
		"duplicate":      func() { reg.Counter("dup_total", "x", L("a", "1")) },
		"dup no labels":  func() { reg.Gauge("plain", "x"); reg.Gauge("plain", "x") },
		"hist no bounds": func() { reg.Histogram("hist", "x", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// TestRegistryConcurrentScrape hammers every instrument kind from many
// goroutines while scrapes run concurrently, then checks the final
// totals. Run under -race this is the registry's data-race gate.
func TestRegistryConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("conc_ops_total", "ops", L("kind", "inc"))
	gauge := reg.Gauge("conc_level", "level")
	h := reg.Histogram("conc_lat", "latencies", []float64{1, 10, 100})

	const workers, perWorker = 8, 5000
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				gauge.Max(float64(w*perWorker + i))
				h.Observe(float64(i % 200))
			}
		}(w)
	}
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() { // concurrent scraper
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			if err := reg.WritePrometheus(&sb); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
		}
	}()
	writers.Wait()
	close(stop)
	scraper.Wait()

	if c.Load() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Load(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	if gauge.Load() != float64(workers*perWorker-1) {
		t.Fatalf("gauge max = %g, want %d", gauge.Load(), workers*perWorker-1)
	}
}

func TestSolverProbeNilSafe(t *testing.T) {
	var p *SolverProbe
	start := p.StartSpan()
	p.PhaseDone(SolverPhaseLambda, start)
	p.ObserveIteration(0.5)
	p.ObserveSolve(10, 1e-5, true, true)
	if p.Iterations() != 0 || p.Solves() != 0 || p.WarmStarts() != 0 || p.PhaseNanos(SolverPhaseLambda) != 0 {
		t.Fatal("nil probe accumulated state")
	}
}

func TestSolverProbeRecords(t *testing.T) {
	p := NewSolverProbe()
	start := p.StartSpan()
	time.Sleep(time.Millisecond)
	next := p.PhaseDone(SolverPhaseLambda, start)
	if !next.After(start) {
		t.Fatal("PhaseDone did not advance the span start")
	}
	if p.PhaseNanos(SolverPhaseLambda) == 0 {
		t.Fatal("phase time not recorded")
	}
	for i := 0; i < 5; i++ {
		p.ObserveIteration(1e-3)
	}
	p.ObserveSolve(5, 1e-3, true, false)
	p.ObserveSolve(7, 2e-2, false, true)
	if p.Iterations() != 5 || p.Solves() != 2 || p.WarmStarts() != 1 {
		t.Fatalf("probe state: iters %d solves %d warm %d", p.Iterations(), p.Solves(), p.WarmStarts())
	}
	if p.converged.Load() != 1 || p.unconverged.Load() != 1 || p.coldStarts.Load() != 1 {
		t.Fatal("outcome counters wrong")
	}
	if p.lastIterations.Load() != 7 || p.lastResidual.Load() != 2e-2 {
		t.Fatal("last-solve gauges wrong")
	}

	reg := NewRegistry()
	p.Register(reg, L("component", "test"))
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`ufc_solver_solves_total{component="test"} 2`,
		`ufc_solver_iterations_total{component="test"} 5`,
		`ufc_solver_warm_starts_total{component="test"} 1`,
		`ufc_solver_phase_nanoseconds_total{component="test",phase="lambda"}`,
		`ufc_solver_solve_iterations_count{component="test"} 2`,
		`ufc_solver_iteration_residual_bucket{component="test",le="+Inf"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}
