package telemetry

import (
	"runtime"
	"runtime/debug"
)

// RegisterBuildInfo registers the conventional `ufc_build_info` gauge: a
// constant-1 series whose labels identify the exporting binary, read from
// the build info the Go linker embeds. component names the binary
// ("ufcsim", "ufchub", ...), since all four servers share metric names.
func RegisterBuildInfo(reg *Registry, component string) {
	version := "(devel)"
	goVersion := runtime.Version()
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		if bi.GoVersion != "" {
			goVersion = bi.GoVersion
		}
	}
	registerBuildInfo(reg, component, version, goVersion)
}

// registerBuildInfo is the deterministic core of RegisterBuildInfo,
// split out so the exposition golden test can pin exact bytes.
func registerBuildInfo(reg *Registry, component, version, goVersion string) {
	reg.Gauge("ufc_build_info",
		"build metadata of the exporting binary; the value is always 1",
		L("component", component), L("version", version), L("goversion", goVersion),
	).Set(1)
}
