package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), families sorted by name. It is a
// cold path: scrapes may allocate freely.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var cum []uint64
	for _, fam := range r.sortedFamilies() {
		if fam.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", fam.name, fam.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam.name, fam.kind)
		for _, s := range fam.series {
			switch fam.kind {
			case kindCounter:
				writeSample(bw, fam.name, "", s.labels, "", strconv.FormatUint(s.c.Load(), 10))
			case kindGauge:
				writeSample(bw, fam.name, "", s.labels, "", formatFloat(s.g.Load()))
			case kindHistogram:
				cum = s.h.snapshotCumulative(cum)
				sum := s.h.Sum()
				for i, bound := range s.h.bounds {
					writeSample(bw, fam.name, "_bucket", s.labels,
						`le="`+formatFloat(bound)+`"`, strconv.FormatUint(cum[i], 10))
				}
				total := cum[len(cum)-1]
				writeSample(bw, fam.name, "_bucket", s.labels, `le="+Inf"`, strconv.FormatUint(total, 10))
				writeSample(bw, fam.name, "_sum", s.labels, "", formatFloat(sum))
				writeSample(bw, fam.name, "_count", s.labels, "", strconv.FormatUint(total, 10))
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one `name_suffix{labels,extra} value` line.
func writeSample(w io.Writer, name, suffix, labels, extra, value string) {
	lab := labels
	if extra != "" {
		if lab != "" {
			lab += ","
		}
		lab += extra
	}
	if lab != "" {
		fmt.Fprintf(w, "%s%s{%s} %s\n", name, suffix, lab, value)
	} else {
		fmt.Fprintf(w, "%s%s %s\n", name, suffix, value)
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in the Prometheus
// text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// The response is already partially written; all we can do is
			// drop the connection, which WritePrometheus's error implies.
			return
		}
	})
}

// A Server exposes a registry at /metrics plus the standard net/http/pprof
// endpoints under /debug/pprof/ on its own listener, so profiling a live
// ufcnode/ufchub/ufcsim never shares a mux with application traffic.
// Every server also answers /healthz (liveness: 200 once the listener is
// up) and /readyz (readiness: gated by ServerOptions.Ready).
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// ServerOptions extends the metrics server with operational endpoints.
// The zero value reproduces StartServer's behavior plus always-ready
// health endpoints.
type ServerOptions struct {
	// Trace, when non-nil, is mounted at /debug/ufc/trace — by convention
	// the tracing registry's span-dump handler.
	Trace http.Handler
	// Ready gates /readyz: nil means ready as soon as the server is up;
	// otherwise /readyz returns 200 iff Ready() is true, 503 otherwise.
	// Serving hubs pass "has a snapshot been published yet".
	Ready func() bool
}

// StartServer listens on addr (e.g. "127.0.0.1:0") and serves metrics and
// pprof in a background goroutine until Close.
func StartServer(addr string, reg *Registry) (*Server, error) {
	return StartServerOpts(addr, reg, ServerOptions{})
}

// StartServerOpts is StartServer with operational endpoints; see
// ServerOptions.
func StartServerOpts(addr string, reg *Registry, opts ServerOptions) (*Server, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	ready := opts.Ready
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready != nil && !ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "not ready")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	if opts.Trace != nil {
		mux.Handle("/debug/ufc/trace", opts.Trace)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: metrics listen: %w", err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}}
	//ufc:leak released by Server.Close → http.Server.Close, which makes Serve return
	go func() {
		// Serve returns http.ErrServerClosed (or the listener error) on
		// Close; either way the server is done and the error is expected.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }
