package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// A Label is one key="value" pair attached to a metric series. Labels are
// formatted once at registration time; they never appear on a hot path.
type Label struct {
	Key, Value string
}

// L is shorthand for Label{Key: k, Value: v}.
func L(k, v string) Label { return Label{Key: k, Value: v} }

type metricKind uint8

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// series is one registered instrument: a preformatted label string plus
// exactly one of the instrument pointers.
type series struct {
	labels string // `k="v",k2="v2"` without braces, "" for unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all series sharing a metric name (same kind, same help).
type family struct {
	name, help string
	kind       metricKind
	series     []series
}

// A Registry is a named collection of instruments for exposition. All
// registration happens at setup time under a lock; scraping takes the
// same lock but the instruments themselves are updated lock-free, so a
// scrape never stalls a hot path.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Counter creates, registers and returns a new counter series.
// It panics on an invalid name, a kind clash or a duplicate series —
// registration is setup-time code and misuse is a programmer error.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.RegisterCounter(name, help, c, labels...)
	return c
}

// RegisterCounter attaches an existing counter (e.g. one embedded in a
// transport's counter block) to the registry.
func (r *Registry) RegisterCounter(name, help string, c *Counter, labels ...Label) {
	r.add(name, help, kindCounter, series{labels: formatLabels(labels), c: c})
}

// Gauge creates, registers and returns a new gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.RegisterGauge(name, help, g, labels...)
	return g
}

// RegisterGauge attaches an existing gauge to the registry.
func (r *Registry) RegisterGauge(name, help string, g *Gauge, labels ...Label) {
	r.add(name, help, kindGauge, series{labels: formatLabels(labels), g: g})
}

// Histogram creates, registers and returns a new fixed-bucket histogram
// series over the given strictly increasing upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	h := NewHistogram(bounds)
	r.RegisterHistogram(name, help, h, labels...)
	return h
}

// RegisterHistogram attaches an existing histogram to the registry.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) {
	r.add(name, help, kindHistogram, series{labels: formatLabels(labels), h: h})
}

func (r *Registry) add(name, help string, kind metricKind, s series) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.byName[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: kind}
		r.byName[name] = fam
		r.families = append(r.families, fam)
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, fam.kind, kind))
	}
	for _, prev := range fam.series {
		if prev.labels == s.labels {
			panic(fmt.Sprintf("telemetry: duplicate series %s{%s}", name, s.labels))
		}
	}
	fam.series = append(fam.series, s)
}

// sortedFamilies returns the families ordered by name, so exposition is
// deterministic regardless of registration order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, len(r.families))
	copy(out, r.families)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// validMetricName implements the Prometheus data-model name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, ch := range name {
		alpha := ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z' || ch == '_' || ch == ':'
		if !alpha && (i == 0 || ch < '0' || ch > '9') {
			return false
		}
	}
	return true
}

// validLabelKey implements the label-name grammar [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelKey(key string) bool {
	if key == "" {
		return false
	}
	for i, ch := range key {
		alpha := ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z' || ch == '_'
		if !alpha && (i == 0 || ch < '0' || ch > '9') {
			return false
		}
	}
	return true
}

// formatLabels renders labels as `k="v",k2="v2"` (no braces), with values
// escaped per the exposition format. Label order follows the caller.
func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, l := range labels {
		if !validLabelKey(l.Key) {
			panic(fmt.Sprintf("telemetry: invalid label key %q", l.Key))
		}
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		escapeLabelValue(&sb, l.Value)
		sb.WriteByte('"')
	}
	return sb.String()
}

// escapeLabelValue escapes backslash, double quote and newline, per the
// Prometheus text exposition format.
func escapeLabelValue(sb *strings.Builder, v string) {
	for _, ch := range v {
		switch ch {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(ch)
		}
	}
}
