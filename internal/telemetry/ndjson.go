package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
)

// NDJSONEmitter streams records as newline-delimited JSON — the offline
// companion to the /metrics endpoint. The week runner uses it to emit one
// record per hourly slot (UFC, energy/carbon breakdown, per-datacenter
// power split, iterations-to-converge) for plotting the paper's Figs.
// 5–9 without re-running the solver. Not safe for concurrent use.
type NDJSONEmitter struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewNDJSONEmitter wraps w in a buffered NDJSON encoder.
func NewNDJSONEmitter(w io.Writer) *NDJSONEmitter {
	bw := bufio.NewWriter(w)
	return &NDJSONEmitter{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit writes one record followed by a newline.
func (e *NDJSONEmitter) Emit(v any) error { return e.enc.Encode(v) }

// Flush pushes buffered records to the underlying writer. Call it after
// the final Emit (or per record when tailing the stream live).
func (e *NDJSONEmitter) Flush() error { return e.bw.Flush() }
