// Package telemetry is the repo's zero-allocation observability layer: a
// registry of pre-registered atomic instruments (counters, gauges,
// fixed-bucket histograms), a phase/span probe for the ADM-G solver loop,
// a Prometheus-text-format + pprof HTTP exposition server, and an NDJSON
// stream emitter for per-slot week-runner records.
//
// Design rules (enforced by benchmark and by the ufclint hotalloc gate):
//
//   - Instrument handles are resolved once at setup time. A hot-path
//     update is a single atomic operation on a handle the caller already
//     holds — no map lookups, no label formatting, no interface boxing.
//   - Instruments are usable standalone (their zero value is ready) so
//     subsystems like the distsim transport can count unconditionally and
//     attach their counters to a Registry only when a caller wants
//     exposition.
//   - The package is standard library only and must not import any solver
//     package (internal/core and internal/admm import it).
package telemetry

import (
	"math"
	"sync/atomic"
)

// A Counter is a monotonically increasing uint64. The zero value is ready
// to use; updates are lock-free and safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1 to the counter.
//
//ufc:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
//
//ufc:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// A Gauge is an instantaneous float64 value. The zero value reads 0;
// updates are lock-free and safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
//
//ufc:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge (CAS loop; intended for low-frequency updates).
//
//ufc:hotpath
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Max raises the gauge to v if v exceeds the current value.
//
//ufc:hotpath
func (g *Gauge) Max(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v || g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// A Histogram counts observations into fixed buckets chosen at
// construction. Buckets follow the Prometheus convention: bucket i counts
// observations v with v ≤ bounds[i] (cumulated at exposition time), plus
// an implicit +Inf bucket. Observe is a bounded scan over the bucket
// bounds plus two atomic ops — no allocation, safe for concurrent use.
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// NewHistogram builds a histogram over the given strictly increasing
// upper bounds. It panics on unsorted or empty bounds — histograms are
// constructed once at setup time, so misconfiguration is a programmer
// error.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	for i := 1; i < len(own); i++ {
		if own[i] <= own[i-1] {
			panic("telemetry: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{bounds: own, buckets: make([]atomic.Uint64, len(own)+1)}
}

// Observe records one value.
//
//ufc:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the histogram's upper bucket bounds (not including +Inf).
// The returned slice must not be mutated.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// snapshotCumulative writes the cumulative bucket counts (len(bounds)+1
// entries, the last being the all-observations total) into dst and returns
// it. The per-bucket reads are individually atomic; the scrape is a
// monotone approximation under concurrent writes, like any Prometheus
// collector.
func (h *Histogram) snapshotCumulative(dst []uint64) []uint64 {
	dst = dst[:0]
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		dst = append(dst, cum)
	}
	return dst
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n bounds start, start·factor, start·factor², ...
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
