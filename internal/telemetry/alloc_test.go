package telemetry

import (
	"testing"
	"time"
)

// TestInstrumentsZeroAlloc is the allocation gate for every hot-path
// update: counter/gauge/histogram writes and the solver probe's record
// methods must never touch the heap.
func TestInstrumentsZeroAlloc(t *testing.T) {
	var c Counter
	var g Gauge
	h := NewHistogram(ExponentialBuckets(1e-9, 10, 11))
	p := NewSolverProbe()
	start := p.StartSpan()

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(1.5) }},
		{"Gauge.Add", func() { g.Add(0.5) }},
		{"Gauge.Max", func() { g.Max(2) }},
		{"Histogram.Observe", func() { h.Observe(1e-4) }},
		{"Probe.PhaseDone", func() { start = p.PhaseDone(SolverPhaseLambda, start) }},
		{"Probe.ObserveIteration", func() { p.ObserveIteration(1e-4) }},
		{"Probe.ObserveSolve", func() { p.ObserveSolve(12, 1e-4, true, true) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(500, tc.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f objects/op, want 0", tc.name, allocs)
		}
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(ExponentialBuckets(1e-9, 10, 11))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(2.5e-4)
	}
}

func BenchmarkSolverProbePhase(b *testing.B) {
	p := NewSolverProbe()
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		start = p.PhaseDone(SolverPhase(i%3), start)
		p.ObserveIteration(1e-4)
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	reg := NewRegistry()
	p := NewSolverProbe()
	p.Register(reg)
	for i := 0; i < 100; i++ {
		p.ObserveIteration(1e-4)
	}
	p.ObserveSolve(100, 1e-4, true, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg.WritePrometheus(discard{})
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
