package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exact exposition bytes: families
// sorted by name, HELP/TYPE headers, label merging, cumulative histogram
// buckets with the +Inf bucket, and minimal float formatting.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	ops0 := reg.Counter("test_ops_total", "operations", L("shard", "0"))
	ops1 := reg.Counter("test_ops_total", "operations", L("shard", "1"))
	lvl := reg.Gauge("test_gauge", "current level")
	h := reg.Histogram("test_hist", "latencies", []float64{1, 2, 4}, L("path", `a"b\c`))

	ops0.Add(42)
	ops1.Add(7)
	lvl.Set(1.5)
	for _, v := range []float64{0.5, 3, 9} {
		h.Observe(v)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP test_gauge current level`,
		`# TYPE test_gauge gauge`,
		`test_gauge 1.5`,
		`# HELP test_hist latencies`,
		`# TYPE test_hist histogram`,
		`test_hist_bucket{path="a\"b\\c",le="1"} 1`,
		`test_hist_bucket{path="a\"b\\c",le="2"} 1`,
		`test_hist_bucket{path="a\"b\\c",le="4"} 2`,
		`test_hist_bucket{path="a\"b\\c",le="+Inf"} 3`,
		`test_hist_sum{path="a\"b\\c"} 12.5`,
		`test_hist_count{path="a\"b\\c"} 3`,
		`# HELP test_ops_total operations`,
		`# TYPE test_ops_total counter`,
		`test_ops_total{shard="0"} 42`,
		`test_ops_total{shard="1"} 7`,
	}, "\n") + "\n"
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestServerServesMetricsAndPprof starts the exposition server on an
// ephemeral port and scrapes /metrics and the pprof index over real HTTP.
func TestServerServesMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("srv_probe_total", "probe").Add(3)
	srv, err := StartServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	body := httpGet(t, fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if !strings.Contains(body, "srv_probe_total 3") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if pp := httpGet(t, fmt.Sprintf("http://%s/debug/pprof/", srv.Addr())); !strings.Contains(pp, "goroutine") {
		t.Errorf("pprof index unexpected:\n%.200s", pp)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
