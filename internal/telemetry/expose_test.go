package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/telemetry/tracing"
)

// TestWritePrometheusGolden pins the exact exposition bytes: families
// sorted by name, HELP/TYPE headers, label merging, cumulative histogram
// buckets with the +Inf bucket, and minimal float formatting.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	ops0 := reg.Counter("test_ops_total", "operations", L("shard", "0"))
	ops1 := reg.Counter("test_ops_total", "operations", L("shard", "1"))
	lvl := reg.Gauge("test_gauge", "current level")
	h := reg.Histogram("test_hist", "latencies", []float64{1, 2, 4}, L("path", `a"b\c`))

	ops0.Add(42)
	ops1.Add(7)
	lvl.Set(1.5)
	for _, v := range []float64{0.5, 3, 9} {
		h.Observe(v)
	}
	registerBuildInfo(reg, "ufctest", "v1.2.3", "go1.99.0")

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP test_gauge current level`,
		`# TYPE test_gauge gauge`,
		`test_gauge 1.5`,
		`# HELP test_hist latencies`,
		`# TYPE test_hist histogram`,
		`test_hist_bucket{path="a\"b\\c",le="1"} 1`,
		`test_hist_bucket{path="a\"b\\c",le="2"} 1`,
		`test_hist_bucket{path="a\"b\\c",le="4"} 2`,
		`test_hist_bucket{path="a\"b\\c",le="+Inf"} 3`,
		`test_hist_sum{path="a\"b\\c"} 12.5`,
		`test_hist_count{path="a\"b\\c"} 3`,
		`# HELP test_ops_total operations`,
		`# TYPE test_ops_total counter`,
		`test_ops_total{shard="0"} 42`,
		`test_ops_total{shard="1"} 7`,
		`# HELP ufc_build_info build metadata of the exporting binary; the value is always 1`,
		`# TYPE ufc_build_info gauge`,
		`ufc_build_info{component="ufctest",version="v1.2.3",goversion="go1.99.0"} 1`,
	}, "\n") + "\n"
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestServerServesMetricsAndPprof starts the exposition server on an
// ephemeral port and scrapes /metrics and the pprof index over real HTTP.
func TestServerServesMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("srv_probe_total", "probe").Add(3)
	srv, err := StartServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	body := httpGet(t, fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if !strings.Contains(body, "srv_probe_total 3") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if pp := httpGet(t, fmt.Sprintf("http://%s/debug/pprof/", srv.Addr())); !strings.Contains(pp, "goroutine") {
		t.Errorf("pprof index unexpected:\n%.200s", pp)
	}
}

// TestServerHealthEndpoints covers /healthz (always live) and /readyz
// (gated by ServerOptions.Ready), plus mounting a trace handler.
func TestServerHealthEndpoints(t *testing.T) {
	reg := NewRegistry()
	var ready atomic.Bool
	srv, err := StartServerOpts("127.0.0.1:0", reg, ServerOptions{
		Ready: ready.Load,
		Trace: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprint(w, "trace-dump")
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	if body := httpGet(t, fmt.Sprintf("http://%s/healthz", srv.Addr())); body != "ok\n" {
		t.Errorf("/healthz = %q", body)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/readyz", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz before ready: %s", resp.Status)
	}
	ready.Store(true)
	if body := httpGet(t, fmt.Sprintf("http://%s/readyz", srv.Addr())); body != "ready\n" {
		t.Errorf("/readyz after ready = %q", body)
	}
	if body := httpGet(t, fmt.Sprintf("http://%s/debug/ufc/trace", srv.Addr())); body != "trace-dump" {
		t.Errorf("/debug/ufc/trace = %q", body)
	}

	// Default options: readyz is immediately 200, no trace route.
	srv2, err := StartServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv2.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if body := httpGet(t, fmt.Sprintf("http://%s/readyz", srv2.Addr())); body != "ready\n" {
		t.Errorf("default /readyz = %q", body)
	}
	resp, err = http.Get(fmt.Sprintf("http://%s/debug/ufc/trace", srv2.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unmounted trace route: %s", resp.Status)
	}
}

// TestBuildInfoGauge checks the public registration path reads the
// embedded build info without panicking and exports a constant-1 gauge.
func TestBuildInfoGauge(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg, "ufctest")
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `ufc_build_info{component="ufctest",`) ||
		!strings.Contains(out, `goversion="go`) {
		t.Errorf("build info exposition:\n%s", out)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestScrapeStorm hammers the exposition server from both sides under the
// race detector: writer goroutines storm counters, a histogram and the
// tracing ring while reader goroutines scrape /metrics, the health probes
// and /debug/ufc/trace over real HTTP. Any unsynchronized access in the
// instruments, the exposition path or the span ring surfaces here.
func TestScrapeStorm(t *testing.T) {
	reg := NewRegistry()
	ops := reg.Counter("storm_ops_total", "storm")
	lvl := reg.Gauge("storm_level", "storm")
	hist := reg.Histogram("storm_latency_seconds", "storm", ExponentialBuckets(1e-6, 10, 6))
	traceReg := tracing.NewRegistry()
	rec := traceReg.Recorder(tracing.Config{Component: "storm", IDs: tracing.NewIDSource(1), SampleEvery: 1, RingSize: 64})
	srv, err := StartServerOpts("127.0.0.1:0", reg, ServerOptions{Trace: traceReg.Handler()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	const writers, scrapers, rounds = 4, 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				ops.Add(1)
				lvl.Set(float64(i))
				hist.Observe(float64(i) * 1e-6)
				sp := rec.Root("storm.op")
				sp.Attr("writer", int64(w))
				sp.End()
				rec.Event(sp.Context(), "storm.event", tracing.I64("i", int64(i)), tracing.Attr{})
			}
		}(w)
	}
	for s := 0; s < scrapers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds/10; i++ {
				for _, path := range []string{"/metrics", "/healthz", "/readyz", "/debug/ufc/trace"} {
					resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
					if err != nil {
						t.Errorf("GET %s: %v", path, err)
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body) //ufc:discard storm reader only exercises the handler
					_ = resp.Body.Close()                 //ufc:discard same
				}
			}
		}()
	}
	wg.Wait()

	if got := ops.Load(); got != writers*rounds {
		t.Errorf("storm_ops_total = %v, want %d", got, writers*rounds)
	}
	if rec.Recorded() == 0 {
		t.Error("no spans recorded during the storm")
	}
}
