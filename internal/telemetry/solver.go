package telemetry

import "time"

// SolverPhase names one block of the ADM-G iteration for phase timing.
type SolverPhase uint8

// The per-iteration phases of the distributed 4-block ADM-G loop: the
// per-front-end λ-minimization fan-out, the per-datacenter μ/ν/a-step
// fan-out, and the fused dual-update + Gaussian back-substitution pass.
const (
	SolverPhaseLambda SolverPhase = iota
	SolverPhaseDatacenter
	SolverPhaseCorrection
	numSolverPhases
)

// solverPhaseNames are the `phase` label values, indexed by SolverPhase.
var solverPhaseNames = [numSolverPhases]string{"lambda", "datacenter", "correction"}

// SolverProbe is the phase/span recorder for ADM-G solves. One probe
// aggregates any number of solves (a whole week run, a daemon's lifetime):
// per-block wall time, per-iteration residuals, iterations-to-converge,
// warm-start hits and convergence outcomes. All record methods are safe
// for nil receivers (a nil probe is "telemetry off"), allocation-free and
// safe for concurrent use — though phase timings assume the usual one
// -solve-at-a-time engine contract.
type SolverProbe struct {
	solves      Counter // completed solves (converged or not)
	converged   Counter
	unconverged Counter
	warmStarts  Counter // solves seeded from a nonzero iterate
	coldStarts  Counter
	iterations  Counter // total ADM-G iterations across all solves

	phaseNanos [numSolverPhases]Counter // cumulative wall time per block

	iterHist     *Histogram // iterations-to-converge per solve
	residualHist *Histogram // per-iteration combined relative residual

	lastIterations Gauge
	lastResidual   Gauge
}

// NewSolverProbe returns a probe with the default bucket layout:
// iteration counts on a doubling scale to 4096 and residuals on a decade
// scale from 1e-9 to 10 (the solver's default tolerance is 2.5e-4).
func NewSolverProbe() *SolverProbe {
	return &SolverProbe{
		iterHist:     NewHistogram(ExponentialBuckets(4, 2, 11)),
		residualHist: NewHistogram(ExponentialBuckets(1e-9, 10, 11)),
	}
}

// Register attaches the probe's instruments to reg under the ufc_solver_*
// names, tagging every series with the given labels.
func (p *SolverProbe) Register(reg *Registry, labels ...Label) {
	reg.RegisterCounter("ufc_solver_solves_total", "completed ADM-G solves", &p.solves, labels...)
	reg.RegisterCounter("ufc_solver_converged_total", "solves that reached the residual tolerance", &p.converged, labels...)
	reg.RegisterCounter("ufc_solver_unconverged_total", "solves that exhausted the iteration budget", &p.unconverged, labels...)
	reg.RegisterCounter("ufc_solver_warm_starts_total", "solves seeded from a previous slot's iterate", &p.warmStarts, labels...)
	reg.RegisterCounter("ufc_solver_cold_starts_total", "solves started from the zero state", &p.coldStarts, labels...)
	reg.RegisterCounter("ufc_solver_iterations_total", "ADM-G iterations across all solves", &p.iterations, labels...)
	for ph := SolverPhase(0); ph < numSolverPhases; ph++ {
		phl := append(append([]Label{}, labels...), L("phase", solverPhaseNames[ph]))
		reg.RegisterCounter("ufc_solver_phase_nanoseconds_total",
			"cumulative wall time per ADM-G block", &p.phaseNanos[ph], phl...)
	}
	reg.RegisterHistogram("ufc_solver_solve_iterations", "iterations to converge per solve", p.iterHist, labels...)
	reg.RegisterHistogram("ufc_solver_iteration_residual", "combined relative residual after each iteration", p.residualHist, labels...)
	reg.RegisterGauge("ufc_solver_last_iterations", "iteration count of the most recent solve", &p.lastIterations, labels...)
	reg.RegisterGauge("ufc_solver_last_residual", "final residual of the most recent solve", &p.lastResidual, labels...)
}

// StartSpan returns the wall-clock start of a phase span. It lives here —
// not at the call site — so determinism-critical packages never read the
// clock themselves: a nil probe yields the zero time, and the value only
// ever flows back into PhaseDone.
func (p *SolverProbe) StartSpan() time.Time {
	if p == nil {
		return time.Time{}
	}
	return time.Now()
}

// PhaseDone attributes the span since start to phase ph and returns the
// new span start, so consecutive phases chain without re-reading the
// clock twice per boundary. Nil-safe.
//
//ufc:hotpath
func (p *SolverProbe) PhaseDone(ph SolverPhase, start time.Time) time.Time {
	if p == nil {
		return start
	}
	now := time.Now()
	d := now.Sub(start)
	if d > 0 {
		p.phaseNanos[ph].Add(uint64(d))
	}
	return now
}

// ObserveIteration records one completed ADM-G iteration and its combined
// relative residual. Nil-safe.
//
//ufc:hotpath
func (p *SolverProbe) ObserveIteration(residual float64) {
	if p == nil {
		return
	}
	p.iterations.Inc()
	p.residualHist.Observe(residual)
}

// ObserveSolve records a finished solve: its iteration count, final
// residual, convergence outcome and whether it was warm-started. Nil-safe.
func (p *SolverProbe) ObserveSolve(iterations int, finalResidual float64, converged, warm bool) {
	if p == nil {
		return
	}
	p.solves.Inc()
	if converged {
		p.converged.Inc()
	} else {
		p.unconverged.Inc()
	}
	if warm {
		p.warmStarts.Inc()
	} else {
		p.coldStarts.Inc()
	}
	p.iterHist.Observe(float64(iterations))
	p.lastIterations.Set(float64(iterations))
	p.lastResidual.Set(finalResidual)
}

// Iterations returns the total ADM-G iterations recorded so far (0 for a
// nil probe).
func (p *SolverProbe) Iterations() uint64 {
	if p == nil {
		return 0
	}
	return p.iterations.Load()
}

// Solves returns the total solves recorded so far (0 for a nil probe).
func (p *SolverProbe) Solves() uint64 {
	if p == nil {
		return 0
	}
	return p.solves.Load()
}

// PhaseNanos returns the cumulative wall time attributed to ph in
// nanoseconds (0 for a nil probe).
func (p *SolverProbe) PhaseNanos(ph SolverPhase) uint64 {
	if p == nil || ph >= numSolverPhases {
		return 0
	}
	return p.phaseNanos[ph].Load()
}

// WarmStarts returns the warm-started solve count (0 for a nil probe).
func (p *SolverProbe) WarmStarts() uint64 {
	if p == nil {
		return 0
	}
	return p.warmStarts.Load()
}
