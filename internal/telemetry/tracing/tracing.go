// Package tracing is the repo's zero-allocation distributed tracing core
// and flight recorder. Each component (load generator, hub, node,
// protocol agents, control-plane pipeline) owns a Recorder: a
// preallocated ring of fixed-size span slots written lock-free on the hot
// path and snapshotted cold for the /debug/ufc/trace endpoint and for
// bounded NDJSON flight dumps on fault triggers.
//
// Design rules (enforced by AllocsPerRun gates and the ufclint hotalloc
// analyzer, exactly like the telemetry registry):
//
//   - Recording a span or event is a bounded number of atomic operations
//     plus a fixed-size slot write under an uncontended per-slot latch —
//     no allocation, no map lookups, no shared lock. Span values live on
//     the caller's stack.
//   - Trace and span IDs are deterministic: a splitmix64 stream over a
//     seeded counter, so two runs with the same seed emit the same IDs
//     and a replayed chaos run can be diffed trace-by-trace.
//   - Head sampling is deterministic too: the Nth root span of a recorder
//     is sampled purely by its counter value, never by RNG or clock.
//   - All clock reads are confined to this package (like the solver
//     probe's StartSpan), so determinism-critical packages (distsim,
//     core, ...) never read the wall clock themselves; timestamps are
//     observability-only and never feed computation.
//
// The package is standard library only (plus the parent telemetry package
// for NDJSON emission) and must not import any solver package.
package tracing

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one causal trace across components and processes.
// The zero value means "not traced" everywhere.
type TraceID uint64

// SpanID identifies one span within a trace. Zero means "no parent".
type SpanID uint64

// String renders the ID as fixed-width hex (the exemplar format ufcload
// prints and the ?trace= query parameter accepts).
func (t TraceID) String() string { return hex16(uint64(t)) }

// String renders the ID as fixed-width hex.
func (s SpanID) String() string { return hex16(uint64(s)) }

func hex16(v uint64) string {
	var b [16]byte
	const digits = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// ParseID parses a 1..16-digit hex trace/span ID.
func ParseID(s string) (uint64, error) {
	return strconv.ParseUint(s, 16, 64)
}

// Context is the trace context that crosses component and process
// boundaries: the trace plus the sender's span (the receiver's parent).
// On the wire it is the 16-byte little-endian suffix carried behind the
// traced frame flag (see internal/distsim's wire format docs). The zero
// Context means "not traced" and is never placed on the wire.
type Context struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context carries a live trace.
func (c Context) Valid() bool { return c.Trace != 0 }

// IDSource is a deterministic ID generator: a splitmix64 stream seeded
// once and advanced by an atomic counter. Safe for concurrent use.
type IDSource struct {
	seed uint64
	ctr  atomic.Uint64
}

// NewIDSource returns a source whose ID stream is a pure function of
// seed and draw index.
func NewIDSource(seed int64) *IDSource {
	return &IDSource{seed: splitmix64(uint64(seed) ^ 0x9e3779b97f4a7c15)}
}

// next returns the n-th element of the seeded splitmix64 stream.
//
//ufc:hotpath
func (s *IDSource) next() uint64 {
	n := s.ctr.Add(1)
	v := splitmix64(s.seed + n*0x9e3779b97f4a7c15)
	if v == 0 {
		v = 1 // zero is the "untraced" sentinel; never emit it
	}
	return v
}

// splitmix64 is the finalizer of the splitmix64 PRNG: a bijective mixer,
// so distinct counter values never collide.
func splitmix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// An Attr is one integer-valued span attribute. Keys should be constant
// strings so attaching one allocates nothing.
type Attr struct {
	Key string
	Val int64
}

// I64 is shorthand for Attr{Key: k, Val: v}.
func I64(k string, v int64) Attr { return Attr{Key: k, Val: v} }

// maxAttrs is the fixed per-slot attribute capacity; extra attributes are
// dropped (the flight recorder trades completeness for zero allocation).
const maxAttrs = 6

// slot is one fixed-size span record in the ring. Slot claim is
// lock-free (one atomic cursor add); the write itself happens under a
// per-slot mutex so a concurrent cold snapshot copies stable data —
// uncontended in steady state (readers only appear when a human scrapes
// /debug/ufc/trace or a flight dump fires), and race-detector-clean,
// unlike a seqlock.
type slot struct {
	mu      sync.Mutex
	written bool
	trace   TraceID
	span    SpanID
	parent  SpanID
	name    string
	start   int64 // unix nanos
	end     int64 // unix nanos; == start for point events
	nattrs  int32
	attrs   [maxAttrs]Attr
}

// Config parameterizes a Recorder.
type Config struct {
	// Component tags every span this recorder emits (e.g. "hub",
	// "loadgen", "controlplane").
	Component string
	// RingSize is the span slot count, rounded up to a power of two
	// (default 1024). The ring keeps the most recent RingSize spans.
	RingSize int
	// IDs is the deterministic ID stream; recorders that participate in
	// one process share a source so IDs never collide. Nil gets a fresh
	// seed-1 source.
	IDs *IDSource
	// SampleEvery head-samples root spans: the k-th root is sampled iff
	// k ≡ 1 (mod SampleEvery). 1 samples every root, 0 disables root
	// sampling entirely (the recorder still records spans and events for
	// contexts propagated from elsewhere).
	SampleEvery uint64
}

// A Recorder is one component's flight recorder: a preallocated ring of
// span slots. All recording methods are nil-safe (a nil recorder is
// "tracing off"), allocation-free and safe for concurrent use.
type Recorder struct {
	component   string
	ring        []slot
	mask        uint64
	cursor      atomic.Uint64
	ids         *IDSource
	sampleEvery uint64
	roots       atomic.Uint64
}

// NewRecorder builds a recorder; see Config for the knobs.
func NewRecorder(cfg Config) *Recorder {
	size := cfg.RingSize
	if size <= 0 {
		size = 1024
	}
	// Round up to a power of two so slot claim is a mask, not a modulo.
	pow := 1
	for pow < size {
		pow <<= 1
	}
	ids := cfg.IDs
	if ids == nil {
		ids = NewIDSource(1)
	}
	return &Recorder{
		component:   cfg.Component,
		ring:        make([]slot, pow),
		mask:        uint64(pow - 1),
		ids:         ids,
		sampleEvery: cfg.SampleEvery,
	}
}

// Component returns the recorder's component tag ("" for nil).
func (r *Recorder) Component() string {
	if r == nil {
		return ""
	}
	return r.component
}

// Len returns the ring capacity in span slots (0 for nil).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.ring)
}

// Recorded returns the total spans recorded since construction, including
// those the ring has since overwritten.
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.cursor.Load()
}

// A Span is an in-flight span handle. It is a plain value on the caller's
// stack; nothing is written to the ring until End. The zero Span (and any
// span from a nil or unsampled recorder) is inert: attributes and End are
// no-ops.
type Span struct {
	rec    *Recorder
	trace  TraceID
	span   SpanID
	parent SpanID
	name   string
	start  int64
	nattrs int32
	attrs  [maxAttrs]Attr
}

// Root starts a new root span, applying deterministic head sampling: the
// k-th root of the recorder is live iff k ≡ 1 (mod SampleEvery). The
// clock is read here, never at call sites. Nil-safe.
func (r *Recorder) Root(name string) Span {
	if r == nil || r.sampleEvery == 0 {
		return Span{}
	}
	if k := r.roots.Add(1); (k-1)%r.sampleEvery != 0 {
		return Span{}
	}
	return Span{
		rec:   r,
		trace: TraceID(r.ids.next()),
		span:  SpanID(r.ids.next()),
		name:  name,
		start: time.Now().UnixNano(),
	}
}

// Start begins a child span under the given propagated context. An
// invalid (zero) context yields an inert span, so untraced traffic costs
// two branches. Nil-safe.
//
//ufc:hotpath
func (r *Recorder) Start(tc Context, name string) Span {
	if r == nil || !tc.Valid() {
		return Span{}
	}
	return Span{
		rec:    r,
		trace:  tc.Trace,
		span:   SpanID(r.ids.next()),
		parent: tc.Span,
		name:   name,
		start:  time.Now().UnixNano(),
	}
}

// Context returns the span's propagation context (zero for inert spans).
func (sp *Span) Context() Context { return Context{Trace: sp.trace, Span: sp.span} }

// Live reports whether the span will be recorded on End.
func (sp *Span) Live() bool { return sp.rec != nil }

// Attr attaches an integer attribute. Attributes beyond the fixed slot
// capacity are dropped. No-op on inert spans.
//
//ufc:hotpath
func (sp *Span) Attr(key string, v int64) {
	if sp.rec == nil || int(sp.nattrs) >= maxAttrs {
		return
	}
	sp.attrs[sp.nattrs] = Attr{Key: key, Val: v}
	sp.nattrs++
}

// End stamps the span's end time and commits it to the ring. No-op on
// inert spans.
//
//ufc:hotpath
func (sp *Span) End() {
	if sp.rec == nil {
		return
	}
	sp.rec.commit(sp, time.Now().UnixNano())
	sp.rec = nil
}

// commit claims the next ring slot and writes the span under its latch.
//
//ufc:hotpath
func (r *Recorder) commit(sp *Span, end int64) {
	s := &r.ring[(r.cursor.Add(1)-1)&r.mask]
	s.mu.Lock()
	s.written = true
	s.trace = sp.trace
	s.span = sp.span
	s.parent = sp.parent
	s.name = sp.name
	s.start = sp.start
	s.end = end
	s.nattrs = sp.nattrs
	s.attrs = sp.attrs
	s.mu.Unlock()
}

// Event records a point-in-time span (start == end) under tc with up to
// two attributes; zero-valued attrs are dropped. With an invalid tc the
// event is still recorded trace-less — flight-recorder-only breadcrumbs
// like degrade decisions use this. Nil-safe.
//
//ufc:hotpath
func (r *Recorder) Event(tc Context, name string, a, b Attr) {
	if r == nil {
		return
	}
	sp := Span{
		rec:    r,
		trace:  tc.Trace,
		parent: tc.Span,
		name:   name,
		start:  time.Now().UnixNano(),
	}
	if tc.Valid() {
		sp.span = SpanID(r.ids.next())
	}
	if a.Key != "" {
		sp.attrs[sp.nattrs] = a
		sp.nattrs++
	}
	if b.Key != "" {
		sp.attrs[sp.nattrs] = b
		sp.nattrs++
	}
	r.commit(&sp, sp.start)
}

// RecordSpan commits a completed span with caller-supplied timestamps
// (unix nanos). The load generator uses it to close request spans from
// timestamps it already tracks atomically, without holding Span values
// across goroutines. Returns the recorded span's ID. Nil-safe.
func (r *Recorder) RecordSpan(tc Context, name string, start, end int64, a, b Attr) SpanID {
	if r == nil || !tc.Valid() {
		return 0
	}
	sp := Span{
		rec:    r,
		trace:  tc.Trace,
		span:   SpanID(r.ids.next()),
		parent: tc.Span,
		name:   name,
		start:  start,
	}
	if a.Key != "" {
		sp.attrs[sp.nattrs] = a
		sp.nattrs++
	}
	if b.Key != "" {
		sp.attrs[sp.nattrs] = b
		sp.nattrs++
	}
	r.commit(&sp, end)
	return sp.span
}

// SpanRecord is one stable snapshot of a recorded span — the JSON shape
// served by /debug/ufc/trace and emitted in flight dumps.
type SpanRecord struct {
	Component      string           `json:"component"`
	Trace          string           `json:"trace,omitempty"`
	Span           string           `json:"span,omitempty"`
	Parent         string           `json:"parent,omitempty"`
	Name           string           `json:"name"`
	StartUnixNanos int64            `json:"startUnixNanos"`
	DurationNanos  int64            `json:"durationNanos"`
	Attrs          map[string]int64 `json:"attrs,omitempty"`
}

// Snapshot appends a stable copy of every live ring slot to dst (oldest
// first, bounded by the ring size) and returns it. filter, when nonzero,
// keeps only that trace's spans. It is a cold path: scraping allocates
// freely and briefly latches each slot in turn.
func (r *Recorder) Snapshot(dst []SpanRecord, filter TraceID) []SpanRecord {
	if r == nil {
		return dst
	}
	cur := r.cursor.Load()
	n := uint64(len(r.ring))
	lo := uint64(0)
	if cur > n {
		lo = cur - n
	}
	for k := lo; k < cur; k++ {
		s := &r.ring[k&r.mask]
		rec, ok := s.read()
		if !ok || (filter != 0 && rec.trace != filter) {
			continue
		}
		out := SpanRecord{
			Component:      r.component,
			Name:           rec.name,
			StartUnixNanos: rec.start,
			DurationNanos:  rec.end - rec.start,
		}
		if rec.trace != 0 {
			out.Trace = rec.trace.String()
			out.Span = rec.span.String()
		}
		if rec.parent != 0 {
			out.Parent = rec.parent.String()
		}
		if rec.nattrs > 0 {
			out.Attrs = make(map[string]int64, rec.nattrs)
			for i := int32(0); i < rec.nattrs; i++ {
				out.Attrs[rec.attrs[i].Key] = rec.attrs[i].Val
			}
		}
		dst = append(dst, out)
	}
	return dst
}

// stableSlot is a plain copy of a slot's data fields.
type stableSlot struct {
	trace  TraceID
	span   SpanID
	parent SpanID
	name   string
	start  int64
	end    int64
	nattrs int32
	attrs  [maxAttrs]Attr
}

// read copies the slot out under its latch; ok is false when the slot
// was never written.
func (s *slot) read() (stableSlot, bool) {
	var out stableSlot
	s.mu.Lock()
	ok := s.written
	if ok {
		out.trace = s.trace
		out.span = s.span
		out.parent = s.parent
		out.name = s.name
		out.start = s.start
		out.end = s.end
		out.nattrs = s.nattrs
		out.attrs = s.attrs
	}
	s.mu.Unlock()
	return out, ok
}
