package tracing

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestIDDeterminism(t *testing.T) {
	a := NewIDSource(42)
	b := NewIDSource(42)
	for i := 0; i < 1000; i++ {
		va, vb := a.next(), b.next()
		if va != vb {
			t.Fatalf("draw %d: %x != %x", i, va, vb)
		}
		if va == 0 {
			t.Fatalf("draw %d: zero ID emitted", i)
		}
	}
	c := NewIDSource(43)
	if a2, c2 := NewIDSource(42).next(), c.next(); a2 == c2 {
		t.Fatalf("different seeds produced identical first draw %x", a2)
	}
}

func TestIDStringRoundTrip(t *testing.T) {
	id := TraceID(0x0123456789abcdef)
	s := id.String()
	if s != "0123456789abcdef" {
		t.Fatalf("String() = %q", s)
	}
	back, err := ParseID(s)
	if err != nil || TraceID(back) != id {
		t.Fatalf("ParseID(%q) = %x, %v", s, back, err)
	}
	if TraceID(5).String() != "0000000000000005" {
		t.Fatalf("short id not zero-padded: %q", TraceID(5).String())
	}
}

func TestHeadSamplingDeterministic(t *testing.T) {
	mk := func() []bool {
		r := NewRecorder(Config{Component: "c", SampleEvery: 3, IDs: NewIDSource(7)})
		out := make([]bool, 12)
		for i := range out {
			sp := r.Root("root")
			out[i] = sp.Live()
			sp.End()
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sampling not deterministic at root %d", i)
		}
		want := i%3 == 0
		if a[i] != want {
			t.Fatalf("root %d: sampled=%v, want %v", i, a[i], want)
		}
	}
	// SampleEvery 0 disables root sampling.
	r := NewRecorder(Config{Component: "c", SampleEvery: 0})
	if sp := r.Root("x"); sp.Live() {
		t.Fatal("SampleEvery=0 recorder sampled a root")
	}
}

func TestSpanRecordAndSnapshot(t *testing.T) {
	r := NewRecorder(Config{Component: "hub", RingSize: 8, SampleEvery: 1, IDs: NewIDSource(1)})
	root := r.Root("req")
	root.Attr("slot", 7)
	child := r.Start(root.Context(), "decide")
	child.Attr("dc", 3)
	child.Attr("warm", 1)
	child.End()
	root.End()

	recs := r.Snapshot(nil, 0)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	// child committed first (End order), root second.
	if recs[0].Name != "decide" || recs[1].Name != "req" {
		t.Fatalf("names = %q, %q", recs[0].Name, recs[1].Name)
	}
	if recs[0].Trace != recs[1].Trace {
		t.Fatalf("trace mismatch: %q vs %q", recs[0].Trace, recs[1].Trace)
	}
	if recs[0].Parent != recs[1].Span {
		t.Fatalf("child parent %q != root span %q", recs[0].Parent, recs[1].Span)
	}
	if recs[0].Attrs["dc"] != 3 || recs[0].Attrs["warm"] != 1 {
		t.Fatalf("child attrs = %v", recs[0].Attrs)
	}
	if recs[0].Component != "hub" {
		t.Fatalf("component = %q", recs[0].Component)
	}

	// Filtered snapshot with a bogus trace is empty.
	if got := r.Snapshot(nil, TraceID(0xdead)); len(got) != 0 {
		t.Fatalf("bogus filter returned %d records", len(got))
	}
}

func TestInertSpans(t *testing.T) {
	var nilRec *Recorder
	sp := nilRec.Root("x")
	sp.Attr("k", 1)
	sp.End()
	nilRec.Event(Context{}, "e", Attr{}, Attr{})
	if nilRec.Snapshot(nil, 0) != nil {
		t.Fatal("nil recorder snapshot not nil")
	}
	r := NewRecorder(Config{Component: "c", SampleEvery: 1})
	// Start with an invalid context is inert.
	sp2 := r.Start(Context{}, "x")
	if sp2.Live() {
		t.Fatal("span from zero context is live")
	}
	sp2.End()
	if got := len(r.Snapshot(nil, 0)); got != 0 {
		t.Fatalf("inert spans recorded %d records", got)
	}
}

func TestRingWrap(t *testing.T) {
	r := NewRecorder(Config{Component: "c", RingSize: 4, SampleEvery: 1, IDs: NewIDSource(1)})
	for i := 0; i < 10; i++ {
		sp := r.Root("s")
		sp.Attr("i", int64(i))
		sp.End()
	}
	recs := r.Snapshot(nil, 0)
	if len(recs) != 4 {
		t.Fatalf("ring kept %d records, want 4", len(recs))
	}
	for k, rec := range recs {
		if want := int64(6 + k); rec.Attrs["i"] != want {
			t.Fatalf("slot %d holds i=%d, want %d (oldest-first most recent)", k, rec.Attrs["i"], want)
		}
	}
	if r.Recorded() != 10 {
		t.Fatalf("Recorded() = %d, want 10", r.Recorded())
	}
}

func TestEventRecording(t *testing.T) {
	r := NewRecorder(Config{Component: "c", RingSize: 8, SampleEvery: 1, IDs: NewIDSource(1)})
	tc := Context{Trace: 0xaa, Span: 0xbb}
	r.Event(tc, "hop", I64("shard", 2), Attr{})
	// Trace-less breadcrumb (degrade decisions etc).
	r.Event(Context{}, "degrade", I64("iter", 9), I64("agent", 1))
	recs := r.Snapshot(nil, 0)
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Trace != TraceID(0xaa).String() || recs[0].Parent != SpanID(0xbb).String() {
		t.Fatalf("event context wrong: %+v", recs[0])
	}
	if recs[0].DurationNanos != 0 {
		t.Fatalf("event has nonzero duration %d", recs[0].DurationNanos)
	}
	if recs[1].Trace != "" || recs[1].Attrs["iter"] != 9 {
		t.Fatalf("trace-less event wrong: %+v", recs[1])
	}
	// Filter must still find the traced event.
	if got := r.Snapshot(nil, 0xaa); len(got) != 1 || got[0].Name != "hop" {
		t.Fatalf("filter by trace: %+v", got)
	}
}

func TestRecordSpanExplicitTimes(t *testing.T) {
	r := NewRecorder(Config{Component: "loadgen", RingSize: 8, SampleEvery: 1, IDs: NewIDSource(1)})
	tc := Context{Trace: 0x1, Span: 0}
	id := r.RecordSpan(tc, "request", 100, 350, I64("req", 12), Attr{})
	if id == 0 {
		t.Fatal("RecordSpan returned zero span id")
	}
	recs := r.Snapshot(nil, 0)
	if len(recs) != 1 || recs[0].StartUnixNanos != 100 || recs[0].DurationNanos != 250 {
		t.Fatalf("records = %+v", recs)
	}
	if r.RecordSpan(Context{}, "x", 0, 1, Attr{}, Attr{}) != 0 {
		t.Fatal("RecordSpan with invalid context recorded")
	}
}

func TestConcurrentRecordAndSnapshot(t *testing.T) {
	r := NewRecorder(Config{Component: "c", RingSize: 64, SampleEvery: 1, IDs: NewIDSource(1)})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sp := r.Root("work")
				sp.Attr("k", 1)
				sp.End()
				r.Event(sp.Context(), "ev", I64("a", 2), Attr{})
			}
		}()
	}
	for i := 0; i < 200; i++ {
		for _, rec := range r.Snapshot(nil, 0) {
			if rec.Name != "work" && rec.Name != "ev" {
				t.Errorf("torn read: name %q", rec.Name)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestSingleSlotContention forces every commit onto one slot while a
// snapshot loop copies it, so -race proves the per-slot latch ordering.
func TestSingleSlotContention(t *testing.T) {
	r := NewRecorder(Config{Component: "c", RingSize: 1, SampleEvery: 1, IDs: NewIDSource(1)})
	tc := Context{Trace: 1, Span: 2}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sp := r.Start(tc, "hot")
			sp.Attr("a", 1)
			sp.End()
		}
	}()
	for i := 0; i < 5000; i++ {
		r.Snapshot(nil, 0)
	}
	close(stop)
	wg.Wait()
}

func TestRegistryAndHandler(t *testing.T) {
	reg := NewRegistry()
	ids := NewIDSource(9)
	hub := reg.Recorder(Config{Component: "hub", RingSize: 16, SampleEvery: 1, IDs: ids})
	cp := reg.Recorder(Config{Component: "controlplane", RingSize: 16, SampleEvery: 1, IDs: ids})

	root := hub.Root("lookup")
	child := cp.Start(root.Context(), "decide")
	child.End()
	root.End()
	other := hub.Root("noise")
	other.End()

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	var dump struct {
		Rings []ringInfo   `json:"rings"`
		Spans []SpanRecord `json:"spans"`
	}
	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(res.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if len(dump.Rings) != 2 || len(dump.Spans) != 3 {
		t.Fatalf("rings=%d spans=%d", len(dump.Rings), len(dump.Spans))
	}

	// Filter by the root's trace: exactly the lookup+decide pair.
	res, err = srv.Client().Get(srv.URL + "?trace=" + root.Context().Trace.String())
	if err != nil {
		t.Fatal(err)
	}
	dump.Spans = nil
	if err := json.NewDecoder(res.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if len(dump.Spans) != 2 {
		t.Fatalf("filtered spans = %d, want 2", len(dump.Spans))
	}
	comps := map[string]bool{}
	for _, s := range dump.Spans {
		comps[s.Component] = true
	}
	if !comps["hub"] || !comps["controlplane"] {
		t.Fatalf("filtered components = %v", comps)
	}

	// Bad trace id is a 400.
	res, err = srv.Client().Get(srv.URL + "?trace=zzz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 400 {
		t.Fatalf("bad trace id status = %d", res.StatusCode)
	}
}

func TestFlightDump(t *testing.T) {
	reg := NewRegistry()
	rec := reg.Recorder(Config{Component: "proto", RingSize: 32, SampleEvery: 1, IDs: NewIDSource(1)})
	for i := 0; i < 10; i++ {
		sp := rec.Root("iter")
		sp.Attr("i", int64(i))
		sp.End()
	}
	var buf bytes.Buffer
	fl := NewFlight(reg, &buf, 4, 2)
	fl.Dump("degrade-deadline")
	fl.Dump("fault-crash")
	fl.Dump("over-budget") // third dump suppressed by maxDumps=2
	if fl.Dumps() != 2 {
		t.Fatalf("Dumps() = %d, want 2", fl.Dumps())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// 2 dumps x (1 header + 4 spans).
	if len(lines) != 10 {
		t.Fatalf("got %d NDJSON lines, want 10:\n%s", len(lines), buf.String())
	}
	var hdr flightHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.FlightDump != "degrade-deadline" || hdr.Spans != 4 || !hdr.Truncated {
		t.Fatalf("header = %+v", hdr)
	}
	var sr SpanRecord
	if err := json.Unmarshal([]byte(lines[1]), &sr); err != nil {
		t.Fatal(err)
	}
	// Truncation keeps the newest spans: i=6..9.
	if sr.Attrs["i"] != 6 {
		t.Fatalf("first dumped span i=%d, want 6", sr.Attrs["i"])
	}
	// Nil flight is a no-op.
	var nilFl *Flight
	nilFl.Dump("x")
}

func TestSpanHotPathAllocs(t *testing.T) {
	r := NewRecorder(Config{Component: "c", RingSize: 1024, SampleEvery: 1, IDs: NewIDSource(1)})
	tc := Context{Trace: 1, Span: 2}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := r.Start(tc, "hot")
		sp.Attr("a", 1)
		sp.Attr("b", 2)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("span hot path allocates %.1f allocs/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		r.Event(tc, "ev", I64("k", 1), Attr{})
	})
	if allocs != 0 {
		t.Fatalf("event hot path allocates %.1f allocs/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		sp := r.Root("root")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("root span hot path allocates %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkSpanHotPath(b *testing.B) {
	r := NewRecorder(Config{Component: "c", RingSize: 4096, SampleEvery: 1, IDs: NewIDSource(1)})
	tc := Context{Trace: 1, Span: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.Start(tc, "hot")
		sp.Attr("a", int64(i))
		sp.End()
	}
}
