package tracing

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// A Registry aggregates one process's recorders so the trace endpoint and
// flight dumps see every component at once. Registration happens at
// startup; snapshotting is cold-path.
type Registry struct {
	mu   sync.Mutex
	recs []*Recorder
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Add registers a recorder. Nil registries and nil recorders are ignored
// so "tracing off" wiring stays branch-free at call sites.
func (g *Registry) Add(r *Recorder) {
	if g == nil || r == nil {
		return
	}
	g.mu.Lock()
	g.recs = append(g.recs, r)
	g.mu.Unlock()
}

// Recorder builds a recorder from cfg and registers it in one step.
func (g *Registry) Recorder(cfg Config) *Recorder {
	r := NewRecorder(cfg)
	g.Add(r)
	return r
}

// recorders returns a stable copy of the registered set.
func (g *Registry) recorders() []*Recorder {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	out := make([]*Recorder, len(g.recs))
	copy(out, g.recs)
	g.mu.Unlock()
	return out
}

// Spans snapshots every recorder, oldest-first per component, optionally
// filtered to one trace (0 = all).
func (g *Registry) Spans(filter TraceID) []SpanRecord {
	var out []SpanRecord
	for _, r := range g.recorders() {
		out = r.Snapshot(out, filter)
	}
	return out
}

// traceDump is the JSON document served by /debug/ufc/trace.
type traceDump struct {
	// Rings describes each component's flight-recorder ring.
	Rings []ringInfo `json:"rings"`
	// Spans are the captured span records, sorted by start time.
	Spans []SpanRecord `json:"spans"`
}

type ringInfo struct {
	Component string `json:"component"`
	Size      int    `json:"size"`
	Recorded  uint64 `json:"recorded"`
}

// Handler serves the trace dump as JSON. Query parameters:
//
//	?trace=<hex id>  only spans of that trace
//	?component=<c>   only rings/spans of that component
//
// Mounted at /debug/ufc/trace by telemetry.StartServerOpts.
func (g *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var filter TraceID
		if q := req.URL.Query().Get("trace"); q != "" {
			id, err := ParseID(q)
			if err != nil {
				http.Error(w, "bad trace id: "+err.Error(), http.StatusBadRequest)
				return
			}
			filter = TraceID(id)
		}
		comp := req.URL.Query().Get("component")
		dump := traceDump{Rings: []ringInfo{}, Spans: []SpanRecord{}}
		for _, r := range g.recorders() {
			if comp != "" && r.Component() != comp {
				continue
			}
			dump.Rings = append(dump.Rings, ringInfo{
				Component: r.Component(),
				Size:      r.Len(),
				Recorded:  r.Recorded(),
			})
			dump.Spans = r.Snapshot(dump.Spans, filter)
		}
		sort.SliceStable(dump.Spans, func(i, j int) bool {
			return dump.Spans[i].StartUnixNanos < dump.Spans[j].StartUnixNanos
		})
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(dump); err != nil {
			// Headers are out; nothing left to do but drop the conn.
			return
		}
	})
}

// A Flight binds a registry to an output stream for automatic bounded
// flight-recorder dumps: fault-plan triggers and degrade deadlines call
// Dump, which emits a header line plus at most maxSpans span records as
// NDJSON. At most maxDumps dumps are emitted per Flight so a flapping
// fault cannot flood the stream. All methods are nil-safe.
type Flight struct {
	mu       sync.Mutex
	reg      *Registry
	w        io.Writer
	maxSpans int
	maxDumps int
	dumps    int
}

// NewFlight wires dumps from reg to w. maxSpans/maxDumps <= 0 get
// defaults (256 spans, 8 dumps).
func NewFlight(reg *Registry, w io.Writer, maxSpans, maxDumps int) *Flight {
	if maxSpans <= 0 {
		maxSpans = 256
	}
	if maxDumps <= 0 {
		maxDumps = 8
	}
	return &Flight{reg: reg, w: w, maxSpans: maxSpans, maxDumps: maxDumps}
}

// flightHeader is the first NDJSON line of every dump.
type flightHeader struct {
	FlightDump string `json:"flightDump"`
	UnixNanos  int64  `json:"unixNanos"`
	Spans      int    `json:"spans"`
	Truncated  bool   `json:"truncated,omitempty"`
}

// Dump snapshots the registry and writes one bounded NDJSON dump tagged
// with reason. Cold path: called when something already went wrong. The
// records are marshaled by hand (not encoding/json) so the dump path
// stays free of reflection and of any machinery that could park the
// calling protocol goroutine beyond the single buffered Write.
func (f *Flight) Dump(reason string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dumps >= f.maxDumps {
		return
	}
	f.dumps++
	spans := f.reg.Spans(0)
	// Keep the most recent maxSpans: the tail of the snapshot is the
	// newest activity, which is what a post-mortem wants.
	truncated := false
	if len(spans) > f.maxSpans {
		spans = spans[len(spans)-f.maxSpans:]
		truncated = true
	}
	buf := append([]byte(`{"flightDump":`), 0)
	buf = appendJSONString(buf[:len(buf)-1], reason)
	buf = append(buf, `,"unixNanos":`...)
	buf = strconv.AppendInt(buf, time.Now().UnixNano(), 10)
	buf = append(buf, `,"spans":`...)
	buf = strconv.AppendInt(buf, int64(len(spans)), 10)
	if truncated {
		buf = append(buf, `,"truncated":true`...)
	}
	buf = append(buf, '}', '\n')
	for i := range spans {
		buf = spans[i].appendJSON(buf)
		buf = append(buf, '\n')
	}
	if _, err := f.w.Write(buf); err != nil {
		return
	}
	if fl, ok := f.w.(interface{ Flush() error }); ok {
		// Best-effort: a flight dump should hit the sink even if the
		// process dies right after.
		_ = fl.Flush() //ufc:discard flush failure cannot be reported from a crash path
	}
}

// appendJSONString appends s as a JSON string. Component tags and span
// names are plain identifiers, but the escaper still handles quotes,
// backslashes and control bytes so arbitrary input yields valid JSON.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c < 0x20:
			const hexDigits = "0123456789abcdef"
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

// appendJSON appends the record as one compact JSON object, matching the
// encoding/json field layout of SpanRecord (attrs sorted by key so dumps
// are deterministic).
func (s *SpanRecord) appendJSON(dst []byte) []byte {
	dst = append(dst, `{"component":`...)
	dst = appendJSONString(dst, s.Component)
	if s.Trace != "" {
		dst = append(dst, `,"trace":`...)
		dst = appendJSONString(dst, s.Trace)
	}
	if s.Span != "" {
		dst = append(dst, `,"span":`...)
		dst = appendJSONString(dst, s.Span)
	}
	if s.Parent != "" {
		dst = append(dst, `,"parent":`...)
		dst = appendJSONString(dst, s.Parent)
	}
	dst = append(dst, `,"name":`...)
	dst = appendJSONString(dst, s.Name)
	dst = append(dst, `,"startUnixNanos":`...)
	dst = strconv.AppendInt(dst, s.StartUnixNanos, 10)
	dst = append(dst, `,"durationNanos":`...)
	dst = strconv.AppendInt(dst, s.DurationNanos, 10)
	if len(s.Attrs) > 0 {
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		dst = append(dst, `,"attrs":{`...)
		for i, k := range keys {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONString(dst, k)
			dst = append(dst, ':')
			dst = strconv.AppendInt(dst, s.Attrs[k], 10)
		}
		dst = append(dst, '}')
	}
	return append(dst, '}')
}

// Dumps returns how many dumps have been written.
func (f *Flight) Dumps() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumps
}
