package forecast

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/trace"
)

func TestNaive(t *testing.T) {
	var p Naive
	if p.Predict() != 0 {
		t.Error("prior should be 0")
	}
	p.Observe(5)
	if p.Predict() != 5 {
		t.Errorf("predict = %g", p.Predict())
	}
	p.Observe(7)
	if p.Predict() != 7 {
		t.Errorf("predict = %g", p.Predict())
	}
}

func TestSeasonalNaive(t *testing.T) {
	p, err := NewSeasonalNaive(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{1, 2, 3} {
		p.Observe(v)
	}
	// Next slot is index 3 → season index 0 → value 1.
	if got := p.Predict(); got != 1 {
		t.Errorf("predict = %g, want 1", got)
	}
	p.Observe(10)
	if got := p.Predict(); got != 2 {
		t.Errorf("predict = %g, want 2", got)
	}
	if _, err := NewSeasonalNaive(0); err == nil {
		t.Error("period 0 accepted")
	}
}

func TestSeasonalNaiveExactOnPeriodicSeries(t *testing.T) {
	p, err := NewSeasonalNaive(24)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, 24*5)
	for i := range values {
		values[i] = 100 + 50*math.Sin(2*math.Pi*float64(i%24)/24)
	}
	acc, err := Evaluate(p, values, 24)
	if err != nil {
		t.Fatal(err)
	}
	if acc.MAE > 1e-9 {
		t.Errorf("seasonal naive on exactly periodic series: MAE %g", acc.MAE)
	}
}

func TestEWMA(t *testing.T) {
	p, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(10)
	if p.Predict() != 10 {
		t.Errorf("first level = %g", p.Predict())
	}
	p.Observe(20)
	if p.Predict() != 15 {
		t.Errorf("level = %g, want 15", p.Predict())
	}
	if _, err := NewEWMA(0); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := NewEWMA(1.5); err == nil {
		t.Error("alpha 1.5 accepted")
	}
}

func TestEWMAConvergesOnConstant(t *testing.T) {
	p, _ := NewEWMA(0.3)
	for i := 0; i < 100; i++ {
		p.Observe(42)
	}
	if math.Abs(p.Predict()-42) > 1e-9 {
		t.Errorf("predict = %g", p.Predict())
	}
}

func TestHoltWintersValidation(t *testing.T) {
	if _, err := NewHoltWinters(0, 0.1, 0.1, 24); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := NewHoltWinters(0.1, 1, 0.1, 24); err == nil {
		t.Error("beta 1 accepted")
	}
	if _, err := NewHoltWinters(0.1, 0.1, 0.1, 1); err == nil {
		t.Error("period 1 accepted")
	}
}

func TestHoltWintersTracksSeasonalSeries(t *testing.T) {
	hw, err := NewHoltWinters(0.4, 0.05, 0.3, 24)
	if err != nil {
		t.Fatal(err)
	}
	// Diurnal series with a slow upward trend and light noise.
	rng := rand.New(rand.NewSource(1))
	values := make([]float64, 24*10)
	for i := range values {
		values[i] = 1000 + 2*float64(i) +
			300*math.Sin(2*math.Pi*float64(i%24)/24) +
			10*rng.NormFloat64()
	}
	acc, err := Evaluate(hw, values, 24*3)
	if err != nil {
		t.Fatal(err)
	}
	// Naive forecasting has MAE on the order of the hourly swing (~75);
	// Holt-Winters should be far better.
	naiveAcc, err := Evaluate(&Naive{}, values, 24*3)
	if err != nil {
		t.Fatal(err)
	}
	if acc.MAE > naiveAcc.MAE/1.5 {
		t.Errorf("holt-winters MAE %g not clearly better than naive %g", acc.MAE, naiveAcc.MAE)
	}
	if acc.MAPE > 0.05 {
		t.Errorf("holt-winters MAPE %.1f%% too high", acc.MAPE*100)
	}
}

func TestHoltWintersOnSyntheticWorkload(t *testing.T) {
	// The paper's claim: the diurnal datacenter workload is accurately
	// predictable. Verify on our own workload generator.
	w, err := trace.GenWorkload(trace.DefaultWorkloadConfig(50000))
	if err != nil {
		t.Fatal(err)
	}
	hw, err := NewHoltWinters(0.35, 0.02, 0.25, 24)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Evaluate(hw, w.Values, 48)
	if err != nil {
		t.Fatal(err)
	}
	if acc.MAPE > 0.12 {
		t.Errorf("workload MAPE %.1f%%, want accurate prediction (<12%%)", acc.MAPE*100)
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(&Naive{}, []float64{1}, 0); !errors.Is(err, ErrShortSeries) {
		t.Errorf("short series: %v", err)
	}
	if _, err := Evaluate(&Naive{}, []float64{1, 2, 3}, 5); !errors.Is(err, ErrShortSeries) {
		t.Errorf("warmup too long: %v", err)
	}
}

func TestForecastsAlignment(t *testing.T) {
	out := Forecasts(&Naive{}, []float64{3, 5, 7})
	want := []float64{0, 3, 5}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("forecasts = %v, want %v", out, want)
		}
	}
}

func TestHoltWintersNonNegative(t *testing.T) {
	hw, _ := NewHoltWinters(0.5, 0.3, 0.3, 2)
	for _, v := range []float64{10, 0, 10, 0, 0, 0, 0, 0} {
		hw.Observe(v)
	}
	if hw.Predict() < 0 {
		t.Errorf("negative workload forecast %g", hw.Predict())
	}
}
