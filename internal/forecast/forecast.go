// Package forecast provides the request-arrival predictors the paper's
// system model depends on (§II-A: "the near-term request arrival at each
// front-end proxy server can be predicted quite accurately, by employing
// techniques such as statistical machine learning and time series
// analysis"). The optimizer consumes one-slot-ahead arrival forecasts;
// this package supplies classical time-series predictors — seasonal naive,
// exponential smoothing, Holt–Winters with a daily season — together with
// accuracy metrics, so the sensitivity of UFC to prediction error can be
// quantified (see the forecast experiment in internal/experiments).
package forecast

import (
	"errors"
	"fmt"
	"math"
)

// Predictor produces one-step-ahead forecasts of an hourly series. A
// Predictor is fed observations in order via Observe and asked for the
// next value via Predict.
type Predictor interface {
	// Observe feeds the value of the current slot.
	Observe(value float64)
	// Predict returns the forecast for the next slot. Before any
	// observation it returns 0.
	Predict() float64
	// Name identifies the predictor for reporting.
	Name() string
}

// Naive predicts the last observed value (random-walk forecast).
type Naive struct {
	last float64
	seen bool
}

var _ Predictor = (*Naive)(nil)

// Observe implements Predictor.
func (p *Naive) Observe(v float64) { p.last, p.seen = v, true }

// Predict implements Predictor.
func (p *Naive) Predict() float64 {
	if !p.seen {
		return 0
	}
	return p.last
}

// Name implements Predictor.
func (p *Naive) Name() string { return "naive" }

// SeasonalNaive predicts the value observed one season (default 24 hours)
// ago, falling back to the last value until a full season is seen.
type SeasonalNaive struct {
	period  int
	history []float64
}

var _ Predictor = (*SeasonalNaive)(nil)

// NewSeasonalNaive builds a seasonal-naive predictor with the period in
// slots (e.g. 24 for a daily season on hourly data).
func NewSeasonalNaive(period int) (*SeasonalNaive, error) {
	if period <= 0 {
		return nil, fmt.Errorf("forecast: period %d", period)
	}
	return &SeasonalNaive{period: period}, nil
}

// Observe implements Predictor.
func (p *SeasonalNaive) Observe(v float64) { p.history = append(p.history, v) }

// Predict implements Predictor.
func (p *SeasonalNaive) Predict() float64 {
	n := len(p.history)
	if n == 0 {
		return 0
	}
	if n < p.period {
		return p.history[n-1]
	}
	return p.history[n-p.period]
}

// Name implements Predictor.
func (p *SeasonalNaive) Name() string { return fmt.Sprintf("seasonal-naive(%d)", p.period) }

// EWMA is simple exponential smoothing with factor alpha in (0, 1].
type EWMA struct {
	alpha float64
	level float64
	seen  bool
}

var _ Predictor = (*EWMA)(nil)

// NewEWMA builds an exponentially weighted moving average predictor.
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("forecast: alpha %g outside (0, 1]", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Observe implements Predictor.
func (p *EWMA) Observe(v float64) {
	if !p.seen {
		p.level, p.seen = v, true
		return
	}
	p.level += p.alpha * (v - p.level)
}

// Predict implements Predictor.
func (p *EWMA) Predict() float64 { return p.level }

// Name implements Predictor.
func (p *EWMA) Name() string { return fmt.Sprintf("ewma(%.2g)", p.alpha) }

// HoltWinters is additive Holt–Winters (triple exponential smoothing) with
// a fixed seasonal period: level + trend + additive seasonality. It is the
// workhorse for strongly diurnal datacenter workloads.
type HoltWinters struct {
	alpha, beta, gamma float64
	period             int

	level, trend float64
	season       []float64
	warmup       []float64
	t            int
	ready        bool
}

var _ Predictor = (*HoltWinters)(nil)

// NewHoltWinters builds an additive Holt–Winters predictor. alpha, beta
// and gamma are the level, trend and seasonal smoothing factors in (0, 1);
// period is the season length in slots.
func NewHoltWinters(alpha, beta, gamma float64, period int) (*HoltWinters, error) {
	for _, f := range []float64{alpha, beta, gamma} {
		if f <= 0 || f >= 1 {
			return nil, fmt.Errorf("forecast: smoothing factor %g outside (0, 1)", f)
		}
	}
	if period < 2 {
		return nil, fmt.Errorf("forecast: period %d < 2", period)
	}
	return &HoltWinters{alpha: alpha, beta: beta, gamma: gamma, period: period}, nil
}

// Observe implements Predictor.
func (p *HoltWinters) Observe(v float64) {
	p.t++
	if !p.ready {
		p.warmup = append(p.warmup, v)
		if len(p.warmup) == 2*p.period {
			p.initialize()
			p.ready = true
		}
		return
	}
	prevLevel := p.level
	sIdx := (p.t - 1) % p.period
	p.level = p.alpha*(v-p.season[sIdx]) + (1-p.alpha)*(p.level+p.trend)
	p.trend = p.beta*(p.level-prevLevel) + (1-p.beta)*p.trend
	p.season[sIdx] = p.gamma*(v-p.level) + (1-p.gamma)*p.season[sIdx]
}

// initialize seeds level/trend/seasonals from two full seasons, the
// standard Holt–Winters warm start.
func (p *HoltWinters) initialize() {
	n := p.period
	var mean1, mean2 float64
	for k := 0; k < n; k++ {
		mean1 += p.warmup[k]
		mean2 += p.warmup[n+k]
	}
	mean1 /= float64(n)
	mean2 /= float64(n)
	p.level = mean2
	p.trend = (mean2 - mean1) / float64(n)
	p.season = make([]float64, n)
	for k := 0; k < n; k++ {
		p.season[k] = (p.warmup[k] - mean1 + p.warmup[n+k] - mean2) / 2
	}
	p.warmup = nil
}

// Predict implements Predictor.
func (p *HoltWinters) Predict() float64 {
	if !p.ready {
		// Until two seasons have been seen, fall back to the last value.
		if n := p.t; n > 0 {
			return p.warmup[n-1]
		}
		return 0
	}
	sIdx := p.t % p.period
	v := p.level + p.trend + p.season[sIdx]
	if v < 0 {
		return 0
	}
	return v
}

// Name implements Predictor.
func (p *HoltWinters) Name() string {
	return fmt.Sprintf("holt-winters(%g,%g,%g;%d)", p.alpha, p.beta, p.gamma, p.period)
}

// Accuracy summarizes one-step-ahead forecast errors.
type Accuracy struct {
	MAE  float64 // mean absolute error
	RMSE float64 // root mean squared error
	MAPE float64 // mean absolute percentage error (skips zero actuals)
}

// ErrShortSeries is returned when a series is too short to evaluate.
var ErrShortSeries = errors.New("forecast: series too short")

// Evaluate runs the predictor through the series, comparing each
// one-step-ahead forecast (made after observing values[0..t]) against
// values[t+1]. The first warmup forecasts are excluded from the error
// statistics.
func Evaluate(p Predictor, values []float64, warmup int) (Accuracy, error) {
	if len(values) < warmup+2 {
		return Accuracy{}, fmt.Errorf("%d values with warmup %d: %w", len(values), warmup, ErrShortSeries)
	}
	var absSum, sqSum, pctSum float64
	var count, pctCount int
	for t := 0; t < len(values)-1; t++ {
		p.Observe(values[t])
		pred := p.Predict()
		actual := values[t+1]
		if t+1 <= warmup {
			continue
		}
		err := pred - actual
		absSum += math.Abs(err)
		sqSum += err * err
		if actual != 0 {
			pctSum += math.Abs(err / actual)
			pctCount++
		}
		count++
	}
	if count == 0 {
		return Accuracy{}, ErrShortSeries
	}
	acc := Accuracy{
		MAE:  absSum / float64(count),
		RMSE: math.Sqrt(sqSum / float64(count)),
	}
	if pctCount > 0 {
		acc.MAPE = pctSum / float64(pctCount)
	}
	return acc, nil
}

// Forecasts returns the predictor's one-step-ahead forecast series aligned
// with the input: out[t] is the forecast of values[t] made after observing
// values[0..t-1] (out[0] is the predictor's prior, usually 0).
func Forecasts(p Predictor, values []float64) []float64 {
	out := make([]float64, len(values))
	for t := range values {
		out[t] = p.Predict()
		p.Observe(values[t])
	}
	return out
}
