package utility

import (
	"math"
	"testing"
)

func TestQuadraticValue(t *testing.T) {
	// All traffic to one DC with latency 0.02 s, A=100:
	// avg = 0.02, U = -100 * 0.0004 = -0.04.
	u := Quadratic{}
	got := u.Value([]float64{100, 0}, []float64{0.02, 0.05}, 100)
	if math.Abs(got-(-0.04)) > 1e-12 {
		t.Fatalf("value = %g, want -0.04", got)
	}
	if u.Value([]float64{0, 0}, []float64{0.02, 0.05}, 0) != 0 {
		t.Fatal("zero arrivals should yield zero utility")
	}
}

func TestQuadraticPrefersLowLatency(t *testing.T) {
	u := Quadratic{}
	near := u.Value([]float64{100, 0}, []float64{0.01, 0.05}, 100)
	far := u.Value([]float64{0, 100}, []float64{0.01, 0.05}, 100)
	if near <= far {
		t.Fatalf("near=%g should beat far=%g", near, far)
	}
}

func checkGradient(t *testing.T, u Func, lambda, lat []float64, a float64) {
	t.Helper()
	g := u.Gradient(lambda, lat, a)
	const h = 1e-6
	for j := range lambda {
		lp := append([]float64(nil), lambda...)
		lm := append([]float64(nil), lambda...)
		lp[j] += h
		lm[j] -= h
		fd := (u.Value(lp, lat, a) - u.Value(lm, lat, a)) / (2 * h)
		if math.Abs(fd-g[j]) > 1e-5*(1+math.Abs(fd)) {
			t.Errorf("%s: grad[%d] = %g, finite diff %g", u.Name(), j, g[j], fd)
		}
	}
}

func TestGradientsMatchFiniteDifferences(t *testing.T) {
	lambda := []float64{30, 50, 20}
	lat := []float64{0.01, 0.02, 0.04}
	for _, u := range []Func{Quadratic{}, Linear{}, Exponential{K: 5}} {
		checkGradient(t, u, lambda, lat, 100)
	}
}

func TestLinearValue(t *testing.T) {
	got := Linear{}.Value([]float64{10, 5}, []float64{0.01, 0.02}, 15)
	want := -(10*0.01 + 5*0.02)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("value = %g, want %g", got, want)
	}
}

func TestExponentialZeroArrivals(t *testing.T) {
	e := Exponential{K: 3}
	if e.Value([]float64{0}, []float64{0.01}, 0) != 0 {
		t.Fatal("zero arrivals should yield zero utility")
	}
	g := e.Gradient([]float64{0}, []float64{0.01}, 0)
	if g[0] != 0 {
		t.Fatal("zero arrivals should yield zero gradient")
	}
}

func TestAverageLatencySec(t *testing.T) {
	got := AverageLatencySec([]float64{50, 50}, []float64{0.010, 0.030}, 100)
	if math.Abs(got-0.020) > 1e-12 {
		t.Fatalf("avg = %g, want 0.020", got)
	}
	if AverageLatencySec([]float64{0}, []float64{0.01}, 0) != 0 {
		t.Fatal("avg with zero arrivals should be 0")
	}
}

func TestUtilityConcavityOnSegment(t *testing.T) {
	// Concavity: U(mid) >= (U(a)+U(b))/2 along any segment.
	lat := []float64{0.01, 0.03, 0.05}
	a := []float64{100, 0, 0}
	b := []float64{0, 0, 100}
	mid := []float64{50, 0, 50}
	for _, u := range []Func{Quadratic{}, Linear{}, Exponential{K: 10}} {
		ua, ub, um := u.Value(a, lat, 100), u.Value(b, lat, 100), u.Value(mid, lat, 100)
		if um < (ua+ub)/2-1e-9 {
			t.Errorf("%s not concave: mid %g < avg %g", u.Name(), um, (ua+ub)/2)
		}
	}
}
