// Package utility models the workload-performance component of UFC: the
// latency utility U of the user population behind each front-end proxy
// server. The paper assumes U is decreasing and concave in the average
// propagation latency; its evaluation uses the quadratic form of Eq. (2).
package utility

import (
	"fmt"
	"math"
)

// Func is a latency-utility function for one front-end's user group.
// Utility is a function of the routing vector λ_i and the latency row L_i
// (seconds); arrivals A_i is the total demand at the front-end.
type Func interface {
	// Value returns U(λ_i).
	Value(lambda, latencySec []float64, arrivals float64) float64
	// Gradient returns ∂U/∂λ_ij for all j.
	Gradient(lambda, latencySec []float64, arrivals float64) []float64
	// Name identifies the utility for reporting.
	Name() string
}

// Quadratic is the paper's Eq. (2): U(λ_i) = −A_i · (Σ_j λ_ij L_ij / A_i)².
// It reflects the user's increased tendency to leave the service as
// latency grows.
type Quadratic struct{}

var _ Func = Quadratic{}

// Value implements Func.
func (Quadratic) Value(lambda, latencySec []float64, arrivals float64) float64 {
	if arrivals <= 0 {
		return 0
	}
	avg := weightedLatency(lambda, latencySec) / arrivals
	return -arrivals * avg * avg
}

// Gradient implements Func. ∂U/∂λ_ij = −(2/A_i)·(Σ_k λ_ik L_ik)·L_ij.
func (Quadratic) Gradient(lambda, latencySec []float64, arrivals float64) []float64 {
	g := make([]float64, len(lambda))
	if arrivals <= 0 {
		return g
	}
	w := weightedLatency(lambda, latencySec)
	for j, l := range latencySec {
		g[j] = -2 * w * l / arrivals
	}
	return g
}

// Name implements Func.
func (Quadratic) Name() string { return "quadratic" }

// Linear is U(λ_i) = −Σ_j λ_ij L_ij: utility decreases linearly with the
// total latency-weighted traffic. Concave (affine) but not strongly
// concave — exercises the ADM-G convergence theory without strong
// convexity.
type Linear struct{}

var _ Func = Linear{}

// Value implements Func.
func (Linear) Value(lambda, latencySec []float64, _ float64) float64 {
	return -weightedLatency(lambda, latencySec)
}

// Gradient implements Func.
func (Linear) Gradient(lambda, latencySec []float64, _ float64) []float64 {
	g := make([]float64, len(lambda))
	for j, l := range latencySec {
		g[j] = -l
	}
	return g
}

// Name implements Func.
func (Linear) Name() string { return "linear" }

// Exponential is U(λ_i) = −A_i·(exp(k·avg) − 1): sharply punishes long
// average latencies, modelling SLA-style cliffs. Concave? Note −exp is
// concave in avg but avg is linear in λ, so U is concave in λ. K is in
// 1/seconds.
type Exponential struct {
	K float64
}

var _ Func = Exponential{}

// Value implements Func.
func (e Exponential) Value(lambda, latencySec []float64, arrivals float64) float64 {
	if arrivals <= 0 {
		return 0
	}
	avg := weightedLatency(lambda, latencySec) / arrivals
	return -arrivals * (math.Exp(e.K*avg) - 1)
}

// Gradient implements Func.
func (e Exponential) Gradient(lambda, latencySec []float64, arrivals float64) []float64 {
	g := make([]float64, len(lambda))
	if arrivals <= 0 {
		return g
	}
	avg := weightedLatency(lambda, latencySec) / arrivals
	scale := -e.K * math.Exp(e.K*avg)
	for j, l := range latencySec {
		g[j] = scale * l
	}
	return g
}

// Name implements Func.
func (e Exponential) Name() string { return fmt.Sprintf("exponential(k=%g)", e.K) }

// AverageLatencySec returns Σ_j λ_ij L_ij / A_i, the user-experienced
// average propagation latency in seconds (0 when there is no traffic).
func AverageLatencySec(lambda, latencySec []float64, arrivals float64) float64 {
	if arrivals <= 0 {
		return 0
	}
	return weightedLatency(lambda, latencySec) / arrivals
}

func weightedLatency(lambda, latencySec []float64) float64 {
	if len(lambda) != len(latencySec) {
		panic(fmt.Sprintf("utility: %d routings vs %d latencies", len(lambda), len(latencySec)))
	}
	var s float64
	for j, l := range lambda {
		s += l * latencySec[j]
	}
	return s
}
