// Package ramp relaxes the paper's perfect load-following assumption: real
// fuel cells ramp their output at a finite rate (the paper's reference
// [21] reports Bloom-style distributed generation following load at fine
// time scales, and §IV-A assumes arbitrary per-hour tunability). This
// package schedules a datacenter's fuel-cell output trajectory across a
// horizon under a ramp-rate limit |μ_t − μ_{t−1}| ≤ R, minimizing the
// energy-plus-carbon cost of covering the hourly demand. The per-slot cost
// can be any convex emission policy, so the optimizer is a dynamic program
// over a discretized output grid rather than a QP.
package ramp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/carbon"
)

// Config describes one datacenter's fuel-cell scheduling problem.
type Config struct {
	// CapMW is the fuel-cell capacity μ^max.
	CapMW float64
	// RampMW is the maximum per-slot output change R (MW per hour).
	RampMW float64
	// InitialMW is the output level before the first slot.
	InitialMW float64
	// FuelCellPriceUSD is p0 ($/MWh).
	FuelCellPriceUSD float64
	// PriceUSD is the hourly grid price ($/MWh), one per slot.
	PriceUSD []float64
	// CarbonRate is the hourly grid emission rate (t/MWh), one per slot.
	CarbonRate []float64
	// EmissionCost is the emission policy V.
	EmissionCost carbon.CostFunc
	// Levels is the output-grid resolution of the dynamic program
	// (default 201 levels across [0, CapMW]).
	Levels int
}

// Validation errors.
var (
	ErrBadHorizon = errors.New("ramp: price, carbon and demand series must share a positive length")
	ErrBadConfig  = errors.New("ramp: invalid configuration")
)

func (c Config) validate(horizon int) error {
	if horizon == 0 || len(c.PriceUSD) != horizon || len(c.CarbonRate) != horizon {
		return fmt.Errorf("%d prices, %d rates, %d demands: %w",
			len(c.PriceUSD), len(c.CarbonRate), horizon, ErrBadHorizon)
	}
	if c.CapMW < 0 || c.RampMW < 0 || c.InitialMW < 0 || c.InitialMW > c.CapMW+1e-12 {
		return fmt.Errorf("cap %g ramp %g initial %g: %w", c.CapMW, c.RampMW, c.InitialMW, ErrBadConfig)
	}
	if c.FuelCellPriceUSD < 0 || c.EmissionCost == nil {
		return fmt.Errorf("fuel-cell price %g, nil-cost=%v: %w",
			c.FuelCellPriceUSD, c.EmissionCost == nil, ErrBadConfig)
	}
	return nil
}

// Schedule is the optimized trajectory.
type Schedule struct {
	MuMW    []float64 // fuel-cell output per slot
	NuMW    []float64 // grid draw per slot
	CostUSD float64   // total energy + carbon cost
}

// Optimize computes the cost-minimal fuel-cell trajectory covering
// demandMW under the ramp constraint. Slot costs are
//
//	p0·μ_t + p_t·(d_t − μ_t) + V(C_t·(d_t − μ_t)),
//
// with 0 ≤ μ_t ≤ min(Cap, d_t) and |μ_t − μ_{t−1}| ≤ R (μ_0 measured
// against InitialMW). The dynamic program is exact on the discretized
// grid; with the default 201 levels the discretization error is ≤ 0.25 %
// of capacity per slot.
func Optimize(cfg Config, demandMW []float64) (*Schedule, error) {
	horizon := len(demandMW)
	if err := cfg.validate(horizon); err != nil {
		return nil, err
	}
	levels := cfg.Levels
	if levels <= 1 {
		levels = 201
	}
	if cfg.CapMW == 0 {
		// No fuel cells: all grid.
		out := &Schedule{MuMW: make([]float64, horizon), NuMW: append([]float64(nil), demandMW...)}
		for t, d := range demandMW {
			if d < 0 {
				return nil, fmt.Errorf("ramp: negative demand %g at slot %d", d, t)
			}
			out.CostUSD += cfg.PriceUSD[t]*d + cfg.EmissionCost.Cost(cfg.CarbonRate[t]*d)
		}
		return out, nil
	}

	step := cfg.CapMW / float64(levels-1)
	rampLevels := int(math.Floor(cfg.RampMW/step + 1e-9))
	level := func(mw float64) int {
		l := int(math.Round(mw / step))
		if l < 0 {
			return 0
		}
		if l >= levels {
			return levels - 1
		}
		return l
	}

	slotCost := func(t, l int) (float64, bool) {
		mu := float64(l) * step
		d := demandMW[t]
		if d < 0 {
			return 0, false
		}
		if mu > d+step/2 {
			return math.Inf(1), true // cannot exceed demand (ν ≥ 0)
		}
		if mu > d {
			mu = d
		}
		grid := d - mu
		return cfg.FuelCellPriceUSD*mu + cfg.PriceUSD[t]*grid +
			cfg.EmissionCost.Cost(cfg.CarbonRate[t]*grid), true
	}

	const inf = math.MaxFloat64 / 4
	cost := make([]float64, levels)
	next := make([]float64, levels)
	choice := make([][]int16, horizon) // back-pointers
	for t := range choice {
		choice[t] = make([]int16, levels)
	}

	// Backward induction: cost[l] = min future cost entering slot t at
	// level l (chosen for slot t).
	for l := range cost {
		cost[l] = 0
	}
	for t := horizon - 1; t >= 0; t-- {
		for l := 0; l < levels; l++ {
			sc, ok := slotCost(t, l)
			if !ok {
				return nil, fmt.Errorf("ramp: negative demand at slot %d", t)
			}
			if math.IsInf(sc, 1) {
				next[l] = inf
				continue
			}
			if t == horizon-1 {
				next[l] = sc
				choice[t][l] = int16(l)
				continue
			}
			best := inf
			var bestNext int
			lo, hi := l-rampLevels, l+rampLevels
			if lo < 0 {
				lo = 0
			}
			if hi >= levels {
				hi = levels - 1
			}
			for ln := lo; ln <= hi; ln++ {
				if cost[ln] < best {
					best = cost[ln]
					bestNext = ln
				}
			}
			next[l] = sc + best
			choice[t][l] = int16(bestNext)
		}
		cost, next = next, cost
	}

	// Pick the best feasible first level around the initial output.
	startL := level(cfg.InitialMW)
	lo, hi := startL-rampLevels, startL+rampLevels
	if lo < 0 {
		lo = 0
	}
	if hi >= levels {
		hi = levels - 1
	}
	bestL, bestC := lo, inf
	for l := lo; l <= hi; l++ {
		if cost[l] < bestC {
			bestC, bestL = cost[l], l
		}
	}
	if bestC >= inf {
		return nil, fmt.Errorf("ramp: no feasible trajectory from initial output %g MW", cfg.InitialMW)
	}

	out := &Schedule{
		MuMW: make([]float64, horizon),
		NuMW: make([]float64, horizon),
	}
	l := bestL
	for t := 0; t < horizon; t++ {
		mu := float64(l) * step
		if mu > demandMW[t] {
			mu = demandMW[t]
		}
		out.MuMW[t] = mu
		out.NuMW[t] = demandMW[t] - mu
		grid := out.NuMW[t]
		out.CostUSD += cfg.FuelCellPriceUSD*mu + cfg.PriceUSD[t]*grid +
			cfg.EmissionCost.Cost(cfg.CarbonRate[t]*grid)
		if t < horizon-1 {
			l = int(choice[t][l])
		}
	}
	return out, nil
}

// Unconstrained returns the per-slot greedy optimum (infinite ramp rate),
// the baseline the ramp-limited schedule is compared against.
func Unconstrained(cfg Config, demandMW []float64) (*Schedule, error) {
	horizon := len(demandMW)
	if err := cfg.validate(horizon); err != nil {
		return nil, err
	}
	out := &Schedule{
		MuMW: make([]float64, horizon),
		NuMW: make([]float64, horizon),
	}
	for t, d := range demandMW {
		if d < 0 {
			return nil, fmt.Errorf("ramp: negative demand %g at slot %d", d, t)
		}
		mu := bestSlotMu(cfg, t, d)
		out.MuMW[t] = mu
		out.NuMW[t] = d - mu
		out.CostUSD += cfg.FuelCellPriceUSD*mu + cfg.PriceUSD[t]*(d-mu) +
			cfg.EmissionCost.Cost(cfg.CarbonRate[t]*(d-mu))
	}
	return out, nil
}

// bestSlotMu solves the 1-D convex slot problem by derivative bisection.
func bestSlotMu(cfg Config, t int, demand float64) float64 {
	hi := math.Min(cfg.CapMW, demand)
	if hi <= 0 {
		return 0
	}
	c := cfg.CarbonRate[t]
	deriv := func(mu float64) float64 {
		grid := demand - mu
		return cfg.FuelCellPriceUSD - cfg.PriceUSD[t] - c*cfg.EmissionCost.Marginal(c*grid)
	}
	// Convex: derivative non-decreasing in mu. Bisection.
	if deriv(0) >= 0 {
		return 0
	}
	if deriv(hi) <= 0 {
		return hi
	}
	lo := 0.0
	for k := 0; k < 100; k++ {
		mid := (lo + hi) / 2
		if deriv(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
