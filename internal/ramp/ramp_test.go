package ramp

import (
	"errors"
	"math"
	"testing"

	"repro/internal/carbon"
)

func testConfig(horizon int) Config {
	prices := make([]float64, horizon)
	rates := make([]float64, horizon)
	for t := range prices {
		// Alternating cheap/expensive hours around the fuel-cell price.
		if t%2 == 0 {
			prices[t] = 30
		} else {
			prices[t] = 120
		}
		rates[t] = 0.5
	}
	return Config{
		CapMW:            4,
		RampMW:           4, // unconstrained by default
		InitialMW:        0,
		FuelCellPriceUSD: 80,
		PriceUSD:         prices,
		CarbonRate:       rates,
		EmissionCost:     carbon.LinearTax{Rate: 25},
		Levels:           401,
	}
}

func constDemand(horizon int, d float64) []float64 {
	out := make([]float64, horizon)
	for t := range out {
		out[t] = d
	}
	return out
}

func TestValidation(t *testing.T) {
	cfg := testConfig(4)
	if _, err := Optimize(cfg, constDemand(3, 1)); !errors.Is(err, ErrBadHorizon) {
		t.Errorf("horizon mismatch: %v", err)
	}
	bad := cfg
	bad.InitialMW = 99
	if _, err := Optimize(bad, constDemand(4, 1)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("initial above cap: %v", err)
	}
	bad = cfg
	bad.EmissionCost = nil
	if _, err := Optimize(bad, constDemand(4, 1)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil cost: %v", err)
	}
	if _, err := Optimize(cfg, []float64{1, -1, 1, 1}); err == nil {
		t.Error("negative demand accepted")
	}
}

func TestUnconstrainedMatchesGreedyThreshold(t *testing.T) {
	cfg := testConfig(6)
	sched, err := Unconstrained(cfg, constDemand(6, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Effective grid cost: 30+12.5=42.5 (cheap hours, below 80 → grid) or
	// 120+12.5=132.5 (expensive hours, above 80 → fuel cell).
	for t2, mu := range sched.MuMW {
		if t2%2 == 0 && mu != 0 {
			t.Errorf("slot %d: mu %g, want 0 (cheap grid)", t2, mu)
		}
		if t2%2 == 1 && math.Abs(mu-3) > 1e-9 {
			t.Errorf("slot %d: mu %g, want 3 (expensive grid)", t2, mu)
		}
	}
}

func TestOptimizeWithLooseRampMatchesUnconstrained(t *testing.T) {
	cfg := testConfig(8)
	demand := constDemand(8, 3)
	unc, err := Unconstrained(cfg, demand)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimize(cfg, demand)
	if err != nil {
		t.Fatal(err)
	}
	// DP discretization: within a grid step of the exact optimum.
	if opt.CostUSD > unc.CostUSD*1.01+1 {
		t.Errorf("loose-ramp DP cost %g vs unconstrained %g", opt.CostUSD, unc.CostUSD)
	}
}

func TestOptimizeRespectsRampLimit(t *testing.T) {
	cfg := testConfig(12)
	cfg.RampMW = 0.5
	demand := constDemand(12, 3.5)
	sched, err := Optimize(cfg, demand)
	if err != nil {
		t.Fatal(err)
	}
	prev := cfg.InitialMW
	for t2, mu := range sched.MuMW {
		if d := math.Abs(mu - prev); d > cfg.RampMW+1e-6 {
			t.Errorf("slot %d: ramp %g exceeds limit %g", t2, d, cfg.RampMW)
		}
		if mu < -1e-12 || mu > cfg.CapMW+1e-9 {
			t.Errorf("slot %d: mu %g out of [0, %g]", t2, mu, cfg.CapMW)
		}
		if nu := sched.NuMW[t2]; nu < -1e-9 {
			t.Errorf("slot %d: negative grid draw %g", t2, nu)
		}
		if math.Abs(mu+sched.NuMW[t2]-demand[t2]) > 1e-9 {
			t.Errorf("slot %d: power balance broken", t2)
		}
		prev = mu
	}
}

func TestTighterRampCostsMore(t *testing.T) {
	demand := constDemand(24, 3)
	var prevCost float64
	for k, rampMW := range []float64{4, 1, 0.25, 0.05} {
		cfg := testConfig(24)
		cfg.RampMW = rampMW
		sched, err := Optimize(cfg, demand)
		if err != nil {
			t.Fatal(err)
		}
		if k > 0 && sched.CostUSD < prevCost-1e-6 {
			t.Errorf("ramp %g: cost %g below looser-ramp cost %g", rampMW, sched.CostUSD, prevCost)
		}
		prevCost = sched.CostUSD
	}
}

func TestZeroRampFreezesOutput(t *testing.T) {
	cfg := testConfig(6)
	cfg.RampMW = 0
	cfg.InitialMW = 2
	sched, err := Optimize(cfg, constDemand(6, 3))
	if err != nil {
		t.Fatal(err)
	}
	for t2, mu := range sched.MuMW {
		if math.Abs(mu-2) > cfg.CapMW/400+1e-9 {
			t.Errorf("slot %d: mu %g moved despite zero ramp", t2, mu)
		}
	}
}

func TestZeroCapacityAllGrid(t *testing.T) {
	cfg := testConfig(4)
	cfg.CapMW = 0
	sched, err := Optimize(cfg, constDemand(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	for t2, mu := range sched.MuMW {
		if mu != 0 || sched.NuMW[t2] != 2 {
			t.Errorf("slot %d: mu %g nu %g", t2, mu, sched.NuMW[t2])
		}
	}
	if sched.CostUSD <= 0 {
		t.Error("zero cost with positive demand")
	}
}

func TestOptimizeAnticipatesPriceSpike(t *testing.T) {
	// With a slow ramp, the scheduler must start ramping up before the
	// expensive hour arrives — the behaviour a greedy (memoryless)
	// controller cannot produce.
	// Pre-spike grid is only slightly cheaper than fuel cells, then two
	// very expensive hours hit: the optimal schedule ramps up in advance,
	// which a myopic controller cannot do.
	horizon := 6
	prices := []float64{75, 75, 75, 75, 200, 200}
	cfg := Config{
		CapMW:            4,
		RampMW:           1,
		InitialMW:        0,
		FuelCellPriceUSD: 80,
		PriceUSD:         prices,
		CarbonRate:       make([]float64, horizon),
		EmissionCost:     carbon.ZeroCost{},
		Levels:           401,
	}
	demand := constDemand(horizon, 4)
	sched, err := Optimize(cfg, demand)
	if err != nil {
		t.Fatal(err)
	}
	if sched.MuMW[4] < 3.9 || sched.MuMW[5] < 3.9 {
		t.Errorf("spike hours output %g/%g, want ~4 (pre-ramped)", sched.MuMW[4], sched.MuMW[5])
	}
	if sched.MuMW[3] < 2.9 {
		t.Errorf("hour before spike output %g, want >= 3 (anticipatory ramp)", sched.MuMW[3])
	}
	// Myopic: stay at 0 through the cheap hours (grid 75 < fuel 80), then
	// ramp 1 MW per spike hour: fuel 80*(1+2), grid 75*16 + 200*(3+2).
	myopicCost := 80.0*3 + 75*16 + 200*5
	if sched.CostUSD >= myopicCost {
		t.Errorf("DP cost %g not better than myopic %g", sched.CostUSD, myopicCost)
	}
}

func TestNonlinearEmissionCostSupported(t *testing.T) {
	cfg := testConfig(6)
	cfg.EmissionCost = carbon.CapAndTrade{CapTons: 1, Price: 100}
	sched, err := Optimize(cfg, constDemand(6, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.MuMW) != 6 {
		t.Fatal("schedule shape wrong")
	}
}
