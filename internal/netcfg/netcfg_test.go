package netcfg

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"flag"
	"math/big"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		flags   Flags
		wantErr string
	}{
		{name: "zero value"},
		{name: "token negotiated", flags: Flags{AuthToken: "s3cret"}},
		{name: "token explicit v2", flags: Flags{AuthToken: "s3cret", WireVersion: 2}},
		{name: "pinned v1", flags: Flags{WireVersion: 1}},
		{name: "cert and key", flags: Flags{TLSCert: "c.pem", TLSKey: "k.pem"}},
		{name: "ca alone", flags: Flags{TLSCA: "ca.pem"}},
		{name: "cert without key", flags: Flags{TLSCert: "c.pem"}, wantErr: "-tls-cert and -tls-key must be set together"},
		{name: "key without cert", flags: Flags{TLSKey: "k.pem"}, wantErr: "-tls-cert and -tls-key must be set together"},
		{name: "token over v1", flags: Flags{AuthToken: "s3cret", WireVersion: 1}, wantErr: "-auth-token requires wire version 2"},
		{name: "unknown version", flags: Flags{WireVersion: 3}, wantErr: "-wire-version 3"},
		{name: "negative version", flags: Flags{WireVersion: -1}, wantErr: "-wire-version -1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.flags.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestRegisterParsesIdentically drives the flag set the way the binaries
// do and checks the five flags land in the struct.
func TestRegisterParsesIdentically(t *testing.T) {
	var f Flags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.Register(fs)
	err := fs.Parse([]string{
		"-tls-cert", "cert.pem", "-tls-key", "key.pem", "-tls-ca", "ca.pem",
		"-auth-token", "s3cret", "-wire-version", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Flags{TLSCert: "cert.pem", TLSKey: "key.pem", TLSCA: "ca.pem", AuthToken: "s3cret", WireVersion: 2}
	if f != want {
		t.Fatalf("parsed %+v, want %+v", f, want)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

// writeTestPEMs generates a self-signed certificate pair on disk and
// returns the cert, key and CA paths (the cert is its own CA).
func writeTestPEMs(t *testing.T) (certPath, keyPath, caPath string) {
	t.Helper()
	dir := t.TempDir()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "ufc-netcfg-test"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		BasicConstraintsValid: true,
		DNSNames:              []string{"localhost"},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	certPath = filepath.Join(dir, "cert.pem")
	keyPath = filepath.Join(dir, "key.pem")
	certPEM := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
	if err := os.WriteFile(certPath, certPEM, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(keyPath, pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}), 0o600); err != nil {
		t.Fatal(err)
	}
	return certPath, keyPath, certPath
}

func TestServerSecurity(t *testing.T) {
	certPath, keyPath, caPath := writeTestPEMs(t)

	t.Run("plaintext", func(t *testing.T) {
		sec, err := (&Flags{AuthToken: "s3cret"}).ServerSecurity()
		if err != nil {
			t.Fatal(err)
		}
		if sec.TLS != nil || sec.AuthToken != "s3cret" {
			t.Fatalf("ServerSecurity() = %+v, want token only", sec)
		}
	})
	t.Run("tls", func(t *testing.T) {
		sec, err := (&Flags{TLSCert: certPath, TLSKey: keyPath}).ServerSecurity()
		if err != nil {
			t.Fatal(err)
		}
		if sec.TLS == nil || len(sec.TLS.Certificates) != 1 || sec.TLS.ClientAuth != tls.NoClientCert {
			t.Fatalf("ServerSecurity() TLS = %+v, want serving cert without client auth", sec.TLS)
		}
	})
	t.Run("mutual tls", func(t *testing.T) {
		sec, err := (&Flags{TLSCert: certPath, TLSKey: keyPath, TLSCA: caPath}).ServerSecurity()
		if err != nil {
			t.Fatal(err)
		}
		if sec.TLS == nil || sec.TLS.ClientAuth != tls.RequireAndVerifyClientCert || sec.TLS.ClientCAs == nil {
			t.Fatalf("ServerSecurity() TLS = %+v, want mutual TLS", sec.TLS)
		}
	})
	t.Run("ca without serving cert", func(t *testing.T) {
		if _, err := (&Flags{TLSCA: caPath}).ServerSecurity(); err == nil {
			t.Fatal("ServerSecurity() accepted a TLS listener without a certificate")
		}
	})
	t.Run("missing files", func(t *testing.T) {
		if _, err := (&Flags{TLSCert: "nope.pem", TLSKey: "nope.pem"}).ServerSecurity(); err == nil {
			t.Fatal("ServerSecurity() accepted missing certificate files")
		}
	})
}

func TestClientSecurity(t *testing.T) {
	certPath, keyPath, caPath := writeTestPEMs(t)

	t.Run("plaintext", func(t *testing.T) {
		sec, err := (&Flags{}).ClientSecurity()
		if err != nil {
			t.Fatal(err)
		}
		if sec.TLS != nil {
			t.Fatalf("ClientSecurity() = %+v, want zero value", sec)
		}
	})
	t.Run("ca only", func(t *testing.T) {
		sec, err := (&Flags{TLSCA: caPath}).ClientSecurity()
		if err != nil {
			t.Fatal(err)
		}
		if sec.TLS == nil || sec.TLS.RootCAs == nil || len(sec.TLS.Certificates) != 0 {
			t.Fatalf("ClientSecurity() TLS = %+v, want root pool only", sec.TLS)
		}
	})
	t.Run("mutual tls", func(t *testing.T) {
		sec, err := (&Flags{TLSCert: certPath, TLSKey: keyPath, TLSCA: caPath, AuthToken: "s3cret"}).ClientSecurity()
		if err != nil {
			t.Fatal(err)
		}
		if sec.TLS == nil || sec.TLS.RootCAs == nil || len(sec.TLS.Certificates) != 1 || sec.AuthToken != "s3cret" {
			t.Fatalf("ClientSecurity() = %+v, want client cert + root pool + token", sec)
		}
	})
	t.Run("garbage ca", func(t *testing.T) {
		bad := filepath.Join(t.TempDir(), "ca.pem")
		if err := os.WriteFile(bad, []byte("not pem"), 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := (&Flags{TLSCA: bad}).ClientSecurity(); err == nil {
			t.Fatal("ClientSecurity() accepted a CA bundle with no certificates")
		}
	})
}
