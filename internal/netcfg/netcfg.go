// Package netcfg is the shared transport-security flag surface of the
// ufc binaries. Every binary that touches the wire — ufcnode, ufchub,
// ufcload, ufcsim — registers the same five flags (-tls-cert, -tls-key,
// -tls-ca, -auth-token, -wire-version) through this package and resolves
// them into a distsim.SecurityConfig the same way, so the cmd/ flag
// surfaces cannot drift apart.
//
// The flags compose into the two sides of the transport:
//
//	ServerSecurity — for listeners (ufchub): -tls-cert/-tls-key is the
//	    serving certificate; -tls-ca additionally demands and verifies a
//	    client certificate (mutual TLS).
//	ClientSecurity — for dialers (ufcnode, ufcload, sub-hub parent
//	    links): -tls-ca is the root pool the server is verified against;
//	    -tls-cert/-tls-key is the client certificate presented when the
//	    server demands one.
//
// -auth-token rides in the v2 handshake on both sides, and -wire-version
// pins the protocol version (0 = negotiate).
package netcfg

import (
	"crypto/tls"
	"crypto/x509"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/distsim"
)

// Flags is the parsed transport-security flag block.
type Flags struct {
	// TLSCert and TLSKey are the PEM certificate/key pair presented to
	// peers. Both or neither.
	TLSCert string
	TLSKey  string
	// TLSCA is a PEM CA bundle: dialers verify the server against it,
	// listeners demand and verify client certificates against it
	// (mutual TLS).
	TLSCA string
	// AuthToken is the shared secret carried in the v2 handshake.
	AuthToken string
	// WireVersion pins the wire protocol (0 = negotiate, 1, 2).
	WireVersion int
}

// Register installs the five transport-security flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.TLSCert, "tls-cert", "", "PEM certificate presented to peers (requires -tls-key)")
	fs.StringVar(&f.TLSKey, "tls-key", "", "PEM private key for -tls-cert")
	fs.StringVar(&f.TLSCA, "tls-ca", "", "PEM CA bundle: dialers verify the server against it; listeners require client certs signed by it (mutual TLS)")
	fs.StringVar(&f.AuthToken, "auth-token", "", "shared secret carried in the wire handshake (requires wire version 2)")
	fs.IntVar(&f.WireVersion, "wire-version", 0, "wire protocol version: 0 negotiate, 1 legacy plaintext framing, 2 versioned handshake")
}

// Validate checks the flag relations without touching the filesystem,
// so it is table-testable and runs before any file I/O error can mask a
// usage error.
func (f *Flags) Validate() error {
	if (f.TLSCert == "") != (f.TLSKey == "") {
		return errors.New("netcfg: -tls-cert and -tls-key must be set together")
	}
	if f.WireVersion < 0 || f.WireVersion > 2 {
		return fmt.Errorf("netcfg: -wire-version %d: must be 0 (negotiate), 1 or 2", f.WireVersion)
	}
	if f.AuthToken != "" && f.WireVersion == 1 {
		return errors.New("netcfg: -auth-token requires wire version 2; v1 framing cannot carry it")
	}
	return nil
}

// tlsRequested reports whether any TLS flag is set.
func (f *Flags) tlsRequested() bool {
	return f.TLSCert != "" || f.TLSKey != "" || f.TLSCA != ""
}

// loadCAPool reads the -tls-ca bundle.
func (f *Flags) loadCAPool() (*x509.CertPool, error) {
	pem, err := os.ReadFile(f.TLSCA)
	if err != nil {
		return nil, fmt.Errorf("netcfg: -tls-ca: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pem) {
		return nil, fmt.Errorf("netcfg: -tls-ca %s: no PEM certificates found", f.TLSCA)
	}
	return pool, nil
}

// ServerSecurity resolves the flags into a listener's SecurityConfig:
// the serving certificate, mutual-TLS client verification when a CA is
// given, and the token/version fields.
func (f *Flags) ServerSecurity() (distsim.SecurityConfig, error) {
	sec := distsim.SecurityConfig{AuthToken: f.AuthToken, WireVersion: f.WireVersion}
	if err := f.Validate(); err != nil {
		return sec, err
	}
	if !f.tlsRequested() {
		return sec, nil
	}
	if f.TLSCert == "" {
		return sec, errors.New("netcfg: a TLS listener needs -tls-cert and -tls-key")
	}
	cert, err := tls.LoadX509KeyPair(f.TLSCert, f.TLSKey)
	if err != nil {
		return sec, fmt.Errorf("netcfg: -tls-cert/-tls-key: %w", err)
	}
	cfg := &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS12}
	if f.TLSCA != "" {
		pool, err := f.loadCAPool()
		if err != nil {
			return sec, err
		}
		cfg.ClientCAs = pool
		cfg.ClientAuth = tls.RequireAndVerifyClientCert
	}
	sec.TLS = cfg
	return sec, nil
}

// ClientSecurity resolves the flags into a dialer's SecurityConfig: the
// CA pool the server is verified against, the optional client
// certificate, and the token/version fields.
func (f *Flags) ClientSecurity() (distsim.SecurityConfig, error) {
	sec := distsim.SecurityConfig{AuthToken: f.AuthToken, WireVersion: f.WireVersion}
	if err := f.Validate(); err != nil {
		return sec, err
	}
	if !f.tlsRequested() {
		return sec, nil
	}
	cfg := &tls.Config{MinVersion: tls.VersionTLS12}
	if f.TLSCA != "" {
		pool, err := f.loadCAPool()
		if err != nil {
			return sec, err
		}
		cfg.RootCAs = pool
	}
	if f.TLSCert != "" {
		cert, err := tls.LoadX509KeyPair(f.TLSCert, f.TLSKey)
		if err != nil {
			return sec, fmt.Errorf("netcfg: -tls-cert/-tls-key: %w", err)
		}
		cfg.Certificates = []tls.Certificate{cert}
	}
	sec.TLS = cfg
	return sec, nil
}
