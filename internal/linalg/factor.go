package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// ErrSingular is returned by LU when the input matrix is numerically singular.
var ErrSingular = errors.New("linalg: matrix is singular")

// Cholesky holds the lower-triangular factor L with A = L Lᵀ.
type Cholesky struct {
	l *Matrix
}

// NewCholesky factors the symmetric positive definite matrix a. Only the
// lower triangle of a is read.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	n := a.Rows()
	if n != a.Cols() {
		return nil, fmt.Errorf("cholesky of %dx%d matrix: %w", a.Rows(), a.Cols(), ErrDimensionMismatch)
	}
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("pivot %d is %g: %w", j, d, ErrNotPositiveDefinite)
		}
		dj := math.Sqrt(d)
		l.Set(j, j, dj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/dj)
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve returns x with A x = b.
func (c *Cholesky) Solve(b Vector) (Vector, error) {
	n := c.l.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("cholesky solve with %d-vector, want %d: %w", len(b), n, ErrDimensionMismatch)
	}
	// Forward substitution: L y = b.
	y := make(Vector, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= c.l.At(i, k) * y[k]
		}
		y[i] = s / c.l.At(i, i)
	}
	// Back substitution: Lᵀ x = y.
	x := make(Vector, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.At(k, i) * x[k]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x, nil
}

// LU holds a permuted LU factorization P A = L U with partial pivoting.
type LU struct {
	lu   *Matrix
	perm []int
}

// NewLU factors the square matrix a with partial pivoting.
func NewLU(a *Matrix) (*LU, error) {
	n := a.Rows()
	if n != a.Cols() {
		return nil, fmt.Errorf("lu of %dx%d matrix: %w", a.Rows(), a.Cols(), ErrDimensionMismatch)
	}
	lu := a.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < n; k++ {
		// Pivot selection.
		p, pmax := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > pmax {
				p, pmax = i, a
			}
		}
		if pmax == 0 || math.IsNaN(pmax) {
			return nil, fmt.Errorf("pivot column %d: %w", k, ErrSingular)
		}
		if p != k {
			perm[k], perm[p] = perm[p], perm[k]
			for j := 0; j < n; j++ {
				vk, vp := lu.At(k, j), lu.At(p, j)
				lu.Set(k, j, vp)
				lu.Set(p, j, vk)
			}
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pivot
			lu.Set(i, k, f)
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Adds(i, j, -f*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, perm: perm}, nil
}

// Solve returns x with A x = b.
func (f *LU) Solve(b Vector) (Vector, error) {
	n := f.lu.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("lu solve with %d-vector, want %d: %w", len(b), n, ErrDimensionMismatch)
	}
	// Apply permutation and forward-substitute through L (unit diagonal).
	y := make(Vector, n)
	for i := 0; i < n; i++ {
		s := b[f.perm[i]]
		for k := 0; k < i; k++ {
			s -= f.lu.At(i, k) * y[k]
		}
		y[i] = s
	}
	// Back-substitute through U.
	x := make(Vector, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= f.lu.At(i, k) * x[k]
		}
		x[i] = s / f.lu.At(i, i)
	}
	return x, nil
}

// SolvePD solves A x = b for a symmetric positive definite A, preferring
// Cholesky and falling back to LU with a tiny diagonal regularization when
// the matrix is only semidefinite up to rounding.
func SolvePD(a *Matrix, b Vector) (Vector, error) {
	if ch, err := NewCholesky(a); err == nil {
		return ch.Solve(b)
	}
	reg := a.Clone()
	eps := 1e-10 * (1 + a.MaxAbs())
	for i := 0; i < reg.Rows(); i++ {
		reg.Adds(i, i, eps)
	}
	ch, err := NewCholesky(reg)
	if err != nil {
		lu, luErr := NewLU(a)
		if luErr != nil {
			return nil, fmt.Errorf("solvePD: %w", err)
		}
		return lu.Solve(b)
	}
	return ch.Solve(b)
}
