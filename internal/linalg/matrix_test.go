package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatrixFromRows(t *testing.T) {
	m, err := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 2 || m.At(1, 0) != 3 {
		t.Fatalf("unexpected matrix %v", m)
	}
	if _, err := MatrixFromRows([][]float64{{1}, {2, 3}}); err == nil {
		t.Fatal("ragged rows should error")
	}
}

func TestIdentityMulVec(t *testing.T) {
	x := VectorOf(3, -1, 2)
	y := Identity(3).MulVec(x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("I*x = %v", y)
		}
	}
}

func TestMulVecAndTranspose(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := m.MulVec(VectorOf(1, 1, 1))
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
	z := m.MulTransVec(VectorOf(1, 1))
	want := VectorOf(5, 7, 9)
	for i := range z {
		if z[i] != want[i] {
			t.Fatalf("MulTransVec = %v, want %v", z, want)
		}
	}
	mt := m.Transpose()
	if mt.Rows() != 3 || mt.At(2, 1) != 6 {
		t.Fatalf("Transpose = %v", mt)
	}
}

func TestMatMul(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := MatrixFromRows([][]float64{{0, 1}, {1, 0}})
	c := a.Mul(b)
	want := [][]float64{{2, 1}, {4, 3}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul = \n%v", c)
			}
		}
	}
}

func TestSymmetrize(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2}, {4, 3}})
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Fatalf("Symmetrize = \n%v", m)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := Identity(2)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliased data")
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		// Build SPD A = Bᵀ B + I.
		b := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b.Set(i, j, rng.NormFloat64())
			}
		}
		a := b.Transpose().Mul(b)
		for i := 0; i < n; i++ {
			a.Adds(i, i, 1)
		}
		x := make(Vector, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		rhs := a.MulVec(x)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := ch.Solve(rhs)
		if err != nil {
			t.Fatalf("trial %d solve: %v", trial, err)
		}
		if d := got.Sub(x).NormInf(); d > 1e-8 {
			t.Fatalf("trial %d: residual %g", trial, d)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
}

func TestLURoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		// Boost the diagonal to keep it comfortably nonsingular.
		for i := 0; i < n; i++ {
			a.Adds(i, i, float64(n))
		}
		x := make(Vector, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		rhs := a.MulVec(x)
		lu, err := NewLU(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := lu.Solve(rhs)
		if err != nil {
			t.Fatalf("trial %d solve: %v", trial, err)
		}
		if d := got.Sub(x).NormInf(); d > 1e-7 {
			t.Fatalf("trial %d: residual %g", trial, d)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := NewLU(a); err == nil {
		t.Fatal("singular matrix accepted")
	}
}

func TestLUNeedsPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a, _ := MatrixFromRows([][]float64{{0, 1}, {1, 0}})
	lu, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := lu.Solve(VectorOf(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 3, 1e-12) || !almostEq(x[1], 2, 1e-12) {
		t.Fatalf("solve = %v", x)
	}
}

func TestSolvePD(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{4, 1}, {1, 3}})
	x, err := SolvePD(a, VectorOf(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	r := a.MulVec(x).Sub(VectorOf(1, 2))
	if r.NormInf() > 1e-10 {
		t.Fatalf("residual %v", r)
	}
}

func TestSolvePDSemidefiniteFallback(t *testing.T) {
	// Rank-deficient PSD matrix; the regularized path should still produce
	// a least-squares-ish solution with small residual against a consistent
	// right-hand side.
	a, _ := MatrixFromRows([][]float64{{1, 1}, {1, 1}})
	x, err := SolvePD(a, VectorOf(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	r := a.MulVec(x).Sub(VectorOf(2, 2))
	if r.NormInf() > 1e-4 {
		t.Fatalf("residual %v too large", r)
	}
	if math.IsNaN(x[0]) {
		t.Fatal("NaN solution")
	}
}

func TestMatrixRowViewAndAddScaled(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	row := m.Row(1)
	if row[0] != 3 || row[1] != 4 {
		t.Fatalf("Row = %v", row)
	}
	row[0] = 9 // views alias the matrix by contract
	if m.At(1, 0) != 9 {
		t.Fatal("Row should be a view, not a copy")
	}
	other := Identity(2)
	m.AddScaled(2, other)
	if m.At(0, 0) != 3 || m.At(1, 1) != 6 {
		t.Fatalf("AddScaled = \n%v", m)
	}
	if s := m.String(); len(s) == 0 {
		t.Fatal("String empty")
	}
}

func TestNewMatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative dimensions accepted")
		}
	}()
	NewMatrix(-1, 2)
}

func TestSolvePDFallsBackToLU(t *testing.T) {
	// Symmetric indefinite: Cholesky fails (even regularized), LU succeeds.
	a, _ := MatrixFromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolvePD(a, VectorOf(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	r := a.MulVec(x).Sub(VectorOf(3, 5))
	if r.NormInf() > 1e-8 {
		t.Fatalf("residual %v", r)
	}
}
