// Package linalg provides the small dense linear-algebra substrate used by
// the optimization layers: vectors, matrices, Cholesky and LU factorizations
// and triangular solves. It is written against float64 and the standard
// library only; the problem sizes in this repository are small (tens to a
// few hundred unknowns), so the implementations favour clarity and numerical
// robustness over blocking or SIMD tricks.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when operands have incompatible shapes.
var ErrDimensionMismatch = errors.New("linalg: dimension mismatch")

// Vector is a dense column vector backed by a float64 slice.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// VectorOf returns a vector holding a copy of the given values.
func VectorOf(values ...float64) Vector {
	v := make(Vector, len(values))
	copy(v, values)
	return v
}

// Constant returns a length-n vector with every entry set to c.
func Constant(n int, c float64) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = c
	}
	return v
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Len returns the number of entries.
func (v Vector) Len() int { return len(v) }

// CopyFrom overwrites v with the contents of src.
func (v Vector) CopyFrom(src Vector) error {
	if len(v) != len(src) {
		return fmt.Errorf("copy %d into %d entries: %w", len(src), len(v), ErrDimensionMismatch)
	}
	copy(v, src)
	return nil
}

// Fill sets every entry of v to c.
func (v Vector) Fill(c float64) {
	for i := range v {
		v[i] = c
	}
}

// Dot returns the inner product <v, w>. It panics on mismatched lengths
// because that is always a programming error at this layer.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Dot of %d- and %d-vectors", len(v), len(w)))
	}
	var sum float64
	for i, x := range v {
		sum += x * w[i]
	}
	return sum
}

// Sum returns the sum of all entries.
func (v Vector) Sum() float64 {
	var sum float64
	for _, x := range v {
		sum += x
	}
	return sum
}

// Norm2 returns the Euclidean norm, guarding against overflow by scaling.
func (v Vector) Norm2() float64 {
	var scale, ssq float64
	ssq = 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute entry (0 for the empty vector).
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// AddScaled sets v = v + alpha*w in place.
func (v Vector) AddScaled(alpha float64, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: AddScaled of %d- and %d-vectors", len(v), len(w)))
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
}

// Scale multiplies every entry of v by alpha in place.
func (v Vector) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Sub returns v - w as a new vector.
func (v Vector) Sub(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Sub of %d- and %d-vectors", len(v), len(w)))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Add returns v + w as a new vector.
func (v Vector) Add(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Add of %d- and %d-vectors", len(v), len(w)))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Max returns the maximum entry; it panics on the empty vector.
func (v Vector) Max() float64 {
	if len(v) == 0 {
		panic("linalg: Max of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum entry; it panics on the empty vector.
func (v Vector) Min() float64 {
	if len(v) == 0 {
		panic("linalg: Min of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// AllFinite reports whether every entry is finite (no NaN or Inf).
func (v Vector) AllFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
