package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestVectorOfClones(t *testing.T) {
	src := []float64{1, 2, 3}
	v := VectorOf(src...)
	src[0] = 99
	if v[0] != 1 {
		t.Fatalf("VectorOf aliased its input: %v", v)
	}
	c := v.Clone()
	c[1] = -5
	if v[1] != 2 {
		t.Fatalf("Clone aliased the vector: %v", v)
	}
}

func TestConstantAndFill(t *testing.T) {
	v := Constant(4, 2.5)
	for i, x := range v {
		if x != 2.5 {
			t.Fatalf("Constant[%d] = %g", i, x)
		}
	}
	v.Fill(-1)
	if v.Sum() != -4 {
		t.Fatalf("Fill then Sum = %g, want -4", v.Sum())
	}
}

func TestDotSumNorms(t *testing.T) {
	v := VectorOf(3, -4)
	if got := v.Dot(VectorOf(2, 1)); got != 2 {
		t.Errorf("Dot = %g, want 2", got)
	}
	if got := v.Sum(); got != -1 {
		t.Errorf("Sum = %g, want -1", got)
	}
	if got := v.Norm2(); !almostEq(got, 5, 1e-12) {
		t.Errorf("Norm2 = %g, want 5", got)
	}
	if got := v.NormInf(); got != 4 {
		t.Errorf("NormInf = %g, want 4", got)
	}
}

func TestNorm2OverflowGuard(t *testing.T) {
	v := VectorOf(1e200, 1e200)
	want := 1e200 * math.Sqrt2
	if got := v.Norm2(); !almostEq(got, want, 1e-12) {
		t.Fatalf("Norm2 = %g, want %g", got, want)
	}
}

func TestNorm2Empty(t *testing.T) {
	if got := NewVector(0).Norm2(); got != 0 {
		t.Fatalf("Norm2 of empty = %g", got)
	}
}

func TestAddScaledSubAdd(t *testing.T) {
	v := VectorOf(1, 2, 3)
	v.AddScaled(2, VectorOf(1, 1, 1))
	want := VectorOf(3, 4, 5)
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("AddScaled = %v, want %v", v, want)
		}
	}
	d := v.Sub(VectorOf(1, 1, 1))
	s := d.Add(VectorOf(1, 1, 1))
	for i := range s {
		if s[i] != v[i] {
			t.Fatalf("Sub/Add roundtrip = %v, want %v", s, v)
		}
	}
}

func TestMinMax(t *testing.T) {
	v := VectorOf(3, -1, 7, 2)
	if v.Max() != 7 || v.Min() != -1 {
		t.Fatalf("Max/Min = %g/%g", v.Max(), v.Min())
	}
}

func TestCopyFromMismatch(t *testing.T) {
	v := NewVector(3)
	if err := v.CopyFrom(NewVector(2)); err == nil {
		t.Fatal("CopyFrom with mismatched length should error")
	}
	if err := v.CopyFrom(VectorOf(1, 2, 3)); err != nil {
		t.Fatalf("CopyFrom: %v", err)
	}
	if v[2] != 3 {
		t.Fatalf("CopyFrom content = %v", v)
	}
}

func TestAllFinite(t *testing.T) {
	if !VectorOf(1, 2).AllFinite() {
		t.Error("finite vector reported non-finite")
	}
	if VectorOf(1, math.NaN()).AllFinite() {
		t.Error("NaN vector reported finite")
	}
	if VectorOf(math.Inf(1)).AllFinite() {
		t.Error("Inf vector reported finite")
	}
}

// Property: the Cauchy-Schwarz inequality |<v,w>| <= |v||w| holds.
func TestPropCauchySchwarz(t *testing.T) {
	f := func(a, b, c, d, e, g float64) bool {
		for _, x := range []float64{a, b, c, d, e, g} {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological inputs
			}
		}
		v, w := VectorOf(a, b, c), VectorOf(d, e, g)
		lhs := math.Abs(v.Dot(w))
		rhs := v.Norm2() * w.Norm2()
		return lhs <= rhs*(1+1e-10)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality for Norm2.
func TestPropTriangleInequality(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		for _, x := range []float64{a, b, c, d} {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		v, w := VectorOf(a, b), VectorOf(c, d)
		return v.Add(w).Norm2() <= v.Norm2()+w.Norm2()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLenScaleAddScaledEdge(t *testing.T) {
	v := VectorOf(1, 2, 3)
	if v.Len() != 3 {
		t.Fatalf("Len = %d", v.Len())
	}
	v.Scale(2)
	if v[2] != 6 {
		t.Fatalf("Scale = %v", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddScaled length mismatch accepted")
		}
	}()
	v.AddScaled(1, VectorOf(1))
}
