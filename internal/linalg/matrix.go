package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero rows-by-cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: NewMatrix(%d, %d)", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from row slices; all rows must have equal
// length. The data is copied.
func MatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("row %d has %d entries, want %d: %w", i, len(r), cols, ErrDimensionMismatch)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the (i, j) entry.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the (i, j) entry.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Adds adds v to the (i, j) entry.
func (m *Matrix) Adds(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Row returns a view of row i (not a copy).
func (m *Matrix) Row(i int) Vector { return Vector(m.data[i*m.cols : (i+1)*m.cols]) }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// MulVec returns m * x.
func (m *Matrix) MulVec(x Vector) Vector {
	if len(x) != m.cols {
		panic(fmt.Sprintf("linalg: MulVec %dx%d by %d-vector", m.rows, m.cols, len(x)))
	}
	out := make(Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var sum float64
		for j, a := range row {
			sum += a * x[j]
		}
		out[i] = sum
	}
	return out
}

// MulTransVec returns mᵀ * x.
func (m *Matrix) MulTransVec(x Vector) Vector {
	if len(x) != m.rows {
		panic(fmt.Sprintf("linalg: MulTransVec %dx%d by %d-vector", m.rows, m.cols, len(x)))
	}
	out := make(Vector, m.cols)
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, a := range row {
			out[j] += a * xi
		}
	}
	return out
}

// Mul returns m * other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.cols != other.rows {
		panic(fmt.Sprintf("linalg: Mul %dx%d by %dx%d", m.rows, m.cols, other.rows, other.cols))
	}
	out := NewMatrix(m.rows, other.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < other.cols; j++ {
				out.Adds(i, j, a*other.At(k, j))
			}
		}
	}
	return out
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// AddScaled sets m = m + alpha*other in place.
func (m *Matrix) AddScaled(alpha float64, other *Matrix) {
	if m.rows != other.rows || m.cols != other.cols {
		panic(fmt.Sprintf("linalg: AddScaled %dx%d and %dx%d", m.rows, m.cols, other.rows, other.cols))
	}
	for i := range m.data {
		m.data[i] += alpha * other.data[i]
	}
}

// Symmetrize replaces m with (m + mᵀ)/2; m must be square.
func (m *Matrix) Symmetrize() {
	if m.rows != m.cols {
		panic("linalg: Symmetrize of non-square matrix")
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			avg := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, avg)
			m.Set(j, i, avg)
		}
	}
}

// MaxAbs returns the largest absolute entry (0 for empty matrices).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "% .6g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
