package qp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func TestProjectSimplexAlreadyFeasible(t *testing.T) {
	v := linalg.VectorOf(0.2, 0.3, 0.5)
	p := ProjectSimplex(v, 1)
	for i := range v {
		if math.Abs(p[i]-v[i]) > 1e-12 {
			t.Fatalf("feasible point moved: %v -> %v", v, p)
		}
	}
}

func TestProjectSimplexKnown(t *testing.T) {
	// Projection of (1,0) onto sum=1 simplex is itself; of (2,0) is (1.5,.5)
	// clipped -> actually (1.5, 0.5) has sum 2... compute: theta=(2-1)/1? Let
	// us verify against the definition with a tiny grid search instead.
	v := linalg.VectorOf(2, 0)
	p := ProjectSimplex(v, 1)
	best := math.Inf(1)
	var bx, by float64
	for x := 0.0; x <= 1.0001; x += 0.0005 {
		y := 1 - x
		d := (x-2)*(x-2) + y*y
		if d < best {
			best, bx, by = d, x, y
		}
	}
	if math.Abs(p[0]-bx) > 1e-3 || math.Abs(p[1]-by) > 1e-3 {
		t.Fatalf("projection %v, grid says (%g, %g)", p, bx, by)
	}
}

func TestProjectSimplexZeroTotal(t *testing.T) {
	p := ProjectSimplex(linalg.VectorOf(1, 2, 3), 0)
	if p.Sum() != 0 || p.Min() != 0 {
		t.Fatalf("zero-total projection = %v", p)
	}
}

// Properties: feasibility and idempotence.
func TestPropProjectSimplexFeasibleIdempotent(t *testing.T) {
	f := func(a, b, c, d float64, scale uint8) bool {
		for _, x := range []float64{a, b, c, d} {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e8 {
				return true
			}
		}
		total := 1 + float64(scale%100)
		v := linalg.VectorOf(a, b, c, d)
		p := ProjectSimplex(v, total)
		if p.Min() < 0 {
			return false
		}
		if math.Abs(p.Sum()-total) > 1e-6*(1+total) {
			return false
		}
		q := ProjectSimplex(p, total)
		return q.Sub(p).NormInf() < 1e-9*(1+total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: projection is the nearest feasible point (vs random candidates).
func TestPropProjectSimplexOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		v := linalg.NewVector(n)
		for i := range v {
			v[i] = rng.NormFloat64() * 5
		}
		total := rng.Float64()*10 + 0.1
		p := ProjectSimplex(v, total)
		dp := p.Sub(v).Norm2()
		for k := 0; k < 20; k++ {
			// Random feasible candidate via projection of random point.
			cand := linalg.NewVector(n)
			for i := range cand {
				cand[i] = rng.Float64()
			}
			cand = ProjectSimplex(cand, total)
			if cand.Sub(v).Norm2() < dp-1e-7 {
				t.Fatalf("trial %d: candidate closer than projection", trial)
			}
		}
	}
}

func TestProjectCappedSimplex(t *testing.T) {
	v := linalg.VectorOf(5, 5, 5)
	caps := linalg.VectorOf(1, 2, 10)
	p := ProjectCappedSimplex(v, caps, 6)
	if p == nil {
		t.Fatal("feasible problem returned nil")
	}
	if math.Abs(p.Sum()-6) > 1e-6 {
		t.Fatalf("sum = %g", p.Sum())
	}
	for i := range p {
		if p[i] < -1e-9 || p[i] > caps[i]+1e-9 {
			t.Fatalf("entry %d = %g out of [0, %g]", i, p[i], caps[i])
		}
	}
}

func TestProjectCappedSimplexInfeasible(t *testing.T) {
	if p := ProjectCappedSimplex(linalg.VectorOf(1, 1), linalg.VectorOf(1, 1), 3); p != nil {
		t.Fatalf("infeasible set produced %v", p)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 3, 3}, {-1, 0, 3, 0}, {2, 0, 3, 2},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%g, %g, %g) = %g, want %g", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

func TestMinimizeConvex1D(t *testing.T) {
	// min (x-3)^2 on [0, 10].
	x := MinimizeConvex1D(func(x float64) float64 { return 2 * (x - 3) }, 0, 10, 1e-10)
	if math.Abs(x-3) > 1e-6 {
		t.Fatalf("x = %g, want 3", x)
	}
	// Minimum at left edge.
	x = MinimizeConvex1D(func(x float64) float64 { return 1 }, 2, 10, 1e-10)
	if x != 2 {
		t.Fatalf("x = %g, want 2", x)
	}
	// Minimum at right edge.
	x = MinimizeConvex1D(func(x float64) float64 { return -1 }, 2, 10, 1e-10)
	if x != 10 {
		t.Fatalf("x = %g, want 10", x)
	}
	// Unbounded above bracket growth.
	x = MinimizeConvex1D(func(x float64) float64 { return 2 * (x - 1000) }, 0, math.Inf(1), 1e-9)
	if math.Abs(x-1000) > 1e-3 {
		t.Fatalf("x = %g, want 1000", x)
	}
}

func TestGoldenSection(t *testing.T) {
	x := GoldenSection(func(x float64) float64 { return (x - 2.5) * (x - 2.5) }, 0, 10, 1e-10)
	if math.Abs(x-2.5) > 1e-6 {
		t.Fatalf("x = %g, want 2.5", x)
	}
}
