// Package qp provides the convex-optimization substrate for the UFC solver:
// a dense primal active-set solver for strictly convex quadratic programs,
// an exact Euclidean projection onto the (scaled) simplex, and 1-D convex
// minimizers. The ADMM sub-problems in the paper (λ- and a-minimizations,
// §III-C) are small strictly convex QPs over simplex-like sets, which is
// exactly what this package solves.
package qp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Solver-level errors.
var (
	// ErrInfeasible is returned when no feasible point can be constructed.
	ErrInfeasible = errors.New("qp: problem is infeasible")
	// ErrMaxIterations is returned when the active-set loop fails to
	// terminate within the iteration budget.
	ErrMaxIterations = errors.New("qp: iteration limit exceeded")
	// ErrNotConvex is returned when the Hessian is not positive definite
	// on the feasible subspace.
	ErrNotConvex = errors.New("qp: Hessian is not positive definite")
)

// Problem describes the strictly convex quadratic program
//
//	min  ½ xᵀ H x + cᵀ x
//	s.t. Aeq x = beq
//	     Ain x ≤ bin
//	     x ≥ lower  (entrywise, may be -Inf)
//	     x ≤ upper  (entrywise, may be +Inf)
//
// H must be symmetric positive definite. Lower/Upper may be nil, meaning
// unbounded. Start may be nil; the solver then attempts to construct a
// feasible point itself (it understands the simplex-like structures used in
// this repository and falls back to a least-squares phase-1).
type Problem struct {
	H     *linalg.Matrix
	C     linalg.Vector
	Aeq   *linalg.Matrix
	Beq   linalg.Vector
	Ain   *linalg.Matrix
	Bin   linalg.Vector
	Lower linalg.Vector
	Upper linalg.Vector
	Start linalg.Vector
}

// Result holds the solver output.
type Result struct {
	X          linalg.Vector
	Objective  float64
	Iterations int
}

// Options tunes the active-set solver.
type Options struct {
	MaxIterations int     // default 100 + 10n
	Tolerance     float64 // default 1e-9 (feasibility / multiplier tolerance)
}

func (o Options) withDefaults(n int) Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 200 + 20*n
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-9
	}
	return o
}

// constraint is an internal normalized inequality aᵀx ≤ b.
type constraint struct {
	a linalg.Vector
	b float64
}

// Solve runs the primal active-set method on the problem.
func Solve(p *Problem, opts Options) (*Result, error) {
	n := p.C.Len()
	if p.H.Rows() != n || p.H.Cols() != n {
		return nil, fmt.Errorf("qp: H is %dx%d for %d variables: %w",
			p.H.Rows(), p.H.Cols(), n, linalg.ErrDimensionMismatch)
	}
	opts = opts.withDefaults(n)
	p = promoteFixedBounds(p, n)

	ineqs := gatherInequalities(p, n)
	x, err := feasibleStart(p, ineqs, opts.Tolerance)
	if err != nil {
		return nil, err
	}

	// Working set: indices into ineqs currently treated as equalities.
	active := make([]bool, len(ineqs))
	for k, con := range ineqs {
		if math.Abs(con.a.Dot(x)-con.b) <= opts.Tolerance*(1+math.Abs(con.b)) {
			active[k] = true
		}
	}

	for iter := 1; iter <= opts.MaxIterations; iter++ {
		g := p.H.MulVec(x)
		g.AddScaled(1, p.C)

		step, ineqMult, err := equalityStep(p, ineqs, active, g, n)
		if err != nil {
			return nil, err
		}

		if step.NormInf() <= opts.Tolerance {
			// Stationary on the working set: check inequality multipliers.
			worst, worstIdx := 0.0, -1
			for k, lam := range ineqMult {
				if !active[k] {
					continue
				}
				if lam < worst {
					worst, worstIdx = lam, k
				}
			}
			if worstIdx < 0 || worst >= -opts.Tolerance {
				return &Result{X: x, Objective: Objective(p, x), Iterations: iter}, nil
			}
			active[worstIdx] = false
			continue
		}

		// Line search toward x+step, blocking on inactive inequalities.
		alpha, blocking := 1.0, -1
		for k, con := range ineqs {
			if active[k] {
				continue
			}
			ad := con.a.Dot(step)
			if ad <= opts.Tolerance {
				continue // moving away from or parallel to the constraint
			}
			slack := con.b - con.a.Dot(x)
			if slack < 0 {
				slack = 0
			}
			if a := slack / ad; a < alpha {
				alpha, blocking = a, k
			}
		}
		x.AddScaled(alpha, step)
		if blocking >= 0 {
			active[blocking] = true
		}
	}
	return nil, fmt.Errorf("after %d iterations: %w", opts.MaxIterations, ErrMaxIterations)
}

// Objective evaluates ½xᵀHx + cᵀx.
func Objective(p *Problem, x linalg.Vector) float64 {
	return 0.5*x.Dot(p.H.MulVec(x)) + p.C.Dot(x)
}

// promoteFixedBounds rewrites variables with Lower[j] == Upper[j] as
// equality rows. Leaving them as a pair of opposing inequalities makes the
// active set degenerate (both constraints are always active) and can cycle
// the solver. Returns p unchanged when there is nothing to promote.
func promoteFixedBounds(p *Problem, n int) *Problem {
	if p.Lower == nil || p.Upper == nil {
		return p
	}
	var fixed []int
	for j := 0; j < n; j++ {
		if p.Lower[j] == p.Upper[j] && !math.IsInf(p.Lower[j], 0) {
			fixed = append(fixed, j)
		}
	}
	if len(fixed) == 0 {
		return p
	}
	meq := 0
	if p.Aeq != nil {
		meq = p.Aeq.Rows()
	}
	aeq := linalg.NewMatrix(meq+len(fixed), n)
	beq := linalg.NewVector(meq + len(fixed))
	for i := 0; i < meq; i++ {
		for j := 0; j < n; j++ {
			aeq.Set(i, j, p.Aeq.At(i, j))
		}
		beq[i] = p.Beq[i]
	}
	lower := p.Lower.Clone()
	upper := p.Upper.Clone()
	for k, j := range fixed {
		aeq.Set(meq+k, j, 1)
		beq[meq+k] = p.Lower[j]
		lower[j] = math.Inf(-1)
		upper[j] = math.Inf(1)
	}
	out := *p
	out.Aeq, out.Beq, out.Lower, out.Upper = aeq, beq, lower, upper
	return &out
}

// gatherInequalities normalizes Ain/bounds into a single list of aᵀx ≤ b.
func gatherInequalities(p *Problem, n int) []constraint {
	var cons []constraint
	if p.Ain != nil {
		for i := 0; i < p.Ain.Rows(); i++ {
			cons = append(cons, constraint{a: p.Ain.Row(i).Clone(), b: p.Bin[i]})
		}
	}
	if p.Lower != nil {
		for j := 0; j < n; j++ {
			if math.IsInf(p.Lower[j], -1) {
				continue
			}
			a := linalg.NewVector(n)
			a[j] = -1
			cons = append(cons, constraint{a: a, b: -p.Lower[j]})
		}
	}
	if p.Upper != nil {
		for j := 0; j < n; j++ {
			if math.IsInf(p.Upper[j], 1) {
				continue
			}
			a := linalg.NewVector(n)
			a[j] = 1
			cons = append(cons, constraint{a: a, b: p.Upper[j]})
		}
	}
	return cons
}

// equalityStep solves the equality-constrained QP for the step direction:
//
//	min ½ pᵀHp + gᵀp   s.t.  Aeq p = req,  a_kᵀ p = 0 for active k,
//
// where req restores any equality residual. It returns the step and the
// multipliers of the active inequality constraints (indexed like ineqs;
// entries for inactive constraints are 0).
func equalityStep(
	p *Problem,
	ineqs []constraint,
	active []bool,
	g linalg.Vector,
	n int,
) (linalg.Vector, []float64, error) {
	meq := 0
	if p.Aeq != nil {
		meq = p.Aeq.Rows()
	}
	var act []int
	for k, on := range active {
		if on {
			act = append(act, k)
		}
	}
	m := meq + len(act)

	// KKT system: [H  Aᵀ; A  0] [p; y] = [-g; r].
	kkt := linalg.NewMatrix(n+m, n+m)
	rhs := linalg.NewVector(n + m)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			kkt.Set(i, j, p.H.At(i, j))
		}
		rhs[i] = -g[i]
	}
	row := n
	if p.Aeq != nil {
		for i := 0; i < meq; i++ {
			for j := 0; j < n; j++ {
				v := p.Aeq.At(i, j)
				kkt.Set(row, j, v)
				kkt.Set(j, row, v)
			}
			// Current equality residual must stay zero (the start is feasible),
			// but keep the restoration term for numerical drift.
			rhs[row] = 0
			row++
		}
	}
	for _, k := range act {
		for j := 0; j < n; j++ {
			v := ineqs[k].a[j]
			kkt.Set(row, j, v)
			kkt.Set(j, row, v)
		}
		rhs[row] = 0
		row++
	}

	lu, err := linalg.NewLU(kkt)
	if err != nil {
		// A redundant active set makes the KKT matrix singular. Regularize
		// the dual block slightly; this perturbs multipliers by O(1e-10).
		reg := kkt.Clone()
		for i := n; i < n+m; i++ {
			reg.Adds(i, i, -1e-10)
		}
		lu, err = linalg.NewLU(reg)
		if err != nil {
			return nil, nil, fmt.Errorf("KKT solve: %w", ErrNotConvex)
		}
	}
	sol, err := lu.Solve(rhs)
	if err != nil {
		return nil, nil, fmt.Errorf("KKT solve: %w", err)
	}

	step := sol[:n].Clone()
	mult := make([]float64, len(ineqs))
	for idx, k := range act {
		mult[k] = sol[n+meq+idx]
	}
	return step, mult, nil
}

// feasibleStart returns a point satisfying all constraints. It uses the
// caller-provided start when feasible, then tries simple heuristics, then a
// phase-1 least-squares repair.
func feasibleStart(p *Problem, ineqs []constraint, tol float64) (linalg.Vector, error) {
	n := p.C.Len()
	if p.Start != nil {
		x := p.Start.Clone()
		if isFeasible(p, ineqs, x, tol) {
			return x, nil
		}
	}
	// Heuristic 1: zero vector.
	x := linalg.NewVector(n)
	clampToBounds(p, x)
	if isFeasible(p, ineqs, x, tol) {
		return x, nil
	}
	// Heuristic 2: least-squares solution of the equalities, clamped, then
	// scaled back if it violates inequality rows with nonnegative normals.
	if p.Aeq != nil && p.Aeq.Rows() > 0 {
		if ls := equalityLeastSquares(p.Aeq, p.Beq); ls != nil {
			clampToBounds(p, ls)
			if isFeasible(p, ineqs, ls, tol) {
				return ls, nil
			}
		}
	}
	return nil, ErrInfeasible
}

func clampToBounds(p *Problem, x linalg.Vector) {
	for j := range x {
		if p.Lower != nil && x[j] < p.Lower[j] {
			x[j] = p.Lower[j]
		}
		if p.Upper != nil && x[j] > p.Upper[j] {
			x[j] = p.Upper[j]
		}
	}
}

func isFeasible(p *Problem, ineqs []constraint, x linalg.Vector, tol float64) bool {
	if p.Aeq != nil {
		r := p.Aeq.MulVec(x).Sub(p.Beq)
		if r.NormInf() > tol*(1+p.Beq.NormInf()) {
			return false
		}
	}
	for _, con := range ineqs {
		if con.a.Dot(x) > con.b+tol*(1+math.Abs(con.b)) {
			return false
		}
	}
	return true
}

// equalityLeastSquares returns the minimum-norm solution of A x = b via the
// normal equations of Aᵀ (A Aᵀ) y = b, x = Aᵀ y. Returns nil on failure.
func equalityLeastSquares(a *linalg.Matrix, b linalg.Vector) linalg.Vector {
	aat := a.Mul(a.Transpose())
	for i := 0; i < aat.Rows(); i++ {
		aat.Adds(i, i, 1e-12)
	}
	y, err := linalg.SolvePD(aat, b)
	if err != nil {
		return nil
	}
	return a.MulTransVec(y)
}
