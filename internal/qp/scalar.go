package qp

import "math"

// MinimizeConvex1D minimizes a convex differentiable function on [lo, hi]
// given its derivative, by bisection on the derivative sign. hi may be
// +Inf, in which case the bracket is grown geometrically first. The result
// is accurate to roughly tol in the argument.
func MinimizeConvex1D(deriv func(float64) float64, lo, hi, tol float64) float64 {
	if tol <= 0 {
		tol = 1e-10
	}
	if deriv(lo) >= 0 {
		return lo // increasing from the left edge: minimum at lo
	}
	if math.IsInf(hi, 1) {
		// Grow the bracket until the derivative turns nonnegative.
		hi = math.Max(1, 2*math.Abs(lo))
		for i := 0; i < 200 && deriv(hi) < 0; i++ {
			hi *= 2
		}
	}
	if deriv(hi) <= 0 {
		return hi // still decreasing at the right edge: minimum at hi
	}
	for hi-lo > tol*(1+math.Abs(lo)+math.Abs(hi)) {
		mid := lo + (hi-lo)/2
		if deriv(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
		if mid == lo && mid == hi {
			break
		}
	}
	return lo + (hi-lo)/2
}

// GoldenSection minimizes a unimodal function on [lo, hi] without
// derivatives, to argument accuracy tol.
func GoldenSection(f func(float64) float64, lo, hi, tol float64) float64 {
	if tol <= 0 {
		tol = 1e-9
	}
	const invPhi = 0.6180339887498949
	a, b := lo, hi
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > tol*(1+math.Abs(a)+math.Abs(b)) {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return (a + b) / 2
}
