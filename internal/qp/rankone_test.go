package qp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// rankOneObjective evaluates ½ρ‖a‖² + ½ρκ(1ᵀa)² + cᵀa.
func rankOneObjective(rho, kappa float64, c, a linalg.Vector) float64 {
	s := a.Sum()
	return 0.5*rho*a.Dot(a) + 0.5*rho*kappa*s*s + c.Dot(a)
}

func TestRankOneMatchesActiveSet(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(12)
		rho := 0.01 + rng.Float64()*2
		kappa := rng.Float64() * 2
		cap := rng.Float64() * 20
		c := linalg.NewVector(m)
		for i := range c {
			c[i] = rng.NormFloat64() * 3
		}

		fast, err := SolveSumCappedRankOne(rho, kappa, c, cap)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Reference: dense active-set on the same QP.
		h := linalg.NewMatrix(m, m)
		for r := 0; r < m; r++ {
			for cc := 0; cc < m; cc++ {
				v := rho * kappa
				if r == cc {
					v += rho
				}
				h.Set(r, cc, v)
			}
		}
		ain := linalg.NewMatrix(1, m)
		for i := 0; i < m; i++ {
			ain.Set(0, i, 1)
		}
		ref, err := Solve(&Problem{
			H: h, C: c,
			Ain: ain, Bin: linalg.VectorOf(cap),
			Lower: linalg.NewVector(m),
			Upper: linalg.Constant(m, math.Inf(1)),
			Start: linalg.NewVector(m),
		}, Options{})
		if err != nil {
			t.Fatalf("trial %d reference: %v", trial, err)
		}

		objFast := rankOneObjective(rho, kappa, c, fast)
		objRef := rankOneObjective(rho, kappa, c, ref.X)
		if objFast > objRef+1e-7*(1+math.Abs(objRef)) {
			t.Fatalf("trial %d: fast obj %g worse than reference %g\nc=%v\nfast=%v\nref=%v",
				trial, objFast, objRef, c, fast, ref.X)
		}
		// Feasibility.
		if fast.Sum() > cap+1e-8*(1+cap) || fast.Min() < 0 {
			t.Fatalf("trial %d: infeasible fast solution sum=%g cap=%g min=%g",
				trial, fast.Sum(), cap, fast.Min())
		}
	}
}

func TestRankOneEdgeCases(t *testing.T) {
	// All costs positive → a = 0.
	a, err := SolveSumCappedRankOne(1, 1, linalg.VectorOf(1, 2, 3), 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sum() != 0 {
		t.Errorf("positive costs should give zero: %v", a)
	}
	// Strongly negative costs → cap binds.
	a, err = SolveSumCappedRankOne(1, 0.1, linalg.VectorOf(-100, -100), 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Sum()-2) > 1e-9 {
		t.Errorf("cap should bind: sum = %g", a.Sum())
	}
	// Zero cap.
	a, err = SolveSumCappedRankOne(1, 1, linalg.VectorOf(-1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != 0 {
		t.Errorf("zero cap: %v", a)
	}
	// Empty.
	if a, err = SolveSumCappedRankOne(1, 1, linalg.NewVector(0), 1); err != nil || a.Len() != 0 {
		t.Errorf("empty: %v %v", a, err)
	}
	// Bad rho.
	if _, err = SolveSumCappedRankOne(0, 1, linalg.VectorOf(1), 1); err == nil {
		t.Error("rho 0 accepted")
	}
}
