package qp

import (
	"sort"

	"repro/internal/linalg"
)

// ProjectSimplex returns the Euclidean projection of v onto the scaled
// simplex {x : x ≥ 0, Σx = total}. total must be nonnegative; a zero total
// projects everything to the origin. The classical O(n log n) sort-based
// algorithm (Held–Wolfe–Crowder) is used.
func ProjectSimplex(v linalg.Vector, total float64) linalg.Vector {
	out := linalg.NewVector(v.Len())
	ProjectSimplexInto(out, make([]float64, v.Len()), v, total)
	return out
}

// ProjectSimplexInto is the allocation-free form of ProjectSimplex: it
// writes the projection of v into dst using scratch (same length as v) as
// sort workspace. dst may alias v; scratch must alias neither. The float
// sequence produced is bit-identical to ProjectSimplex's.
func ProjectSimplexInto(dst, scratch, v []float64, total float64) {
	n := len(v)
	if n == 0 {
		return
	}
	if total <= 0 {
		for i := range dst[:n] {
			dst[i] = 0
		}
		return
	}
	copy(scratch, v)
	sorted := scratch[:n]
	sort.Float64s(sorted)

	// Find the largest k with sorted[k-1] - (cum(k) - total)/k > 0,
	// scanning the ascending sort from the top so the accumulation order
	// matches the descending-sort formulation exactly.
	var cum float64
	theta := 0.0
	for k := 1; k <= n; k++ {
		x := sorted[n-k]
		cum += x
		t := (cum - total) / float64(k)
		if x-t > 0 {
			theta = t
		}
	}
	for i, x := range v {
		if d := x - theta; d > 0 {
			dst[i] = d
		} else {
			dst[i] = 0
		}
	}
}

// ProjectCappedSimplex projects v onto {x : 0 ≤ x ≤ cap_i, Σx = total} via
// bisection on the shift θ in x_i = clamp(v_i − θ, 0, cap_i). It returns nil
// when the set is empty (Σcap < total).
func ProjectCappedSimplex(v, caps linalg.Vector, total float64) linalg.Vector {
	n := v.Len()
	if caps.Len() != n {
		panic("qp: ProjectCappedSimplex dimension mismatch")
	}
	var capSum float64
	for _, c := range caps {
		capSum += c
	}
	if total < 0 || capSum < total-1e-12 {
		return nil
	}
	sum := func(theta float64) float64 {
		var s float64
		for i, x := range v {
			s += Clamp(x-theta, 0, caps[i])
		}
		return s
	}
	lo, hi := v.Min()-total/float64(max(n, 1))-1, v.Max()+1
	for sum(lo) < total {
		lo -= 1 + (hi - lo)
	}
	for sum(hi) > total {
		hi += 1 + (hi - lo)
	}
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if sum(mid) > total {
			lo = mid
		} else {
			hi = mid
		}
	}
	theta := (lo + hi) / 2
	out := linalg.NewVector(n)
	for i, x := range v {
		out[i] = Clamp(x-theta, 0, caps[i])
	}
	// Repair tiny residual mass on an interior coordinate.
	if diff := total - out.Sum(); diff != 0 {
		for i := range out {
			adj := Clamp(out[i]+diff, 0, caps[i])
			diff -= adj - out[i]
			out[i] = adj
			if diff == 0 {
				break
			}
		}
	}
	return out
}

// Clamp restricts x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
