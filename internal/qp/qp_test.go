package qp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// refProjectedGradient solves the same QP with a slow projected-gradient
// method restricted to problems whose feasible set is a scaled simplex
// {x >= 0, 1ᵀx = total}. Used as an independent reference.
func refProjectedGradient(h *linalg.Matrix, c linalg.Vector, total float64) linalg.Vector {
	n := c.Len()
	x := linalg.Constant(n, total/float64(n))
	// Step size from a crude Lipschitz bound.
	lip := 0.0
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			rowSum += math.Abs(h.At(i, j))
		}
		if rowSum > lip {
			lip = rowSum
		}
	}
	step := 1 / (lip + 1e-9)
	for iter := 0; iter < 200000; iter++ {
		g := h.MulVec(x)
		g.AddScaled(1, c)
		y := x.Clone()
		y.AddScaled(-step, g)
		x = ProjectSimplex(y, total)
	}
	return x
}

func simplexProblem(h *linalg.Matrix, c linalg.Vector, total float64) *Problem {
	n := c.Len()
	aeq := linalg.NewMatrix(1, n)
	for j := 0; j < n; j++ {
		aeq.Set(0, j, 1)
	}
	return &Problem{
		H:     h,
		C:     c,
		Aeq:   aeq,
		Beq:   linalg.VectorOf(total),
		Lower: linalg.NewVector(n),
		Upper: linalg.Constant(n, math.Inf(1)),
		Start: linalg.Constant(n, total/float64(n)),
	}
}

func TestSolveUnconstrainedMinimumInside(t *testing.T) {
	// min (x-1)^2 + (y-2)^2 over the simplex sum=3: unconstrained optimum
	// (1,2) already satisfies the constraint.
	h := linalg.Identity(2)
	h.AddScaled(1, linalg.Identity(2)) // H = 2I
	c := linalg.VectorOf(-2, -4)
	res, err := Solve(simplexProblem(h, c, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-8 || math.Abs(res.X[1]-2) > 1e-8 {
		t.Fatalf("x = %v, want (1,2)", res.X)
	}
}

func TestSolveActiveBound(t *testing.T) {
	// min (x+1)^2 + y^2 s.t. x+y=1, x,y >= 0. Optimum x=0, y=1.
	h := linalg.NewMatrix(2, 2)
	h.Set(0, 0, 2)
	h.Set(1, 1, 2)
	c := linalg.VectorOf(2, 0)
	res, err := Solve(simplexProblem(h, c, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]) > 1e-8 || math.Abs(res.X[1]-1) > 1e-8 {
		t.Fatalf("x = %v, want (0,1)", res.X)
	}
}

func TestSolveMatchesProjectedGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(5)
		b := linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b.Set(i, j, rng.NormFloat64())
			}
		}
		h := b.Transpose().Mul(b)
		for i := 0; i < n; i++ {
			h.Adds(i, i, 0.5)
		}
		c := linalg.NewVector(n)
		for i := range c {
			c[i] = rng.NormFloat64() * 3
		}
		total := 1 + rng.Float64()*5

		res, err := Solve(simplexProblem(h, c, total), Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ref := refProjectedGradient(h, c, total)
		objAS := 0.5*res.X.Dot(h.MulVec(res.X)) + c.Dot(res.X)
		objPG := 0.5*ref.Dot(h.MulVec(ref)) + c.Dot(ref)
		if objAS > objPG+1e-6*(1+math.Abs(objPG)) {
			t.Fatalf("trial %d: active-set obj %g worse than PG obj %g (x=%v ref=%v)",
				trial, objAS, objPG, res.X, ref)
		}
		// Feasibility.
		if math.Abs(res.X.Sum()-total) > 1e-7 {
			t.Fatalf("trial %d: sum %g != %g", trial, res.X.Sum(), total)
		}
		if res.X.Min() < -1e-8 {
			t.Fatalf("trial %d: negative entry %v", trial, res.X)
		}
	}
}

func TestSolveWithInequalityRow(t *testing.T) {
	// min x^2 + y^2 - 4x - 4y  s.t. x + y <= 1, x,y >= 0.
	// Unconstrained optimum (2,2); constrained optimum (0.5, 0.5).
	h := linalg.NewMatrix(2, 2)
	h.Set(0, 0, 2)
	h.Set(1, 1, 2)
	ain := linalg.NewMatrix(1, 2)
	ain.Set(0, 0, 1)
	ain.Set(0, 1, 1)
	p := &Problem{
		H:     h,
		C:     linalg.VectorOf(-4, -4),
		Ain:   ain,
		Bin:   linalg.VectorOf(1),
		Lower: linalg.NewVector(2),
		Upper: linalg.Constant(2, math.Inf(1)),
		Start: linalg.NewVector(2),
	}
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-0.5) > 1e-7 || math.Abs(res.X[1]-0.5) > 1e-7 {
		t.Fatalf("x = %v, want (0.5, 0.5)", res.X)
	}
}

func TestSolveBoxBounds(t *testing.T) {
	// min (x-5)^2 with 0 <= x <= 2 → x = 2.
	h := linalg.NewMatrix(1, 1)
	h.Set(0, 0, 2)
	p := &Problem{
		H:     h,
		C:     linalg.VectorOf(-10),
		Lower: linalg.NewVector(1),
		Upper: linalg.VectorOf(2),
		Start: linalg.VectorOf(1),
	}
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-8 {
		t.Fatalf("x = %v, want 2", res.X)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x >= 0, x <= -1 is empty.
	h := linalg.Identity(1)
	p := &Problem{
		H:     h,
		C:     linalg.VectorOf(0),
		Lower: linalg.NewVector(1),
		Upper: linalg.VectorOf(-1),
	}
	if _, err := Solve(p, Options{}); err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestSolveRankOnePlusDiagonalHessian(t *testing.T) {
	// The a-minimization Hessian shape: rho*(I + beta^2 * 11ᵀ).
	rng := rand.New(rand.NewSource(3))
	n := 10
	rho, beta := 0.3, 1.2e-4
	h := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := rho * beta * beta
			if i == j {
				v += rho
			}
			h.Set(i, j, v)
		}
	}
	c := linalg.NewVector(n)
	for i := range c {
		c[i] = rng.NormFloat64()
	}
	// sum x <= 4, x >= 0.
	ain := linalg.NewMatrix(1, n)
	for j := 0; j < n; j++ {
		ain.Set(0, j, 1)
	}
	p := &Problem{
		H:     h,
		C:     c,
		Ain:   ain,
		Bin:   linalg.VectorOf(4),
		Lower: linalg.NewVector(n),
		Upper: linalg.Constant(n, math.Inf(1)),
		Start: linalg.NewVector(n),
	}
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.X.Sum() > 4+1e-7 || res.X.Min() < -1e-9 {
		t.Fatalf("infeasible solution %v", res.X)
	}
	// KKT spot check: gradient + eta*1 - s = 0 with eta >= 0. Verify the
	// solution cannot be improved by a feasible coordinate perturbation.
	obj := Objective(p, res.X)
	for j := 0; j < n; j++ {
		y := res.X.Clone()
		y[j] += 1e-5
		if y.Sum() <= 4 && Objective(p, y) < obj-1e-9 {
			t.Fatalf("improvable at +e_%d", j)
		}
		y[j] -= 2e-5
		if y[j] >= 0 && Objective(p, y) < obj-1e-9 {
			t.Fatalf("improvable at -e_%d", j)
		}
	}
}
