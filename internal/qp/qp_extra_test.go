package qp

import (
	"errors"
	"math"
	"testing"

	"repro/internal/linalg"
)

func TestObjectiveValue(t *testing.T) {
	h := linalg.Identity(2)
	p := &Problem{H: h, C: linalg.VectorOf(1, -1)}
	x := linalg.VectorOf(2, 3)
	want := 0.5*(4+9) + (2 - 3)
	if got := Objective(p, x); math.Abs(got-want) > 1e-12 {
		t.Fatalf("objective = %g, want %g", got, want)
	}
}

func TestPromotedFixedBoundEqualsEquality(t *testing.T) {
	// min (x-3)^2 + (y-5)^2 with y fixed at 1 via lower==upper.
	h := linalg.NewMatrix(2, 2)
	h.Set(0, 0, 2)
	h.Set(1, 1, 2)
	p := &Problem{
		H:     h,
		C:     linalg.VectorOf(-6, -10),
		Lower: linalg.VectorOf(math.Inf(-1), 1),
		Upper: linalg.VectorOf(math.Inf(1), 1),
		Start: linalg.VectorOf(0, 1),
	}
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-3) > 1e-8 || math.Abs(res.X[1]-1) > 1e-10 {
		t.Fatalf("x = %v, want (3, 1)", res.X)
	}
}

func TestFixedBoundConflictsWithEquality(t *testing.T) {
	// x fixed at 1 but equality forces x = 2: infeasible.
	h := linalg.Identity(1)
	aeq := linalg.NewMatrix(1, 1)
	aeq.Set(0, 0, 1)
	p := &Problem{
		H:     h,
		C:     linalg.NewVector(1),
		Aeq:   aeq,
		Beq:   linalg.VectorOf(2),
		Lower: linalg.VectorOf(1),
		Upper: linalg.VectorOf(1),
		Start: linalg.VectorOf(1),
	}
	if _, err := Solve(p, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("conflicting constraints: %v", err)
	}
}

func TestDimensionMismatchRejected(t *testing.T) {
	p := &Problem{H: linalg.Identity(3), C: linalg.VectorOf(1, 2)}
	if _, err := Solve(p, Options{}); err == nil {
		t.Fatal("H/C mismatch accepted")
	}
}

func TestIterationLimit(t *testing.T) {
	// A feasible problem with an absurdly small iteration budget must
	// return ErrMaxIterations rather than a wrong answer.
	n := 6
	h := linalg.Identity(n)
	c := linalg.Constant(n, -10)
	aeq := linalg.NewMatrix(1, n)
	for j := 0; j < n; j++ {
		aeq.Set(0, j, 1)
	}
	start := linalg.NewVector(n)
	start[0] = 3 // vertex far from the uniform optimum: several active-set
	// changes (one bound dropped per iteration) are required.
	p := &Problem{
		H: h, C: c,
		Aeq: aeq, Beq: linalg.VectorOf(3),
		Lower: linalg.NewVector(n),
		Upper: linalg.Constant(n, math.Inf(1)),
		Start: start,
	}
	if _, err := Solve(p, Options{MaxIterations: 1}); !errors.Is(err, ErrMaxIterations) {
		t.Fatalf("1-iteration budget: %v", err)
	}
}

func TestEqualityOnlyLeastSquaresStart(t *testing.T) {
	// No caller start, zero infeasible for the equality: the solver must
	// construct its own feasible point via least squares.
	h := linalg.Identity(2)
	aeq := linalg.NewMatrix(1, 2)
	aeq.Set(0, 0, 1)
	aeq.Set(0, 1, 1)
	p := &Problem{
		H: h, C: linalg.NewVector(2),
		Aeq: aeq, Beq: linalg.VectorOf(4),
	}
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// min ||x||^2 s.t. x1+x2=4 → (2,2).
	if math.Abs(res.X[0]-2) > 1e-8 || math.Abs(res.X[1]-2) > 1e-8 {
		t.Fatalf("x = %v, want (2,2)", res.X)
	}
}

func TestRedundantActiveConstraintsHandled(t *testing.T) {
	// Duplicate inequality rows make the active set degenerate; the
	// regularized KKT fallback must still solve it.
	h := linalg.Identity(2)
	ain := linalg.NewMatrix(2, 2)
	ain.Set(0, 0, 1)
	ain.Set(1, 0, 1) // duplicate of row 0
	p := &Problem{
		H:   h,
		C:   linalg.VectorOf(-10, 0),
		Ain: ain, Bin: linalg.VectorOf(1, 1),
		Start: linalg.NewVector(2),
	}
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-6 {
		t.Fatalf("x = %v, want x0 = 1", res.X)
	}
}
