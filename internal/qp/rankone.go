package qp

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/linalg"
)

// SolveSumCappedRankOne solves, exactly and in O(M log M),
//
//	min  ½ρ‖a‖² + ½ρκ(1ᵀa)² + cᵀa
//	s.t. 1ᵀa ≤ cap,  a ≥ 0,
//
// the structure of the paper's per-datacenter a-minimization (20) (in the
// engine's scaled units κ = 1). Decomposition: for a fixed total z = 1ᵀa
// the inner problem is a diagonal QP over the scaled simplex whose
// solution is the water-filling a_i = max(0, (θ(z) − c_i)/ρ); the outer
// objective G(z) = inner(z) + ½ρκz² is convex with derivative
// θ(z) + ρκz, so the optimal total is the root of a piecewise-linear
// increasing function, clamped to [0, cap].
func SolveSumCappedRankOne(rho, kappa float64, c linalg.Vector, cap float64) (linalg.Vector, error) {
	m := c.Len()
	out := linalg.NewVector(m)
	if err := SolveSumCappedRankOneInto(out, make([]float64, m), make([]float64, m+1), rho, kappa, c, cap); err != nil {
		return nil, err
	}
	return out, nil
}

// SolveSumCappedRankOneInto is the allocation-free form of
// SolveSumCappedRankOne: it writes the solution into dst (length M) using
// sorted (length M) and prefix (length M+1) as workspace. The buffers must
// not alias c. The float sequence produced is bit-identical to
// SolveSumCappedRankOne's.
func SolveSumCappedRankOneInto(dst, sorted, prefix []float64, rho, kappa float64, c []float64, cap float64) error {
	m := len(c)
	if rho <= 0 {
		return fmt.Errorf("qp: rank-one solver needs rho > 0, got %g", rho)
	}
	if kappa < 0 || cap < 0 {
		return fmt.Errorf("qp: rank-one solver kappa %g cap %g", kappa, cap)
	}
	for i := range dst[:m] {
		dst[i] = 0
	}
	if m == 0 || cap == 0 {
		return nil
	}

	copy(sorted, c)
	sorted = sorted[:m]
	sort.Float64s(sorted)
	prefix = prefix[:m+1]
	prefix[0] = 0
	for i, v := range sorted {
		prefix[i+1] = prefix[i] + v
	}

	// theta(z): the inner dual with Σ max(0, (θ − c_i)/ρ) = z.
	theta := func(z float64) float64 {
		if z <= 0 {
			return sorted[0]
		}
		// Find the active count k: θ in (sorted[k-1], sorted[k]].
		// θ_k = (ρz + prefix[k]) / k must satisfy θ_k ≤ sorted[k] (or
		// k = m). Hand-rolled binary search with sort.Search's exact
		// midpoint arithmetic, so tie behaviour matches it bit for bit
		// without the closure the stdlib call would need.
		i, j := 0, m
		for i < j {
			h := int(uint(i+j) >> 1)
			k := h + 1
			th := (rho*z + prefix[k]) / float64(k)
			if !(k == m || th <= sorted[k]) {
				i = h + 1
			} else {
				j = h
			}
		}
		k := i + 1
		return (rho*z + prefix[k]) / float64(k)
	}

	// dG/dz = theta(z) + ρκz, increasing. Root in [0, cap] by bisection.
	deriv := func(z float64) float64 { return theta(z) + rho*kappa*z }
	var z float64
	switch {
	case deriv(0) >= 0:
		z = 0
	case deriv(cap) <= 0:
		z = cap
	default:
		lo, hi := 0.0, cap
		for iter := 0; iter < 200 && hi-lo > 1e-14*(1+cap); iter++ {
			mid := lo + (hi-lo)/2
			if deriv(mid) < 0 {
				lo = mid
			} else {
				hi = mid
			}
		}
		z = lo + (hi-lo)/2
	}
	if z <= 0 {
		return nil
	}

	th := theta(z)
	var sum float64
	for i, ci := range c {
		if v := (th - ci) / rho; v > 0 {
			dst[i] = v
			sum += v
		}
	}
	// Rescale the tiny bisection residual so 1ᵀa = z exactly (preserves
	// nonnegativity and feasibility).
	if sum > 0 && math.Abs(sum-z) > 0 {
		f := z / sum
		for i := range dst[:m] {
			dst[i] *= f
		}
	}
	return nil
}
