package distsim_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/carbon"
	"repro/internal/core"
	"repro/internal/distsim"
	"repro/internal/model"
	"repro/internal/utility"
)

func testInstance(t *testing.T, seed int64) *core.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pm := model.DefaultPowerModel()
	sites := model.PaperDatacenterSites()
	dcs := make([]model.Datacenter, 3)
	for j := range dcs {
		dcs[j] = model.Datacenter{
			Location: sites[j],
			Servers:  800 + 300*rng.Float64(),
			Power:    pm,
		}.FullFuelCell()
	}
	feSites := model.PaperFrontEndSites()
	fes := make([]model.FrontEnd, 4)
	for i := range fes {
		fes[i] = model.FrontEnd{Location: feSites[2*i]}
	}
	cloud, err := model.NewCloud(dcs, fes)
	if err != nil {
		t.Fatal(err)
	}
	arr := make([]float64, len(fes))
	for i := range arr {
		arr[i] = 200 + 300*rng.Float64()
	}
	prices := make([]float64, len(dcs))
	rates := make([]float64, len(dcs))
	costs := make([]carbon.CostFunc, len(dcs))
	for j := range prices {
		prices[j] = 20 + 80*rng.Float64()
		rates[j] = 0.2 + 0.6*rng.Float64()
		costs[j] = carbon.LinearTax{Rate: 25}
	}
	return &core.Instance{
		Cloud:            cloud,
		Arrivals:         arr,
		PriceUSD:         prices,
		FuelCellPriceUSD: 80,
		CarbonRate:       rates,
		EmissionCost:     costs,
		Utility:          utility.Quadratic{},
		WeightW:          10,
	}
}

func runDistributed(t *testing.T, inst *core.Instance, chanOpts distsim.ChanOptions) *distsim.Result {
	t.Helper()
	m, n := inst.Cloud.M(), inst.Cloud.N()
	tr := distsim.NewChanTransport(distsim.AllAgentIDs(m, n), chanOpts)
	defer func() { _ = tr.Close() }()
	res, err := distsim.Run(inst, distsim.RunOptions{}, tr)
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	return res
}

func TestDistributedMatchesSequentialExactly(t *testing.T) {
	inst := testInstance(t, 1)
	seqAlloc, seqBD, seqStats, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := runDistributed(t, inst, distsim.ChanOptions{Seed: 1})
	if res.Stats.Iterations != seqStats.Iterations {
		t.Errorf("iterations: distributed %d vs sequential %d", res.Stats.Iterations, seqStats.Iterations)
	}
	for i := range seqAlloc.Lambda {
		for j := range seqAlloc.Lambda[i] {
			if seqAlloc.Lambda[i][j] != res.Allocation.Lambda[i][j] {
				t.Fatalf("lambda[%d][%d]: distributed %v vs sequential %v (must be bit-identical)",
					i, j, res.Allocation.Lambda[i][j], seqAlloc.Lambda[i][j])
			}
		}
	}
	if res.Breakdown.UFC != seqBD.UFC {
		t.Errorf("UFC: distributed %v vs sequential %v", res.Breakdown.UFC, seqBD.UFC)
	}
}

func TestDistributedWithDelaysAndReordering(t *testing.T) {
	inst := testInstance(t, 2)
	_, seqBD, _, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := runDistributed(t, inst, distsim.ChanOptions{
		Seed:     7,
		MaxDelay: 200 * time.Microsecond,
	})
	// Delays reorder deliveries but the round structure makes the result
	// identical.
	if res.Breakdown.UFC != seqBD.UFC {
		t.Errorf("UFC with delays: %v vs %v", res.Breakdown.UFC, seqBD.UFC)
	}
}

func TestDistributedWithTransientLoss(t *testing.T) {
	inst := testInstance(t, 3)
	_, seqBD, _, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := runDistributed(t, inst, distsim.ChanOptions{
		Seed:            11,
		MaxDelay:        100 * time.Microsecond,
		LossProb:        0.05,
		RetransmitDelay: time.Millisecond,
	})
	if res.Breakdown.UFC != seqBD.UFC {
		t.Errorf("UFC with loss: %v vs %v", res.Breakdown.UFC, seqBD.UFC)
	}
}

func TestDistributedOverTCP(t *testing.T) {
	inst := testInstance(t, 4)
	_, seqBD, _, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hub, err := distsim.NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }()
	m, n := inst.Cloud.M(), inst.Cloud.N()
	node, err := distsim.NewTCPNode(hub.Addr(), distsim.AllAgentIDs(m, n), 128)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = node.Close() }()
	res, err := distsim.Run(inst, distsim.RunOptions{Timeout: time.Minute}, node)
	if err != nil {
		t.Fatalf("TCP run: %v", err)
	}
	if res.Breakdown.UFC != seqBD.UFC {
		t.Errorf("UFC over TCP: %v vs %v", res.Breakdown.UFC, seqBD.UFC)
	}
}

func TestDistributedMultiNodeTCP(t *testing.T) {
	// Front-ends, datacenters and the coordinator on three separate nodes.
	inst := testInstance(t, 5)
	_, seqBD, _, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hub, err := distsim.NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }()
	m, n := inst.Cloud.M(), inst.Cloud.N()
	all := distsim.AllAgentIDs(m, n)
	feIDs, dcIDs, coordIDs := all[:m], all[m:m+n], all[m+n:]

	feNode, err := distsim.NewTCPNode(hub.Addr(), feIDs, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = feNode.Close() }()
	dcNode, err := distsim.NewTCPNode(hub.Addr(), dcIDs, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dcNode.Close() }()
	coNode, err := distsim.NewTCPNode(hub.Addr(), coordIDs, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = coNode.Close() }()

	// A routing façade: sends go out through the sender-side node. Since
	// Run uses a single Transport, wrap the three nodes: Send tries the
	// hub through any node (they all reach the hub), Inbox picks the node
	// hosting the id.
	tr := &multiNode{nodes: []*distsim.TCPNode{feNode, dcNode, coNode}}
	res, err := distsim.Run(inst, distsim.RunOptions{Timeout: time.Minute}, tr)
	if err != nil {
		t.Fatalf("multi-node TCP run: %v", err)
	}
	if res.Breakdown.UFC != seqBD.UFC {
		t.Errorf("UFC multi-node: %v vs %v", res.Breakdown.UFC, seqBD.UFC)
	}
}

// multiNode fans a Transport across several TCP nodes for the multi-node
// test topology.
type multiNode struct {
	nodes []*distsim.TCPNode
}

func (m *multiNode) Send(to string, msg distsim.Message) error {
	return m.nodes[0].Send(to, msg)
}

func (m *multiNode) Inbox(id string) (<-chan distsim.Message, error) {
	for _, n := range m.nodes {
		if ch, err := n.Inbox(id); err == nil {
			return ch, nil
		}
	}
	return nil, distsim.ErrUnknownAgent
}

func (m *multiNode) Close() error {
	var first error
	for _, n := range m.nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func TestTransportErrors(t *testing.T) {
	tr := distsim.NewChanTransport([]string{"a"}, distsim.ChanOptions{})
	if err := tr.Send("nope", distsim.Message{}); !errors.Is(err, distsim.ErrUnknownAgent) {
		t.Errorf("unknown send: %v", err)
	}
	if _, err := tr.Inbox("nope"); !errors.Is(err, distsim.ErrUnknownAgent) {
		t.Errorf("unknown inbox: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send("a", distsim.Message{}); !errors.Is(err, distsim.ErrClosed) {
		t.Errorf("closed send: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestRunTimesOutCleanly(t *testing.T) {
	inst := testInstance(t, 6)
	m, n := inst.Cloud.M(), inst.Cloud.N()
	// Register only the protocol agents but swallow coordinator traffic by
	// using a tiny timeout: agents cannot complete a round.
	tr := distsim.NewChanTransport(distsim.AllAgentIDs(m, n)[:m+n], distsim.ChanOptions{})
	defer func() { _ = tr.Close() }()
	_, err := distsim.Run(inst, distsim.RunOptions{Timeout: 50 * time.Millisecond}, tr)
	if err == nil {
		t.Fatal("expected an error with missing coordinator inbox")
	}
}

func TestDistributedGridOnlyStrategy(t *testing.T) {
	inst := testInstance(t, 8)
	m, n := inst.Cloud.M(), inst.Cloud.N()
	tr := distsim.NewChanTransport(distsim.AllAgentIDs(m, n), distsim.ChanOptions{Seed: 3})
	defer func() { _ = tr.Close() }()
	res, err := distsim.Run(inst, distsim.RunOptions{
		Solver: core.Options{Strategy: core.GridOnly},
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	for j, mu := range res.Allocation.MuMW {
		if mu != 0 {
			t.Errorf("grid-only datacenter %d uses %g MW fuel cell", j, mu)
		}
	}
	if math.Abs(res.Breakdown.FuelCellUtilization) > 0 {
		t.Error("grid-only has nonzero fuel-cell utilization")
	}
}

func TestRunAgentsRejectsInvalidID(t *testing.T) {
	inst := testInstance(t, 9)
	m, n := inst.Cloud.M(), inst.Cloud.N()
	tr := distsim.NewChanTransport(distsim.AllAgentIDs(m, n), distsim.ChanOptions{})
	defer func() { _ = tr.Close() }()
	if _, err := distsim.RunAgents(inst, distsim.RunOptions{}, tr, []string{"fe-999"}); err == nil {
		t.Fatal("out-of-range front-end accepted")
	}
	if _, err := distsim.RunAgents(inst, distsim.RunOptions{}, tr, []string{"gremlin-1"}); err == nil {
		t.Fatal("unknown agent kind accepted")
	}
}

func TestRunAgentsSplitAcrossGoroutines(t *testing.T) {
	// Split the agents across two RunAgents calls sharing one transport,
	// mimicking a two-process deployment in-process.
	inst := testInstance(t, 10)
	_, seqBD, _, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, n := inst.Cloud.M(), inst.Cloud.N()
	all := distsim.AllAgentIDs(m, n)
	tr := distsim.NewChanTransport(all, distsim.ChanOptions{Seed: 5})
	defer func() { _ = tr.Close() }()

	done := make(chan error, 1)
	go func() {
		// Front-end half runs "elsewhere"; returns nil result.
		res, err := distsim.RunAgents(inst, distsim.RunOptions{}, tr, all[:m])
		if err == nil && res != nil {
			err = errTestUnexpectedResult
		}
		done <- err
	}()
	res, err := distsim.RunAgents(inst, distsim.RunOptions{}, tr, all[m:])
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Breakdown.UFC != seqBD.UFC {
		t.Fatalf("split-agent UFC mismatch")
	}
}

var errTestUnexpectedResult = errors.New("non-coordinator RunAgents returned a result")

func TestRunFailsWhenPeerMissing(t *testing.T) {
	// Datacenter agents never start: the front-ends and coordinator must
	// time out with an error rather than hang.
	inst := testInstance(t, 11)
	m, n := inst.Cloud.M(), inst.Cloud.N()
	all := distsim.AllAgentIDs(m, n)
	tr := distsim.NewChanTransport(all, distsim.ChanOptions{})
	defer func() { _ = tr.Close() }()
	partial := append(append([]string{}, all[:m]...), "coord")
	_, err := distsim.RunAgents(inst, distsim.RunOptions{Timeout: 100 * time.Millisecond}, tr, partial)
	if err == nil {
		t.Fatal("expected timeout with missing datacenter agents")
	}
}
