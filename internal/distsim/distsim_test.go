package distsim_test

import (
	"context"
	"errors"
	"io"
	"math"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/carbon"
	"repro/internal/core"
	"repro/internal/distsim"
	"repro/internal/model"
	"repro/internal/utility"
)

func testInstance(t *testing.T, seed int64) *core.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pm := model.DefaultPowerModel()
	sites := model.PaperDatacenterSites()
	dcs := make([]model.Datacenter, 3)
	for j := range dcs {
		dcs[j] = model.Datacenter{
			Location: sites[j],
			Servers:  800 + 300*rng.Float64(),
			Power:    pm,
		}.FullFuelCell()
	}
	feSites := model.PaperFrontEndSites()
	fes := make([]model.FrontEnd, 4)
	for i := range fes {
		fes[i] = model.FrontEnd{Location: feSites[2*i]}
	}
	cloud, err := model.NewCloud(dcs, fes)
	if err != nil {
		t.Fatal(err)
	}
	arr := make([]float64, len(fes))
	for i := range arr {
		arr[i] = 200 + 300*rng.Float64()
	}
	prices := make([]float64, len(dcs))
	rates := make([]float64, len(dcs))
	costs := make([]carbon.CostFunc, len(dcs))
	for j := range prices {
		prices[j] = 20 + 80*rng.Float64()
		rates[j] = 0.2 + 0.6*rng.Float64()
		costs[j] = carbon.LinearTax{Rate: 25}
	}
	return &core.Instance{
		Cloud:            cloud,
		Arrivals:         arr,
		PriceUSD:         prices,
		FuelCellPriceUSD: 80,
		CarbonRate:       rates,
		EmissionCost:     costs,
		Utility:          utility.Quadratic{},
		WeightW:          10,
	}
}

func runDistributed(t *testing.T, inst *core.Instance, chanOpts distsim.ChanOptions) *distsim.Result {
	t.Helper()
	m, n := inst.Cloud.M(), inst.Cloud.N()
	tr := distsim.NewChanTransport(distsim.AllAgentIDs(m, n), chanOpts)
	defer func() { _ = tr.Close() }()
	res, err := distsim.Run(context.Background(), inst, distsim.RunOptions{}, tr)
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	return res
}

func TestDistributedMatchesSequentialExactly(t *testing.T) {
	inst := testInstance(t, 1)
	seqAlloc, seqBD, seqStats, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := runDistributed(t, inst, distsim.ChanOptions{Seed: 1})
	if res.Stats.Iterations != seqStats.Iterations {
		t.Errorf("iterations: distributed %d vs sequential %d", res.Stats.Iterations, seqStats.Iterations)
	}
	for i := range seqAlloc.Lambda {
		for j := range seqAlloc.Lambda[i] {
			if seqAlloc.Lambda[i][j] != res.Allocation.Lambda[i][j] {
				t.Fatalf("lambda[%d][%d]: distributed %v vs sequential %v (must be bit-identical)",
					i, j, res.Allocation.Lambda[i][j], seqAlloc.Lambda[i][j])
			}
		}
	}
	if res.Breakdown.UFC != seqBD.UFC {
		t.Errorf("UFC: distributed %v vs sequential %v", res.Breakdown.UFC, seqBD.UFC)
	}
}

func TestDistributedWithDelaysAndReordering(t *testing.T) {
	inst := testInstance(t, 2)
	_, seqBD, _, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := runDistributed(t, inst, distsim.ChanOptions{
		Seed:     7,
		MaxDelay: 200 * time.Microsecond,
	})
	// Delays reorder deliveries but the round structure makes the result
	// identical.
	if res.Breakdown.UFC != seqBD.UFC {
		t.Errorf("UFC with delays: %v vs %v", res.Breakdown.UFC, seqBD.UFC)
	}
}

func TestDistributedWithTransientLoss(t *testing.T) {
	inst := testInstance(t, 3)
	_, seqBD, _, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := runDistributed(t, inst, distsim.ChanOptions{
		Seed:            11,
		MaxDelay:        100 * time.Microsecond,
		LossProb:        0.05,
		RetransmitDelay: time.Millisecond,
	})
	if res.Breakdown.UFC != seqBD.UFC {
		t.Errorf("UFC with loss: %v vs %v", res.Breakdown.UFC, seqBD.UFC)
	}
}

func TestDistributedOverTCP(t *testing.T) {
	inst := testInstance(t, 4)
	_, seqBD, _, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hub, err := distsim.NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }()
	m, n := inst.Cloud.M(), inst.Cloud.N()
	node, err := distsim.NewTCPNode(hub.Addr(), distsim.AllAgentIDs(m, n), 128)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = node.Close() }()
	res, err := distsim.Run(context.Background(), inst, distsim.RunOptions{Timeout: time.Minute}, node)
	if err != nil {
		t.Fatalf("TCP run: %v", err)
	}
	if res.Breakdown.UFC != seqBD.UFC {
		t.Errorf("UFC over TCP: %v vs %v", res.Breakdown.UFC, seqBD.UFC)
	}
}

func TestDistributedMultiNodeTCP(t *testing.T) {
	// Front-ends, datacenters and the coordinator on three separate nodes.
	inst := testInstance(t, 5)
	_, seqBD, _, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hub, err := distsim.NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }()
	m, n := inst.Cloud.M(), inst.Cloud.N()
	all := distsim.AllAgentIDs(m, n)
	feIDs, dcIDs, coordIDs := all[:m], all[m:m+n], all[m+n:]

	feNode, err := distsim.NewTCPNode(hub.Addr(), feIDs, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = feNode.Close() }()
	dcNode, err := distsim.NewTCPNode(hub.Addr(), dcIDs, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dcNode.Close() }()
	coNode, err := distsim.NewTCPNode(hub.Addr(), coordIDs, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = coNode.Close() }()

	// A routing façade: sends go out through the sender-side node. Since
	// Run uses a single Transport, wrap the three nodes: Send tries the
	// hub through any node (they all reach the hub), Inbox picks the node
	// hosting the id.
	tr := &multiNode{nodes: []*distsim.TCPNode{feNode, dcNode, coNode}}
	res, err := distsim.Run(context.Background(), inst, distsim.RunOptions{Timeout: time.Minute}, tr)
	if err != nil {
		t.Fatalf("multi-node TCP run: %v", err)
	}
	if res.Breakdown.UFC != seqBD.UFC {
		t.Errorf("UFC multi-node: %v vs %v", res.Breakdown.UFC, seqBD.UFC)
	}
}

// multiNode fans a Transport across several TCP nodes for the multi-node
// test topology.
type multiNode struct {
	nodes []*distsim.TCPNode
}

func (m *multiNode) Send(to string, msg distsim.Message) error {
	return m.nodes[0].Send(to, msg)
}

func (m *multiNode) Inbox(id string) (<-chan distsim.Message, error) {
	for _, n := range m.nodes {
		if ch, err := n.Inbox(id); err == nil {
			return ch, nil
		}
	}
	return nil, distsim.ErrUnknownAgent
}

func (m *multiNode) Close() error {
	var first error
	for _, n := range m.nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func TestTransportErrors(t *testing.T) {
	tr := distsim.NewChanTransport([]string{"a"}, distsim.ChanOptions{})
	if err := tr.Send("nope", distsim.Message{}); !errors.Is(err, distsim.ErrUnknownAgent) {
		t.Errorf("unknown send: %v", err)
	}
	if _, err := tr.Inbox("nope"); !errors.Is(err, distsim.ErrUnknownAgent) {
		t.Errorf("unknown inbox: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send("a", distsim.Message{}); !errors.Is(err, distsim.ErrClosed) {
		t.Errorf("closed send: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

// TestRunRejectsNilContext pins the removal of the old silent
// nil → context.Background() promotion: a nil context detached the whole
// protocol from caller cancellation, so it is now a caller bug.
func TestRunRejectsNilContext(t *testing.T) {
	inst := testInstance(t, 6)
	m, n := inst.Cloud.M(), inst.Cloud.N()
	tr := distsim.NewChanTransport(distsim.AllAgentIDs(m, n), distsim.ChanOptions{})
	defer func() { _ = tr.Close() }()
	//nolint:staticcheck // passing a nil context is the point of the test
	if _, err := distsim.Run(nil, inst, distsim.RunOptions{}, tr); !errors.Is(err, core.ErrBadOptions) {
		t.Fatalf("Run(nil ctx) = %v, want ErrBadOptions", err)
	}
}

func TestRunTimesOutCleanly(t *testing.T) {
	inst := testInstance(t, 6)
	m, n := inst.Cloud.M(), inst.Cloud.N()
	// Register only the protocol agents but swallow coordinator traffic by
	// using a tiny timeout: agents cannot complete a round.
	tr := distsim.NewChanTransport(distsim.AllAgentIDs(m, n)[:m+n], distsim.ChanOptions{})
	defer func() { _ = tr.Close() }()
	_, err := distsim.Run(context.Background(), inst, distsim.RunOptions{Timeout: 50 * time.Millisecond}, tr)
	if err == nil {
		t.Fatal("expected an error with missing coordinator inbox")
	}
}

func TestDistributedGridOnlyStrategy(t *testing.T) {
	inst := testInstance(t, 8)
	m, n := inst.Cloud.M(), inst.Cloud.N()
	tr := distsim.NewChanTransport(distsim.AllAgentIDs(m, n), distsim.ChanOptions{Seed: 3})
	defer func() { _ = tr.Close() }()
	res, err := distsim.Run(context.Background(), inst, distsim.RunOptions{
		Solver: core.Options{Strategy: core.GridOnly},
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	for j, mu := range res.Allocation.MuMW {
		if mu != 0 {
			t.Errorf("grid-only datacenter %d uses %g MW fuel cell", j, mu)
		}
	}
	if math.Abs(res.Breakdown.FuelCellUtilization) > 0 {
		t.Error("grid-only has nonzero fuel-cell utilization")
	}
}

func TestRunAgentsRejectsInvalidID(t *testing.T) {
	inst := testInstance(t, 9)
	m, n := inst.Cloud.M(), inst.Cloud.N()
	tr := distsim.NewChanTransport(distsim.AllAgentIDs(m, n), distsim.ChanOptions{})
	defer func() { _ = tr.Close() }()
	if _, err := distsim.RunAgents(context.Background(), inst, distsim.RunOptions{}, tr, []string{"fe-999"}); err == nil {
		t.Fatal("out-of-range front-end accepted")
	}
	if _, err := distsim.RunAgents(context.Background(), inst, distsim.RunOptions{}, tr, []string{"gremlin-1"}); err == nil {
		t.Fatal("unknown agent kind accepted")
	}
}

func TestRunAgentsSplitAcrossGoroutines(t *testing.T) {
	// Split the agents across two RunAgents calls sharing one transport,
	// mimicking a two-process deployment in-process.
	inst := testInstance(t, 10)
	_, seqBD, _, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, n := inst.Cloud.M(), inst.Cloud.N()
	all := distsim.AllAgentIDs(m, n)
	tr := distsim.NewChanTransport(all, distsim.ChanOptions{Seed: 5})
	defer func() { _ = tr.Close() }()

	done := make(chan error, 1)
	go func() {
		// Front-end half runs "elsewhere"; returns nil result.
		res, err := distsim.RunAgents(context.Background(), inst, distsim.RunOptions{}, tr, all[:m])
		if err == nil && res != nil {
			err = errTestUnexpectedResult
		}
		done <- err
	}()
	res, err := distsim.RunAgents(context.Background(), inst, distsim.RunOptions{}, tr, all[m:])
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Breakdown.UFC != seqBD.UFC {
		t.Fatalf("split-agent UFC mismatch")
	}
}

var errTestUnexpectedResult = errors.New("non-coordinator RunAgents returned a result")

// TestSendAfterClose demands a consistent ErrClosed (not a raw socket or
// codec error) from Send after Close on every transport.
func TestSendAfterClose(t *testing.T) {
	msg := distsim.Message{Kind: distsim.KindReport, Iter: 1, From: "fe-0", Payload: []float64{1}}

	t.Run("chan", func(t *testing.T) {
		tr := distsim.NewChanTransport([]string{"fe-0", "coord"}, distsim.ChanOptions{})
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		if err := tr.Send("coord", msg); !errors.Is(err, distsim.ErrClosed) {
			t.Errorf("chan send after close: %v", err)
		}
	})

	t.Run("tcp", func(t *testing.T) {
		hub, err := distsim.NewTCPHub("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = hub.Close() }()
		node, err := distsim.NewTCPNode(hub.Addr(), []string{"fe-0", "coord"}, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Send("coord", msg); err != nil {
			t.Fatalf("send before close: %v", err)
		}
		if err := node.Close(); err != nil {
			t.Fatal(err)
		}
		if err := node.Send("coord", msg); !errors.Is(err, distsim.ErrClosed) {
			t.Errorf("tcp send after close: %v", err)
		}
		if err := node.Close(); err != nil {
			t.Errorf("double close: %v", err)
		}
	})
}

// TestChanTransportCloseCancelsDelayedSends pins the fix for Close
// blocking on in-flight fault-injected deliveries: with a retransmit
// delay of several seconds queued, Close must return almost immediately.
func TestChanTransportCloseCancelsDelayedSends(t *testing.T) {
	tr := distsim.NewChanTransport([]string{"a"}, distsim.ChanOptions{
		Seed:            1,
		LossProb:        1, // every send takes the delayed path
		RetransmitDelay: 10 * time.Second,
	})
	for k := 0; k < 8; k++ {
		if err := tr.Send("a", distsim.Message{Kind: distsim.KindReport, Iter: k}); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("Close blocked %v on delayed deliveries", waited)
	}
}

// TestHubRedeliversAfterReconnect covers the hub's lost-route path end to
// end: a node hosting dc-0 dies, traffic for dc-0 queues as pending, and
// a reconnecting node hosting dc-0 drains it.
func TestHubRedeliversAfterReconnect(t *testing.T) {
	hub, err := distsim.NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }()

	victim, err := distsim.NewTCPNode(hub.Addr(), []string{"dc-0"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	sender, err := distsim.NewTCPNode(hub.Addr(), []string{"fe-0"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sender.Close() }()

	if err := victim.Close(); err != nil {
		t.Fatal(err)
	}
	// Give the hub a moment to observe the disconnect and drop the route.
	time.Sleep(100 * time.Millisecond)

	want := distsim.Message{Kind: distsim.KindRouting, Iter: 9, From: "fe-0", Payload: []float64{0, 1.25, 2.5}}
	if err := sender.Send("dc-0", want); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the record reach the hub's pending queue

	replacement, err := distsim.NewTCPNode(hub.Addr(), []string{"dc-0"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = replacement.Close() }()
	inbox, err := replacement.Inbox("dc-0")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-inbox:
		if got.Kind != want.Kind || got.Iter != want.Iter || got.From != want.From ||
			len(got.Payload) != len(want.Payload) || got.Payload[1] != want.Payload[1] {
			t.Fatalf("redelivered message %+v, want %+v", got, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending message never redelivered to reconnected node")
	}
}

// TestTCPSendSteadyStateAllocs pins the allocation-free send path: after
// warmup, TCPNode.Send must not allocate. The peer is a raw discarding
// socket so the in-process receive path stays out of the measurement.
func TestTCPSendSteadyStateAllocs(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { _, _ = io.Copy(io.Discard, conn) }()
		}
	}()
	node, err := distsim.NewTCPNode(ln.Addr().String(), []string{"fe-0"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = node.Close() }()

	msg := distsim.Message{Kind: distsim.KindRouting, Iter: 7, From: "fe-0", Payload: []float64{1, 2.5, 3.25}}
	for k := 0; k < 512; k++ { // warm the buffer pool and writer
		if err := node.Send("dc-0", msg); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(2000, func() {
		if err := node.Send("dc-0", msg); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0.1 {
		t.Errorf("steady-state Send allocates %.2f allocs/op, want 0", avg)
	}
}

// TestTCPNodeStats sanity-checks the transport counters against a run.
func TestTCPNodeStats(t *testing.T) {
	inst := testInstance(t, 12)
	hub, err := distsim.NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }()
	m, n := inst.Cloud.M(), inst.Cloud.N()
	node, err := distsim.NewTCPNode(hub.Addr(), distsim.AllAgentIDs(m, n), 128)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = node.Close() }()
	res, err := distsim.Run(context.Background(), inst, distsim.RunOptions{Timeout: time.Minute}, node)
	if err != nil {
		t.Fatal(err)
	}
	st := node.Stats()
	// Every iteration moves 2·M·N routing/aux + 2·(M+N) report/control
	// messages, plus finals and the hello.
	minMsgs := uint64(res.Stats.Iterations * (2*m*n + 2*(m+n)))
	if st.MessagesSent < minMsgs {
		t.Errorf("sent %d messages, expected at least %d", st.MessagesSent, minMsgs)
	}
	if st.MessagesReceived < minMsgs {
		t.Errorf("received %d messages, expected at least %d", st.MessagesReceived, minMsgs)
	}
	if st.BytesSent == 0 || st.BytesReceived == 0 || st.Flushes == 0 {
		t.Errorf("degenerate stats: %+v", st)
	}
	if st.MessagesSent > 0 && st.BytesSent/st.MessagesSent > 128 {
		t.Errorf("bytes/msg %d suspiciously large for the binary codec", st.BytesSent/st.MessagesSent)
	}
	hs := hub.Stats()
	if hs.MessagesReceived < minMsgs || hs.MessagesSent < minMsgs {
		t.Errorf("hub stats too low: %+v", hs)
	}
}

func TestRunFailsWhenPeerMissing(t *testing.T) {
	// Datacenter agents never start: the front-ends and coordinator must
	// time out with an error rather than hang.
	inst := testInstance(t, 11)
	m, n := inst.Cloud.M(), inst.Cloud.N()
	all := distsim.AllAgentIDs(m, n)
	tr := distsim.NewChanTransport(all, distsim.ChanOptions{})
	defer func() { _ = tr.Close() }()
	partial := append(append([]string{}, all[:m]...), "coord")
	_, err := distsim.RunAgents(context.Background(), inst, distsim.RunOptions{Timeout: 100 * time.Millisecond}, tr, partial)
	if err == nil {
		t.Fatal("expected timeout with missing datacenter agents")
	}
}

// TestCloseFlushesPendingSends pins the graceful-close contract: sends
// are asynchronous (queued for the coalescing writer), so a node that
// Closes immediately after its last Send must still get every queued
// record onto the wire. A multi-process run depends on this — front-end
// nodes close as soon as they have sent their final reports, while the
// coordinator process is still waiting to receive them.
func TestCloseFlushesPendingSends(t *testing.T) {
	hub, err := distsim.NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }()
	recv, err := distsim.NewTCPNode(hub.Addr(), []string{"dc-0"}, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = recv.Close() }()
	send, err := distsim.NewTCPNode(hub.Addr(), []string{"fe-0"}, 512)
	if err != nil {
		t.Fatal(err)
	}
	inbox, err := recv.Inbox("dc-0")
	if err != nil {
		t.Fatal(err)
	}

	const burst = 200
	for k := 0; k < burst; k++ {
		if err := send.Send("dc-0", distsim.Message{
			Kind: distsim.KindFinal, Iter: 1, From: "fe-0",
			Payload: []float64{float64(k)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Close immediately: every queued record must still be delivered.
	if err := send.Close(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < burst; k++ {
		select {
		case msg, ok := <-inbox:
			if !ok {
				t.Fatalf("inbox closed after %d of %d messages", k, burst)
			}
			if len(msg.Payload) != 1 || msg.Payload[0] != float64(k) {
				t.Fatalf("message %d out of order or corrupt: %+v", k, msg)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("received %d of %d messages sent before Close", k, burst)
		}
	}
}
