package distsim

import (
	"context"
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/telemetry/tracing"
)

// chaosTrace enables stderr tracing of every degrade decision (stale
// fallbacks, missed reports, death declarations). Set UFC_CHAOS_DEBUG=1
// when a chaos run's replay diverges: diffing two traces pins the first
// decision that flipped.
var chaosTrace = os.Getenv("UFC_CHAOS_DEBUG") != ""

// This file implements the hardened variant of the 4-block ADM-G
// protocol. The numerical round structure is identical to protocol.go;
// what changes is the failure envelope around every message wait:
//
//   - every outbound message is recorded by a Retrier and retransmitted
//     with exponential backoff + deterministic jitter while the sender's
//     next wait is blocked (proactive resend), or when a peer's duplicate
//     reveals that our response to it was lost (solicited resend);
//   - every inbound stream (from, kind) is deduplicated by an iteration
//     floor, so retransmissions and fault-injected duplicates are
//     numerically inert;
//   - every round phase has a degrade deadline: a peer silent past it is
//     degraded to its last iterate (bounded staleness, capped by
//     Resilience.StalenessCap), and the coordinator declares agents dead
//     after Resilience.DeadAfter consecutive missed reports, broadcasting
//     the dead set in the control payload so the fleet routes around them;
//   - a front-end that dies before delivering its final routing is
//     finalized by proximity fallback: all of its demand goes to the
//     nearest datacenter.
//
// Determinism: message drops are pure hashes of (seed, link, kind, iter,
// attempt) in FaultTransport, crashes and partitions are keyed on the
// round number, and the degrade deadlines are orders of magnitude longer
// than the retransmission backoff — so for a fixed fault seed the set of
// messages that ultimately get through (and with them every float the
// protocol computes) replays identically run over run.

// floorKey identifies one inbound message stream for deduplication.
type floorKey struct {
	from string
	kind Kind
}

// resMailbox is the resilient protocol's receive buffer: it parks
// out-of-phase messages, suppresses duplicates by per-stream iteration
// floors, and surfaces duplicates to an onDup hook so the owner can
// retransmit the response the peer evidently lost.
type resMailbox struct {
	inbox   <-chan Message
	pending []Message
	ctx     context.Context
	floor   map[floorKey]int
	// onDup is invoked for every duplicate (a message at or below its
	// stream's floor). Duplicates signal that the peer has not seen our
	// response to the original; the hook retransmits it. May be nil.
	onDup func(m Message)
}

func newResMailbox(ctx context.Context, t Transport, id string) (*resMailbox, error) {
	in, err := t.Inbox(id)
	if err != nil {
		return nil, err
	}
	return &resMailbox{inbox: in, ctx: ctx, floor: make(map[floorKey]int)}, nil
}

// fresh reports whether m is above its stream's floor (not yet consumed
// or skipped). Stale messages trigger the onDup hook.
func (mb *resMailbox) fresh(m Message) bool {
	if m.Iter <= mb.floor[floorKey{from: m.From, kind: m.Kind}] {
		if mb.onDup != nil {
			mb.onDup(m)
		}
		return false
	}
	return true
}

// consume advances m's stream floor to its iteration.
func (mb *resMailbox) consume(m Message) {
	k := floorKey{from: m.From, kind: m.Kind}
	if m.Iter > mb.floor[k] {
		mb.floor[k] = m.Iter
	}
}

// skipTo records that the owner degraded past (from, kind) up to iter:
// the message is no longer wanted, and a late arrival must be treated as
// a duplicate (triggering the solicited-resend hook, which helps a slow
// peer catch up instead of feeding us a stale iterate).
func (mb *resMailbox) skipTo(from string, kind Kind, iter int) {
	k := floorKey{from: from, kind: kind}
	if iter > mb.floor[k] {
		mb.floor[k] = iter
	}
}

// phase is one bounded wait of a protocol round: receive messages of one
// kind/iteration, retransmitting via onRetry with backoff while blocked,
// and giving up at the degrade deadline.
type phase struct {
	mb      *resMailbox
	pol     *Resilience
	self    string
	iter    int
	attempt int
	onRetry func() error
	retry   waitTimer
	degrade waitTimer
	expired bool
}

func newPhase(mb *resMailbox, pol *Resilience, self string, iter int, onRetry func() error) *phase {
	return &phase{
		mb:      mb,
		pol:     pol,
		self:    self,
		iter:    iter,
		onRetry: onRetry,
		retry:   pol.tf.newTimer(pol.backoff(self, iter, 0)),
		degrade: pol.tf.newTimer(pol.MessageDeadline),
	}
}

func (p *phase) stop() {
	p.retry.Stop()
	p.degrade.Stop()
}

// recv returns the next fresh message matching kind and iter. ok=false
// without an error means the degrade deadline expired: the caller falls
// back to its stale iterate for whatever is still missing.
func (p *phase) recv(kind Kind, iter int) (Message, bool, error) {
	for idx := 0; idx < len(p.mb.pending); idx++ {
		msg := p.mb.pending[idx]
		if msg.Iter <= p.mb.floor[floorKey{from: msg.From, kind: msg.Kind}] {
			// Degraded past while parked; drop silently (the peer was
			// already answered or is being helped by skipTo's dup path).
			p.mb.pending = append(p.mb.pending[:idx], p.mb.pending[idx+1:]...)
			idx--
			continue
		}
		if msg.Kind == kind && msg.Iter == iter {
			p.mb.pending = append(p.mb.pending[:idx], p.mb.pending[idx+1:]...)
			p.mb.consume(msg)
			return msg, true, nil
		}
	}
	if p.expired {
		return Message{}, false, nil
	}
	for {
		select {
		case msg, ok := <-p.mb.inbox:
			if !ok {
				return Message{}, false, ErrAborted
			}
			if !p.mb.fresh(msg) {
				continue
			}
			if msg.Kind == kind && msg.Iter == iter {
				p.mb.consume(msg)
				return msg, true, nil
			}
			p.mb.pending = append(p.mb.pending, msg)
		case <-p.retry.C():
			if p.attempt < p.pol.MaxRetries {
				if p.onRetry != nil {
					if err := p.onRetry(); err != nil {
						return Message{}, false, err
					}
				}
				p.attempt++
				p.pol.Tracer.Event(tracing.Context{}, "proto.retry",
					tracing.I64("iter", int64(p.iter)), tracing.I64("attempt", int64(p.attempt)))
				p.retry.Reset(p.pol.backoff(p.self, p.iter, p.attempt))
			}
		case <-p.degrade.C():
			p.expired = true
			p.pol.Tracer.Event(tracing.Context{}, "proto.degrade",
				tracing.I64("iter", int64(p.iter)), tracing.I64("kind", int64(kind)))
			p.pol.Flight.Dump("degrade-deadline")
			return Message{}, false, nil
		case <-p.mb.ctx.Done():
			return Message{}, false, p.mb.ctx.Err()
		}
	}
}

// deadMaskPayload encodes the dead-agent set as wire indices; agents
// decode it from the control broadcast to route around dead peers.
func deadMaskPayload(dead []string) []float64 {
	if len(dead) == 0 {
		return nil
	}
	out := make([]float64, 0, len(dead))
	for _, id := range dead {
		if idx, ok := agentIndex(id); ok {
			out = append(out, float64(idx))
		}
	}
	return out
}

// applyDeadMask decodes a control payload into the caller's peer masks.
// It returns ErrDeclaredDead when the caller itself is on the list.
func applyDeadMask(payload []float64, self string, deadFE, deadDC []bool) error {
	for _, v := range payload {
		idx := uint32(v)
		id := agentID(idx)
		if id == self {
			return ErrDeclaredDead
		}
		switch {
		case idx == 0:
		case idx%2 == 1:
			if i := int(idx-1) / 2; deadFE != nil && i < len(deadFE) {
				deadFE[i] = true
			}
		default:
			if j := int(idx-2) / 2; deadDC != nil && j < len(deadDC) {
				deadDC[j] = true
			}
		}
	}
	return nil
}

// controlPhase runs the end-of-round control wait shared by front-ends
// and datacenters: retransmit the residual report while blocked, and
// retry the whole phase up to DeadAfter deadlines before concluding the
// coordinator is gone. Rounds never advance past a missed control — the
// coordinator might have said stop.
func controlPhase(mb *resMailbox, pol *Resilience, ret *Retrier, tab *idTable, self string, iter int) (Message, error) {
	// The control answer legitimately takes a full coordinator gather
	// (coordRoundFactor deadlines) when the coordinator is degrading
	// around a dead agent — wait on that timescale, not the peer one.
	cpol := *pol
	cpol.MessageDeadline *= coordRoundFactor
	onRetry := func() error { return ret.Resend(tab.coord, KindReport, iter) }
	for try := 0; try < pol.DeadAfter; try++ {
		ph := newPhase(mb, &cpol, self, iter, onRetry)
		ctl, ok, err := ph.recv(KindControl, iter)
		ph.stop()
		if err != nil {
			return Message{}, err
		}
		if ok {
			return ctl, nil
		}
	}
	return Message{}, fmt.Errorf("%s iter %d control: %w", self, iter, ErrCoordinatorLost)
}

// finalPhase delivers the agent's final message and waits for the
// coordinator's ack, retransmitting while blocked. An unacked final is
// not an error: the coordinator may already hold it (ack lost) or has
// finalized around us by fallback.
func finalPhase(mb *resMailbox, pol *Resilience, ret *Retrier, tab *idTable, self string, iter int, final Message) error {
	if err := ret.Send(tab.coord, final); err != nil {
		return err
	}
	cpol := *pol
	cpol.MessageDeadline *= coordRoundFactor
	onRetry := func() error { return ret.Resend(tab.coord, KindFinal, iter) }
	for try := 0; try < pol.DeadAfter; try++ {
		ph := newPhase(mb, &cpol, self, iter, onRetry)
		_, ok, err := ph.recv(KindFinalAck, iter)
		ph.stop()
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
	}
	return nil
}

// runFrontEndRes is the resilient front-end agent i (see runFrontEnd for
// the numerical round structure).
func runFrontEndRes(ctx context.Context, e *core.Engine, t Transport, tab *idTable, i int, pol Resilience) error {
	inst := e.Instance()
	n := inst.Cloud.N()
	self := tab.fe[i]
	mb, err := newResMailbox(ctx, t, self)
	if err != nil {
		return err
	}
	ret := NewRetrier(t)
	// A duplicate routing ack path does not exist for front-ends: the only
	// inbound streams are aux, control and the final ack, none of which
	// solicit a resend from us beyond the proactive phase retries.
	rho, eps := e.Rho(), e.EffectiveEpsilon()
	loadScale, dualScale := e.LoadScale(), e.DualScale()

	aRow := make([]float64, n)
	varphiRow := make([]float64, n)
	lambdaRow := make([]float64, n)
	lambdaTilde := make([]float64, n)
	aTilde := make([]float64, n)
	got := make([]bool, n)
	stale := make([]int, n)
	deadDC := make([]bool, n)
	ws := e.NewStepWorkspace()
	// A live datacenter may spend a full MessageDeadline degrading a
	// silent front-end before its ã goes out (deadline ladder, see
	// resilience.go) — wait twice that before falling back to stale.
	apol := pol
	apol.MessageDeadline *= auxDeadlineFactor

	for iter := 1; ; iter++ {
		ret.NewRound(iter)
		// One head-sampled root span per front-end iteration; its context
		// rides the routing records (and the residual report) through the
		// hub tree, so a single trace links this agent's round to every
		// forwarding hop and to the coordinator's gather.
		sp := pol.Tracer.Root("fe.iter")
		sp.Attr("fe", int64(i))
		sp.Attr("iter", int64(iter))
		if err := e.LambdaStepInto(ws, i, aRow, varphiRow, lambdaTilde); err != nil {
			return fmt.Errorf("front-end %d iter %d: %w", i, iter, err)
		}
		live := 0
		for j := 0; j < n; j++ {
			got[j] = false
			if deadDC[j] {
				continue
			}
			live++
			if err := ret.Send(tab.dc[j], Message{
				Kind: KindRouting, Iter: iter, From: self,
				Payload: []float64{lambdaTilde[j], varphiRow[j]},
				Trace:   sp.Context(),
			}); err != nil {
				return fmt.Errorf("front-end %d iter %d send: %w", i, iter, err)
			}
		}

		// Gather ã from the live datacenters; a blocked wait retransmits
		// the routing rows the missing peers may never have received.
		onRetry := func() error {
			for j := 0; j < n; j++ {
				if !deadDC[j] && !got[j] {
					if err := ret.Resend(tab.dc[j], KindRouting, iter); err != nil {
						return err
					}
				}
			}
			return nil
		}
		ph := newPhase(mb, &apol, self, iter, onRetry)
		for recvd := 0; recvd < live; {
			msg, ok, err := ph.recv(KindAux, iter)
			if err != nil {
				ph.stop()
				return fmt.Errorf("front-end %d iter %d: %w", i, iter, err)
			}
			if !ok {
				break // degrade deadline: fall back to stale ã for the rest
			}
			var j int
			if !parseID(msg.From, "dc-", &j) || j < 0 || j >= n || len(msg.Payload) != 1 {
				continue
			}
			if deadDC[j] || got[j] {
				continue
			}
			aTilde[j] = msg.Payload[0]
			got[j] = true
			recvd++
		}
		ph.stop()
		for j := 0; j < n; j++ {
			if deadDC[j] {
				continue
			}
			if got[j] {
				stale[j] = 0
				continue
			}
			// Stale-block fallback: reuse the previous round's ã_ij.
			if chaosTrace {
				fmt.Fprintf(os.Stderr, "trace: %s stale aux dc-%d @%d\n", self, j, iter)
			}
			stale[j]++
			if stale[j] > pol.StalenessCap {
				return fmt.Errorf("front-end %d iter %d: datacenter %d stale %d rounds: %w",
					i, iter, j, stale[j], ErrStale)
			}
			mb.skipTo(tab.dc[j], KindAux, iter)
		}

		// Dual prediction and Gaussian back substitution; dead columns are
		// frozen (their duals stop moving and drop out of the residual).
		var residual float64
		for j := 0; j < n; j++ {
			if deadDC[j] {
				continue
			}
			varphiTilde := varphiRow[j] - rho*(aTilde[j]-lambdaTilde[j])
			newVarphi := varphiRow[j] + eps*(varphiTilde-varphiRow[j])
			if d := math.Abs(newVarphi-varphiRow[j]) / dualScale; d > residual {
				residual = d
			}
			varphiRow[j] = newVarphi
			aRow[j] += eps * (aTilde[j] - aRow[j])
			if d := math.Abs(aRow[j]-lambdaTilde[j]) / loadScale; d > residual {
				residual = d
			}
			lambdaRow[j] = lambdaTilde[j]
		}

		if err := ret.Send(tab.coord, Message{
			Kind: KindReport, Iter: iter, From: self, Payload: []float64{residual},
			Trace: sp.Context(),
		}); err != nil {
			return fmt.Errorf("front-end %d iter %d report: %w", i, iter, err)
		}
		sp.End()
		ctl, err := controlPhase(mb, &pol, ret, tab, self, iter)
		if err != nil {
			return err
		}
		if err := applyDeadMask(ctl.Payload, self, nil, deadDC); err != nil {
			return fmt.Errorf("front-end %d iter %d: %w", i, iter, err)
		}
		if ctl.Stop {
			final := append([]float64{float64(i)}, lambdaRow...)
			return finalPhase(mb, &pol, ret, tab, self, iter, Message{
				Kind: KindFinal, Iter: iter, From: self, Payload: final,
			})
		}
	}
}

// runDatacenterRes is the resilient datacenter agent j (see runDatacenter
// for the numerical round structure).
func runDatacenterRes(ctx context.Context, e *core.Engine, t Transport, tab *idTable, j int, pol Resilience) error {
	inst := e.Instance()
	m := inst.Cloud.M()
	self := tab.dc[j]
	mb, err := newResMailbox(ctx, t, self)
	if err != nil {
		return err
	}
	ret := NewRetrier(t)
	// A duplicate routing row means the front-end never saw our ã for that
	// round: retransmit it (solicited resend). Retention is two rounds; a
	// peer further behind is beyond catch-up and will be declared dead.
	mb.onDup = func(m Message) {
		if m.Kind == KindRouting {
			_ = ret.Resend(m.From, KindAux, m.Iter) //ufc:discard solicited resend is best-effort; the peer's own retries and the coordinator's liveness tracking own recovery
		}
	}
	rho, eps := e.Rho(), e.EffectiveEpsilon()
	dualScale := e.DualScale()
	disableCorrection := e.Options().DisableCorrection

	aCol := make([]float64, m)
	lambdaTildeCol := make([]float64, m)
	varphiCol := make([]float64, m)
	aTilde := make([]float64, m)
	got := make([]bool, m)
	stale := make([]int, m)
	deadFE := make([]bool, m)
	// The trace context of each front-end's current routing row, echoed on
	// the ã reply so the front-end's trace covers the round trip.
	feTrace := make([]tracing.Context, m)
	ws := e.NewStepWorkspace()
	var mu, nu, phi float64

	for iter := 1; ; iter++ {
		ret.NewRound(iter)
		live := 0
		for i := 0; i < m; i++ {
			got[i] = false
			if !deadFE[i] {
				live++
			}
		}
		// Gather routing rows; a blocked wait retransmits the previous
		// round's ã (the missing peers may be stuck waiting for it).
		onRetry := func() error {
			for i := 0; i < m; i++ {
				if !deadFE[i] && !got[i] {
					if err := ret.Resend(tab.fe[i], KindAux, iter-1); err != nil {
						return err
					}
				}
			}
			return nil
		}
		ph := newPhase(mb, &pol, self, iter, onRetry)
		for recvd := 0; recvd < live; {
			msg, ok, err := ph.recv(KindRouting, iter)
			if err != nil {
				ph.stop()
				return fmt.Errorf("datacenter %d iter %d: %w", j, iter, err)
			}
			if !ok {
				break // degrade deadline: reuse the stale routing rows
			}
			var i int
			if !parseID(msg.From, "fe-", &i) || i < 0 || i >= m || len(msg.Payload) != 2 {
				continue
			}
			if deadFE[i] || got[i] {
				continue
			}
			lambdaTildeCol[i] = msg.Payload[0]
			varphiCol[i] = msg.Payload[1]
			feTrace[i] = msg.Trace
			got[i] = true
			recvd++
		}
		ph.stop()
		for i := 0; i < m; i++ {
			if deadFE[i] {
				continue
			}
			if got[i] {
				stale[i] = 0
				continue
			}
			if chaosTrace {
				fmt.Fprintf(os.Stderr, "trace: %s stale routing fe-%d @%d\n", self, i, iter)
			}
			stale[i]++
			if stale[i] > pol.StalenessCap {
				return fmt.Errorf("datacenter %d iter %d: front-end %d stale %d rounds: %w",
					j, iter, i, stale[i], ErrStale)
			}
			feTrace[i] = tracing.Context{} // stale row: don't echo an old trace
			mb.skipTo(tab.fe[i], KindRouting, iter)
		}

		var sumA float64
		for i := 0; i < m; i++ {
			sumA += aCol[i]
		}
		muTilde := e.MuStep(j, sumA, nu, phi)
		nuTilde := e.NuStep(j, sumA, muTilde, phi)
		if err := e.AStepInto(ws, j, lambdaTildeCol, varphiCol, muTilde, nuTilde, phi, aTilde); err != nil {
			return fmt.Errorf("datacenter %d iter %d: %w", j, iter, err)
		}
		var sumATilde float64
		for i := 0; i < m; i++ {
			sumATilde += aTilde[i]
		}
		phiTilde := phi - rho*e.PowerBalance(j, sumATilde, muTilde, nuTilde)

		for i := 0; i < m; i++ {
			if deadFE[i] {
				continue
			}
			if err := ret.Send(tab.fe[i], Message{
				Kind: KindAux, Iter: iter, From: self,
				Payload: []float64{aTilde[i]},
				Trace:   feTrace[i],
			}); err != nil {
				return fmt.Errorf("datacenter %d iter %d send: %w", j, iter, err)
			}
		}

		newPhi := phi + eps*(phiTilde-phi)
		residual := math.Abs(newPhi-phi) / dualScale
		phi = newPhi
		var aDelta float64
		for i := 0; i < m; i++ {
			old := aCol[i]
			next := old + eps*(aTilde[i]-old)
			aDelta += next - old
			aCol[i] = next
		}
		nuOld := nu
		if disableCorrection {
			nu = nuTilde
			mu = muTilde
		} else {
			nu = nuOld + eps*(nuTilde-nuOld) + aDelta
			mu = mu + eps*(muTilde-mu) - (nu - nuOld) + aDelta
		}

		if err := ret.Send(tab.coord, Message{
			Kind: KindReport, Iter: iter, From: self, Payload: []float64{residual},
		}); err != nil {
			return fmt.Errorf("datacenter %d iter %d report: %w", j, iter, err)
		}
		ctl, err := controlPhase(mb, &pol, ret, tab, self, iter)
		if err != nil {
			return err
		}
		if err := applyDeadMask(ctl.Payload, self, deadFE, nil); err != nil {
			return fmt.Errorf("datacenter %d iter %d: %w", j, iter, err)
		}
		if ctl.Stop {
			return finalPhase(mb, &pol, ret, tab, self, iter, Message{
				Kind: KindFinal, Iter: iter, From: self,
				Payload: []float64{float64(j), mu, nu, phi},
			})
		}
	}
}

// runCoordinatorRes gathers residual reports with liveness tracking,
// declares persistently silent agents dead, broadcasts the dead set with
// each control message, and finalizes missing front-end routings by
// proximity fallback.
func runCoordinatorRes(ctx context.Context, e *core.Engine, t Transport, tab *idTable, pol Resilience) (*coordResult, error) {
	inst := e.Instance()
	m, n := inst.Cloud.M(), inst.Cloud.N()
	opts := e.Options()
	self := tab.coord
	// The gather deadline must dominate a worker's worst-case round: an
	// agent degrading around dead peers spends up to two MessageDeadlines
	// before its report goes out (deadline ladder, see resilience.go).
	// The third leaves a full deadline of margin, so a live agent's
	// report never races the cutoff — only structurally absent agents
	// are counted missed, which keeps liveness decisions (and therefore
	// replays) deterministic.
	pol.MessageDeadline *= coordRoundFactor
	mb, err := newResMailbox(ctx, t, self)
	if err != nil {
		return nil, err
	}
	ret := NewRetrier(t)
	stats := &core.Stats{}
	degr := &Degradation{}
	degraded := false

	agents := make([]string, 0, m+n)
	agents = append(agents, tab.fe...)
	agents = append(agents, tab.dc...)
	missed := make([]int, m+n)
	dead := make([]bool, m+n)
	got := make([]bool, m+n)
	reported := make([]float64, m+n)
	// Each agent's current report trace, echoed on its control reply so a
	// front-end's iteration trace covers the full round trip ("and back").
	reportTrace := make([]tracing.Context, m+n)

	liveCount := func() int {
		c := 0
		for k := range dead {
			if !dead[k] {
				c++
			}
		}
		return c
	}
	agentSlot := func(id string) int {
		var i int
		if parseID(id, "fe-", &i) && i < m {
			return i
		}
		if parseID(id, "dc-", &i) && i < n {
			return m + i
		}
		return -1
	}

	// A duplicate report means the agent never saw the control we answered
	// it with; a duplicate final means our ack was lost. Retransmit both.
	// A duplicate report is also proof of life: the sender is merely slow,
	// not gone, so its missed-round count restarts. Death is thereby
	// reserved for structural silence (crash, partition) — an agent whose
	// reports land late under scheduler pressure can delay a round but can
	// never be spuriously declared dead, which keeps the dead set (and so
	// the degraded trajectory) identical across same-seed replays.
	mb.onDup = func(msg Message) {
		switch msg.Kind {
		case KindReport:
			if k := agentSlot(msg.From); k >= 0 && !dead[k] {
				missed[k] = 0
			}
			_ = ret.Resend(msg.From, KindControl, msg.Iter) //ufc:discard solicited resend is best-effort; the agent keeps retrying its report until the control lands
		case KindFinal:
			_ = ret.Resend(msg.From, KindFinalAck, msg.Iter) //ufc:discard solicited resend is best-effort; an unacked agent retries its final and re-solicits
		}
	}

	broadcast := func(iter int, stop bool, mask []float64) error {
		for k, id := range agents {
			if dead[k] {
				continue
			}
			if err := ret.Send(id, Message{
				Kind: KindControl, Iter: iter, From: self, Stop: stop, Payload: mask,
				Trace: reportTrace[k],
			}); err != nil {
				return err
			}
		}
		return nil
	}

	lastIter := 0
	var mask []float64
	for iter := 1; iter <= opts.MaxIterations; iter++ {
		ret.NewRound(iter)
		for k := range got {
			got[k] = false
		}
		// Gather reports from live agents; a blocked wait retransmits the
		// previous control to the silent ones (they may be stuck in the
		// previous round's control phase).
		onRetry := func() error {
			if iter == 1 {
				return nil
			}
			for k, id := range agents {
				if !dead[k] && !got[k] {
					if err := ret.Resend(id, KindControl, iter-1); err != nil {
						return err
					}
				}
			}
			return nil
		}
		ph := newPhase(mb, &pol, self, iter, onRetry)
		live := liveCount()
		for recvd := 0; recvd < live; {
			msg, ok, err := ph.recv(KindReport, iter)
			if err != nil {
				ph.stop()
				return nil, fmt.Errorf("coordinator iter %d: %w", iter, err)
			}
			if !ok {
				break // degrade deadline: count the silent agents as missed
			}
			k := agentSlot(msg.From)
			if k < 0 || dead[k] || got[k] || len(msg.Payload) != 1 {
				continue
			}
			reported[k] = msg.Payload[0]
			reportTrace[k] = msg.Trace
			if msg.Trace.Valid() {
				pol.Tracer.Event(msg.Trace, "coord.report", tracing.I64("iter", int64(iter)), tracing.Attr{})
			}
			got[k] = true
			recvd++
		}
		ph.stop()

		missedThisRound := 0
		var residual float64
		for k := range agents {
			if dead[k] {
				continue
			}
			if got[k] {
				missed[k] = 0
				if reported[k] > residual {
					residual = reported[k]
				}
				continue
			}
			missedThisRound++
			degr.MissedReports++
			missed[k]++
			if chaosTrace {
				fmt.Fprintf(os.Stderr, "trace: coord missed %s @%d (count %d)\n", agents[k], iter, missed[k])
			}
			reportTrace[k] = tracing.Context{} // missed round: no trace to echo
			mb.skipTo(agents[k], KindReport, iter)
			if missed[k] >= pol.DeadAfter {
				dead[k] = true
				degr.DeadAgents = append(degr.DeadAgents, agents[k])
				pol.Tracer.Event(tracing.Context{}, "coord.dead",
					tracing.I64("iter", int64(iter)), tracing.I64("agent", int64(k)))
				pol.Flight.Dump("agent-dead")
				if chaosTrace {
					fmt.Fprintf(os.Stderr, "trace: coord declared %s dead @%d\n", agents[k], iter)
				}
			}
		}
		if missedThisRound > 0 {
			degraded = true
			degr.StaleRounds++
			pol.Tracer.Event(tracing.Context{}, "coord.round",
				tracing.I64("iter", int64(iter)), tracing.I64("missed", int64(missedThisRound)))
		}

		stats.Iterations = iter
		stats.FinalResidual = residual
		opts.Probe.ObserveIteration(residual)
		if opts.TrackResiduals {
			stats.ResidualTrace = append(stats.ResidualTrace, residual)
		}
		// Stop only on a fully-reported round below tolerance: a round
		// with missing reports may under-estimate the true residual.
		stop := (missedThisRound == 0 && residual <= opts.Tolerance) || iter == opts.MaxIterations
		stats.Converged = residual <= opts.Tolerance && missedThisRound == 0
		mask = deadMaskPayload(degr.DeadAgents)
		if err := broadcast(iter, stop, mask); err != nil {
			return nil, fmt.Errorf("coordinator iter %d broadcast: %w", iter, err)
		}
		if stop {
			lastIter = iter
			break
		}
	}
	// Distributed runs always start from the zero iterate.
	opts.Probe.ObserveSolve(stats.Iterations, stats.FinalResidual, stats.Converged, false)

	// Collect finals from the live agents, acking each so the senders can
	// retire their retransmission loops. A blocked wait retransmits the
	// stop control — an agent stuck in its control phase has not seen it.
	lambda := make([][]float64, m)
	haveFinal := make([]bool, m+n)
	need := liveCount()
	onRetry := func() error {
		for k, id := range agents {
			if !dead[k] && !haveFinal[k] {
				if err := ret.Resend(id, KindControl, lastIter); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for try := 0; try < pol.DeadAfter && need > 0; try++ {
		ph := newPhase(mb, &pol, self, lastIter, onRetry)
		for need > 0 {
			msg, ok, err := ph.recv(KindFinal, lastIter)
			if err != nil {
				ph.stop()
				return nil, fmt.Errorf("coordinator finals: %w", err)
			}
			if !ok {
				break
			}
			k := agentSlot(msg.From)
			if k < 0 || haveFinal[k] {
				continue
			}
			haveFinal[k] = true
			need--
			if err := ret.Send(msg.From, Message{
				Kind: KindFinalAck, Iter: lastIter, From: self,
			}); err != nil {
				return nil, fmt.Errorf("coordinator final ack: %w", err)
			}
			if len(msg.Payload) == n+1 {
				if i := int(msg.Payload[0]); i >= 0 && i < m && msg.From == tab.fe[i] {
					lambda[i] = append([]float64(nil), msg.Payload[1:]...)
				}
			}
		}
		ph.stop()
	}
	// Proximity fallback: a front-end that died (or went silent) before
	// delivering its final routing sends all demand to its nearest
	// datacenter — the degradation policy for crashed demand sources.
	for i := 0; i < m; i++ {
		if lambda[i] != nil {
			continue
		}
		row := make([]float64, n)
		best := 0
		for j := 1; j < n; j++ {
			if inst.Cloud.LatencySec(i, j) < inst.Cloud.LatencySec(i, best) {
				best = j
			}
		}
		row[best] = inst.Arrivals[i]
		lambda[i] = row
		degr.ProximityFrontEnds = append(degr.ProximityFrontEnds, i)
		degraded = true
	}
	if len(degr.DeadAgents) > 0 || degr.MissedReports > 0 {
		degraded = true
	}
	if !degraded {
		degr = nil
	}
	return &coordResult{lambda: lambda, stats: stats, degr: degr}, nil
}
