//go:build gobbaseline

package distsim

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// This file retains the original gob-encoded TCP transport as a measured
// baseline for the binary wire codec (see wire.go): every message was a
// gob envelope written to the socket unbuffered, one syscall per send.
// It is compiled only under the gobbaseline build tag — the production
// build carries no gob dependency — and its correctness test plus
// BenchmarkTransportThroughputGob / BenchmarkSolveDistributedTCPGob in
// the repository root (same tag) pin its msgs/sec and bytes/msg so the
// speedup of the framed transport stays quantified:
//
//	go test -tags gobbaseline -bench Gob .
//
// Do not use it in new code.

// envelope is the gob wire frame between nodes and the hub.
type envelope struct {
	To string
	M  Message
}

// hello registers a node's local agent ids with the gob hub.
type hello struct {
	IDs []string
}

// GobTCPHub is the legacy gob-encoded message router. Nodes connect over
// TCP, register the agent ids they host, and exchange gob envelopes which
// the hub re-encodes towards the node hosting the destination. Messages
// for ids that have not registered yet are queued and flushed on
// registration.
type GobTCPHub struct {
	ln net.Listener

	mu      sync.Mutex
	routes  map[string]*gobHubConn
	pending map[string][]envelope
	closed  bool
	wg      sync.WaitGroup
}

type gobHubConn struct {
	mu  sync.Mutex
	enc *gob.Encoder
	c   net.Conn
}

func (hc *gobHubConn) send(env envelope) error {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	return hc.enc.Encode(env)
}

// NewGobTCPHub listens on addr (e.g. "127.0.0.1:0") and serves until
// Close.
func NewGobTCPHub(addr string) (*GobTCPHub, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("distsim: gob hub listen: %w", err)
	}
	h := &GobTCPHub{
		ln:      ln,
		routes:  make(map[string]*gobHubConn),
		pending: make(map[string][]envelope),
	}
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// Addr returns the hub's listen address.
func (h *GobTCPHub) Addr() string { return h.ln.Addr().String() }

// Close stops the hub and disconnects all nodes.
func (h *GobTCPHub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	conns := make([]*gobHubConn, 0, len(h.routes))
	seen := map[*gobHubConn]bool{}
	//ufc:nondet teardown order of connections carries no numeric state
	for _, hc := range h.routes {
		if !seen[hc] {
			conns = append(conns, hc)
			seen[hc] = true
		}
	}
	h.mu.Unlock()
	err := h.ln.Close()
	for _, hc := range conns {
		_ = hc.c.Close() //ufc:discard hub is shutting down; the listener error is already captured
	}
	h.wg.Wait()
	return err
}

func (h *GobTCPHub) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return
		}
		h.wg.Add(1)
		go h.serveConn(conn)
	}
}

func (h *GobTCPHub) serveConn(conn net.Conn) {
	defer h.wg.Done()
	dec := gob.NewDecoder(conn)
	hc := &gobHubConn{enc: gob.NewEncoder(conn), c: conn}
	var hi hello
	if err := dec.Decode(&hi); err != nil {
		_ = conn.Close() //ufc:discard handshake already failed; decode error wins
		return
	}
	h.mu.Lock()
	var backlog []envelope
	for _, id := range hi.IDs {
		h.routes[id] = hc
		backlog = append(backlog, h.pending[id]...)
		delete(h.pending, id)
	}
	h.mu.Unlock()
	for _, env := range backlog {
		if err := hc.send(env); err != nil {
			_ = conn.Close() //ufc:discard backlog replay already failed; send error wins
			return
		}
	}
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				_ = conn.Close() //ufc:discard read loop already ended with its own error
			}
			return
		}
		h.route(env)
	}
}

func (h *GobTCPHub) route(env envelope) {
	h.mu.Lock()
	target, ok := h.routes[env.To]
	if !ok {
		h.pending[env.To] = append(h.pending[env.To], env)
		h.mu.Unlock()
		return
	}
	h.mu.Unlock()
	_ = target.send(env)
}

// GobTCPNode is the legacy gob Transport matching GobTCPHub. It carries
// the same counters as TCPNode so benchmarks can compare bytes/msg.
type GobTCPNode struct {
	conn     net.Conn
	counters transportCounters

	encMu sync.Mutex
	enc   *gob.Encoder
	cw    *countingWriter

	mu     sync.Mutex
	boxes  map[string]chan Message
	closed bool
	done   chan struct{}
}

var _ Transport = (*GobTCPNode)(nil)

// countingWriter counts bytes written to the socket.
type countingWriter struct {
	w        io.Writer
	counters *transportCounters
	n        int
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += n
	return n, err
}

// NewGobTCPNode connects to the gob hub and registers the local agent
// ids.
func NewGobTCPNode(hubAddr string, localIDs []string, buffer int) (*GobTCPNode, error) {
	if buffer <= 0 {
		buffer = 64
	}
	conn, err := net.Dial("tcp", hubAddr)
	if err != nil {
		return nil, fmt.Errorf("distsim: gob node dial: %w", err)
	}
	n := &GobTCPNode{
		conn:  conn,
		boxes: make(map[string]chan Message, len(localIDs)),
		done:  make(chan struct{}),
	}
	n.cw = &countingWriter{w: conn, counters: &n.counters}
	n.enc = gob.NewEncoder(n.cw)
	for _, id := range localIDs {
		n.boxes[id] = make(chan Message, buffer)
	}
	if err := n.enc.Encode(hello{IDs: localIDs}); err != nil {
		_ = conn.Close() //ufc:discard the hello encode error is the one returned
		return nil, fmt.Errorf("distsim: gob node hello: %w", err)
	}
	go n.readLoop()
	return n, nil
}

// Stats returns a snapshot of the node's transport counters.
func (n *GobTCPNode) Stats() TransportStats { return n.counters.snapshot() }

func (n *GobTCPNode) readLoop() {
	dec := gob.NewDecoder(n.conn)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			n.mu.Lock()
			if !n.closed {
				n.closed = true
				close(n.done)
				//ufc:nondet close order of receive boxes is observationally irrelevant
				for _, box := range n.boxes {
					close(box)
				}
			}
			n.mu.Unlock()
			return
		}
		n.counters.noteRecv(0)
		n.mu.Lock()
		box, ok := n.boxes[env.To]
		closed := n.closed
		n.mu.Unlock()
		if closed {
			return
		}
		if ok {
			select {
			case box <- env.M:
			case <-n.done:
				return
			}
		}
	}
}

// Send implements Transport. Every send is one gob encode plus one
// unbuffered socket write — the baseline the framed transport replaces.
// After Close it consistently returns an error matching ErrClosed.
func (n *GobTCPNode) Send(to string, m Message) error {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return fmt.Errorf("distsim: gob node send to %q: %w", to, ErrClosed)
	}
	n.encMu.Lock()
	defer n.encMu.Unlock()
	n.cw.n = 0
	if err := n.enc.Encode(envelope{To: to, M: m}); err != nil {
		n.mu.Lock()
		closed := n.closed
		n.mu.Unlock()
		if closed {
			return fmt.Errorf("distsim: gob node send to %q: %w", to, ErrClosed)
		}
		return fmt.Errorf("distsim: gob node send to %q: %w: %v", to, ErrClosed, err)
	}
	n.counters.noteSend(n.cw.n)
	return nil
}

// Inbox implements Transport.
func (n *GobTCPNode) Inbox(id string) (<-chan Message, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	box, ok := n.boxes[id]
	if !ok {
		return nil, fmt.Errorf("inbox of %q: %w", id, ErrUnknownAgent)
	}
	return box, nil
}

// Close implements Transport.
func (n *GobTCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.mu.Unlock()
	err := n.conn.Close() // readLoop notices and closes the boxes
	return err
}
