package distsim

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"repro/internal/telemetry/tracing"
)

// Serving-plane wire records. A control-plane hub (HubOptions.Decider set)
// answers two extra record kinds on its node links:
//
//	lookup   (0x0a): a front-end decision request
//	           byte    frameKindLookup (| 0x40 when trace-context tagged)
//	           uvarint front-end index
//	           8 bytes request id, little-endian (echoed verbatim)
//	           8 bytes entropy, little-endian (inverted through the
//	                   snapshot's routing distribution)
//	           16 optional trace-context bytes (trace id + span id,
//	                   little-endian), present iff the head carries the
//	                   traced flag; untraced lookups are byte-identical
//	                   to the pre-tracing format
//	decision (0x0b): the answer
//	           byte    frameKindDecision
//	           byte    status (0 = ok, 1 = no snapshot / unknown fe)
//	           8 bytes request id, little-endian
//	           uvarint datacenter index
//	           uvarint slot sequence number
//	           8 bytes snapshot age in nanoseconds, little-endian
//	cpstats  (0x09): pipeline statistics; a 1-byte body is the request,
//	           a longer body is the response:
//	           byte    frameKindCPStats
//	           uvarint value count
//	           8 bytes per value, little-endian float64 (the layout is
//	                   owned by internal/controlplane's StatsPayload)
//
// Lookups are answered inline on the receiving connection — they never
// touch the routing table, the parent link, or any lock; the Decider's
// read path is an atomic snapshot load. All three heads sit above the
// message-kind range (1..6), so they are unambiguous as first body bytes.
const (
	frameKindCPStats  byte = 0x09
	frameKindLookup   byte = 0x0a
	frameKindDecision byte = 0x0b

	decisionStatusOK          byte = 0
	decisionStatusUnavailable byte = 1
)

// A Decider serves routing decisions and pipeline statistics for a hub
// running as a control plane. Implementations must be safe for concurrent
// use from every hub connection goroutine, and Decide must not block —
// it runs on the hub's read loops. internal/controlplane's Pipeline is
// the implementation; the indirection keeps the wire layer solver-free.
type Decider interface {
	// Decide resolves front-end fe using caller entropy u. ok is false
	// when no snapshot is published yet or fe is out of range.
	Decide(fe uint32, u uint64) (dc uint32, slot uint64, ageNanos int64, ok bool)
	// StatsPayload appends the implementation's statistics vector to dst
	// and returns it (layout owned by the implementation).
	StatsPayload(dst []float64) []float64
}

// A TraceDecider additionally answers traced lookups: tc is the hub-side
// span context so the decider's own span (e.g. the pipeline's snapshot
// read) parents under the hub's. Deciders that don't implement it still
// serve traced lookups — the hub just falls back to Decide.
type TraceDecider interface {
	Decider
	DecideTraced(fe uint32, u uint64, tc tracing.Context) (dc uint32, slot uint64, ageNanos int64, ok bool)
}

// appendLookup appends the length-prefixed lookup record. A valid tc
// sets the traced flag on the head byte and rides as a 16-byte suffix.
//
//ufc:hotpath
func appendLookup(dst []byte, fe uint32, reqID, u uint64, tc tracing.Context) []byte {
	head := frameKindLookup
	body := 1 + uvarintLen(uint64(fe)) + 8 + 8
	if tc.Valid() {
		head |= frameFlagTraced
		body += traceSuffixLen
	}
	dst = binary.AppendUvarint(dst, uint64(body))
	dst = append(dst, head)
	dst = binary.AppendUvarint(dst, uint64(fe))
	dst = binary.LittleEndian.AppendUint64(dst, reqID)
	dst = binary.LittleEndian.AppendUint64(dst, u)
	if tc.Valid() {
		dst = appendTraceSuffix(dst, tc)
	}
	return dst
}

// peekLookup reports whether a record body is a lookup request (traced
// or not).
//
//ufc:hotpath
func peekLookup(b []byte) bool {
	return len(b) > 0 && b[0]&^frameFlagTraced == frameKindLookup
}

// parseLookup parses a lookup body; tc is zero for untraced lookups.
func parseLookup(b []byte) (fe uint32, reqID, u uint64, tc tracing.Context, err error) {
	c := byteCursor{b: b}
	head, err := c.u8()
	if err != nil {
		return 0, 0, 0, tc, err
	}
	if head&^frameFlagTraced != frameKindLookup {
		return 0, 0, 0, tc, fmt.Errorf("%w: expected lookup, got head byte %#02x", ErrFrameInvalid, head)
	}
	feU, err := c.uvarint()
	if err != nil {
		return 0, 0, 0, tc, err
	}
	if feU >= maxWireAgents {
		return 0, 0, 0, tc, fmt.Errorf("%w: lookup front-end %d out of range", ErrFrameInvalid, feU)
	}
	idRaw, err := c.bytes(8)
	if err != nil {
		return 0, 0, 0, tc, err
	}
	uRaw, err := c.bytes(8)
	if err != nil {
		return 0, 0, 0, tc, err
	}
	if head&frameFlagTraced != 0 {
		tcRaw, err := c.bytes(traceSuffixLen)
		if err != nil {
			return 0, 0, 0, tc, err
		}
		tc = parseTraceSuffix(tcRaw)
	}
	if c.off != len(b) {
		return 0, 0, 0, tc, fmt.Errorf("%w: %d trailing lookup bytes", ErrFrameInvalid, len(b)-c.off)
	}
	return uint32(feU), binary.LittleEndian.Uint64(idRaw), binary.LittleEndian.Uint64(uRaw), tc, nil
}

// appendDecision appends the length-prefixed decision record.
//
//ufc:hotpath
func appendDecision(dst []byte, d Decision) []byte {
	status := decisionStatusOK
	if !d.OK {
		status = decisionStatusUnavailable
	}
	body := 2 + 8 + uvarintLen(uint64(d.DC)) + uvarintLen(d.Slot) + 8
	dst = binary.AppendUvarint(dst, uint64(body))
	dst = append(dst, frameKindDecision, status)
	dst = binary.LittleEndian.AppendUint64(dst, d.ReqID)
	dst = binary.AppendUvarint(dst, uint64(d.DC))
	dst = binary.AppendUvarint(dst, d.Slot)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(d.AgeNanos))
	return dst
}

// Decision is one answered lookup as seen by a client.
type Decision struct {
	ReqID    uint64
	DC       uint32
	Slot     uint64
	AgeNanos int64
	OK       bool
}

// peekDecision reports whether a record body is a decision.
//
//ufc:hotpath
func peekDecision(b []byte) bool {
	return len(b) > 0 && b[0] == frameKindDecision
}

// parseDecision parses a decision body.
func parseDecision(b []byte) (Decision, error) {
	var d Decision
	c := byteCursor{b: b}
	head, err := c.u8()
	if err != nil {
		return d, err
	}
	if head != frameKindDecision {
		return d, fmt.Errorf("%w: expected decision, got head byte %#02x", ErrFrameInvalid, head)
	}
	status, err := c.u8()
	if err != nil {
		return d, err
	}
	if status != decisionStatusOK && status != decisionStatusUnavailable {
		return d, fmt.Errorf("%w: decision status %d", ErrFrameInvalid, status)
	}
	d.OK = status == decisionStatusOK
	idRaw, err := c.bytes(8)
	if err != nil {
		return d, err
	}
	d.ReqID = binary.LittleEndian.Uint64(idRaw)
	dc, err := c.uvarint()
	if err != nil {
		return d, err
	}
	if dc >= maxWireAgents {
		return d, fmt.Errorf("%w: decision datacenter %d out of range", ErrFrameInvalid, dc)
	}
	d.DC = uint32(dc)
	if d.Slot, err = c.uvarint(); err != nil {
		return d, err
	}
	ageRaw, err := c.bytes(8)
	if err != nil {
		return d, err
	}
	d.AgeNanos = int64(binary.LittleEndian.Uint64(ageRaw))
	if c.off != len(b) {
		return d, fmt.Errorf("%w: %d trailing decision bytes", ErrFrameInvalid, len(b)-c.off)
	}
	return d, nil
}

// appendCPStatsRequest appends the single-byte stats request record.
func appendCPStatsRequest(dst []byte) []byte {
	return append(dst, 1, frameKindCPStats)
}

// appendCPStatsResponse appends the stats response carrying vals.
func appendCPStatsResponse(dst []byte, vals []float64) []byte {
	body := 1 + uvarintLen(uint64(len(vals))) + 8*len(vals)
	dst = binary.AppendUvarint(dst, uint64(body))
	dst = append(dst, frameKindCPStats)
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// peekCPStats reports whether a record body is a stats record and whether
// it is the bare request form.
func peekCPStats(b []byte) (isStats, isRequest bool) {
	if len(b) == 0 || b[0] != frameKindCPStats {
		return false, false
	}
	return true, len(b) == 1
}

// parseCPStatsResponse parses a stats response into its value vector.
func parseCPStatsResponse(b []byte) ([]float64, error) {
	c := byteCursor{b: b}
	head, err := c.u8()
	if err != nil {
		return nil, err
	}
	if head != frameKindCPStats {
		return nil, fmt.Errorf("%w: expected cpstats, got head byte %#02x", ErrFrameInvalid, head)
	}
	count, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if count > uint64(len(b))/8+1 {
		return nil, fmt.Errorf("%w: cpstats count %d", ErrFrameInvalid, count)
	}
	vals := make([]float64, 0, count)
	for k := uint64(0); k < count; k++ {
		raw, err := c.bytes(8)
		if err != nil {
			return nil, err
		}
		vals = append(vals, math.Float64frombits(binary.LittleEndian.Uint64(raw)))
	}
	if c.off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing cpstats bytes", ErrFrameInvalid, len(b)-c.off)
	}
	return vals, nil
}

// answerLookup decodes one lookup from hc, resolves it against the
// decider and enqueues the decision on the same connection. It allocates
// nothing in steady state (pooled frame in, pooled frame out).
//
//ufc:hotpath
func (h *TCPHub) answerLookup(hc *hubConn, body []byte, d Decider) error {
	fe, reqID, u, tc, err := parseLookup(body)
	if err != nil {
		return err
	}
	var dec Decision
	dec.ReqID = reqID
	sp := h.tracer.Start(tc, "hub.lookup")
	if sp.Live() {
		if td, ok := d.(TraceDecider); ok {
			dec.DC, dec.Slot, dec.AgeNanos, dec.OK = td.DecideTraced(fe, u, sp.Context())
		} else {
			dec.DC, dec.Slot, dec.AgeNanos, dec.OK = d.Decide(fe, u)
		}
		sp.Attr("fe", int64(fe))
		sp.Attr("dc", int64(dec.DC))
		sp.Attr("slot", int64(dec.Slot))
		sp.End()
	} else {
		dec.DC, dec.Slot, dec.AgeNanos, dec.OK = d.Decide(fe, u)
	}
	fb := getFrame()
	fb.b = appendDecision(fb.b, dec)
	if err := hc.cw.enqueue(fb); err != nil {
		putFrame(fb)
		// Writer already failed; the read loop will surface it next.
		return nil
	}
	h.counters.decisions.Inc()
	return nil
}

// answerStats replies to a stats request on hc's connection.
func (h *TCPHub) answerStats(hc *hubConn, d Decider) {
	var scratch [24]float64
	vals := d.StatsPayload(scratch[:0])
	fb := getFrame()
	fb.b = appendCPStatsResponse(fb.b, vals)
	if err := hc.cw.enqueue(fb); err != nil {
		putFrame(fb)
	}
}

// LookupClient is the front-end side of the serving plane: a single TCP
// connection to a control-plane hub over which it pipelines lookup
// requests and receives decisions. Responses are delivered to the
// OnDecision callback from the client's read goroutine — callers match
// them to requests by the echoed request id. A load generator runs many
// clients, each multiplexing the traffic of thousands of simulated users.
type LookupClient struct {
	conn     net.Conn
	cw       *connWriter
	counters transportCounters

	// OnDecision receives every decision record, in arrival order, from
	// the read goroutine. Set before the first Lookup; must not block.
	OnDecision func(Decision)

	statsMu sync.Mutex
	statsCh chan []float64

	haltOnce sync.Once
	done     chan struct{}

	wireVersion int
}

// DialLookup connects to a hub and registers under name (any non-standard
// id; each client needs a distinct one). The returned client is ready
// once its OnDecision callback is set.
//
// Deprecated: use Dial with DialConfig.LookupName, which adds transport
// security and context control. This wrapper delegates to
// Dial(context.Background(), ...).
func DialLookup(hubAddr, name string, onDecision func(Decision)) (*LookupClient, error) {
	//ufc:ctx deprecated shim: the caller chose the pre-context API and owns the root
	ep, err := Dial(context.Background(), DialConfig{
		Addr:       hubAddr,
		LookupName: name,
		OnDecision: onDecision,
	})
	if err != nil {
		return nil, err
	}
	return ep.(*LookupClient), nil
}

// newLookupClient builds a lookup client on an established (already
// secured and version-negotiated) connection: the coalescing writer, the
// registering hello, and the read loop.
func newLookupClient(conn net.Conn, wireVersion int, name string, onDecision func(Decision)) (*LookupClient, error) {
	c := &LookupClient{conn: conn, OnDecision: onDecision, done: make(chan struct{}), wireVersion: wireVersion}
	c.cw = newConnWriter(conn, 1024, &c.counters, nil)
	fb := getFrame()
	fb.b = appendHello(fb.b, []string{name})
	if err := c.cw.enqueue(fb); err != nil {
		putFrame(fb)
		c.cw.close(err)
		return nil, fmt.Errorf("distsim: lookup hello: %w", err)
	}
	go c.readLoop()
	return c, nil
}

// Lookup enqueues one decision request. reqID is echoed back in the
// decision; u is the routing entropy. Steady-state sends allocate
// nothing and coalesce like every other wire write.
//
//ufc:hotpath
func (c *LookupClient) Lookup(fe uint32, reqID, u uint64) error {
	return c.LookupTraced(fe, reqID, u, tracing.Context{})
}

// LookupTraced is Lookup with a trace context riding on the request, so
// the hub's and pipeline's spans join the caller's trace. A zero context
// sends a plain (byte-identical to untraced) lookup.
//
//ufc:hotpath
func (c *LookupClient) LookupTraced(fe uint32, reqID, u uint64, tc tracing.Context) error {
	fb := getFrame()
	fb.b = appendLookup(fb.b, fe, reqID, u, tc)
	if err := c.cw.enqueue(fb); err != nil {
		putFrame(fb)
		return err
	}
	return nil
}

// QueryStats requests the hub's control-plane statistics vector and waits
// up to timeout for the response.
func (c *LookupClient) QueryStats(timeout time.Duration) ([]float64, error) {
	c.statsMu.Lock()
	if c.statsCh == nil {
		c.statsCh = make(chan []float64, 1)
	}
	ch := c.statsCh
	c.statsMu.Unlock()
	fb := getFrame()
	fb.b = appendCPStatsRequest(fb.b)
	if err := c.cw.enqueue(fb); err != nil {
		putFrame(fb)
		return nil, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case vals := <-ch:
		return vals, nil
	case <-c.done:
		return nil, ErrClosed
	case <-timer.C:
		return nil, fmt.Errorf("distsim: stats query timed out after %v", timeout)
	}
}

// Stats returns a snapshot of the client's transport counters.
func (c *LookupClient) Stats() TransportStats { return c.counters.snapshot() }

// WireVersion reports the protocol version negotiated at dial time.
func (c *LookupClient) WireVersion() int { return c.wireVersion }

func (c *LookupClient) sealedEndpoint() {}

func (c *LookupClient) readLoop() {
	br := bufio.NewReaderSize(c.conn, 64<<10)
	var scratch []byte
	for {
		body, wire, err := readRecord(br, &scratch)
		if err != nil {
			c.halt(err)
			return
		}
		c.counters.noteRecv(wire)
		if peekDecision(body) {
			d, err := parseDecision(body)
			if err != nil {
				c.halt(err)
				return
			}
			if cb := c.OnDecision; cb != nil {
				cb(d)
			}
			continue
		}
		if isStats, isReq := peekCPStats(body); isStats && !isReq {
			vals, err := parseCPStatsResponse(body)
			if err != nil {
				c.halt(err)
				return
			}
			c.statsMu.Lock()
			ch := c.statsCh
			c.statsMu.Unlock()
			if ch != nil {
				select {
				case ch <- vals:
				default:
				}
			}
			continue
		}
		if _, pong := parseHeartbeat(body); pong {
			c.counters.pingsRecv.Inc()
			continue
		}
		// Anything else on a lookup link is a protocol error.
		c.halt(fmt.Errorf("%w: unexpected record on lookup link", ErrFrameInvalid))
		return
	}
}

func (c *LookupClient) halt(cause error) {
	c.haltOnce.Do(func() {
		c.cw.fail(cause)
		close(c.done)
	})
}

// Err returns the terminal error once the link is down, nil while live.
func (c *LookupClient) Err() error {
	select {
	case <-c.done:
		return c.cw.closeErr()
	default:
		return nil
	}
}

// Close flushes queued requests and tears the connection down.
func (c *LookupClient) Close() error {
	c.cw.shutdown()
	c.halt(ErrClosed)
	return nil
}
