package distsim

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// frameBuf is a pooled, encoded wire record (length prefix included).
// Ownership transfers with the buffer: whoever holds it last returns it
// to the pool.
type frameBuf struct {
	b []byte
}

// maxPooledFrame keeps the pool from retaining rare oversized buffers.
const maxPooledFrame = 64 << 10

var framePool = sync.Pool{New: func() any { return new(frameBuf) }}

func getFrame() *frameBuf {
	fb := framePool.Get().(*frameBuf)
	fb.b = fb.b[:0]
	return fb
}

func putFrame(fb *frameBuf) {
	if cap(fb.b) <= maxPooledFrame {
		framePool.Put(fb)
	}
}

// connWriter owns the write half of one TCP connection. Senders enqueue
// encoded records; a single writer goroutine drains every record waiting
// in the queue into one bufio.Writer and flushes when the queue goes
// momentarily idle, so a burst of N sends costs one syscall instead of N.
// Steady-state enqueues allocate nothing: records live in pooled
// frameBufs handed over through a buffered channel.
type connWriter struct {
	conn      net.Conn
	q         chan *frameBuf
	done      chan struct{}
	drain     chan struct{}
	once      sync.Once
	drainOnce sync.Once
	counters  *transportCounters
	// wrap, set on hub↔hub links, wraps every multi-record write batch in
	// a single batch record (see appendBatchFrame), so the peer receives
	// one record per flush instead of one per message. Single records pass
	// through unwrapped; receivers accept both forms.
	wrap bool
	// onFail, when set, receives every record that was enqueued but never
	// written after a write error (the hub uses it to requeue messages
	// for a reconnecting node). Ownership of the frameBufs transfers to
	// the callback.
	onFail func(unsent []*frameBuf)
	wg     sync.WaitGroup

	errMu sync.Mutex
	err   error
}

func newConnWriter(conn net.Conn, queue int, counters *transportCounters, onFail func([]*frameBuf)) *connWriter {
	return newConnWriterWrap(conn, queue, counters, false, onFail)
}

// newConnWriterWrap is newConnWriter with explicit batch wrapping (hub
// peer links set wrap; node links never do).
func newConnWriterWrap(conn net.Conn, queue int, counters *transportCounters, wrap bool, onFail func([]*frameBuf)) *connWriter {
	if queue <= 0 {
		queue = 256
	}
	cw := &connWriter{
		conn:     conn,
		q:        make(chan *frameBuf, queue),
		done:     make(chan struct{}),
		drain:    make(chan struct{}),
		counters: counters,
		wrap:     wrap,
		onFail:   onFail,
	}
	cw.wg.Add(1)
	go cw.loop()
	return cw
}

// enqueue hands a record to the writer. On success the writer owns fb; on
// error the caller keeps ownership (so the hub can requeue the bytes).
//
//ufc:hotpath
func (cw *connWriter) enqueue(fb *frameBuf) error {
	select {
	case <-cw.done:
		return cw.closeErr()
	case <-cw.drain:
		return cw.closeErr()
	default:
	}
	select {
	case cw.q <- fb:
		return nil
	case <-cw.done:
		return cw.closeErr()
	}
}

// fail shuts the writer down once: it records the cause, unblocks
// senders, and closes the connection (which also unblocks any in-flight
// write and the peer read loop). A nil or ErrClosed cause reads as a
// deliberate close; anything else is wrapped so callers still match
// errors.Is(err, ErrClosed).
func (cw *connWriter) fail(cause error) {
	cw.once.Do(func() {
		cw.errMu.Lock()
		if cause == nil || errors.Is(cause, ErrClosed) {
			cw.err = ErrClosed
		} else {
			cw.err = fmt.Errorf("%w: %v", ErrClosed, cause)
		}
		cw.errMu.Unlock()
		close(cw.done)
		_ = cw.conn.Close() //ufc:discard the writer is failing with its own cause already
	})
}

func (cw *connWriter) closeErr() error {
	cw.errMu.Lock()
	defer cw.errMu.Unlock()
	if cw.err == nil {
		return ErrClosed
	}
	return cw.err
}

// close tears the writer down and waits for the goroutine to exit.
func (cw *connWriter) close(cause error) {
	cw.fail(cause)
	cw.wg.Wait()
}

// shutdown is the graceful counterpart of close: it stops accepting new
// records, flushes everything already queued to the socket (bounded by a
// write deadline so a dead peer cannot wedge Close), and only then tears
// the connection down. Sends are asynchronous, so without this a Close
// right after the final Send of a protocol run would drop the tail of
// the queue — exactly the records a remote coordinator is waiting for.
func (cw *connWriter) shutdown() {
	//ufc:discard a failed deadline set degrades to a blocking flush, which fail() still bounds
	_ = cw.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	cw.drainOnce.Do(func() { close(cw.drain) })
	cw.wg.Wait()
	cw.fail(ErrClosed)
}

// maxCoalescedBytes bounds one write batch, keeping memory and flush
// latency in check under sustained bursts.
const maxCoalescedBytes = 64 << 10

func (cw *connWriter) loop() {
	defer cw.wg.Done()
	buf := make([]byte, 0, maxCoalescedBytes)
	var wrapBuf []byte
	if cw.wrap {
		// Room for the coalesced records plus the batch head and prefix.
		wrapBuf = make([]byte, 0, maxCoalescedBytes+16)
	}
	batch := make([]*frameBuf, 0, 64)
	for {
		select {
		case fb := <-cw.q:
			if !cw.writeBatch(&buf, &wrapBuf, &batch, fb) {
				return
			}
		case <-cw.drain:
			// Graceful shutdown: flush whatever is still queued, then exit.
			for {
				select {
				case fb := <-cw.q:
					if !cw.writeBatch(&buf, &wrapBuf, &batch, fb) {
						return
					}
				default:
					return
				}
			}
		case <-cw.done:
			cw.drainTo(cw.onFail)
			return
		}
	}
}

// writeBatch coalesces fb plus everything else waiting in the queue into
// one socket write. It reports false after a write error (the writer is
// dead and the loop must exit). With wrap set, a multi-record batch goes
// out as one batch record — the peer pays one record dispatch per flush.
//
//ufc:hotpath
func (cw *connWriter) writeBatch(buf, wrapBuf *[]byte, batch *[]*frameBuf, fb *frameBuf) bool {
	b, recs := (*buf)[:0], (*batch)[:0]
	b = append(b, fb.b...)
	recs = append(recs, fb)
	for len(b) < maxCoalescedBytes {
		select {
		case fb = <-cw.q:
			b = append(b, fb.b...)
			recs = append(recs, fb)
			continue
		default:
		}
		break
	}
	*buf, *batch = b, recs
	if cw.wrap && len(recs) > 1 {
		w := appendBatchFrame((*wrapBuf)[:0], b)
		*wrapBuf = w
		// Queue momentarily idle (or the batch is full): one syscall, one
		// wire record for the whole batch.
		n, err := cw.conn.Write(w)
		if err != nil {
			// A partially written batch record breaks the stream mid-frame;
			// nothing after the cut is recoverable, so records are handed
			// back only when none of the batch reached the socket.
			//ufc:alloc cold branch: the connection is already broken, one allocation on teardown is irrelevant
			cw.fail(err)
			if n > 0 {
				for _, fb := range recs {
					putFrame(fb)
				}
				recs = recs[:0]
			}
			cw.failUnsent(recs)
			return false
		}
		cw.counters.noteSend(len(w))
		cw.counters.noteFlush(len(recs))
		for _, fb := range recs {
			putFrame(fb)
		}
		return true
	}
	// Queue momentarily idle (or the batch is full): one syscall for the
	// whole batch.
	n, err := cw.conn.Write(b)
	if err != nil {
		cw.failBatch(recs, n, err)
		return false
	}
	for _, fb := range recs {
		cw.counters.noteSend(len(fb.b))
		putFrame(fb)
	}
	cw.counters.noteFlush(len(recs))
	return true
}

// failBatch records the write error and hands every record that never
// reached the socket — the unwritten tail of the failed batch plus
// everything still queued — to onFail (or back to the pool). A record the
// write cut in half is unrecoverable (the stream is broken mid-frame)
// and is dropped.
func (cw *connWriter) failBatch(batch []*frameBuf, written int, err error) {
	cw.fail(err)
	var unsent []*frameBuf
	off := 0
	for _, fb := range batch {
		if off >= written {
			unsent = append(unsent, fb)
		} else {
			putFrame(fb)
		}
		off += len(fb.b)
	}
	cw.failUnsent(unsent)
}

// failUnsent hands unsent plus everything still queued to onFail (or back
// to the pool) after the writer has already failed.
func (cw *connWriter) failUnsent(unsent []*frameBuf) {
	for {
		select {
		case fb := <-cw.q:
			unsent = append(unsent, fb)
		default:
			if cw.onFail != nil && len(unsent) > 0 {
				cw.onFail(unsent)
			} else {
				for _, fb := range unsent {
					putFrame(fb)
				}
			}
			return
		}
	}
}

func (cw *connWriter) drainTo(sink func([]*frameBuf)) {
	var unsent []*frameBuf
	for {
		select {
		case fb := <-cw.q:
			unsent = append(unsent, fb)
		default:
			if len(unsent) == 0 {
				return
			}
			if sink != nil {
				sink(unsent)
			} else {
				for _, fb := range unsent {
					putFrame(fb)
				}
			}
			return
		}
	}
}
