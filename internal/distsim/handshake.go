package distsim

import (
	"bufio"
	"crypto/sha256"
	"crypto/subtle"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/telemetry"
)

// Wire-version negotiation. The TCP transport speaks two framing
// versions:
//
//	v1 — the PR 2 plaintext framing, bit-preserved: the first byte on the
//	     wire is the uvarint length prefix of the hello record. No
//	     handshake bytes are exchanged; the golden captures under
//	     testdata/golden pin this format.
//	v2 — a version-negotiated handshake precedes the first record. The
//	     dialer opens with a client hello, the listener answers with an
//	     ack, and the negotiated feature set (today: token
//	     authentication) applies from the first record on. The framing
//	     after the handshake is identical to v1.
//
// The handshake is discriminated in-band without ambiguity: a v1 stream
// can never begin with 0x00 (readRecord rejects zero-length records), so
// that byte doubles as the handshake magic. The exchange is
//
//	client → server   hsMagic0 hsMagic1 minVersion maxVersion
//	                  tokenLen (1 byte) + token bytes
//	server → client   hsMagic0 hsMagic1 status version
//
// Negotiation picks min(clientMax, serverMax) and refuses when that
// falls below max(clientMin, serverMin); a refusal ack carries the
// reason in its status byte and version 0. Downgrade is explicit: a
// dialer offering [1,2] against a listener pinned to v1 negotiates
// version 1 and proceeds with bit-preserved v1 framing after the ack.
// Token authentication requires v2 (v1 has nowhere to carry the token),
// so configuring a token forces the minimum version to 2 on both sides.
//
// Mutual TLS sits below the framing entirely — tls.Client / tls.Listener
// wrap the connection before any handshake or record byte — so every
// version is available over TLS, and a v1-over-TLS stream is
// byte-identical to a plaintext v1 stream inside the tunnel.
const (
	// WireVersionAuto lets the endpoint pick: dialers offer [1,2] when
	// TLS or a token is configured and stay on bit-preserved v1
	// otherwise; listeners accept both framings.
	WireVersionAuto = 0
	// WireVersion1 is the PR 2 plaintext framing, bit-preserved.
	WireVersion1 = 1
	// WireVersion2 adds the negotiated handshake and token auth.
	WireVersion2 = 2
)

// Handshake wire constants. hsMagic0 is chosen to be invalid as the
// first byte of a v1 stream (a zero record-length prefix).
const (
	hsMagic0 byte = 0x00
	hsMagic1 byte = 0xFC

	hsStatusOK      byte = 0x00
	hsStatusVersion byte = 0x01
	hsStatusAuth    byte = 0x02

	// hsClientLen is the fixed head of the client hello: both magic
	// bytes, the offered version range, and the token length.
	hsClientLen = 5
	// hsServerLen is the whole server ack: both magic bytes, status,
	// negotiated version.
	hsServerLen = 4

	// maxTokenBytes bounds the auth token carried in the client hello
	// (its length field is one byte).
	maxTokenBytes = 255

	defaultHandshakeTimeout = 10 * time.Second
)

// Handshake errors. Every failure mode surfaces as a distinct sentinel
// so callers and tests can match the cause with errors.Is.
var (
	// ErrHandshake is a malformed or interrupted wire handshake.
	ErrHandshake = errors.New("distsim: wire handshake failed")
	// ErrVersionMismatch means the peers share no acceptable wire version.
	ErrVersionMismatch = errors.New("distsim: no mutually acceptable wire version")
	// ErrAuthFailed means the peer rejected (or failed) token authentication.
	ErrAuthFailed = errors.New("distsim: wire handshake authentication failed")
	// ErrHandshakeTimeout means the peer went silent mid-handshake.
	ErrHandshakeTimeout = errors.New("distsim: wire handshake timed out")
)

// SecurityConfig is the transport-security block shared by every dial
// and listen path: node→hub, hub→parent and lookup clients. The zero
// value is today's plaintext v1 transport, bit-preserved.
type SecurityConfig struct {
	// TLS, when non-nil, wraps the connection in TLS before any wire
	// byte. Listeners pass a server config (set ClientAuth:
	// tls.RequireAndVerifyClientCert and ClientCAs for mutual TLS);
	// dialers pass a client config (ServerName defaults to the dialed
	// host when empty).
	TLS *tls.Config
	// AuthToken, when non-empty, is the shared secret carried in the v2
	// client hello and verified constant-time by the listener. Requires
	// wire version 2 on both sides (and forces the minimum to 2, so an
	// authenticated dial can never silently downgrade to v1).
	AuthToken string
	// WireVersion pins the protocol version: WireVersionAuto (default)
	// negotiates, WireVersion1 forces the bit-preserved legacy framing
	// with no handshake bytes, WireVersion2 requires the handshake.
	WireVersion int
	// MinWireVersion, when non-zero, is the lowest version this endpoint
	// accepts. The default floor is 1 — except with an AuthToken or an
	// explicit WireVersion 2, where it is 2.
	MinWireVersion int
	// HandshakeTimeout bounds the whole connection setup — TLS handshake
	// included — on each side (default 10s).
	HandshakeTimeout time.Duration
}

// validate checks the version/auth relations shared by dial and listen.
func (s *SecurityConfig) validate() error {
	if s.WireVersion < WireVersionAuto || s.WireVersion > WireVersion2 {
		return fmt.Errorf("distsim: wire version %d: must be 0 (auto), 1 or 2", s.WireVersion)
	}
	if s.MinWireVersion < 0 || s.MinWireVersion > WireVersion2 {
		return fmt.Errorf("distsim: min wire version %d: must be 0 (auto), 1 or 2", s.MinWireVersion)
	}
	if len(s.AuthToken) > maxTokenBytes {
		return fmt.Errorf("distsim: auth token is %d bytes, limit %d", len(s.AuthToken), maxTokenBytes)
	}
	if s.AuthToken != "" {
		if s.WireVersion == WireVersion1 {
			return errors.New("distsim: auth token requires wire version 2; v1 framing cannot carry it")
		}
		if s.MinWireVersion == WireVersion1 {
			return errors.New("distsim: auth token forbids MinWireVersion 1; a v1 downgrade would drop authentication")
		}
	}
	if min, max := s.versionRange(); min > max {
		return fmt.Errorf("distsim: min wire version %d exceeds maximum %d", min, max)
	}
	if s.HandshakeTimeout < 0 {
		return fmt.Errorf("distsim: handshake timeout %v: must be >= 0", s.HandshakeTimeout)
	}
	return nil
}

// versionRange resolves the configured version bounds. Dialers treat a
// plaintext, unauthenticated auto config as max v1 (no handshake bytes,
// see dialVersions); listeners always advertise up to the resolved max.
func (s *SecurityConfig) versionRange() (minV, maxV byte) {
	maxV = WireVersion2
	if s.WireVersion == WireVersion1 {
		maxV = WireVersion1
	}
	switch {
	case s.MinWireVersion != 0:
		minV = byte(s.MinWireVersion)
	case s.AuthToken != "" || s.WireVersion == WireVersion2:
		minV = WireVersion2
	default:
		minV = WireVersion1
	}
	return minV, maxV
}

// dialVersions is versionRange with the dial-side auto rule: a zero
// config stays on bit-preserved v1 — it sends no handshake bytes at all
// — while TLS, a token, or an explicit WireVersion 2 offers [min, 2].
func (s *SecurityConfig) dialVersions() (minV, maxV byte) {
	minV, maxV = s.versionRange()
	if s.WireVersion == WireVersionAuto && s.TLS == nil && s.AuthToken == "" {
		maxV = WireVersion1
	}
	return minV, maxV
}

func (s *SecurityConfig) handshakeTimeout() time.Duration {
	if s.HandshakeTimeout > 0 {
		return s.HandshakeTimeout
	}
	return defaultHandshakeTimeout
}

// negotiateVersion picks the highest version inside both ranges.
func negotiateVersion(cMin, cMax, sMin, sMax byte) (byte, bool) {
	v := min(cMax, sMax)
	if v < max(cMin, sMin) {
		return 0, false
	}
	return v, true
}

// tokenEqual compares an auth token in constant time. Both sides are
// hashed first so neither the comparison nor its duration leaks token
// bytes or length.
func tokenEqual(want string, got []byte) bool {
	w := sha256.Sum256([]byte(want))
	g := sha256.Sum256(got)
	return subtle.ConstantTimeCompare(w[:], g[:]) == 1
}

// appendClientHandshake encodes the dialer's hello: magic, offered
// version range, and the length-prefixed auth token.
func appendClientHandshake(dst []byte, minV, maxV byte, token string) []byte {
	dst = append(dst, hsMagic0, hsMagic1, minV, maxV, byte(len(token)))
	return append(dst, token...)
}

// readClientHandshake consumes a client hello from br (the caller has
// peeked the magic). Every length is explicit and bounded: the head is
// hsClientLen bytes and the token at most maxTokenBytes, so a hostile
// peer cannot grow the read past 260 bytes.
func readClientHandshake(br *bufio.Reader) (minV, maxV byte, token []byte, err error) {
	var head [hsClientLen]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return 0, 0, nil, fmt.Errorf("%w: truncated client hello: %v", ErrHandshake, err)
	}
	if head[0] != hsMagic0 || head[1] != hsMagic1 {
		return 0, 0, nil, fmt.Errorf("%w: bad client hello magic %#02x%02x", ErrHandshake, head[0], head[1])
	}
	minV, maxV = head[2], head[3]
	if minV == 0 || minV > maxV {
		return 0, 0, nil, fmt.Errorf("%w: client offered version range [%d, %d]", ErrHandshake, minV, maxV)
	}
	if n := int(head[4]); n > 0 {
		token = make([]byte, n)
		if _, err := io.ReadFull(br, token); err != nil {
			return 0, 0, nil, fmt.Errorf("%w: truncated auth token: %v", ErrHandshake, err)
		}
	}
	return minV, maxV, token, nil
}

// appendServerHandshake encodes the listener's ack. Only an hsStatusOK
// ack carries a version; refusals are pinned to version 0.
func appendServerHandshake(dst []byte, status, version byte) []byte {
	if status != hsStatusOK {
		version = 0
	}
	return append(dst, hsMagic0, hsMagic1, status, version)
}

// appendHandshakeRefusal encodes the refusal ack for cause.
func appendHandshakeRefusal(dst []byte, cause error) []byte {
	status := hsStatusVersion
	if errors.Is(cause, ErrAuthFailed) {
		status = hsStatusAuth
	}
	return appendServerHandshake(dst, status, 0)
}

// parseServerHandshake decodes the listener's ack against the version
// range the client offered, mapping refusal statuses to their sentinel
// errors.
func parseServerHandshake(b []byte, cMin, cMax byte) (int, error) {
	if len(b) < hsServerLen {
		return 0, fmt.Errorf("%w: truncated server ack", ErrHandshake)
	}
	if b[0] != hsMagic0 || b[1] != hsMagic1 {
		return 0, fmt.Errorf("%w: bad server ack magic %#02x%02x", ErrHandshake, b[0], b[1])
	}
	switch status, v := b[2], b[3]; status {
	case hsStatusOK:
		if v < cMin || v > cMax {
			return 0, fmt.Errorf("%w: server accepted version %d outside the offered range [%d, %d]", ErrHandshake, v, cMin, cMax)
		}
		return int(v), nil
	case hsStatusVersion:
		return 0, fmt.Errorf("%w: server refused the offered range [%d, %d]", ErrVersionMismatch, cMin, cMax)
	case hsStatusAuth:
		return 0, fmt.Errorf("%w: server rejected the auth token", ErrAuthFailed)
	default:
		return 0, fmt.Errorf("%w: server ack status %d", ErrHandshake, status)
	}
}

// hsIOError classifies a handshake-phase I/O failure: deadline
// expiries become ErrHandshakeTimeout, everything else ErrHandshake.
// A peer that slams the connection shut mid-handshake is most often a
// refusal this side could not be told about (a pre-versioning listener,
// or a TLS-side rejection).
func hsIOError(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: %v", ErrHandshakeTimeout, err)
	}
	return fmt.Errorf("%w: %v", ErrHandshake, err)
}

// clientHandshake runs the dial side of the negotiation on a fresh
// connection. With a resolved maximum of v1 it writes nothing — the
// legacy stream stays bit-preserved — and returns immediately.
func clientHandshake(conn net.Conn, sec *SecurityConfig) (int, error) {
	minV, maxV := sec.dialVersions()
	if maxV <= WireVersion1 {
		return WireVersion1, nil
	}
	_ = conn.SetDeadline(time.Now().Add(sec.handshakeTimeout())) //ufc:discard a failed deadline set surfaces as the handshake read/write error
	hello := appendClientHandshake(make([]byte, 0, hsClientLen+len(sec.AuthToken)), minV, maxV, sec.AuthToken)
	if _, err := conn.Write(hello); err != nil {
		return 0, hsIOError(err)
	}
	var ack [hsServerLen]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		return 0, hsIOError(err)
	}
	v, err := parseServerHandshake(ack[:], minV, maxV)
	if err != nil {
		return 0, err
	}
	_ = conn.SetDeadline(time.Time{}) //ufc:discard a failed deadline clear surfaces on the next read/write
	return v, nil
}

// serverHandshake runs the accept side on a fresh connection: it peeks
// one byte to discriminate a legacy v1 stream from a versioned client
// hello, negotiates, verifies the token, and answers the ack. On
// refusal the ack carrying the reason is written before the error
// returns (and the connection is then torn down by the caller). The
// whole exchange — the TLS handshake triggered by the first read
// included — is bounded by the handshake timeout.
func serverHandshake(conn net.Conn, br *bufio.Reader, sec *SecurityConfig, refusals *telemetry.Counter) (int, error) {
	timeout := sec.handshakeTimeout()
	minV, maxV := sec.versionRange()
	_ = conn.SetReadDeadline(time.Now().Add(timeout)) //ufc:discard a failed deadline set surfaces as the handshake read error
	head, err := br.Peek(1)
	if err != nil {
		return 0, hsIOError(err)
	}
	if head[0] != hsMagic0 {
		// Legacy v1 stream: the byte is the hello record's length prefix.
		// Nothing was consumed and no ack is owed — v1 peers expect a
		// bit-preserved record stream.
		if minV > WireVersion1 {
			refusals.Inc()
			return 0, fmt.Errorf("%w: peer opened a legacy v1 stream but this listener requires v%d+", ErrVersionMismatch, minV)
		}
		_ = conn.SetReadDeadline(time.Time{}) //ufc:discard a failed deadline clear surfaces on the next read
		return WireVersion1, nil
	}
	cMin, cMax, token, err := readClientHandshake(br)
	if err != nil {
		refusals.Inc()
		return 0, err
	}
	v, ok := negotiateVersion(cMin, cMax, minV, maxV)
	if !ok {
		err = fmt.Errorf("%w: peer offered [%d, %d], this listener accepts [%d, %d]", ErrVersionMismatch, cMin, cMax, minV, maxV)
	} else if v >= WireVersion2 && sec.AuthToken != "" && !tokenEqual(sec.AuthToken, token) {
		err = fmt.Errorf("%w: peer presented a bad token", ErrAuthFailed)
	}
	_ = conn.SetWriteDeadline(time.Now().Add(timeout)) //ufc:discard a failed deadline set surfaces as the ack write error
	if err != nil {
		refusals.Inc()
		_, _ = conn.Write(appendHandshakeRefusal(nil, err)) //ufc:discard the refusal cause is the error being returned
		return 0, err
	}
	if _, werr := conn.Write(appendServerHandshake(nil, hsStatusOK, v)); werr != nil {
		return 0, hsIOError(werr)
	}
	_ = conn.SetDeadline(time.Time{}) //ufc:discard a failed deadline clear surfaces on the next read/write
	return int(v), nil
}
