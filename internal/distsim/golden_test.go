package distsim

import (
	"bufio"
	"bytes"
	"context"
	"encoding/hex"
	"flag"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/telemetry/tracing"
)

// The golden interop harness pins the wire format across codec versions:
// canonical sessions — every record family the transport speaks — are
// checked in as recorded byte captures under testdata/golden and replayed
// against the current stack in both directions. The v1 captures were
// recorded from the pre-versioning codec (PR 2 framing), so they prove
// v1 plaintext framing stays bit-preserved; the v2 captures pin the
// versioned handshake bytes in front of the identical record stream.
//
// Regenerate with: go test ./internal/distsim -run TestGolden -update-golden
// (only when a deliberate, documented format change is being made).
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden wire captures under testdata/golden")

// goldenNodeMsgs is the canonical node→hub message set: indexed and named
// addressing, empty and non-empty payloads, the Stop flag, and a traced
// frame with a fixed trace context.
var goldenNodeMsgs = []struct {
	to string
	m  Message
}{
	{"dc-0", Message{Kind: KindRouting, Iter: 1, From: "fe-0", Payload: []float64{1, 2.5, -3.75}}},
	{"aux-x", Message{Kind: KindAux, Iter: 2, From: "fe-0"}},
	{"coord", Message{Kind: KindReport, Iter: 3, From: "fe-0", Payload: []float64{0.125}, Stop: true}},
	{"dc-1", Message{Kind: KindRouting, Iter: 4, From: "fe-0", Payload: []float64{7},
		Trace: tracing.Context{Trace: 0x0123456789abcdef, Span: 0x0fedcba987654321}}},
}

// buildGoldenNodeSession encodes the canonical node→hub stream: the
// registration hello, the message set, and a heartbeat ping.
func buildGoldenNodeSession() []byte {
	b := appendHello(nil, []string{"fe-0", "coord"})
	for _, c := range goldenNodeMsgs {
		m := c.m
		b = appendFrame(b, c.to, &m)
	}
	return appendPing(b)
}

// goldenHubMsgs is the canonical hub→node message set.
var goldenHubMsgs = []struct {
	to string
	m  Message
}{
	{"fe-0", Message{Kind: KindAux, Iter: 1, From: "dc-0", Payload: []float64{42.5}}},
	{"fe-0", Message{Kind: KindControl, Iter: 1, From: "coord", Stop: true}},
}

func buildGoldenHubSession() []byte {
	b := appendPong(nil)
	for _, c := range goldenHubMsgs {
		m := c.m
		b = appendFrame(b, c.to, &m)
	}
	return b
}

// goldenTreeMsgs is the canonical batched child-hub→parent message set.
var goldenTreeMsgs = []struct {
	to string
	m  Message
}{
	{"dc-0", Message{Kind: KindRouting, Iter: 9, From: "fe-0", Payload: []float64{0.5, -1}}},
	{"coord", Message{Kind: KindReport, Iter: 9, From: "fe-0", Payload: []float64{3}}},
}

// buildGoldenTreeSession encodes the canonical child-hub→parent stream:
// the hub handshake, an upward route registration, and one batch record
// wrapping two complete sub-records.
func buildGoldenTreeSession() []byte {
	b := appendHubHello(nil, 3)
	b = appendHello(b, []string{"fe-0"})
	var inner []byte
	for _, c := range goldenTreeMsgs {
		m := c.m
		inner = appendFrame(inner, c.to, &m)
	}
	return appendBatchFrame(b, inner)
}

// buildGoldenServeRequests encodes the canonical lookup-client→hub
// stream: hello, an untraced and a traced lookup, and a stats request.
func buildGoldenServeRequests() []byte {
	b := appendHello(nil, []string{"lg-0"})
	b = appendLookup(b, 2, 7, 0x5555aaaa5555aaaa, tracing.Context{})
	b = appendLookup(b, 5, 8, 1, tracing.Context{Trace: 0x11, Span: 0x22})
	return appendCPStatsRequest(b)
}

// buildGoldenServeResponses encodes the hub's answers to the request
// capture when served by goldenDecider.
func buildGoldenServeResponses() []byte {
	b := appendDecision(nil, Decision{ReqID: 7, DC: 2, Slot: 9, AgeNanos: 123456789, OK: true})
	b = appendDecision(b, Decision{ReqID: 8, OK: false})
	return appendCPStatsResponse(b, []float64{1, 2, 3.5})
}

// goldenDecider is the deterministic Decider behind the serve captures:
// front-end 5 has no snapshot; everything else routes to DC fe at slot 9.
type goldenDecider struct{}

func (goldenDecider) Decide(fe uint32, u uint64) (uint32, uint64, int64, bool) {
	if fe == 5 {
		return 0, 0, 0, false
	}
	return fe, 9, 123456789, true
}

func (goldenDecider) StatsPayload(dst []float64) []float64 {
	return append(dst, 1, 2, 3.5)
}

// goldenToken is the auth token baked into the v2 captures.
const goldenToken = "golden-token"

// buildGoldenNodeSessionV2 is the canonical v2 node→hub stream: the
// versioned client hello (strict v2, with the golden token) followed by
// the identical v1 record stream — v2 changes nothing after the
// handshake.
func buildGoldenNodeSessionV2() []byte {
	b := appendClientHandshake(nil, WireVersion2, WireVersion2, goldenToken)
	return append(b, buildGoldenNodeSession()...)
}

// buildGoldenAckV2 is the canonical v2 server ack: ok, version 2.
func buildGoldenAckV2() []byte {
	return appendServerHandshake(nil, hsStatusOK, WireVersion2)
}

// goldenCaptures maps capture files to their builders.
var goldenCaptures = []struct {
	file  string
	build func() []byte
}{
	{"node_v1.bin", buildGoldenNodeSession},
	{"hub_v1.bin", buildGoldenHubSession},
	{"tree_v1.bin", buildGoldenTreeSession},
	{"serve_req_v1.bin", buildGoldenServeRequests},
	{"serve_resp_v1.bin", buildGoldenServeResponses},
	{"node_v2.bin", buildGoldenNodeSessionV2},
	{"ack_v2.bin", buildGoldenAckV2},
}

func goldenPath(file string) string {
	return filepath.Join("testdata", "golden", file)
}

func readGolden(t *testing.T, file string) []byte {
	t.Helper()
	b, err := os.ReadFile(goldenPath(file))
	if err != nil {
		t.Fatalf("missing golden capture (run with -update-golden to record): %v", err)
	}
	return b
}

// TestGoldenCapturesStable re-encodes every canonical session with the
// current codec and requires byte equality with the recorded captures:
// the v1 files were recorded from the pre-versioning codec, so any
// mismatch is a silent wire-format break.
func TestGoldenCapturesStable(t *testing.T) {
	for _, c := range goldenCaptures {
		got := c.build()
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(goldenPath(c.file)), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(goldenPath(c.file), got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want := readGolden(t, c.file)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: current codec diverges from the recorded capture\n got: %s\nwant: %s",
				c.file, hex.EncodeToString(got), hex.EncodeToString(want))
		}
	}
}

// readAllRecords splits a capture into its record bodies (copies).
func readAllRecords(t *testing.T, capture []byte) [][]byte {
	t.Helper()
	br := bufio.NewReader(bytes.NewReader(capture))
	var scratch []byte
	var bodies [][]byte
	for {
		body, _, err := readRecord(br, &scratch)
		if err == io.EOF {
			return bodies
		}
		if err != nil {
			t.Fatalf("corrupt capture after %d records: %v", len(bodies), err)
		}
		bodies = append(bodies, append([]byte(nil), body...))
	}
}

func assertMessage(t *testing.T, body []byte, wantTo string, want Message) {
	t.Helper()
	var cache idCache
	fr, err := decodeMessageFrame(body, &cache)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	to := fr.to
	if !fr.named {
		to = cache.lookup(fr.toIdx)
	}
	if to != wantTo || fr.msg.Kind != want.Kind || fr.msg.Iter != want.Iter ||
		fr.msg.From != want.From || fr.msg.Stop != want.Stop || fr.msg.Trace != want.Trace {
		t.Fatalf("decoded header mismatch: got to=%q %+v want to=%q %+v", to, fr.msg, wantTo, want)
	}
	if len(fr.msg.Payload) != len(want.Payload) {
		t.Fatalf("payload length %d, want %d", len(fr.msg.Payload), len(want.Payload))
	}
	for i := range want.Payload {
		if fr.msg.Payload[i] != want.Payload[i] {
			t.Fatalf("payload[%d] = %v, want %v (must be bit-identical)", i, fr.msg.Payload[i], want.Payload[i])
		}
	}
}

// TestGoldenV1Decode parses every record of the v1 captures with the
// current decoders and checks the decoded fields against the canonical
// session, proving captures recorded from the pre-versioning codec still
// decode cleanly on the new stack.
func TestGoldenV1Decode(t *testing.T) {
	node := readAllRecords(t, readGolden(t, "node_v1.bin"))
	if len(node) != len(goldenNodeMsgs)+2 {
		t.Fatalf("node capture has %d records, want %d", len(node), len(goldenNodeMsgs)+2)
	}
	ids, err := parseHello(node[0])
	if err != nil || len(ids) != 2 || ids[0] != "fe-0" || ids[1] != "coord" {
		t.Fatalf("hello decoded to %v (%v)", ids, err)
	}
	for i, c := range goldenNodeMsgs {
		assertMessage(t, node[1+i], c.to, c.m)
	}
	if ping, _ := parseHeartbeat(node[len(node)-1]); !ping {
		t.Fatalf("final record is not a ping")
	}

	hub := readAllRecords(t, readGolden(t, "hub_v1.bin"))
	if _, pong := parseHeartbeat(hub[0]); !pong {
		t.Fatalf("first hub record is not a pong")
	}
	for i, c := range goldenHubMsgs {
		assertMessage(t, hub[1+i], c.to, c.m)
	}

	tree := readAllRecords(t, readGolden(t, "tree_v1.bin"))
	if len(tree) != 3 {
		t.Fatalf("tree capture has %d records, want 3", len(tree))
	}
	region, err := parseHubHello(tree[0])
	if err != nil || region != 3 {
		t.Fatalf("hub hello decoded to region %d (%v)", region, err)
	}
	rest, err := parseBatch(tree[2])
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range goldenTreeMsgs {
		var sub []byte
		sub, rest, err = splitBatchRecord(rest)
		if err != nil {
			t.Fatal(err)
		}
		assertMessage(t, sub, c.to, c.m)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing batch bytes", len(rest))
	}

	req := readAllRecords(t, readGolden(t, "serve_req_v1.bin"))
	fe, reqID, u, tc, err := parseLookup(req[1])
	if err != nil || fe != 2 || reqID != 7 || u != 0x5555aaaa5555aaaa || tc.Valid() {
		t.Fatalf("lookup decoded to fe=%d req=%d u=%#x tc=%+v (%v)", fe, reqID, u, tc, err)
	}
	if _, _, _, tc, err = parseLookup(req[2]); err != nil || tc.Trace != 0x11 || tc.Span != 0x22 {
		t.Fatalf("traced lookup context %+v (%v)", tc, err)
	}
	resp := readAllRecords(t, readGolden(t, "serve_resp_v1.bin"))
	d, err := parseDecision(resp[0])
	if err != nil || !d.OK || d.ReqID != 7 || d.DC != 2 || d.Slot != 9 || d.AgeNanos != 123456789 {
		t.Fatalf("decision decoded to %+v (%v)", d, err)
	}
	if d, err = parseDecision(resp[1]); err != nil || d.OK || d.ReqID != 8 {
		t.Fatalf("unavailable decision decoded to %+v (%v)", d, err)
	}
	vals, err := parseCPStatsResponse(resp[2])
	if err != nil || len(vals) != 3 || vals[2] != 3.5 {
		t.Fatalf("cpstats decoded to %v (%v)", vals, err)
	}
}

// collectInbox drains n messages from box with a deadline.
func collectInbox(t *testing.T, box <-chan Message, n int) []Message {
	t.Helper()
	msgs := make([]Message, 0, n)
	timeout := time.After(10 * time.Second)
	for len(msgs) < n {
		select {
		case m, ok := <-box:
			if !ok {
				t.Fatalf("inbox closed after %d of %d messages", len(msgs), n)
			}
			msgs = append(msgs, m)
		case <-timeout:
			t.Fatalf("timed out after %d of %d messages", len(msgs), n)
		}
	}
	return msgs
}

// TestGoldenReplayNodeToHub writes the recorded node_v1.bin capture over
// a raw TCP connection into a live hub and asserts the hub routes the
// captured messages to a registered node, byte-preserved payloads and
// trace context included.
func TestGoldenReplayNodeToHub(t *testing.T) {
	capture := readGolden(t, "node_v1.bin")
	hub, err := NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }()
	node, err := NewTCPNode(hub.Addr(), []string{"dc-0", "dc-1"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = node.Close() }()

	raw, err := net.Dial("tcp", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = raw.Close() }()
	if _, err := raw.Write(capture); err != nil {
		t.Fatal(err)
	}

	dc0, err := node.Inbox("dc-0")
	if err != nil {
		t.Fatal(err)
	}
	dc1, err := node.Inbox("dc-1")
	if err != nil {
		t.Fatal(err)
	}
	got := collectInbox(t, dc0, 1)[0]
	want := goldenNodeMsgs[0].m
	if got.From != want.From || got.Iter != want.Iter || len(got.Payload) != 3 || got.Payload[2] != want.Payload[2] {
		t.Fatalf("dc-0 received %+v, want %+v", got, want)
	}
	got = collectInbox(t, dc1, 1)[0]
	want = goldenNodeMsgs[3].m
	if got.Trace != want.Trace || got.Payload[0] != want.Payload[0] {
		t.Fatalf("dc-1 received %+v, want %+v", got, want)
	}
	// The raw connection sent a ping; the hub must have answered it.
	br := bufio.NewReader(raw)
	var scratch []byte
	deadline := time.Now().Add(10 * time.Second)
	for {
		_ = raw.SetReadDeadline(deadline) //ufc:discard a failed deadline set surfaces as the read error below
		body, _, err := readRecord(br, &scratch)
		if err != nil {
			t.Fatalf("waiting for pong: %v", err)
		}
		if _, pong := parseHeartbeat(body); pong {
			break
		}
	}
}

// TestGoldenReplayNodeToHubV2 writes the recorded node_v2.bin capture —
// versioned handshake plus the v1 record stream — into a live hub
// requiring the golden token, asserts the hub's ack matches the
// recorded ack_v2.bin byte-for-byte, and that the captured messages
// still route exactly as their v1 twins.
func TestGoldenReplayNodeToHubV2(t *testing.T) {
	capture := readGolden(t, "node_v2.bin")
	wantAck := readGolden(t, "ack_v2.bin")
	hub, err := Listen(context.Background(), ListenConfig{
		Addr:     "127.0.0.1:0",
		Security: SecurityConfig{AuthToken: goldenToken},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }()
	node, err := Dial(context.Background(), DialConfig{
		Addr:     hub.Addr(),
		AgentIDs: []string{"dc-0", "dc-1"},
		Security: SecurityConfig{AuthToken: goldenToken},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = node.Close() }()

	raw, err := net.Dial("tcp", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = raw.Close() }()
	if _, err := raw.Write(capture); err != nil {
		t.Fatal(err)
	}
	_ = raw.SetReadDeadline(time.Now().Add(10 * time.Second)) //ufc:discard a failed deadline set surfaces as the read error below
	gotAck := make([]byte, len(wantAck))
	if _, err := io.ReadFull(raw, gotAck); err != nil {
		t.Fatalf("reading handshake ack: %v", err)
	}
	if !bytes.Equal(gotAck, wantAck) {
		t.Fatalf("handshake ack diverges from the recorded capture\n got: %s\nwant: %s",
			hex.EncodeToString(gotAck), hex.EncodeToString(wantAck))
	}

	dc0, err := node.(*TCPNode).Inbox("dc-0")
	if err != nil {
		t.Fatal(err)
	}
	got := collectInbox(t, dc0, 1)[0]
	want := goldenNodeMsgs[0].m
	if got.From != want.From || got.Iter != want.Iter || len(got.Payload) != 3 || got.Payload[2] != want.Payload[2] {
		t.Fatalf("dc-0 received %+v, want %+v", got, want)
	}
}

// TestGoldenReplayHubToNode serves the recorded hub_v1.bin capture from a
// fake hub socket to a real TCPNode and asserts the node decodes and
// delivers the captured messages.
func TestGoldenReplayHubToNode(t *testing.T) {
	capture := readGolden(t, "hub_v1.bin")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func() { _, _ = io.Copy(io.Discard, conn) }()
		_, _ = conn.Write(capture)
	}()
	node, err := NewTCPNode(ln.Addr().String(), []string{"fe-0"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = node.Close() }()
	box, err := node.Inbox("fe-0")
	if err != nil {
		t.Fatal(err)
	}
	msgs := collectInbox(t, box, len(goldenHubMsgs))
	for i, c := range goldenHubMsgs {
		if msgs[i].Kind != c.m.Kind || msgs[i].From != c.m.From || msgs[i].Stop != c.m.Stop {
			t.Fatalf("message %d decoded to %+v, want %+v", i, msgs[i], c.m)
		}
	}
	if msgs[0].Payload[0] != goldenHubMsgs[0].m.Payload[0] {
		t.Fatalf("payload not bit-preserved: %v", msgs[0].Payload)
	}
}

// TestGoldenReplayTreeToParent writes the recorded child-hub capture into
// a live hub acting as the parent and asserts the batched records reach
// the agents registered there.
func TestGoldenReplayTreeToParent(t *testing.T) {
	capture := readGolden(t, "tree_v1.bin")
	parent, err := NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = parent.Close() }()
	node, err := NewTCPNode(parent.Addr(), []string{"dc-0", "coord"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = node.Close() }()

	raw, err := net.Dial("tcp", parent.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = raw.Close() }()
	if _, err := raw.Write(capture); err != nil {
		t.Fatal(err)
	}
	dc0, err := node.Inbox("dc-0")
	if err != nil {
		t.Fatal(err)
	}
	coord, err := node.Inbox("coord")
	if err != nil {
		t.Fatal(err)
	}
	if got := collectInbox(t, dc0, 1)[0]; got.Iter != 9 || got.Payload[1] != -1 {
		t.Fatalf("dc-0 received %+v", got)
	}
	if got := collectInbox(t, coord, 1)[0]; got.Kind != KindReport || got.Payload[0] != 3 {
		t.Fatalf("coord received %+v", got)
	}
}

// TestGoldenReplayServe writes the recorded lookup-client capture into a
// live serving hub and requires the hub's reply bytes to match the
// recorded response capture exactly.
func TestGoldenReplayServe(t *testing.T) {
	reqCapture := readGolden(t, "serve_req_v1.bin")
	wantResp := readGolden(t, "serve_resp_v1.bin")
	hub, err := NewTCPHubOpts("127.0.0.1:0", HubOptions{Decider: goldenDecider{}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }()
	raw, err := net.Dial("tcp", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = raw.Close() }()
	if _, err := raw.Write(reqCapture); err != nil {
		t.Fatal(err)
	}
	_ = raw.SetReadDeadline(time.Now().Add(10 * time.Second)) //ufc:discard a failed deadline set surfaces as the read error below
	got := make([]byte, len(wantResp))
	if _, err := io.ReadFull(raw, got); err != nil {
		t.Fatalf("reading %d response bytes: %v", len(wantResp), err)
	}
	if !bytes.Equal(got, wantResp) {
		t.Errorf("serve responses diverge from the recorded capture\n got: %s\nwant: %s",
			hex.EncodeToString(got), hex.EncodeToString(wantResp))
	}
}
