// Package distsim runs the distributed 4-block ADM-G algorithm as a real
// message-passing protocol: every front-end proxy and every datacenter is
// an agent (goroutine) that exchanges typed messages over a Transport,
// mirroring the interaction pattern of Fig. 2 in the paper. The numerical
// steps are the exact per-agent sub-problem solvers from internal/core, so
// the protocol produces bit-identical iterates to the sequential engine —
// which the tests assert. Transports include an in-memory channel
// transport with injectable delay/reordering and transient loss
// (redelivery), and a TCP hub speaking a compact binary framing codec
// with coalesced, buffered writes (see wire.go; the original gob
// transport is retained in tcp_gob.go as a benchmark baseline behind the
// gobbaseline build tag).
package distsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/tracing"
)

// Kind discriminates protocol messages.
type Kind int

// Message kinds exchanged by the protocol.
const (
	// KindRouting carries (λ̃_ij, φ_ij) from front-end i to datacenter j
	// (Fig. 2, arrows 1).
	KindRouting Kind = iota + 1
	// KindAux carries ã_ij from datacenter j back to front-end i
	// (Fig. 2, arrows 4).
	KindAux
	// KindReport carries an agent's residual contribution to the
	// coordinator at the end of an iteration.
	KindReport
	// KindControl is the coordinator's continue/stop broadcast.
	KindControl
	// KindFinal carries an agent's final local variables to the
	// coordinator after stop.
	KindFinal
	// KindFinalAck is the coordinator's acknowledgement of a KindFinal in
	// the resilient protocol; agents retransmit finals until acked.
	KindFinalAck
)

// Message is the single wire format of the protocol (gob-friendly).
type Message struct {
	Kind    Kind
	Iter    int
	From    string
	Payload []float64
	Stop    bool
	// Trace is the optional trace context riding with the message; the
	// zero value (untraced) costs nothing on the wire. Observability
	// metadata only — it never feeds the computation.
	Trace tracing.Context
}

// Transport delivers messages between named agents. Implementations must
// be safe for concurrent use and must deliver every accepted message
// eventually (they may delay and reorder).
type Transport interface {
	// Send delivers m to the named agent's inbox.
	Send(to string, m Message) error
	// Inbox returns the receive channel of the named agent.
	Inbox(id string) (<-chan Message, error)
	// Close tears the transport down; pending receives unblock.
	Close() error
}

// ErrUnknownAgent is returned for sends to or inboxes of unregistered ids.
var ErrUnknownAgent = errors.New("distsim: unknown agent")

// ErrClosed is returned when sending on a closed transport.
var ErrClosed = errors.New("distsim: transport closed")

// ChanOptions configures the in-memory transport's fault injection.
type ChanOptions struct {
	// Seed drives the deterministic delay/loss generator.
	Seed int64
	// MaxDelay adds a uniform random delivery delay in [0, MaxDelay],
	// causing reordering between senders. Zero disables delays.
	MaxDelay time.Duration
	// LossProb is the probability that a message's first transmission is
	// "lost"; lost messages are redelivered after RetransmitDelay,
	// modelling a reliable link with retransmission. Zero disables loss.
	LossProb float64
	// RetransmitDelay is the redelivery latency for lost messages
	// (default 2·MaxDelay + 1ms).
	RetransmitDelay time.Duration
	// Buffer is the inbox capacity (default 64).
	Buffer int
}

// chanCounters instruments the in-memory transport. The in-flight gauge
// counts accepted-but-undelivered messages; every accepted send must
// balance it — delivered, rejected at close, or canceled by Close while
// still sitting in a fault-injected delay.
type chanCounters struct {
	inflight  telemetry.Gauge
	accepted  telemetry.Counter
	delivered telemetry.Counter
	canceled  telemetry.Counter
}

// register attaches the counters to reg under the ufc_transport_* names.
func (c *chanCounters) register(reg *telemetry.Registry, labels ...telemetry.Label) {
	reg.RegisterGauge("ufc_transport_inflight", "messages accepted by Send but not yet delivered", &c.inflight, labels...)
	reg.RegisterCounter("ufc_transport_accepted_total", "messages accepted by Send", &c.accepted, labels...)
	reg.RegisterCounter("ufc_transport_delivered_total", "messages placed in an inbox", &c.delivered, labels...)
	reg.RegisterCounter("ufc_transport_canceled_total", "in-flight messages canceled by Close", &c.canceled, labels...)
}

// ChanTransport is an in-memory Transport backed by channels.
type ChanTransport struct {
	opts ChanOptions

	counters chanCounters

	mu     sync.Mutex
	rng    *rand.Rand
	boxes  map[string]chan Message
	closed bool
	done   chan struct{}  // closed by Close; unblocks senders
	wg     sync.WaitGroup // in-flight sends (immediate and delayed)
}

var _ Transport = (*ChanTransport)(nil)

// NewChanTransport registers the given agent ids.
func NewChanTransport(ids []string, opts ChanOptions) *ChanTransport {
	if opts.Buffer <= 0 {
		opts.Buffer = 64
	}
	if opts.RetransmitDelay <= 0 {
		opts.RetransmitDelay = 2*opts.MaxDelay + time.Millisecond
	}
	t := &ChanTransport{
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed)),
		boxes: make(map[string]chan Message, len(ids)),
		done:  make(chan struct{}),
	}
	for _, id := range ids {
		t.boxes[id] = make(chan Message, opts.Buffer)
	}
	return t
}

// Send implements Transport.
func (t *ChanTransport) Send(to string, m Message) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	box, ok := t.boxes[to]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("send to %q: %w", to, ErrUnknownAgent)
	}
	var delay time.Duration
	if t.opts.MaxDelay > 0 {
		delay = time.Duration(t.rng.Int63n(int64(t.opts.MaxDelay) + 1))
	}
	if t.opts.LossProb > 0 && t.rng.Float64() < t.opts.LossProb {
		delay += t.opts.RetransmitDelay
	}
	// Every send — immediate or delayed — holds a wg slot until the
	// message is in the box (or the transport closes), so Close can wait
	// for in-flight sends before closing the inboxes. Without this, a
	// concurrent Close racing the blocking `box <- m` below is a send on
	// a closed channel.
	t.wg.Add(1)
	t.counters.accepted.Inc()
	t.counters.inflight.Add(1)
	if delay > 0 {
		t.mu.Unlock()
		go func() {
			defer t.wg.Done()
			// Sleep against t.done so Close never waits out the full
			// delay of in-flight fault-injected deliveries. The cancel
			// branch must balance the in-flight gauge exactly like a
			// delivery would, or teardown leaks a nonzero reading.
			timer := time.NewTimer(delay)
			defer timer.Stop()
			select {
			case <-timer.C:
				_ = t.deliver(box, m)
			case <-t.done:
				t.counters.inflight.Add(-1)
				t.counters.canceled.Inc()
			}
		}()
		return nil
	}
	t.mu.Unlock()
	defer t.wg.Done()
	return t.deliver(box, m)
}

// deliver blocks until the message is enqueued or the transport closes.
func (t *ChanTransport) deliver(box chan Message, m Message) error {
	select {
	case box <- m:
		t.counters.inflight.Add(-1)
		t.counters.delivered.Inc()
		return nil
	case <-t.done:
		t.counters.inflight.Add(-1)
		t.counters.canceled.Inc()
		return ErrClosed
	}
}

// InFlight reports the number of messages accepted by Send and not yet
// delivered (queued in a fault-injected delay or blocked on a full inbox).
// After Close it is always zero: canceled deliveries decrement the gauge.
func (t *ChanTransport) InFlight() int64 { return int64(t.counters.inflight.Load()) }

// RegisterMetrics attaches the transport's counters to a telemetry
// registry (ufc_transport_inflight and friends).
func (t *ChanTransport) RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	t.counters.register(reg, labels...)
}

// Inbox implements Transport.
func (t *ChanTransport) Inbox(id string) (<-chan Message, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	box, ok := t.boxes[id]
	if !ok {
		return nil, fmt.Errorf("inbox of %q: %w", id, ErrUnknownAgent)
	}
	return box, nil
}

// Close implements Transport.
func (t *ChanTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	close(t.done) // unblock senders stuck on full boxes
	t.wg.Wait()   // no sends in flight past this point
	t.mu.Lock()
	//ufc:nondet close order of receive boxes is observationally irrelevant
	for _, box := range t.boxes {
		close(box)
	}
	t.mu.Unlock()
	return nil
}

// Agent id helpers shared by the protocol and transports.
func feID(i int) string { return fmt.Sprintf("fe-%d", i) }
func dcID(j int) string { return fmt.Sprintf("dc-%d", j) }
func coordID() string   { return "coord" }
func allIDs(m, n int) []string {
	ids := make([]string, 0, m+n+1)
	for i := 0; i < m; i++ {
		ids = append(ids, feID(i))
	}
	for j := 0; j < n; j++ {
		ids = append(ids, dcID(j))
	}
	ids = append(ids, coordID())
	return ids
}
