package distsim

import (
	"math"
	"testing"

	"repro/internal/telemetry/tracing"
)

// FuzzServeWire drives the control-plane serving codec (lookup, decision
// and cpstats records, see serve.go) with arbitrary bytes, mirroring
// FuzzWireDecode for the solver wire: the peek and parse functions must
// never panic, and any body that parses must survive a canonical
// re-encode → re-parse round trip.
func FuzzServeWire(f *testing.F) {
	// Seed corpus: valid bodies of every record kind plus truncations.
	var seeds [][]byte
	addRecord := func(rec []byte) {
		_, body := splitRecord(rec)
		seeds = append(seeds, append([]byte(nil), body...))
		for _, cut := range []int{len(body) / 2, len(body) - 1} {
			if cut > 0 && cut < len(body) {
				seeds = append(seeds, append([]byte(nil), body[:cut]...))
			}
		}
	}
	addRecord(appendLookup(nil, 0, 1, 2, tracing.Context{}))
	addRecord(appendLookup(nil, 4095, math.MaxUint64, math.MaxUint64, tracing.Context{}))
	addRecord(appendLookup(nil, 7, 8, 9, tracing.Context{Trace: 0xfeed, Span: 0xbeef}))
	addRecord(appendLookup(nil, 4095, math.MaxUint64, 1, tracing.Context{Trace: math.MaxUint64, Span: math.MaxUint64}))
	addRecord(appendDecision(nil, Decision{ReqID: 7, DC: 3, Slot: 9, AgeNanos: 1 << 40, OK: true}))
	addRecord(appendDecision(nil, Decision{ReqID: 8, OK: false}))
	addRecord(appendCPStatsRequest(nil))
	addRecord(appendCPStatsResponse(nil, nil))
	addRecord(appendCPStatsResponse(nil, []float64{0, 1.5, math.Inf(1), -math.Pi}))
	seeds = append(seeds, []byte{}, []byte{0xff}, []byte{frameKindLookup}, []byte{frameKindDecision, 9})
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		peekLookup(b)
		peekDecision(b)
		peekCPStats(b)

		if fe, reqID, u, tc, err := parseLookup(b); err == nil {
			_, body := splitRecord(appendLookup(nil, fe, reqID, u, tc))
			fe2, reqID2, u2, tc2, err := parseLookup(body)
			if err != nil {
				t.Fatalf("re-encoded lookup failed to parse: %v", err)
			}
			if fe2 != fe || reqID2 != reqID || u2 != u {
				t.Fatalf("lookup round-trip mismatch: (%d,%d,%d) vs (%d,%d,%d)", fe2, reqID2, u2, fe, reqID, u)
			}
			// A trace context with a zero trace id cannot round-trip (the
			// zero context encodes as "no suffix"), which is fine: zero
			// means untraced everywhere.
			if tc.Valid() && tc2 != tc {
				t.Fatalf("lookup trace round-trip mismatch: %+v vs %+v", tc2, tc)
			}
		}

		if d, err := parseDecision(b); err == nil {
			_, body := splitRecord(appendDecision(nil, d))
			d2, err := parseDecision(body)
			if err != nil {
				t.Fatalf("re-encoded decision failed to parse: %v", err)
			}
			if d2 != d {
				t.Fatalf("decision round-trip mismatch: %+v vs %+v", d2, d)
			}
		}

		if vals, err := parseCPStatsResponse(b); err == nil {
			_, body := splitRecord(appendCPStatsResponse(nil, vals))
			vals2, err := parseCPStatsResponse(body)
			if err != nil {
				t.Fatalf("re-encoded cpstats failed to parse: %v", err)
			}
			if len(vals2) != len(vals) {
				t.Fatalf("cpstats round-trip length mismatch: %d vs %d", len(vals2), len(vals))
			}
			for i := range vals {
				if math.Float64bits(vals2[i]) != math.Float64bits(vals[i]) {
					t.Fatalf("cpstats round-trip value %d mismatch: %x vs %x", i, math.Float64bits(vals2[i]), math.Float64bits(vals[i]))
				}
			}
		}
	})
}
