//go:build gobbaseline

package distsim_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/distsim"
)

// TestDistributedOverGobTCP keeps the retained gob baseline transport
// correct: it must still produce bit-identical results, since the
// benchmarks use it as the reference the binary wire layer is measured
// against.
func TestDistributedOverGobTCP(t *testing.T) {
	inst := testInstance(t, 4)
	_, seqBD, _, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hub, err := distsim.NewGobTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }()
	m, n := inst.Cloud.M(), inst.Cloud.N()
	node, err := distsim.NewGobTCPNode(hub.Addr(), distsim.AllAgentIDs(m, n), 128)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = node.Close() }()
	res, err := distsim.Run(context.Background(), inst, distsim.RunOptions{Timeout: time.Minute}, node)
	if err != nil {
		t.Fatalf("gob TCP run: %v", err)
	}
	if res.Breakdown.UFC != seqBD.UFC {
		t.Errorf("UFC over gob TCP: %v vs %v", res.Breakdown.UFC, seqBD.UFC)
	}
}

// TestGobSendAfterClose is TestSendAfterClose's gob leg, compiled with
// the baseline transport.
func TestGobSendAfterClose(t *testing.T) {
	msg := distsim.Message{Kind: distsim.KindReport, Iter: 1, From: "fe-0", Payload: []float64{1}}
	hub, err := distsim.NewGobTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }()
	node, err := distsim.NewGobTCPNode(hub.Addr(), []string{"fe-0", "coord"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	if err := node.Send("coord", msg); !errors.Is(err, distsim.ErrClosed) {
		t.Errorf("gob send after close: %v", err)
	}
}
