package distsim

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/telemetry"
	"repro/internal/telemetry/tracing"
)

// Wire format of the TCP transport (node ⇄ hub, both directions).
//
// The stream is a sequence of length-prefixed records:
//
//	uvarint  body length in bytes
//	body
//
// A message body is
//
//	byte     kind|flags (low nibble: kind 1..6; 0x10 = Stop, 0x20 = named
//	         addressing, 0x40 = trace context suffix; the top bit is
//	         reserved, must be zero)
//	address  to
//	address  from
//	uvarint  iter
//	float64  payload values, little-endian, until the end of the body
//	         minus the optional trace suffix (the record length determines
//	         the count — no count field)
//	trace    16 optional bytes, present iff the traced flag is set: the
//	         trace id then the sender's span id, both little-endian uint64
//
// The trace suffix is version-tolerant by construction: untraced frames
// are byte-identical to the pre-tracing format, so decoders accept
// streams from peers that never set the flag, and the flag-gated suffix
// is stripped before the length-inferred payload parse.
//
// where an address is a uvarint agent index (named flag clear) or a
// uvarint-length-prefixed UTF-8 id string (named flag set; used only for
// agents outside the standard fe-i / dc-j / coord namespace). A hello
// body (first byte 0) registers the sender's hosted agents:
//
//	byte     0
//	uvarint  id count
//	uvarint length + bytes, per id
//
// Heartbeats are single-byte records: a node sends ping (0x0e) and the
// hub answers pong (0x0f). Both values sit above the message-kind range
// (1..6), so they are unambiguous as the first body byte and are
// intercepted before frame decoding.
//
// Standard agent ids map onto a dense index space that needs no topology
// knowledge: coord → 0, fe-i → 1+2i, dc-j → 2+2j. Indices address the
// hub's routing slots directly and let both ends skip string formatting
// and parsing on the hot path; the receive side interns index → id
// strings in an idCache so decoded Messages alias a single string per
// agent.

// Frame kinds and flags, all packed into the first body byte: the low
// nibble is the message kind (0 = hello), the next two bits are flags and
// the top two bits are reserved.
const (
	frameKindHello = 0

	// frameKindPing/Pong are whole single-byte record bodies (no flags,
	// no addressing): the node's liveness probe and the hub's answer.
	frameKindPing byte = 0x0e
	frameKindPong byte = 0x0f

	// frameKindHubHello is a whole-record head byte opening a hub→hub
	// parent link: a regional sub-hub introduces itself with its region id
	// and the parent enables record batching on the downward half of the
	// link. Like the heartbeats it sits above the message-kind range, so it
	// can never be confused with an addressed message.
	frameKindHubHello byte = 0x0c

	// frameKindBatch is a whole-record head byte carrying a coalesced
	// batch: the body is the head byte followed by complete length-prefixed
	// records, concatenated. Hub↔hub links wrap their write batches in one
	// batch record each way, so a regional sub-hub delivers a whole
	// iteration's worth of reports to its parent as one record instead of
	// O(M); node links never carry it. Batches do not nest.
	frameKindBatch byte = 0x0d

	frameKindMask        = 0x0f
	frameFlagStop   byte = 1 << 4
	frameFlagNamed  byte = 1 << 5
	frameFlagTraced byte = 1 << 6

	// traceSuffixLen is the byte length of the optional trace-context
	// suffix gated by frameFlagTraced: trace id + span id, little-endian.
	traceSuffixLen = 16

	// maxFrameBytes bounds a single record; protocol frames are tiny, so
	// anything larger is a corrupt or hostile stream.
	maxFrameBytes = 1 << 20
	// maxWireAgents bounds agent indices accepted off the wire, keeping a
	// corrupt frame from growing routing tables without limit.
	maxWireAgents = 1 << 20
)

// Wire decoding errors. Truncated and malformed frames fail cleanly with
// these sentinels rather than panicking.
var (
	ErrFrameTruncated = errors.New("distsim: truncated wire frame")
	ErrFrameInvalid   = errors.New("distsim: invalid wire frame")
)

// agentIndex maps a standard agent id to its dense wire index.
func agentIndex(id string) (uint32, bool) {
	if id == "coord" {
		return 0, true
	}
	var k int
	if parseID(id, "fe-", &k) && k >= 0 {
		return uint32(1 + 2*k), true
	}
	if parseID(id, "dc-", &k) && k >= 0 {
		return uint32(2 + 2*k), true
	}
	return 0, false
}

// agentID is the inverse of agentIndex.
func agentID(idx uint32) string {
	switch {
	case idx == 0:
		return "coord"
	case idx%2 == 1:
		return fmt.Sprintf("fe-%d", (idx-1)/2)
	default:
		return fmt.Sprintf("dc-%d", (idx-2)/2)
	}
}

// idCache interns index → id strings so decoding a frame never formats or
// allocates an id after the first message from each agent.
type idCache struct {
	mu  sync.RWMutex
	ids []string
}

func (c *idCache) lookup(idx uint32) string {
	c.mu.RLock()
	if int(idx) < len(c.ids) && c.ids[idx] != "" {
		s := c.ids[idx]
		c.mu.RUnlock()
		return s
	}
	c.mu.RUnlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	for int(idx) >= len(c.ids) {
		c.ids = append(c.ids, "")
	}
	if c.ids[idx] == "" {
		c.ids[idx] = agentID(idx)
	}
	return c.ids[idx]
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// appendFrame appends the length-prefixed record for m addressed to `to`
// onto dst and returns the extended slice. It allocates nothing beyond
// growing dst.
//
//ufc:hotpath
func appendFrame(dst []byte, to string, m *Message) []byte {
	toIdx, toOK := agentIndex(to)
	fromIdx, fromOK := agentIndex(m.From)
	head := byte(m.Kind) & frameKindMask
	if m.Stop {
		head |= frameFlagStop
	}
	traced := m.Trace.Valid()
	if traced {
		head |= frameFlagTraced
	}
	n := len(m.Payload)
	var body int
	if toOK && fromOK {
		body = 1 + uvarintLen(uint64(toIdx)) + uvarintLen(uint64(fromIdx))
	} else {
		head |= frameFlagNamed
		body = 1 + uvarintLen(uint64(len(to))) + len(to) +
			uvarintLen(uint64(len(m.From))) + len(m.From)
	}
	body += uvarintLen(uint64(uint(m.Iter))) + 8*n
	if traced {
		body += traceSuffixLen
	}

	dst = binary.AppendUvarint(dst, uint64(body))
	dst = append(dst, head)
	if head&frameFlagNamed == 0 {
		dst = binary.AppendUvarint(dst, uint64(toIdx))
		dst = binary.AppendUvarint(dst, uint64(fromIdx))
	} else {
		dst = binary.AppendUvarint(dst, uint64(len(to)))
		dst = append(dst, to...)
		dst = binary.AppendUvarint(dst, uint64(len(m.From)))
		dst = append(dst, m.From...)
	}
	dst = binary.AppendUvarint(dst, uint64(uint(m.Iter)))
	for _, v := range m.Payload {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	if traced {
		dst = appendTraceSuffix(dst, m.Trace)
	}
	return dst
}

// appendTraceSuffix appends the 16-byte trace-context suffix.
//
//ufc:hotpath
func appendTraceSuffix(dst []byte, tc tracing.Context) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(tc.Trace))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(tc.Span))
	return dst
}

// parseTraceSuffix reads the 16-byte trace-context suffix. Callers have
// already carved out exactly the suffix bytes; a short slice yields the
// zero (untraced) context rather than a bounds panic.
func parseTraceSuffix(b []byte) tracing.Context {
	if len(b) < traceSuffixLen {
		return tracing.Context{}
	}
	return tracing.Context{
		Trace: tracing.TraceID(binary.LittleEndian.Uint64(b)),
		Span:  tracing.SpanID(binary.LittleEndian.Uint64(b[8:])),
	}
}

// peekTraceSuffix extracts the trace context of a message body without
// decoding it — the hub tags forwarding events on traced records it
// otherwise relays verbatim. Returns false for untraced or non-message
// records and for traced records too short to carry the suffix (full
// decoding rejects those).
//
//ufc:hotpath
func peekTraceSuffix(b []byte) (tracing.Context, bool) {
	if len(b) < 1+traceSuffixLen || b[0]&frameFlagTraced == 0 {
		return tracing.Context{}, false
	}
	if k := Kind(b[0] & frameKindMask); k < KindRouting || k > KindFinalAck {
		return tracing.Context{}, false
	}
	return parseTraceSuffix(b[len(b)-traceSuffixLen:]), true
}

// appendHello appends the length-prefixed hello record registering ids.
//
//ufc:hotpath
func appendHello(dst []byte, ids []string) []byte {
	body := 1 + uvarintLen(uint64(len(ids)))
	for _, id := range ids {
		body += uvarintLen(uint64(len(id))) + len(id)
	}
	dst = binary.AppendUvarint(dst, uint64(body))
	dst = append(dst, frameKindHello)
	dst = binary.AppendUvarint(dst, uint64(len(ids)))
	for _, id := range ids {
		dst = binary.AppendUvarint(dst, uint64(len(id)))
		dst = append(dst, id...)
	}
	return dst
}

// appendPing appends the length-prefixed single-byte ping record.
//
//ufc:hotpath
func appendPing(dst []byte) []byte {
	dst = append(dst, 1, frameKindPing)
	return dst
}

// appendPong appends the length-prefixed single-byte pong record.
//
//ufc:hotpath
func appendPong(dst []byte) []byte {
	dst = append(dst, 1, frameKindPong)
	return dst
}

// appendHubHello appends the length-prefixed hub handshake record: a
// child hub's first record on its parent link, carrying the region id.
func appendHubHello(dst []byte, region int) []byte {
	body := 1 + uvarintLen(uint64(uint(region)))
	dst = binary.AppendUvarint(dst, uint64(body))
	dst = append(dst, frameKindHubHello)
	dst = binary.AppendUvarint(dst, uint64(uint(region)))
	return dst
}

// peekHubHello reports whether a record body is a hub handshake.
func peekHubHello(b []byte) bool {
	return len(b) > 0 && b[0] == frameKindHubHello
}

// parseHubHello parses a hub handshake body into the child's region id.
func parseHubHello(b []byte) (int, error) {
	c := byteCursor{b: b}
	head, err := c.u8()
	if err != nil {
		return 0, err
	}
	if head != frameKindHubHello {
		return 0, fmt.Errorf("%w: expected hub hello, got head byte %#02x", ErrFrameInvalid, head)
	}
	region, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	if region > maxWireAgents {
		return 0, fmt.Errorf("%w: hub region %d out of range", ErrFrameInvalid, region)
	}
	if c.off != len(b) {
		return 0, fmt.Errorf("%w: %d trailing hub hello bytes", ErrFrameInvalid, len(b)-c.off)
	}
	return int(region), nil
}

// appendBatchFrame appends one length-prefixed batch record whose body
// wraps inner — a concatenation of complete length-prefixed records — so
// the peer receives the whole batch as a single wire record.
//
//ufc:hotpath
func appendBatchFrame(dst, inner []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(1+len(inner)))
	dst = append(dst, frameKindBatch)
	dst = append(dst, inner...)
	return dst
}

// peekBatch reports whether a record body is a batch frame.
func peekBatch(b []byte) bool {
	return len(b) > 0 && b[0] == frameKindBatch
}

// parseBatch validates a batch body and returns the concatenated
// length-prefixed sub-records it wraps; iterate with splitBatchRecord.
func parseBatch(b []byte) ([]byte, error) {
	if len(b) == 0 {
		return nil, ErrFrameTruncated
	}
	if b[0] != frameKindBatch {
		return nil, fmt.Errorf("%w: expected batch, got head byte %#02x", ErrFrameInvalid, b[0])
	}
	return b[1:], nil
}

// splitBatchRecord splits the first length-prefixed sub-record off a
// batch payload, returning its body and the remaining payload. Nested
// batches are rejected: a batch wraps plain records only.
func splitBatchRecord(rest []byte) (body, remainder []byte, err error) {
	ln, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, nil, ErrFrameTruncated
	}
	if ln == 0 || ln > maxFrameBytes {
		return nil, nil, fmt.Errorf("%w: batch sub-record length %d", ErrFrameInvalid, ln)
	}
	rest = rest[n:]
	if uint64(len(rest)) < ln {
		return nil, nil, ErrFrameTruncated
	}
	body, remainder = rest[:ln], rest[ln:]
	if len(body) > 0 && body[0] == frameKindBatch {
		return nil, nil, fmt.Errorf("%w: nested batch record", ErrFrameInvalid)
	}
	return body, remainder, nil
}

// parseHeartbeat reports whether a record body is a ping or pong frame.
// Heartbeats are intercepted before message decoding.
func parseHeartbeat(body []byte) (ping, pong bool) {
	if len(body) != 1 {
		return false, false
	}
	return body[0] == frameKindPing, body[0] == frameKindPong
}

// byteCursor is a bounds-checked reader over a frame body.
type byteCursor struct {
	b   []byte
	off int
}

func (c *byteCursor) u8() (byte, error) {
	if c.off >= len(c.b) {
		return 0, ErrFrameTruncated
	}
	v := c.b[c.off]
	c.off++
	return v, nil
}

func (c *byteCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, ErrFrameTruncated
	}
	c.off += n
	return v, nil
}

func (c *byteCursor) bytes(n int) ([]byte, error) {
	if n < 0 || c.off+n > len(c.b) {
		return nil, ErrFrameTruncated
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v, nil
}

// wireMsg is a decoded message record.
type wireMsg struct {
	to    string // set only for named frames
	toIdx uint32 // valid when !named
	named bool
	msg   Message
}

// decodeMessageFrame parses a message body. The payload slice is freshly
// allocated (messages outlive the read buffer); the From id is interned
// through the cache for indexed frames.
func decodeMessageFrame(b []byte, cache *idCache) (wireMsg, error) {
	var fr wireMsg
	c := byteCursor{b: b}
	head, err := c.u8()
	if err != nil {
		return fr, err
	}
	kind := Kind(head & frameKindMask)
	if kind < KindRouting || kind > KindFinalAck || head&^(frameKindMask|frameFlagStop|frameFlagNamed|frameFlagTraced) != 0 {
		return fr, fmt.Errorf("%w: message head byte %#02x", ErrFrameInvalid, head)
	}
	fr.msg.Kind = kind
	fr.msg.Stop = head&frameFlagStop != 0
	fr.named = head&frameFlagNamed != 0
	traced := head&frameFlagTraced != 0
	if fr.named {
		to, err := c.readString()
		if err != nil {
			return fr, err
		}
		from, err := c.readString()
		if err != nil {
			return fr, err
		}
		fr.to, fr.msg.From = to, from
	} else {
		toIdx, err := c.uvarint()
		if err != nil {
			return fr, err
		}
		fromIdx, err := c.uvarint()
		if err != nil {
			return fr, err
		}
		if toIdx >= maxWireAgents || fromIdx >= maxWireAgents {
			return fr, fmt.Errorf("%w: agent index out of range", ErrFrameInvalid)
		}
		fr.toIdx = uint32(toIdx)
		fr.msg.From = cache.lookup(uint32(fromIdx))
	}
	iter, err := c.uvarint()
	if err != nil {
		return fr, err
	}
	fr.msg.Iter = int(iter)
	// The payload runs to the end of the body minus the flag-gated trace
	// suffix; the record length is the count, so what remains must be a
	// whole number of float64s.
	trailing := len(b) - c.off
	if traced {
		if trailing < traceSuffixLen {
			return fr, fmt.Errorf("%w: traced frame with %d trailing bytes", ErrFrameTruncated, trailing)
		}
		trailing -= traceSuffixLen
	}
	if trailing%8 != 0 {
		return fr, fmt.Errorf("%w: %d trailing payload bytes", ErrFrameInvalid, trailing)
	}
	if n := trailing / 8; n > 0 {
		fr.msg.Payload = make([]float64, n)
		for i := range fr.msg.Payload {
			raw, _ := c.bytes(8)
			fr.msg.Payload[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw))
		}
	}
	if traced {
		raw, err := c.bytes(traceSuffixLen)
		if err != nil {
			return fr, err
		}
		fr.msg.Trace = parseTraceSuffix(raw)
	}
	return fr, nil
}

func (c *byteCursor) readString() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(c.b)-c.off) {
		return "", ErrFrameTruncated
	}
	raw, err := c.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

// maxHelloIDBytes bounds one agent id in a hello record. Legitimate ids
// are tiny ("fe-1912", "lg-37"); the bound exists so a hostile hello
// cannot register megabyte-long ids that the hub would then hold in its
// routing table for the life of the connection.
const maxHelloIDBytes = 1024

// parseHello parses a hello body into the registered id list. Every
// length is explicitly bounded: the agent count against maxWireAgents
// and the record size, each id against maxHelloIDBytes, and empty ids
// are rejected (an empty route could never be addressed).
func parseHello(b []byte) ([]string, error) {
	c := byteCursor{b: b}
	head, err := c.u8()
	if err != nil {
		return nil, err
	}
	if head != frameKindHello {
		return nil, fmt.Errorf("%w: expected hello, got head byte %#02x", ErrFrameInvalid, head)
	}
	count, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if count > maxWireAgents || count > uint64(len(b)) {
		return nil, fmt.Errorf("%w: hello registers %d agents", ErrFrameInvalid, count)
	}
	ids := make([]string, 0, count)
	for k := uint64(0); k < count; k++ {
		id, err := c.readString()
		if err != nil {
			return nil, err
		}
		if id == "" {
			return nil, fmt.Errorf("%w: hello id %d is empty", ErrFrameInvalid, k)
		}
		if len(id) > maxHelloIDBytes {
			return nil, fmt.Errorf("%w: hello id %d is %d bytes, limit %d", ErrFrameInvalid, k, len(id), maxHelloIDBytes)
		}
		ids = append(ids, id)
	}
	if c.off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing hello bytes", ErrFrameInvalid, len(b)-c.off)
	}
	return ids, nil
}

// peekRoute extracts just the routing information of a message body
// without touching the payload — the hub forwards records verbatim.
func peekRoute(b []byte) (hello, named bool, toIdx uint32, to []byte, err error) {
	c := byteCursor{b: b}
	head, err := c.u8()
	if err != nil {
		return false, false, 0, nil, err
	}
	if head == frameKindHello {
		return true, false, 0, nil, nil
	}
	kind := Kind(head & frameKindMask)
	if kind < KindRouting || kind > KindFinalAck || head&^(frameKindMask|frameFlagStop|frameFlagNamed|frameFlagTraced) != 0 {
		return false, false, 0, nil, fmt.Errorf("%w: message head byte %#02x", ErrFrameInvalid, head)
	}
	if head&frameFlagNamed != 0 {
		n, err := c.uvarint()
		if err != nil {
			return false, false, 0, nil, err
		}
		raw, err := c.bytes(int(n))
		if err != nil {
			return false, false, 0, nil, err
		}
		return false, true, 0, raw, nil
	}
	idx, err := c.uvarint()
	if err != nil {
		return false, false, 0, nil, err
	}
	if idx >= maxWireAgents {
		return false, false, 0, nil, fmt.Errorf("%w: agent index out of range", ErrFrameInvalid)
	}
	return false, false, uint32(idx), nil, nil
}

// readRecord reads one length-prefixed record body into *scratch (grown as
// needed) and returns the body plus the total bytes consumed off the wire.
//
//ufc:hotpath
func readRecord(br *bufio.Reader, scratch *[]byte) (body []byte, wireBytes int, err error) {
	ln, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, 0, err
	}
	if ln == 0 || ln > maxFrameBytes {
		return nil, 0, fmt.Errorf("%w: record length %d", ErrFrameInvalid, ln)
	}
	if uint64(cap(*scratch)) < ln {
		*scratch = make([]byte, ln)
	}
	b := (*scratch)[:ln]
	if _, err := io.ReadFull(br, b); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, 0, err
	}
	return b, int(ln) + uvarintLen(ln), nil
}

// TransportStats is a point-in-time snapshot of a TCP transport's
// counters. Messages and bytes count length-prefixed records on the wire
// (including the one-off hello); Flushes counts syscall-bounded write
// batches, so MessagesSent/Flushes is the average coalescing batch size
// and MaxBatch the largest batch drained in one flush.
type TransportStats struct {
	MessagesSent     uint64
	BytesSent        uint64
	MessagesReceived uint64
	BytesReceived    uint64
	Flushes          uint64
	MaxBatch         uint64
	// HeartbeatsSent counts pings sent (node) or pongs answered (hub);
	// HeartbeatsReceived counts the opposite direction. A live link keeps
	// both advancing; a stalled one trips the read-deadline liveness check.
	HeartbeatsSent     uint64
	HeartbeatsReceived uint64
	// DecisionsAnswered counts routing lookups answered (serving hubs).
	DecisionsAnswered uint64
	// HandshakeRefusals counts accepted connections a listener refused
	// during the wire handshake (version mismatch, bad token, malformed
	// hello). Only listeners advance it.
	HandshakeRefusals uint64
}

// AvgBatch is the mean number of records coalesced per flush.
func (s TransportStats) AvgBatch() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.MessagesSent) / float64(s.Flushes)
}

// transportCounters is the shared counter block behind TransportStats.
// The instruments are telemetry types so a transport can be attached to a
// metrics registry (see the RegisterMetrics methods) and scraped live;
// TransportStats remains the point-in-time snapshot view of the same
// counters. Updates stay single atomic ops — the hot send/receive paths
// pay nothing for the registry integration.
type transportCounters struct {
	msgsSent  telemetry.Counter
	bytesSent telemetry.Counter
	msgsRecv  telemetry.Counter
	bytesRecv telemetry.Counter
	flushes   telemetry.Counter
	maxBatch  telemetry.Gauge
	pingsSent telemetry.Counter
	pingsRecv telemetry.Counter
	decisions telemetry.Counter
	hsRefused telemetry.Counter
}

// register attaches the counters to reg under the ufc_transport_* names.
// Attaching two transports to one registry requires distinguishing labels
// (e.g. component="hub" vs component="node").
func (c *transportCounters) register(reg *telemetry.Registry, labels ...telemetry.Label) {
	reg.RegisterCounter("ufc_transport_msgs_sent_total", "wire records sent", &c.msgsSent, labels...)
	reg.RegisterCounter("ufc_transport_bytes_sent_total", "wire bytes sent (including length prefixes)", &c.bytesSent, labels...)
	reg.RegisterCounter("ufc_transport_msgs_received_total", "wire records received", &c.msgsRecv, labels...)
	reg.RegisterCounter("ufc_transport_bytes_received_total", "wire bytes received (including length prefixes)", &c.bytesRecv, labels...)
	reg.RegisterCounter("ufc_transport_flushes_total", "syscall-bounded write batches", &c.flushes, labels...)
	reg.RegisterGauge("ufc_transport_max_batch", "largest record batch drained in one flush", &c.maxBatch, labels...)
	reg.RegisterCounter("ufc_transport_heartbeats_sent_total", "heartbeat frames sent", &c.pingsSent, labels...)
	reg.RegisterCounter("ufc_transport_heartbeats_received_total", "heartbeat frames received", &c.pingsRecv, labels...)
	reg.RegisterCounter("ufc_transport_decisions_total", "routing decisions answered", &c.decisions, labels...)
	reg.RegisterCounter("ufc_transport_handshake_refusals_total", "connections refused during the wire handshake", &c.hsRefused, labels...)
}

//ufc:hotpath
func (c *transportCounters) noteSend(wireBytes int) {
	c.msgsSent.Inc()
	c.bytesSent.Add(uint64(wireBytes))
}

//ufc:hotpath
func (c *transportCounters) noteRecv(wireBytes int) {
	c.msgsRecv.Inc()
	c.bytesRecv.Add(uint64(wireBytes))
}

//ufc:hotpath
func (c *transportCounters) noteFlush(batch int) {
	c.flushes.Inc()
	c.maxBatch.Max(float64(batch))
}

func (c *transportCounters) snapshot() TransportStats {
	return TransportStats{
		MessagesSent:       c.msgsSent.Load(),
		BytesSent:          c.bytesSent.Load(),
		MessagesReceived:   c.msgsRecv.Load(),
		BytesReceived:      c.bytesRecv.Load(),
		Flushes:            c.flushes.Load(),
		MaxBatch:           uint64(c.maxBatch.Load()),
		HeartbeatsSent:     c.pingsSent.Load(),
		HeartbeatsReceived: c.pingsRecv.Load(),
		DecisionsAnswered:  c.decisions.Load(),
		HandshakeRefusals:  c.hsRefused.Load(),
	}
}
