package distsim

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/telemetry/tracing"
)

// This file is the package's unified transport surface. Every way of
// standing up or joining the wire — root hub, regional sub-hub, solver
// node, lookup client — goes through two entry points:
//
//	Listen(ctx, ListenConfig) (*TCPHub, error)
//	Dial(ctx, DialConfig)     (Endpoint, error)
//
// with transport security (TLS, token auth, wire version) carried by the
// SecurityConfig block embedded in both. The historical constructors
// (NewTCPHub, NewTCPHubOpts, NewTCPNode, NewTCPNodeOpts, DialLookup)
// remain as thin deprecated wrappers over these.

// ListenConfig configures a hub: its listen address, routing table,
// place in a hub tree, serving plane and transport security.
type ListenConfig struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:0"). Required.
	Addr string
	// IdleTimeout drops a connection that produces no records (not even
	// heartbeat pings) for this long. Zero disables the check.
	IdleTimeout time.Duration
	// RouteShards is the number of routing-table shards (power of two;
	// default 16).
	RouteShards int
	// Parent, when non-empty, is the address of the parent hub: this hub
	// becomes a regional sub-hub (see HubOptions.Parent).
	Parent string
	// Region tags the sub-hub in its parent handshake (informational).
	Region int
	// ParentSecurity configures the dial up the parent link. Nil dials
	// the parent with a zero SecurityConfig (plaintext v1). Requires
	// Parent.
	ParentSecurity *SecurityConfig
	// Decider, when non-nil, turns the hub into a serving control plane
	// (see HubOptions.Decider).
	Decider Decider
	// Tracer, when non-nil, records forwarding and serving spans into
	// this flight recorder.
	Tracer *tracing.Recorder
	// Security is the accept-side transport security: a TLS server
	// config (mutual TLS via ClientAuth/ClientCAs), the expected auth
	// token, and the accepted wire-version range.
	Security SecurityConfig
}

// Validate checks the configuration without touching the network.
func (c *ListenConfig) Validate() error {
	if c.Addr == "" {
		return errors.New("distsim: listen: Addr is required")
	}
	if s := c.RouteShards; s != 0 && (s < 1 || s&(s-1) != 0) {
		return fmt.Errorf("distsim: hub route shards must be a power of two, got %d", s)
	}
	if err := c.Security.validate(); err != nil {
		return err
	}
	if c.ParentSecurity != nil {
		if c.Parent == "" {
			return errors.New("distsim: listen: ParentSecurity set without Parent")
		}
		if err := c.ParentSecurity.validate(); err != nil {
			return fmt.Errorf("parent link: %w", err)
		}
	}
	return nil
}

// Listen starts a hub serving cfg.Addr until Close. With cfg.Parent set
// the hub joins a tree as a regional sub-hub, dialing upward under
// cfg.ParentSecurity. The context bounds only connection setup (the
// listening socket, and the parent dial + handshake); the returned hub
// outlives it.
func Listen(ctx context.Context, cfg ListenConfig) (*TCPHub, error) {
	if ctx == nil {
		ctx = context.Background() //ufc:ctx nil-context convenience: the caller passed no root, so setup gets an unbounded one
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.RouteShards == 0 {
		cfg.RouteShards = defaultRouteShards
	}
	var lc net.ListenConfig
	ln, err := lc.Listen(ctx, "tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("distsim: hub listen: %w", err)
	}
	if cfg.Security.TLS != nil {
		ln = tls.NewListener(ln, cfg.Security.TLS)
	}
	h := &TCPHub{ln: ln, cfg: cfg, conns: make(map[net.Conn]*hubConn), tracer: cfg.Tracer}
	h.initShards(cfg.RouteShards)
	if cfg.Parent != "" {
		psec := cfg.ParentSecurity
		if psec == nil {
			psec = &SecurityConfig{}
		}
		if err := h.dialParent(ctx, cfg.Parent, cfg.Region, psec); err != nil {
			_ = ln.Close() //ufc:discard the parent dial error below is the failure being reported
			return nil, err
		}
	}
	h.wg.Add(1)
	//ufc:ctx the hub outlives the setup context by design; its lifetime is bounded by Close
	go h.acceptLoop()
	return h, nil
}

// DialConfig configures a client connection to a hub: either a solver
// node hosting agent inboxes (AgentIDs) or a serving-plane lookup
// client (LookupName) — exactly one of the two.
type DialConfig struct {
	// Addr is the hub address. Required.
	Addr string
	// AgentIDs are the agent ids hosted by this node; the dial returns a
	// *TCPNode. Mutually exclusive with LookupName.
	AgentIDs []string
	// Buffer is the per-agent inbox capacity (default 64). Node mode only.
	Buffer int
	// HeartbeatInterval and HeartbeatMiss configure link liveness (see
	// NodeOptions). Node mode only.
	HeartbeatInterval time.Duration
	// HeartbeatMiss is the number of missed heartbeat windows tolerated
	// (default 3). Node mode only.
	HeartbeatMiss int
	// Tracer, when non-nil, records send/recv events for traced
	// messages. Node mode only.
	Tracer *tracing.Recorder
	// LookupName registers a serving-plane lookup client under this id;
	// the dial returns a *LookupClient. Mutually exclusive with AgentIDs.
	LookupName string
	// OnDecision receives decision records on the lookup client's read
	// goroutine. Lookup mode only; may also be set on the client after
	// the dial, before its first Lookup.
	OnDecision func(Decision)
	// Security is the dial-side transport security: a TLS client config,
	// the auth token presented in the handshake, and the offered
	// wire-version range.
	Security SecurityConfig
}

// Validate checks the configuration without touching the network.
func (c *DialConfig) Validate() error {
	if c.Addr == "" {
		return errors.New("distsim: dial: Addr is required")
	}
	node, lookup := len(c.AgentIDs) > 0, c.LookupName != ""
	switch {
	case node && lookup:
		return errors.New("distsim: dial: AgentIDs and LookupName are mutually exclusive")
	case !node && !lookup:
		return errors.New("distsim: dial: one of AgentIDs or LookupName is required")
	}
	if node && c.OnDecision != nil {
		return errors.New("distsim: dial: OnDecision requires LookupName")
	}
	if c.Buffer < 0 {
		return fmt.Errorf("distsim: dial: Buffer %d: must be >= 0", c.Buffer)
	}
	if c.HeartbeatInterval < 0 {
		return fmt.Errorf("distsim: dial: HeartbeatInterval %v: must be >= 0", c.HeartbeatInterval)
	}
	return c.Security.validate()
}

// Endpoint is a client connection returned by Dial: a *TCPNode (agent
// mode) or a *LookupClient (lookup mode). Callers needing the concrete
// surface type-assert, mirroring net.Conn practice. The interface is
// sealed — only this package's transports implement it.
type Endpoint interface {
	// Close tears the connection down after flushing queued writes.
	Close() error
	// Stats snapshots the endpoint's transport counters.
	Stats() TransportStats
	// WireVersion reports the negotiated protocol version
	// (WireVersion1 or WireVersion2).
	WireVersion() int

	sealedEndpoint()
}

var (
	_ Endpoint = (*TCPNode)(nil)
	_ Endpoint = (*LookupClient)(nil)
)

// Dial connects to a hub, runs TLS and the wire handshake as configured,
// and registers the endpoint. The context bounds connection setup; the
// returned endpoint outlives it. Handshake failures surface the typed
// sentinels ErrVersionMismatch, ErrAuthFailed, ErrHandshakeTimeout and
// ErrHandshake.
func Dial(ctx context.Context, cfg DialConfig) (Endpoint, error) {
	if ctx == nil {
		ctx = context.Background() //ufc:ctx nil-context convenience: the caller passed no root, so setup gets an unbounded one
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	conn, ver, err := dialSecure(ctx, cfg.Addr, &cfg.Security)
	if err != nil {
		return nil, err
	}
	if cfg.LookupName != "" {
		//ufc:ctx the endpoint outlives the dial context by design; its lifetime is bounded by Close
		return newLookupClient(conn, ver, cfg.LookupName, cfg.OnDecision)
	}
	//ufc:ctx the endpoint outlives the dial context by design; its lifetime is bounded by Close
	return newTCPNode(conn, ver, &cfg)
}

// dialSecure establishes one secured, version-negotiated connection: TCP
// dial, optional TLS client handshake, then the wire handshake. Every
// phase is bounded by the security config's handshake timeout and by ctx.
func dialSecure(ctx context.Context, addr string, sec *SecurityConfig) (net.Conn, int, error) {
	d := net.Dialer{Timeout: sec.handshakeTimeout()}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, 0, fmt.Errorf("distsim: dial %s: %w", addr, err)
	}
	if sec.TLS != nil {
		tc := sec.TLS
		if tc.ServerName == "" && !tc.InsecureSkipVerify {
			if host, _, herr := net.SplitHostPort(addr); herr == nil {
				tc = tc.Clone()
				tc.ServerName = host
			}
		}
		tconn := tls.Client(conn, tc)
		hctx, cancel := context.WithTimeout(ctx, sec.handshakeTimeout())
		err = tconn.HandshakeContext(hctx)
		cancel()
		if err != nil {
			_ = conn.Close() //ufc:discard the TLS handshake error below is the failure being reported
			return nil, 0, tlsHandshakeError(err)
		}
		conn = tconn
	}
	ver, err := clientHandshake(conn, sec)
	if err != nil {
		_ = conn.Close() //ufc:discard the wire handshake error below is the failure being reported
		return nil, 0, err
	}
	return conn, ver, nil
}

// tlsHandshakeError maps a TLS client-handshake failure to the package's
// typed sentinels: certificate verification failures are authentication
// errors, deadline expiries are timeouts, the rest (alerts, protocol
// errors) generic handshake failures.
func tlsHandshakeError(err error) error {
	var cve *tls.CertificateVerificationError
	if errors.As(err, &cve) {
		return fmt.Errorf("%w: %v", ErrAuthFailed, err)
	}
	var ne net.Error
	if errors.Is(err, context.DeadlineExceeded) || (errors.As(err, &ne) && ne.Timeout()) {
		return fmt.Errorf("%w: tls: %v", ErrHandshakeTimeout, err)
	}
	return fmt.Errorf("%w: tls: %v", ErrHandshake, err)
}
