package distsim

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/carbon"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/utility"
)

// noLeakedGoroutines fails the test if the goroutine count has not
// returned to its starting level shortly after the test's own cleanups
// ran. Register first: t.Cleanup is LIFO, so this check runs after the
// hubs and endpoints registered later have shut down.
func noLeakedGoroutines(t *testing.T) {
	t.Helper()
	start := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= start {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		t.Errorf("goroutines leaked: %d at start, %d after cleanup\n%s",
			start, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
	})
}

func TestSecurityConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     SecurityConfig
		wantErr bool
	}{
		{name: "zero value", cfg: SecurityConfig{}},
		{name: "explicit v1", cfg: SecurityConfig{WireVersion: WireVersion1}},
		{name: "explicit v2", cfg: SecurityConfig{WireVersion: WireVersion2}},
		{name: "token", cfg: SecurityConfig{AuthToken: "s3cret"}},
		{name: "token with explicit v2", cfg: SecurityConfig{AuthToken: "s3cret", WireVersion: WireVersion2}},
		{name: "v2 with downgrade floor", cfg: SecurityConfig{WireVersion: WireVersion2, MinWireVersion: 1}},
		{name: "unknown version", cfg: SecurityConfig{WireVersion: 3}, wantErr: true},
		{name: "negative version", cfg: SecurityConfig{WireVersion: -1}, wantErr: true},
		{name: "unknown min version", cfg: SecurityConfig{MinWireVersion: 3}, wantErr: true},
		{name: "token over v1", cfg: SecurityConfig{AuthToken: "s3cret", WireVersion: WireVersion1}, wantErr: true},
		{name: "token with v1 floor", cfg: SecurityConfig{AuthToken: "s3cret", MinWireVersion: 1}, wantErr: true},
		{name: "min above max", cfg: SecurityConfig{WireVersion: WireVersion1, MinWireVersion: 2}, wantErr: true},
		{name: "oversized token", cfg: SecurityConfig{AuthToken: string(make([]byte, maxTokenBytes+1))}, wantErr: true},
		{name: "negative timeout", cfg: SecurityConfig{HandshakeTimeout: -time.Second}, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("validate() = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestSecurityConfigVersionResolution(t *testing.T) {
	tlsCfg := newTestPKI(t).clientConfig()
	cases := []struct {
		name                 string
		cfg                  SecurityConfig
		dialMin, dialMax     byte
		listenMin, listenMax byte
	}{
		{name: "zero: dialers stay v1, listeners accept both",
			cfg: SecurityConfig{}, dialMin: 1, dialMax: 1, listenMin: 1, listenMax: 2},
		{name: "TLS flips dialers to negotiation",
			cfg: SecurityConfig{TLS: tlsCfg}, dialMin: 1, dialMax: 2, listenMin: 1, listenMax: 2},
		{name: "token forces v2 everywhere",
			cfg: SecurityConfig{AuthToken: "s3cret"}, dialMin: 2, dialMax: 2, listenMin: 2, listenMax: 2},
		{name: "explicit v2 is strict",
			cfg: SecurityConfig{WireVersion: WireVersion2}, dialMin: 2, dialMax: 2, listenMin: 2, listenMax: 2},
		{name: "explicit v2 with downgrade floor",
			cfg: SecurityConfig{WireVersion: WireVersion2, MinWireVersion: 1}, dialMin: 1, dialMax: 2, listenMin: 1, listenMax: 2},
		{name: "pinned v1",
			cfg: SecurityConfig{WireVersion: WireVersion1}, dialMin: 1, dialMax: 1, listenMin: 1, listenMax: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.validate(); err != nil {
				t.Fatalf("validate() = %v", err)
			}
			if gotMin, gotMax := tc.cfg.dialVersions(); gotMin != tc.dialMin || gotMax != tc.dialMax {
				t.Errorf("dialVersions() = [%d, %d], want [%d, %d]", gotMin, gotMax, tc.dialMin, tc.dialMax)
			}
			if gotMin, gotMax := tc.cfg.versionRange(); gotMin != tc.listenMin || gotMax != tc.listenMax {
				t.Errorf("versionRange() = [%d, %d], want [%d, %d]", gotMin, gotMax, tc.listenMin, tc.listenMax)
			}
		})
	}
}

func TestNegotiateVersion(t *testing.T) {
	cases := []struct {
		cMin, cMax, sMin, sMax byte
		want                   byte
		ok                     bool
	}{
		{1, 1, 1, 2, 1, true},
		{1, 2, 1, 2, 2, true},
		{2, 2, 1, 2, 2, true},
		{1, 2, 1, 1, 1, true},
		{1, 2, 2, 2, 2, true},
		{2, 2, 1, 1, 0, false},
		{1, 1, 2, 2, 0, false},
	}
	for _, tc := range cases {
		v, ok := negotiateVersion(tc.cMin, tc.cMax, tc.sMin, tc.sMax)
		if v != tc.want || ok != tc.ok {
			t.Errorf("negotiateVersion(client [%d,%d], server [%d,%d]) = (%d, %v), want (%d, %v)",
				tc.cMin, tc.cMax, tc.sMin, tc.sMax, v, ok, tc.want, tc.ok)
		}
	}
}

// dialRoundtrip dials addr as a node hosting fe-0 and coord, pushes one
// message through the hub, and returns the node's negotiated version.
func dialRoundtrip(t *testing.T, addr string, sec SecurityConfig) (int, error) {
	t.Helper()
	ep, err := Dial(context.Background(), DialConfig{
		Addr:     addr,
		AgentIDs: []string{"fe-0", "coord"},
		Security: sec,
	})
	if err != nil {
		return 0, err
	}
	t.Cleanup(func() { _ = ep.Close() })
	node := ep.(*TCPNode)
	if err := node.Send("coord", Message{Kind: KindReport, Iter: 1, From: "fe-0", Payload: []float64{4.25}}); err != nil {
		t.Fatalf("send: %v", err)
	}
	box, err := node.Inbox("coord")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case m, ok := <-box:
		if !ok {
			t.Fatal("inbox closed before the message arrived")
		}
		if m.From != "fe-0" || len(m.Payload) != 1 || m.Payload[0] != 4.25 {
			t.Fatalf("roundtrip message corrupted: %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message did not round-trip through the hub")
	}
	return ep.WireVersion(), nil
}

// TestHandshakeVersionMatrix runs live client×server security combos
// through a real hub: negotiated versions, explicit downgrade, and the
// typed refusals for version and token mismatches.
func TestHandshakeVersionMatrix(t *testing.T) {
	noLeakedGoroutines(t)
	cases := []struct {
		name    string
		client  SecurityConfig
		server  SecurityConfig
		wantVer int
		wantErr error
	}{
		{name: "auto/auto stays v1", wantVer: 1},
		{name: "v2 client against auto server", client: SecurityConfig{WireVersion: WireVersion2}, wantVer: 2},
		{name: "matching tokens negotiate v2",
			client: SecurityConfig{AuthToken: "s3cret"}, server: SecurityConfig{AuthToken: "s3cret"}, wantVer: 2},
		{name: "token client against tokenless server",
			client: SecurityConfig{AuthToken: "s3cret"}, wantVer: 2},
		{name: "strict v2 against pinned v1 is refused",
			client: SecurityConfig{WireVersion: WireVersion2}, server: SecurityConfig{WireVersion: WireVersion1}, wantErr: ErrVersionMismatch},
		{name: "v2 with floor 1 downgrades to pinned v1",
			client: SecurityConfig{WireVersion: WireVersion2, MinWireVersion: 1}, server: SecurityConfig{WireVersion: WireVersion1}, wantVer: 1},
		{name: "wrong token is refused",
			client: SecurityConfig{AuthToken: "wr0ng"}, server: SecurityConfig{AuthToken: "s3cret"}, wantErr: ErrAuthFailed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hub, err := Listen(context.Background(), ListenConfig{Addr: "127.0.0.1:0", Security: tc.server})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = hub.Close() })
			ver, err := dialRoundtrip(t, hub.Addr(), tc.client)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("Dial error = %v, want errors.Is(%v)", err, tc.wantErr)
				}
				if hub.Stats().HandshakeRefusals == 0 {
					t.Error("hub did not count the handshake refusal")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if ver != tc.wantVer {
				t.Errorf("negotiated version = %d, want %d", ver, tc.wantVer)
			}
		})
	}
}

// TestHandshakeLegacyClientAgainstAuthHub covers the one refusal a v1
// dialer cannot observe at dial time: it sends no handshake, so the dial
// succeeds locally and the hub tears the connection down. The refusal is
// visible in the hub's counter and as the node's inboxes closing.
func TestHandshakeLegacyClientAgainstAuthHub(t *testing.T) {
	noLeakedGoroutines(t)
	hub, err := Listen(context.Background(), ListenConfig{
		Addr:     "127.0.0.1:0",
		Security: SecurityConfig{AuthToken: "s3cret"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Close() })

	node, err := NewTCPNode(hub.Addr(), []string{"fe-0"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	box, err := node.Inbox("fe-0")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-box:
		if ok {
			t.Fatal("unexpected message on a refused connection")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hub did not tear the legacy connection down")
	}
	if hub.Stats().HandshakeRefusals == 0 {
		t.Error("hub did not count the handshake refusal")
	}
}

// TestHandshakeMutualTLS pushes a message through a mutual-TLS hub with
// token auth — the full secure stack — and checks v2 was negotiated.
func TestHandshakeMutualTLS(t *testing.T) {
	noLeakedGoroutines(t)
	pki := newTestPKI(t)
	hub, err := Listen(context.Background(), ListenConfig{
		Addr:     "127.0.0.1:0",
		Security: SecurityConfig{TLS: pki.serverConfig(), AuthToken: "s3cret"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Close() })
	ver, err := dialRoundtrip(t, hub.Addr(), SecurityConfig{TLS: pki.clientConfig(), AuthToken: "s3cret"})
	if err != nil {
		t.Fatal(err)
	}
	if ver != WireVersion2 {
		t.Errorf("negotiated version = %d, want 2", ver)
	}
}

// TestHandshakeTLSCertVerification covers both certificate failure
// directions: a client that does not trust the server's CA, and a
// mutual-TLS server rejecting a client without a certificate.
func TestHandshakeTLSCertVerification(t *testing.T) {
	noLeakedGoroutines(t)
	pki := newTestPKI(t)
	hub, err := Listen(context.Background(), ListenConfig{
		Addr:     "127.0.0.1:0",
		Security: SecurityConfig{TLS: pki.serverConfig()},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Close() })

	t.Run("client rejects untrusted server", func(t *testing.T) {
		otherPKI := newTestPKI(t) // a CA the server's cert does not chain to
		cfg := otherPKI.clientConfig()
		_, err := Dial(context.Background(), DialConfig{
			Addr:     hub.Addr(),
			AgentIDs: []string{"fe-0"},
			Security: SecurityConfig{TLS: cfg},
		})
		if !errors.Is(err, ErrAuthFailed) {
			t.Fatalf("Dial error = %v, want errors.Is(ErrAuthFailed)", err)
		}
	})

	t.Run("server rejects certless client", func(t *testing.T) {
		cfg := pki.clientConfig()
		cfg.Certificates = nil // trusts the server but presents nothing
		_, err := Dial(context.Background(), DialConfig{
			Addr:     hub.Addr(),
			AgentIDs: []string{"fe-0"},
			Security: SecurityConfig{TLS: cfg, HandshakeTimeout: 5 * time.Second},
		})
		if err == nil {
			t.Fatal("Dial succeeded without a client certificate")
		}
		if !errors.Is(err, ErrHandshake) && !errors.Is(err, ErrAuthFailed) {
			t.Fatalf("Dial error = %v, want a typed handshake error", err)
		}
	})
}

// TestHandshakeTLSTimeout dials a listener that accepts and then never
// speaks TLS: the client's handshake must give up with the typed
// timeout, not hang.
func TestHandshakeTLSTimeout(t *testing.T) {
	noLeakedGoroutines(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- conn // hold the conn open, never write
	}()
	t.Cleanup(func() {
		select {
		case conn := <-accepted:
			_ = conn.Close()
		default:
		}
	})

	pki := newTestPKI(t)
	start := time.Now()
	_, err = Dial(context.Background(), DialConfig{
		Addr:     ln.Addr().String(),
		AgentIDs: []string{"fe-0"},
		Security: SecurityConfig{TLS: pki.clientConfig(), HandshakeTimeout: 300 * time.Millisecond},
	})
	if !errors.Is(err, ErrHandshakeTimeout) {
		t.Fatalf("Dial error = %v, want errors.Is(ErrHandshakeTimeout)", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v, want ~300ms", elapsed)
	}
}

// TestHandshakeServerTimeout connects to a hub and sends nothing: the
// hub's handshake deadline must reap the silent connection.
func TestHandshakeServerTimeout(t *testing.T) {
	noLeakedGoroutines(t)
	hub, err := Listen(context.Background(), ListenConfig{
		Addr:     "127.0.0.1:0",
		Security: SecurityConfig{HandshakeTimeout: 300 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Close() })
	conn, err := net.Dial("tcp", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); !errors.Is(err, io.EOF) {
		t.Fatalf("read on silent connection = %v, want EOF (hub-side teardown)", err)
	}
}

// TestLookupClientOverSecureWire covers the serving plane on the secure
// stack: a lookup client dialing through TLS + token reaches the
// decider and gets decisions back.
func TestLookupClientOverSecureWire(t *testing.T) {
	noLeakedGoroutines(t)
	pki := newTestPKI(t)
	hub, err := Listen(context.Background(), ListenConfig{
		Addr:     "127.0.0.1:0",
		Decider:  goldenDecider{},
		Security: SecurityConfig{TLS: pki.serverConfig(), AuthToken: "s3cret"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Close() })

	got := make(chan Decision, 1)
	ep, err := Dial(context.Background(), DialConfig{
		Addr:       hub.Addr(),
		LookupName: "lg-0",
		OnDecision: func(d Decision) { got <- d },
		Security:   SecurityConfig{TLS: pki.clientConfig(), AuthToken: "s3cret"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ep.Close() })
	if ep.WireVersion() != WireVersion2 {
		t.Errorf("negotiated version = %d, want 2", ep.WireVersion())
	}
	client := ep.(*LookupClient)
	if err := client.Lookup(2, 7, 0x5555aaaa5555aaaa); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-got:
		if d.ReqID != 7 || !d.OK {
			t.Fatalf("decision = %+v, want OK for req 7", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no decision over the secure wire")
	}
}

// FuzzHandshake fuzzes the handshake codec: arbitrary bytes through the
// client-hello reader (which must never panic and must round-trip what
// it accepts), the server-ack parser, and the version-matrix
// negotiation invariants.
func FuzzHandshake(f *testing.F) {
	f.Add([]byte{hsMagic0, hsMagic1, 1, 2, 0})
	f.Add(appendClientHandshake(nil, 2, 2, "s3cret"))
	f.Add(appendServerHandshake(nil, hsStatusOK, 2))
	f.Add(appendServerHandshake(nil, hsStatusAuth, 0))
	f.Add([]byte{0x01, frameKindHello, 0x00}) // legacy v1 hello prefix
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		minV, maxV, token, err := readClientHandshake(br)
		if err == nil {
			// Round-trip: what the reader accepted must re-encode to the
			// exact bytes it consumed.
			enc := appendClientHandshake(nil, minV, maxV, string(token))
			if !bytes.Equal(enc, data[:len(enc)]) {
				t.Fatalf("client hello round-trip mismatch:\n got %x\nwant %x", enc, data[:len(enc)])
			}
			if minV == 0 || minV > maxV {
				t.Fatalf("reader accepted invalid range [%d, %d]", minV, maxV)
			}
		}

		if v, err := parseServerHandshake(data, 1, 2); err == nil {
			if v < 1 || v > 2 {
				t.Fatalf("ack parser accepted version %d outside the offered range", v)
			}
		}

		// Negotiation invariants over the fuzzed corners of the matrix.
		if len(data) >= 4 {
			cMin, cMax, sMin, sMax := data[0], data[1], data[2], data[3]
			v, ok := negotiateVersion(cMin, cMax, sMin, sMax)
			if ok && (v < cMin || v > cMax || v < sMin || v > sMax) {
				t.Fatalf("negotiated %d outside client [%d,%d] / server [%d,%d]", v, cMin, cMax, sMin, sMax)
			}
			if !ok && cMin <= cMax && sMin <= sMax && max(cMin, sMin) <= min(cMax, sMax) {
				t.Fatalf("refused overlapping ranges client [%d,%d] / server [%d,%d]", cMin, cMax, sMin, sMax)
			}
		}
	})
}

// e2eInstance builds a small solvable instance for end-to-end runs
// (mirrors the external test suite's testInstance, which an in-package
// test cannot reach).
func e2eInstance(t *testing.T, seed int64) *core.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pm := model.DefaultPowerModel()
	sites := model.PaperDatacenterSites()
	dcs := make([]model.Datacenter, 3)
	for j := range dcs {
		dcs[j] = model.Datacenter{
			Location: sites[j],
			Servers:  800 + 300*rng.Float64(),
			Power:    pm,
		}.FullFuelCell()
	}
	feSites := model.PaperFrontEndSites()
	fes := make([]model.FrontEnd, 4)
	for i := range fes {
		fes[i] = model.FrontEnd{Location: feSites[2*i]}
	}
	cloud, err := model.NewCloud(dcs, fes)
	if err != nil {
		t.Fatal(err)
	}
	arr := make([]float64, len(fes))
	for i := range arr {
		arr[i] = 200 + 300*rng.Float64()
	}
	prices := make([]float64, len(dcs))
	rates := make([]float64, len(dcs))
	costs := make([]carbon.CostFunc, len(dcs))
	for j := range prices {
		prices[j] = 20 + 80*rng.Float64()
		rates[j] = 0.2 + 0.6*rng.Float64()
		costs[j] = carbon.LinearTax{Rate: 25}
	}
	return &core.Instance{
		Cloud:            cloud,
		Arrivals:         arr,
		PriceUSD:         prices,
		FuelCellPriceUSD: 80,
		CarbonRate:       rates,
		EmissionCost:     costs,
		Utility:          utility.Quadratic{},
		WeightW:          10,
	}
}

// runSolveOver runs the full distributed ADM-G protocol through a hub
// with the given transport security on both sides, returning the result
// and the negotiated wire version.
func runSolveOver(t *testing.T, inst *core.Instance, server, client SecurityConfig) (*Result, int) {
	t.Helper()
	hub, err := Listen(context.Background(), ListenConfig{Addr: "127.0.0.1:0", Security: server})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Close() })
	m, n := inst.Cloud.M(), inst.Cloud.N()
	ep, err := Dial(context.Background(), DialConfig{
		Addr:     hub.Addr(),
		AgentIDs: AllAgentIDs(m, n),
		Buffer:   128,
		Security: client,
	})
	if err != nil {
		t.Fatal(err)
	}
	node := ep.(*TCPNode)
	t.Cleanup(func() { _ = node.Close() })
	res, err := Run(context.Background(), inst, RunOptions{Timeout: time.Minute}, node)
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	return res, node.WireVersion()
}

// TestSolveOverMutualTLSBitIdentical is the PR's end-to-end acceptance
// check: the full distributed solve over mutual TLS + token auth on the
// v2 wire produces a bit-identical result to the same solve over the
// legacy plaintext v1 wire (and to the sequential solver).
func TestSolveOverMutualTLSBitIdentical(t *testing.T) {
	inst := e2eInstance(t, 4)
	_, seqBD, _, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	plainRes, plainVer := runSolveOver(t, inst, SecurityConfig{}, SecurityConfig{})
	if plainVer != WireVersion1 {
		t.Fatalf("plaintext run negotiated v%d, want v%d", plainVer, WireVersion1)
	}

	pki := newTestPKI(t)
	const token = "e2e-shared-token"
	secRes, secVer := runSolveOver(t, inst,
		SecurityConfig{TLS: pki.serverConfig(), AuthToken: token},
		SecurityConfig{TLS: pki.clientConfig(), AuthToken: token},
	)
	if secVer != WireVersion2 {
		t.Fatalf("secured run negotiated v%d, want v%d", secVer, WireVersion2)
	}

	if secRes.Breakdown.UFC != plainRes.Breakdown.UFC || secRes.Breakdown.UFC != seqBD.UFC {
		t.Fatalf("UFC differs: secured %v, plaintext %v, sequential %v",
			secRes.Breakdown.UFC, plainRes.Breakdown.UFC, seqBD.UFC)
	}
	if secRes.Stats.Iterations != plainRes.Stats.Iterations {
		t.Fatalf("iterations differ: secured %d vs plaintext %d",
			secRes.Stats.Iterations, plainRes.Stats.Iterations)
	}
	for i := range plainRes.Allocation.Lambda {
		for j := range plainRes.Allocation.Lambda[i] {
			if plainRes.Allocation.Lambda[i][j] != secRes.Allocation.Lambda[i][j] {
				t.Fatalf("lambda[%d][%d]: secured %v vs plaintext %v (must be bit-identical)",
					i, j, secRes.Allocation.Lambda[i][j], plainRes.Allocation.Lambda[i][j])
			}
		}
	}
	for j := range plainRes.Allocation.MuMW {
		if plainRes.Allocation.MuMW[j] != secRes.Allocation.MuMW[j] {
			t.Fatalf("mu[%d]: secured %v vs plaintext %v (must be bit-identical)",
				j, secRes.Allocation.MuMW[j], plainRes.Allocation.MuMW[j])
		}
	}
}
