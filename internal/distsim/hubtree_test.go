package distsim_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/distsim"
	"repro/internal/experiments"
)

func TestHubRejectsBadRouteShards(t *testing.T) {
	for _, shards := range []int{3, 7, 12, -1} {
		if hub, err := distsim.NewTCPHubOpts("127.0.0.1:0", distsim.HubOptions{RouteShards: shards}); err == nil {
			_ = hub.Close()
			t.Errorf("RouteShards=%d accepted, want power-of-two error", shards)
		}
	}
	hub, err := distsim.NewTCPHubOpts("127.0.0.1:0", distsim.HubOptions{RouteShards: 8})
	if err != nil {
		t.Fatalf("RouteShards=8 rejected: %v", err)
	}
	_ = hub.Close()
}

// TestDistributedSparseMatchesInProcess pins the sparse protocol agents to
// the in-process masked solver: a distributed run over a sparse engine
// must be bit-identical (per λ entry and in UFC) to core.Solve with the
// same SparsityCutoff — the compact per-agent loops reproduce the masked
// engine's arithmetic exactly.
func TestDistributedSparseMatchesInProcess(t *testing.T) {
	st, err := experiments.NewSyntheticTopology(experiments.Topology{N: 4, M: 8, Regions: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	inst := st.Instance(1)
	opts := core.Options{SparsityCutoff: st.CutoffSec}
	seqAlloc, seqBD, seqStats, err := core.Solve(inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	m, n := inst.Cloud.M(), inst.Cloud.N()
	tr := distsim.NewChanTransport(distsim.AllAgentIDs(m, n), distsim.ChanOptions{Seed: 9})
	defer func() { _ = tr.Close() }()
	res, err := distsim.Run(context.Background(), inst, distsim.RunOptions{Solver: opts}, tr)
	if err != nil {
		t.Fatalf("sparse distributed run: %v", err)
	}
	if res.Stats.Iterations != seqStats.Iterations {
		t.Errorf("iterations: distributed %d vs in-process %d", res.Stats.Iterations, seqStats.Iterations)
	}
	for i := range seqAlloc.Lambda {
		for j := range seqAlloc.Lambda[i] {
			if seqAlloc.Lambda[i][j] != res.Allocation.Lambda[i][j] {
				t.Fatalf("lambda[%d][%d]: distributed %v vs in-process %v (must be bit-identical)",
					i, j, res.Allocation.Lambda[i][j], seqAlloc.Lambda[i][j])
			}
		}
	}
	if res.Breakdown.UFC != seqBD.UFC {
		t.Errorf("UFC: distributed %v vs in-process %v", res.Breakdown.UFC, seqBD.UFC)
	}
}

// TestResilientRejectsSparse: the hardened protocol has no sparse variant
// yet, so combining Resilience with SparsityCutoff must fail loudly
// rather than desync the agents.
func TestResilientRejectsSparse(t *testing.T) {
	st, err := experiments.NewSyntheticTopology(experiments.Topology{N: 4, M: 4, Regions: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	inst := st.Instance(1)
	m, n := inst.Cloud.M(), inst.Cloud.N()
	tr := distsim.NewChanTransport(distsim.AllAgentIDs(m, n), distsim.ChanOptions{})
	defer func() { _ = tr.Close() }()
	_, err = distsim.Run(context.Background(), inst, distsim.RunOptions{
		Solver:     core.Options{SparsityCutoff: st.CutoffSec},
		Resilience: &distsim.Resilience{},
	}, tr)
	if err == nil {
		t.Fatal("resilient sparse run accepted, want an error")
	}
}

// runTree launches a hub-tree deployment: the coordinator's node on the
// root hub and one node per region on that region's sub-hub, each running
// its region's front-end and datacenter agents via RunAgents. It returns
// the coordinator's result.
func runTree(t *testing.T, st *experiments.SyntheticTopology, inst *core.Instance, opts core.Options, root *distsim.TCPHub, subs []*distsim.TCPHub) *distsim.Result {
	t.Helper()
	m, n := inst.Cloud.M(), inst.Cloud.N()
	regionIDs := make([][]string, len(subs))
	for i := 0; i < m; i++ {
		r := st.FERegion[i]
		regionIDs[r] = append(regionIDs[r], fmt.Sprintf("fe-%d", i))
	}
	for j := 0; j < n; j++ {
		r := st.DCRegion[j]
		regionIDs[r] = append(regionIDs[r], fmt.Sprintf("dc-%d", j))
	}

	runOpts := distsim.RunOptions{Solver: opts, Timeout: time.Minute}
	var wg sync.WaitGroup
	errCh := make(chan error, len(subs))
	for r, hub := range subs {
		node, err := distsim.NewTCPNode(hub.Addr(), regionIDs[r], 1024)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = node.Close() }()
		wg.Add(1)
		go func(r int, node *distsim.TCPNode) {
			defer wg.Done()
			if _, err := distsim.RunAgents(context.Background(), inst, runOpts, node, regionIDs[r]); err != nil {
				errCh <- fmt.Errorf("region %d agents: %w", r, err)
			}
		}(r, node)
	}
	coNode, err := distsim.NewTCPNode(root.Addr(), []string{"coord"}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = coNode.Close() }()
	res, err := distsim.RunAgents(context.Background(), inst, runOpts, coNode, []string{"coord"})
	if err != nil {
		t.Fatalf("tree coordinator: %v", err)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	return res
}

// newTree builds a root hub plus R regional sub-hubs parented to it.
func newTree(t *testing.T, regions int) (*distsim.TCPHub, []*distsim.TCPHub) {
	t.Helper()
	root, err := distsim.NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = root.Close() })
	subs := make([]*distsim.TCPHub, regions)
	for r := range subs {
		sub, err := distsim.NewTCPHubOpts("127.0.0.1:0", distsim.HubOptions{Parent: root.Addr(), Region: r})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = sub.Close() })
		subs[r] = sub
	}
	return root, subs
}

// TestHubTreeDense solves a dense instance across a 3-level topology
// (agents → regional sub-hubs → root) and demands the same bit-exact
// result as a flat single-hub run: the tree is pure routing, invisible to
// the protocol.
func TestHubTreeDense(t *testing.T) {
	st, err := experiments.NewSyntheticTopology(experiments.Topology{N: 4, M: 8, Regions: 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	inst := st.Instance(2)
	_, seqBD, _, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	root, subs := newTree(t, 2)
	res := runTree(t, st, inst, core.Options{}, root, subs)
	if res.Breakdown.UFC != seqBD.UFC {
		t.Errorf("UFC over hub tree: %v vs sequential %v", res.Breakdown.UFC, seqBD.UFC)
	}
}

// TestHubTreeReducesRootBytes is the scaling acceptance check: on the
// 20×200 topology with 4 regions and the sparsity cutoff set to the
// region structure, a hub tree (root + 4 regional sub-hubs) must carry at
// least 4× fewer bytes through the root hub than a flat hub carries in
// total, while producing the identical UFC. Intra-region λ̃/φ/ã exchanges
// terminate at the sub-hubs; only coordinator traffic — batched on the
// hub↔hub links — transits the root.
func TestHubTreeReducesRootBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hub 20×200 run in -short mode")
	}
	const regions = 4
	st, err := experiments.NewSyntheticTopology(experiments.Topology{N: 20, M: 200, Regions: regions}, 7)
	if err != nil {
		t.Fatal(err)
	}
	inst := st.Instance(1)
	// The byte comparison needs identical protocol rounds, not
	// convergence: both deployments run the same fixed iteration count.
	opts := core.Options{SparsityCutoff: st.CutoffSec, MaxIterations: 40}
	m, n := inst.Cloud.M(), inst.Cloud.N()

	// Flat deployment: every agent on one hub.
	flatHub, err := distsim.NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = flatHub.Close() }()
	flatNode, err := distsim.NewTCPNode(flatHub.Addr(), distsim.AllAgentIDs(m, n), 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = flatNode.Close() }()
	flatRes, err := distsim.Run(context.Background(), inst, distsim.RunOptions{Solver: opts, Timeout: time.Minute}, flatNode)
	if err != nil {
		t.Fatalf("flat run: %v", err)
	}
	flatStats := flatHub.Stats()

	// Tree deployment: regional agents on sub-hubs, coordinator on the root.
	root, subs := newTree(t, regions)
	treeRes := runTree(t, st, inst, opts, root, subs)
	rootStats := root.Stats()

	if flatRes.Breakdown.UFC != treeRes.Breakdown.UFC {
		t.Errorf("UFC: flat %v vs tree %v (must be identical)", flatRes.Breakdown.UFC, treeRes.Breakdown.UFC)
	}
	flatBytes := flatStats.BytesSent + flatStats.BytesReceived
	rootBytes := rootStats.BytesSent + rootStats.BytesReceived
	if rootBytes == 0 {
		t.Fatal("root hub saw no traffic; coordinator not routed through the root?")
	}
	if ratio := float64(flatBytes) / float64(rootBytes); ratio < 4 {
		t.Errorf("root-hub bytes reduced only %.2fx (flat %d vs tree root %d), want >= 4x", ratio, flatBytes, rootBytes)
	} else {
		t.Logf("root-hub bytes: flat %d, tree root %d (%.2fx reduction) over %d iterations",
			flatBytes, rootBytes, ratio, flatRes.Stats.Iterations)
	}
}
