package distsim

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
)

// Sparse protocol agents: the masked counterparts of runFrontEnd and
// runDatacenter, used whenever the engine carries a routing-feasibility
// mask (Options.SparsityCutoff > 0). Each agent keeps its per-iteration
// state in compact vectors indexed by its mask slice and exchanges
// messages only across feasible (front-end, datacenter) pairs, so wire
// traffic per iteration scales with the mask size instead of M·N — on a
// hub tree with latency-local regions, the cross-pair traffic this
// removes is exactly the traffic that would otherwise transit the root.
//
// The float expressions and their evaluation order are copied verbatim
// from the dense agents, and the compact vectors enumerate the same
// ascending mask indices as the engine's masked loops, so a distributed
// sparse solve is bit-identical to the in-process masked solve (which is
// itself bit-identical to the dense solve restricted to the mask).

// runFrontEndSparse is front-end agent i over compact vectors indexed by
// FeasibleCols(i).
func runFrontEndSparse(ctx context.Context, e *core.Engine, tr Transport, tab *idTable, i int, timeout time.Duration) error {
	inst := e.Instance()
	n := inst.Cloud.N()
	self := tab.fe[i]
	mb, err := newMailbox(ctx, tr, self, timeout)
	if err != nil {
		return err
	}
	cols := e.FeasibleCols(i)
	k := len(cols)
	pos := make(map[int]int, k) // datacenter index j -> compact slot
	for t, j := range cols {
		pos[int(j)] = t
	}
	rho, eps := e.Rho(), e.EffectiveEpsilon()
	loadScale, dualScale := e.LoadScale(), e.DualScale()

	aC := make([]float64, k)
	varphiC := make([]float64, k)
	lambdaC := make([]float64, k)
	lambdaTildeC := make([]float64, k)
	aTildeC := make([]float64, k)
	ws := e.NewStepWorkspace()

	for iter := 1; ; iter++ {
		if err := e.LambdaStepCompactInto(ws, i, aC, varphiC, lambdaTildeC); err != nil {
			return fmt.Errorf("front-end %d iter %d: %w", i, iter, err)
		}
		for t, j := range cols {
			if err := tr.Send(tab.dc[j], Message{
				Kind: KindRouting, Iter: iter, From: self,
				Payload: []float64{lambdaTildeC[t], varphiC[t]},
			}); err != nil {
				return fmt.Errorf("front-end %d iter %d send: %w", i, iter, err)
			}
		}

		for recvd := 0; recvd < k; recvd++ {
			msg, err := mb.recv(KindAux, iter)
			if err != nil {
				return fmt.Errorf("front-end %d iter %d: %w", i, iter, err)
			}
			var j int
			if !parseID(msg.From, "dc-", &j) || len(msg.Payload) != 1 {
				return fmt.Errorf("front-end %d iter %d: bad aux message from %q", i, iter, msg.From)
			}
			t, ok := pos[j]
			if !ok {
				return fmt.Errorf("front-end %d iter %d: aux from infeasible datacenter %d", i, iter, j)
			}
			aTildeC[t] = msg.Payload[0]
		}

		// Dual prediction and Gaussian back substitution for this row —
		// identical arithmetic to the dense agent, restricted to the mask.
		var residual float64
		for t := 0; t < k; t++ {
			varphiTilde := varphiC[t] - rho*(aTildeC[t]-lambdaTildeC[t])
			newVarphi := varphiC[t] + eps*(varphiTilde-varphiC[t])
			if d := math.Abs(newVarphi-varphiC[t]) / dualScale; d > residual {
				residual = d
			}
			varphiC[t] = newVarphi
			aC[t] += eps * (aTildeC[t] - aC[t])
			if d := math.Abs(aC[t]-lambdaTildeC[t]) / loadScale; d > residual {
				residual = d
			}
			lambdaC[t] = lambdaTildeC[t]
		}

		if err := tr.Send(tab.coord, Message{
			Kind: KindReport, Iter: iter, From: self, Payload: []float64{residual},
		}); err != nil {
			return fmt.Errorf("front-end %d iter %d report: %w", i, iter, err)
		}
		ctl, err := mb.recv(KindControl, iter)
		if err != nil {
			return fmt.Errorf("front-end %d iter %d control: %w", i, iter, err)
		}
		if ctl.Stop {
			// The final routing scatters back to full length: off-mask
			// entries are identically zero for the whole solve.
			final := make([]float64, n+1)
			final[0] = float64(i)
			for t, j := range cols {
				final[1+int(j)] = lambdaC[t]
			}
			return tr.Send(tab.coord, Message{
				Kind: KindFinal, Iter: iter, From: self, Payload: final,
			})
		}
	}
}

// runDatacenterSparse is datacenter agent j over compact vectors indexed
// by FeasibleRows(j). A datacenter outside every front-end's cutoff
// (k == 0) still runs: it computes its μ/ν/φ updates over an empty load
// column — matching the engine's masked iterate exactly — and keeps
// reporting to the coordinator.
func runDatacenterSparse(ctx context.Context, e *core.Engine, tr Transport, tab *idTable, j int, timeout time.Duration) error {
	self := tab.dc[j]
	mb, err := newMailbox(ctx, tr, self, timeout)
	if err != nil {
		return err
	}
	rows := e.FeasibleRows(j)
	k := len(rows)
	pos := make(map[int]int, k) // front-end index i -> compact slot
	for t, i := range rows {
		pos[int(i)] = t
	}
	rho, eps := e.Rho(), e.EffectiveEpsilon()
	dualScale := e.DualScale()
	disableCorrection := e.Options().DisableCorrection

	aC := make([]float64, k)
	lambdaTildeC := make([]float64, k)
	varphiC := make([]float64, k)
	aTildeC := make([]float64, k)
	ws := e.NewStepWorkspace()
	var mu, nu, phi float64

	for iter := 1; ; iter++ {
		for recvd := 0; recvd < k; recvd++ {
			msg, err := mb.recv(KindRouting, iter)
			if err != nil {
				return fmt.Errorf("datacenter %d iter %d: %w", j, iter, err)
			}
			var i int
			if !parseID(msg.From, "fe-", &i) || len(msg.Payload) != 2 {
				return fmt.Errorf("datacenter %d iter %d: bad routing message from %q", j, iter, msg.From)
			}
			t, ok := pos[i]
			if !ok {
				return fmt.Errorf("datacenter %d iter %d: routing from infeasible front-end %d", j, iter, i)
			}
			lambdaTildeC[t] = msg.Payload[0]
			varphiC[t] = msg.Payload[1]
		}

		var sumA float64
		for t := 0; t < k; t++ {
			sumA += aC[t]
		}
		muTilde := e.MuStep(j, sumA, nu, phi)
		nuTilde := e.NuStep(j, sumA, muTilde, phi)
		if k > 0 {
			if err := e.AStepCompactInto(ws, j, lambdaTildeC, varphiC, muTilde, nuTilde, phi, aTildeC); err != nil {
				return fmt.Errorf("datacenter %d iter %d: %w", j, iter, err)
			}
		}
		var sumATilde float64
		for t := 0; t < k; t++ {
			sumATilde += aTildeC[t]
		}
		phiTilde := phi - rho*e.PowerBalance(j, sumATilde, muTilde, nuTilde)

		for t, i := range rows {
			if err := tr.Send(tab.fe[i], Message{
				Kind: KindAux, Iter: iter, From: self,
				Payload: []float64{aTildeC[t]},
			}); err != nil {
				return fmt.Errorf("datacenter %d iter %d send: %w", j, iter, err)
			}
		}

		// Gaussian back substitution for this column (same accumulation
		// order as the engine's masked correction).
		newPhi := phi + eps*(phiTilde-phi)
		residual := math.Abs(newPhi-phi) / dualScale
		phi = newPhi
		var aDelta float64
		for t := 0; t < k; t++ {
			old := aC[t]
			next := old + eps*(aTildeC[t]-old)
			aDelta += next - old
			aC[t] = next
		}
		nuOld := nu
		if disableCorrection {
			nu = nuTilde
			mu = muTilde
		} else {
			nu = nuOld + eps*(nuTilde-nuOld) + aDelta
			mu = mu + eps*(muTilde-mu) - (nu - nuOld) + aDelta
		}

		if err := tr.Send(tab.coord, Message{
			Kind: KindReport, Iter: iter, From: self, Payload: []float64{residual},
		}); err != nil {
			return fmt.Errorf("datacenter %d iter %d report: %w", j, iter, err)
		}
		ctl, err := mb.recv(KindControl, iter)
		if err != nil {
			return fmt.Errorf("datacenter %d iter %d control: %w", j, iter, err)
		}
		if ctl.Stop {
			return tr.Send(tab.coord, Message{
				Kind: KindFinal, Iter: iter, From: self,
				Payload: []float64{float64(j), mu, nu, phi},
			})
		}
	}
}
