package distsim

import (
	"bufio"
	"bytes"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry/tracing"
)

// readOneRecord pushes an encoded record through the stream reader and
// returns its body, checking the framing accounts for every byte.
func readOneRecord(t *testing.T, rec []byte) []byte {
	t.Helper()
	br := bufio.NewReader(bytes.NewReader(rec))
	var scratch []byte
	body, wire, err := readRecord(br, &scratch)
	if err != nil {
		t.Fatalf("readRecord: %v", err)
	}
	if wire != len(rec) {
		t.Fatalf("wire bytes %d != record length %d", wire, len(rec))
	}
	return body
}

func TestLookupRoundTrip(t *testing.T) {
	cases := []struct {
		fe       uint32
		reqID, u uint64
		trace    tracing.Context
	}{
		{0, 0, 0, tracing.Context{}},
		{1, 1, 1, tracing.Context{}},
		{7, 1 << 40, 0x9e3779b97f4a7c15, tracing.Context{}},
		{maxWireAgents - 1, ^uint64(0), ^uint64(0), tracing.Context{}},
		{3, 42, 99, tracing.Context{Trace: 0xfeedface, Span: 0xdeadbeef}},
		{maxWireAgents - 1, ^uint64(0), 1, tracing.Context{Trace: 0xffffffffffffffff, Span: 1}},
	}
	for _, tc := range cases {
		body := readOneRecord(t, appendLookup(nil, tc.fe, tc.reqID, tc.u, tc.trace))
		if !peekLookup(body) {
			t.Fatalf("peekLookup(fe=%d) = false", tc.fe)
		}
		if peekDecision(body) {
			t.Fatalf("lookup body mistaken for decision")
		}
		fe, reqID, u, trace, err := parseLookup(body)
		if err != nil {
			t.Fatalf("parseLookup(fe=%d): %v", tc.fe, err)
		}
		if fe != tc.fe || reqID != tc.reqID || u != tc.u || trace != tc.trace {
			t.Errorf("lookup round-trip: got (%d, %d, %d, %+v), want (%d, %d, %d, %+v)",
				fe, reqID, u, trace, tc.fe, tc.reqID, tc.u, tc.trace)
		}
		// An untraced lookup must stay byte-identical to the pre-tracing
		// format: no flag, no suffix.
		if !tc.trace.Valid() && body[0] != frameKindLookup {
			t.Errorf("untraced lookup head byte %#02x", body[0])
		}
	}
}

func TestDecisionRoundTrip(t *testing.T) {
	cases := []Decision{
		{},
		{ReqID: 1, DC: 0, Slot: 0, AgeNanos: 0, OK: true},
		{ReqID: ^uint64(0), DC: maxWireAgents - 1, Slot: 1 << 50, AgeNanos: 5e9, OK: true},
		{ReqID: 42, AgeNanos: -1, OK: false},
	}
	for _, want := range cases {
		body := readOneRecord(t, appendDecision(nil, want))
		if !peekDecision(body) {
			t.Fatalf("peekDecision(%+v) = false", want)
		}
		got, err := parseDecision(body)
		if err != nil {
			t.Fatalf("parseDecision(%+v): %v", want, err)
		}
		if got != want {
			t.Errorf("decision round-trip: got %+v, want %+v", got, want)
		}
	}
}

func TestCPStatsRoundTrip(t *testing.T) {
	req := readOneRecord(t, appendCPStatsRequest(nil))
	if isStats, isReq := peekCPStats(req); !isStats || !isReq {
		t.Fatalf("stats request peek = (%v, %v), want (true, true)", isStats, isReq)
	}

	for _, vals := range [][]float64{
		nil,
		{0},
		{1, -2.5, math.Pi, math.Inf(1), math.MaxFloat64, -0.0},
	} {
		body := readOneRecord(t, appendCPStatsResponse(nil, vals))
		isStats, isReq := peekCPStats(body)
		if !isStats || isReq {
			t.Fatalf("stats response peek = (%v, %v), want (true, false)", isStats, isReq)
		}
		got, err := parseCPStatsResponse(body)
		if err != nil {
			t.Fatalf("parseCPStatsResponse(%v): %v", vals, err)
		}
		if len(got) != len(vals) {
			t.Fatalf("stats round-trip: %d values, want %d", len(got), len(vals))
		}
		for k := range vals {
			if math.Float64bits(got[k]) != math.Float64bits(vals[k]) {
				t.Errorf("stats value %d: got %g, want %g", k, got[k], vals[k])
			}
		}
	}
}

func TestServeParseRejectsMalformed(t *testing.T) {
	lookup := appendLookup(nil, 3, 99, 7, tracing.Context{})[1:] // strip length prefix
	traced := appendLookup(nil, 3, 99, 7, tracing.Context{Trace: 5, Span: 6})[1:]
	decision := appendDecision(nil, Decision{OK: true, DC: 2, Slot: 5, AgeNanos: 11})[1:]
	stats := appendCPStatsResponse(nil, []float64{1, 2})[1:]

	cases := []struct {
		name string
		body []byte
		kind byte
	}{
		{"empty lookup", nil, frameKindLookup},
		{"lookup trailing byte", append(append([]byte(nil), lookup...), 0), frameKindLookup},
		{"lookup truncated id", lookup[:len(lookup)-9], frameKindLookup},
		{"lookup fe out of range", appendLookup(nil, maxWireAgents, 0, 0, tracing.Context{})[1:], frameKindLookup},
		{"traced lookup truncated suffix", traced[:len(traced)-1], frameKindLookup},
		{"traced lookup missing suffix", traced[:len(traced)-traceSuffixLen], frameKindLookup},
		{"traced lookup trailing byte", append(append([]byte(nil), traced...), 0), frameKindLookup},
		{"decision trailing byte", append(append([]byte(nil), decision...), 0), frameKindDecision},
		{"decision truncated age", decision[:len(decision)-1], frameKindDecision},
		{"decision bad status", append([]byte{frameKindDecision, 7}, decision[2:]...), frameKindDecision},
		{"stats trailing byte", append(append([]byte(nil), stats...), 0), frameKindCPStats},
		{"stats count overclaims", []byte{frameKindCPStats, 200}, frameKindCPStats},
		{"stats truncated value", stats[:len(stats)-3], frameKindCPStats},
	}
	for _, tc := range cases {
		var err error
		switch tc.kind {
		case frameKindLookup:
			_, _, _, _, err = parseLookup(tc.body)
		case frameKindDecision:
			_, err = parseDecision(tc.body)
		case frameKindCPStats:
			_, err = parseCPStatsResponse(tc.body)
		}
		if err == nil {
			t.Errorf("%s: parsed without error", tc.name)
		}
	}

	// Cross-kind confusion must be an explicit error, not a misparse.
	if _, _, _, _, err := parseLookup(decision); !errors.Is(err, ErrFrameInvalid) {
		t.Errorf("parseLookup(decision body): %v", err)
	}
	if _, err := parseDecision(lookup); !errors.Is(err, ErrFrameInvalid) {
		t.Errorf("parseDecision(lookup body): %v", err)
	}
}

// stubDecider answers fe % 3 for front-ends below m, with fixed slot and
// age, counting every decision it makes.
type stubDecider struct {
	m       uint32
	decided atomic.Uint64
}

func (s *stubDecider) Decide(fe uint32, u uint64) (uint32, uint64, int64, bool) {
	if fe >= s.m {
		return 0, 0, -1, false
	}
	s.decided.Add(1)
	return fe % 3, 42, 1234, true
}

func (s *stubDecider) StatsPayload(dst []float64) []float64 {
	return append(dst, 1, float64(s.m), float64(s.decided.Load()))
}

func TestHubServesLookups(t *testing.T) {
	dec := &stubDecider{m: 16}
	hub, err := NewTCPHubOpts("127.0.0.1:0", HubOptions{Decider: dec})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }() //ufc:discard test cleanup

	const reqs = 200
	var mu sync.Mutex
	got := make(map[uint64]Decision, reqs+1)
	all := make(chan struct{})
	client, err := DialLookup(hub.Addr(), "lg-test", func(d Decision) {
		mu.Lock()
		got[d.ReqID] = d
		n := len(got)
		mu.Unlock()
		if n == reqs+1 {
			close(all)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }() //ufc:discard test cleanup

	for k := uint64(0); k < reqs; k++ {
		if err := client.Lookup(uint32(k%16), k, k*0x9e3779b97f4a7c15); err != nil {
			t.Fatalf("lookup %d: %v", k, err)
		}
	}
	// One out-of-range front-end must come back as a clean miss, not an
	// error or a dropped connection.
	if err := client.Lookup(16, reqs, 0); err != nil {
		t.Fatal(err)
	}

	select {
	case <-all:
	case <-time.After(10 * time.Second):
		mu.Lock()
		n := len(got)
		mu.Unlock()
		t.Fatalf("timed out with %d of %d decisions (client err: %v)", n, reqs+1, client.Err())
	}

	mu.Lock()
	defer mu.Unlock()
	for k := uint64(0); k < reqs; k++ {
		d, ok := got[k]
		if !ok {
			t.Fatalf("no decision for request %d", k)
		}
		want := Decision{ReqID: k, DC: uint32(k % 16 % 3), Slot: 42, AgeNanos: 1234, OK: true}
		if d != want {
			t.Errorf("request %d: got %+v, want %+v", k, d, want)
		}
	}
	if d := got[reqs]; d.OK || d.AgeNanos != -1 {
		t.Errorf("out-of-range front-end: got %+v, want unavailable with age -1", d)
	}

	vals, err := client.QueryStats(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || vals[0] != 1 || vals[1] != 16 || vals[2] != reqs {
		t.Errorf("stats payload %v, want [1 16 %d]", vals, reqs)
	}

	if st := hub.Stats(); st.DecisionsAnswered != reqs+1 {
		t.Errorf("hub answered %d decisions, want %d", st.DecisionsAnswered, reqs+1)
	}
}

func TestLookupClientRejectsGarbage(t *testing.T) {
	dec := &stubDecider{m: 4}
	hub, err := NewTCPHubOpts("127.0.0.1:0", HubOptions{Decider: dec})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }() //ufc:discard test cleanup

	client, err := DialLookup(hub.Addr(), "lg-garbage", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }() //ufc:discard test cleanup

	// A malformed lookup must fail the connection server-side: the hub
	// cannot resynchronize a corrupt stream, so the link comes down and
	// the client surfaces a terminal error.
	fb := getFrame()
	fb.b = append(fb.b, 3, frameKindLookup, 0xff, 0xff) // truncated uvarint fe
	if err := client.cw.enqueue(fb); err != nil {
		putFrame(fb)
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for client.Err() == nil {
		select {
		case <-deadline:
			t.Fatal("connection survived a malformed lookup")
		case <-time.After(10 * time.Millisecond):
		}
	}
}
