package distsim_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/distsim"
)

func TestFaultPlanValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
		ok   bool
	}{
		{"empty", `{}`, true},
		{"lossy link", `{"seed":7,"links":[{"from":"fe-*","drop":0.2}]}`, true},
		{"bad probability", `{"links":[{"drop":1.5}]}`, false},
		{"negative delay", `{"links":[{"maxExtraDelayMs":-3}]}`, false},
		{"empty partition", `{"partitions":[{"agents":[],"fromIter":1}]}`, false},
		{"heal before start", `{"partitions":[{"agents":["dc-0"],"fromIter":5,"toIter":3}]}`, false},
		{"crash without agent", `{"crashes":[{"agent":"","atIter":4}]}`, false},
		{"negative crash iter", `{"crashes":[{"agent":"dc-0","atIter":-1}]}`, false},
		{"full plan", `{"seed":1,"links":[{"drop":0.1,"dup":0.05,"delayProb":0.3,"maxExtraDelayMs":2}],
			"partitions":[{"agents":["dc-1"],"fromIter":10,"toIter":12}],
			"crashes":[{"agent":"fe-2","atIter":40}]}`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := distsim.ParseFaultPlan([]byte(tc.json))
			if (err == nil) != tc.ok {
				t.Fatalf("ParseFaultPlan(%s) error = %v, want ok=%v", tc.json, err, tc.ok)
			}
		})
	}
}

// collectFaulted pushes iters labelled messages from a to b through a
// fresh FaultTransport built from plan and returns which iterations
// arrived (in order) plus the final fault counters.
func collectFaulted(t *testing.T, plan *distsim.FaultPlan, iters int) ([]int, distsim.FaultStats) {
	t.Helper()
	inner := distsim.NewChanTransport([]string{"a", "b"}, distsim.ChanOptions{})
	ft, err := distsim.NewFaultTransport(inner, plan)
	if err != nil {
		t.Fatal(err)
	}
	inbox, err := ft.Inbox("b")
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for k := 1; k <= iters; k++ {
		if err := ft.Send("b", distsim.Message{From: "a", Kind: distsim.KindReport, Iter: k}); err != nil {
			t.Fatal(err)
		}
	drain:
		for {
			select {
			case m := <-inbox:
				got = append(got, m.Iter)
			default:
				break drain
			}
		}
	}
	st := ft.Stats()
	if err := ft.Close(); err != nil {
		t.Fatal(err)
	}
	return got, st
}

func TestFaultDropIsDeterministicAcrossRuns(t *testing.T) {
	plan := &distsim.FaultPlan{Seed: 42, Links: []distsim.LinkFault{{DropProb: 0.5}}}
	first, stFirst := collectFaulted(t, plan, 64)
	if stFirst.Dropped == 0 || len(first) == 64 {
		t.Fatalf("50%% loss dropped nothing: delivered %d, stats %+v", len(first), stFirst)
	}
	second, stSecond := collectFaulted(t, plan, 64)
	if fmt.Sprint(first) != fmt.Sprint(second) || stFirst != stSecond {
		t.Fatalf("same-seed replay diverged:\n  %v %+v\n  %v %+v", first, stFirst, second, stSecond)
	}
	other, _ := collectFaulted(t, &distsim.FaultPlan{Seed: 43, Links: plan.Links}, 64)
	if fmt.Sprint(first) == fmt.Sprint(other) {
		t.Fatal("different seeds produced the identical drop pattern")
	}
}

func TestFaultDuplicateDeliversTwice(t *testing.T) {
	plan := &distsim.FaultPlan{Seed: 1, Links: []distsim.LinkFault{{DupProb: 1}}}
	got, st := collectFaulted(t, plan, 8)
	if len(got) != 16 {
		t.Fatalf("DupProb 1 delivered %d copies of 8 sends, want 16", len(got))
	}
	if st.Duplicated != 8 {
		t.Fatalf("Duplicated = %d, want 8", st.Duplicated)
	}
}

func TestFaultPartitionWindow(t *testing.T) {
	plan := &distsim.FaultPlan{
		Partitions: []distsim.Partition{{Agents: []string{"a"}, FromIter: 2, ToIter: 4}},
	}
	got, st := collectFaulted(t, plan, 5)
	if want := "[1 4 5]"; fmt.Sprint(got) != want {
		t.Fatalf("partition [2,4) delivered %v, want %s", got, want)
	}
	if st.PartitionDropped != 2 {
		t.Fatalf("PartitionDropped = %d, want 2", st.PartitionDropped)
	}
}

func TestFaultCrashSilencesAgentAndClosesInbox(t *testing.T) {
	inner := distsim.NewChanTransport([]string{"a", "b"}, distsim.ChanOptions{})
	ft, err := distsim.NewFaultTransport(inner, &distsim.FaultPlan{
		Crashes: []distsim.Crash{{Agent: "b", AtIter: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ft.Close() }()
	inbox, err := ft.Inbox("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := ft.Send("b", distsim.Message{From: "a", Kind: distsim.KindRouting, Iter: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-inbox:
		if m.Iter != 1 {
			t.Fatalf("pre-crash delivery iter = %d, want 1", m.Iter)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pre-crash message never arrived")
	}
	if ft.Crashed("b") {
		t.Fatal("crash activated before AtIter")
	}
	// The first message at or past AtIter activates the crash: it is
	// dropped and the victim's inbox closes.
	if err := ft.Send("b", distsim.Message{From: "a", Kind: distsim.KindRouting, Iter: 3}); err != nil {
		t.Fatal(err)
	}
	select {
	case m, alive := <-inbox:
		if alive {
			t.Fatalf("post-crash delivery leaked: %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("victim inbox not closed after crash")
	}
	if !ft.Crashed("b") {
		t.Fatal("Crashed(b) = false after activation")
	}
	if st := ft.Stats(); st.CrashDropped == 0 {
		t.Fatalf("CrashDropped = 0, want > 0 (stats %+v)", st)
	}
}

// TestFaultZeroPlanPassthroughAllocFree pins the acceptance criterion that
// a no-fault chaos run costs nothing: Send through a zero-plan wrapper
// must add zero allocations over the bare transport underneath.
func TestFaultZeroPlanPassthroughAllocFree(t *testing.T) {
	msg := distsim.Message{From: "a", Kind: distsim.KindReport, Iter: 1}
	sendAllocs := func(tr distsim.Transport) float64 {
		t.Helper()
		inbox, err := tr.Inbox("a")
		if err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(200, func() {
			if err := tr.Send("a", msg); err != nil {
				t.Fatal(err)
			}
			<-inbox
		})
	}
	bare := distsim.NewChanTransport([]string{"a"}, distsim.ChanOptions{})
	defer func() { _ = bare.Close() }()
	baseline := sendAllocs(bare)

	inner := distsim.NewChanTransport([]string{"a"}, distsim.ChanOptions{})
	ft, err := distsim.NewFaultTransport(inner, &distsim.FaultPlan{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ft.Close() }()
	if wrapped := sendAllocs(ft); wrapped != baseline {
		t.Fatalf("zero-plan FaultTransport.Send allocates %.1f allocs/op, bare transport %.1f — the passthrough must add none", wrapped, baseline)
	}
}

// TestFaultChanInFlightGaugeDrainsOnClose pins the telemetry fix: delayed
// deliveries cancelled by Close must decrement the in-flight gauge, so a
// torn-down transport always reads zero in flight.
func TestFaultChanInFlightGaugeDrainsOnClose(t *testing.T) {
	tr := distsim.NewChanTransport([]string{"a"}, distsim.ChanOptions{
		Seed:            1,
		LossProb:        1, // every send takes the delayed-retransmit path
		RetransmitDelay: 10 * time.Second,
	})
	for k := 0; k < 8; k++ {
		if err := tr.Send("a", distsim.Message{From: "a", Kind: distsim.KindReport, Iter: k}); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.InFlight(); got != 8 {
		t.Fatalf("InFlight = %d with 8 delayed deliveries queued, want 8", got)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := tr.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after Close, want 0 (cancelled deliveries must decrement the gauge)", got)
	}
}

func TestFaultChanInFlightGaugeDrainsOnDelivery(t *testing.T) {
	tr := distsim.NewChanTransport([]string{"a"}, distsim.ChanOptions{})
	defer func() { _ = tr.Close() }()
	inbox, err := tr.Inbox("a")
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		if err := tr.Send("a", distsim.Message{From: "a", Kind: distsim.KindReport, Iter: k}); err != nil {
			t.Fatal(err)
		}
		<-inbox
	}
	if got := tr.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after full delivery, want 0", got)
	}
}
