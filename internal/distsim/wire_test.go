package distsim

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/telemetry/tracing"
)

// wireTestMessages enumerates every message kind crossed with empty,
// short and long payloads, the Stop flag, and both standard (indexed) and
// non-standard (named) addressing.
func wireTestMessages() []struct {
	to string
	m  Message
} {
	rng := rand.New(rand.NewSource(42))
	long := make([]float64, 4096)
	for i := range long {
		long[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(12)-6))
	}
	var cases []struct {
		to string
		m  Message
	}
	payloads := [][]float64{
		nil,
		{0},
		{1.5, -2.25, math.Pi},
		{math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64, -0.0},
		long,
	}
	addrs := []struct{ to, from string }{
		{"fe-0", "dc-0"},
		{"dc-7", "fe-12"},
		{"coord", "fe-3"},
		{"fe-524286", "coord"}, // large index, still below maxWireAgents
		{"observer", "fe-2"},   // named: non-standard destination
		{"dc-1", "gremlin-9"},  // named: non-standard sender
		{"", ""},               // named: empty ids
	}
	for kind := KindRouting; kind <= KindFinal; kind++ {
		for _, p := range payloads {
			for _, stop := range []bool{false, true} {
				for _, a := range addrs {
					cases = append(cases, struct {
						to string
						m  Message
					}{a.to, Message{
						Kind: kind, Iter: rng.Intn(1 << 20), From: a.from,
						Payload: p, Stop: stop,
					}})
				}
			}
		}
	}
	return cases
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestWireRoundTrip encodes then decodes every message shape and demands
// bit-identical payloads plus exact kind/iter/from/stop and routing.
func TestWireRoundTrip(t *testing.T) {
	var cache idCache
	for _, tc := range wireTestMessages() {
		rec := appendFrame(nil, tc.to, &tc.m)

		// The record must round-trip through the stream reader.
		br := bufio.NewReader(bytes.NewReader(rec))
		var scratch []byte
		body, wire, err := readRecord(br, &scratch)
		if err != nil {
			t.Fatalf("readRecord(%q -> %q kind %d): %v", tc.m.From, tc.to, tc.m.Kind, err)
		}
		if wire != len(rec) {
			t.Fatalf("wire bytes %d != record length %d", wire, len(rec))
		}

		fr, err := decodeMessageFrame(body, &cache)
		if err != nil {
			t.Fatalf("decode(%q -> %q kind %d): %v", tc.m.From, tc.to, tc.m.Kind, err)
		}
		got := fr.msg
		if got.Kind != tc.m.Kind || got.Iter != tc.m.Iter || got.Stop != tc.m.Stop {
			t.Fatalf("header mismatch: got %+v want %+v", got, tc.m)
		}
		if got.From != tc.m.From {
			t.Fatalf("from: got %q want %q", got.From, tc.m.From)
		}
		if !sameFloats(got.Payload, tc.m.Payload) {
			t.Fatalf("payload mismatch for kind %d len %d", tc.m.Kind, len(tc.m.Payload))
		}

		// Routing info must agree with decode on both paths.
		hello, named, toIdx, toName, err := peekRoute(body)
		if err != nil || hello {
			t.Fatalf("peekRoute: hello=%v err=%v", hello, err)
		}
		if named != fr.named {
			t.Fatalf("peek named=%v decode named=%v", named, fr.named)
		}
		if named {
			if string(toName) != tc.to || fr.to != tc.to {
				t.Fatalf("named to: peek %q decode %q want %q", toName, fr.to, tc.to)
			}
		} else {
			wantIdx, ok := agentIndex(tc.to)
			if !ok || toIdx != wantIdx || fr.toIdx != wantIdx {
				t.Fatalf("indexed to: peek %d decode %d want %d (%q)", toIdx, fr.toIdx, wantIdx, tc.to)
			}
		}
	}
}

// TestWireTruncatedFrames verifies every strict prefix of a valid body
// decodes to a clean error or — when the cut lands exactly on a float64
// boundary, indistinguishable from a genuinely shorter message because
// the record length is the payload count — to the same message with a
// bitwise prefix of the payload. Never a panic, never bogus fields.
// Mid-record truncation on the stream itself is caught by the length
// prefix (second half of the test).
func TestWireTruncatedFrames(t *testing.T) {
	var cache idCache
	for _, tc := range wireTestMessages() {
		rec := appendFrame(nil, tc.to, &tc.m)
		_, body := splitRecord(rec)
		headerEnd := len(body) - 8*len(tc.m.Payload)
		for cut := 0; cut < len(body); cut++ {
			fr, err := decodeMessageFrame(body[:cut], &cache)
			if err != nil {
				continue
			}
			if cut < headerEnd || (cut-headerEnd)%8 != 0 {
				t.Fatalf("truncated body (%d of %d bytes) decoded without error", cut, len(body))
			}
			got := fr.msg
			if got.Kind != tc.m.Kind || got.Iter != tc.m.Iter || got.Stop != tc.m.Stop ||
				got.From != tc.m.From ||
				!sameFloats(got.Payload, tc.m.Payload[:(cut-headerEnd)/8]) {
				t.Fatalf("payload-truncated body decoded to bogus message %+v", got)
			}
		}
	}
	// A truncated stream record (length prefix promising more bytes than
	// arrive) must fail cleanly too.
	rec := appendFrame(nil, "fe-0", &Message{Kind: KindAux, From: "dc-0", Payload: []float64{1, 2}})
	for cut := 1; cut < len(rec); cut++ {
		br := bufio.NewReader(bytes.NewReader(rec[:cut]))
		var scratch []byte
		if _, _, err := readRecord(br, &scratch); err == nil {
			t.Fatalf("truncated record (%d of %d bytes) read without error", cut, len(rec))
		}
	}
}

func TestWireRejectsBadFrames(t *testing.T) {
	var cache idCache
	bad := [][]byte{
		{},                                // empty
		{0, 0},                            // hello passed to message decoder
		{0x0f, 0, 0, 0},                   // kind nibble outside 1..5
		{byte(KindAux) | 0x80, 0, 0, 0},   // reserved head bit set
		{byte(KindAux) | 0x40, 0, 0, 0},   // traced flag without the 16-byte suffix
		{byte(KindAux), 0, 0, 0, 1, 2, 3}, // trailing bytes not a whole float64
	}
	for _, b := range bad {
		if _, err := decodeMessageFrame(b, &cache); err == nil {
			t.Errorf("frame %v decoded without error", b)
		}
	}
	// Oversized record length.
	var huge []byte
	huge = append(huge, 0xff, 0xff, 0xff, 0x7f) // uvarint ≫ maxFrameBytes
	br := bufio.NewReader(bytes.NewReader(huge))
	var scratch []byte
	if _, _, err := readRecord(br, &scratch); !errors.Is(err, ErrFrameInvalid) {
		t.Errorf("oversized record: %v", err)
	}
}

// TestWireTracedFrames pins the flag-gated trace suffix: traced messages
// round-trip their context bit-exactly, untraced messages stay
// byte-identical to the pre-tracing format, and a suffix the head byte
// promises but the body does not deliver is a clean truncation error.
func TestWireTracedFrames(t *testing.T) {
	var cache idCache
	contexts := []tracing.Context{
		{Trace: 1, Span: 1},
		{Trace: 0xfeedfacecafebeef, Span: 0x9e3779b97f4a7c15},
		{Trace: math.MaxUint64, Span: math.MaxUint64},
		{Trace: 7, Span: 0}, // span 0 is legal inside a valid trace
	}
	msgs := []struct {
		to string
		m  Message
	}{
		{"dc-0", Message{Kind: KindRouting, Iter: 3, From: "fe-1", Payload: []float64{1.5, -2.25}}},
		{"coord", Message{Kind: KindReport, Iter: 1 << 19, From: "dc-7"}},
		{"observer", Message{Kind: KindControl, From: "coord", Stop: true, Payload: []float64{0}}},
	}
	for _, tc := range contexts {
		for _, base := range msgs {
			m := base.m
			m.Trace = tc
			rec := appendFrame(nil, base.to, &m)
			_, body := splitRecord(rec)
			if body[0]&frameFlagTraced == 0 {
				t.Fatalf("traced frame head %#02x missing traced flag", body[0])
			}

			// The untraced encoding of the same message must be exactly the
			// traced record minus the flag bit and the 16-byte suffix.
			plain := base.m
			plainRec := appendFrame(nil, base.to, &plain)
			_, plainBody := splitRecord(plainRec)
			if len(body) != len(plainBody)+traceSuffixLen {
				t.Fatalf("traced body %d bytes, untraced %d: suffix must be exactly %d bytes",
					len(body), len(plainBody), traceSuffixLen)
			}
			if !bytes.Equal(body[1:len(body)-traceSuffixLen], plainBody[1:]) {
				t.Fatal("traced frame alters bytes outside the head flag and suffix")
			}

			fr, err := decodeMessageFrame(body, &cache)
			if err != nil {
				t.Fatalf("decode traced frame: %v", err)
			}
			if fr.msg.Trace != tc {
				t.Fatalf("trace round-trip: got %+v want %+v", fr.msg.Trace, tc)
			}
			if !sameFloats(fr.msg.Payload, m.Payload) || fr.msg.Kind != m.Kind || fr.msg.Stop != m.Stop {
				t.Fatalf("traced frame corrupted message: %+v", fr.msg)
			}

			// peekTraceSuffix must agree with the full decode.
			if got, ok := peekTraceSuffix(body); !ok || got != tc {
				t.Fatalf("peekTraceSuffix = (%+v, %v), want (%+v, true)", got, ok, tc)
			}
			if _, ok := peekTraceSuffix(plainBody); ok {
				t.Fatal("peekTraceSuffix claimed a context on an untraced frame")
			}

			// Cutting into the suffix must fail: the flag promises 16 bytes.
			headerEnd := len(body) - traceSuffixLen - 8*len(m.Payload)
			for cut := headerEnd; cut < headerEnd+traceSuffixLen; cut += 3 {
				if _, err := decodeMessageFrame(body[:cut], &cache); err == nil {
					t.Fatalf("traced frame cut to %d of %d bytes decoded without error", cut, len(body))
				}
			}
		}
	}

	// The zero context encodes as an untraced frame — the suffix never
	// rides for free on untraced traffic.
	m := Message{Kind: KindAux, From: "dc-0", Payload: []float64{3}}
	withZero := appendFrame(nil, "fe-0", &m)
	m.Trace = tracing.Context{}
	if !bytes.Equal(withZero, appendFrame(nil, "fe-0", &m)) {
		t.Fatal("zero trace context changed the encoding")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	for _, ids := range [][]string{
		{},
		{"coord"},
		{"fe-0", "fe-1", "dc-0", "dc-1", "coord"},
		{"weird agent", "fe-3"},
	} {
		rec := appendHello(nil, ids)
		_, body := splitRecord(rec)
		hello, _, _, _, err := peekRoute(body)
		if err != nil || !hello {
			t.Fatalf("peekRoute(hello %v): hello=%v err=%v", ids, hello, err)
		}
		got, err := parseHello(body)
		if err != nil {
			t.Fatalf("parseHello(%v): %v", ids, err)
		}
		if len(got) != len(ids) {
			t.Fatalf("hello ids: got %v want %v", got, ids)
		}
		for k := range ids {
			if got[k] != ids[k] {
				t.Fatalf("hello ids: got %v want %v", got, ids)
			}
		}
		for cut := 0; cut < len(body); cut++ {
			if _, err := parseHello(body[:cut]); err == nil {
				t.Fatalf("truncated hello (%d bytes) parsed without error", cut)
			}
		}
	}
}

// TestParseHelloBounds pins the hardened hello parser: every length is
// explicitly bounded, so a hostile hello cannot register empty,
// oversized or absurdly many ids.
func TestParseHelloBounds(t *testing.T) {
	helloBody := func(ids []string) []byte {
		_, body := splitRecord(appendHello(nil, ids))
		return body
	}
	cases := []struct {
		name string
		body []byte
		want string
	}{
		{"empty id", helloBody([]string{"fe-0", ""}), "is empty"},
		{"oversized id", helloBody([]string{strings.Repeat("x", maxHelloIDBytes+1)}), "limit"},
		{"count beyond record", append([]byte{frameKindHello}, binary.AppendUvarint(nil, 1<<30)...), "registers"},
		{"count beyond agent cap", append([]byte{frameKindHello}, binary.AppendUvarint(nil, maxWireAgents+1)...), "registers"},
		{"wrong head byte", []byte{frameKindPing, 0}, "expected hello"},
		{"trailing bytes", append(helloBody([]string{"fe-0"}), 0xFF), "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseHello(tc.body)
			if !errors.Is(err, ErrFrameInvalid) && !errors.Is(err, ErrFrameTruncated) {
				t.Fatalf("parseHello = %v, want a frame error", err)
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("parseHello = %v, want message containing %q", err, tc.want)
			}
		})
	}
	// At the limit the id round-trips: the bound rejects only beyond it.
	edge := strings.Repeat("y", maxHelloIDBytes)
	ids, err := parseHello(helloBody([]string{edge}))
	if err != nil || len(ids) != 1 || ids[0] != edge {
		t.Fatalf("limit-length id: ids=%d err=%v", len(ids), err)
	}
}

// TestParseHubHelloBounds pins the hub-tree handshake parser the same
// way: bounded region, exact length, correct head byte.
func TestParseHubHelloBounds(t *testing.T) {
	hubHelloBody := func(region int) []byte {
		_, body := splitRecord(appendHubHello(nil, region))
		return body
	}
	if region, err := parseHubHello(hubHelloBody(7)); err != nil || region != 7 {
		t.Fatalf("round trip: region=%d err=%v", region, err)
	}
	cases := []struct {
		name string
		body []byte
		want string
	}{
		{"region out of range", append([]byte{frameKindHubHello}, binary.AppendUvarint(nil, maxWireAgents+1)...), "out of range"},
		{"wrong head byte", []byte{frameKindPing, 0}, "expected hub hello"},
		{"trailing bytes", append(hubHelloBody(1), 0xFF), "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseHubHello(tc.body)
			if !errors.Is(err, ErrFrameInvalid) {
				t.Fatalf("parseHubHello = %v, want ErrFrameInvalid", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("parseHubHello = %v, want message containing %q", err, tc.want)
			}
		})
	}
	for cut := 0; cut < len(hubHelloBody(300)); cut++ {
		if _, err := parseHubHello(hubHelloBody(300)[:cut]); err == nil {
			t.Fatalf("truncated hub hello (%d bytes) parsed without error", cut)
		}
	}
}

// TestAgentIndexRoundTrip pins the dense index scheme.
func TestAgentIndexRoundTrip(t *testing.T) {
	var cache idCache
	for _, id := range []string{"coord", "fe-0", "fe-1", "fe-31", "dc-0", "dc-7", "dc-999"} {
		idx, ok := agentIndex(id)
		if !ok {
			t.Fatalf("agentIndex(%q) not standard", id)
		}
		if back := agentID(idx); back != id {
			t.Errorf("agentID(agentIndex(%q)) = %q", id, back)
		}
		if s := cache.lookup(idx); s != id {
			t.Errorf("cache.lookup(%d) = %q want %q", idx, s, id)
		}
		// Interning: the same index yields the same string header.
		if s1, s2 := cache.lookup(idx), cache.lookup(idx); s1 != s2 {
			t.Errorf("cache not stable for %q", id)
		}
	}
	for _, id := range []string{"", "fe-", "fe-x", "gremlin-1", "coord2", "FE-1"} {
		if _, ok := agentIndex(id); ok {
			t.Errorf("agentIndex(%q) unexpectedly standard", id)
		}
	}
}

// FuzzWireDecode drives the three decoders with arbitrary bytes: they
// must never panic, and whatever decodes must re-encode to a frame that
// decodes identically.
func FuzzWireDecode(f *testing.F) {
	// Seed corpus: valid frames of every kind plus truncations of each.
	seeds := [][]byte{
		appendHello(nil, []string{"fe-0", "dc-0", "coord"}),
		{0}, {0, 0}, {1}, {5, 1}, {6, 0},
	}
	for _, tc := range wireTestMessages()[:40] {
		rec := appendFrame(nil, tc.to, &tc.m)
		_, body := splitRecord(rec)
		seeds = append(seeds, append([]byte(nil), body...))
		if len(body) > 3 {
			seeds = append(seeds, append([]byte(nil), body[:len(body)/2]...))
			seeds = append(seeds, append([]byte(nil), body[:len(body)-1]...))
		}
	}
	// Traced frames: full, suffix-truncated, and flag-only corruptions.
	traced := Message{Kind: KindRouting, Iter: 9, From: "fe-2", Payload: []float64{1, 2},
		Trace: tracing.Context{Trace: 0xfeed, Span: 0xbeef}}
	_, tracedBody := splitRecord(appendFrame(nil, "dc-3", &traced))
	seeds = append(seeds,
		append([]byte(nil), tracedBody...),
		append([]byte(nil), tracedBody[:len(tracedBody)-1]...),
		append([]byte(nil), tracedBody[:len(tracedBody)-traceSuffixLen]...))
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		var cache idCache
		_, _, _, _, _ = peekRoute(b)
		_, _ = parseHello(b)
		fr, err := decodeMessageFrame(b, &cache)
		if err != nil {
			return
		}
		// Decoded OK: the message must survive a canonical re-encode.
		to := fr.to
		if !fr.named {
			to = cache.lookup(fr.toIdx)
		}
		rec := appendFrame(nil, to, &fr.msg)
		_, body := splitRecord(rec)
		fr2, err := decodeMessageFrame(body, &cache)
		if err != nil {
			t.Fatalf("re-encode of decoded frame failed to decode: %v", err)
		}
		if fr2.msg.Kind != fr.msg.Kind || fr2.msg.Iter != fr.msg.Iter ||
			fr2.msg.Stop != fr.msg.Stop || fr2.msg.From != fr.msg.From ||
			!sameFloats(fr2.msg.Payload, fr.msg.Payload) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", fr2.msg, fr.msg)
		}
		// Valid trace contexts round-trip; a zero trace id re-encodes as
		// untraced, which decodes back to the zero context either way.
		if fr.msg.Trace.Valid() && fr2.msg.Trace != fr.msg.Trace {
			t.Fatalf("trace round-trip mismatch: %+v vs %+v", fr2.msg.Trace, fr.msg.Trace)
		}
	})
}

// TestBatchRoundTrip packs several complete records into one batch record
// and checks their bodies unpack in order and byte-identical.
func TestBatchRoundTrip(t *testing.T) {
	var inner []byte
	var want [][]byte
	for _, tc := range wireTestMessages()[:8] {
		rec := appendFrame(nil, tc.to, &tc.m)
		_, recBody := splitRecord(rec)
		want = append(want, recBody)
		inner = append(inner, rec...)
	}
	batch := appendBatchFrame(nil, inner)

	// The batch record itself must survive the stream reader.
	br := bufio.NewReader(bytes.NewReader(batch))
	var scratch []byte
	body, wire, err := readRecord(br, &scratch)
	if err != nil {
		t.Fatalf("readRecord(batch): %v", err)
	}
	if wire != len(batch) {
		t.Fatalf("wire bytes %d != batch length %d", wire, len(batch))
	}
	if !peekBatch(body) {
		t.Fatal("peekBatch rejected a batch body")
	}
	rest, err := parseBatch(body)
	if err != nil {
		t.Fatalf("parseBatch: %v", err)
	}
	for k := 0; len(rest) > 0; k++ {
		sub, rem, err := splitBatchRecord(rest)
		if err != nil {
			t.Fatalf("splitBatchRecord #%d: %v", k, err)
		}
		if k >= len(want) || !bytes.Equal(sub, want[k]) {
			t.Fatalf("batch record #%d does not match the packed record", k)
		}
		rest = rem
	}
}

// TestBatchRejectsBadFrames drives the batch codec's failure paths:
// truncation at every cut, nested batches, zero-length sub-records.
func TestBatchRejectsBadFrames(t *testing.T) {
	if _, err := parseBatch(nil); !errors.Is(err, ErrFrameTruncated) {
		t.Errorf("parseBatch(empty): %v", err)
	}
	if _, err := parseBatch([]byte{byte(KindAux)}); !errors.Is(err, ErrFrameInvalid) {
		t.Errorf("parseBatch(non-batch head): %v", err)
	}
	rec := appendFrame(nil, "fe-0", &Message{Kind: KindAux, From: "dc-0", Payload: []float64{1, 2}})
	batch := appendBatchFrame(nil, rec)
	_, body := splitRecord(batch)
	rest, err := parseBatch(body)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(rest); cut++ {
		if _, _, err := splitBatchRecord(rest[:cut]); err == nil {
			t.Fatalf("truncated batch payload (%d of %d bytes) split without error", cut, len(rest))
		}
	}
	// A batch nested inside a batch is invalid — the writer never produces
	// one and a decoder that recursed could be pumped into deep nesting.
	nested := appendBatchFrame(nil, batch)
	_, nestedBody := splitRecord(nested)
	inner, err := parseBatch(nestedBody)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := splitBatchRecord(inner); !errors.Is(err, ErrFrameInvalid) {
		t.Errorf("nested batch split: %v, want ErrFrameInvalid", err)
	}
	// Zero-length sub-record.
	if _, _, err := splitBatchRecord([]byte{0}); !errors.Is(err, ErrFrameInvalid) {
		t.Errorf("zero-length batch sub-record: %v, want ErrFrameInvalid", err)
	}
}

// TestHubHelloRoundTrip pins the hub↔hub handshake record.
func TestHubHelloRoundTrip(t *testing.T) {
	for _, region := range []int{0, 1, 7, 4095} {
		rec := appendHubHello(nil, region)
		_, body := splitRecord(rec)
		if !peekHubHello(body) {
			t.Fatalf("peekHubHello(region %d) = false", region)
		}
		got, err := parseHubHello(body)
		if err != nil {
			t.Fatalf("parseHubHello(region %d): %v", region, err)
		}
		if got != region {
			t.Fatalf("hub hello region: got %d want %d", got, region)
		}
		for cut := 0; cut < len(body); cut++ {
			if _, err := parseHubHello(body[:cut]); err == nil {
				t.Fatalf("truncated hub hello (%d bytes) parsed without error", cut)
			}
		}
	}
	if peekHubHello(nil) {
		t.Error("peekHubHello(nil) = true")
	}
}
