package distsim

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/bits"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/tracing"
)

// defaultRouteShards is the default routing-table shard count
// (HubOptions.RouteShards overrides it): sharding keeps registration and
// failure handling on one shard from contending with forwarding on
// another. Power of two: the shard of index i is i & (shards-1).
const defaultRouteShards = 16

// routeShard holds the routing slots whose agent index ≡ shard id
// (mod routeShardCount). Slot k of a shard serves agent index
// k*routeShardCount + shard. Messages for agents that have not registered
// yet wait in pending (heap-owned copies) and drain on registration.
type routeShard struct {
	mu           sync.RWMutex
	slots        []*hubConn
	named        map[string]*hubConn
	pending      map[uint32][][]byte
	namedPending map[string][][]byte
	stats        shardStats
}

// shardStats are the per-shard routing counters, updated lock-free on the
// forwarding path and exposed via TCPHub.RegisterMetrics with a
// shard="<id>" label. A skewed msgs distribution across shards reveals
// routing hot spots; requeues/pending expose churn and slow registrants.
type shardStats struct {
	msgs     telemetry.Counter // records routed through this shard
	bytes    telemetry.Counter // wire bytes routed (prefix included)
	requeues telemetry.Counter // records requeued after a failed delivery
	pending  telemetry.Counter // records parked for unregistered destinations
}

// TCPHub is a message router: nodes connect over TCP, register the agent
// ids they host, and exchange binary wire records (see wire.go) which the
// hub forwards verbatim — it peeks only the destination, never decodes a
// payload. Routing is index-based through a sharded slot table; records
// for unregistered ids are queued and flushed on registration, and
// records stranded on a broken connection are requeued for the next node
// that registers the destination.
//
// Hubs compose into a tree: a hub started with HubOptions.Parent is a
// regional sub-hub that forwards records it cannot route locally up the
// parent link and propagates its registrations upward, so the parent
// routes those ids back down. Hub↔hub links wrap their write batches in
// single batch records each way (see frameKindBatch), so a sub-hub
// serving a whole region costs its parent O(1) records per flush instead
// of one per message.
type TCPHub struct {
	ln         net.Listener
	cfg        ListenConfig
	counters   transportCounters
	shards     []routeShard
	shardMask  uint32
	shardShift uint
	parent     *parentLink // nil on a root hub
	tracer     *tracing.Recorder

	mu     sync.Mutex
	conns  map[net.Conn]*hubConn // value nil until the hello arrives
	closed bool
	wg     sync.WaitGroup
}

// HubOptions configures a TCPHub's liveness behaviour and its place in a
// hub tree.
type HubOptions struct {
	// IdleTimeout drops a node connection that produces no records (not
	// even heartbeat pings) for this long. Zero disables the check —
	// connections then linger until the peer closes or the hub shuts down.
	IdleTimeout time.Duration
	// RouteShards is the number of routing-table shards (power of two;
	// default 16). Raise it on hubs serving many concurrent connections to
	// cut registration/forwarding contention.
	RouteShards int
	// Parent, when non-empty, is the address of the parent hub: this hub
	// becomes a regional sub-hub. Records whose destination is not
	// registered locally travel up the parent link (batched); local
	// registrations propagate upward so the parent routes the ids down.
	Parent string
	// Region tags the sub-hub in its parent handshake (informational).
	Region int
	// Decider, when non-nil, turns the hub into a serving control plane:
	// lookup records arriving on node links are answered inline with
	// decision records, and cpstats requests with the decider's statistics
	// vector. See the serving-plane record docs in serve.go.
	Decider Decider
	// Tracer, when non-nil, records spans for traced lookups and
	// forwarding events for traced records into this flight recorder.
	// Untraced traffic costs one branch; nil disables tracing entirely.
	Tracer *tracing.Recorder
}

// parentLink is a sub-hub's connection to its parent hub.
type parentLink struct {
	conn net.Conn
	cw   *connWriter
}

// hubConn is one connection served by the hub — a node or a child hub:
// its coalescing writer plus the routes it registered (so a failure can
// drop exactly those).
type hubConn struct {
	cw    *connWriter
	idxs  []uint32
	names []string
}

// NewTCPHub listens on addr (e.g. "127.0.0.1:0") and serves until Close.
//
// Deprecated: use Listen, which adds transport security and context
// control. This wrapper delegates to Listen(context.Background(), ...).
func NewTCPHub(addr string) (*TCPHub, error) {
	return Listen(context.Background(), ListenConfig{Addr: addr}) //ufc:ctx deprecated shim: the caller chose the pre-context API and owns the root
}

// NewTCPHubOpts is NewTCPHub with explicit options.
//
// Deprecated: use Listen, which adds transport security and context
// control. This wrapper delegates to Listen(context.Background(), ...).
func NewTCPHubOpts(addr string, opts HubOptions) (*TCPHub, error) {
	//ufc:ctx deprecated shim: the caller chose the pre-context API and owns the root
	return Listen(context.Background(), ListenConfig{
		Addr:        addr,
		IdleTimeout: opts.IdleTimeout,
		RouteShards: opts.RouteShards,
		Parent:      opts.Parent,
		Region:      opts.Region,
		Decider:     opts.Decider,
		Tracer:      opts.Tracer,
	})
}

// initShards sizes the routing table; count must be a power of two.
func (h *TCPHub) initShards(count int) {
	h.shards = make([]routeShard, count)
	h.shardMask = uint32(count - 1)
	h.shardShift = uint(bits.TrailingZeros32(uint32(count)))
}

// dialParent connects a sub-hub to its parent — through TLS and the
// wire handshake as sec configures — and starts the downward read loop.
// The first record up the link is the hub handshake; the writer wraps
// subsequent batches in batch records.
func (h *TCPHub) dialParent(ctx context.Context, addr string, region int, sec *SecurityConfig) error {
	conn, _, err := dialSecure(ctx, addr, sec)
	if err != nil {
		return fmt.Errorf("distsim: sub-hub dial parent: %w", err)
	}
	pl := &parentLink{conn: conn}
	pl.cw = newConnWriterWrap(conn, 1024, &h.counters, true, nil)
	fb := getFrame()
	fb.b = appendHubHello(fb.b, region)
	if err := pl.cw.enqueue(fb); err != nil {
		putFrame(fb)
		//ufc:ctx teardown of a writer that never started; the wait cannot block on in-flight work
		pl.cw.close(err)
		return fmt.Errorf("distsim: sub-hub handshake: %w", err)
	}
	h.parent = pl
	h.wg.Add(1)
	go h.parentReadLoop()
	return nil
}

// parentReadLoop receives downward records from the parent hub —
// individually or wrapped in batch records — and routes them to local
// connections. Records the parent sent here that have no local route yet
// park in the pending queues (never bounce back up).
func (h *TCPHub) parentReadLoop() {
	defer h.wg.Done()
	br := bufio.NewReaderSize(h.parent.conn, 64<<10)
	var scratch []byte
	for {
		body, wire, err := readRecord(br, &scratch)
		if err != nil {
			h.parent.cw.fail(err)
			return
		}
		h.counters.noteRecv(wire)
		if _, pong := parseHeartbeat(body); pong {
			continue
		}
		if peekBatch(body) {
			rest, err := parseBatch(body)
			if err != nil {
				h.parent.cw.fail(err)
				return
			}
			for len(rest) > 0 {
				var sub []byte
				sub, rest, err = splitBatchRecord(rest)
				if err != nil {
					h.parent.cw.fail(err)
					return
				}
				h.acceptFromParent(sub)
			}
			continue
		}
		h.acceptFromParent(body)
	}
}

// acceptFromParent re-frames one downward record and routes it locally.
func (h *TCPHub) acceptFromParent(body []byte) {
	fb := getFrame()
	fb.b = binary.AppendUvarint(fb.b, uint64(len(body)))
	fb.b = append(fb.b, body...)
	h.route(fb, true)
}

// Addr returns the hub's listen address.
func (h *TCPHub) Addr() string { return h.ln.Addr().String() }

// Stats returns a snapshot of the hub's forwarding counters.
func (h *TCPHub) Stats() TransportStats { return h.counters.snapshot() }

// RegisterMetrics attaches the hub's transport counters and its
// per-shard routing counters to reg, tagging every series with the given
// labels (per-shard series additionally carry shard="<id>"). Call before
// serving traffic matters little — registration only publishes the
// already-live counters; the hot paths never touch the registry.
func (h *TCPHub) RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	h.counters.register(reg, labels...)
	for s := range h.shards {
		sl := append(append([]telemetry.Label{}, labels...), telemetry.L("shard", strconv.Itoa(s)))
		st := &h.shards[s].stats
		reg.RegisterCounter("ufc_hub_shard_msgs_total", "records routed per hub shard", &st.msgs, sl...)
		reg.RegisterCounter("ufc_hub_shard_bytes_total", "wire bytes routed per hub shard", &st.bytes, sl...)
		reg.RegisterCounter("ufc_hub_shard_requeues_total", "records requeued after a failed delivery", &st.requeues, sl...)
		reg.RegisterCounter("ufc_hub_shard_pending_total", "records parked for unregistered destinations", &st.pending, sl...)
	}
}

// Close stops the hub and disconnects all nodes.
func (h *TCPHub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	type pair struct {
		c  net.Conn
		hc *hubConn
	}
	conns := make([]pair, 0, len(h.conns))
	//ufc:nondet teardown order of connections carries no numeric state
	for c, hc := range h.conns {
		conns = append(conns, pair{c, hc})
	}
	h.mu.Unlock()
	err := h.ln.Close()
	if h.parent != nil {
		// Flush records still queued upward (a remote coordinator may be
		// waiting on this region's reports), then drop the link so the
		// parent read loop exits.
		h.parent.cw.shutdown()
	}
	for _, p := range conns {
		if p.hc != nil {
			p.hc.cw.fail(ErrClosed)
		} else {
			_ = p.c.Close() //ufc:discard hub is shutting down; the listener error is already captured
		}
	}
	h.wg.Wait()
	for _, p := range conns {
		if p.hc != nil {
			p.hc.cw.close(ErrClosed)
		}
	}
	return err
}

func (h *TCPHub) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return
		}
		h.wg.Add(1)
		go h.serveConn(conn)
	}
}

func (h *TCPHub) serveConn(conn net.Conn) {
	defer h.wg.Done()
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		_ = conn.Close() //ufc:discard racing connection against shutdown; nothing was sent yet
		return
	}
	h.conns[conn] = nil
	h.mu.Unlock()

	br := bufio.NewReaderSize(conn, 64<<10)
	// Wire handshake first: version negotiation and token auth (see
	// handshake.go). A legacy v1 stream passes through untouched when the
	// listener accepts v1; refused peers get an ack carrying the reason
	// and are torn down here. With a TLS listener the first read below
	// also drives the TLS handshake, under the same deadline.
	if _, err := serverHandshake(conn, br, &h.cfg.Security, &h.counters.hsRefused); err == nil {
		var scratch []byte
		// Registration: the first record must register the peer — a hello
		// with routes from a node, or a hub hello from a child sub-hub
		// (which registers incrementally as its own nodes arrive).
		body, wire, err := readRecord(br, &scratch)
		if err == nil {
			if peekHubHello(body) {
				if _, herr := parseHubHello(body); herr == nil {
					h.counters.noteRecv(wire)
					h.serveRegistered(conn, br, &scratch, nil, true)
				}
			} else {
				var ids []string
				if ids, err = parseHello(body); err == nil {
					h.counters.noteRecv(wire)
					h.serveRegistered(conn, br, &scratch, ids, false)
				}
			}
		}
	}
	_ = conn.Close() //ufc:discard read loop already ended with its own error
	h.mu.Lock()
	delete(h.conns, conn)
	h.mu.Unlock()
}

// serveRegistered runs the post-handshake forwarding loop for one peer —
// a node, or (hubPeer) a child sub-hub. Child hubs register routes
// incrementally with hello records as their own nodes connect, and their
// downward writer wraps batches in batch records.
func (h *TCPHub) serveRegistered(conn net.Conn, br *bufio.Reader, scratch *[]byte, ids []string, hubPeer bool) {
	hc := &hubConn{}
	hc.cw = newConnWriterWrap(conn, 1024, &h.counters, hubPeer, func(unsent []*frameBuf) {
		h.dropConn(hc)
		for _, fb := range unsent {
			h.requeueRecord(fb)
		}
	})
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		hc.cw.close(ErrClosed)
		return
	}
	h.conns[conn] = hc
	h.mu.Unlock()
	if len(ids) > 0 {
		h.register(hc, ids)
	}

	for {
		if h.cfg.IdleTimeout > 0 {
			// Liveness: a node that stops producing records — including
			// heartbeat pings — past the idle window is dead; the failed
			// read below drops its routes.
			_ = conn.SetReadDeadline(time.Now().Add(h.cfg.IdleTimeout)) //ufc:discard a failed deadline set surfaces as the next read's error
		}
		body, wire, err := readRecord(br, scratch)
		if err != nil {
			// Node gone (EOF) or stream corrupt: drop its routes so new
			// traffic queues as pending, then shut the write half down
			// (the writer's failure hook requeues anything undrained).
			h.dropConn(hc)
			hc.cw.fail(err)
			return
		}
		h.counters.noteRecv(wire)
		if ping, _ := parseHeartbeat(body); ping {
			h.counters.pingsRecv.Inc()
			pfb := getFrame()
			pfb.b = appendPong(pfb.b)
			if err := hc.cw.enqueue(pfb); err != nil {
				putFrame(pfb)
				// Writer already failed; the next read will surface it.
				continue
			}
			h.counters.pingsSent.Inc()
			continue
		}
		if d := h.cfg.Decider; d != nil {
			if peekLookup(body) {
				if err := h.answerLookup(hc, body, d); err != nil {
					h.dropConn(hc)
					hc.cw.fail(err)
					return
				}
				continue
			}
			if isStats, isReq := peekCPStats(body); isStats && isReq {
				h.answerStats(hc, d)
				continue
			}
		}
		if peekBatch(body) {
			rest, err := parseBatch(body)
			if err != nil {
				h.dropConn(hc)
				hc.cw.fail(err)
				return
			}
			for len(rest) > 0 {
				var sub []byte
				sub, rest, err = splitBatchRecord(rest)
				if err != nil {
					h.dropConn(hc)
					hc.cw.fail(err)
					return
				}
				h.acceptRecord(hc, sub)
			}
			continue
		}
		h.acceptRecord(hc, body)
	}
}

// acceptRecord dispatches one inbound record body from hc: incremental
// hellos (a child hub relaying its nodes' registrations) extend hc's
// routes; everything else is re-framed and routed.
func (h *TCPHub) acceptRecord(hc *hubConn, body []byte) {
	if len(body) > 0 && body[0] == frameKindHello {
		if ids, err := parseHello(body); err == nil {
			h.register(hc, ids)
		}
		return
	}
	fb := getFrame()
	fb.b = binary.AppendUvarint(fb.b, uint64(len(body)))
	fb.b = append(fb.b, body...)
	h.route(fb, false)
}

func (h *TCPHub) shardOf(idx uint32) (*routeShard, int) {
	return &h.shards[idx&h.shardMask], int(idx >> h.shardShift)
}

func (h *TCPHub) namedShard(name []byte) *routeShard {
	f := fnv.New32a()
	_, _ = f.Write(name) //ufc:discard fnv's Write is documented to never fail
	return &h.shards[f.Sum32()&h.shardMask]
}

// register installs hc as the route for ids and drains any pending
// records queued for them. On a sub-hub the registration also propagates
// up the parent link, so the parent starts routing those ids down here.
func (h *TCPHub) register(hc *hubConn, ids []string) {
	for _, id := range ids {
		var backlog [][]byte
		if idx, ok := agentIndex(id); ok {
			hc.idxs = append(hc.idxs, idx)
			sh, slot := h.shardOf(idx)
			sh.mu.Lock()
			for slot >= len(sh.slots) {
				sh.slots = append(sh.slots, nil)
			}
			sh.slots[slot] = hc
			if sh.pending != nil {
				backlog = sh.pending[idx]
				delete(sh.pending, idx)
			}
			sh.mu.Unlock()
		} else {
			hc.names = append(hc.names, id)
			sh := h.namedShard([]byte(id))
			sh.mu.Lock()
			if sh.named == nil {
				sh.named = make(map[string]*hubConn)
			}
			sh.named[id] = hc
			if sh.namedPending != nil {
				backlog = sh.namedPending[id]
				delete(sh.namedPending, id)
			}
			sh.mu.Unlock()
		}
		// Drained backlog re-routes as if freshly accepted here: should the
		// route vanish again it parks locally rather than bouncing upward.
		for _, rec := range backlog {
			fb := getFrame()
			fb.b = append(fb.b, rec...)
			h.route(fb, true)
		}
	}
	if p := h.parent; p != nil {
		fb := getFrame()
		fb.b = appendHello(fb.b, ids)
		if err := p.cw.enqueue(fb); err != nil {
			putFrame(fb)
		}
	}
}

// dropConn removes every route pointing at hc. Idempotent; safe to call
// from both the read loop and the writer failure hook.
func (h *TCPHub) dropConn(hc *hubConn) {
	for _, idx := range hc.idxs {
		sh, slot := h.shardOf(idx)
		sh.mu.Lock()
		if slot < len(sh.slots) && sh.slots[slot] == hc {
			sh.slots[slot] = nil
		}
		sh.mu.Unlock()
	}
	for _, name := range hc.names {
		sh := h.namedShard([]byte(name))
		sh.mu.Lock()
		if sh.named[name] == hc {
			delete(sh.named, name)
		}
		sh.mu.Unlock()
	}
}

// route forwards one record (ownership of fb transfers in). On a sub-hub
// a record without a local route travels up the parent link — unless it
// arrived from the parent (fromParent), in which case it parks in the
// destination's pending queue so a tree can never bounce a record in a
// loop. On a root hub unroutable records always park; a failed enqueue
// drops the broken connection and requeues the record.
//
//ufc:hotpath
func (h *TCPHub) route(fb *frameBuf, fromParent bool) {
	_, body := splitRecord(fb.b)
	hello, named, toIdx, to, err := peekRoute(body)
	if err != nil || hello {
		putFrame(fb) // malformed or misplaced hello: drop
		return
	}
	var target *hubConn
	var sh *routeShard
	if named {
		sh = h.namedShard(to)
		sh.mu.RLock()
		target = sh.named[string(to)]
		sh.mu.RUnlock()
	} else {
		var slot int
		sh, slot = h.shardOf(toIdx)
		sh.mu.RLock()
		if slot < len(sh.slots) {
			target = sh.slots[slot]
		}
		sh.mu.RUnlock()
	}
	var trace tracing.Context
	var traced bool
	if h.tracer != nil {
		trace, traced = peekTraceSuffix(body)
	}
	if target == nil {
		if p := h.parent; p != nil && !fromParent {
			sh.stats.msgs.Inc()
			sh.stats.bytes.Add(uint64(len(fb.b)))
			if traced {
				h.tracer.Event(trace, "hub.up", tracing.I64("to", int64(toIdx)), tracing.Attr{})
			}
			if err := p.cw.enqueue(fb); err != nil {
				//ufc:alloc park path: an unroutable record is copied to the heap by design (broken parent link)
				h.addPending(named, toIdx, to, fb.b)
				putFrame(fb)
			}
			return
		}
		if traced {
			h.tracer.Event(trace, "hub.park", tracing.I64("to", int64(toIdx)), tracing.Attr{})
		}
		//ufc:alloc park path: no route for the record yet, the pending queue owns a heap copy by design
		h.addPending(named, toIdx, to, fb.b)
		putFrame(fb)
		return
	}
	sh.stats.msgs.Inc()
	sh.stats.bytes.Add(uint64(len(fb.b)))
	if traced {
		h.tracer.Event(trace, "hub.forward", tracing.I64("to", int64(toIdx)), tracing.Attr{})
	}
	if err := target.cw.enqueue(fb); err != nil {
		h.dropConn(target)
		h.requeueRecord(fb)
	}
}

// requeueRecord puts an undeliverable record back on the pending queue of
// its destination (taking a heap copy) and recycles the buffer.
func (h *TCPHub) requeueRecord(fb *frameBuf) {
	_, body := splitRecord(fb.b)
	hello, named, toIdx, to, err := peekRoute(body)
	if err == nil && !hello {
		h.shardFor(named, toIdx, to).stats.requeues.Inc()
		if h.tracer != nil {
			if trace, traced := peekTraceSuffix(body); traced {
				h.tracer.Event(trace, "hub.requeue", tracing.I64("to", int64(toIdx)), tracing.Attr{})
			}
		}
		h.addPending(named, toIdx, to, fb.b)
	}
	putFrame(fb)
}

// shardFor resolves the routing shard of a destination.
func (h *TCPHub) shardFor(named bool, toIdx uint32, to []byte) *routeShard {
	if named {
		return h.namedShard(to)
	}
	sh, _ := h.shardOf(toIdx)
	return sh
}

func (h *TCPHub) addPending(named bool, toIdx uint32, to []byte, rec []byte) {
	cp := append([]byte(nil), rec...)
	if named {
		sh := h.namedShard(to)
		sh.mu.Lock()
		if sh.namedPending == nil {
			sh.namedPending = make(map[string][][]byte)
		}
		sh.namedPending[string(to)] = append(sh.namedPending[string(to)], cp)
		sh.mu.Unlock()
		sh.stats.pending.Inc()
		return
	}
	sh, _ := h.shardOf(toIdx)
	sh.mu.Lock()
	if sh.pending == nil {
		sh.pending = make(map[uint32][][]byte)
	}
	sh.pending[toIdx] = append(sh.pending[toIdx], cp)
	sh.mu.Unlock()
	sh.stats.pending.Inc()
}

// splitRecord separates a record's uvarint length prefix from its body.
func splitRecord(rec []byte) (prefix, body []byte) {
	_, n := binary.Uvarint(rec)
	if n <= 0 || n > len(rec) {
		return rec, nil
	}
	return rec[:n], rec[n:]
}

// TCPNode is a Transport whose local agents exchange messages with remote
// agents through a TCPHub over the binary wire codec. One node can host
// any subset of the agent ids; a single-node deployment still pushes
// every message through the TCP stack and the codec. Sends are buffered
// and coalesced (see connWriter) and allocate nothing in steady state.
type TCPNode struct {
	conn        net.Conn
	cw          *connWriter
	opts        NodeOptions
	counters    transportCounters
	cache       idCache
	wireVersion int

	// Inbox tables are built at construction and never mutated, so the
	// read loop and Inbox need no lock to consult them.
	boxIdx  []chan Message
	boxName map[string]chan Message

	haltOnce sync.Once
	done     chan struct{}

	boxMu       sync.Mutex
	boxesClosed bool
}

var _ Transport = (*TCPNode)(nil)

// NodeOptions configures a TCPNode beyond its hosted ids.
type NodeOptions struct {
	// Buffer is the per-agent inbox capacity (default 64).
	Buffer int
	// HeartbeatInterval, when positive, makes the node ping the hub at
	// this period and enforce link liveness: a read silence longer than
	// HeartbeatInterval × HeartbeatMiss tears the transport down (sends
	// start failing, inboxes close) instead of hanging forever.
	HeartbeatInterval time.Duration
	// HeartbeatMiss is the number of missed heartbeat windows tolerated
	// before the link is declared dead (default 3).
	HeartbeatMiss int
	// Tracer, when non-nil, records send/recv events for traced messages
	// into this flight recorder. Untraced messages cost one branch.
	Tracer *tracing.Recorder
}

// NewTCPNode connects to the hub and registers the local agent ids.
//
// Deprecated: use Dial, which adds transport security and context
// control. This wrapper delegates to Dial(context.Background(), ...).
func NewTCPNode(hubAddr string, localIDs []string, buffer int) (*TCPNode, error) {
	return NewTCPNodeOpts(hubAddr, localIDs, NodeOptions{Buffer: buffer})
}

// NewTCPNodeOpts is NewTCPNode with heartbeat/liveness options.
//
// Deprecated: use Dial, which adds transport security and context
// control. This wrapper delegates to Dial(context.Background(), ...).
func NewTCPNodeOpts(hubAddr string, localIDs []string, opts NodeOptions) (*TCPNode, error) {
	//ufc:ctx deprecated shim: the caller chose the pre-context API and owns the root
	ep, err := Dial(context.Background(), DialConfig{
		Addr:              hubAddr,
		AgentIDs:          localIDs,
		Buffer:            opts.Buffer,
		HeartbeatInterval: opts.HeartbeatInterval,
		HeartbeatMiss:     opts.HeartbeatMiss,
		Tracer:            opts.Tracer,
	})
	if err != nil {
		return nil, err
	}
	return ep.(*TCPNode), nil
}

// newTCPNode builds a node on an established (already secured and
// version-negotiated) connection: inbox tables, coalescing writer, the
// registering hello, and the read/heartbeat loops.
func newTCPNode(conn net.Conn, wireVersion int, cfg *DialConfig) (*TCPNode, error) {
	opts := NodeOptions{
		Buffer:            cfg.Buffer,
		HeartbeatInterval: cfg.HeartbeatInterval,
		HeartbeatMiss:     cfg.HeartbeatMiss,
		Tracer:            cfg.Tracer,
	}
	if opts.Buffer <= 0 {
		opts.Buffer = 64
	}
	if opts.HeartbeatMiss <= 0 {
		opts.HeartbeatMiss = 3
	}
	localIDs := cfg.AgentIDs
	n := &TCPNode{
		conn:        conn,
		opts:        opts,
		wireVersion: wireVersion,
		boxName:     make(map[string]chan Message),
		done:        make(chan struct{}),
	}
	for _, id := range localIDs {
		box := make(chan Message, opts.Buffer)
		if idx, ok := agentIndex(id); ok {
			for int(idx) >= len(n.boxIdx) {
				n.boxIdx = append(n.boxIdx, nil)
			}
			n.boxIdx[idx] = box
		} else {
			n.boxName[id] = box
		}
	}
	n.cw = newConnWriter(conn, 256, &n.counters, nil)
	fb := getFrame()
	fb.b = appendHello(fb.b, localIDs)
	if err := n.cw.enqueue(fb); err != nil {
		putFrame(fb)
		n.cw.close(err)
		return nil, fmt.Errorf("distsim: node hello: %w", err)
	}
	go n.readLoop()
	if opts.HeartbeatInterval > 0 {
		go n.heartbeatLoop()
	}
	return n, nil
}

// heartbeatLoop pings the hub every HeartbeatInterval until the node
// shuts down or the writer fails.
func (n *TCPNode) heartbeatLoop() {
	tick := time.NewTicker(n.opts.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			fb := getFrame()
			fb.b = appendPing(fb.b)
			if err := n.cw.enqueue(fb); err != nil {
				putFrame(fb)
				return
			}
			n.counters.pingsSent.Inc()
		case <-n.done:
			return
		}
	}
}

// Stats returns a snapshot of the node's transport counters.
func (n *TCPNode) Stats() TransportStats { return n.counters.snapshot() }

// WireVersion reports the protocol version negotiated at dial time.
func (n *TCPNode) WireVersion() int { return n.wireVersion }

func (n *TCPNode) sealedEndpoint() {}

// RegisterMetrics attaches the node's transport counters to reg under the
// ufc_transport_* names. When hub and node share one registry, pass
// distinguishing labels (e.g. component="node").
func (n *TCPNode) RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	n.counters.register(reg, labels...)
}

// halt shuts the write half down and unblocks send/deliver paths; the
// read loop notices the closed connection and closes the inboxes.
func (n *TCPNode) halt(cause error) {
	n.haltOnce.Do(func() {
		n.cw.fail(cause)
		close(n.done)
	})
}

func (n *TCPNode) readLoop() {
	defer n.closeBoxes()
	br := bufio.NewReaderSize(n.conn, 64<<10)
	var scratch []byte
	for {
		if n.opts.HeartbeatInterval > 0 {
			// Liveness: the hub answers every ping, so a silent link for
			// HeartbeatMiss windows means the hub (or the path) is gone;
			// the expired deadline fails the read and tears the node down.
			window := n.opts.HeartbeatInterval * time.Duration(n.opts.HeartbeatMiss)
			_ = n.conn.SetReadDeadline(time.Now().Add(window)) //ufc:discard a failed deadline set surfaces as the next read's error
		}
		body, wire, err := readRecord(br, &scratch)
		if err != nil {
			n.halt(err)
			return
		}
		n.counters.noteRecv(wire)
		if _, pong := parseHeartbeat(body); pong {
			n.counters.pingsRecv.Inc()
			continue
		}
		fr, err := decodeMessageFrame(body, &n.cache)
		if err != nil {
			n.halt(err)
			return
		}
		if n.opts.Tracer != nil && fr.msg.Trace.Valid() {
			n.opts.Tracer.Event(fr.msg.Trace, "node.recv", tracing.I64("kind", int64(fr.msg.Kind)), tracing.I64("iter", int64(fr.msg.Iter)))
		}
		var box chan Message
		if fr.named {
			box = n.boxName[fr.to]
		} else if int(fr.toIdx) < len(n.boxIdx) {
			box = n.boxIdx[fr.toIdx]
		}
		if box == nil {
			continue // not hosted here; a stale hub route — drop
		}
		select {
		case box <- fr.msg:
		case <-n.done:
			return
		}
	}
}

// closeBoxes closes every inbox exactly once. Only the read loop sends on
// the boxes, and it calls this on exit, so the close cannot race a send.
func (n *TCPNode) closeBoxes() {
	n.boxMu.Lock()
	defer n.boxMu.Unlock()
	if n.boxesClosed {
		return
	}
	n.boxesClosed = true
	for _, box := range n.boxIdx {
		if box != nil {
			close(box)
		}
	}
	//ufc:nondet close order of receive boxes is observationally irrelevant
	for _, box := range n.boxName {
		close(box)
	}
}

// Send implements Transport. Local destinations still round-trip through
// the hub, exercising the full network path. After Close (or a broken
// connection) it consistently returns an error matching ErrClosed.
//
//ufc:hotpath
func (n *TCPNode) Send(to string, m Message) error {
	if n.opts.Tracer != nil && m.Trace.Valid() {
		n.opts.Tracer.Event(m.Trace, "node.send", tracing.I64("kind", int64(m.Kind)), tracing.I64("iter", int64(m.Iter)))
	}
	fb := getFrame()
	fb.b = appendFrame(fb.b, to, &m)
	if err := n.cw.enqueue(fb); err != nil {
		putFrame(fb)
		return fmt.Errorf("distsim: node send to %q: %w", to, err)
	}
	return nil
}

// Inbox implements Transport.
func (n *TCPNode) Inbox(id string) (<-chan Message, error) {
	if idx, ok := agentIndex(id); ok {
		if int(idx) < len(n.boxIdx) && n.boxIdx[idx] != nil {
			return n.boxIdx[idx], nil
		}
		return nil, fmt.Errorf("inbox of %q: %w", id, ErrUnknownAgent)
	}
	if box, ok := n.boxName[id]; ok {
		return box, nil
	}
	return nil, fmt.Errorf("inbox of %q: %w", id, ErrUnknownAgent)
}

// Close implements Transport. It first flushes records still queued in
// the coalescing writer (a remote coordinator may be waiting on this
// node's final reports), then tears the connection down.
func (n *TCPNode) Close() error {
	n.cw.shutdown()
	n.halt(ErrClosed)
	return nil
}
