package distsim

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// envelope is the wire frame between nodes and the hub.
type envelope struct {
	To string
	M  Message
}

// hello registers a node's local agent ids with the hub.
type hello struct {
	IDs []string
}

// TCPHub is a message router: nodes connect over TCP, register the agent
// ids they host, and exchange gob-encoded envelopes which the hub forwards
// to the node hosting the destination agent. Messages for ids that have
// not registered yet are queued and flushed on registration.
type TCPHub struct {
	ln net.Listener

	mu      sync.Mutex
	routes  map[string]*hubConn
	pending map[string][]envelope
	closed  bool
	wg      sync.WaitGroup
}

type hubConn struct {
	mu  sync.Mutex
	enc *gob.Encoder
	c   net.Conn
}

func (hc *hubConn) send(env envelope) error {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	return hc.enc.Encode(env)
}

// NewTCPHub listens on addr (e.g. "127.0.0.1:0") and serves until Close.
func NewTCPHub(addr string) (*TCPHub, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("distsim: hub listen: %w", err)
	}
	h := &TCPHub{
		ln:      ln,
		routes:  make(map[string]*hubConn),
		pending: make(map[string][]envelope),
	}
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// Addr returns the hub's listen address.
func (h *TCPHub) Addr() string { return h.ln.Addr().String() }

// Close stops the hub and disconnects all nodes.
func (h *TCPHub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	conns := make([]*hubConn, 0, len(h.routes))
	seen := map[*hubConn]bool{}
	for _, hc := range h.routes {
		if !seen[hc] {
			conns = append(conns, hc)
			seen[hc] = true
		}
	}
	h.mu.Unlock()
	err := h.ln.Close()
	for _, hc := range conns {
		_ = hc.c.Close()
	}
	h.wg.Wait()
	return err
}

func (h *TCPHub) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return
		}
		h.wg.Add(1)
		go h.serveConn(conn)
	}
}

func (h *TCPHub) serveConn(conn net.Conn) {
	defer h.wg.Done()
	dec := gob.NewDecoder(conn)
	hc := &hubConn{enc: gob.NewEncoder(conn), c: conn}
	var hi hello
	if err := dec.Decode(&hi); err != nil {
		_ = conn.Close()
		return
	}
	h.mu.Lock()
	var backlog []envelope
	for _, id := range hi.IDs {
		h.routes[id] = hc
		backlog = append(backlog, h.pending[id]...)
		delete(h.pending, id)
	}
	h.mu.Unlock()
	for _, env := range backlog {
		if err := hc.send(env); err != nil {
			_ = conn.Close()
			return
		}
	}
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				_ = conn.Close()
			}
			return
		}
		h.route(env)
	}
}

func (h *TCPHub) route(env envelope) {
	h.mu.Lock()
	target, ok := h.routes[env.To]
	if !ok {
		h.pending[env.To] = append(h.pending[env.To], env)
		h.mu.Unlock()
		return
	}
	h.mu.Unlock()
	_ = target.send(env)
}

// TCPNode is a Transport whose local agents exchange messages with remote
// agents through a TCPHub. One node can host any subset of the agent ids;
// a single-node deployment still pushes every message through the TCP
// stack and the gob codec.
type TCPNode struct {
	conn net.Conn

	encMu sync.Mutex
	enc   *gob.Encoder

	mu     sync.Mutex
	boxes  map[string]chan Message
	closed bool
	done   chan struct{}
}

var _ Transport = (*TCPNode)(nil)

// NewTCPNode connects to the hub and registers the local agent ids.
func NewTCPNode(hubAddr string, localIDs []string, buffer int) (*TCPNode, error) {
	if buffer <= 0 {
		buffer = 64
	}
	conn, err := net.Dial("tcp", hubAddr)
	if err != nil {
		return nil, fmt.Errorf("distsim: node dial: %w", err)
	}
	n := &TCPNode{
		conn:  conn,
		enc:   gob.NewEncoder(conn),
		boxes: make(map[string]chan Message, len(localIDs)),
		done:  make(chan struct{}),
	}
	for _, id := range localIDs {
		n.boxes[id] = make(chan Message, buffer)
	}
	if err := n.enc.Encode(hello{IDs: localIDs}); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("distsim: node hello: %w", err)
	}
	go n.readLoop()
	return n, nil
}

func (n *TCPNode) readLoop() {
	dec := gob.NewDecoder(n.conn)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			n.mu.Lock()
			if !n.closed {
				n.closed = true
				close(n.done)
				for _, box := range n.boxes {
					close(box)
				}
			}
			n.mu.Unlock()
			return
		}
		n.mu.Lock()
		box, ok := n.boxes[env.To]
		closed := n.closed
		n.mu.Unlock()
		if closed {
			return
		}
		if ok {
			select {
			case box <- env.M:
			case <-n.done:
				return
			}
		}
	}
}

// Send implements Transport. Local destinations still round-trip through
// the hub, exercising the full network path.
func (n *TCPNode) Send(to string, m Message) error {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return ErrClosed
	}
	n.encMu.Lock()
	defer n.encMu.Unlock()
	if err := n.enc.Encode(envelope{To: to, M: m}); err != nil {
		return fmt.Errorf("distsim: node send to %q: %w", to, err)
	}
	return nil
}

// Inbox implements Transport.
func (n *TCPNode) Inbox(id string) (<-chan Message, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	box, ok := n.boxes[id]
	if !ok {
		return nil, fmt.Errorf("inbox of %q: %w", id, ErrUnknownAgent)
	}
	return box, nil
}

// Close implements Transport.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.mu.Unlock()
	err := n.conn.Close() // readLoop notices and closes the boxes
	return err
}
