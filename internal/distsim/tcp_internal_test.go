package distsim

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// collectConn is a net.Conn stub whose write half can be failed on
// demand, for driving connWriter error paths deterministically.
type collectConn struct {
	mu     sync.Mutex
	wrote  []byte
	failAt int // fail writes once len(wrote) would exceed this; <0 = never
	closed bool
}

var errInjected = errors.New("injected write failure")

func (c *collectConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, net.ErrClosed
	}
	if c.failAt >= 0 && len(c.wrote)+len(p) > c.failAt {
		return 0, errInjected
	}
	c.wrote = append(c.wrote, p...)
	return len(p), nil
}

func (c *collectConn) Read(p []byte) (int, error) { return 0, io.EOF }
func (c *collectConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}
func (c *collectConn) LocalAddr() net.Addr              { return nil }
func (c *collectConn) RemoteAddr() net.Addr             { return nil }
func (c *collectConn) SetDeadline(time.Time) error      { return nil }
func (c *collectConn) SetReadDeadline(time.Time) error  { return nil }
func (c *collectConn) SetWriteDeadline(time.Time) error { return nil }

func frameFor(to string, m Message) *frameBuf {
	fb := getFrame()
	fb.b = appendFrame(fb.b, to, &m)
	return fb
}

// TestConnWriterCoalesces checks that a burst of enqueued records reaches
// the socket and is accounted as batched flushes.
func TestConnWriterCoalesces(t *testing.T) {
	conn := &collectConn{failAt: -1}
	var counters transportCounters
	cw := newConnWriter(conn, 64, &counters, nil)
	const burst = 50
	var want int
	for k := 0; k < burst; k++ {
		fb := frameFor("fe-0", Message{Kind: KindAux, Iter: k, From: "dc-0", Payload: []float64{float64(k)}})
		want += len(fb.b)
		if err := cw.enqueue(fb); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := counters.snapshot()
		if st.MessagesSent == burst {
			if int(st.BytesSent) != want {
				t.Fatalf("bytes sent %d want %d", st.BytesSent, want)
			}
			if st.Flushes == 0 || st.Flushes > burst {
				t.Fatalf("flushes %d outside (0, %d]", st.Flushes, burst)
			}
			if st.MaxBatch == 0 {
				t.Fatal("max batch not recorded")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("writer drained %d of %d messages", st.MessagesSent, burst)
		}
		time.Sleep(time.Millisecond)
	}
	cw.close(ErrClosed)
	if err := cw.enqueue(frameFor("fe-0", Message{Kind: KindAux, From: "dc-0"})); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close: %v", err)
	}
}

// TestConnWriterFailureHandsBackUnsent verifies the onFail hook receives
// records that were enqueued but never written — the mechanism the hub
// uses to requeue messages for a reconnecting node.
func TestConnWriterFailureHandsBackUnsent(t *testing.T) {
	conn := &collectConn{failAt: 0} // every write fails
	var counters transportCounters
	got := make(chan []*frameBuf, 1)
	cw := newConnWriter(conn, 64, &counters, func(unsent []*frameBuf) {
		got <- unsent
	})
	fb := frameFor("dc-3", Message{Kind: KindRouting, Iter: 7, From: "fe-1", Payload: []float64{1, 2, 3}})
	wantBytes := append([]byte(nil), fb.b...)
	if err := cw.enqueue(fb); err != nil {
		t.Fatal(err)
	}
	select {
	case unsent := <-got:
		if len(unsent) != 1 {
			t.Fatalf("got %d unsent records, want 1", len(unsent))
		}
		if string(unsent[0].b) != string(wantBytes) {
			t.Fatal("unsent record bytes mangled")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("onFail never called")
	}
	// The writer is dead: enqueue reports an ErrClosed-matching error
	// that preserves the cause.
	err := cw.enqueue(frameFor("dc-3", Message{Kind: KindAux, From: "fe-1"}))
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after failure: %v", err)
	}
}

// TestHubRequeuesOnDeadRoute exercises TCPHub.route's failure path
// directly: a registered route whose writer is already dead must not
// swallow the record — it is requeued as pending and drained when a
// fresh connection registers the destination.
func TestHubRequeuesOnDeadRoute(t *testing.T) {
	h := &TCPHub{conns: make(map[net.Conn]*hubConn)}
	h.initShards(defaultRouteShards)

	// A dead connection registered for dc-0.
	deadConn := &collectConn{failAt: -1}
	dead := &hubConn{}
	dead.cw = newConnWriter(deadConn, 4, &h.counters, func(unsent []*frameBuf) {
		h.dropConn(dead)
		for _, fb := range unsent {
			h.requeueRecord(fb)
		}
	})
	h.register(dead, []string{"dc-0"})
	dead.cw.close(net.ErrClosed) // writer gone; route entry still present

	msg := Message{Kind: KindRouting, Iter: 3, From: "fe-0", Payload: []float64{0, 1.5, 2.5}}
	h.route(frameFor("dc-0", msg), false)

	idx, ok := agentIndex("dc-0")
	if !ok {
		t.Fatal("dc-0 not standard")
	}
	sh, _ := h.shardOf(idx)
	sh.mu.RLock()
	pending := len(sh.pending[idx])
	sh.mu.RUnlock()
	if pending != 1 {
		t.Fatalf("pending records for dc-0: %d, want 1", pending)
	}

	// A replacement connection registers dc-0: the pending record drains.
	liveConn := &collectConn{failAt: -1}
	live := &hubConn{}
	live.cw = newConnWriter(liveConn, 4, &h.counters, nil)
	h.register(live, []string{"dc-0"})

	deadline := time.Now().Add(2 * time.Second)
	for {
		liveConn.mu.Lock()
		n := len(liveConn.wrote)
		liveConn.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("requeued record never delivered to replacement conn")
		}
		time.Sleep(time.Millisecond)
	}
	sh.mu.RLock()
	pending = len(sh.pending[idx])
	sh.mu.RUnlock()
	if pending != 0 {
		t.Fatalf("pending not drained: %d records left", pending)
	}
	live.cw.close(ErrClosed)
}
