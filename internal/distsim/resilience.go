package distsim

import (
	"errors"
	"time"

	"repro/internal/telemetry/tracing"
)

// Resilience errors.
var (
	// ErrStale is returned when a peer exceeds the bounded-staleness cap.
	ErrStale = errors.New("distsim: peer exceeded the staleness cap")
	// ErrCoordinatorLost is returned when an agent repeatedly misses the
	// coordinator's control broadcast.
	ErrCoordinatorLost = errors.New("distsim: lost contact with the coordinator")
	// ErrDeclaredDead is returned by an agent that finds itself on the
	// coordinator's dead list (it was too slow and the fleet moved on).
	ErrDeclaredDead = errors.New("distsim: agent declared dead by the coordinator")
)

// Resilience configures the protocol-hardening layer of a distributed
// run: per-message degrade deadlines, bounded retransmission with
// exponential backoff and deterministic jitter, duplicate suppression,
// bounded staleness and liveness-based degradation. A nil Resilience in
// RunOptions runs the legacy fail-fast protocol, bit-identical to the
// sequential engine; a non-nil (even zero-valued) Resilience enables
// hardening with the defaults below.
type Resilience struct {
	// RetryInterval is the first retransmission backoff (default 10ms).
	RetryInterval time.Duration
	// BackoffFactor multiplies the backoff per attempt (default 2).
	BackoffFactor float64
	// MaxRetries bounds retransmissions per blocked wait (default 5).
	MaxRetries int
	// MessageDeadline bounds each round-phase wait; a peer that stays
	// silent past it is degraded to its last iterate (default 2s).
	MessageDeadline time.Duration
	// JitterFrac spreads each backoff by ±JitterFrac deterministically
	// (default 0.1).
	JitterFrac float64
	// StalenessCap aborts an agent when one of its live peers has been
	// stale for this many consecutive rounds (default 25). It must
	// exceed DeadAfter so the coordinator declares death first.
	StalenessCap int
	// DeadAfter is the number of consecutive missed residual reports
	// after which the coordinator declares an agent dead and degrades
	// around it permanently (default 6).
	DeadAfter int
	// Seed drives the deterministic retransmission jitter.
	Seed int64

	// Tracer, when non-nil, records protocol breadcrumbs in the flight
	// ring: per-iteration front-end root spans (whose context rides the
	// routing and report records through the hub tree), retry events and
	// degrade events. Observability only — spans never alter the message
	// schedule or the floats.
	Tracer *tracing.Recorder
	// Flight, when non-nil, dumps the flight ring when a degrade deadline
	// expires — the moments worth a postmortem. Dumps are bounded (see
	// tracing.Flight).
	Flight *tracing.Flight

	// tf overrides the timer source; tests inject a fake clock.
	tf timerFactory
}

// The deadline ladder. Wall-clock degrade decisions are deterministic
// only if every wait outlasts the worst-case *legitimate* production
// time of what it waits for by a full MessageDeadline of margin — then
// scheduler jitter can never flip a live peer into a missed one, and
// only structural silence (crash, partition, death) degrades. Routing
// rows are produced instantly after a control, so datacenters wait one
// deadline for them; a datacenter may spend that whole deadline
// degrading a silent front-end before its ã goes out, so front-ends
// wait two for aux; a front-end may in turn spend two before its
// report goes out, so the coordinator gathers for three; and a control
// answer legitimately takes a full coordinator gather, so control (and
// final-ack) waits use the coordinator's factor per attempt.
const (
	auxDeadlineFactor = 2
	coordRoundFactor  = 3
)

func (r Resilience) withDefaults() Resilience {
	if r.RetryInterval <= 0 {
		r.RetryInterval = 10 * time.Millisecond
	}
	if r.BackoffFactor < 1 {
		r.BackoffFactor = 2
	}
	if r.MaxRetries <= 0 {
		r.MaxRetries = 5
	}
	if r.MessageDeadline <= 0 {
		r.MessageDeadline = 2 * time.Second
	}
	if r.JitterFrac <= 0 || r.JitterFrac >= 1 {
		r.JitterFrac = 0.1
	}
	if r.StalenessCap <= 0 {
		r.StalenessCap = 25
	}
	if r.DeadAfter <= 0 {
		r.DeadAfter = 6
	}
	if r.tf == nil {
		r.tf = realTimers{}
	}
	return r
}

// backoff returns the jittered delay before retransmission `attempt`
// (0-based) by agent self in round iter. The jitter is a pure hash of
// (Seed, self, iter, attempt), so a replayed run waits identically.
func (r Resilience) backoff(self string, iter, attempt int) time.Duration {
	d := float64(r.RetryInterval)
	for k := 0; k < attempt; k++ {
		d *= r.BackoffFactor
	}
	u := hash01(faultHash(r.Seed, 'j', self, self, 0, iter, attempt))
	d *= 1 + r.JitterFrac*(2*u-1)
	return time.Duration(d)
}

// timerFactory abstracts timer creation so retry/backoff behaviour is
// testable against a fake clock.
type timerFactory interface {
	newTimer(d time.Duration) waitTimer
}

// waitTimer is the minimal timer surface the wait loops need.
type waitTimer interface {
	C() <-chan time.Time
	Reset(d time.Duration)
	Stop()
}

type realTimers struct{}

func (realTimers) newTimer(d time.Duration) waitTimer {
	return &realTimer{t: time.NewTimer(d)}
}

type realTimer struct{ t *time.Timer }

func (rt *realTimer) C() <-chan time.Time { return rt.t.C }
func (rt *realTimer) Reset(d time.Duration) {
	if !rt.t.Stop() {
		select {
		case <-rt.t.C:
		default:
		}
	}
	rt.t.Reset(d)
}
func (rt *realTimer) Stop() { rt.t.Stop() }

// outRec is one recorded outbound message.
type outRec struct {
	to string
	m  Message
}

// Retrier records an agent's outbound messages for the current and
// previous round so they can be retransmitted — either proactively by a
// blocked sender or on solicitation, when a peer's duplicate signals that
// our response to it was lost. All methods run on the owning agent's
// goroutine; the type needs no locking.
type Retrier struct {
	t    Transport
	recs []outRec
}

// NewRetrier wraps t for the resilient protocol loops.
func NewRetrier(t Transport) *Retrier { return &Retrier{t: t} }

// Send transmits and records the message for later retransmission.
// Errors must be handled exactly like Transport.Send errors.
func (r *Retrier) Send(to string, m Message) error {
	r.recs = append(r.recs, outRec{to: to, m: m})
	return r.t.Send(to, m)
}

// Resend retransmits every recorded message to `to` of the given kind and
// iteration. A miss (already pruned or never sent) is a no-op: the round
// has moved on and the peer must catch up through the coordinator.
func (r *Retrier) Resend(to string, kind Kind, iter int) error {
	for k := range r.recs {
		rec := &r.recs[k]
		if rec.to == to && rec.m.Kind == kind && rec.m.Iter == iter {
			if err := r.t.Send(rec.to, rec.m); err != nil {
				return err
			}
		}
	}
	return nil
}

// NewRound prunes records older than the previous round. Two rounds are
// retained: the current round's requests and the previous round's
// responses, which a lagging peer may still solicit.
func (r *Retrier) NewRound(iter int) {
	keep := r.recs[:0]
	for k := range r.recs {
		if r.recs[k].m.Iter >= iter-1 {
			keep = append(keep, r.recs[k])
		}
	}
	for k := len(keep); k < len(r.recs); k++ {
		r.recs[k] = outRec{}
	}
	r.recs = keep
}
