package distsim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
)

// Protocol errors.
var (
	ErrTimeout = errors.New("distsim: timed out waiting for a message")
	ErrAborted = errors.New("distsim: protocol aborted")
)

// RunOptions configures a distributed run.
type RunOptions struct {
	Solver core.Options
	// Timeout bounds each individual message wait (default 30s). It
	// applies to the legacy fail-fast protocol; with Resilience set the
	// per-phase MessageDeadline governs waits instead.
	Timeout time.Duration
	// Resilience, when non-nil, enables the hardened protocol: bounded
	// retransmission with backoff, duplicate suppression, per-phase
	// degrade deadlines with stale-iterate fallback, and coordinator
	// liveness tracking with proximity-routing finalization for dead
	// front-ends. Nil runs the legacy fail-fast protocol.
	Resilience *Resilience
}

// Degradation reports how a resilient run deviated from fault-free
// operation. Nil on a Result means the run saw no degradation at all.
type Degradation struct {
	// DeadAgents are agents the coordinator declared dead after
	// Resilience.DeadAfter consecutive missed reports.
	DeadAgents []string
	// MissedReports counts report slots that hit the degrade deadline.
	MissedReports int
	// StaleRounds counts coordinator rounds completed with at least one
	// missing report.
	StaleRounds int
	// ProximityFrontEnds lists front-ends whose final routing was
	// reconstructed by proximity fallback (all load to the nearest
	// datacenter) because the agent died before delivering it.
	ProximityFrontEnds []int
	// WorkerErrors are failures of local non-coordinator agents that the
	// resilient run tolerated (e.g. simulated crashes).
	WorkerErrors []string
}

// Result of a distributed run.
type Result struct {
	Allocation *core.Allocation
	Breakdown  core.Breakdown
	Stats      *core.Stats
	// Degradation is non-nil when a resilient run degraded (dead agents,
	// missed reports, proximity fallback or tolerated worker failures).
	Degradation *Degradation
}

// Run executes the distributed 4-block ADM-G protocol over the transport:
// M front-end agents, N datacenter agents and one coordinator exchange the
// messages of Fig. 2 until the coordinator detects convergence. The caller
// supplies a transport already registered with the ids of AllAgentIDs.
// Cancelling ctx aborts the protocol between message waits and iteration
// phases.
func Run(ctx context.Context, inst *core.Instance, opts RunOptions, transport Transport) (*Result, error) {
	return RunAgents(ctx, inst, opts, transport, allIDs(inst.Cloud.M(), inst.Cloud.N()))
}

// RunAgents runs only the named agents ("fe-<i>", "dc-<j>", "coord") over
// the transport; the remaining agents are expected to run elsewhere (other
// goroutines or other processes connected to the same hub). Every process
// must construct the agents from the same instance and solver options —
// the engine is deterministic, so all participants agree on the effective
// parameters. The Result is non-nil only when the coordinator is among the
// local agents; other participants receive (nil, nil) on clean shutdown.
func RunAgents(ctx context.Context, inst *core.Instance, opts RunOptions, transport Transport, agentIDs []string) (*Result, error) {
	engine, err := core.NewEngine(inst, opts.Solver)
	if err != nil {
		return nil, err
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	if ctx == nil {
		// A nil context used to be silently promoted to context.Background(),
		// which detached the whole protocol from caller cancellation; every
		// entry point is context-first now, so a nil here is a caller bug.
		return nil, fmt.Errorf("distsim: nil context: %w", core.ErrBadOptions)
	}
	var pol Resilience
	resilient := opts.Resilience != nil
	if resilient {
		if engine.Sparse() {
			return nil, fmt.Errorf("distsim: the resilient protocol does not support SparsityCutoff yet: %w", core.ErrBadOptions)
		}
		pol = opts.Resilience.withDefaults()
	}
	m, n := inst.Cloud.M(), inst.Cloud.N()
	tab := newIDTable(m, n)

	type launch struct {
		id  string
		run func() error
	}
	var launches []launch
	hasCoord := false
	resCh := make(chan *coordResult, 1)
	for _, id := range agentIDs {
		var i, j int
		switch {
		case id == coordID():
			hasCoord = true
			launches = append(launches, launch{id: id, run: func() error {
				var res *coordResult
				var err error
				if resilient {
					res, err = runCoordinatorRes(ctx, engine, transport, tab, pol)
				} else {
					res, err = runCoordinator(ctx, engine, transport, tab, opts.Timeout)
				}
				if err != nil {
					return err
				}
				resCh <- res
				return nil
			}})
		case parseID(id, "fe-", &i) && i >= 0 && i < m:
			idx := i
			launches = append(launches, launch{id: id, run: func() error {
				if resilient {
					return runFrontEndRes(ctx, engine, transport, tab, idx, pol)
				}
				return runFrontEnd(ctx, engine, transport, tab, idx, opts.Timeout)
			}})
		case parseID(id, "dc-", &j) && j >= 0 && j < n:
			idx := j
			launches = append(launches, launch{id: id, run: func() error {
				if resilient {
					return runDatacenterRes(ctx, engine, transport, tab, idx, pol)
				}
				return runDatacenter(ctx, engine, transport, tab, idx, opts.Timeout)
			}})
		default:
			return nil, fmt.Errorf("distsim: agent id %q invalid for a %dx%d cloud", id, m, n)
		}
	}

	type workerErr struct {
		id  string
		err error
	}
	errCh := make(chan workerErr, len(launches))
	for _, l := range launches {
		go func(id string, run func() error) { errCh <- workerErr{id: id, err: run()} }(l.id, l.run)
	}
	var firstErr error
	var workerErrs []string
	for range launches {
		we := <-errCh
		if resilient {
			// Any exited agent — finished or failed — stops reading its
			// inbox while stragglers may still retransmit to it. Drain it
			// so a full mailbox can never block live senders and cascade
			// into a fleet-wide deadlock on a synchronous transport.
			go drainInbox(transport, we.id)
		}
		if we.err == nil {
			continue
		}
		if resilient && we.id != tab.coord {
			// Degraded operation tolerates non-coordinator failures
			// (crashed or declared-dead agents); the coordinator routes
			// around them and still produces a result.
			workerErrs = append(workerErrs, we.id+": "+we.err.Error())
			continue
		}
		if firstErr == nil {
			firstErr = we.err
			// Unblock everything else.
			_ = transport.Close() //ufc:discard firstErr is the failure being reported; Close is only a wakeup
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if !hasCoord {
		return nil, nil
	}
	res := <-resCh

	state := core.NewState(m, n)
	for i := 0; i < m; i++ {
		copy(state.Lambda[i], res.lambda[i])
	}
	alloc := engine.Finalize(state)
	degr := res.degr
	if len(workerErrs) > 0 {
		if degr == nil {
			degr = &Degradation{}
		}
		degr.WorkerErrors = workerErrs
	}
	return &Result{
		Allocation:  alloc,
		Breakdown:   core.Evaluate(inst, alloc),
		Stats:       res.stats,
		Degradation: degr,
	}, nil
}

// drainInbox consumes a failed worker's mailbox until the transport
// closes it. Without a reader, peer retransmissions aimed at the dead
// agent would fill its bounded inbox and block the senders — and with a
// synchronous in-process transport that backpressure cascades into a
// fleet-wide deadlock.
func drainInbox(t Transport, id string) {
	in, err := t.Inbox(id)
	if err != nil {
		return
	}
	for range in {
	}
}

// parseID extracts the integer suffix of ids like "fe-3".
func parseID(id, prefix string, out *int) bool {
	if len(id) <= len(prefix) || id[:len(prefix)] != prefix {
		return false
	}
	v := 0
	for _, ch := range id[len(prefix):] {
		if ch < '0' || ch > '9' {
			return false
		}
		v = v*10 + int(ch-'0')
	}
	*out = v
	return true
}

// AllAgentIDs returns the transport ids required by Run for an M×N cloud:
// fe-0..fe-(M-1), dc-0..dc-(N-1) and coord.
func AllAgentIDs(m, n int) []string { return allIDs(m, n) }

// idTable precomputes the agent id strings of an M×N cloud so the
// per-iteration send loops never format ids (each protocol iteration
// addresses ~2·M·N+2·(M+N) messages).
type idTable struct {
	fe, dc []string
	coord  string
}

func newIDTable(m, n int) *idTable {
	t := &idTable{fe: make([]string, m), dc: make([]string, n), coord: coordID()}
	for i := range t.fe {
		t.fe[i] = feID(i)
	}
	for j := range t.dc {
		t.dc[j] = dcID(j)
	}
	return t
}

type coordResult struct {
	lambda [][]float64
	stats  *core.Stats
	degr   *Degradation
}

// mailbox wraps an inbox with a pending buffer so agents can receive
// messages of a specific kind and iteration even when the transport
// reorders deliveries across rounds. Waits also unblock when the run's
// context is cancelled.
type mailbox struct {
	inbox   <-chan Message
	pending []Message
	timeout time.Duration
	ctx     context.Context
}

func newMailbox(ctx context.Context, t Transport, id string, timeout time.Duration) (*mailbox, error) {
	in, err := t.Inbox(id)
	if err != nil {
		return nil, err
	}
	return &mailbox{inbox: in, timeout: timeout, ctx: ctx}, nil
}

// recv returns the next message matching kind and iter.
func (mb *mailbox) recv(kind Kind, iter int) (Message, error) {
	for idx, msg := range mb.pending {
		if msg.Kind == kind && msg.Iter == iter {
			mb.pending = append(mb.pending[:idx], mb.pending[idx+1:]...)
			return msg, nil
		}
	}
	deadline := time.NewTimer(mb.timeout)
	defer deadline.Stop()
	for {
		select {
		case msg, ok := <-mb.inbox:
			if !ok {
				return Message{}, ErrAborted
			}
			if msg.Kind == kind && msg.Iter == iter {
				return msg, nil
			}
			mb.pending = append(mb.pending, msg)
		case <-deadline.C:
			return Message{}, fmt.Errorf("kind %d iter %d: %w", kind, iter, ErrTimeout)
		case <-mb.ctx.Done():
			return Message{}, mb.ctx.Err()
		}
	}
}

// runFrontEnd is the front-end proxy agent i: it performs the
// λ-minimization, exchanges (λ̃, φ) with the datacenters, applies the dual
// update and Gaussian back-substitution for its row of a and φ, and
// reports its residual contribution. On a sparse engine the compact
// variant runs instead and exchanges messages only across feasible pairs.
func runFrontEnd(ctx context.Context, e *core.Engine, t Transport, tab *idTable, i int, timeout time.Duration) error {
	if e.Sparse() {
		return runFrontEndSparse(ctx, e, t, tab, i, timeout)
	}
	inst := e.Instance()
	n := inst.Cloud.N()
	self := tab.fe[i]
	mb, err := newMailbox(ctx, t, self, timeout)
	if err != nil {
		return err
	}
	rho, eps := e.Rho(), e.EffectiveEpsilon()
	loadScale, dualScale := e.LoadScale(), e.DualScale()

	aRow := make([]float64, n)
	varphiRow := make([]float64, n)
	lambdaRow := make([]float64, n)
	lambdaTilde := make([]float64, n)
	aTilde := make([]float64, n)
	ws := e.NewStepWorkspace()

	for iter := 1; ; iter++ {
		if err := e.LambdaStepInto(ws, i, aRow, varphiRow, lambdaTilde); err != nil {
			return fmt.Errorf("front-end %d iter %d: %w", i, iter, err)
		}
		for j := 0; j < n; j++ {
			if err := t.Send(tab.dc[j], Message{
				Kind: KindRouting, Iter: iter, From: self,
				Payload: []float64{lambdaTilde[j], varphiRow[j]},
			}); err != nil {
				return fmt.Errorf("front-end %d iter %d send: %w", i, iter, err)
			}
		}

		for recvd := 0; recvd < n; recvd++ {
			msg, err := mb.recv(KindAux, iter)
			if err != nil {
				return fmt.Errorf("front-end %d iter %d: %w", i, iter, err)
			}
			// The sender identifies the column: ã_ij arrives from dc-j.
			var j int
			if !parseID(msg.From, "dc-", &j) || j < 0 || j >= n || len(msg.Payload) != 1 {
				return fmt.Errorf("front-end %d iter %d: bad aux message from %q", i, iter, msg.From)
			}
			aTilde[j] = msg.Payload[0]
		}

		// Dual prediction and Gaussian back substitution for this row.
		var residual float64
		for j := 0; j < n; j++ {
			varphiTilde := varphiRow[j] - rho*(aTilde[j]-lambdaTilde[j])
			newVarphi := varphiRow[j] + eps*(varphiTilde-varphiRow[j])
			if d := math.Abs(newVarphi-varphiRow[j]) / dualScale; d > residual {
				residual = d
			}
			varphiRow[j] = newVarphi
			aRow[j] += eps * (aTilde[j] - aRow[j])
			if d := math.Abs(aRow[j]-lambdaTilde[j]) / loadScale; d > residual {
				residual = d
			}
			lambdaRow[j] = lambdaTilde[j]
		}

		if err := t.Send(tab.coord, Message{
			Kind: KindReport, Iter: iter, From: self, Payload: []float64{residual},
		}); err != nil {
			return fmt.Errorf("front-end %d iter %d report: %w", i, iter, err)
		}
		ctl, err := mb.recv(KindControl, iter)
		if err != nil {
			return fmt.Errorf("front-end %d iter %d control: %w", i, iter, err)
		}
		if ctl.Stop {
			final := append([]float64{float64(i)}, lambdaRow...)
			return t.Send(tab.coord, Message{
				Kind: KindFinal, Iter: iter, From: self, Payload: final,
			})
		}
	}
}

// runDatacenter is the datacenter agent j: it performs the μ-, ν- and
// a-minimizations, sends ã back to the front-ends, applies the dual update
// and Gaussian back substitution for its column, and reports its residual
// contribution. On a sparse engine the compact variant runs instead and
// exchanges messages only across feasible pairs.
func runDatacenter(ctx context.Context, e *core.Engine, t Transport, tab *idTable, j int, timeout time.Duration) error {
	if e.Sparse() {
		return runDatacenterSparse(ctx, e, t, tab, j, timeout)
	}
	inst := e.Instance()
	m := inst.Cloud.M()
	self := tab.dc[j]
	mb, err := newMailbox(ctx, t, self, timeout)
	if err != nil {
		return err
	}
	rho, eps := e.Rho(), e.EffectiveEpsilon()
	dualScale := e.DualScale()
	disableCorrection := e.Options().DisableCorrection

	aCol := make([]float64, m)
	lambdaTildeCol := make([]float64, m)
	varphiCol := make([]float64, m)
	aTilde := make([]float64, m)
	ws := e.NewStepWorkspace()
	var mu, nu, phi float64

	for iter := 1; ; iter++ {
		for recvd := 0; recvd < m; recvd++ {
			msg, err := mb.recv(KindRouting, iter)
			if err != nil {
				return fmt.Errorf("datacenter %d iter %d: %w", j, iter, err)
			}
			// The sender identifies the row: (λ̃_ij, φ_ij) arrives from fe-i.
			var i int
			if !parseID(msg.From, "fe-", &i) || i < 0 || i >= m || len(msg.Payload) != 2 {
				return fmt.Errorf("datacenter %d iter %d: bad routing message from %q", j, iter, msg.From)
			}
			lambdaTildeCol[i] = msg.Payload[0]
			varphiCol[i] = msg.Payload[1]
		}

		var sumA float64
		for i := 0; i < m; i++ {
			sumA += aCol[i]
		}
		muTilde := e.MuStep(j, sumA, nu, phi)
		nuTilde := e.NuStep(j, sumA, muTilde, phi)
		if err := e.AStepInto(ws, j, lambdaTildeCol, varphiCol, muTilde, nuTilde, phi, aTilde); err != nil {
			return fmt.Errorf("datacenter %d iter %d: %w", j, iter, err)
		}
		var sumATilde float64
		for i := 0; i < m; i++ {
			sumATilde += aTilde[i]
		}
		phiTilde := phi - rho*e.PowerBalance(j, sumATilde, muTilde, nuTilde)

		for i := 0; i < m; i++ {
			if err := t.Send(tab.fe[i], Message{
				Kind: KindAux, Iter: iter, From: self,
				Payload: []float64{aTilde[i]},
			}); err != nil {
				return fmt.Errorf("datacenter %d iter %d send: %w", j, iter, err)
			}
		}

		// Gaussian back substitution for this column (same accumulation
		// order as the sequential engine).
		newPhi := phi + eps*(phiTilde-phi)
		residual := math.Abs(newPhi-phi) / dualScale
		phi = newPhi
		var aDelta float64
		for i := 0; i < m; i++ {
			old := aCol[i]
			next := old + eps*(aTilde[i]-old)
			aDelta += next - old
			aCol[i] = next
		}
		nuOld := nu
		if disableCorrection {
			nu = nuTilde
			mu = muTilde
		} else {
			nu = nuOld + eps*(nuTilde-nuOld) + aDelta
			mu = mu + eps*(muTilde-mu) - (nu - nuOld) + aDelta
		}

		if err := t.Send(tab.coord, Message{
			Kind: KindReport, Iter: iter, From: self, Payload: []float64{residual},
		}); err != nil {
			return fmt.Errorf("datacenter %d iter %d report: %w", j, iter, err)
		}
		ctl, err := mb.recv(KindControl, iter)
		if err != nil {
			return fmt.Errorf("datacenter %d iter %d control: %w", j, iter, err)
		}
		if ctl.Stop {
			return t.Send(tab.coord, Message{
				Kind: KindFinal, Iter: iter, From: self,
				Payload: []float64{float64(j), mu, nu, phi},
			})
		}
	}
}

// runCoordinator gathers per-iteration residual reports, decides
// convergence, broadcasts control messages, and collects the final routing.
func runCoordinator(ctx context.Context, e *core.Engine, t Transport, tab *idTable, timeout time.Duration) (*coordResult, error) {
	inst := e.Instance()
	m, n := inst.Cloud.M(), inst.Cloud.N()
	opts := e.Options()
	mb, err := newMailbox(ctx, t, tab.coord, timeout)
	if err != nil {
		return nil, err
	}
	stats := &core.Stats{}

	broadcast := func(iter int, stop bool) error {
		for i := 0; i < m; i++ {
			if err := t.Send(tab.fe[i], Message{Kind: KindControl, Iter: iter, From: tab.coord, Stop: stop}); err != nil {
				return err
			}
		}
		for j := 0; j < n; j++ {
			if err := t.Send(tab.dc[j], Message{Kind: KindControl, Iter: iter, From: tab.coord, Stop: stop}); err != nil {
				return err
			}
		}
		return nil
	}

	lastIter := 0
	for iter := 1; iter <= opts.MaxIterations; iter++ {
		var residual float64
		for k := 0; k < m+n; k++ {
			msg, err := mb.recv(KindReport, iter)
			if err != nil {
				return nil, fmt.Errorf("coordinator iter %d: %w", iter, err)
			}
			if r := msg.Payload[0]; r > residual {
				residual = r
			}
		}
		stats.Iterations = iter
		stats.FinalResidual = residual
		opts.Probe.ObserveIteration(residual)
		if opts.TrackResiduals {
			stats.ResidualTrace = append(stats.ResidualTrace, residual)
		}
		stop := residual <= opts.Tolerance || iter == opts.MaxIterations
		stats.Converged = residual <= opts.Tolerance
		if err := broadcast(iter, stop); err != nil {
			return nil, fmt.Errorf("coordinator iter %d broadcast: %w", iter, err)
		}
		if stop {
			lastIter = iter
			break
		}
	}
	// Distributed runs always start from the zero iterate.
	opts.Probe.ObserveSolve(stats.Iterations, stats.FinalResidual, stats.Converged, false)

	lambda := make([][]float64, m)
	for k := 0; k < m+n; k++ {
		msg, err := mb.recv(KindFinal, lastIter)
		if err != nil {
			return nil, fmt.Errorf("coordinator finals: %w", err)
		}
		if len(msg.Payload) != n+1 {
			continue
		}
		if i := int(msg.Payload[0]); i >= 0 && i < m && msg.From == tab.fe[i] {
			lambda[i] = append([]float64(nil), msg.Payload[1:]...)
		}
	}
	for i := 0; i < m; i++ {
		if lambda[i] == nil {
			return nil, fmt.Errorf("coordinator: missing final routing from front-end %d", i)
		}
	}
	return &coordResult{lambda: lambda, stats: stats}, nil
}
