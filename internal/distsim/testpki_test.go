package distsim

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"math/big"
	"net"
	"testing"
	"time"
)

// testPKI is an ephemeral certificate hierarchy for TLS tests: one CA,
// one server certificate for 127.0.0.1/localhost, one client
// certificate. Everything is generated in-memory per test — nothing is
// checked in, and nothing outlives the process.
type testPKI struct {
	pool       *x509.CertPool
	serverCert tls.Certificate
	clientCert tls.Certificate
}

func newTestPKI(t *testing.T) *testPKI {
	t.Helper()
	caKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	caTmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "ufc-test-ca"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign,
		BasicConstraintsValid: true,
	}
	caDER, err := x509.CreateCertificate(rand.Reader, caTmpl, caTmpl, &caKey.PublicKey, caKey)
	if err != nil {
		t.Fatal(err)
	}
	caCert, err := x509.ParseCertificate(caDER)
	if err != nil {
		t.Fatal(err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(caCert)

	leaf := func(serial int64, cn string, usage x509.ExtKeyUsage, ips []net.IP) tls.Certificate {
		key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		tmpl := &x509.Certificate{
			SerialNumber: big.NewInt(serial),
			Subject:      pkix.Name{CommonName: cn},
			NotBefore:    time.Now().Add(-time.Hour),
			NotAfter:     time.Now().Add(time.Hour),
			KeyUsage:     x509.KeyUsageDigitalSignature,
			ExtKeyUsage:  []x509.ExtKeyUsage{usage},
			IPAddresses:  ips,
			DNSNames:     []string{"localhost"},
		}
		der, err := x509.CreateCertificate(rand.Reader, tmpl, caCert, &key.PublicKey, caKey)
		if err != nil {
			t.Fatal(err)
		}
		return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}
	}
	return &testPKI{
		pool:       pool,
		serverCert: leaf(2, "ufc-test-server", x509.ExtKeyUsageServerAuth, []net.IP{net.ParseIP("127.0.0.1"), net.ParseIP("::1")}),
		clientCert: leaf(3, "ufc-test-client", x509.ExtKeyUsageClientAuth, nil),
	}
}

// serverConfig is a mutual-TLS listener config: it presents the server
// certificate and requires a client certificate signed by the test CA.
func (p *testPKI) serverConfig() *tls.Config {
	return &tls.Config{
		Certificates: []tls.Certificate{p.serverCert},
		ClientAuth:   tls.RequireAndVerifyClientCert,
		ClientCAs:    p.pool,
		MinVersion:   tls.VersionTLS13,
	}
}

// clientConfig presents the client certificate and verifies the server
// against the test CA.
func (p *testPKI) clientConfig() *tls.Config {
	return &tls.Config{
		Certificates: []tls.Certificate{p.clientCert},
		RootCAs:      p.pool,
		MinVersion:   tls.VersionTLS13,
	}
}
