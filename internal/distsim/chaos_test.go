package distsim_test

// Chaos-matrix tests for the fault-tolerant protocol. Everything here is
// driven by seeded FaultPlans, so each scenario is deterministic and
// replayable: the CI smoke step runs this file with
// `go test ./internal/distsim -run Chaos -race`.

import (
	"bytes"
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/distsim"
	"repro/internal/experiments"
	"repro/internal/telemetry"
)

// chaosPolicy is tuned for test speed: fast retransmits, and a degrade
// deadline short enough that rounds blocked on a dead peer do not stall
// the suite, yet orders of magnitude above in-memory delivery latency so
// live messages never miss it even when the whole test suite is
// saturating the scheduler (the determinism precondition).
func chaosPolicy() *distsim.Resilience {
	return &distsim.Resilience{
		RetryInterval:   time.Millisecond,
		MaxRetries:      8,
		MessageDeadline: 500 * time.Millisecond,
		DeadAfter:       3,
		StalenessCap:    12,
	}
}

// runChaos executes one resilient distributed solve under plan.
func runChaos(t *testing.T, inst *core.Instance, plan *distsim.FaultPlan, pol *distsim.Resilience) *distsim.Result {
	t.Helper()
	m, n := inst.Cloud.M(), inst.Cloud.N()
	inner := distsim.NewChanTransport(distsim.AllAgentIDs(m, n), distsim.ChanOptions{})
	tr, err := distsim.NewFaultTransport(inner, plan)
	if err != nil {
		t.Fatal(err)
	}
	res, err := distsim.Run(context.Background(), inst, distsim.RunOptions{Resilience: pol}, tr)
	_ = tr.Close() //ufc:discard in-process transport; Run already surfaced any failure
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	return res
}

// slotBytes renders a result the way cmd/ufcsim logs a slot, so replay
// equality is asserted on the actual NDJSON wire bytes.
func slotBytes(t *testing.T, res *distsim.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	emit := telemetry.NewNDJSONEmitter(&buf)
	if err := emit.Emit(experiments.NewSlotRecord(0, core.Hybrid, res.Breakdown, res.Allocation, res.Stats, false)); err != nil {
		t.Fatal(err)
	}
	if err := emit.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChaosZeroFaultPlanBitIdentical pins the acceptance criterion that
// enabling the hardened protocol with an empty fault plan reproduces the
// sequential engine bit for bit.
func TestChaosZeroFaultPlanBitIdentical(t *testing.T) {
	inst := testInstance(t, 1)
	seqAlloc, seqBD, seqStats, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := runChaos(t, inst, &distsim.FaultPlan{Seed: 11}, chaosPolicy())
	if res.Degradation != nil {
		t.Fatalf("zero-fault run degraded: %+v", res.Degradation)
	}
	if res.Stats.Iterations != seqStats.Iterations || res.Breakdown.UFC != seqBD.UFC {
		t.Fatalf("zero-fault resilient run diverged: %d iters UFC %v, sequential %d iters UFC %v",
			res.Stats.Iterations, res.Breakdown.UFC, seqStats.Iterations, seqBD.UFC)
	}
	for i := range seqAlloc.Lambda {
		for j := range seqAlloc.Lambda[i] {
			if seqAlloc.Lambda[i][j] != res.Allocation.Lambda[i][j] {
				t.Fatalf("lambda[%d][%d]: resilient %v vs sequential %v (must be bit-identical)",
					i, j, res.Allocation.Lambda[i][j], seqAlloc.Lambda[i][j])
			}
		}
	}
}

// TestChaosMatrix sweeps loss × delay × duplication. Link faults are
// recoverable by retransmission and deduplication, so every cell must
// produce the exact fault-free solution — and two same-seed runs must
// produce byte-identical slot logs.
func TestChaosMatrix(t *testing.T) {
	inst := testInstance(t, 1)
	_, seqBD, seqStats, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cells := []struct {
		name string
		link distsim.LinkFault
	}{
		{"loss10", distsim.LinkFault{DropProb: 0.1}},
		{"loss20", distsim.LinkFault{DropProb: 0.2}},
		{"delay", distsim.LinkFault{MaxExtraDelayMS: 3}},
		{"dup", distsim.LinkFault{DupProb: 0.3}},
		{"loss+delay", distsim.LinkFault{DropProb: 0.15, MaxExtraDelayMS: 2, DelayProb: 0.5}},
		{"loss+dup", distsim.LinkFault{DropProb: 0.1, DupProb: 0.2}},
	}
	for _, cell := range cells {
		t.Run(cell.name, func(t *testing.T) {
			plan := &distsim.FaultPlan{Seed: 1234, Links: []distsim.LinkFault{cell.link}}
			res := runChaos(t, inst, plan, chaosPolicy())
			if !res.Stats.Converged {
				t.Fatalf("cell did not converge: %+v", res.Stats)
			}
			if res.Breakdown.UFC != seqBD.UFC || res.Stats.Iterations != seqStats.Iterations {
				t.Fatalf("recoverable faults changed the solution: UFC %v (want %v), iters %d (want %d)",
					res.Breakdown.UFC, seqBD.UFC, res.Stats.Iterations, seqStats.Iterations)
			}
			replay := runChaos(t, inst, plan, chaosPolicy())
			if got, want := slotBytes(t, replay), slotBytes(t, res); !bytes.Equal(got, want) {
				t.Fatalf("same-seed replay produced different slot log:\n%s\n%s", want, got)
			}
		})
	}
}

// TestChaosPartitionDeclaresDeadAndCompletes: a partition across a control
// boundary exceeds the protocol's two-round catch-up retention, so the
// isolated datacenter is declared dead and the fleet degrades around it —
// deterministically.
func TestChaosPartitionDeclaresDeadAndCompletes(t *testing.T) {
	inst := testInstance(t, 1)
	plan := &distsim.FaultPlan{
		Seed:       5,
		Partitions: []distsim.Partition{{Agents: []string{"dc-1"}, FromIter: 8, ToIter: 10}},
	}
	res := runChaos(t, inst, plan, chaosPolicy())
	if res.Degradation == nil {
		t.Fatal("partitioned run reported no degradation")
	}
	foundDead := false
	for _, id := range res.Degradation.DeadAgents {
		if id == "dc-1" {
			foundDead = true
		}
	}
	if !foundDead {
		t.Fatalf("dc-1 not declared dead: %+v", res.Degradation)
	}
	replay := runChaos(t, inst, plan, chaosPolicy())
	if got, want := slotBytes(t, replay), slotBytes(t, res); !bytes.Equal(got, want) {
		t.Fatalf("same-seed partition replay diverged:\n%s\n%s", want, got)
	}
}

// TestChaosLossAndDatacenterCrash is the headline acceptance scenario:
// 20% loss on every link plus a datacenter crash mid-solve. The solve
// must complete, degrade per policy (crashed datacenter declared dead),
// land within 1% UFC of the fault-free solution, and replay to
// byte-identical slot logs.
func TestChaosLossAndDatacenterCrash(t *testing.T) {
	inst := testInstance(t, 1)
	_, seqBD, _, err := core.Solve(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan := &distsim.FaultPlan{
		Seed:    77,
		Links:   []distsim.LinkFault{{DropProb: 0.2}},
		Crashes: []distsim.Crash{{Agent: "dc-1", AtIter: 30}},
	}
	res := runChaos(t, inst, plan, chaosPolicy())
	if res.Degradation == nil {
		t.Fatal("crashed run reported no degradation")
	}
	foundDead := false
	for _, id := range res.Degradation.DeadAgents {
		if id == "dc-1" {
			foundDead = true
		}
	}
	if !foundDead {
		t.Fatalf("crashed datacenter not declared dead: %+v", res.Degradation)
	}
	if rel := math.Abs(res.Breakdown.UFC-seqBD.UFC) / math.Abs(seqBD.UFC); rel > 0.01 {
		t.Fatalf("degraded UFC %v deviates %.2f%% from fault-free %v (cap 1%%)",
			res.Breakdown.UFC, 100*rel, seqBD.UFC)
	}
	replay := runChaos(t, inst, plan, chaosPolicy())
	if got, want := slotBytes(t, replay), slotBytes(t, res); !bytes.Equal(got, want) {
		t.Fatalf("same-seed crash replay diverged:\n%s\n%s", want, got)
	}
}

// TestChaosFrontEndCrashProximityFallback: a front-end that dies before
// delivering its final routing is finalized by the proximity policy — all
// of its demand at its nearest datacenter.
func TestChaosFrontEndCrashProximityFallback(t *testing.T) {
	inst := testInstance(t, 1)
	plan := &distsim.FaultPlan{
		Seed:    9,
		Crashes: []distsim.Crash{{Agent: "fe-2", AtIter: 30}},
	}
	res := runChaos(t, inst, plan, chaosPolicy())
	if res.Degradation == nil {
		t.Fatal("front-end crash reported no degradation")
	}
	foundProx := false
	for _, i := range res.Degradation.ProximityFrontEnds {
		if i == 2 {
			foundProx = true
		}
	}
	if !foundProx {
		t.Fatalf("fe-2 not finalized by proximity fallback: %+v", res.Degradation)
	}
	n := inst.Cloud.N()
	best := 0
	for j := 1; j < n; j++ {
		if inst.Cloud.LatencySec(2, j) < inst.Cloud.LatencySec(2, best) {
			best = j
		}
	}
	for j := 0; j < n; j++ {
		want := 0.0
		if j == best {
			want = inst.Arrivals[2]
		}
		if res.Allocation.Lambda[2][j] != want {
			t.Fatalf("proximity row lambda[2] = %v, want all %v at dc %d",
				res.Allocation.Lambda[2], inst.Arrivals[2], best)
		}
	}
}
