package distsim

// Internal tests for the retry/backoff/dedup layer: they inject a fake
// timer source through Resilience.tf, which the exported surface
// deliberately does not expose.

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock implements timerFactory. Timers never fire on their own; the
// test fires them explicitly and inspects the durations requested.
type fakeClock struct {
	mu     sync.Mutex
	timers []*fakeTimer
}

type fakeTimer struct {
	clock *fakeClock
	ch    chan time.Time
	durs  []time.Duration // creation duration followed by every Reset
}

func (c *fakeClock) newTimer(d time.Duration) waitTimer {
	c.mu.Lock()
	defer c.mu.Unlock()
	ft := &fakeTimer{clock: c, ch: make(chan time.Time)}
	ft.durs = append(ft.durs, d)
	c.timers = append(c.timers, ft)
	return ft
}

func (c *fakeClock) timer(k int) *fakeTimer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.timers[k]
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }
func (t *fakeTimer) Stop()               {}
func (t *fakeTimer) Reset(d time.Duration) {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	t.durs = append(t.durs, d)
}

// fire blocks until the wait loop consumes the tick, synchronizing the
// test with the receiver.
func (t *fakeTimer) fire() { t.ch <- time.Time{} }

func (t *fakeTimer) requested() []time.Duration {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	return append([]time.Duration(nil), t.durs...)
}

func TestBackoffScheduleDeterministicAndBounded(t *testing.T) {
	pol := Resilience{RetryInterval: 10 * time.Millisecond, Seed: 7}.withDefaults()
	base := float64(pol.RetryInterval)
	for attempt := 0; attempt < 5; attempt++ {
		d := pol.backoff("fe-2", 13, attempt)
		if d != pol.backoff("fe-2", 13, attempt) {
			t.Fatalf("backoff attempt %d not deterministic", attempt)
		}
		nominal := base
		for k := 0; k < attempt; k++ {
			nominal *= pol.BackoffFactor
		}
		lo := time.Duration(nominal * (1 - pol.JitterFrac))
		hi := time.Duration(nominal * (1 + pol.JitterFrac))
		if d < lo || d > hi {
			t.Fatalf("backoff attempt %d = %v outside jitter band [%v, %v]", attempt, d, lo, hi)
		}
	}
	if pol.backoff("fe-2", 13, 1) == pol.backoff("dc-0", 13, 1) &&
		pol.backoff("fe-2", 14, 1) == pol.backoff("dc-0", 14, 1) {
		t.Fatal("jitter does not vary with the agent identity")
	}
}

func TestPhaseRetriesWithBackoffUntilMessageArrives(t *testing.T) {
	tr := NewChanTransport([]string{"x", "coord"}, ChanOptions{})
	defer func() { _ = tr.Close() }()
	clock := &fakeClock{}
	pol := Resilience{RetryInterval: 10 * time.Millisecond, MaxRetries: 3, Seed: 1, tf: clock}
	pol = pol.withDefaults()
	mb, err := newResMailbox(context.Background(), tr, "x")
	if err != nil {
		t.Fatal(err)
	}
	var retries int
	ph := newPhase(mb, &pol, "x", 1, func() error { retries++; return nil })
	defer ph.stop()

	type out struct {
		msg Message
		ok  bool
		err error
	}
	done := make(chan out, 1)
	go func() {
		m, ok, err := ph.recv(KindControl, 1)
		done <- out{m, ok, err}
	}()

	retry := clock.timer(0) // newPhase creates retry first, degrade second
	// MaxRetries fires invoke onRetry and re-arm with the next backoff;
	// further fires are no-ops (the budget is spent).
	for k := 0; k < pol.MaxRetries+2; k++ {
		retry.fire()
	}
	if err := tr.Send("x", Message{From: "coord", Kind: KindControl, Iter: 1}); err != nil {
		t.Fatal(err)
	}
	res := <-done
	if res.err != nil || !res.ok {
		t.Fatalf("recv = (ok=%v, err=%v), want delivered message", res.ok, res.err)
	}
	if retries != pol.MaxRetries {
		t.Fatalf("onRetry ran %d times, want exactly MaxRetries=%d", retries, pol.MaxRetries)
	}
	durs := retry.requested()
	if len(durs) != 1+pol.MaxRetries {
		t.Fatalf("retry timer armed %d times, want %d", len(durs), 1+pol.MaxRetries)
	}
	for attempt, d := range durs {
		if want := pol.backoff("x", 1, attempt); d != want {
			t.Fatalf("retry arm %d = %v, want backoff %v", attempt, d, want)
		}
	}
}

func TestPhaseDegradeDeadlineExpires(t *testing.T) {
	tr := NewChanTransport([]string{"x"}, ChanOptions{})
	defer func() { _ = tr.Close() }()
	clock := &fakeClock{}
	pol := Resilience{tf: clock}.withDefaults()
	mb, err := newResMailbox(context.Background(), tr, "x")
	if err != nil {
		t.Fatal(err)
	}
	ph := newPhase(mb, &pol, "x", 3, nil)
	defer ph.stop()
	degrade := clock.timer(1)
	if got := degrade.requested()[0]; got != pol.MessageDeadline {
		t.Fatalf("degrade timer armed with %v, want MessageDeadline %v", got, pol.MessageDeadline)
	}
	done := make(chan bool, 1)
	go func() {
		_, ok, err := ph.recv(KindAux, 3)
		done <- ok && err == nil
	}()
	degrade.fire()
	if got := <-done; got {
		t.Fatal("recv returned a message after the degrade deadline fired")
	}
	// An expired phase answers immediately without waiting again.
	if _, ok, err := ph.recv(KindAux, 3); ok || err != nil {
		t.Fatalf("expired phase recv = (ok=%v, err=%v), want (false, nil)", ok, err)
	}
}

func TestResMailboxDeduplicatesAndSolicitsResend(t *testing.T) {
	tr := NewChanTransport([]string{"x"}, ChanOptions{})
	defer func() { _ = tr.Close() }()
	clock := &fakeClock{}
	pol := Resilience{tf: clock}.withDefaults()
	mb, err := newResMailbox(context.Background(), tr, "x")
	if err != nil {
		t.Fatal(err)
	}
	var dups []Message
	mb.onDup = func(m Message) { dups = append(dups, m) }

	send := func(iter int) {
		t.Helper()
		if err := tr.Send("x", Message{From: "fe-0", Kind: KindRouting, Iter: iter}); err != nil {
			t.Fatal(err)
		}
	}
	send(1)
	ph := newPhase(mb, &pol, "x", 1, nil)
	if _, ok, err := ph.recv(KindRouting, 1); !ok || err != nil {
		t.Fatalf("first delivery not received: ok=%v err=%v", ok, err)
	}
	ph.stop()

	// A retransmission of the consumed iterate is suppressed and surfaced
	// to the duplicate hook; the next fresh iterate still gets through.
	send(1)
	send(2)
	ph = newPhase(mb, &pol, "x", 2, nil)
	m, ok, err := ph.recv(KindRouting, 2)
	ph.stop()
	if !ok || err != nil || m.Iter != 2 {
		t.Fatalf("fresh iterate after duplicate: msg=%+v ok=%v err=%v", m, ok, err)
	}
	if len(dups) != 1 || dups[0].Iter != 1 {
		t.Fatalf("duplicate hook saw %+v, want exactly the iter-1 retransmission", dups)
	}

	// skipTo (degrading past a message) turns its late arrival into a
	// duplicate as well.
	mb.skipTo("fe-0", KindRouting, 3)
	send(3)
	send(4)
	ph = newPhase(mb, &pol, "x", 4, nil)
	m, ok, err = ph.recv(KindRouting, 4)
	ph.stop()
	if !ok || err != nil || m.Iter != 4 {
		t.Fatalf("post-skip iterate: msg=%+v ok=%v err=%v", m, ok, err)
	}
	if len(dups) != 2 || dups[1].Iter != 3 {
		t.Fatalf("skipped message not treated as duplicate: %+v", dups)
	}
}

// sendLog records every transmission for retrier assertions.
type sendLog struct {
	mu    sync.Mutex
	sends []outRec
}

func (s *sendLog) Send(to string, m Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sends = append(s.sends, outRec{to: to, m: m})
	return nil
}
func (s *sendLog) Inbox(string) (<-chan Message, error) { return nil, ErrUnknownAgent }
func (s *sendLog) Close() error                         { return nil }

func (s *sendLog) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sends)
}

func TestRetrierResendAndRoundPruning(t *testing.T) {
	log := &sendLog{}
	ret := NewRetrier(log)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(ret.Send("dc-0", Message{From: "fe-0", Kind: KindRouting, Iter: 1}))
	must(ret.Send("dc-1", Message{From: "fe-0", Kind: KindRouting, Iter: 1}))
	must(ret.Send("coord", Message{From: "fe-0", Kind: KindReport, Iter: 1}))
	if log.count() != 3 {
		t.Fatalf("recorded sends transmitted %d times, want 3", log.count())
	}

	// Resend retransmits exactly the matching record.
	must(ret.Resend("dc-1", KindRouting, 1))
	if log.count() != 4 {
		t.Fatalf("resend transmitted %d total, want 4", log.count())
	}
	last := log.sends[len(log.sends)-1]
	if last.to != "dc-1" || last.m.Kind != KindRouting || last.m.Iter != 1 {
		t.Fatalf("resend retransmitted %+v", last)
	}

	// Two rounds are retained: after NewRound(2), iteration-1 records are
	// still solicitable; after NewRound(3) they are pruned and Resend is a
	// silent no-op.
	ret.NewRound(2)
	must(ret.Resend("dc-0", KindRouting, 1))
	if log.count() != 5 {
		t.Fatalf("previous-round resend transmitted %d total, want 5", log.count())
	}
	ret.NewRound(3)
	must(ret.Resend("dc-0", KindRouting, 1))
	if log.count() != 5 {
		t.Fatalf("pruned resend still transmitted: %d total, want 5", log.count())
	}
}
