package distsim_test

import (
	"context"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/distsim"
	"repro/internal/telemetry"
)

// TestTransportAndShardMetrics runs a full distributed solve over TCP
// with hub, node and solver probe attached to one registry, then checks
// the scraped exposition against the snapshot views: the registry must
// show the same counters TransportStats reports, per-shard routing
// totals must add up to the hub's forwarded records, and the coordinator
// must have fed the solver probe.
func TestTransportAndShardMetrics(t *testing.T) {
	inst := testInstance(t, 21)
	reg := telemetry.NewRegistry()
	probe := telemetry.NewSolverProbe()
	probe.Register(reg)

	hub, err := distsim.NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hub.Close() }()
	hub.RegisterMetrics(reg, telemetry.L("component", "hub"))

	m, n := inst.Cloud.M(), inst.Cloud.N()
	node, err := distsim.NewTCPNode(hub.Addr(), distsim.AllAgentIDs(m, n), 128)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = node.Close() }()
	node.RegisterMetrics(reg, telemetry.L("component", "node"))

	res, err := distsim.Run(context.Background(), inst, distsim.RunOptions{
		Solver:  core.Options{Probe: probe},
		Timeout: time.Minute,
	}, node)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := probe.Iterations(), uint64(res.Stats.Iterations); got != want {
		t.Errorf("probe iterations = %d, want %d", got, want)
	}
	if probe.Solves() != 1 {
		t.Errorf("probe solves = %d, want 1", probe.Solves())
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`ufc_transport_msgs_sent_total{component="hub"}`,
		`ufc_transport_msgs_sent_total{component="node"}`,
		`ufc_transport_bytes_sent_total{component="node"}`,
		`ufc_hub_shard_msgs_total{component="hub",shard="0"}`,
		`ufc_hub_shard_msgs_total{component="hub",shard="15"}`,
		`ufc_solver_iterations_total`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Per-shard msgs must sum to the hub's forwarded records: everything
	// the hub received except the node's one hello record.
	hs := hub.Stats()
	var shardMsgs, shardBytes uint64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "ufc_hub_shard_msgs_total{") {
			shardMsgs += parseUintSample(t, line)
		}
		if strings.HasPrefix(line, "ufc_hub_shard_bytes_total{") {
			shardBytes += parseUintSample(t, line)
		}
	}
	if want := hs.MessagesReceived - 1; shardMsgs != want {
		t.Errorf("shard msgs sum = %d, want %d (hub received %d incl. hello)", shardMsgs, want, hs.MessagesReceived)
	}
	if shardBytes == 0 {
		t.Error("shard bytes sum = 0")
	}

	// The registry view and the snapshot view are the same counters.
	ns := node.Stats()
	if !strings.Contains(out, sampleLine("ufc_transport_msgs_sent_total", `component="node"`, ns.MessagesSent)) {
		t.Errorf("registry disagrees with node snapshot %d:\n%s", ns.MessagesSent, out)
	}
}

func parseUintSample(t *testing.T, line string) uint64 {
	t.Helper()
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		t.Fatalf("malformed sample %q", line)
	}
	var v uint64
	for _, c := range line[i+1:] {
		if c < '0' || c > '9' {
			t.Fatalf("non-integer sample %q", line)
		}
		v = v*10 + uint64(c-'0')
	}
	return v
}

func sampleLine(name, labels string, v uint64) string {
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	sb.WriteString(labels)
	sb.WriteString("} ")
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	sb.Write(buf[i:])
	return sb.String()
}

// TestRegisteredSendZeroAllocs re-runs the steady-state Send allocation
// gate with the node's counters attached to a live registry and a
// concurrent-scrape-plausible setup: registration must not add a single
// allocation to the send path.
func TestRegisteredSendZeroAllocs(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { _, _ = io.Copy(io.Discard, conn) }()
		}
	}()
	node, err := distsim.NewTCPNode(ln.Addr().String(), []string{"fe-0"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = node.Close() }()
	reg := telemetry.NewRegistry()
	node.RegisterMetrics(reg)

	msg := distsim.Message{Kind: distsim.KindRouting, Iter: 3, From: "fe-0", Payload: []float64{1, 2, 3}}
	for k := 0; k < 512; k++ {
		if err := node.Send("dc-0", msg); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(2000, func() {
		if err := node.Send("dc-0", msg); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0.1 {
		t.Errorf("registered Send allocates %.2f allocs/op, want 0", avg)
	}
	if node.Stats().MessagesSent == 0 {
		t.Error("counters not live")
	}
}
