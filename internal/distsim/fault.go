package distsim

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/tracing"
)

// A FaultPlan describes a deterministic, seeded schedule of network and
// node faults for chaos testing the distributed protocol. It is applied
// by wrapping any Transport in a FaultTransport. Every fault decision is
// a pure hash of (Seed, link, kind, iteration, attempt), so two runs with
// the same plan and the same logical message sequence make identical
// decisions regardless of goroutine scheduling — chaos runs replay.
//
// Link faults are probabilistic per transmission attempt (a retransmitted
// message is a new attempt and is hashed independently, so a lossy link
// passes a retry with fresh odds). Partitions and crashes are keyed on
// the protocol iteration carried by each message, which makes their onset
// exact and reproducible: "datacenter 1 crashes at iteration 40" means
// every message to or from dc-1 with Iter ≥ 40 is dropped, no matter when
// it is sent.
type FaultPlan struct {
	// Seed drives every probabilistic decision in the plan.
	Seed int64 `json:"seed"`
	// Links are per-link fault rules; the first rule matching a
	// (from, to) pair applies.
	Links []LinkFault `json:"links,omitempty"`
	// Partitions isolate agent groups for iteration windows.
	Partitions []Partition `json:"partitions,omitempty"`
	// Crashes permanently silence agents from an iteration onward.
	Crashes []Crash `json:"crashes,omitempty"`
}

// LinkFault injects faults on messages from From to To. From and To match
// an exact agent id, a class wildcard ("fe-*", "dc-*"), or any agent
// ("*" or empty).
type LinkFault struct {
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// DropProb is the probability that one transmission attempt is
	// dropped.
	DropProb float64 `json:"drop,omitempty"`
	// DupProb is the probability that an attempt is delivered twice.
	DupProb float64 `json:"dup,omitempty"`
	// DelayProb is the probability that an attempt is delayed by a
	// uniform extra latency in (0, MaxExtraDelayMS]; 0 with a nonzero
	// MaxExtraDelayMS delays every attempt.
	DelayProb float64 `json:"delayProb,omitempty"`
	// MaxExtraDelayMS bounds the injected extra delay in milliseconds.
	MaxExtraDelayMS float64 `json:"maxExtraDelayMs,omitempty"`
}

// Partition drops every message crossing the boundary between Agents and
// the rest of the cloud while the message's iteration lies in
// [FromIter, ToIter); ToIter 0 means the partition never heals.
type Partition struct {
	Agents   []string `json:"agents"`
	FromIter int      `json:"fromIter"`
	ToIter   int      `json:"toIter,omitempty"`
}

// Crash silences Agent from iteration AtIter onward: every message to or
// from it is dropped and its inbox is closed, so the hosting worker
// aborts — modelling a node that dies mid-solve.
type Crash struct {
	Agent  string `json:"agent"`
	AtIter int    `json:"atIter"`
}

// Validate checks probabilities and iteration windows.
func (p *FaultPlan) Validate() error {
	for k, l := range p.Links {
		for _, pr := range []float64{l.DropProb, l.DupProb, l.DelayProb} {
			if pr < 0 || pr > 1 {
				return fmt.Errorf("distsim: fault plan link %d: probability %g outside [0,1]", k, pr)
			}
		}
		if l.MaxExtraDelayMS < 0 {
			return fmt.Errorf("distsim: fault plan link %d: negative delay", k)
		}
	}
	for k, pt := range p.Partitions {
		if len(pt.Agents) == 0 {
			return fmt.Errorf("distsim: fault plan partition %d has no agents", k)
		}
		if pt.ToIter != 0 && pt.ToIter <= pt.FromIter {
			return fmt.Errorf("distsim: fault plan partition %d heals before it starts", k)
		}
	}
	for k, c := range p.Crashes {
		if c.Agent == "" {
			return fmt.Errorf("distsim: fault plan crash %d names no agent", k)
		}
		if c.AtIter < 0 {
			return fmt.Errorf("distsim: fault plan crash %d at negative iteration", k)
		}
	}
	return nil
}

// ParseFaultPlan decodes and validates a JSON fault plan (the -fault-plan
// file format of ufcsim and ufcnode).
func ParseFaultPlan(data []byte) (*FaultPlan, error) {
	var p FaultPlan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("distsim: fault plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// zero reports whether the plan injects no faults at all.
func (p *FaultPlan) zero() bool {
	return p == nil || (len(p.Links) == 0 && len(p.Partitions) == 0 && len(p.Crashes) == 0)
}

// matchAgent reports whether pattern matches id ("", "*", "fe-*", "dc-*",
// or an exact id).
func matchAgent(pattern, id string) bool {
	switch pattern {
	case "", "*":
		return true
	case "fe-*":
		var k int
		return parseID(id, "fe-", &k)
	case "dc-*":
		var k int
		return parseID(id, "dc-", &k)
	default:
		return pattern == id
	}
}

// faultHash is an FNV-1a style hash over one fault decision's identity.
// salt separates the independent decisions (drop/dup/delay-gate/delay-
// magnitude) taken for a single attempt.
func faultHash(seed int64, salt byte, from, to string, kind Kind, iter, attempt int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for k := 0; k < 8; k++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(seed))
	h ^= uint64(salt)
	h *= prime64
	for i := 0; i < len(from); i++ {
		h ^= uint64(from[i])
		h *= prime64
	}
	h ^= 0xff // separator
	h *= prime64
	for i := 0; i < len(to); i++ {
		h ^= uint64(to[i])
		h *= prime64
	}
	mix(uint64(kind))
	mix(uint64(iter))
	mix(uint64(attempt))
	return h
}

// hash01 maps a hash to a uniform float64 in [0, 1).
func hash01(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// FaultStats is a snapshot of a FaultTransport's injection counters.
type FaultStats struct {
	Dropped          uint64 // attempts dropped by link rules
	Duplicated       uint64 // attempts delivered twice
	Delayed          uint64 // attempts given extra latency
	PartitionDropped uint64 // attempts dropped by an active partition
	CrashDropped     uint64 // attempts dropped because an endpoint crashed
}

// faultCounters backs FaultStats with registry-attachable instruments.
type faultCounters struct {
	dropped   telemetry.Counter
	dup       telemetry.Counter
	delayed   telemetry.Counter
	partition telemetry.Counter
	crash     telemetry.Counter
}

func (c *faultCounters) snapshot() FaultStats {
	return FaultStats{
		Dropped:          c.dropped.Load(),
		Duplicated:       c.dup.Load(),
		Delayed:          c.delayed.Load(),
		PartitionDropped: c.partition.Load(),
		CrashDropped:     c.crash.Load(),
	}
}

// attemptKey identifies one logical message for attempt counting.
type attemptKey struct {
	from, to string
	kind     Kind
	iter     int
}

// crashGate is the activation latch of one scheduled crash.
type crashGate struct {
	atIter int
	once   sync.Once
	ch     chan struct{} // closed on activation
}

// FaultTransport applies a FaultPlan to an inner Transport. A zero plan
// is a pure passthrough: Send forwards directly to the inner transport
// and stays allocation-free, so a no-fault chaos run is bit- and
// cost-identical to running without the wrapper.
type FaultTransport struct {
	inner    Transport
	plan     FaultPlan
	pass     bool // plan injects nothing; skip all bookkeeping
	parts    []partitionSet
	gates    map[string]*crashGate
	counters faultCounters
	tracer   *tracing.Recorder
	flight   *tracing.Flight

	mu       sync.Mutex
	attempts map[attemptKey]int
	closed   bool

	done chan struct{}
	wg   sync.WaitGroup
}

type partitionSet struct {
	in       map[string]bool
	from, to int // [from, to); to 0 = forever
}

var _ Transport = (*FaultTransport)(nil)

// NewFaultTransport wraps inner with the plan. The wrapper owns inner:
// closing the wrapper closes the inner transport too.
func NewFaultTransport(inner Transport, plan *FaultPlan) (*FaultTransport, error) {
	f := &FaultTransport{
		inner:    inner,
		attempts: make(map[attemptKey]int),
		gates:    make(map[string]*crashGate),
		done:     make(chan struct{}),
	}
	if plan != nil {
		if err := plan.Validate(); err != nil {
			return nil, err
		}
		f.plan = *plan
	}
	f.pass = f.plan.zero()
	for _, pt := range f.plan.Partitions {
		in := make(map[string]bool, len(pt.Agents))
		for _, id := range pt.Agents {
			in[id] = true
		}
		f.parts = append(f.parts, partitionSet{in: in, from: pt.FromIter, to: pt.ToIter})
	}
	for _, c := range f.plan.Crashes {
		if _, dup := f.gates[c.Agent]; !dup {
			f.gates[c.Agent] = &crashGate{atIter: c.AtIter, ch: make(chan struct{})}
		}
	}
	return f, nil
}

// AttachFlight arms the fault plane's observability hooks: each crash
// gate's activation records a breadcrumb event and triggers one bounded
// flight-recorder dump, capturing the spans leading up to the fault.
// Call before the run starts; both arguments may be nil.
func (f *FaultTransport) AttachFlight(tr *tracing.Recorder, fl *tracing.Flight) {
	f.tracer = tr
	f.flight = fl
}

// Stats returns a snapshot of the injection counters.
func (f *FaultTransport) Stats() FaultStats { return f.counters.snapshot() }

// RegisterMetrics attaches the injection counters to reg.
func (f *FaultTransport) RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	reg.RegisterCounter("ufc_fault_dropped_total", "attempts dropped by link fault rules", &f.counters.dropped, labels...)
	reg.RegisterCounter("ufc_fault_duplicated_total", "attempts delivered twice", &f.counters.dup, labels...)
	reg.RegisterCounter("ufc_fault_delayed_total", "attempts given injected extra latency", &f.counters.delayed, labels...)
	reg.RegisterCounter("ufc_fault_partition_dropped_total", "attempts dropped by an active partition", &f.counters.partition, labels...)
	reg.RegisterCounter("ufc_fault_crash_dropped_total", "attempts dropped because an endpoint crashed", &f.counters.crash, labels...)
}

// Crashed reports whether the plan has activated a crash for id.
func (f *FaultTransport) Crashed(id string) bool {
	g, ok := f.gates[id]
	if !ok {
		return false
	}
	select {
	case <-g.ch:
		return true
	default:
		return false
	}
}

// Send implements Transport, applying the plan to the attempt. The
// zero-plan passthrough adds no allocation to the inner Send path; fault
// paths may allocate (they are, by definition, the slow path).
func (f *FaultTransport) Send(to string, m Message) error {
	if f.pass {
		return f.inner.Send(to, m)
	}
	if g := f.crashCheck(m.From, m.Iter); g != nil {
		f.counters.crash.Inc()
		return nil
	}
	if g := f.crashCheck(to, m.Iter); g != nil {
		f.counters.crash.Inc()
		return nil
	}
	for _, pt := range f.parts {
		if m.Iter >= pt.from && (pt.to == 0 || m.Iter < pt.to) && pt.in[m.From] != pt.in[to] {
			f.counters.partition.Inc()
			return nil
		}
	}
	rule := f.matchLink(m.From, to)
	if rule == nil {
		return f.inner.Send(to, m)
	}
	att := f.nextAttempt(m.From, to, m.Kind, m.Iter)
	if att < 0 {
		return ErrClosed
	}
	if rule.DropProb > 0 && hash01(faultHash(f.plan.Seed, 'd', m.From, to, m.Kind, m.Iter, att)) < rule.DropProb {
		f.counters.dropped.Inc()
		return nil
	}
	var delay time.Duration
	if rule.MaxExtraDelayMS > 0 {
		gate := rule.DelayProb == 0 ||
			hash01(faultHash(f.plan.Seed, 'g', m.From, to, m.Kind, m.Iter, att)) < rule.DelayProb
		if gate {
			frac := hash01(faultHash(f.plan.Seed, 't', m.From, to, m.Kind, m.Iter, att))
			delay = time.Duration(frac * rule.MaxExtraDelayMS * float64(time.Millisecond))
		}
	}
	dup := rule.DupProb > 0 && hash01(faultHash(f.plan.Seed, 'u', m.From, to, m.Kind, m.Iter, att)) < rule.DupProb
	if dup {
		f.counters.dup.Inc()
	}
	copies := 1
	if dup {
		copies = 2
	}
	if delay == 0 {
		var err error
		for k := 0; k < copies; k++ {
			err = f.inner.Send(to, m)
		}
		return err
	}
	f.counters.delayed.Inc()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	f.wg.Add(1)
	f.mu.Unlock()
	go func() {
		defer f.wg.Done()
		timer := time.NewTimer(delay)
		defer timer.Stop()
		select {
		case <-timer.C:
			for k := 0; k < copies; k++ {
				_ = f.inner.Send(to, m) //ufc:discard fault-delayed redelivery races teardown by design; the protocol's retry layer owns recovery
			}
		case <-f.done:
		}
	}()
	return nil
}

// crashCheck returns the gate of id if the message iteration activates or
// has activated its crash.
func (f *FaultTransport) crashCheck(id string, iter int) *crashGate {
	g, ok := f.gates[id]
	if !ok || iter < g.atIter {
		return nil
	}
	g.once.Do(func() {
		close(g.ch)
		// Crash activation is a fault-plan trigger: leave a breadcrumb and
		// capture the flight ring before degraded operation overwrites it.
		if idx, ok := agentIndex(id); ok {
			f.tracer.Event(tracing.Context{}, "fault.crash",
				tracing.I64("agent", int64(idx)), tracing.I64("iter", int64(iter)))
		} else {
			f.tracer.Event(tracing.Context{}, "fault.crash",
				tracing.I64("iter", int64(iter)), tracing.Attr{})
		}
		f.flight.Dump("fault-crash")
	})
	return g
}

func (f *FaultTransport) matchLink(from, to string) *LinkFault {
	for k := range f.plan.Links {
		l := &f.plan.Links[k]
		if matchAgent(l.From, from) && matchAgent(l.To, to) {
			return l
		}
	}
	return nil
}

// nextAttempt returns the 0-based attempt number of this transmission of
// the logical message, or -1 after Close.
func (f *FaultTransport) nextAttempt(from, to string, kind Kind, iter int) int {
	key := attemptKey{from: from, to: to, kind: kind, iter: iter}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return -1
	}
	att := f.attempts[key]
	f.attempts[key] = att + 1
	return att
}

// Inbox implements Transport. Inboxes of agents with a scheduled crash
// are forwarded through a goroutine that closes the returned channel when
// the crash activates, so the hosting worker observes the death.
func (f *FaultTransport) Inbox(id string) (<-chan Message, error) {
	in, err := f.inner.Inbox(id)
	if err != nil {
		return nil, err
	}
	g, ok := f.gates[id]
	if !ok {
		return in, nil
	}
	out := make(chan Message, 64)
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		close(out)
		return out, nil
	}
	f.wg.Add(1)
	f.mu.Unlock()
	go func() {
		defer f.wg.Done()
		defer close(out)
		for {
			select {
			case m, alive := <-in:
				if !alive {
					return
				}
				select {
				case out <- m:
				case <-g.ch:
					return
				case <-f.done:
					return
				}
			case <-g.ch:
				return
			case <-f.done:
				return
			}
		}
	}()
	return out, nil
}

// Close implements Transport; it tears down the wrapper's goroutines and
// closes the inner transport.
func (f *FaultTransport) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	close(f.done)
	err := f.inner.Close()
	f.wg.Wait()
	return err
}
