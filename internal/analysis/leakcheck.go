package analysis

import (
	"go/ast"
	"go/types"
)

// Leakcheck requires every goroutine started in non-test code to have a
// visible shutdown edge: something that lets the goroutine observe "stop"
// or lets the rest of the program observe "done". The simulator spins up a
// goroutine per agent per round and the control plane runs resident loops;
// a goroutine with no edge either leaks (blocked forever on a dead
// channel) or races teardown. A shutdown edge is any of:
//
//   - a channel operation (send, receive, range, close, or a select) —
//     the goroutine is coupled to a peer that can release it;
//   - a reference to a context.Context — cancellation is observable;
//   - a call to (*sync.WaitGroup).Done — completion is observable;
//   - a call to a function that itself has a shutdown edge (computed
//     transitively within the package, and across packages via the
//     shutdownFact exported when the callee's package was analyzed).
//
// Goroutines whose edge the analyzer cannot see (e.g. a read loop released
// by closing the connection from another goroutine) carry //ufc:leak <why>
// on the go statement.
var Leakcheck = &Analyzer{
	Name:      "leakcheck",
	Doc:       "flag go statements with no visible shutdown edge (channel, context, WaitGroup.Done)",
	FactTypes: []Fact{(*shutdownFact)(nil)},
	Run:       runLeakcheck,
}

// shutdownFact marks a function whose body contains a shutdown edge, so a
// goroutine body that delegates its loop to a helper — possibly in another
// package — still checks out.
type shutdownFact struct {
	Edge string `json:"edge"` // which edge: "channel op", "context", "WaitGroup.Done", or "calls <fn>"
}

func (*shutdownFact) AFact() {}

func runLeakcheck(pass *Pass) error {
	edges := pass.exportShutdownFacts()
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if pass.goHasShutdownEdge(gs, edges) || pass.Suppressed(gs, "leak") {
				return true
			}
			pass.Reportf(gs.Pos(), "goroutine has no visible shutdown edge (channel op, context, or WaitGroup.Done); it can leak or race teardown — add one, or justify with //ufc:leak if the edge is external (e.g. connection close)")
			return true
		})
	}
	return nil
}

// exportShutdownFacts computes the transitive has-a-shutdown-edge set over
// the package's functions, exports a shutdownFact for each member, and
// returns the local edge descriptions.
func (p *Pass) exportShutdownFacts() map[*types.Func]*shutdownFact {
	cg := p.Callgraph()
	what := make(map[*types.Func]*shutdownFact)
	seed := func(fn *types.Func, decl *ast.FuncDecl) bool {
		if p.IsTestFile(decl.Pos()) {
			return false
		}
		if edge := p.directShutdownEdge(decl.Body, decl.Type); edge != "" {
			what[fn] = &shutdownFact{Edge: edge}
			return true
		}
		return false
	}
	inSet := func(callee *types.Func) bool {
		var f shutdownFact
		return p.ImportObjectFact(callee, &f)
	}
	members := cg.Fixpoint(seed, inSet)
	for fn := range members {
		f := what[fn]
		if f == nil {
			for _, callee := range cg.Callees(fn) {
				var imported shutdownFact
				if members[callee] || p.ImportObjectFact(callee, &imported) {
					f = &shutdownFact{Edge: "calls " + callee.Name()}
					break
				}
			}
			if f == nil {
				f = &shutdownFact{Edge: "transitive"}
			}
			what[fn] = f
		}
		p.ExportObjectFact(fn, f)
	}
	return what
}

// directShutdownEdge scans a function body (and its parameter list, for
// context parameters) for a locally-visible shutdown edge, returning a
// short description or "".
func (p *Pass) directShutdownEdge(body *ast.BlockStmt, ftype *ast.FuncType) string {
	if ftype != nil && ftype.Params != nil {
		for _, field := range ftype.Params.List {
			if t := p.TypesInfo.TypeOf(field.Type); t != nil && isContextType(t) {
				return "context parameter"
			}
		}
	}
	if body == nil {
		return ""
	}
	edge := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if edge != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			edge = "channel op"
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				edge = "channel op"
			}
		case *ast.RangeStmt:
			if t := p.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					edge = "channel op"
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" &&
				p.TypesInfo.Uses[id] == types.Universe.Lookup("close") {
				edge = "channel op"
				return false
			}
			if f := p.funcOf(n); f != nil {
				sig, _ := f.Type().(*types.Signature)
				if f.Name() == "Done" && sig != nil && sig.Recv() != nil && namedTypeIs(sig.Recv().Type(), "sync", "WaitGroup") {
					edge = "WaitGroup.Done"
					return false
				}
			}
		case *ast.Ident:
			if t := p.TypesInfo.TypeOf(n); t != nil && isContextType(t) {
				edge = "context"
			}
		}
		return edge == ""
	})
	return edge
}

// goHasShutdownEdge reports whether the go statement's spawned function has
// a visible shutdown edge: inline literal bodies are scanned directly
// (including context-typed values captured or passed), named callees
// resolve through the local edge set or an imported shutdownFact.
func (p *Pass) goHasShutdownEdge(gs *ast.GoStmt, edges map[*types.Func]*shutdownFact) bool {
	// Arguments passed to the goroutine count: `go run(ctx)` hands the
	// callee a cancellation signal even if we cannot see run's body.
	for _, arg := range gs.Call.Args {
		if t := p.TypesInfo.TypeOf(arg); t != nil && isContextType(t) {
			return true
		}
	}
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return p.directShutdownEdge(fun.Body, fun.Type) != "" || p.litCallsEdgeFunc(fun, edges)
	default:
		callee := p.funcOf(gs.Call)
		if callee == nil {
			return false // dynamic call: cannot prove an edge
		}
		if _, ok := edges[callee]; ok {
			return true
		}
		var f shutdownFact
		return p.ImportObjectFact(callee, &f)
	}
}

// litCallsEdgeFunc reports whether the goroutine literal calls any function
// known (locally or by fact) to contain a shutdown edge.
func (p *Pass) litCallsEdgeFunc(lit *ast.FuncLit, edges map[*types.Func]*shutdownFact) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := p.funcOf(call)
		if callee == nil {
			return true
		}
		if _, ok := edges[callee]; ok {
			found = true
			return false
		}
		var f shutdownFact
		if p.ImportObjectFact(callee, &f) {
			found = true
			return false
		}
		return true
	})
	return found
}
