package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata/detrand", analysis.Detrand)
}
