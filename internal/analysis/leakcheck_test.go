package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestLeakcheck(t *testing.T) {
	analysistest.Run(t, "testdata/leakcheck", analysis.Leakcheck)
}
