package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// A Fact is a serializable datum an analyzer computes about a package-level
// object (or a whole package) and exports for later passes over packages
// that import it. Facts are how the analyzers see across package
// boundaries: hotalloc exports "this function allocates", ctxflow exports
// "this function blocks", leakcheck exports "this function has a shutdown
// edge", and atomicpub exports "this function publishes parameter k via an
// atomic pointer" — so a caller-side check does not stop at the annotation
// boundary of its own package.
//
// A Fact implementation must be a pointer to a JSON-serializable struct
// (exported fields); the struct type name identifies it in the serialized
// stream. Register fact types on Analyzer.FactTypes.
type Fact interface {
	// AFact is a marker method.
	AFact()
}

// factKey addresses one fact: the exporting analyzer plus the target's
// stable cross-package key (ObjectKey for objects, the import path for
// package facts).
type factKey struct {
	analyzer string
	target   string
}

// FactStore accumulates facts across an analysis session. The standalone
// driver shares one store across all packages (analyzed in dependency
// order, so exporters always run before importers); the vet-tool driver
// seeds a fresh store from the dependencies' serialized fact files
// (vetConfig.PackageVetx) and serializes the merged store to VetxOutput
// for dependents.
type FactStore struct {
	types map[factKey]reflect.Type // analyzer+type name → fact struct type
	obj   map[factKey]Fact
	pkg   map[factKey]Fact
}

// NewFactStore returns an empty store that can decode the fact types
// declared by the given analyzers.
func NewFactStore(analyzers []*Analyzer) *FactStore {
	s := &FactStore{
		types: make(map[factKey]reflect.Type),
		obj:   make(map[factKey]Fact),
		pkg:   make(map[factKey]Fact),
	}
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			t := reflect.TypeOf(f)
			if t == nil || t.Kind() != reflect.Pointer || t.Elem().Kind() != reflect.Struct {
				panic(fmt.Sprintf("analysis: %s: fact type %T must be a pointer to a struct", a.Name, f))
			}
			s.types[factKey{a.Name, t.Elem().Name()}] = t
		}
	}
	return s
}

// ObjectKey returns the stable cross-package key of a package-level object:
// a *types.Func keys by its full name (which embeds the package path and
// any receiver, e.g. "(*repro/internal/controlplane.Router).Publish");
// anything else keys by path-qualified name.
func ObjectKey(obj types.Object) string {
	if f, ok := obj.(*types.Func); ok {
		return f.FullName()
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

// copyFact copies src's pointee into dst (same concrete type required).
func copyFact(dst, src Fact) bool {
	dv, sv := reflect.ValueOf(dst), reflect.ValueOf(src)
	if dv.Type() != sv.Type() {
		return false
	}
	dv.Elem().Set(sv.Elem())
	return true
}

// ExportObjectFact associates fact with obj for this and later passes.
// obj must belong to the package under analysis.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.Facts == nil || obj == nil {
		return
	}
	p.Facts.obj[factKey{p.Analyzer.Name, ObjectKey(obj)}] = fact
}

// ImportObjectFact copies the fact of the given type previously exported
// for obj (by this analyzer, in this or an already-analyzed package) into
// fact, reporting whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.Facts == nil || obj == nil {
		return false
	}
	stored, ok := p.Facts.obj[factKey{p.Analyzer.Name, ObjectKey(obj)}]
	return ok && copyFact(fact, stored)
}

// ExportPackageFact associates fact with the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.Facts == nil {
		return
	}
	p.Facts.pkg[factKey{p.Analyzer.Name, p.Pkg.Path()}] = fact
}

// ImportPackageFact copies the fact previously exported for pkg into fact,
// reporting whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if p.Facts == nil || pkg == nil {
		return false
	}
	stored, ok := p.Facts.pkg[factKey{p.Analyzer.Name, pkg.Path()}]
	return ok && copyFact(fact, stored)
}

// ---------------------------------------------------------------------------
// Serialization. The wire form is a single JSON document so fact files are
// inspectable (`ufclint -facts -`) and deterministic (records are sorted),
// which keeps them stable as cmd/go action-cache outputs.

type factRecord struct {
	Analyzer string          `json:"analyzer"`
	Kind     string          `json:"kind"` // "object" or "package"
	Target   string          `json:"target"`
	Type     string          `json:"type"`
	Data     json.RawMessage `json:"data"`
}

type factsFile struct {
	Version int          `json:"version"`
	Facts   []factRecord `json:"facts"`
}

const factsVersion = 1

// Encode serializes every fact in the store, sorted for determinism.
func (s *FactStore) Encode() ([]byte, error) {
	file := factsFile{Version: factsVersion}
	add := func(kind string, m map[factKey]Fact) error {
		for k, f := range m {
			data, err := json.Marshal(f)
			if err != nil {
				return fmt.Errorf("analysis: encode %s fact %s/%s: %w", kind, k.analyzer, k.target, err)
			}
			file.Facts = append(file.Facts, factRecord{
				Analyzer: k.analyzer,
				Kind:     kind,
				Target:   k.target,
				Type:     reflect.TypeOf(f).Elem().Name(),
				Data:     data,
			})
		}
		return nil
	}
	if err := add("object", s.obj); err != nil {
		return nil, err
	}
	if err := add("package", s.pkg); err != nil {
		return nil, err
	}
	sort.Slice(file.Facts, func(i, j int) bool {
		a, b := file.Facts[i], file.Facts[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		return a.Type < b.Type
	})
	return json.MarshalIndent(&file, "", "  ")
}

// Decode merges a serialized fact file into the store. Records whose
// analyzer or fact type is unknown are skipped (a newer tool reading an
// older cache, or vice versa); input that is not a fact file at all is
// ignored entirely so stale stub vetx files cannot fail the run.
func (s *FactStore) Decode(data []byte) error {
	var file factsFile
	if err := json.Unmarshal(data, &file); err != nil {
		return nil //nolint:nilerr // tolerate foreign/stale vetx content by design
	}
	if file.Version != factsVersion {
		return nil
	}
	for _, rec := range file.Facts {
		t, ok := s.types[factKey{rec.Analyzer, rec.Type}]
		if !ok {
			continue
		}
		fv := reflect.New(t.Elem())
		if err := json.Unmarshal(rec.Data, fv.Interface()); err != nil {
			return fmt.Errorf("analysis: decode %s fact for %s: %w", rec.Type, rec.Target, err)
		}
		fact, ok := fv.Interface().(Fact)
		if !ok {
			continue
		}
		key := factKey{rec.Analyzer, rec.Target}
		switch rec.Kind {
		case "object":
			s.obj[key] = fact
		case "package":
			s.pkg[key] = fact
		}
	}
	return nil
}

// Len reports the number of facts in the store (tests and -facts tooling).
func (s *FactStore) Len() int { return len(s.obj) + len(s.pkg) }
