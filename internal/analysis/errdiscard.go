package analysis

import (
	"go/ast"
	"go/types"
)

// Errdiscard flags silently dropped error returns from transport and
// file/network operations outside tests:
//
//   - a statement-level call (including `defer x.Close()`) whose error
//     result vanishes entirely;
//   - a blank assignment `_ = x.Close()` without a //ufc:discard
//     justification comment on the same or preceding line.
//
// Only failure-prone operations are watched (Send, Resend, Close, Flush,
// Sync, Shutdown, Write*, Set*Deadline); receivers that cannot fail by contract
// (strings.Builder, bytes.Buffer, hash.Hash) are exempt. The point is not
// ritual error wrapping — it is that a dropped Transport.Send is a
// protocol-level message loss and a dropped Close can swallow the only
// report of a failed flush, so every drop must be a visible, justified
// decision.
var Errdiscard = &Analyzer{
	Name: "errdiscard",
	Doc:  "flag silently dropped errors from transport and file/network operations outside tests",
	Run:  runErrdiscard,
}

// watchedCallees are the method/function names whose error results must not
// be dropped silently.
var watchedCallees = map[string]bool{
	"Send":             true,
	"Resend":           true,
	"Close":            true,
	"Flush":            true,
	"Sync":             true,
	"Shutdown":         true,
	"Write":            true,
	"WriteString":      true,
	"WriteByte":        true,
	"WriteRune":        true,
	"SetDeadline":      true,
	"SetReadDeadline":  true,
	"SetWriteDeadline": true,
}

// neverFailPkgs define receiver types whose watched methods are documented
// to always return a nil error.
var neverFailPkgs = map[string]bool{"strings": true, "bytes": true, "hash": true}

func runErrdiscard(pass *Pass) error {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					pass.checkDroppedCall(call, "silently discards")
				}
			case *ast.DeferStmt:
				// Keep recursing: a deferred closure body may itself hold
				// blank discards.
				pass.checkDroppedCall(n.Call, "defers and silently discards")
			case *ast.GoStmt:
				pass.checkDroppedCall(n.Call, "silently discards (in a goroutine)")
			case *ast.AssignStmt:
				pass.checkBlankDiscard(n)
			}
			return true
		})
	}
	return nil
}

// watchedErrorCall reports whether the call is a watched operation whose
// result set includes an error.
func (p *Pass) watchedErrorCall(call *ast.CallExpr) bool {
	f := p.funcOf(call)
	if f == nil || !watchedCallees[f.Name()] {
		return false
	}
	if f.Pkg() != nil && neverFailPkgs[f.Pkg().Path()] {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return true
		}
	}
	return false
}

func (p *Pass) checkDroppedCall(call *ast.CallExpr, verb string) {
	if !p.watchedErrorCall(call) {
		return
	}
	f := p.funcOf(call)
	p.Reportf(call.Pos(), "%s the error returned by %s; handle it, propagate it, or make the drop explicit with `_ = ...` plus a //ufc:discard justification", verb, f.Name())
}

// checkBlankDiscard flags `_ = x.Close()` (all-blank assignments of a
// watched call) lacking a //ufc:discard justification.
func (p *Pass) checkBlankDiscard(as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || !p.watchedErrorCall(call) {
		return
	}
	for _, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name != "_" {
			return // some result is kept; assume it is the error being handled
		}
	}
	if p.Suppressed(as, "discard") {
		return
	}
	f := p.funcOf(call)
	p.Reportf(as.Pos(), "blank discard of the error returned by %s needs a //ufc:discard justification on this line or the line above", f.Name())
}
