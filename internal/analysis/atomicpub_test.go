package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestAtomicpub(t *testing.T) {
	analysistest.Run(t, "testdata/atomicpub", analysis.Atomicpub)
}
