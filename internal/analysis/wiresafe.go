package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// Wiresafe checks the binary wire layer (package distsim) for the two
// classes of framing bug the PR 2 codec is exposed to:
//
//   - decode-side functions that index or slice a []byte parameter without
//     any length validation in the function body. A truncated or hostile
//     frame must fail with ErrFrameTruncated, not a bounds panic, so every
//     raw payload access needs a len() guard (or must go through the
//     bounds-checked byteCursor);
//
//   - wire constants (frameKind*/frameFlag*, and the handshake's
//     hsMagic*/hsStatus*) referenced asymmetrically: a kind, flag, magic
//     or status that the encode side (append*/encode*/write*) emits but
//     the decode side (decode*/parse*/peek*/read*) never interprets — or
//     vice versa — is a silent protocol skew between peers.
var Wiresafe = &Analyzer{
	Name: "wiresafe",
	Doc:  "flag unvalidated payload reads and encode/decode-asymmetric wire constants in the distsim wire layer",
	Run:  runWiresafe,
}

var (
	wireConstRe  = regexp.MustCompile(`^(frame(Kind|Flag)|hs(Magic|Status))`)
	encodeSideRe = regexp.MustCompile(`^(append|encode|write|marshal|Append|Encode|Write|Marshal)`)
	decodeSideRe = regexp.MustCompile(`^(decode|parse|peek|read|split|unmarshal|Decode|Parse|Peek|Read|Split|Unmarshal)`)
)

func runWiresafe(pass *Pass) error {
	if pass.Pkg.Name() != "distsim" {
		return nil
	}
	// encUse/decUse record, per wire constant, one position on each side.
	type sides struct {
		enc, dec bool
		decl     *ast.Ident
	}
	consts := make(map[types.Object]*sides)

	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if wireConstRe.MatchString(name.Name) {
							if obj := pass.TypesInfo.Defs[name]; obj != nil {
								consts[obj] = &sides{decl: name}
							}
						}
					}
				}
			case *ast.FuncDecl:
				pass.checkPayloadReads(d)
			}
		}
	}
	if len(consts) == 0 {
		return nil
	}
	// Classify every use of each wire constant by its enclosing function.
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			enc := encodeSideRe.MatchString(fd.Name.Name)
			dec := decodeSideRe.MatchString(fd.Name.Name)
			if !enc && !dec {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				if s, ok := consts[pass.TypesInfo.Uses[id]]; ok {
					s.enc = s.enc || enc
					s.dec = s.dec || dec
				}
				return true
			})
		}
	}
	for _, s := range consts {
		if s.enc == s.dec { // used on both sides, or on neither (dead: vet's
			continue // unused check owns that case)
		}
		side, missing := "encode", "decode"
		if s.dec {
			side, missing = "decode", "encode"
		}
		if pass.Suppressed(s.decl, "unvalidated") {
			continue
		}
		pass.Reportf(s.decl.Pos(), "wire constant %s is used on the %s side but never on the %s side; peers will disagree on the frame format", s.decl.Name, side, missing)
	}
	return nil
}

// checkPayloadReads flags decode-side functions that index/slice a []byte
// parameter without a len() guard anywhere in the body.
func (p *Pass) checkPayloadReads(fd *ast.FuncDecl) {
	if fd.Body == nil || !decodeSideRe.MatchString(fd.Name.Name) {
		return
	}
	// Collect []byte parameter objects.
	params := make(map[types.Object]bool)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := p.TypesInfo.Defs[name]; obj != nil && isByteSlice(obj.Type()) {
					params[obj] = true
				}
			}
		}
	}
	if len(params) == 0 {
		return
	}
	var raw ast.Node // first unguarded-candidate access
	hasLenGuard := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && params[p.TypesInfo.Uses[id]] && raw == nil {
				raw = n
			}
		case *ast.SliceExpr:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && params[p.TypesInfo.Uses[id]] && raw == nil {
				raw = n
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "len" && p.TypesInfo.Uses[id] == types.Universe.Lookup("len") {
				if len(n.Args) == 1 {
					if arg, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok && params[p.TypesInfo.Uses[arg]] {
						hasLenGuard = true
					}
				}
			}
		}
		return true
	})
	if raw != nil && !hasLenGuard && !p.Suppressed(raw, "unvalidated") {
		p.Reportf(raw.Pos(), "%s reads a []byte payload without validating its length; a truncated frame must fail with ErrFrameTruncated, not a bounds panic", fd.Name.Name)
	}
}
