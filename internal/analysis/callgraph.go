package analysis

import (
	"go/ast"
	"go/types"
)

// Callgraph is a lightweight static call graph of the package under
// analysis: every declared function maps to its syntax and to the
// functions it calls directly (identifier and selector calls only —
// dynamic calls through function values or interfaces resolve to the
// interface method, not an implementation). Analyzers combine it with
// imported facts to follow calls across package boundaries: walk local
// edges here, and when an edge leaves the package, consult the fact the
// callee's own analysis exported.
type Callgraph struct {
	decls   map[*types.Func]*ast.FuncDecl
	callees map[*types.Func][]*types.Func
}

// Callgraph builds (once per pass, cached) the package's call graph.
func (p *Pass) Callgraph() *Callgraph {
	if p.callgraph != nil {
		return p.callgraph
	}
	cg := &Callgraph{
		decls:   make(map[*types.Func]*ast.FuncDecl),
		callees: make(map[*types.Func][]*types.Func),
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := p.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			cg.decls[obj] = fn
			seen := make(map[*types.Func]bool)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := p.funcOf(call); callee != nil && !seen[callee] {
					seen[callee] = true
					cg.callees[obj] = append(cg.callees[obj], callee)
				}
				return true
			})
		}
	}
	p.callgraph = cg
	return cg
}

// Decl returns the declaration of fn if it is declared (with a body) in
// the analyzed package, else nil.
func (cg *Callgraph) Decl(fn *types.Func) *ast.FuncDecl { return cg.decls[fn] }

// Callees returns the functions fn calls directly (deduplicated, in first
// call-site order).
func (cg *Callgraph) Callees(fn *types.Func) []*types.Func { return cg.callees[fn] }

// Fixpoint repeatedly applies mark to every function declared in the
// package until no call converges new members into the set: a function
// joins when seed reports true for it, or when any direct callee is
// already a member. It is the shared engine behind the transitive
// "blocks" / "has shutdown edge" fact computations. The final membership
// set is returned.
func (cg *Callgraph) Fixpoint(seed func(fn *types.Func, decl *ast.FuncDecl) bool, inSet func(callee *types.Func) bool) map[*types.Func]bool {
	members := make(map[*types.Func]bool)
	for fn, decl := range cg.decls {
		if seed(fn, decl) {
			members[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn := range cg.decls {
			if members[fn] {
				continue
			}
			for _, callee := range cg.callees[fn] {
				if members[callee] || inSet(callee) {
					members[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return members
}
