package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// detPackages are the determinism-critical packages: every agent of the
// distributed ADM-G protocol must compute the same float trajectory, so
// nothing in these packages may depend on map iteration order, the global
// math/rand source, or the wall clock.
var detPackages = map[string]bool{
	"admm":    true,
	"trace":   true,
	"carbon":  true,
	"distsim": true,
	"core":    true,
}

// Detrand flags nondeterminism sources in determinism-critical packages:
//
//   - ranging over a map, unless the body is provably order-insensitive
//     (pure key collection or keyed transfer with no function calls) or the
//     site carries a //ufc:nondet justification;
//   - calls to the process-global math/rand functions (rand.Intn,
//     rand.Float64, ...), which are unseeded and shared — every RNG draw
//     must come from an explicitly seeded *rand.Rand;
//   - time.Now feeding computation (deadline plumbing via Set*Deadline is
//     exempt).
//
// This is the compile-time form of the PR 1 cross-process reproducibility
// fix: GenMixes drew from its RNG while ranging over the base fuel-mix map,
// so each process consumed the draws in a different per-process iteration
// order and solved a different problem.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "flag map-order, global-RNG and wall-clock nondeterminism in determinism-critical packages",
	Run:  runDetrand,
}

func runDetrand(pass *Pass) error {
	if !detPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		WalkStack(file, func(stack []ast.Node, n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				pass.checkMapRange(n)
			case *ast.CallExpr:
				pass.checkGlobalRand(n)
				pass.checkWallClock(n, stack)
			}
			return true
		})
	}
	return nil
}

// checkMapRange flags `for ... := range m` over a map unless the body is
// order-insensitive or the site is justified with //ufc:nondet.
func (p *Pass) checkMapRange(rs *ast.RangeStmt) {
	t := p.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if p.orderInsensitiveBody(rs) || p.Suppressed(rs, "nondet") {
		return
	}
	p.Reportf(rs.Pos(), "range over map has nondeterministic iteration order that can reach numeric state; collect and sort the keys first (see carbon.Mix.Fuels) or justify with //ufc:nondet")
}

// orderInsensitiveBody recognizes the two loop shapes whose result cannot
// depend on iteration order:
//
//	for k := range m { keys = append(keys, k) }   // key collection (sorted after)
//	for k, v := range m { out[k] = <pure expr> }  // keyed transfer
//
// Any function or method call in the body (an RNG draw, an accumulating
// method, I/O) disqualifies it — calls can carry order-dependent state even
// when the assignment targets look independent.
func (p *Pass) orderInsensitiveBody(rs *ast.RangeStmt) bool {
	key, _ := rs.Key.(*ast.Ident)
	if key == nil || key.Name == "_" {
		return false
	}
	if len(rs.Body.List) == 0 {
		return true
	}
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, rhs := as.Lhs[0], as.Rhs[0]
		switch {
		case p.isSelfAppendOfKey(lhs, rhs, key):
			// keys = append(keys, k)
		case p.isKeyedIndex(lhs, key) && !containsCall(rhs):
			// out[k] = <call-free expression>
		default:
			return false
		}
	}
	return true
}

// isSelfAppendOfKey matches `x = append(x, key)`.
func (p *Pass) isSelfAppendOfKey(lhs, rhs ast.Expr, key *ast.Ident) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || call.Ellipsis != token.NoPos {
		return false
	}
	if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fn.Name != "append" || p.TypesInfo.Uses[fn] != types.Universe.Lookup("append") {
		return false
	}
	arg, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	if !ok || p.TypesInfo.ObjectOf(arg) != p.TypesInfo.ObjectOf(key) {
		return false
	}
	return p.exprEqual(lhs, call.Args[0])
}

// isKeyedIndex matches an index expression whose index is exactly the range
// key, e.g. out[k].
func (p *Pass) isKeyedIndex(lhs ast.Expr, key *ast.Ident) bool {
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(ix.Index).(*ast.Ident)
	return ok && p.TypesInfo.ObjectOf(id) == p.TypesInfo.ObjectOf(key)
}

// containsCall reports whether the expression tree contains any call other
// than the len/cap builtins and type conversions.
func containsCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
			return true
		}
		found = true
		return false
	})
	return found
}

// globalRandAllowed are math/rand package-level functions that do not draw
// from (or reseed) the shared source.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// checkGlobalRand flags calls to math/rand package-level draw functions.
// Methods on an explicitly constructed *rand.Rand are fine — those carry
// their own seeded source.
func (p *Pass) checkGlobalRand(call *ast.CallExpr) {
	f := p.funcOf(call)
	if f == nil || f.Pkg() == nil {
		return
	}
	path := f.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return
	}
	if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return
	}
	if globalRandAllowed[f.Name()] {
		return
	}
	p.Reportf(call.Pos(), "rand.%s draws from the process-global math/rand source; use a seeded *rand.Rand (rand.New(rand.NewSource(seed))) so every process computes the same trajectory", f.Name())
}

// checkWallClock flags time.Now in determinism-critical code. A time.Now
// whose result flows directly into a Set*Deadline call is I/O plumbing,
// not numeric state, and is exempt.
func (p *Pass) checkWallClock(call *ast.CallExpr, stack []ast.Node) {
	if !p.isPackageLevelCall(call, "time", "Now") {
		return
	}
	for _, anc := range stack {
		c, ok := anc.(*ast.CallExpr)
		if !ok {
			continue
		}
		if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
				return
			}
		}
	}
	if p.Suppressed(call, "nondet") {
		return
	}
	p.Reportf(call.Pos(), "time.Now in a determinism-critical package: wall-clock values must not feed computation; pass timestamps in explicitly or justify with //ufc:nondet")
}
