package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestErrdiscard(t *testing.T) {
	analysistest.Run(t, "testdata/errdiscard", analysis.Errdiscard)
}
