// Package analysis implements ufclint's custom static analyzers: compile-time
// enforcement of the solver invariants that previously lived only in runtime
// tests — bit-identical distributed vs. sequential ADM-G iterates
// (determinism), allocation-free hot loops, wire-format safety, and explicit
// error handling on transport and file operations.
//
// The package mirrors the golang.org/x/tools/go/analysis API shape (Analyzer,
// Pass, Diagnostic) but is built on the standard library only, since this
// module carries no external dependencies. The cmd/ufclint driver runs the
// analyzers either standalone over `go list` output or as a `go vet -vettool`
// unit checker.
//
// Analyzers may export serializable Facts about package-level objects (see
// facts.go); both drivers replay dependencies' facts before analyzing a
// package, so checks follow calls across package boundaries instead of
// stopping at an annotation boundary.
//
// Source annotations understood by the analyzers:
//
//	//ufc:hotpath      (function doc) — hotalloc checks this function for
//	                   allocation-causing constructs.
//	//ufc:nondet <why> (same or preceding line) — suppresses a detrand
//	                   finding with a justification.
//	//ufc:discard <why> (same or preceding line) — justifies a `_ =` error
//	                   discard for errdiscard.
//	//ufc:unvalidated <why> (same or preceding line) — suppresses a wiresafe
//	                   finding with a justification.
//	//ufc:alloc <why>  (same or preceding line) — suppresses a hotalloc
//	                   allocating-callee finding with a justification.
//	//ufc:ctx <why>    (same or preceding line) — suppresses a ctxflow
//	                   finding (a deliberate context.Background or an
//	                   uncancellable blocking call) with a justification.
//	//ufc:pub <why>    (same or preceding line) — suppresses an atomicpub
//	                   finding with a justification.
//	//ufc:leak <why>   (same or preceding line) — suppresses a leakcheck
//	                   finding for a goroutine whose shutdown edge the
//	                   analyzer cannot see (e.g. a connection close).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is a one-paragraph description of what it enforces.
	Doc string
	// FactTypes lists the Fact implementations (pointers to zero structs)
	// this analyzer exports or imports. Only registered types survive
	// serialization across driver invocations.
	FactTypes []Fact
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts carries the session's cross-package facts: exports from
	// already-analyzed dependencies are visible, and this pass's exports
	// become visible to dependents. Nil disables facts (fixture tests of
	// purely local checks).
	Facts *FactStore

	report func(Diagnostic)

	// directives caches per-file line → "//ufc:<name> ..." comments.
	directives map[*ast.File]map[int]string
	// callgraph caches the package call graph across an analyzer's checks.
	callgraph *Callgraph
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// capture runs fn with reporting redirected into the returned slice —
// how fact computations reuse the diagnostic checks without emitting
// their findings.
func (p *Pass) capture(fn func()) []Diagnostic {
	old := p.report
	var got []Diagnostic
	p.report = func(d Diagnostic) { got = append(got, d) }
	fn()
	p.report = old
	return got
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// Invariants are enforced on production code; tests may freely range over
// maps, drop errors, and allocate.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// FileOf returns the *ast.File whose range covers pos, or nil.
func (p *Pass) FileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// Suppressed reports whether node's line (or the line directly above it)
// carries a //ufc:<directive> comment with a non-empty justification.
func (p *Pass) Suppressed(node ast.Node, directive string) bool {
	file := p.FileOf(node.Pos())
	if file == nil {
		return false
	}
	if p.directives == nil {
		p.directives = make(map[*ast.File]map[int]string)
	}
	lines, ok := p.directives[file]
	if !ok {
		lines = make(map[int]string)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if rest, ok := strings.CutPrefix(c.Text, "//ufc:"); ok {
					lines[p.Fset.Position(c.Pos()).Line] = rest
				}
			}
		}
		p.directives[file] = lines
	}
	line := p.Fset.Position(node.Pos()).Line
	for _, l := range [2]int{line, line - 1} {
		if rest, ok := lines[l]; ok {
			name, why, _ := strings.Cut(rest, " ")
			if name == directive && strings.TrimSpace(why) != "" {
				return true
			}
		}
	}
	return false
}

// FuncHasDirective reports whether the function's doc comment contains the
// //ufc:<directive> marker (e.g. "hotpath").
func FuncHasDirective(fn *ast.FuncDecl, directive string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if rest, ok := strings.CutPrefix(c.Text, "//ufc:"); ok {
			name, _, _ := strings.Cut(rest, " ")
			if name == directive {
				return true
			}
		}
	}
	return false
}

// WalkStack walks the tree rooted at root, calling fn with the ancestor
// stack (root first, parent of n last) before visiting each node. If fn
// returns false the subtree under n is skipped.
func WalkStack(root ast.Node, fn func(stack []ast.Node, n ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := fn(stack, n)
		stack = append(stack, n)
		if !ok {
			// Still pop: Inspect sends the nil for this node only if we
			// return true, so unwind manually by returning false after
			// removing the just-pushed frame.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// funcOf resolves a call's callee to a *types.Func (package-level function
// or method), or nil.
func (p *Pass) funcOf(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := p.TypesInfo.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := p.TypesInfo.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// calleeFromPackage reports whether the call resolves to a function or
// method defined in the package with the given import path.
func (p *Pass) calleeFromPackage(call *ast.CallExpr, path string) bool {
	f := p.funcOf(call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == path
}

// isPackageLevelCall reports whether the call is pkgpath.name(...), i.e. a
// package-level function (no receiver).
func (p *Pass) isPackageLevelCall(call *ast.CallExpr, path, name string) bool {
	f := p.funcOf(call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != path || f.Name() != name {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// exprEqual reports whether two expressions denote the same variable or
// field chain (identifier identity via types.Object, selector chains
// compared recursively). It is intentionally conservative: unknown forms
// compare unequal.
func (p *Pass) exprEqual(a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch ea := a.(type) {
	case *ast.Ident:
		eb, ok := b.(*ast.Ident)
		if !ok {
			return false
		}
		oa := p.TypesInfo.ObjectOf(ea)
		ob := p.TypesInfo.ObjectOf(eb)
		return oa != nil && oa == ob
	case *ast.SelectorExpr:
		eb, ok := b.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		return ea.Sel.Name == eb.Sel.Name && p.exprEqual(ea.X, eb.X)
	case *ast.StarExpr:
		eb, ok := b.(*ast.StarExpr)
		if !ok {
			return false
		}
		return p.exprEqual(ea.X, eb.X)
	case *ast.IndexExpr:
		eb, ok := b.(*ast.IndexExpr)
		if !ok {
			return false
		}
		return p.exprEqual(ea.X, eb.X) && p.exprEqual(ea.Index, eb.Index)
	}
	return false
}

// isByteSlice reports whether t's underlying type is []byte.
func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// Run applies the analyzers to one type-checked package and returns the
// findings in source order. facts may be nil (no cross-package
// propagation); when non-nil it must have been built over a superset of
// the analyzers so exported facts can be re-serialized.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, facts *FactStore) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Facts:     facts,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	return diags, nil
}
