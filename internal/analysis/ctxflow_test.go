package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata/ctxflow", analysis.Ctxflow)
}
