package analysis

import (
	"bytes"
	"testing"
)

// TestFactStoreRoundTrip checks that facts survive Encode → Decode, that
// encoding is deterministic, and that foreign vetx content is tolerated.
func TestFactStoreRoundTrip(t *testing.T) {
	s := NewFactStore(All())
	s.obj[factKey{"hotalloc", "m/dep.Format"}] = &allocatesFact{What: "fmt.Sprintf allocates"}
	s.obj[factKey{"ctxflow", "m/dep.SlowPoll"}] = &blocksFact{What: "time.Sleep"}
	s.obj[factKey{"leakcheck", "m/dep.Pump"}] = &shutdownFact{Edge: "channel op"}
	s.obj[factKey{"atomicpub", "m/dep.Publish"}] = &publishesFact{Params: []int{1}}
	s.pkg[factKey{"detrand", "m/dep"}] = &allocatesFact{What: "package fact reuse"}

	data, err := s.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	data2, err := s.Encode()
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("Encode is not deterministic")
	}

	d := NewFactStore(All())
	if err := d.Decode(data); err != nil {
		t.Fatalf("decode: %v", err)
	}
	got, ok := d.obj[factKey{"hotalloc", "m/dep.Format"}].(*allocatesFact)
	if !ok || got.What != "fmt.Sprintf allocates" {
		t.Fatalf("allocatesFact did not round-trip: %#v", d.obj[factKey{"hotalloc", "m/dep.Format"}])
	}
	pub, ok := d.obj[factKey{"atomicpub", "m/dep.Publish"}].(*publishesFact)
	if !ok || len(pub.Params) != 1 || pub.Params[0] != 1 {
		t.Fatalf("publishesFact did not round-trip: %#v", pub)
	}
	// detrand declares no fact types, so its record must be dropped — the
	// unknown-type tolerance that keeps caches from different tool versions
	// from failing the run. Everything else survives.
	if _, ok := d.pkg[factKey{"detrand", "m/dep"}]; ok {
		t.Fatal("record with unregistered analyzer/type survived decode")
	}
	if want := s.Len() - 1; d.Len() != want {
		t.Fatalf("decoded store has %d facts, want %d", d.Len(), want)
	}
}

// TestFactStoreTolerance checks that stale or foreign vetx content — other
// vet tools write arbitrary bytes — decodes to an empty store, not an
// error.
func TestFactStoreTolerance(t *testing.T) {
	for _, input := range []string{
		"ufclint: no facts\n", // the 1.x stub
		"",                    // empty file
		"{\"version\":999}",   // future version
		"not json at all",
	} {
		s := NewFactStore(All())
		if err := s.Decode([]byte(input)); err != nil {
			t.Errorf("Decode(%q) = %v, want nil", input, err)
		}
		if s.Len() != 0 {
			t.Errorf("Decode(%q) populated the store: %d facts", input, s.Len())
		}
	}
}
