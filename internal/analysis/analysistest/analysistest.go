// Package analysistest runs ufclint analyzers over fixture packages and
// checks their diagnostics against `// want` comments, mirroring the
// golang.org/x/tools analysistest contract on the standard library only.
//
// A fixture directory holds one package; every expected diagnostic is
// declared on the offending line as
//
//	code // want `regexp`
//
// (backquoted or double-quoted). The test fails on any diagnostic without a
// matching want, and on any want without a matching diagnostic. Fixtures
// may import the standard library (type-checked from source via
// go/importer).
//
// Subdirectories of the fixture directory are dependency packages: each is
// type-checked and analyzed first (in lexical order, so later deps may
// import earlier ones), its exported facts land in a FactStore shared with
// the root package, and the root fixture imports it by its bare directory
// name. This is how cross-package fact propagation — the allocating callee
// in another package, the blocking helper behind an import — is exercised
// without a real build. Want comments inside dependency fixtures are
// honored too.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// sharedImporter type-checks stdlib imports from GOROOT source. It caches
// internally, so all fixture packages share one instance (and one FileSet,
// which the importer requires).
var (
	fsetOnce sync.Once
	fset     *token.FileSet
	imp      types.Importer
)

func sharedFset() (*token.FileSet, types.Importer) {
	fsetOnce.Do(func() {
		fset = token.NewFileSet()
		imp = importer.ForCompiler(fset, "source", nil)
	})
	return fset, imp
}

// mapImporter resolves fixture dependency packages by bare import path,
// falling back to the stdlib source importer for everything else.
type mapImporter struct {
	deps map[string]*types.Package
	base types.Importer
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.deps[path]; ok {
		return pkg, nil
	}
	return m.base.Import(path)
}

var wantRe = regexp.MustCompile("// want (`[^`]*`|\"[^\"]*\")")

type want struct {
	re      *regexp.Regexp
	matched bool
}

// fixturePkg is one parsed-and-type-checked fixture package.
type fixturePkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// Run applies the analyzer to the fixture package in dir — dependency
// subpackages first, facts flowing between them — and verifies all
// diagnostics against the fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	fset, baseImp := sharedFset()
	facts := analysis.NewFactStore([]*analysis.Analyzer{a})
	imp := &mapImporter{deps: make(map[string]*types.Package), base: baseImp}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	var depNames []string
	for _, e := range entries {
		if e.IsDir() {
			depNames = append(depNames, e.Name())
		}
	}
	sort.Strings(depNames)

	wants := make(map[string]map[int][]*want) // file → line → expectations
	var diags []analysis.Diagnostic
	analyze := func(subdir, importPath string) {
		fp := loadFixture(t, fset, imp, filepath.Join(dir, subdir), importPath, wants)
		got, err := analysis.Run(fset, fp.files, fp.pkg, fp.info, []*analysis.Analyzer{a}, facts)
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, fp.pkg.Path(), err)
		}
		diags = append(diags, got...)
		imp.deps[importPath] = fp.pkg
	}
	for _, name := range depNames {
		analyze(name, name)
	}
	analyze(".", filepath.Base(dir))

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		lineWants := wants[pos.Filename][pos.Line]
		found := false
		for _, w := range lineWants {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	var missing []string
	for path, byLine := range wants {
		for line, ws := range byLine {
			for _, w := range ws {
				if !w.matched {
					missing = append(missing, fmt.Sprintf("%s:%d: expected diagnostic matching %q", filepath.Base(path), line, w.re))
				}
			}
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Error(m)
	}
}

// loadFixture parses and type-checks the single package in dir under the
// given import path, recording its want comments.
func loadFixture(t *testing.T, fset *token.FileSet, imp types.Importer, dir, importPath string, wants map[string]map[int][]*want) *fixturePkg {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read fixture: %v", err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse fixture: %v", err)
		}
		files = append(files, f)
		wants[path] = parseWants(t, path, string(src))
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	conf := types.Config{Importer: imp}
	info := analysis.NewInfo()
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-check fixture %s: %v", dir, err)
	}
	return &fixturePkg{files: files, pkg: pkg, info: info}
}

func parseWants(t *testing.T, path, src string) map[int][]*want {
	t.Helper()
	out := make(map[int][]*want)
	for i, line := range strings.Split(src, "\n") {
		for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
			pat := m[1][1 : len(m[1])-1] // strip quotes/backquotes
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, pat, err)
			}
			out[i+1] = append(out[i+1], &want{re: re})
		}
	}
	return out
}
