// Package analysistest runs ufclint analyzers over fixture packages and
// checks their diagnostics against `// want` comments, mirroring the
// golang.org/x/tools analysistest contract on the standard library only.
//
// A fixture directory holds one package; every expected diagnostic is
// declared on the offending line as
//
//	code // want `regexp`
//
// (backquoted or double-quoted). The test fails on any diagnostic without a
// matching want, and on any want without a matching diagnostic. Fixtures
// may import the standard library (type-checked from source via
// go/importer); they cannot import module packages.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// sharedImporter type-checks stdlib imports from GOROOT source. It caches
// internally, so all fixture packages share one instance (and one FileSet,
// which the importer requires).
var (
	fsetOnce sync.Once
	fset     *token.FileSet
	imp      types.Importer
)

func sharedFset() (*token.FileSet, types.Importer) {
	fsetOnce.Do(func() {
		fset = token.NewFileSet()
		imp = importer.ForCompiler(fset, "source", nil)
	})
	return fset, imp
}

var wantRe = regexp.MustCompile("// want (`[^`]*`|\"[^\"]*\")")

type want struct {
	re      *regexp.Regexp
	matched bool
}

// Run applies the analyzer to the fixture package in dir and verifies its
// diagnostics against the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	fset, imp := sharedFset()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	var files []*ast.File
	wants := make(map[string]map[int][]*want) // file → line → expectations
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read fixture: %v", err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse fixture: %v", err)
		}
		files = append(files, f)
		wants[path] = parseWants(t, path, string(src))
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	pkgName := files[0].Name.Name
	conf := types.Config{Importer: imp}
	info := analysis.NewInfo()
	pkg, err := conf.Check(pkgName, fset, files, info)
	if err != nil {
		t.Fatalf("type-check fixture %s: %v", dir, err)
	}

	diags, err := analysis.Run(fset, files, pkg, info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		lineWants := wants[pos.Filename][pos.Line]
		found := false
		for _, w := range lineWants {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	var missing []string
	for path, byLine := range wants {
		for line, ws := range byLine {
			for _, w := range ws {
				if !w.matched {
					missing = append(missing, fmt.Sprintf("%s:%d: expected diagnostic matching %q", filepath.Base(path), line, w.re))
				}
			}
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Error(m)
	}
}

func parseWants(t *testing.T, path, src string) map[int][]*want {
	t.Helper()
	out := make(map[int][]*want)
	for i, line := range strings.Split(src, "\n") {
		for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
			pat := m[1][1 : len(m[1])-1] // strip quotes/backquotes
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, pat, err)
			}
			out[i+1] = append(out[i+1], &want{re: re})
		}
	}
	return out
}
