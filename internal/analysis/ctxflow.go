package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxPackages are the cancellation-critical packages: everything above the
// solver core that can block on a network, a timer or a peer. PR 5 made
// the public API context-first exactly so a caller can bound every wait;
// code in these packages must thread the caller's context instead of
// minting its own or blocking uncancellably.
var ctxPackages = map[string]bool{
	"distsim":      true,
	"controlplane": true,
	"ufc":          true,
}

// Ctxflow enforces context threading in the cancellation-critical packages
// (internal/distsim, internal/controlplane, ufc), outside main packages
// and tests:
//
//   - calls to context.Background() / context.TODO() — a protocol or
//     serving layer that mints its own root context silently detaches
//     itself from the caller's deadline and cancellation; the entry
//     points (main, tests, deprecated *Background shims) own the root.
//     A deliberate escape hatch carries //ufc:ctx <why>;
//   - functions that accept a context.Context, never use it, yet call
//     context-aware callees — the dropped-ctx wrapper shape, where
//     cancellation dies at an API boundary that looks context-first;
//   - calls from a context-carrying function to a callee that blocks
//     (time.Sleep, net.Dial, sync.WaitGroup.Wait — directly or, via the
//     blocksFact exported when the callee's package was analyzed,
//     transitively) without accepting a context: the wait outlives the
//     caller's cancellation.
//
// Blocking facts are computed for every analyzed package so the check
// sees through cross-package helpers; diagnostics fire only inside the
// watched packages.
var Ctxflow = &Analyzer{
	Name:      "ctxflow",
	Doc:       "flag context.Background/TODO and uncancellable blocking calls in the serving and protocol packages",
	FactTypes: []Fact{(*blocksFact)(nil)},
	Run:       runCtxflow,
}

// blocksFact marks a function that can block without consulting any
// context: it directly performs a blocking operation, or calls a
// context-free function that does.
type blocksFact struct {
	What string `json:"what"` // the underlying blocking operation
}

func (*blocksFact) AFact() {}

func runCtxflow(pass *Pass) error {
	blocking := pass.exportBlockingFacts()
	if !ctxPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			pass.checkCtxFunc(fn, blocking)
		}
	}
	return nil
}

// exportBlockingFacts computes the package's transitive blocking set and
// exports a blocksFact for every context-free member, returning the local
// set for same-package checks. Functions that accept a context are never
// exported: their waits are (presumed) bounded by it, and flagging them
// at call sites would punish the fix.
func (p *Pass) exportBlockingFacts() map[*types.Func]*blocksFact {
	cg := p.Callgraph()
	what := make(map[*types.Func]*blocksFact)
	seed := func(fn *types.Func, decl *ast.FuncDecl) bool {
		if p.IsTestFile(decl.Pos()) || funcTakesContext(fn) {
			return false
		}
		found := ""
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found != "" {
				return found == ""
			}
			if op := p.directBlockingOp(call); op != "" {
				found = op
			}
			return found == ""
		})
		if found != "" {
			what[fn] = &blocksFact{What: found}
			return true
		}
		return false
	}
	inSet := func(callee *types.Func) bool {
		if funcTakesContext(callee) {
			return false
		}
		var f blocksFact
		return p.ImportObjectFact(callee, &f)
	}
	members := cg.Fixpoint(seed, inSet)
	for fn := range members {
		if funcTakesContext(fn) {
			continue
		}
		f := what[fn]
		if f == nil {
			// Transitive member: name the first blocking callee found.
			for _, callee := range cg.Callees(fn) {
				if w := what[callee]; w != nil && members[callee] {
					f = &blocksFact{What: "calls " + callee.Name() + " → " + w.What}
					break
				}
				var imported blocksFact
				if !funcTakesContext(callee) && p.ImportObjectFact(callee, &imported) {
					f = &blocksFact{What: "calls " + callee.Name() + " → " + imported.What}
					break
				}
			}
			if f == nil {
				f = &blocksFact{What: "blocks transitively"}
			}
			what[fn] = f
		}
		p.ExportObjectFact(fn, f)
	}
	return what
}

// directBlockingOp reports the blocking operation a call performs with no
// context to bound it, or "".
func (p *Pass) directBlockingOp(call *ast.CallExpr) string {
	f := p.funcOf(call)
	if f == nil || f.Pkg() == nil {
		return ""
	}
	sig, _ := f.Type().(*types.Signature)
	switch f.Pkg().Path() {
	case "time":
		if f.Name() == "Sleep" && sig != nil && sig.Recv() == nil {
			return "time.Sleep"
		}
	case "net":
		if strings.HasPrefix(f.Name(), "Dial") {
			return "net." + f.Name()
		}
	case "sync":
		if f.Name() == "Wait" && sig != nil && sig.Recv() != nil && namedTypeIs(sig.Recv().Type(), "sync", "WaitGroup") {
			return "sync.WaitGroup.Wait"
		}
	}
	return ""
}

// checkCtxFunc applies the three ctxflow checks to one declaration.
func (p *Pass) checkCtxFunc(fn *ast.FuncDecl, blocking map[*types.Func]*blocksFact) {
	obj, _ := p.TypesInfo.Defs[fn.Name].(*types.Func)
	ctxParam := contextParam(p, fn)
	ctxUsed := false
	callsCtxAware := false

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && ctxParam != nil && p.TypesInfo.Uses[id] == ctxParam {
			ctxUsed = true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := p.funcOf(call)

		// 1. Minting a root context mid-stack.
		if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "context" &&
			(callee.Name() == "Background" || callee.Name() == "TODO") {
			if !p.Suppressed(call, "ctx") {
				p.Reportf(call.Pos(), "context.%s() detaches this call tree from the caller's cancellation and deadline; thread the caller's ctx through, or justify the root with //ufc:ctx", callee.Name())
			}
		}

		// 3. Context-carrying caller invoking an uncancellable blocker.
		if ctxParam != nil && callee != nil && callee != obj && !funcTakesContext(callee) {
			var why string
			if op := p.directBlockingOp(call); op != "" {
				why = op
			} else if f := blocking[callee]; f != nil {
				why = f.What
			} else {
				var imported blocksFact
				if p.ImportObjectFact(callee, &imported) {
					why = imported.What
				}
			}
			if why != "" && !p.Suppressed(call, "ctx") {
				p.Reportf(call.Pos(), "%s blocks (%s) without accepting this function's ctx; the wait outlives cancellation — plumb the context into the callee or justify with //ufc:ctx", callee.Name(), why)
			}
		}
		return true
	})

	// 2. Dropped-ctx wrapper.
	if ctxParam != nil && ctxParam.Name() != "_" && !ctxUsed {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || callsCtxAware {
				return !callsCtxAware
			}
			if callee := p.funcOf(call); callee != nil && callee != obj && funcTakesContext(callee) {
				callsCtxAware = true
			}
			return !callsCtxAware
		})
		if callsCtxAware && !p.Suppressed(fn, "ctx") {
			p.Reportf(fn.Name.Pos(), "%s accepts a context.Context it never uses while calling context-aware functions; pass %s through (or name it _ if the signature is contractual)", fn.Name.Name, ctxParam.Name())
		}
	}
}

// contextParam returns the function's first context.Context parameter
// object, or nil.
func contextParam(p *Pass, fn *ast.FuncDecl) *types.Var {
	obj, ok := p.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if prm := sig.Params().At(i); isContextType(prm.Type()) {
			return prm
		}
	}
	return nil
}

// funcTakesContext reports whether any parameter of f is a context.Context.
func funcTakesContext(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool { return namedTypeIs(t, "context", "Context") }

// namedTypeIs reports whether t (possibly behind a pointer) is the named
// type pkgpath.name.
func namedTypeIs(t types.Type, pkgpath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgpath
}
