// Fixture for the leakcheck analyzer: every go statement needs a visible
// shutdown edge — a channel operation, a context, WaitGroup.Done, or a
// callee (possibly imported) that has one.
package leakcheck

import (
	"context"
	"sync"

	"leakdep"
)

// busyLoop has no shutdown edge at all.
func busyLoop() {
	for i := 0; ; i++ {
		_ = i
	}
}

func fireNamed() {
	go busyLoop() // want `goroutine has no visible shutdown edge`
}

func fireLit() {
	go func() { // want `goroutine has no visible shutdown edge`
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

func fireJustified() {
	//ufc:leak fixture: released externally (connection close)
	go busyLoop()
}

func fireChan(done chan struct{}) {
	go func() {
		<-done // the channel receive is the shutdown edge
	}()
}

func fireCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func fireWG(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
	}()
}

func opaque(ctx context.Context) {}

// fireArgCtx hands the goroutine a context even though its body is opaque.
func fireArgCtx(ctx context.Context) {
	go opaque(ctx)
}

func helperLoop(done chan struct{}) {
	<-done
}

// fireHelper spawns a named local function whose edge is in its body.
func fireHelper(done chan struct{}) {
	go helperLoop(done)
}

// fireDep spawns an imported function; only leakdep's exported
// shutdownFact proves the edge.
func fireDep(q chan int) {
	go leakdep.Pump(q)
}

// fireViaLitHelper delegates the loop to an edge-carrying helper from
// inside a literal.
func fireViaLitHelper(done chan struct{}) {
	go func() {
		helperLoop(done)
	}()
}
