// Dependency fixture for leakcheck: Pump's channel edge is exported as a
// shutdownFact so importers can spawn it.
package leakdep

// Pump forwards items until the channel is closed.
func Pump(q chan int) {
	for range q {
		// drain
	}
}
