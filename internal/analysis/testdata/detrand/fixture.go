// Fixture for the detrand analyzer. The package is named "trace" to land in
// the determinism-critical set.
package trace

import (
	"math/rand"
	"sort"
	"time"
)

// genMixesRegression reproduces the PR 1 cross-process reproducibility bug:
// RNG draws are consumed in map iteration order, so every process that
// ranges the map differently solves a different problem.
func genMixesRegression(base map[string]float64, rng *rand.Rand) map[string]float64 {
	out := make(map[string]float64, len(base))
	for f, g := range base { // want `range over map has nondeterministic iteration order`
		out[f] = g * (1 + 0.1*rng.NormFloat64())
	}
	return out
}

// genMixesFixed is the shipped fix: collect the keys (order-insensitive),
// sort them, then consume the draws in a fixed order.
func genMixesFixed(base map[string]float64, rng *rand.Rand) map[string]float64 {
	keys := make([]string, 0, len(base))
	for f := range base {
		keys = append(keys, f)
	}
	sort.Strings(keys)
	out := make(map[string]float64, len(base))
	for _, f := range keys {
		out[f] = base[f] * (1 + 0.1*rng.NormFloat64())
	}
	return out
}

// normalized is the keyed-transfer shape: each key is written independently
// with a call-free expression, so iteration order cannot matter.
func normalized(m map[string]float64, total float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for f, g := range m {
		out[f] = g / total
	}
	return out
}

// accumulate is order-sensitive in principle (float addition does not
// commute bit-exactly), so even a call-free body is flagged when it folds
// into a shared accumulator.
func accumulate(m map[string]float64) float64 {
	var sum float64
	for _, g := range m { // want `range over map has nondeterministic iteration order`
		sum += g
	}
	return sum
}

// closeAll carries a justification: teardown order is not numeric state.
func closeAll(boxes map[string]chan int) {
	//ufc:nondet close order of channels is observationally irrelevant
	for _, box := range boxes {
		close(box)
	}
}

// jitterGlobal draws from the shared, unseeded process-global source.
func jitterGlobal() float64 {
	return rand.Float64() // want `process-global math/rand source`
}

// jitterSeeded constructs an explicitly seeded generator; rand.New and
// rand.NewSource are constructors, not draws.
func jitterSeeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// stamp feeds the wall clock into a numeric value.
func stamp() int64 {
	return time.Now().UnixNano() // want `wall-clock values must not feed computation`
}

// stampJustified carries a justification for a log-only timestamp.
func stampJustified() int64 {
	return time.Now().UnixNano() //ufc:nondet log timestamp; never reaches solver state
}

type deadlineConn interface {
	SetReadDeadline(t time.Time) error
}

// armDeadline is I/O plumbing: time.Now flowing directly into a
// Set*Deadline call is exempt.
func armDeadline(c deadlineConn) error {
	return c.SetReadDeadline(time.Now().Add(time.Second))
}
