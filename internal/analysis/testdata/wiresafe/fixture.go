// Fixture for the wiresafe analyzer. The package is named "distsim" because
// the analyzer only applies to the wire layer.
package distsim

const (
	frameKindData  byte = 0x01
	frameKindHello byte = 0x02 // want `used on the encode side but never on the decode side`
	//ufc:unvalidated reserved for protocol v2; current decoders ignore it by design
	frameFlagTrace byte = 0x40
)

// appendHeader is encode-side: it emits all three constants.
func appendHeader(dst []byte, trace bool) []byte {
	k := frameKindData
	if trace {
		k |= frameFlagTrace
	}
	return append(dst, k, frameKindHello)
}

// parseKind is decode-side and interprets frameKindData — so that constant
// is symmetric — but nothing ever decodes frameKindHello.
func parseKind(b []byte) (byte, bool) {
	if len(b) == 0 {
		return 0, false
	}
	return b[0] & frameKindData, true
}

// decodeHeader indexes its payload without any length validation.
func decodeHeader(b []byte) byte {
	return b[0] // want `reads a \[\]byte payload without validating its length`
}

// decodeGuarded validates before every access.
func decodeGuarded(b []byte) (byte, bool) {
	if len(b) < 1 {
		return 0, false
	}
	return b[0], true
}

// peekReserved documents why the raw access is safe.
func peekReserved(b []byte) byte {
	return b[4] //ufc:unvalidated caller guarantees an 8-byte header
}

// Handshake constants are wire constants too: the magic is symmetric
// below, but nothing ever encodes hsStatusAuth.
const (
	hsMagic0     byte = 0x00
	hsStatusOK   byte = 0x00
	hsStatusAuth byte = 0x02 // want `used on the decode side but never on the encode side`
)

// appendHandshakeAck emits the magic and the ok status.
func appendHandshakeAck(dst []byte) []byte {
	return append(dst, hsMagic0, hsStatusOK)
}

// parseHandshakeAck interprets all three handshake constants.
func parseHandshakeAck(b []byte) (bool, bool) {
	if len(b) < 2 || b[0] != hsMagic0 {
		return false, false
	}
	switch b[1] {
	case hsStatusOK:
		return true, true
	case hsStatusAuth:
		return false, true
	}
	return false, false
}
