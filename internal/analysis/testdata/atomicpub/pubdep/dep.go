// Dependency fixture for atomicpub: Publish stores its parameter into an
// atomic pointer, and the exported publishesFact lets importers catch
// post-publish writes on their side of the boundary.
package pubdep

import "sync/atomic"

// State is a published value.
type State struct{ N int64 }

// Box holds the live State.
type Box struct{ cur atomic.Pointer[State] }

// Publish makes s visible to concurrent readers; the caller must not
// touch it afterwards.
func Publish(b *Box, s *State) {
	b.cur.Store(s)
}
