// Fixture for the atomicpub analyzer: post-publish mutation through
// atomic.Pointer stores (direct, via a local wrapper, and via an imported
// publisher) and mixed atomic/plain access to the same field.
package atomicpub

import (
	"sync/atomic"

	"pubdep"
)

type snapshot struct {
	version int64
}

type router struct {
	cur atomic.Pointer[snapshot]
}

// publishThenMutate stamps the value too late.
func (r *router) publishThenMutate(s *snapshot) {
	s.version = 7 // pre-publish writes are the normal build-up
	r.cur.Store(s)
	s.version = 8 // want `write to s after it was published via an atomic pointer`
}

// publishClean finishes the value before publishing.
func (r *router) publishClean(s *snapshot) {
	s.version = 7
	r.cur.Store(s)
}

// publishJustified documents a tolerated late write.
func (r *router) publishJustified(s *snapshot) {
	r.cur.Store(s)
	//ufc:pub fixture: readers tolerate this field arriving late
	s.version = 9
}

// publish is the wrapper whose publishesFact propagates to callers.
func (r *router) publish(s *snapshot) {
	r.cur.Store(s)
}

// viaWrapper mutates after publishing through the wrapper.
func (r *router) viaWrapper(s *snapshot) {
	r.publish(s)
	s.version = 1 // want `write to s after it was published via an atomic pointer`
}

// viaDep mutates after publishing through an imported function — only the
// dependency's exported fact reveals the hand-off.
func viaDep(b *pubdep.Box, s *pubdep.State) {
	pubdep.Publish(b, s)
	s.N++ // want `write to s after it was published via an atomic pointer`
}

type counters struct {
	hits  int64
	total int64
}

// bump accesses hits atomically, making it an atomic location.
func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
}

// read races bump.
func (c *counters) read() int64 {
	return c.hits // want `plain access to hits`
}

// readAtomic is the correct counterpart.
func (c *counters) readAtomic() int64 {
	return atomic.LoadInt64(&c.hits)
}

// readTotal is fine: total is never accessed atomically.
func (c *counters) readTotal() int64 {
	return c.total
}

// readJustified documents a tolerated plain read.
func (c *counters) readJustified() int64 {
	//ufc:pub fixture: approximate read on a stats path
	return c.hits
}

type ring struct {
	slots []int64
}

// set makes slots an element-atomic location.
func (r *ring) set(i int, v int64) {
	atomic.StoreInt64(&r.slots[i], v)
}

// length uses only the slice header — never flagged.
func (r *ring) length() int {
	return len(r.slots)
}

// raw races set on the element.
func (r *ring) raw(i int) int64 {
	return r.slots[i] // want `plain element access to slots`
}
