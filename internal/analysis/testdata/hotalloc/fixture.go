// Fixture for the hotalloc analyzer: only //ufc:hotpath functions are
// checked; the same constructs on cold paths pass.
package hotalloc

import (
	"fmt"

	"allocdep"
)

func consume(v interface{}) { _ = v }

//ufc:hotpath
func hotSprintf(n int) string {
	return fmt.Sprintf("n=%d", n) // want `fmt.Sprintf allocates a string on every call`
}

// coldSprintf is identical but unannotated: cold paths may format freely.
func coldSprintf(n int) string {
	return fmt.Sprintf("n=%d", n)
}

//ufc:hotpath
func hotConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//ufc:hotpath
func hotConstConcat() string {
	return "wire" + "-codec" // constant concatenation folds at compile time
}

//ufc:hotpath
func hotAppendFresh(scratch, more []float64) []float64 {
	grown := append(scratch, more...) // want `append result does not feed back into the appended slice`
	return grown
}

//ufc:hotpath
func hotSelfAppend(scratch []float64, v float64) []float64 {
	scratch = append(scratch, v) // self-append reuses caller-owned capacity
	return scratch
}

//ufc:hotpath
func hotReturnAppend(b []byte, v byte) []byte {
	return append(b, v) // append-style API: the caller feeds the result back
}

//ufc:hotpath
func hotCallsAppendAPI(b []byte, n int) []byte {
	b = appendDigits(b, n) // clean callee: return-append exports no fact
	return b
}

// appendDigits is an unannotated append-style helper, the shape of
// binary.AppendUvarint; it must not export an allocates fact.
func appendDigits(b []byte, n int) []byte {
	for n > 9 {
		b = append(b, byte('0'+n%10))
		n /= 10
	}
	return append(b, byte('0'+n))
}

//ufc:hotpath
func hotEscapingClosure(xs []float64, run func(func())) {
	total := 0.0
	run(func() { // want `closure captures variables and escapes`
		for _, x := range xs {
			total += x
		}
	})
	_ = total
}

//ufc:hotpath
func hotLocalClosure(c, l []float64, s float64) float64 {
	// The solveLambdaQP pattern: captured, but bound to a local that is only
	// ever called directly — stack-allocated, not boxed.
	eval := func(t float64) float64 {
		sum := 0.0
		for i := range c {
			sum += c[i] + s*t*l[i]
		}
		return sum
	}
	return eval(0.5) + eval(1.5)
}

//ufc:hotpath
func hotBoxing(x float64) {
	consume(x) // want `boxes the value on the heap`
}

//ufc:hotpath
func hotPointerArg(p *float64) {
	consume(p) // pointer-shaped values fit in the interface word
}

//ufc:hotpath
func hotErrorPath(n int) error {
	if n < 0 {
		return fmt.Errorf("bad n %d", n) // fmt/errors boxing is error-path only
	}
	return nil
}

//ufc:hotpath
func hotMapLit() int {
	weights := map[string]int{"coal": 1} // want `map literal allocates`
	return weights["coal"]
}

//ufc:hotpath
func hotSliceLit() int {
	xs := []int{1, 2, 3} // want `slice literal allocates a fresh backing array`
	return xs[0]
}

//ufc:hotpath
func hotCallsCold(n int) int {
	s := coldSprintf(n) // want `call to coldSprintf, which allocates \(fmt\.Sprintf allocates a string on every call\)`
	return len(s)
}

//ufc:hotpath
func hotCallsDep() int {
	s := allocdep.Format(3) // want `call to Format, which allocates`
	return len(s)
}

//ufc:hotpath
func hotCallsDepJustified(n int) int {
	if n < 0 {
		return len(allocdep.Format(n)) //ufc:alloc fixture: cold error branch
	}
	return n
}

//ufc:hotpath
func hotCallsDepClean(n int) int {
	return allocdep.Half(n) // allocation-free callee: no fact, no finding
}

//ufc:hotpath
func hotCallsDepAppendAPI(b []byte) []byte {
	b = allocdep.AppendByte(b, 7) // cross-package append-style API: no fact
	return b
}
