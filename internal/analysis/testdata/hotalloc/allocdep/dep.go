// Dependency fixture for hotalloc: Format allocates, and the exported
// allocatesFact lets a hotpath caller in the importing package see it.
package allocdep

import "fmt"

// Format renders a label; it allocates a string on every call.
func Format(n int) string {
	return fmt.Sprintf("n=%d", n)
}

// Half is allocation-free.
func Half(n int) int {
	return n / 2
}

// AppendByte is an append-style API (the binary.AppendUvarint shape): it
// returns the grown buffer for the caller to feed back, so it must not
// export an allocates fact.
func AppendByte(b []byte, v byte) []byte {
	return append(b, v)
}
