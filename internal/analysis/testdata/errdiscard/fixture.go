// Fixture for the errdiscard analyzer.
package errdiscard

import (
	"errors"
	"strings"
)

type conn struct{}

func (conn) Close() error                     { return errors.New("close failed") }
func (conn) Send(to string) error             { return nil }
func (conn) Resend(to string, iter int) error { return nil }
func (conn) Flush() error                     { return nil }
func (conn) Detach()                          {}

func dropStmt(c conn) {
	c.Close() // want `silently discards the error returned by Close`
}

func dropDefer(c conn) {
	defer c.Close() // want `defers and silently discards the error returned by Close`
}

func dropGo(c conn) {
	go c.Flush() // want `silently discards \(in a goroutine\) the error returned by Flush`
}

func dropSend(c conn) {
	c.Send("fe-0") // want `silently discards the error returned by Send`
}

// The retry layer's Resend is as much a protocol-level message loss as a
// dropped Send.
func dropResend(c conn) {
	c.Resend("fe-0", 7) // want `silently discards the error returned by Resend`
}

func justifiedResend(c conn) {
	_ = c.Resend("fe-0", 7) //ufc:discard solicited resend is best-effort; the retry timer covers real loss
}

func dropBlank(c conn) {
	_ = c.Close() // want `blank discard of the error returned by Close`
}

func dropInDeferredClosure(c conn) {
	defer func() {
		_ = c.Close() // want `blank discard of the error returned by Close`
	}()
}

func justified(c conn) {
	_ = c.Close() //ufc:discard teardown; the read loop already reported the real error
}

func handled(c conn) error {
	return c.Close()
}

// Detach returns nothing; only error-returning operations are watched.
func noError(c conn) {
	c.Detach()
}

// strings.Builder's Write methods are documented to never fail.
func neverFails() string {
	var sb strings.Builder
	sb.WriteString("x")
	return sb.String()
}
