// Dependency fixture for ctxflow: not a watched package (no diagnostics
// here), but its blocking facts are exported for the importer's checks.
package dephelpers

import "time"

// SlowPoll blocks without consulting any context.
func SlowPoll() {
	time.Sleep(10 * time.Millisecond)
}
