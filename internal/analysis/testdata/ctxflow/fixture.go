// Fixture for the ctxflow analyzer. The package is named distsim so the
// watched-package gate applies; dephelpers below is a dependency package
// whose blocking facts cross the import boundary.
package distsim

import (
	"context"
	"time"

	"dephelpers"
)

// entry mints a root context mid-stack.
func entry() {
	ctx := context.Background() // want `context.Background\(\) detaches this call tree`
	_ = ctx
}

// justified documents its deliberate root.
func justified() {
	ctx := context.Background() //ufc:ctx fixture: this is a documented root
	_ = ctx
}

// pause blocks with no context; it seeds the blocking fact set.
func pause() {
	time.Sleep(time.Millisecond)
}

// relay blocks transitively through pause.
func relay() {
	pause()
}

func run(ctx context.Context) error {
	<-ctx.Done()
	return nil
}

// serve holds a context yet waits uncancellably.
func serve(ctx context.Context) error {
	if err := run(ctx); err != nil {
		return err
	}
	pause() // want `pause blocks \(time\.Sleep\) without accepting this function's ctx`
	return nil
}

// serveRelay hits the same wall through a transitive blocker.
func serveRelay(ctx context.Context) {
	<-ctx.Done()
	relay() // want `relay blocks \(calls pause → time\.Sleep\)`
}

// serveDep blocks through an imported helper: only the dependency's
// exported fact reveals it.
func serveDep(ctx context.Context) {
	<-ctx.Done()
	dephelpers.SlowPoll() // want `SlowPoll blocks \(time\.Sleep\)`
}

// serveSuppressed documents why its teardown wait ignores cancellation.
func serveSuppressed(ctx context.Context) {
	<-ctx.Done()
	pause() //ufc:ctx fixture: bounded teardown wait
}

// wrapper accepts a context, drops it, and calls context-aware code.
func wrapper(ctx context.Context) error { // want `wrapper accepts a context\.Context it never uses`
	return run(context.TODO()) // want `context\.TODO\(\) detaches this call tree`
}

// good threads its context through.
func good(ctx context.Context) error {
	return run(ctx)
}

// sleepCtx bounds its wait with the caller's context — a blocking callee
// that accepts a context is never flagged at call sites.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// serveGood delegates its waits to a context-aware helper.
func serveGood(ctx context.Context) {
	sleepCtx(ctx, time.Millisecond)
}
