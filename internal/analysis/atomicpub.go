package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Atomicpub guards the control plane's lock-free publication pattern: a
// value made visible to concurrent readers through a sync/atomic pointer
// swap must be immutable from that instant, and a memory location accessed
// atomically anywhere must be accessed atomically everywhere. It flags,
// outside tests:
//
//   - writes through a pointer after it was published with
//     atomic.Pointer.Store/Swap — directly, or by passing it to a function
//     carrying a publishesFact (exported when the callee's package was
//     analyzed, so `router.Publish(s)` publishes s across package
//     boundaries). Readers hold the snapshot with no locks; a post-publish
//     write is a data race the race detector only sees on the timings it
//     happens to run;
//   - mixed access to a struct field: if &x.f (or &x.f[i]) feeds a
//     sync/atomic Load/Store/Add/Swap/CompareAndSwap anywhere in the
//     package, every plain read or write of that field (or its elements)
//     elsewhere is flagged.
//
// A deliberate exception carries //ufc:pub <why>.
var Atomicpub = &Analyzer{
	Name:      "atomicpub",
	Doc:       "flag post-publish mutation of atomically-published values and mixed atomic/plain access",
	FactTypes: []Fact{(*publishesFact)(nil)},
	Run:       runAtomicpub,
}

// publishesFact marks a function that stores one or more of its pointer
// parameters into an atomic.Pointer (directly or by forwarding to another
// publishing function): after the call, the caller no longer owns the
// pointee.
type publishesFact struct {
	Params []int `json:"params"` // indices of published parameters
}

func (*publishesFact) AFact() {}

func runAtomicpub(pass *Pass) error {
	// Iterate to a fixpoint on publishesFacts so wrappers of wrappers
	// (publish → Router.Publish → atomic store) are all exported before
	// call sites are judged.
	for changed := true; changed; {
		changed = false
		for _, file := range pass.Files {
			if pass.IsTestFile(file.Pos()) {
				continue
			}
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if pass.exportPublishes(fn) {
					changed = true
				}
			}
		}
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			pass.checkPostPublishWrites(fn)
		}
	}
	pass.checkMixedAtomicAccess()
	return nil
}

// isAtomicPointerStore reports whether call is (atomic.Pointer[T]).Store
// or .Swap, returning the stored expression.
func (p *Pass) isAtomicPointerStore(call *ast.CallExpr) (stored ast.Expr, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel || (sel.Sel.Name != "Store" && sel.Sel.Name != "Swap") || len(call.Args) != 1 {
		return nil, false
	}
	f, _ := p.TypesInfo.Uses[sel.Sel].(*types.Func)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
		return nil, false
	}
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil || !namedTypeIs(sig.Recv().Type(), "sync/atomic", "Pointer") {
		return nil, false
	}
	return call.Args[0], true
}

// publishedObjects walks fn's body and returns, per published local
// object, the position of its earliest publication — an atomic pointer
// store of the object, or a call passing it at a publishesFact parameter.
func (p *Pass) publishedObjects(fn *ast.FuncDecl) map[types.Object]token.Pos {
	pubs := make(map[types.Object]token.Pos)
	note := func(e ast.Expr, pos token.Pos) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		obj := p.TypesInfo.ObjectOf(id)
		if obj == nil {
			return
		}
		if prev, seen := pubs[obj]; !seen || pos < prev {
			pubs[obj] = pos
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if stored, ok := p.isAtomicPointerStore(call); ok {
			note(stored, call.Pos())
			return true
		}
		callee := p.funcOf(call)
		if callee == nil {
			return true
		}
		var fact publishesFact
		if !p.ImportObjectFact(callee, &fact) {
			return true
		}
		// Method calls: Params indexes the declared parameter list.
		for _, idx := range fact.Params {
			if idx >= 0 && idx < len(call.Args) {
				note(call.Args[idx], call.Pos())
			}
		}
		return true
	})
	return pubs
}

// exportPublishes exports a publishesFact if fn publishes any of its own
// parameters, reporting whether the fact was newly exported or grew.
func (p *Pass) exportPublishes(fn *ast.FuncDecl) bool {
	obj, ok := p.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil || sig.Params().Len() == 0 {
		return false
	}
	pubs := p.publishedObjects(fn)
	var params []int
	for i := 0; i < sig.Params().Len(); i++ {
		if _, published := pubs[sig.Params().At(i)]; published {
			params = append(params, i)
		}
	}
	if len(params) == 0 {
		return false
	}
	var existing publishesFact
	if p.ImportObjectFact(obj, &existing) && len(existing.Params) == len(params) {
		return false
	}
	p.ExportObjectFact(obj, &publishesFact{Params: params})
	return true
}

// checkPostPublishWrites flags writes through a published pointer at any
// position after its publication in the same function.
func (p *Pass) checkPostPublishWrites(fn *ast.FuncDecl) {
	pubs := p.publishedObjects(fn)
	if len(pubs) == 0 {
		return
	}
	check := func(target ast.Expr, stmt ast.Node) {
		root, indirect := rootIdent(target)
		if root == nil || !indirect {
			return
		}
		obj := p.TypesInfo.ObjectOf(root)
		pubPos, published := pubs[obj]
		if !published || stmt.Pos() <= pubPos {
			return
		}
		if p.Suppressed(stmt, "pub") {
			return
		}
		p.Reportf(stmt.Pos(), "write to %s after it was published via an atomic pointer at line %d; published values must be immutable — build a fresh value and re-publish, or justify with //ufc:pub",
			root.Name, p.Fset.Position(pubPos).Line)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				check(lhs, n)
			}
		case *ast.IncDecStmt:
			check(n.X, n)
		}
		return true
	})
}

// rootIdent peels selectors, indexes, stars and parens off an assignment
// target, returning the root identifier and whether at least one level of
// indirection was peeled (a bare `x = ...` rebinding is not a write
// through x).
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	indirect := false
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.SelectorExpr:
			e, indirect = v.X, true
		case *ast.IndexExpr:
			e, indirect = v.X, true
		case *ast.StarExpr:
			e, indirect = v.X, true
		case *ast.Ident:
			return v, indirect
		default:
			return nil, indirect
		}
	}
}

// atomicFuncs are the sync/atomic package-level operations whose pointer
// argument defines an atomically-accessed location.
func isAtomicPkgFunc(f *types.Func) bool {
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() != nil {
		return false
	}
	for _, prefix := range [...]string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(f.Name(), prefix) {
			return true
		}
	}
	return false
}

// checkMixedAtomicAccess finds struct fields addressed by &x.f (or
// &x.f[i]) inside sync/atomic calls and flags every plain access to the
// same field (or its elements) in the package.
func (p *Pass) checkMixedAtomicAccess() {
	fieldAtomic := make(map[types.Object]bool) // &x.f    — whole field
	elemAtomic := make(map[types.Object]bool)  // &x.f[i] — elements
	forEachAtomicArg := func(file *ast.File, visit func(arg ast.Expr)) {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicPkgFunc(p.funcOf(call)) {
				return true
			}
			for _, arg := range call.Args {
				if ue, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && ue.Op == token.AND {
					visit(ue.X)
				}
			}
			return true
		})
	}
	for _, file := range p.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		forEachAtomicArg(file, func(arg ast.Expr) {
			switch v := ast.Unparen(arg).(type) {
			case *ast.SelectorExpr:
				if f := p.fieldOf(v); f != nil {
					fieldAtomic[f] = true
				}
			case *ast.IndexExpr:
				if sel, ok := ast.Unparen(v.X).(*ast.SelectorExpr); ok {
					if f := p.fieldOf(sel); f != nil {
						elemAtomic[f] = true
					}
				}
			}
		})
	}
	if len(fieldAtomic) == 0 && len(elemAtomic) == 0 {
		return
	}
	for _, file := range p.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		// Positions covered by an atomic call's &-argument are the atomic
		// accesses themselves; everything else is plain.
		atomicSpans := make(map[*ast.SelectorExpr]bool)
		forEachAtomicArg(file, func(arg ast.Expr) {
			ast.Inspect(arg, func(n ast.Node) bool {
				if sel, ok := n.(*ast.SelectorExpr); ok {
					atomicSpans[sel] = true
				}
				return true
			})
		})
		WalkStack(file, func(stack []ast.Node, n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicSpans[sel] {
				return true
			}
			f := p.fieldOf(sel)
			if f == nil {
				return true
			}
			if fieldAtomic[f] {
				if !p.Suppressed(sel, "pub") {
					p.Reportf(sel.Pos(), "plain access to %s, which is also accessed through sync/atomic; every read and write of an atomic location must be atomic, or justify with //ufc:pub", f.Name())
				}
				return true
			}
			if elemAtomic[f] {
				// Elements are atomic; using the slice header (len, range,
				// re-slicing) is fine — only direct element indexing races.
				if len(stack) > 0 {
					if ix, ok := stack[len(stack)-1].(*ast.IndexExpr); ok && ast.Unparen(ix.X) == sel {
						if !p.Suppressed(sel, "pub") {
							p.Reportf(sel.Pos(), "plain element access to %s, whose elements are accessed through sync/atomic; use atomic loads/stores for every element access, or justify with //ufc:pub", f.Name())
						}
					}
				}
			}
			return true
		})
	}
}

// fieldOf resolves a selector to the struct field it denotes, or nil.
func (p *Pass) fieldOf(sel *ast.SelectorExpr) types.Object {
	s, ok := p.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}
