package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestWiresafe(t *testing.T) {
	analysistest.Run(t, "testdata/wiresafe", analysis.Wiresafe)
}
