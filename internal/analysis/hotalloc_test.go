package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata/hotalloc", analysis.Hotalloc)
}
