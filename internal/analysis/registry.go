package analysis

// All returns every ufclint analyzer in a stable order.
func All() []*Analyzer {
	return []*Analyzer{Detrand, Hotalloc, Wiresafe, Errdiscard, Ctxflow, Atomicpub, Leakcheck}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
