package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Hotalloc checks functions annotated //ufc:hotpath — the ADM-G Iterate and
// per-agent step loops (PR 1) and the wire-codec/batched-Send path (PR 2),
// all of which are benchmarked at 0 allocs/op in steady state — for
// constructs that allocate on every execution:
//
//   - fmt.Sprintf / fmt.Sprint / fmt.Sprintln and runtime string
//     concatenation;
//   - append whose result lands anywhere but the appended slice itself
//     (x = append(x, ...) reuses caller-owned capacity; anything else grows
//     a fresh backing array). `return append(x, ...)` is also clean: it is
//     the append-style API contract, handing the buffer back to the caller;
//   - closures that capture variables and escape (passed to a call, a
//     goroutine, a defer, a field, a channel or a return) — a captured,
//     escaping closure heap-allocates its context;
//   - implicit interface boxing of non-pointer-shaped values at call sites
//     (fmt/errors error-path formatting is exempt);
//   - map and slice composite literals.
//
// Allocation-on-error is acceptable: fmt.Errorf and the errors package are
// never flagged, since hot paths only pay for them when the iteration
// already failed.
//
// Hotalloc also exports an allocatesFact for every unannotated function
// that contains one of the constructs above, and flags hotpath calls to
// any callee — same package or imported — carrying the fact: a hot loop
// cannot stay at 0 allocs/op by delegating the allocation to a cold
// helper. Such a call is fixed by annotating and cleaning the callee, or
// justified at the call site with //ufc:alloc <why> (e.g. a genuinely
// cold error/teardown branch).
var Hotalloc = &Analyzer{
	Name:      "hotalloc",
	Doc:       "flag allocation-causing constructs inside //ufc:hotpath functions",
	FactTypes: []Fact{(*allocatesFact)(nil)},
	Run:       runHotalloc,
}

// allocatesFact marks a function whose body directly contains an
// allocation-per-call construct. It is exported for unannotated functions
// only: hotpath functions are checked (and kept clean) at their own
// definition site.
type allocatesFact struct {
	What string `json:"what"` // first construct found, for the diagnostic
}

func (*allocatesFact) AFact() {}

func runHotalloc(pass *Pass) error {
	// Fact pass first, so same-package calls resolve like imported ones.
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || FuncHasDirective(fn, "hotpath") {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			found := pass.capture(func() { pass.checkHotFunc(fn, false) })
			if len(found) > 0 {
				what := strings.TrimPrefix(found[0].Message, "hotpath: ")
				if cut := strings.IndexByte(what, ';'); cut > 0 {
					what = what[:cut]
				}
				pass.ExportObjectFact(obj, &allocatesFact{What: what})
			}
		}
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !FuncHasDirective(fn, "hotpath") {
				continue
			}
			pass.checkHotFunc(fn, true)
		}
	}
	return nil
}

func (p *Pass) checkHotFunc(fn *ast.FuncDecl, followCalls bool) {
	WalkStack(fn.Body, func(stack []ast.Node, n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			p.checkSprintf(n)
			p.checkAppend(n, stack)
			p.checkBoxing(n)
			if followCalls {
				p.checkAllocCallee(n)
			}
		case *ast.BinaryExpr:
			p.checkStringConcat(n)
		case *ast.FuncLit:
			p.checkClosure(n, stack, fn)
			return false // don't descend: the closure body runs elsewhere
		case *ast.CompositeLit:
			p.checkMapSliceLit(n)
		}
		return true
	})
}

// checkAllocCallee flags calls from a hotpath function to a callee that
// the fact stream says allocates — the cross-package form of the same
// invariant, resolved through allocatesFacts exported when the callee's
// package was analyzed.
func (p *Pass) checkAllocCallee(call *ast.CallExpr) {
	f := p.funcOf(call)
	if f == nil {
		return
	}
	var fact allocatesFact
	if !p.ImportObjectFact(f, &fact) {
		return
	}
	if p.Suppressed(call, "alloc") {
		return
	}
	p.Reportf(call.Pos(), "hotpath: call to %s, which allocates (%s); annotate and clean the callee with //ufc:hotpath, or justify the call with //ufc:alloc", f.Name(), fact.What)
}

func (p *Pass) checkSprintf(call *ast.CallExpr) {
	f := p.funcOf(call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "fmt" {
		return
	}
	switch f.Name() {
	case "Sprintf", "Sprint", "Sprintln", "Appendf", "Append", "Appendln":
		p.Reportf(call.Pos(), "hotpath: fmt.%s allocates a string on every call; precompute or use a scratch buffer", f.Name())
	}
}

func (p *Pass) checkStringConcat(be *ast.BinaryExpr) {
	if be.Op.String() != "+" {
		return
	}
	tv, ok := p.TypesInfo.Types[be]
	if !ok || tv.Value != nil { // constant concatenation folds at compile time
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		p.Reportf(be.Pos(), "hotpath: string concatenation allocates; precompute the string or use a scratch []byte")
	}
}

// checkAppend flags append calls that are not the self-append idiom
// `x = append(x, ...)`: appending into a different destination always
// allocates a new backing array once the source capacity is exceeded, and
// the hot paths own pre-sized scratch exactly to avoid that.
//
// `return append(x, ...)` is the other clean form — the append-style API
// contract (binary.AppendUvarint, strconv.AppendInt, the wire codec's
// appendFrame helpers): the result hands the buffer back to the caller,
// who feeds it into their own slice. Without this carve-out every
// append-API helper would export an allocates fact and poison its
// (allocation-free) hotpath call sites across packages.
func (p *Pass) checkAppend(call *ast.CallExpr, stack []ast.Node) {
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" || p.TypesInfo.Uses[fn] != types.Universe.Lookup("append") {
		return
	}
	if len(stack) > 0 {
		switch parent := stack[len(stack)-1].(type) {
		case *ast.AssignStmt:
			if len(parent.Lhs) == 1 && len(parent.Rhs) == 1 &&
				ast.Unparen(parent.Rhs[0]) == call && len(call.Args) > 0 && p.exprEqual(parent.Lhs[0], call.Args[0]) {
				return
			}
		case *ast.ReturnStmt:
			return
		}
	}
	p.Reportf(call.Pos(), "hotpath: append result does not feed back into the appended slice; use the self-append idiom on a reused scratch buffer (x = append(x, ...))")
}

// checkClosure flags function literals that both capture variables and
// escape. A capture-free literal is a static function value, and a captured
// literal that is only assigned to a local and called directly is inlined
// or stack-allocated (the solveLambdaQP eval pattern) — neither allocates.
func (p *Pass) checkClosure(lit *ast.FuncLit, stack []ast.Node, enclosing *ast.FuncDecl) {
	if !p.closureCaptures(lit) {
		return
	}
	if local, obj := p.closureBoundLocal(stack); local {
		if obj != nil && p.localOnlyCalled(obj, enclosing, lit) {
			return
		}
	}
	p.Reportf(lit.Pos(), "hotpath: closure captures variables and escapes, heap-allocating its context on every call; hoist the state into a workspace/method (see Engine.lambdaItem)")
}

// closureCaptures reports whether the literal references any variable
// declared outside it (excluding package-level and field references).
func (p *Pass) closureCaptures(lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || !v.Pos().IsValid() {
			return true
		}
		if v.Parent() == p.Pkg.Scope() || v.Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
			return false
		}
		return true
	})
	return captured
}

// closureBoundLocal reports whether the literal's immediate context is a
// simple binding `name := func(...){...}`, returning the bound object.
func (p *Pass) closureBoundLocal(stack []ast.Node) (bool, types.Object) {
	if len(stack) == 0 {
		return false, nil
	}
	as, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false, nil
	}
	id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return false, nil
	}
	return true, p.TypesInfo.ObjectOf(id)
}

// localOnlyCalled reports whether every use of obj inside fn (outside lit
// itself) is a direct call obj(...): the closure never escapes.
func (p *Pass) localOnlyCalled(obj types.Object, fn *ast.FuncDecl, lit *ast.FuncLit) bool {
	escapes := false
	WalkStack(fn.Body, func(stack []ast.Node, n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || p.TypesInfo.Uses[id] != obj {
			return true
		}
		if len(stack) > 0 {
			if call, ok := stack[len(stack)-1].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == id {
				return true
			}
		}
		escapes = true
		return false
	})
	return !escapes
}

// boxingExemptPkgs hold error-path formatting helpers: boxing their
// arguments only costs when the hot loop already failed.
var boxingExemptPkgs = map[string]bool{"fmt": true, "errors": true}

// checkBoxing flags arguments implicitly converted to an interface type
// when the concrete value is not pointer-shaped (pointers, channels, maps
// and funcs fit in the interface word; everything else is copied to the
// heap).
func (p *Pass) checkBoxing(call *ast.CallExpr) {
	f := p.funcOf(call)
	if f != nil && f.Pkg() != nil && boxingExemptPkgs[f.Pkg().Path()] {
		return
	}
	ft := p.TypesInfo.TypeOf(call.Fun)
	if ft == nil {
		return
	}
	sig, ok := ft.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice, no per-element boxing
			}
			param = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		if _, ok := param.Underlying().(*types.Interface); !ok {
			continue
		}
		at := p.TypesInfo.TypeOf(arg)
		if at == nil || isPointerShaped(at) {
			continue
		}
		if _, ok := at.Underlying().(*types.Interface); ok {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		p.Reportf(arg.Pos(), "hotpath: implicit conversion of %s to interface %s boxes the value on the heap", at, param)
	}
}

// isPointerShaped reports whether values of t fit in an interface data word
// without allocation.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

func (p *Pass) checkMapSliceLit(cl *ast.CompositeLit) {
	t := p.TypesInfo.TypeOf(cl)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		p.Reportf(cl.Pos(), "hotpath: map literal allocates; build the map once outside the hot loop")
	case *types.Slice:
		p.Reportf(cl.Pos(), "hotpath: slice literal allocates a fresh backing array; reuse a workspace buffer")
	}
}
