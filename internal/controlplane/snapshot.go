// Package controlplane turns the offline ADM-G solver into a long-lived
// routing control plane: a background pipeline re-solves each slot on a
// rolling horizon (warm-started from the previous converged iterate) and
// publishes the resulting routing table as an immutable snapshot that
// front-end lookups read lock-free. A memoization cache keyed by a
// quantized input digest short-circuits solves for near-identical slots.
//
// The package deliberately sits above internal/core (it drives the solver)
// and below the serving transport (internal/distsim exposes lookups over
// the wire through the Decider interface implemented by Router): it owns
// when to solve, what to publish, and how stale the published table is.
package controlplane

import (
	"math"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// SolveInfo records how the snapshot's routing table was produced.
type SolveInfo struct {
	Iterations int     // ADM-G iterations the producing solve ran
	Converged  bool    // whether it reached the residual tolerance
	Residual   float64 // final combined relative residual
	Warm       bool    // solve was seeded from the previous slot's iterate
	Cached     bool    // routing came from the memo cache, no solve ran
}

// Snapshot is one immutable published routing table: for every front-end
// a cumulative routing distribution over the datacenters, derived from
// the slot's converged λ. Snapshots are never mutated after Publish —
// readers hold them across an atomic pointer with no locks.
type Snapshot struct {
	Slot int64 // slot sequence number of the producing solve
	M, N int
	Info SolveInfo
	// PublishedUnixNanos is the wall-clock publish instant; the age of the
	// snapshot (now − published) is the serving staleness.
	PublishedUnixNanos int64

	// cum is the M×N slab of cumulative routing fractions: row i holds
	// the running sum of front-end i's routing distribution, ending at 1.
	// A binary search over row i inverts a uniform draw into a datacenter
	// pick with the λ-proportional distribution.
	cum []float64
}

// NewSnapshot builds a snapshot from a finalized allocation. Rows with no
// routed load (a zero-demand front-end) fall back to the uniform
// distribution so every lookup still returns a datacenter.
func NewSnapshot(slot int64, alloc *core.Allocation, info SolveInfo) *Snapshot {
	m := len(alloc.Lambda)
	n := len(alloc.MuMW)
	s := &Snapshot{Slot: slot, M: m, N: n, Info: info, cum: make([]float64, m*n)}
	for i := 0; i < m; i++ {
		row := s.cum[i*n : (i+1)*n]
		var total float64
		for j, v := range alloc.Lambda[i] {
			if v < 0 {
				v = 0
			}
			total += v
			row[j] = total
		}
		if total <= 0 {
			for j := range row {
				row[j] = float64(j+1) / float64(n)
			}
			continue
		}
		inv := 1 / total
		for j := range row {
			row[j] *= inv
		}
		row[n-1] = 1 // guard against rounding leaving the last bound < 1
	}
	return s
}

// Weights copies front-end fe's routing distribution (fractions summing
// to 1) into dst, which must have length N. It exists for tests and
// report tooling; the serving path uses Decide.
func (s *Snapshot) Weights(fe int, dst []float64) {
	row := s.cum[fe*s.N : (fe+1)*s.N]
	prev := 0.0
	for j, c := range row {
		dst[j] = c - prev
		prev = c
	}
}

// decide inverts the uniform draw u ∈ [0, 1) through front-end fe's
// cumulative distribution by branch-light binary search. It allocates
// nothing and reads only immutable data.
//
//ufc:hotpath
func (s *Snapshot) decide(fe int, u float64) int {
	n := s.N
	base := fe * n
	lo, hi := 0, n-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.cum[base+mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// uintToUniform maps a uint64 draw onto [0, 1) with 53-bit resolution —
// the standard float64 mantissa trick, so wire clients can send raw
// entropy instead of a float.
//
//ufc:hotpath
func uintToUniform(u uint64) float64 {
	return float64(u>>11) * (1.0 / (1 << 53))
}

// Router is the serving read side of the control plane: an atomic pointer
// to the current snapshot. Publish swaps the pointer; Decide resolves a
// lookup against whatever snapshot is current with zero locks and zero
// allocations. A Router with no published snapshot answers not-ok.
type Router struct {
	cur atomic.Pointer[Snapshot]
}

// Publish stamps s with the current wall clock and makes it the served
// snapshot. The swap is a single atomic pointer store: in-flight Decide
// calls finish against the snapshot they already loaded.
func (r *Router) Publish(s *Snapshot) {
	s.PublishedUnixNanos = time.Now().UnixNano()
	r.cur.Store(s)
}

// Current returns the served snapshot (nil before the first Publish).
func (r *Router) Current() *Snapshot { return r.cur.Load() }

// AgeNanos returns the age of the served snapshot — the serving staleness
// — or -1 before the first Publish.
func (r *Router) AgeNanos() int64 {
	s := r.cur.Load()
	if s == nil {
		return -1
	}
	return time.Now().UnixNano() - s.PublishedUnixNanos
}

// Decide implements the distsim.Decider lookup: it resolves front-end fe
// against the current snapshot using the caller-supplied entropy u. The
// returned slot and age let clients track solve freshness per decision.
// It is the control plane's hottest function: one atomic load, one
// binary search, no locks, no allocations.
//
//ufc:hotpath
func (r *Router) Decide(fe uint32, u uint64) (dc uint32, slot uint64, ageNanos int64, ok bool) {
	s := r.cur.Load()
	if s == nil || int(fe) >= s.M {
		return 0, 0, 0, false
	}
	j := s.decide(int(fe), uintToUniform(u))
	return uint32(j), uint64(s.Slot), time.Now().UnixNano() - s.PublishedUnixNanos, true
}

// clone returns a snapshot sharing s's immutable routing slab but carrying
// a fresh slot/info header — how cache hits republish an old table under a
// new slot without copying M×N floats.
func (s *Snapshot) clone(slot int64, info SolveInfo) *Snapshot {
	return &Snapshot{Slot: slot, M: s.M, N: s.N, Info: info, cum: s.cum}
}

// MaxRowError returns the largest deviation of any row's final cumulative
// bound from 1 — a structural sanity check used by tests.
func (s *Snapshot) MaxRowError() float64 {
	var worst float64
	for i := 0; i < s.M; i++ {
		if d := math.Abs(s.cum[(i+1)*s.N-1] - 1); d > worst {
			worst = d
		}
	}
	return worst
}
