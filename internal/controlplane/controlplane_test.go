package controlplane

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/telemetry"
	"repro/internal/telemetry/tracing"
)

func testTrace(t *testing.T, n, m, r int, cycle int64) (func(int64) *core.Instance, core.Options) {
	t.Helper()
	st, err := experiments.NewSyntheticTopology(experiments.Topology{N: n, M: m, Regions: r}, 7)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Workers: 2, Tolerance: core.OneServerTolerance(st.Instance(7))}
	if r > 1 {
		opts.SparsityCutoff = st.CutoffSec
	}
	return func(slot int64) *core.Instance {
		if cycle > 0 {
			slot %= cycle
		}
		return st.SlotInstance(7, slot)
	}, opts
}

func TestSnapshotWeightsAndDecide(t *testing.T) {
	trace, opts := testTrace(t, 4, 10, 1, 0)
	p, err := New(Config{Instance: trace, Solver: opts, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Stop() }()
	if err := p.RunSlot(); err != nil {
		t.Fatal(err)
	}
	s := p.Router().Current()
	if s == nil {
		t.Fatal("no snapshot after RunSlot")
	}
	if s.Slot != 0 || s.M != 10 || s.N != 4 {
		t.Fatalf("snapshot header: slot %d, %dx%d", s.Slot, s.M, s.N)
	}
	if e := s.MaxRowError(); e > 1e-9 {
		t.Fatalf("routing rows deviate from a distribution by %g", e)
	}
	w := make([]float64, s.N)
	for fe := 0; fe < s.M; fe++ {
		s.Weights(fe, w)
		var sum float64
		for dc, f := range w {
			if f < -1e-12 || f > 1+1e-12 {
				t.Fatalf("weight[%d][%d] = %g", fe, dc, f)
			}
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("fe %d weights sum to %g", fe, sum)
		}
	}
	// Decide must invert the distribution: u→0 lands on a positive-weight
	// datacenter, as does u→max.
	s.Weights(0, w)
	first, _, _, ok := p.Router().Decide(0, 0)
	if !ok {
		t.Fatal("decide failed")
	}
	if w[first] <= 0 {
		t.Fatalf("u=0 chose dc %d with weight %g", first, w[first])
	}
	last, _, _, _ := p.Router().Decide(0, ^uint64(0))
	if w[last] <= 0 {
		t.Fatalf("u=max chose dc %d with weight %g", last, w[last])
	}
	// And over many draws the empirical split must follow the weights.
	counts := make([]int, s.N)
	const draws = 200_000
	u := uint64(12345)
	for k := 0; k < draws; k++ {
		u = u*6364136223846793005 + 1442695040888963407 // LCG: cheap uniform entropy
		dc, _, _, ok := p.Router().Decide(3, u)
		if !ok {
			t.Fatal("decide failed")
		}
		counts[dc]++
	}
	s.Weights(3, w)
	for dc := 0; dc < s.N; dc++ {
		got := float64(counts[dc]) / draws
		if math.Abs(got-w[dc]) > 0.01 {
			t.Fatalf("dc %d: empirical share %.4f vs weight %.4f", dc, got, w[dc])
		}
	}
}

func TestDecideZeroAlloc(t *testing.T) {
	trace, opts := testTrace(t, 4, 10, 1, 0)
	p, err := New(Config{Instance: trace, Solver: opts})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Stop() }()
	if err := p.RunSlot(); err != nil {
		t.Fatal(err)
	}
	r := p.Router()
	var u uint64 = 1
	allocs := testing.AllocsPerRun(1000, func() {
		u = u*6364136223846793005 + 1442695040888963407
		if _, _, _, ok := r.Decide(uint32(u%10), u); !ok {
			panic("decide failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("Decide allocates %v per op, want 0", allocs)
	}
}

func TestWarmStartBeatsCold(t *testing.T) {
	const slots = 3
	run := func(warmStart bool) Report {
		trace, opts := testTrace(t, 4, 10, 1, 0)
		p, err := New(Config{Instance: trace, Solver: opts, WarmStart: warmStart})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = p.Stop() }()
		for s := 0; s < slots; s++ {
			if err := p.RunSlot(); err != nil {
				t.Fatal(err)
			}
		}
		return p.Report()
	}
	warm, cold := run(true), run(false)
	if cold.WarmSolves != 0 || cold.ColdSolves != slots {
		t.Fatalf("cold pipeline reports %d warm / %d cold solves", cold.WarmSolves, cold.ColdSolves)
	}
	if warm.WarmSolves != slots-1 || warm.ColdSolves != 1 {
		t.Fatalf("warm pipeline reports %d warm / %d cold solves", warm.WarmSolves, warm.ColdSolves)
	}
	if warm.Unconverged+cold.Unconverged != 0 {
		t.Fatalf("unconverged solves: warm %d cold %d", warm.Unconverged, cold.Unconverged)
	}
	if warm.WarmPerSolve() >= cold.ColdPerSolve() {
		t.Fatalf("warm %.0f iters/solve not below cold %.0f", warm.WarmPerSolve(), cold.ColdPerSolve())
	}
}

func TestMemoCacheHitRepublishes(t *testing.T) {
	const cycle = 2
	trace, opts := testTrace(t, 4, 10, 1, cycle)
	reg := telemetry.NewRegistry()
	p, err := New(Config{Instance: trace, Solver: opts, WarmStart: true, CacheSize: 8, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Stop() }()
	for s := 0; s < 2*cycle; s++ {
		if err := p.RunSlot(); err != nil {
			t.Fatal(err)
		}
	}
	r := p.Report()
	if r.CacheMisses != cycle || r.CacheHits != cycle {
		t.Fatalf("cache %d hits / %d misses, want %d / %d", r.CacheHits, r.CacheMisses, cycle, cycle)
	}
	if r.Solves != cycle {
		t.Fatalf("%d solves, want %d (hits must not solve)", r.Solves, cycle)
	}
	s := p.Router().Current()
	if s == nil || s.Slot != 2*cycle-1 {
		t.Fatalf("cache hit did not republish: slot %v", s)
	}
	if !s.Info.Cached {
		t.Fatal("republished snapshot not marked Cached")
	}
	if p.CacheLen() != cycle {
		t.Fatalf("cache holds %d entries, want %d", p.CacheLen(), cycle)
	}
	// A hit republish shares the routing slab with the cached snapshot —
	// O(1) work, not a copy.
	var shared bool
	for _, cached := range p.cache.entries {
		if &cached.cum[0] == &s.cum[0] {
			shared = true
		}
	}
	if !shared {
		t.Fatal("republished snapshot copied the routing slab")
	}
}

func TestCacheQuantizationDistinguishesInputs(t *testing.T) {
	trace, opts := testTrace(t, 4, 10, 1, 0)
	p, err := New(Config{Instance: trace, Solver: opts, CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Stop() }()
	// Distinct slots draw distinct inputs: no false hits.
	for s := 0; s < 3; s++ {
		if err := p.RunSlot(); err != nil {
			t.Fatal(err)
		}
	}
	if r := p.Report(); r.CacheHits != 0 || r.CacheMisses != 3 {
		t.Fatalf("distinct slots: %d hits / %d misses, want 0 / 3", r.CacheHits, r.CacheMisses)
	}
}

// TestCacheDigestScaleAware: inputs that differ only by a uniform factor
// (same shape, different magnitude) or only in a scalar field have
// different optima and must produce different keys. Regression test — the
// first digest normalized each array by its own max, so a flat ×1.2
// demand swing collided with its base slot.
func TestCacheDigestScaleAware(t *testing.T) {
	trace, _ := testTrace(t, 4, 10, 1, 0)
	base := trace(0)
	_, baseKey := digestInstance(nil, base, 1e-3)

	scaled := *base
	scaled.Arrivals = append([]float64(nil), base.Arrivals...)
	for i := range scaled.Arrivals {
		scaled.Arrivals[i] *= 1.2
	}
	if _, k := digestInstance(nil, &scaled, 1e-3); k == baseKey {
		t.Error("uniformly scaled arrivals share the base key")
	}

	repriced := *base
	repriced.FuelCellPriceUSD = base.FuelCellPriceUSD * 2
	if _, k := digestInstance(nil, &repriced, 1e-3); k == baseKey {
		t.Error("doubled fuel-cell price shares the base key")
	}

	reweighted := *base
	reweighted.WeightW = base.WeightW * 3
	if _, k := digestInstance(nil, &reweighted, 1e-3); k == baseKey {
		t.Error("tripled latency weight shares the base key")
	}

	// Jitter below the quantum must still collide — that is the cache's
	// whole point.
	jittered := *base
	jittered.Arrivals = append([]float64(nil), base.Arrivals...)
	for i := range jittered.Arrivals {
		jittered.Arrivals[i] *= 1 + 1e-7
	}
	if _, k := digestInstance(nil, &jittered, 1e-3); k != baseKey {
		t.Error("sub-quantum jitter changed the key")
	}
}

func TestMemoCacheEviction(t *testing.T) {
	c := newMemoCache(2)
	a, b, d := &Snapshot{Slot: 1}, &Snapshot{Slot: 2}, &Snapshot{Slot: 3}
	c.put("a", a)
	c.put("b", b)
	c.put("d", d) // evicts "a" (FIFO)
	if _, ok := c.get("a"); ok {
		t.Fatal("oldest entry not evicted")
	}
	for _, k := range []string{"b", "d"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("entry %q missing", k)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len %d, want 2", c.len())
	}
	var nilCache *memoCache
	if _, ok := nilCache.get("x"); ok {
		t.Fatal("nil cache hit")
	}
	nilCache.put("x", a) // must not panic
}

func TestPipelineReshape(t *testing.T) {
	// A trace whose topology changes shape mid-stream: the pipeline must
	// restart from a fresh state, not feed the old slab to the new shape.
	small, opts := testTrace(t, 4, 10, 1, 0)
	big, _ := testTrace(t, 6, 20, 1, 0)
	p, err := New(Config{
		Instance: func(slot int64) *core.Instance {
			if slot >= 2 {
				return big(slot)
			}
			return small(slot)
		},
		Solver:    opts,
		WarmStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Stop() }()
	for s := 0; s < 4; s++ {
		if err := p.RunSlot(); err != nil {
			t.Fatal(err)
		}
	}
	snap := p.Router().Current()
	if snap.M != 20 || snap.N != 6 {
		t.Fatalf("post-reshape snapshot is %dx%d", snap.M, snap.N)
	}
	r := p.Report()
	// Slot 2 restarts cold (fresh state); slots 1 and 3 warm-start.
	if r.WarmSolves != 2 || r.ColdSolves != 2 {
		t.Fatalf("reshape accounting: %d warm / %d cold, want 2 / 2", r.WarmSolves, r.ColdSolves)
	}
}

func TestRunLoopServesConcurrently(t *testing.T) {
	trace, opts := testTrace(t, 4, 10, 1, 2)
	p, err := New(Config{Instance: trace, Solver: opts, WarmStart: true, CacheSize: 4, SlotInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	// Hammer the read path from several goroutines while the loop
	// republishes — the race detector checks the snapshot swap.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			u := uint64(g + 1)
			for k := 0; k < 20_000; k++ {
				u = u*6364136223846793005 + 1442695040888963407
				if _, _, age, ok := p.Decide(uint32(u%10), u); !ok || age < 0 {
					t.Errorf("decide: ok=%v age=%d", ok, age)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil { // idempotent
		t.Fatal(err)
	}
	r := p.Report()
	if r.Solves == 0 || r.Slot < 0 {
		t.Fatalf("loop made no progress: %+v", r)
	}
}

func TestStatsPayloadRoundTrip(t *testing.T) {
	trace, opts := testTrace(t, 4, 10, 1, 2)
	p, err := New(Config{Instance: trace, Solver: opts, WarmStart: true, CacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Stop() }()
	for s := 0; s < 3; s++ {
		if err := p.RunSlot(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ParseStatsPayload(p.StatsPayload(nil))
	if err != nil {
		t.Fatal(err)
	}
	want := p.Report()
	if got.M != 10 || got.N != 4 {
		t.Fatalf("shape %dx%d, want 10x4", got.M, got.N)
	}
	if got.Solves != want.Solves || got.WarmSolves != want.WarmSolves ||
		got.CacheHits != want.CacheHits || got.Slot != want.Slot {
		t.Fatalf("round-trip mismatch: got %+v want %+v", got.Report, want)
	}
	if _, err := ParseStatsPayload([]float64{99}); err == nil {
		t.Fatal("short payload accepted")
	}
	bad := p.StatsPayload(nil)
	bad[0] = 42
	if _, err := ParseStatsPayload(bad); err == nil {
		t.Fatal("wrong version accepted")
	}
}

// TestTracedSolveBitIdentical: attaching a tracer to the pipeline must not
// change a single bit of the published routing tables or the iteration
// counts — spans observe the solve, they never participate in it. The
// traced decide path must likewise agree with the plain one exactly.
func TestTracedSolveBitIdentical(t *testing.T) {
	trace, opts := testTrace(t, 3, 6, 3, 2)
	run := func(tr *tracing.Recorder) []*Snapshot {
		p, err := New(Config{Instance: trace, Solver: opts, WarmStart: true, CacheSize: 4, Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = p.Stop() }() //ufc:discard test cleanup
		var snaps []*Snapshot
		for s := 0; s < 4; s++ {
			if err := p.RunSlot(); err != nil {
				t.Fatalf("slot %d: %v", s, err)
			}
			snaps = append(snaps, p.Router().Current())
		}
		return snaps
	}

	traceReg := tracing.NewRegistry()
	rec := traceReg.Recorder(tracing.Config{Component: "cp", IDs: tracing.NewIDSource(3), SampleEvery: 1})
	plain := run(nil)
	traced := run(rec)
	if rec.Recorded() == 0 {
		t.Fatal("traced run recorded no spans")
	}
	for s := range plain {
		a, b := plain[s], traced[s]
		if a.Slot != b.Slot || a.M != b.M || a.N != b.N || a.Info.Iterations != b.Info.Iterations {
			t.Fatalf("slot %d: header diverged: %+v vs %+v", s, a.Info, b.Info)
		}
		for k := range a.cum {
			if math.Float64bits(a.cum[k]) != math.Float64bits(b.cum[k]) {
				t.Fatalf("slot %d: cum[%d] = %x (plain) vs %x (traced)",
					s, k, math.Float64bits(a.cum[k]), math.Float64bits(b.cum[k]))
			}
		}
	}

	// DecideTraced is Decide plus a span; the decision tuple must match.
	p, err := New(Config{Instance: trace, Solver: opts, WarmStart: true, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Stop() }() //ufc:discard test cleanup
	if err := p.RunSlot(); err != nil {
		t.Fatal(err)
	}
	for fe := uint32(0); fe < 6; fe++ {
		for _, u := range []uint64{0, 1 << 32, 1<<63 + 12345, ^uint64(0)} {
			dc1, slot1, _, ok1 := p.Decide(fe, u)
			probe := rec.Root("probe")
			tc := probe.Context()
			probe.End()
			dc2, slot2, _, ok2 := p.DecideTraced(fe, u, tc)
			if dc1 != dc2 || slot1 != slot2 || ok1 != ok2 {
				t.Fatalf("fe=%d u=%d: Decide (%d,%d,%v) vs DecideTraced (%d,%d,%v)",
					fe, u, dc1, slot1, ok1, dc2, slot2, ok2)
			}
		}
	}
}
