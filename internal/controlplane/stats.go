package controlplane

import (
	"fmt"
	"time"

	"repro/internal/telemetry/tracing"
)

// The control-plane statistics vector exchanged over the wire (distsim's
// cpstats record carries opaque float64s; this package owns the layout).
// Version 1 indices:
const (
	statsIdxVersion = iota
	statsIdxM
	statsIdxN
	statsIdxSlot
	statsIdxSolves
	statsIdxWarmSolves
	statsIdxColdSolves
	statsIdxWarmIters
	statsIdxColdIters
	statsIdxUnconverged
	statsIdxCacheHits
	statsIdxCacheMisses
	statsIdxSolveNanos
	statsIdxAgeNanos
	statsLen
)

const statsVersion = 1

// Stats is the decoded statistics vector: the pipeline's Report plus the
// serving topology shape (which a remote load generator needs to know
// before it can address front-ends).
type Stats struct {
	M, N int
	Report
}

// Decide serves one routing decision from the current snapshot. Together
// with StatsPayload it makes *Pipeline implement distsim's Decider
// interface, so a hub can be handed the pipeline directly.
//
//ufc:hotpath
func (p *Pipeline) Decide(fe uint32, u uint64) (dc uint32, slot uint64, ageNanos int64, ok bool) {
	return p.router.Decide(fe, u)
}

// DecideTraced serves a traced routing decision: the snapshot read gets
// its own span parented under the hub's lookup span, completing the
// loadgen → hub → control-plane chain. Implements distsim.TraceDecider.
//
//ufc:hotpath
func (p *Pipeline) DecideTraced(fe uint32, u uint64, tc tracing.Context) (dc uint32, slot uint64, ageNanos int64, ok bool) {
	sp := p.cfg.Tracer.Start(tc, "cp.decide")
	dc, slot, ageNanos, ok = p.router.Decide(fe, u)
	sp.Attr("fe", int64(fe))
	sp.Attr("dc", int64(dc))
	if ok {
		sp.Attr("hit", 1)
	} else {
		sp.Attr("hit", 0)
	}
	sp.End()
	return dc, slot, ageNanos, ok
}

// StatsPayload appends the version-1 statistics vector to dst. All values
// are exact: every counter stays far below 2^53.
func (p *Pipeline) StatsPayload(dst []float64) []float64 {
	r := p.Report()
	var m, n int
	if s := p.router.Current(); s != nil {
		m, n = s.M, s.N
	} else {
		m, n = len(p.state.Lambda), len(p.state.Mu)
	}
	return append(dst,
		statsVersion,
		float64(m),
		float64(n),
		float64(r.Slot),
		float64(r.Solves),
		float64(r.WarmSolves),
		float64(r.ColdSolves),
		float64(r.WarmIterations),
		float64(r.ColdIterations),
		float64(r.Unconverged),
		float64(r.CacheHits),
		float64(r.CacheMisses),
		float64(r.SolveNanos),
		float64(r.AgeNanos),
	)
}

// ParseStatsPayload decodes a statistics vector produced by StatsPayload.
func ParseStatsPayload(vals []float64) (Stats, error) {
	var s Stats
	if len(vals) < statsLen {
		return s, fmt.Errorf("controlplane: stats payload has %d values, want at least %d", len(vals), statsLen)
	}
	if v := vals[statsIdxVersion]; v != statsVersion {
		return s, fmt.Errorf("controlplane: stats payload version %g, want %d", v, statsVersion)
	}
	s.M = int(vals[statsIdxM])
	s.N = int(vals[statsIdxN])
	s.Slot = int64(vals[statsIdxSlot])
	s.Solves = uint64(vals[statsIdxSolves])
	s.WarmSolves = uint64(vals[statsIdxWarmSolves])
	s.ColdSolves = uint64(vals[statsIdxColdSolves])
	s.WarmIterations = uint64(vals[statsIdxWarmIters])
	s.ColdIterations = uint64(vals[statsIdxColdIters])
	s.Unconverged = uint64(vals[statsIdxUnconverged])
	s.CacheHits = uint64(vals[statsIdxCacheHits])
	s.CacheMisses = uint64(vals[statsIdxCacheMisses])
	s.SolveNanos = uint64(vals[statsIdxSolveNanos])
	s.AgeNanos = int64(vals[statsIdxAgeNanos])
	return s, nil
}

// Freshness converts the reported snapshot age to a duration (-1ns if no
// snapshot is live).
func (s Stats) Freshness() time.Duration { return time.Duration(s.AgeNanos) }
