package controlplane

import (
	"encoding/binary"
	"math"

	"repro/internal/core"
)

// memoCache memoizes solved routing tables by a quantized digest of the
// slot's inputs: two slots whose prices, arrivals and carbon rates agree
// to within the quantum produce the same key and share one snapshot, so
// the second slot publishes without iterating at all. Capacity is bounded
// by FIFO eviction over an insertion ring — the rolling horizon revisits
// recent regimes (diurnal cycles), so recency is the right retention
// policy and an LRU's bookkeeping would buy little.
//
// Keys are the exact quantized byte strings, not hashes: a lookup is one
// map probe with no collision risk, and Go interns the comparison.
type memoCache struct {
	cap     int
	entries map[string]*Snapshot
	ring    []string // insertion order; head = oldest
	head    int
}

func newMemoCache(capacity int) *memoCache {
	if capacity <= 0 {
		return nil
	}
	return &memoCache{
		cap:     capacity,
		entries: make(map[string]*Snapshot, capacity),
		ring:    make([]string, 0, capacity),
	}
}

// get returns the snapshot memoized under key, if any. A nil cache always
// misses.
func (c *memoCache) get(key string) (*Snapshot, bool) {
	if c == nil {
		return nil, false
	}
	s, ok := c.entries[key]
	return s, ok
}

// put memoizes s under key, evicting the oldest entry at capacity.
func (c *memoCache) put(key string, s *Snapshot) {
	if c == nil {
		return
	}
	if _, exists := c.entries[key]; exists {
		c.entries[key] = s
		return
	}
	if len(c.ring) == c.cap {
		delete(c.entries, c.ring[c.head])
		c.ring[c.head] = key
		c.head = (c.head + 1) % c.cap
	} else {
		c.ring = append(c.ring, key)
	}
	c.entries[key] = s
}

// len reports the live entry count.
func (c *memoCache) len() int {
	if c == nil {
		return 0
	}
	return len(c.entries)
}

// digestInstance renders the solve-relevant inputs of inst — topology
// dimensions, arrivals, grid prices, carbon rates, fuel-cell price — as a
// quantized byte key. Each array is quantized relative to its own largest
// magnitude: value v becomes round(v/(q·ref)) with ref = max|v| over the
// array, so a 0.1% quantum means "every input agrees to 0.1% of the
// array's scale". dst is reused across slots; the returned string is a
// fresh copy suitable as a map key.
func digestInstance(dst []byte, inst *core.Instance, quantum float64) ([]byte, string) {
	m, n := inst.Cloud.M(), inst.Cloud.N()
	dst = dst[:0]
	dst = binary.AppendUvarint(dst, uint64(m))
	dst = binary.AppendUvarint(dst, uint64(n))
	dst = appendQuantized(dst, inst.Arrivals, quantum)
	dst = appendQuantized(dst, inst.PriceUSD, quantum)
	dst = appendQuantized(dst, inst.CarbonRate, quantum)
	dst = appendQuantizedScalar(dst, inst.FuelCellPriceUSD, quantum)
	dst = appendQuantizedScalar(dst, inst.WeightW, quantum)
	return dst, string(dst)
}

// appendQuantized appends round(v/(q·ref)) for every v, ref being the
// array's largest magnitude, preceded by ref itself quantized to the same
// relative precision. The per-value entries make the key shape-relative
// (jitter below the quantum collides, as intended); the leading ref entry
// keeps it scale-aware — two slots whose arrivals differ by a uniform
// factor have the same shape but different optima, and must not share a
// snapshot.
func appendQuantized(dst []byte, vals []float64, quantum float64) []byte {
	ref := 0.0
	for _, v := range vals {
		if a := math.Abs(v); a > ref {
			ref = a
		}
	}
	if ref == 0 {
		ref = 1
	}
	dst = appendQuantizedScalar(dst, ref, quantum)
	step := quantum * ref
	for _, v := range vals {
		dst = binary.AppendVarint(dst, int64(math.Round(v/step)))
	}
	return dst
}

// appendQuantizedScalar quantizes one value on a logarithmic grid with
// ~quantum relative resolution: values within the quantum of each other
// share a key entry, values a whole scale apart never do. A sign byte
// keeps 0, +1 and -1 distinct (log alone would conflate them).
func appendQuantizedScalar(dst []byte, v, quantum float64) []byte {
	switch {
	case v == 0:
		return append(dst, 0)
	case v > 0:
		dst = append(dst, 1)
	default:
		dst = append(dst, 2)
		v = -v
	}
	return binary.AppendVarint(dst, int64(math.Round(math.Log(v)/math.Log1p(quantum))))
}
