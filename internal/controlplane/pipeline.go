package controlplane

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/telemetry/tracing"
)

// Config parameterizes a rolling-horizon solve pipeline.
type Config struct {
	// Instance yields slot t's problem instance (prices, demand, carbon).
	// It is called once per slot from the pipeline goroutine. Required.
	Instance func(slot int64) *core.Instance
	// Solver configures the shared engine. The pipeline attaches its own
	// per-slot bookkeeping; Options.Probe may additionally be set by the
	// caller for exposition.
	Solver core.Options
	// WarmStart seeds each slot's solve with the previous converged
	// iterate (the rolling-horizon mode). When false every slot starts
	// from the zero state — the cold baseline the bench compares against.
	WarmStart bool
	// CacheSize bounds the memoization cache (entries); 0 disables it.
	CacheSize int
	// Quantum is the relative input quantization of the cache key
	// (default 1e-3: inputs agreeing to 0.1% of their scale share a key).
	Quantum float64
	// SlotInterval paces Run: each slot starts this long after the
	// previous one began (overruns start immediately). Zero free-runs.
	SlotInterval time.Duration
	// Metrics, when non-nil, is the registry the pipeline registers its
	// instruments on at construction.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records a span per slot solve (warm/cold,
	// iterations, cache outcome as attributes) and a child span per traced
	// routing decision. Nil disables tracing at zero cost.
	Tracer *tracing.Recorder
}

// Report is a point-in-time summary of the pipeline's work, consumed by
// the wire stats record and the bench tooling.
type Report struct {
	Slot           int64 // last published slot (-1 before the first)
	Solves         uint64
	WarmSolves     uint64
	ColdSolves     uint64
	WarmIterations uint64
	ColdIterations uint64
	Unconverged    uint64
	CacheHits      uint64
	CacheMisses    uint64
	SolveNanos     uint64 // cumulative solve wall-clock
	AgeNanos       int64  // current snapshot staleness (-1 if none)
}

// WarmPerSolve returns the mean iterations of warm-started solves.
func (r Report) WarmPerSolve() float64 {
	if r.WarmSolves == 0 {
		return 0
	}
	return float64(r.WarmIterations) / float64(r.WarmSolves)
}

// ColdPerSolve returns the mean iterations of cold solves.
func (r Report) ColdPerSolve() float64 {
	if r.ColdSolves == 0 {
		return 0
	}
	return float64(r.ColdIterations) / float64(r.ColdSolves)
}

// Pipeline is the write side of the control plane: a single background
// goroutine that ingests per-slot inputs, re-solves on a rolling horizon
// warm-started from the previous converged iterate, and publishes each
// slot's routing table to the Router. Solving never blocks a lookup —
// the Router swap is one atomic store at the end of each slot.
type Pipeline struct {
	cfg    Config
	router Router
	eng    *core.Engine
	state  *core.State
	cache  *memoCache
	digest []byte // reused key scratch

	slot int64

	solves      telemetry.Counter
	warmSolves  telemetry.Counter
	coldSolves  telemetry.Counter
	warmIters   telemetry.Counter
	coldIters   telemetry.Counter
	unconverged telemetry.Counter
	cacheHits   telemetry.Counter
	cacheMisses telemetry.Counter
	solveNanos  telemetry.Counter
	staleness   telemetry.Gauge // seconds, sampled at each slot boundary
	lastPublish telemetry.Gauge // unix seconds of the last publish
	solveDur    *telemetry.Histogram

	loopStarted bool
	stopOnce    sync.Once
	stop        chan struct{}
	done        chan struct{}
	runErr      error
}

// New validates cfg, builds the shared engine on slot 0's instance and
// returns an idle pipeline (no goroutine yet; call Run or step it with
// RunSlot).
func New(cfg Config) (*Pipeline, error) {
	if cfg.Instance == nil {
		return nil, errors.New("controlplane: Config.Instance is required")
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 1e-3
	}
	inst0 := cfg.Instance(0)
	eng, err := core.NewEngine(inst0, cfg.Solver)
	if err != nil {
		return nil, fmt.Errorf("controlplane: engine: %w", err)
	}
	p := &Pipeline{
		cfg:      cfg,
		eng:      eng,
		state:    core.NewState(inst0.Cloud.M(), inst0.Cloud.N()),
		cache:    newMemoCache(cfg.CacheSize),
		solveDur: telemetry.NewHistogram(telemetry.ExponentialBuckets(1e-3, 4, 12)),
		slot:     -1,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if reg := cfg.Metrics; reg != nil {
		reg.RegisterCounter("ufc_cp_solves_total", "control-plane slot solves", &p.solves)
		reg.RegisterCounter("ufc_cp_warm_solves_total", "slot solves seeded from the previous iterate", &p.warmSolves)
		reg.RegisterCounter("ufc_cp_cold_solves_total", "slot solves from the zero state", &p.coldSolves)
		reg.RegisterCounter("ufc_cp_warm_iterations_total", "ADM-G iterations across warm-started slot solves", &p.warmIters)
		reg.RegisterCounter("ufc_cp_cold_iterations_total", "ADM-G iterations across cold slot solves", &p.coldIters)
		reg.RegisterCounter("ufc_cp_unconverged_total", "slot solves that exhausted the iteration budget", &p.unconverged)
		reg.RegisterCounter("ufc_cp_cache_hits_total", "slots served from the solve memoization cache", &p.cacheHits)
		reg.RegisterCounter("ufc_cp_cache_misses_total", "slots that required a fresh solve", &p.cacheMisses)
		reg.RegisterCounter("ufc_cp_solve_nanoseconds_total", "cumulative slot solve wall-clock", &p.solveNanos)
		reg.RegisterGauge("ufc_cp_snapshot_age_seconds", "serving snapshot staleness at the last slot boundary", &p.staleness)
		reg.RegisterGauge("ufc_cp_last_publish_unix_seconds", "wall-clock instant of the last snapshot publish", &p.lastPublish)
		reg.RegisterHistogram("ufc_cp_solve_seconds", "slot solve wall-clock", p.solveDur)
	}
	return p, nil
}

// Router returns the read side served by this pipeline.
func (p *Pipeline) Router() *Router { return &p.router }

// Report snapshots the pipeline's counters.
func (p *Pipeline) Report() Report {
	return Report{
		Slot:           p.router.slotOrMinusOne(),
		Solves:         p.solves.Load(),
		WarmSolves:     p.warmSolves.Load(),
		ColdSolves:     p.coldSolves.Load(),
		WarmIterations: p.warmIters.Load(),
		ColdIterations: p.coldIters.Load(),
		Unconverged:    p.unconverged.Load(),
		CacheHits:      p.cacheHits.Load(),
		CacheMisses:    p.cacheMisses.Load(),
		SolveNanos:     p.solveNanos.Load(),
		AgeNanos:       p.router.AgeNanos(),
	}
}

func (r *Router) slotOrMinusOne() int64 {
	if s := r.cur.Load(); s != nil {
		return s.Slot
	}
	return -1
}

// RunSlot ingests and publishes exactly one slot. It is the pipeline's
// unit of work: Run calls it on the pacing loop, tests and the bench
// runner call it directly. Not safe for concurrent use with itself or
// Run — there is one engine.
func (p *Pipeline) RunSlot() error {
	p.slot++
	slot := p.slot
	inst := p.cfg.Instance(slot)

	// One root span per slot, cached or solved. Spans are observability
	// only: the solve below never reads them, so instrumented slots stay
	// bit-identical to uninstrumented ones.
	sp := p.cfg.Tracer.Root("cp.slot_solve")
	sp.Attr("cpslot", slot)

	var key string
	if p.cache != nil {
		p.digest, key = digestInstance(p.digest, inst, p.cfg.Quantum)
		if hit, ok := p.cache.get(key); ok {
			info := hit.Info
			info.Cached = true
			p.cacheHits.Inc()
			p.publish(hit.clone(slot, info))
			sp.Attr("cached", 1)
			sp.Attr("iterations", int64(info.Iterations))
			sp.End()
			return nil
		}
		p.cacheMisses.Inc()
	}

	if err := p.eng.Reset(inst); err != nil {
		return fmt.Errorf("controlplane: slot %d reset: %w", slot, err)
	}
	if m, n := inst.Cloud.M(), inst.Cloud.N(); m != len(p.state.Lambda) || n != len(p.state.Mu) {
		// Topology reshape: the old iterate no longer fits; restart cold.
		p.state = core.NewState(m, n)
	} else if !p.cfg.WarmStart {
		p.state.Zero()
	}
	warm := p.cfg.WarmStart && slot > 0
	t0 := time.Now()
	alloc, _, stats, err := p.eng.SolveState(p.state)
	dur := time.Since(t0)
	if err != nil && !errors.Is(err, core.ErrNotConverged) {
		return fmt.Errorf("controlplane: slot %d solve: %w", slot, err)
	}
	p.solves.Inc()
	p.solveNanos.Add(uint64(dur))
	p.solveDur.Observe(dur.Seconds())
	if warm && stats.WarmStarted {
		p.warmSolves.Inc()
		p.warmIters.Add(uint64(stats.Iterations))
	} else {
		p.coldSolves.Inc()
		p.coldIters.Add(uint64(stats.Iterations))
	}
	if !stats.Converged {
		p.unconverged.Inc()
	}

	snap := NewSnapshot(slot, alloc, SolveInfo{
		Iterations: stats.Iterations,
		Converged:  stats.Converged,
		Residual:   stats.FinalResidual,
		Warm:       warm && stats.WarmStarted,
	})
	p.cache.put(key, snap)
	p.publish(snap)
	sp.Attr("cached", 0)
	sp.Attr("iterations", int64(stats.Iterations))
	if warm && stats.WarmStarted {
		sp.Attr("warm", 1)
	} else {
		sp.Attr("warm", 0)
	}
	if stats.Converged {
		sp.Attr("converged", 1)
	} else {
		sp.Attr("converged", 0)
	}
	sp.End()
	return nil
}

// publish records the outgoing snapshot's final staleness (the bound the
// pipeline is holding) and swaps the new one in.
func (p *Pipeline) publish(s *Snapshot) {
	if age := p.router.AgeNanos(); age >= 0 {
		p.staleness.Set(float64(age) / 1e9)
	}
	p.router.Publish(s)
	p.lastPublish.Set(float64(s.PublishedUnixNanos) / 1e9)
}

// Run starts the background slot loop. Each slot begins SlotInterval
// after the previous one began (immediately on overrun; back-to-back when
// the interval is zero) until Stop. The first solve happens before Run
// returns, so callers observe a live snapshot immediately.
func (p *Pipeline) Run() error {
	if err := p.RunSlot(); err != nil {
		return err
	}
	p.loopStarted = true
	go p.loop()
	return nil
}

func (p *Pipeline) loop() {
	defer close(p.done)
	for {
		next := time.Now().Add(p.cfg.SlotInterval)
		select {
		case <-p.stop:
			return
		default:
		}
		if err := p.RunSlot(); err != nil {
			p.runErr = err
			return
		}
		if wait := time.Until(next); wait > 0 {
			select {
			case <-p.stop:
				return
			case <-time.After(wait):
			}
		}
	}
}

// Stop halts the slot loop (waiting for any in-flight solve), releases
// the engine and returns the first background error, if any. Idempotent.
// The Router keeps serving the last published snapshot.
func (p *Pipeline) Stop() error {
	p.stopOnce.Do(func() {
		close(p.stop)
	})
	if p.loopStarted {
		<-p.done
	}
	p.eng.Close()
	return p.runErr
}

// CacheLen reports the live memo-cache entry count (tests).
func (p *Pipeline) CacheLen() int { return p.cache.len() }
