package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/carbon"
	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/qp"
	"repro/internal/telemetry"
	"repro/internal/utility"
)

// Solver errors.
var (
	ErrNotConverged = errors.New("core: ADM-G did not converge within the iteration budget")
	ErrBadOptions   = errors.New("core: invalid solver options")
	ErrBadState     = errors.New("core: state dimensions do not match the instance")
)

// Options configures the distributed 4-block ADM-G solver.
type Options struct {
	// Strategy selects Hybrid (default), GridOnly or FuelCellOnly.
	Strategy Strategy
	// Rho is the augmented-Lagrangian penalty ρ (paper default 0.3).
	Rho float64
	// Epsilon is the Gaussian back-substitution step ε ∈ (0.5, 1]
	// (default 1).
	Epsilon float64
	// MaxIterations bounds the ADM-G loop (default 2000).
	MaxIterations int
	// Tolerance is the relative convergence tolerance on the routing
	// coupling and dual stationarity (default 2.5e-4: at the paper's
	// scenario scale this is on the order of one misrouted server).
	Tolerance float64
	// DisableCorrection skips the Gaussian back-substitution step,
	// degrading ADM-G to a plain (convergence-unguaranteed) 4-block
	// ADMM — the ablation discussed in §III-A.
	DisableCorrection bool
	// TrackResiduals records the residual after every iteration in
	// Stats.ResidualTrace.
	TrackResiduals bool
	// SparsityCutoff, when positive, restricts routing to (front-end,
	// datacenter) pairs whose propagation latency is at most this many
	// seconds: off-cutoff pairs have λ_ij = a_ij = φ_ij ≡ 0 for the whole
	// solve and every M×N loop — steps, dual updates, residuals — walks
	// only the feasible pairs, so per-iteration work scales with the mask
	// size instead of M·N. Every front-end keeps at least its nearest
	// datacenter, so the per-row demand constraint stays feasible. Zero
	// (the default) keeps the dense paper solver, bit-identical to an
	// engine built before this option existed. Sparse solves require the
	// Quadratic or Linear utility (the exact λ-QP path).
	SparsityCutoff float64
	// Workers fans the per-front-end λ-steps and per-datacenter
	// μ/ν/a-steps of each Iterate across this many goroutines (0 or 1 =
	// serial). Every work item writes to a fixed index and no reduction
	// is reordered, so parallel iterates are bit-identical to serial
	// ones. Engines iterated with Workers > 1 must be released with
	// Close; Solve and SolveFrom do this automatically.
	Workers int
	// Probe, when non-nil, receives the solver's telemetry: per-block
	// phase timings from Iterate and per-iteration residuals plus solve
	// outcomes from SolveState. Recording is allocation-free, never feeds
	// back into the numerics, and a nil probe costs one predictable
	// branch per record point. One probe may aggregate many engines.
	Probe *telemetry.SolverProbe
}

func (o Options) withDefaults() Options {
	if o.Strategy == 0 {
		o.Strategy = Hybrid
	}
	if o.Rho == 0 {
		o.Rho = 0.3
	}
	if o.Epsilon == 0 {
		o.Epsilon = 1
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 2000
	}
	if o.Tolerance == 0 {
		o.Tolerance = DefaultTolerance
	}
	return o
}

// DefaultTolerance is the relative routing-residual tolerance used when
// Options.Tolerance is zero. It matches the paper's scenario scale:
// arrivals per front-end are in the thousands, so 2.5e-4 of the peak is
// on the order of one misrouted server.
const DefaultTolerance = 2.5e-4

// OneServerTolerance returns the relative tolerance at which the
// instance's residual corresponds to roughly one server of misrouted
// load. Residuals are measured relative to the peak per-front-end
// arrival rate, so at a fixed fleet capacity the default tolerance
// demands ~M× more absolute precision as front-ends multiply — far past
// the point where tighter routing changes any provisioning decision.
// Large-topology sweeps and the rolling-horizon control plane solve at
// this tolerance instead; it never loosens below the default.
func OneServerTolerance(inst *Instance) float64 {
	var peak float64
	for _, a := range inst.Arrivals {
		if a > peak {
			peak = a
		}
	}
	if peak*DefaultTolerance >= 1 {
		// One server is already within the default's absolute precision.
		return DefaultTolerance
	}
	return 1 / peak
}

func (o Options) validate() error {
	if o.Rho < 0 {
		return fmt.Errorf("rho %g: %w", o.Rho, ErrBadOptions)
	}
	if o.Epsilon <= 0.5 || o.Epsilon > 1 {
		return fmt.Errorf("epsilon %g outside (0.5, 1]: %w", o.Epsilon, ErrBadOptions)
	}
	if o.Tolerance < 0 {
		return fmt.Errorf("tolerance %g: %w", o.Tolerance, ErrBadOptions)
	}
	if o.MaxIterations < 0 {
		return fmt.Errorf("max iterations %d: %w", o.MaxIterations, ErrBadOptions)
	}
	if o.Workers < 0 {
		return fmt.Errorf("workers %d: %w", o.Workers, ErrBadOptions)
	}
	if o.SparsityCutoff < 0 {
		return fmt.Errorf("sparsity cutoff %g: %w", o.SparsityCutoff, ErrBadOptions)
	}
	switch o.Strategy {
	case Hybrid, GridOnly, FuelCellOnly:
	default:
		return fmt.Errorf("unknown strategy %d: %w", int(o.Strategy), ErrBadOptions)
	}
	return nil
}

// Stats reports solver behaviour for one slot.
type Stats struct {
	Iterations    int
	Converged     bool
	FinalResidual float64 // combined relative primal residual
	// WarmStarted reports whether the solve was seeded from a nonzero
	// iterate. Rolling-horizon callers use it to attribute iteration
	// counts to warm vs cold starts without attaching a probe.
	WarmStarted bool
	// ResidualTrace holds the residual after each iteration when
	// Options.TrackResiduals is set. It is a fresh copy per solve — safe
	// to retain across warm-started SolveState/SolveFrom calls on the
	// same engine.
	ResidualTrace []float64
}

// State is the full iterate of the distributed algorithm. Power variables
// (Mu, Nu and the dual Phi) are kept in the engine's per-datacenter
// "server-equivalent" scaling — power divided by β_j — so that all four
// ADMM blocks share the workload scale (see Engine). It is exported so the
// message-passing runtime (internal/distsim) can carry the same state
// through real message exchanges and produce bit-identical iterates.
type State struct {
	Lambda [][]float64 // λ_ij, M×N
	A      [][]float64 // a_ij, M×N (auxiliary routing copies)
	Mu     []float64   // μ_j/β_j, N (server-equivalents)
	Nu     []float64   // ν_j/β_j, N (server-equivalents)
	Phi    []float64   // φ_j, N (power-balance duals, $/server-equivalent)
	Varphi [][]float64 // φ_ij, M×N (a=λ duals)
}

// NewState returns the zero-initialized iterate (the paper initializes all
// variables to 0). All six blocks share one contiguous backing slab —
// (3M+3)·N floats — so building a state costs a constant number of
// allocations however large the topology, and row sweeps walk memory
// sequentially. Rows are full-capacity views: an append on one can never
// bleed into the next.
func NewState(m, n int) *State {
	slab := make([]float64, (3*m+3)*n)
	s := &State{}
	s.Lambda, slab = carveRows(slab, m, n)
	s.A, slab = carveRows(slab, m, n)
	s.Varphi, slab = carveRows(slab, m, n)
	s.Mu, slab = slab[:n:n], slab[n:]
	s.Nu, slab = slab[:n:n], slab[n:]
	s.Phi = slab[:n:n]
	return s
}

// Zero resets the iterate to the cold-start state in place, reusing the
// backing slab. Rolling-horizon callers use it to run cold-baseline
// solves on the same State they otherwise warm-start.
func (s *State) Zero() {
	for i := range s.Lambda {
		row := s.Lambda[i]
		for j := range row {
			row[j] = 0
		}
		row = s.A[i]
		for j := range row {
			row[j] = 0
		}
		row = s.Varphi[i]
		for j := range row {
			row[j] = 0
		}
	}
	for j := range s.Mu {
		s.Mu[j], s.Nu[j], s.Phi[j] = 0, 0, 0
	}
}

// Engine carries the per-agent sub-problem solvers of §III-C. Its step
// methods are pure with respect to the engine (safe for concurrent use by
// different agents) and are shared between the in-process sequential loop
// and the message-passing runtime.
//
// Scaling: the paper's single penalty ρ implicitly assumes the routing
// variables (servers) and power variables (watts) live on comparable
// scales. We make that explicit by measuring each datacenter's power in
// "server-equivalents" — power divided by β_j = (P_peak − P_idle)·PUE_j —
// which turns the power-balance constraint (15) into
//
//	α_j/β_j + Σ_i a_ij − μ'_j − ν'_j = 0
//
// with every term on the workload scale. Prices are scaled the other way
// (p' = p·β_j), leaving the objective value unchanged. This is a pure
// change of units; the algorithm is otherwise §III-C verbatim.
type Engine struct {
	inst *Instance
	opts Options
	m, n int

	alphaEq []float64   // α_j/β_j (server-equivalents)
	beta    []float64   // β_j, MW per workload unit (for unit conversion)
	capEq   []float64   // effective μ_j^max/β_j per strategy
	p0Eq    []float64   // p0·β_j, $ per server-equivalent-hour
	pEq     []float64   // p_j·β_j
	cEq     []float64   // C_j·β_j, tons per server-equivalent-hour
	lat     [][]float64 // cached latency rows (Cloud.LatencyRow allocates)

	// sp is the routing-feasibility mask (see sparsity.go); nil when
	// Options.SparsityCutoff is zero and every loop runs dense. spCloud
	// remembers which cloud the mask was built from so Reset with the same
	// topology object skips the rebuild.
	sp      *sparsity
	spCloud *model.Cloud

	// rho is the effective penalty: Options.Rho times the instance's
	// marginal-cost scale, so the paper's ρ = 0.3 sits in the regime
	// where the augmented-Lagrangian curvature matches the objective's
	// gradients regardless of the instance's units.
	rho float64
	// dualScale normalizes dual-change residuals in the convergence test:
	// the larger of the marginal-cost scale and ρ·loadScale. A dual step
	// is ρ times a constraint violation, so measuring dual changes against
	// ρ·loadScale asks the same question as the coupling term — "is the
	// violation driving the duals below tolerance×loadScale?" — which
	// keeps the two criteria commensurate when the auto-scaled ρ is large
	// (small per-front-end arrivals). At the paper's scale ρ·loadScale is
	// far below the cost scale and the historical behavior is unchanged.
	dualScale float64

	// Reusable per-iteration buffers (see workspace.go). Iterate and
	// SolveState use these and are therefore NOT safe for concurrent use
	// on the same engine; the exported step methods remain pure.
	scratch iterScratch
	ws      []*StepWorkspace
	pool    *workerPool // spawned lazily on the first parallel Iterate
	// iterState points at the state currently being iterated so the
	// fan-out phases (methods, not closures) can reach it without
	// per-call allocations.
	iterState *State
}

// NewEngine validates the instance and options and prepares an engine.
func NewEngine(inst *Instance, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	m, n := inst.Cloud.M(), inst.Cloud.N()
	e := &Engine{
		opts:    opts,
		m:       m,
		n:       n,
		alphaEq: make([]float64, n),
		beta:    make([]float64, n),
		capEq:   make([]float64, n),
		p0Eq:    make([]float64, n),
		pEq:     make([]float64, n),
		cEq:     make([]float64, n),
		lat:     matrixRows(m, n),
	}
	e.scratch.init(m, n)
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	e.ws = make([]*StepWorkspace, workers)
	for w := range e.ws {
		e.ws[w] = e.newStepWorkspace()
	}
	if err := e.configure(inst); err != nil {
		return nil, err
	}
	return e, nil
}

// configure derives all per-datacenter scaled parameters, the latency
// cache and the effective penalty from inst. It is shared by NewEngine and
// Reset; inst must already be validated and dimension-compatible.
func (e *Engine) configure(inst *Instance) error {
	m, n := e.m, e.n
	e.inst = inst
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			e.lat[i][j] = inst.Cloud.LatencySec(i, j)
		}
	}
	if cut := e.opts.SparsityCutoff; cut > 0 {
		switch inst.Utility.(type) {
		case utility.Quadratic, utility.Linear:
		default:
			return fmt.Errorf("core: SparsityCutoff %g needs the Quadratic or Linear utility (exact masked λ-step), got %T: %w",
				cut, inst.Utility, ErrBadOptions)
		}
		if e.sp == nil || e.spCloud != inst.Cloud {
			e.sp = buildSparsity(e.lat, cut)
			e.spCloud = inst.Cloud
		}
	} else {
		e.sp, e.spCloud = nil, nil
	}
	opts := e.opts
	for j := 0; j < n; j++ {
		dc := inst.Cloud.Datacenters[j]
		beta := inst.BetaMW(j)
		if beta <= 0 {
			return fmt.Errorf("core: datacenter %d has zero dynamic power range", j)
		}
		e.beta[j] = beta
		e.alphaEq[j] = inst.AlphaMW(j) / beta
		e.p0Eq[j] = inst.FuelCellPriceUSD * beta
		e.pEq[j] = inst.PriceUSD[j] * beta
		e.cEq[j] = inst.CarbonRate[j] * beta
		switch opts.Strategy {
		case GridOnly:
			e.capEq[j] = 0
		default:
			e.capEq[j] = dc.FuelCellMaxMW / beta
		}
	}
	if opts.Strategy == FuelCellOnly {
		// ν ≡ 0 requires fuel cells to cover worst-case demand.
		for j := 0; j < n; j++ {
			if peak := inst.PeakDemandMW(j); e.capEq[j]*e.beta[j] < peak-1e-9 {
				return fmt.Errorf("datacenter %d: capacity %g MW < peak demand %g MW: %w",
					j, e.capEq[j]*e.beta[j], peak, ErrFuelCellDeficit)
			}
		}
	}
	// Effective penalty: Options.Rho times an estimate of the objective's
	// curvature/gradient scale in the (scaled) variable space, so that the
	// paper's ρ = 0.3 lands in the fast-convergence regime whatever units
	// the instance uses. The estimate combines the latency-utility
	// curvature (≈ 2w·L̄²·N/Ā per variable) with the marginal-cost
	// gradient scale divided by the load scale.
	var costScale float64
	for j := 0; j < n; j++ {
		costScale += e.p0Eq[j] + e.pEq[j] + e.cEq[j]*inst.EmissionCost[j].Marginal(0)
	}
	costScale /= float64(2 * n)
	meanA, cnt := 0.0, 0
	for _, a := range inst.Arrivals {
		if a > 0 {
			meanA += a
			cnt++
		}
	}
	if cnt > 0 {
		meanA /= float64(cnt)
	} else {
		meanA = 1
	}
	var meanLat2 float64
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			l := e.lat[i][j]
			meanLat2 += l * l
		}
	}
	meanLat2 /= float64(m * n)
	curvature := 2 * inst.WeightW * meanLat2 * float64(n) / meanA
	// The extra 400/meanA factor was fit empirically: across two orders
	// of magnitude of fleet size the iteration-count-minimizing penalty
	// tracks curvature/meanA, i.e. ρ* ∝ w·L̄²·N/Ā² (see the ablation
	// bench BenchmarkAblationRho).
	scale := math.Max(curvature, costScale/meanA) * 400 / meanA
	if scale < 1e-15 {
		scale = 1e-15
	}
	e.rho = opts.Rho * scale
	var peakArrival float64
	for _, a := range inst.Arrivals {
		if a > peakArrival {
			peakArrival = a
		}
	}
	e.dualScale = math.Max(math.Max(costScale, e.rho*peakArrival), 1e-12)
	return nil
}

// Reset swaps in a new slot's instance — prices, arrivals, carbon rates,
// or even a different topology. With unchanged (M, N) dimensions no
// scratch is reallocated, and the caller's iterate (if any) is untouched —
// exactly what warm-starting the next hourly slot wants. When the
// dimensions change, every engine buffer (scaled parameters, latency
// cache, iteration scratch, step workspaces, sparsity mask) is rebuilt at
// the new shape — never aliased to the old one — and any worker pool is
// stopped first, because its goroutines hold references to the old
// workspaces (it respawns lazily on the next parallel Iterate). States
// from the old shape do not fit the resized engine; start from NewState.
func (e *Engine) Reset(inst *Instance) error {
	if err := inst.Validate(); err != nil {
		return err
	}
	if m, n := inst.Cloud.M(), inst.Cloud.N(); m != e.m || n != e.n {
		e.resize(m, n)
	}
	return e.configure(inst)
}

// resize rebuilds every dimension-dependent buffer at the new shape.
func (e *Engine) resize(m, n int) {
	e.Close() // worker goroutines captured the old e.ws pointers
	e.m, e.n = m, n
	e.alphaEq = make([]float64, n)
	e.beta = make([]float64, n)
	e.capEq = make([]float64, n)
	e.p0Eq = make([]float64, n)
	e.pEq = make([]float64, n)
	e.cEq = make([]float64, n)
	e.lat = matrixRows(m, n)
	e.sp, e.spCloud = nil, nil
	e.scratch = iterScratch{}
	e.scratch.init(m, n)
	for w := range e.ws {
		e.ws[w] = e.newStepWorkspace()
	}
}

// Instance returns the engine's problem instance.
func (e *Engine) Instance() *Instance { return e.inst }

// Options returns the effective (defaulted) options.
func (e *Engine) Options() Options { return e.opts }

// LambdaStep solves the per-front-end λ-minimization (17):
//
//	min −wU(λ_i) + Σ_j (φ_ij λ_ij + ρ/2 (λ_ij² − 2 a_ij λ_ij))
//	s.t. Σ_j λ_ij = A_i, λ_ij ≥ 0.
//
// It is pure with respect to the engine; long-running agents should hold a
// StepWorkspace and call LambdaStepInto to avoid the per-call allocations.
func (e *Engine) LambdaStep(i int, aRow, varphiRow []float64) ([]float64, error) {
	dst := make([]float64, e.n)
	if err := e.LambdaStepInto(e.newStepWorkspace(), i, aRow, varphiRow, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// LambdaStepInto is the allocation-free λ-minimization: the result is
// written into dst (length N) and ws provides all scratch. Concurrent
// callers must use distinct workspaces.
//
// For the Quadratic and Linear utilities the sub-problem is
//
//	min ½ρ‖λ‖² + ½s(Lᵀλ)² + cᵀλ  over {λ ≥ 0, Σλ = A_i}
//
// (s = 2w/A_i, s = 0 respectively), an identity-plus-rank-one QP solved
// exactly by solveLambdaQP; other utilities fall back to the generic
// projected-gradient path, which allocates.
//
//ufc:hotpath
func (e *Engine) LambdaStepInto(ws *StepWorkspace, i int, aRow, varphiRow, dst []float64) error {
	if e.sp != nil {
		return e.lambdaStepMasked(ws, i, aRow, varphiRow, dst)
	}
	n := e.n
	arrivals := e.inst.Arrivals[i]
	if arrivals <= 0 {
		for j := 0; j < n; j++ {
			dst[j] = 0
		}
		return nil
	}
	rho := e.rho
	lat := e.lat[i]

	switch u := e.inst.Utility.(type) {
	case utility.Quadratic:
		// −wU = (w/A_i)(Σλ_ij L_ij)² → curvature s = 2w/A_i along L.
		cvec := ws.cn
		for j := 0; j < n; j++ {
			cvec[j] = varphiRow[j] - rho*aRow[j]
		}
		e.solveLambdaQP(ws, cvec, lat, 2*e.inst.WeightW/arrivals, arrivals, dst)
		return nil
	case utility.Linear:
		// −wU = w Σλ_ij L_ij → linear term only.
		cvec := ws.cn
		for j := 0; j < n; j++ {
			cvec[j] = e.inst.WeightW*lat[j] + varphiRow[j] - rho*aRow[j]
		}
		e.solveLambdaQP(ws, cvec, lat, 0, arrivals, dst)
		return nil
	default:
		x, err := e.lambdaProjGrad(u, lat, arrivals, aRow, varphiRow)
		if err != nil {
			return err
		}
		copy(dst, x)
		return nil
	}
}

// lambdaStepMasked is the sparse λ-minimization: the sub-problem is the
// dense one restricted to the feasible columns of front-end i (off-mask
// coordinates are pinned at 0, which only shrinks the simplex), gathered
// into compact workspace vectors and solved by the same exact QP. Only the
// masked entries of dst are written; callers keep off-mask entries at zero
// (NewState starts there and masked solves never move them).
//
//ufc:hotpath
func (e *Engine) lambdaStepMasked(ws *StepWorkspace, i int, aRow, varphiRow, dst []float64) error {
	idx := e.sp.rows[i]
	k := len(idx)
	arrivals := e.inst.Arrivals[i]
	if arrivals <= 0 {
		for _, j := range idx {
			dst[j] = 0
		}
		return nil
	}
	rho := e.rho
	full := e.lat[i]
	lat := ws.ln[:k]
	for t, j := range idx {
		lat[t] = full[j]
	}
	cvec, out := ws.cn[:k], ws.xn[:k]
	switch e.inst.Utility.(type) {
	case utility.Quadratic:
		for t, j := range idx {
			cvec[t] = varphiRow[j] - rho*aRow[j]
		}
		e.solveLambdaQP(ws, cvec, lat, 2*e.inst.WeightW/arrivals, arrivals, out)
	case utility.Linear:
		w := e.inst.WeightW
		for t, j := range idx {
			cvec[t] = w*lat[t] + varphiRow[j] - rho*aRow[j]
		}
		e.solveLambdaQP(ws, cvec, lat, 0, arrivals, out)
	default:
		// configure rejects this combination; unreachable via the API.
		return fmt.Errorf("core: masked λ-step with %T utility: %w", e.inst.Utility, ErrBadOptions)
	}
	for t, j := range idx {
		dst[j] = out[t]
	}
	return nil
}

// LambdaStepCompactInto is LambdaStepInto over compact vectors: aC,
// varphiC and dst are indexed by FeasibleCols(i) (length = mask row size).
// Distributed front-end agents use it to keep their per-iteration state
// and messages proportional to the mask instead of N. On a dense engine it
// is LambdaStepInto verbatim (compact == full).
//
//ufc:hotpath
func (e *Engine) LambdaStepCompactInto(ws *StepWorkspace, i int, aC, varphiC, dst []float64) error {
	if e.sp == nil {
		return e.LambdaStepInto(ws, i, aC, varphiC, dst)
	}
	idx := e.sp.rows[i]
	k := len(idx)
	if len(aC) != k || len(varphiC) != k || len(dst) != k {
		return ErrBadState
	}
	arrivals := e.inst.Arrivals[i]
	if arrivals <= 0 {
		for t := range dst {
			dst[t] = 0
		}
		return nil
	}
	rho := e.rho
	full := e.lat[i]
	lat := ws.ln[:k]
	for t, j := range idx {
		lat[t] = full[j]
	}
	cvec := ws.cn[:k]
	switch e.inst.Utility.(type) {
	case utility.Quadratic:
		for t := 0; t < k; t++ {
			cvec[t] = varphiC[t] - rho*aC[t]
		}
		e.solveLambdaQP(ws, cvec, lat, 2*e.inst.WeightW/arrivals, arrivals, dst)
	case utility.Linear:
		w := e.inst.WeightW
		for t := 0; t < k; t++ {
			cvec[t] = w*lat[t] + varphiC[t] - rho*aC[t]
		}
		e.solveLambdaQP(ws, cvec, lat, 0, arrivals, dst)
	default:
		return fmt.Errorf("core: masked λ-step with %T utility: %w", e.inst.Utility, ErrBadOptions)
	}
	return nil
}

// solveLambdaQP solves min ½ρ‖λ‖² + ½s(lᵀλ)² + cᵀλ over the scaled simplex
// {λ ≥ 0, Σλ = total} exactly, writing the optimum into dst.
//
// For a fixed t = lᵀλ the problem reduces to a Euclidean projection:
// λ*(t) = Proj_simplex(−(c + s·t·l)/ρ, total), and a fixed point of
// t ↦ lᵀλ*(t) satisfies the KKT conditions of the full (strictly convex)
// QP. g(t) = lᵀλ*(t) − t is strictly decreasing — the projection is a
// monotone operator and the input moves along −l — so the unique root on
// [total·min(l), total·max(l)] is found by bisection to machine precision.
//
//ufc:hotpath
func (e *Engine) solveLambdaQP(ws *StepWorkspace, c, l []float64, s, total float64, dst []float64) {
	n := len(c)
	rho := e.rho
	eval := func(t float64) float64 {
		// Slice to the problem size: masked callers pass compact c/l/dst
		// prefixes shorter than the workspace (dense callers pass n == N,
		// the same floats as before).
		v := ws.vn[:n]
		for j := 0; j < n; j++ {
			v[j] = -(c[j] + s*t*l[j]) / rho
		}
		qp.ProjectSimplexInto(dst, ws.pn, v, total)
		var lt float64
		for j := 0; j < n; j++ {
			lt += l[j] * dst[j]
		}
		return lt
	}
	if s == 0 {
		eval(0)
		return
	}
	lmin, lmax := l[0], l[0]
	for _, v := range l[1:] {
		if v < lmin {
			lmin = v
		}
		if v > lmax {
			lmax = v
		}
	}
	lo, hi := total*lmin, total*lmax
	if hi <= lo {
		// All latencies equal: t is forced, one projection suffices.
		eval(lo)
		return
	}
	// g(lo) ≥ 0 and g(hi) ≤ 0 hold by construction (lᵀλ ∈ [lo, hi] for
	// every feasible λ), so plain bisection converges unconditionally.
	for iter := 0; iter < 200 && hi-lo > 1e-14*(1+math.Abs(lo)+math.Abs(hi)); iter++ {
		mid := lo + (hi-lo)/2
		if mid <= lo || mid >= hi {
			break
		}
		if eval(mid) > mid {
			lo = mid
		} else {
			hi = mid
		}
	}
	eval(lo + (hi-lo)/2)
}

// lambdaProjGrad is the generic λ-step for non-quadratic utilities:
// projected gradient with backtracking on the ρ-strongly-convex
// sub-problem.
func (e *Engine) lambdaProjGrad(u utility.Func, lat []float64, arrivals float64, aRow, varphiRow []float64) ([]float64, error) {
	n := len(lat)
	rho, w := e.rho, e.inst.WeightW
	obj := func(x linalg.Vector) float64 {
		v := -w * u.Value(x, lat, arrivals)
		for j := 0; j < n; j++ {
			v += varphiRow[j]*x[j] + rho/2*(x[j]*x[j]-2*aRow[j]*x[j])
		}
		return v
	}
	grad := func(x linalg.Vector) linalg.Vector {
		g := linalg.VectorOf(u.Gradient(x, lat, arrivals)...)
		g.Scale(-w)
		for j := 0; j < n; j++ {
			g[j] += varphiRow[j] + rho*(x[j]-aRow[j])
		}
		return g
	}
	x := qp.ProjectSimplex(linalg.VectorOf(aRow...), arrivals)
	step := 1 / (rho + 1)
	fx := obj(x)
	for iter := 0; iter < 2000; iter++ {
		g := grad(x)
		var next linalg.Vector
		for bt := 0; bt < 60; bt++ {
			y := x.Clone()
			y.AddScaled(-step, g)
			next = qp.ProjectSimplex(y, arrivals)
			fn := obj(next)
			d := next.Sub(x)
			if fn <= fx+g.Dot(d)+d.Dot(d)/(2*step)+1e-15 {
				fx = fn
				break
			}
			step /= 2
		}
		if next.Sub(x).NormInf() <= 1e-10*(1+arrivals) {
			x = next
			break
		}
		x = next
		step *= 1.3 // gentle step recovery
	}
	return x, nil
}

// MuStep solves the per-datacenter μ-minimization (18) in closed form:
//
//	μ̃_j = clamp(α_j + Σ_i a_ij − ν_j − (φ_j + p0)/ρ, 0, μ_j^max)
//
// in server-equivalent units.
//
//ufc:hotpath
func (e *Engine) MuStep(j int, sumA, nu, phi float64) float64 {
	target := e.alphaEq[j] + sumA - nu - (phi+e.p0Eq[j])/e.rho
	return qp.Clamp(target, 0, e.capEq[j])
}

// NuStep solves the per-datacenter ν-minimization (19):
//
//	min V_j(C_j ν) + (p_j + φ_j) ν + ρ/2 (k − ν)²,  ν ≥ 0,
//
// where k = α_j + Σ_i a_ij − μ̃_j in server-equivalent units. Linear carbon
// taxes admit a closed form; general convex V_j are handled by derivative
// bisection.
func (e *Engine) NuStep(j int, sumA, muTilde, phi float64) float64 {
	if e.opts.Strategy == FuelCellOnly {
		return 0
	}
	rho := e.rho
	k := e.alphaEq[j] + sumA - muTilde
	if tax, ok := e.inst.EmissionCost[j].(carbon.LinearTax); ok {
		return math.Max(0, k-(tax.Rate*e.cEq[j]+e.pEq[j]+phi)/rho)
	}
	v := e.inst.EmissionCost[j]
	c := e.cEq[j]
	deriv := func(nu float64) float64 {
		return c*v.Marginal(c*nu) + e.pEq[j] + phi + rho*(nu-k)
	}
	return qp.MinimizeConvex1D(deriv, 0, math.Inf(1), 1e-10)
}

// AStep solves the per-datacenter a-minimization (20) (in the scaled units
// β_j = 1):
//
//	min −Σ_i a_ij (φ_j + φ_ij) + ρ/2 (Σ_i a_ij)²
//	    + ρ Σ_i a_ij (0.5 a_ij − λ̃_ij + α_j − μ̃_j − ν̃_j)
//	s.t. Σ_i a_ij ≤ S_j, a_ij ≥ 0.
//
// The Hessian ρ(I + 11ᵀ) with a single sum constraint and nonnegativity
// admits an exact O(M log M) water-filling solution
// (qp.SolveSumCappedRankOne), so this step stays cheap even with many
// front-ends (the paper's "transformed into a second order cone program
// and solved efficiently" remark).
//
// It is pure with respect to the engine; long-running agents should hold a
// StepWorkspace and call AStepInto to avoid the per-call allocations.
func (e *Engine) AStep(j int, lambdaTildeCol, varphiCol []float64, muTilde, nuTilde, phi float64) ([]float64, error) {
	dst := make([]float64, e.m)
	if err := e.AStepInto(e.newStepWorkspace(), j, lambdaTildeCol, varphiCol, muTilde, nuTilde, phi, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// AStepInto is the allocation-free a-minimization: the result is written
// into dst (length M) and ws provides all scratch. Concurrent callers must
// use distinct workspaces.
//
//ufc:hotpath
func (e *Engine) AStepInto(ws *StepWorkspace, j int, lambdaTildeCol, varphiCol []float64, muTilde, nuTilde, phi float64, dst []float64) error {
	m := e.m
	rho := e.rho
	cvec := ws.cm
	off := e.alphaEq[j] - muTilde - nuTilde
	for i := 0; i < m; i++ {
		cvec[i] = -(phi + varphiCol[i]) + rho*(-lambdaTildeCol[i]+off)
	}
	if err := qp.SolveSumCappedRankOneInto(dst, ws.sortm, ws.prefm, rho, 1, cvec, e.inst.Cloud.Datacenters[j].Servers); err != nil {
		return fmt.Errorf("a-minimization at datacenter %d: %w", j, err)
	}
	return nil
}

// AStepCompactInto is AStepInto over compact vectors: lambdaTildeC,
// varphiC and dst are indexed by FeasibleRows(j) (length = mask column
// size). Distributed datacenter agents use it so their water-filling
// solves cover only the front-ends that can actually route to them. On a
// dense engine it is AStepInto verbatim (compact == full).
//
//ufc:hotpath
func (e *Engine) AStepCompactInto(ws *StepWorkspace, j int, lambdaTildeC, varphiC []float64, muTilde, nuTilde, phi float64, dst []float64) error {
	if e.sp == nil {
		return e.AStepInto(ws, j, lambdaTildeC, varphiC, muTilde, nuTilde, phi, dst)
	}
	k := len(e.sp.cols[j])
	if len(lambdaTildeC) != k || len(varphiC) != k || len(dst) != k {
		return ErrBadState
	}
	rho := e.rho
	off := e.alphaEq[j] - muTilde - nuTilde
	cvec := ws.cm[:k]
	for t := 0; t < k; t++ {
		cvec[t] = -(phi + varphiC[t]) + rho*(-lambdaTildeC[t]+off)
	}
	if err := qp.SolveSumCappedRankOneInto(dst, ws.sortm[:k], ws.prefm[:k+1], rho, 1, cvec, e.inst.Cloud.Datacenters[j].Servers); err != nil {
		return fmt.Errorf("a-minimization at datacenter %d: %w", j, err)
	}
	return nil
}

// PowerBalance returns α_j + Σ_i a_ij − μ − ν in server-equivalent units,
// the residual of the power balance constraint (15).
//
//ufc:hotpath
func (e *Engine) PowerBalance(j int, sumA, mu, nu float64) float64 {
	return e.alphaEq[j] + sumA - mu - nu
}

// Iterate performs one full ADM-G iteration (prediction §III-C step 1 plus
// Gaussian back substitution step 2) on the state in place. All
// temporaries live in engine-owned scratch, so the steady-state loop is
// allocation-free; consequently Iterate is NOT safe for concurrent use on
// the same engine (the exported step methods remain pure). With
// Options.Workers > 1 the per-front-end and per-datacenter minimizations
// fan out across a persistent goroutine pool; every work item writes to a
// fixed index, so the iterates are bit-identical to the serial ones.
//
//ufc:hotpath
func (e *Engine) Iterate(s *State) error {
	m, n := e.m, e.n
	rho, eps := e.rho, e.opts.Epsilon
	if e.opts.DisableCorrection {
		eps = 1
	}
	sc := &e.scratch
	e.iterState = s
	probe := e.opts.Probe
	// Phase spans: the clock is read inside the probe (never here), so a
	// nil probe keeps the loop clock-free and deterministic.
	span := probe.StartSpan()

	// Σ_i a_ij of the incoming state, needed by the μ/ν-steps (s.A is
	// only mutated after the prediction phases).
	if sp := e.sp; sp != nil {
		for j := 0; j < n; j++ {
			var sum float64
			for _, i := range sp.cols[j] {
				sum += s.A[i][j]
			}
			sc.sumA[j] = sum
		}
	} else {
		for j := 0; j < n; j++ {
			var sum float64
			for i := 0; i < m; i++ {
				sum += s.A[i][j]
			}
			sc.sumA[j] = sum
		}
	}

	// --- 1.1 λ-minimization (per front-end). ---
	if err := e.runPhase(phaseLambda, m); err != nil {
		e.iterState = nil
		return err
	}
	span = probe.PhaseDone(telemetry.SolverPhaseLambda, span)
	// --- 1.2–1.4 μ-, ν- and a-minimization (per datacenter). ---
	if err := e.runPhase(phaseDatacenter, n); err != nil {
		e.iterState = nil
		return err
	}
	span = probe.PhaseDone(telemetry.SolverPhaseDatacenter, span)
	e.iterState = nil

	// --- 1.5 dual updates fused with step 2's Gaussian back substitution
	// (backward order). Each φ_j / φ_ij prediction depends only on its own
	// pre-update value, so predicting and correcting in one pass produces
	// the same floats as the two-pass formulation.
	if sp := e.sp; sp != nil {
		e.correctionMasked(s, sp, rho, eps)
	} else {
		e.correctionDense(s, rho, eps)
	}
	probe.PhaseDone(telemetry.SolverPhaseCorrection, span)
	return nil
}

// correctionDense is Iterate's fused dual-update + Gaussian
// back-substitution pass over all M×N pairs — the paper's loops verbatim.
//
//ufc:hotpath
func (e *Engine) correctionDense(s *State, rho, eps float64) {
	m, n := e.m, e.n
	sc := &e.scratch
	lambdaTilde, aTildeT := sc.lambdaTilde, sc.aTildeT
	muTilde, nuTilde := sc.muTilde, sc.nuTilde
	for j := 0; j < n; j++ {
		var sumATilde float64
		row := aTildeT[j]
		for i := 0; i < m; i++ {
			sumATilde += row[i]
		}
		phiTilde := s.Phi[j] - rho*e.PowerBalance(j, sumATilde, muTilde[j], nuTilde[j])
		s.Phi[j] += eps * (phiTilde - s.Phi[j])
	}
	for i := 0; i < m; i++ {
		vrow, lrow := s.Varphi[i], lambdaTilde[i]
		for j := 0; j < n; j++ {
			varphiTilde := vrow[j] - rho*(aTildeT[j][i]-lrow[j])
			vrow[j] += eps * (varphiTilde - vrow[j])
		}
	}
	for j := 0; j < n; j++ {
		var d float64 // Σ_i (a^{k+1} − a^k), scaled β = 1
		row := aTildeT[j]
		for i := 0; i < m; i++ {
			old := s.A[i][j]
			next := old + eps*(row[i]-old)
			d += next - old
			s.A[i][j] = next
		}
		nuOld := s.Nu[j]
		var nuNext float64
		if e.opts.DisableCorrection {
			nuNext = nuTilde[j]
			s.Mu[j] = muTilde[j]
		} else {
			nuNext = nuOld + eps*(nuTilde[j]-nuOld) + d
			muOld := s.Mu[j]
			s.Mu[j] = muOld + eps*(muTilde[j]-muOld) - (nuNext - nuOld) + d
		}
		s.Nu[j] = nuNext
	}
	for i := 0; i < m; i++ {
		copy(s.Lambda[i], lambdaTilde[i])
	}
}

// correctionMasked is correctionDense restricted to the feasibility mask.
// Off-mask entries of λ, a, φ_ij and the scratch predictions are all zero
// and stay zero: every skipped update is a no-op on a zero entry (0 + ε·0),
// and the Σ_i reductions lose only zero terms, so the masked pass computes
// the same per-column totals as the dense pass would on the masked state.
//
//ufc:hotpath
func (e *Engine) correctionMasked(s *State, sp *sparsity, rho, eps float64) {
	n := e.n
	sc := &e.scratch
	lambdaTilde, aTildeT := sc.lambdaTilde, sc.aTildeT
	muTilde, nuTilde := sc.muTilde, sc.nuTilde
	for j := 0; j < n; j++ {
		var sumATilde float64
		row := aTildeT[j]
		for _, i := range sp.cols[j] {
			sumATilde += row[i]
		}
		phiTilde := s.Phi[j] - rho*e.PowerBalance(j, sumATilde, muTilde[j], nuTilde[j])
		s.Phi[j] += eps * (phiTilde - s.Phi[j])
	}
	for i, idx := range sp.rows {
		vrow, lrow := s.Varphi[i], lambdaTilde[i]
		for _, j := range idx {
			varphiTilde := vrow[j] - rho*(aTildeT[j][i]-lrow[j])
			vrow[j] += eps * (varphiTilde - vrow[j])
		}
	}
	for j := 0; j < n; j++ {
		var d float64 // Σ_i (a^{k+1} − a^k), scaled β = 1
		row := aTildeT[j]
		for _, i := range sp.cols[j] {
			old := s.A[i][j]
			next := old + eps*(row[i]-old)
			d += next - old
			s.A[i][j] = next
		}
		nuOld := s.Nu[j]
		var nuNext float64
		if e.opts.DisableCorrection {
			nuNext = nuTilde[j]
			s.Mu[j] = muTilde[j]
		} else {
			nuNext = nuOld + eps*(nuTilde[j]-nuOld) + d
			muOld := s.Mu[j]
			s.Mu[j] = muOld + eps*(muTilde[j]-muOld) - (nuNext - nuOld) + d
		}
		s.Nu[j] = nuNext
	}
	for i, idx := range sp.rows {
		lrow, trow := s.Lambda[i], lambdaTilde[i]
		for _, j := range idx {
			lrow[j] = trow[j]
		}
	}
}

// lambdaItem is the λ-phase work item: front-end i's prediction into the
// scratch row.
//
//ufc:hotpath
func (e *Engine) lambdaItem(ws *StepWorkspace, i int) error {
	s := e.iterState
	return e.LambdaStepInto(ws, i, s.A[i], s.Varphi[i], e.scratch.lambdaTilde[i])
}

// datacenterItem is the datacenter-phase work item: datacenter j's μ-, ν-
// and a-predictions. The a-prediction is written as a contiguous row of
// the transposed scratch matrix, so parallel items never share cache
// lines.
//
//ufc:hotpath
func (e *Engine) datacenterItem(ws *StepWorkspace, j int) error {
	s, sc := e.iterState, &e.scratch
	m, rho := e.m, e.rho
	mu := e.MuStep(j, sc.sumA[j], s.Nu[j], s.Phi[j])
	//ufc:alloc only the general-convex V_j fallback allocates (bisection closure); the linear-tax path taken in benchmarks is allocation-free
	nu := e.NuStep(j, sc.sumA[j], mu, s.Phi[j])
	sc.muTilde[j], sc.nuTilde[j] = mu, nu
	phi := s.Phi[j]
	off := e.alphaEq[j] - mu - nu
	if sp := e.sp; sp != nil {
		// Masked a-step: gather the feasible column into a compact cost
		// vector, water-fill over it, scatter back. Off-mask entries of
		// the transposed scratch row were zeroed at init and are never
		// written, so downstream masked loops can skip them.
		idx := sp.cols[j]
		k := len(idx)
		if k == 0 {
			return nil // no front-end can route here: ã_·j ≡ 0
		}
		cvec, out := ws.cm[:k], ws.xm[:k]
		for t, i := range idx {
			cvec[t] = -(phi + s.Varphi[i][j]) + rho*(-sc.lambdaTilde[i][j]+off)
		}
		if err := qp.SolveSumCappedRankOneInto(out, ws.sortm[:k], ws.prefm[:k+1], rho, 1, cvec, e.inst.Cloud.Datacenters[j].Servers); err != nil {
			return fmt.Errorf("a-minimization at datacenter %d: %w", j, err)
		}
		row := sc.aTildeT[j]
		for t, i := range idx {
			row[i] = out[t]
		}
		return nil
	}
	cvec := ws.cm
	for i := 0; i < m; i++ {
		cvec[i] = -(phi + s.Varphi[i][j]) + rho*(-sc.lambdaTilde[i][j]+off)
	}
	if err := qp.SolveSumCappedRankOneInto(sc.aTildeT[j], ws.sortm, ws.prefm, rho, 1, cvec, e.inst.Cloud.Datacenters[j].Servers); err != nil {
		return fmt.Errorf("a-minimization at datacenter %d: %w", j, err)
	}
	return nil
}

// Residual returns the combined relative primal residual of the state: the
// worst of the a=λ coupling residual and the power-balance residual, both
// relative to the workload scale (the scaled units make them commensurate).
func (e *Engine) Residual(s *State) float64 {
	m, n := e.inst.Cloud.M(), e.inst.Cloud.N()
	scale := e.loadScale()
	var r float64
	if sp := e.sp; sp != nil {
		for i, idx := range sp.rows {
			for _, j := range idx {
				if d := math.Abs(s.A[i][j] - s.Lambda[i][j]); d > r {
					r = d
				}
			}
		}
		for j := 0; j < n; j++ {
			var sumA float64
			for _, i := range sp.cols[j] {
				sumA += s.A[i][j]
			}
			if d := math.Abs(e.PowerBalance(j, sumA, s.Mu[j], s.Nu[j])); d > r {
				r = d
			}
		}
		return r / scale
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if d := math.Abs(s.A[i][j] - s.Lambda[i][j]); d > r {
				r = d
			}
		}
	}
	for j := 0; j < n; j++ {
		var sumA float64
		for i := 0; i < m; i++ {
			sumA += s.A[i][j]
		}
		if d := math.Abs(e.PowerBalance(j, sumA, s.Mu[j], s.Nu[j])); d > r {
			r = d
		}
	}
	return r / scale
}

func (e *Engine) loadScale() float64 {
	scale := 1.0
	for _, a := range e.inst.Arrivals {
		if a > scale {
			scale = a
		}
	}
	return scale
}

// RoutingResidual measures convergence of the decisions that determine the
// final allocation: the a=λ coupling and the per-iteration change of the
// duals (relative to the instance's marginal-cost scale). The raw μ/ν
// iterates and the λ drift are excluded: near price/latency ties they
// slide along flat directions of the objective long after the coupling and
// duals have settled, without affecting the optimum, and Finalize
// recomputes the power split exactly from λ anyway.
func (e *Engine) RoutingResidual(s, prev *State) float64 {
	m, n := e.inst.Cloud.M(), e.inst.Cloud.N()
	scale := e.loadScale()
	var r float64
	if sp := e.sp; sp != nil {
		for i, idx := range sp.rows {
			for _, j := range idx {
				if d := math.Abs(s.A[i][j] - s.Lambda[i][j]); d > r {
					r = d
				}
			}
		}
		r /= scale
		for j := 0; j < n; j++ {
			if d := math.Abs(s.Phi[j]-prev.Phi[j]) / e.dualScale; d > r {
				r = d
			}
		}
		for i, idx := range sp.rows {
			for _, j := range idx {
				if d := math.Abs(s.Varphi[i][j]-prev.Varphi[i][j]) / e.dualScale; d > r {
					r = d
				}
			}
		}
		return r
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if d := math.Abs(s.A[i][j] - s.Lambda[i][j]); d > r {
				r = d
			}
		}
	}
	r /= scale
	for j := 0; j < n; j++ {
		if d := math.Abs(s.Phi[j]-prev.Phi[j]) / e.dualScale; d > r {
			r = d
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if d := math.Abs(s.Varphi[i][j]-prev.Varphi[i][j]) / e.dualScale; d > r {
				r = d
			}
		}
	}
	return r
}

// residualSnapshot copies the parts of src that RoutingResidual reads from
// the previous iterate — Phi and the (masked) Varphi block. Snapshotting
// only those keeps SolveState's per-iteration bookkeeping at one M×N sweep
// instead of the four a full state copy would cost, without changing a
// single returned float.
func (e *Engine) residualSnapshot(dst, src *State) {
	copy(dst.Phi, src.Phi)
	if sp := e.sp; sp != nil {
		for i, idx := range sp.rows {
			drow, srow := dst.Varphi[i], src.Varphi[i]
			for _, j := range idx {
				drow[j] = srow[j]
			}
		}
		return
	}
	for i := range src.Varphi {
		copy(dst.Varphi[i], src.Varphi[i])
	}
}

// maskState zeroes the off-mask entries of the M×N blocks so a sparse
// solve starts — and provably stays — inside the masked feasible set.
// Masked entries are preserved: warm starts from a previous solve under
// the same mask pass through untouched, while dense or differently-masked
// warm starts are projected onto the mask.
func (e *Engine) maskState(s *State) {
	sp := e.sp
	if sp == nil {
		return
	}
	for i := 0; i < e.m; i++ {
		idx := sp.rows[i]
		lrow, arow, vrow := s.Lambda[i], s.A[i], s.Varphi[i]
		t := 0
		for j := 0; j < e.n; j++ {
			if t < len(idx) && int(idx[t]) == j {
				t++
				continue
			}
			lrow[j], arow[j], vrow[j] = 0, 0, 0
		}
	}
}

// Solve runs the full distributed 4-block ADM-G loop for the instance from
// the zero state and returns a feasible allocation (after the exact
// power-split finalization), the UFC breakdown, and solver statistics.
func Solve(inst *Instance, opts Options) (*Allocation, Breakdown, *Stats, error) {
	return SolveFrom(inst, opts, nil)
}

// SolveContext is Solve with cancellation: ctx is checked once per ADM-G
// iteration (no allocation, no syscall) and a cancelled solve returns
// ctx's error. A nil ctx behaves like context.Background.
func SolveContext(ctx context.Context, inst *Instance, opts Options) (*Allocation, Breakdown, *Stats, error) {
	return SolveFromContext(ctx, inst, opts, nil)
}

// SolveFrom is Solve warm-started from a prior iterate: s is iterated in
// place until convergence (a nil s means a cold start from the zero
// state). Seeding hour t's solve with hour t−1's converged state cuts the
// iteration count sharply when adjacent slots are similar, which is the
// trace-driven evaluation's common case.
func SolveFrom(inst *Instance, opts Options, s *State) (*Allocation, Breakdown, *Stats, error) {
	return SolveFromContext(context.Background(), inst, opts, s)
}

// SolveFromContext is SolveFrom with per-iteration cancellation.
func SolveFromContext(ctx context.Context, inst *Instance, opts Options, s *State) (*Allocation, Breakdown, *Stats, error) {
	e, err := NewEngine(inst, opts)
	if err != nil {
		return nil, Breakdown{}, nil, err
	}
	defer e.Close()
	if s == nil {
		s = NewState(e.m, e.n)
	}
	return e.SolveStateContext(ctx, s)
}

// SolveState runs the ADM-G loop on the engine's current instance starting
// from (and mutating) s, which must match the engine's dimensions. Combine
// with Reset to chain warm-started solves across slots without rebuilding
// the engine.
func (e *Engine) SolveState(s *State) (*Allocation, Breakdown, *Stats, error) {
	return e.SolveStateContext(context.Background(), s)
}

// SolveStateContext is SolveState with per-iteration cancellation: ctx is
// polled once per iteration via ctx.Err() — a single interface call, no
// allocation — so even tight solves stay responsive to cancellation
// without perturbing the iterate math.
func (e *Engine) SolveStateContext(ctx context.Context, s *State) (*Allocation, Breakdown, *Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := checkStateDims(s, e.m, e.n); err != nil {
		return nil, Breakdown{}, nil, err
	}
	e.maskState(s)
	stats := &Stats{}
	opts := e.opts
	prev := e.scratch.prev
	probe := opts.Probe
	warm := !stateIsZero(s)
	stats.WarmStarted = warm
	if opts.TrackResiduals {
		// The trace accumulates in engine-owned scratch (its capacity
		// survives warm-started re-solves) and is copied out below, so the
		// returned Stats never aliases state a later SolveState mutates.
		e.scratch.trace = e.scratch.trace[:0]
	}

	for iter := 1; iter <= opts.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, Breakdown{}, nil, fmt.Errorf("solve cancelled at iteration %d: %w", iter, err)
		}
		e.residualSnapshot(prev, s)
		if err := e.Iterate(s); err != nil {
			return nil, Breakdown{}, nil, fmt.Errorf("iteration %d: %w", iter, err)
		}
		res := e.RoutingResidual(s, prev)
		probe.ObserveIteration(res)
		if opts.TrackResiduals {
			e.scratch.trace = append(e.scratch.trace, res)
		}
		stats.Iterations = iter
		stats.FinalResidual = res
		if res <= opts.Tolerance {
			stats.Converged = true
			break
		}
	}
	if opts.TrackResiduals {
		stats.ResidualTrace = append([]float64(nil), e.scratch.trace...)
	}
	probe.ObserveSolve(stats.Iterations, stats.FinalResidual, stats.Converged, warm)

	alloc := e.Finalize(s)
	bd := Evaluate(e.inst, alloc)
	if !stats.Converged {
		return alloc, bd, stats, fmt.Errorf("residual %g after %d iterations: %w",
			stats.FinalResidual, stats.Iterations, ErrNotConverged)
	}
	return alloc, bd, stats, nil
}

// stateIsZero reports whether s is the all-zero iterate — the cold-start
// state. SolveState uses it to classify warm vs. cold starts for
// Stats.WarmStarted and the telemetry probe; the scan costs one pass over
// the state, far below a single ADM-G iteration.
func stateIsZero(s *State) bool {
	for i := range s.Lambda {
		for j := range s.Lambda[i] {
			if s.Lambda[i][j] != 0 || s.A[i][j] != 0 || s.Varphi[i][j] != 0 {
				return false
			}
		}
	}
	for j := range s.Mu {
		if s.Mu[j] != 0 || s.Nu[j] != 0 || s.Phi[j] != 0 {
			return false
		}
	}
	return true
}

// checkStateDims verifies that s is an m×n iterate.
func checkStateDims(s *State, m, n int) error {
	if s == nil || len(s.Lambda) != m || len(s.A) != m || len(s.Varphi) != m ||
		len(s.Mu) != n || len(s.Nu) != n || len(s.Phi) != n {
		return ErrBadState
	}
	for i := 0; i < m; i++ {
		if len(s.Lambda[i]) != n || len(s.A[i]) != n || len(s.Varphi[i]) != n {
			return ErrBadState
		}
	}
	return nil
}

// Finalize converts a (near-)converged iterate into an exactly feasible
// allocation: the routing is taken from λ (per-front-end feasible by
// construction) and the power split (μ_j, ν_j) is recomputed exactly from
// the induced demand via the 1-D convex split — which can only improve the
// objective and guarantees the power-balance constraint holds exactly.
func (e *Engine) Finalize(s *State) *Allocation {
	m, n := e.inst.Cloud.M(), e.inst.Cloud.N()
	alloc := NewAllocation(m, n)
	for i := 0; i < m; i++ {
		copy(alloc.Lambda[i], s.Lambda[i])
	}
	for j := 0; j < n; j++ {
		demand := e.inst.DemandMW(j, alloc.DCLoad(j))
		mu, nu := e.OptimalPowerSplit(j, demand)
		alloc.MuMW[j] = mu
		alloc.NuMW[j] = nu
	}
	return alloc
}

// OptimalPowerSplit solves the exact 1-D convex problem of covering the
// demand (MW) at datacenter j with fuel cells and grid power under the
// engine's strategy:
//
//	min  p0·μ + p_j·ν + V_j(C_j·ν)   s.t.  μ + ν = demand, 0 ≤ μ ≤ μmax, ν ≥ 0.
func (e *Engine) OptimalPowerSplit(j int, demand float64) (mu, nu float64) {
	if demand <= 0 {
		return 0, 0
	}
	switch e.opts.Strategy {
	case GridOnly:
		return 0, demand
	case FuelCellOnly:
		return demand, 0
	}
	hi := math.Min(e.capEq[j]*e.beta[j], demand)
	if hi <= 0 {
		return 0, demand
	}
	p0 := e.inst.FuelCellPriceUSD
	p := e.inst.PriceUSD[j]
	c := e.inst.CarbonRate[j]
	v := e.inst.EmissionCost[j]
	deriv := func(mu float64) float64 {
		gridLoad := demand - mu
		return p0 - p - c*v.Marginal(c*gridLoad)
	}
	mu = qp.MinimizeConvex1D(deriv, 0, hi, 1e-12)
	return mu, demand - mu
}

// MuMaxMW returns the effective fuel-cell capacity of datacenter j in MW
// under the engine's strategy.
func (e *Engine) MuMaxMW(j int) float64 { return e.capEq[j] * e.beta[j] }

// Rho returns the effective augmented-Lagrangian penalty used by the
// engine (Options.Rho times the instance's scale estimate).
func (e *Engine) Rho() float64 { return e.rho }

// EffectiveEpsilon returns the Gaussian back-substitution step actually
// applied (1 when the correction is disabled).
func (e *Engine) EffectiveEpsilon() float64 {
	if e.opts.DisableCorrection {
		return 1
	}
	return e.opts.Epsilon
}

// LoadScale returns the workload scale used to normalize primal residuals.
func (e *Engine) LoadScale() float64 { return e.loadScale() }

// DualScale returns the marginal-cost scale used to normalize dual-change
// residuals.
func (e *Engine) DualScale() float64 { return e.dualScale }

// BetaMW returns β_j in MW per workload unit (the server-equivalent scale
// factor for datacenter j's power variables).
func (e *Engine) BetaMW(j int) float64 { return e.beta[j] }
