package core_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/carbon"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/utility"
)

func TestValidateCatchesShapeErrors(t *testing.T) {
	inst := smallInstance(t, 1)
	if err := inst.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}

	bad := *inst
	bad.Cloud = nil
	if err := bad.Validate(); !errors.Is(err, core.ErrNilCloud) {
		t.Errorf("nil cloud: %v", err)
	}

	bad = *inst
	bad.Arrivals = inst.Arrivals[:1]
	if err := bad.Validate(); err == nil {
		t.Error("short arrivals accepted")
	}

	bad = *inst
	bad.Utility = nil
	if err := bad.Validate(); !errors.Is(err, core.ErrNoUtility) {
		t.Errorf("nil utility: %v", err)
	}

	bad = *inst
	bad.Arrivals = append([]float64(nil), inst.Arrivals...)
	bad.Arrivals[0] = -5
	if err := bad.Validate(); err == nil {
		t.Error("negative arrivals accepted")
	}

	bad = *inst
	bad.Arrivals = append([]float64(nil), inst.Arrivals...)
	bad.Arrivals[0] = 1e9
	if err := bad.Validate(); !errors.Is(err, core.ErrOverloaded) {
		t.Errorf("overload: %v", err)
	}

	bad = *inst
	bad.PriceUSD = append([]float64(nil), inst.PriceUSD...)
	bad.PriceUSD[0] = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative price accepted")
	}

	bad = *inst
	bad.EmissionCost = append([]carbon.CostFunc(nil), inst.EmissionCost...)
	bad.EmissionCost[1] = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil emission cost accepted")
	}
}

func TestStrategyString(t *testing.T) {
	if core.Hybrid.String() != "hybrid" || core.GridOnly.String() != "grid" || core.FuelCellOnly.String() != "fuelcell" {
		t.Error("strategy names wrong")
	}
	if core.Strategy(9).String() == "" {
		t.Error("unknown strategy has empty name")
	}
}

func TestEvaluateBreakdownConsistency(t *testing.T) {
	inst := smallInstance(t, 2)
	n, m := inst.Cloud.N(), inst.Cloud.M()
	alloc := core.NewAllocation(m, n)
	// Route everything to datacenter 0 and power it from the grid.
	for i := 0; i < m; i++ {
		alloc.Lambda[i][0] = inst.Arrivals[i]
	}
	demand := inst.Cloud.Datacenters[0].DemandMW(alloc.DCLoad(0))
	alloc.NuMW[0] = demand
	for j := 1; j < n; j++ {
		alloc.NuMW[j] = inst.Cloud.Datacenters[j].DemandMW(0)
	}
	bd := core.Evaluate(inst, alloc)

	if bd.FuelCellMWh != 0 || bd.FuelCellCostUSD != 0 {
		t.Error("grid-only allocation has fuel-cell terms")
	}
	if math.Abs(bd.EnergyCostUSD-(bd.GridCostUSD+bd.FuelCellCostUSD)) > 1e-9 {
		t.Error("energy cost does not decompose")
	}
	wantUFC := bd.UtilityWeighted - bd.CarbonCostUSD - bd.EnergyCostUSD
	if math.Abs(bd.UFC-wantUFC) > 1e-9 {
		t.Errorf("UFC = %g, want %g", bd.UFC, wantUFC)
	}
	if bd.EmissionTons <= 0 {
		t.Error("grid power should emit carbon")
	}
	if bd.AvgLatencySec <= 0 {
		t.Error("latency should be positive")
	}
	if bd.FuelCellUtilization != 0 {
		t.Error("utilization should be 0 without fuel cells")
	}
}

func TestImprovement(t *testing.T) {
	x := core.Breakdown{UFC: -50}
	y := core.Breakdown{UFC: -100}
	if got := core.Improvement(x, y); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("improvement = %g, want 0.5", got)
	}
	if got := core.Improvement(y, x); math.Abs(got-(-1)) > 1e-12 {
		t.Errorf("worsening = %g, want -1", got)
	}
	if core.Improvement(x, core.Breakdown{}) != 0 {
		t.Error("zero denominator should return 0")
	}
}

func TestCheckFeasibility(t *testing.T) {
	inst := smallInstance(t, 3)
	n, m := inst.Cloud.N(), inst.Cloud.M()
	alloc := core.NewAllocation(m, n)
	for i := 0; i < m; i++ {
		alloc.Lambda[i][0] = inst.Arrivals[i]
	}
	for j := 0; j < n; j++ {
		alloc.NuMW[j] = inst.Cloud.Datacenters[j].DemandMW(alloc.DCLoad(j))
	}
	rep := core.CheckFeasibility(inst, alloc)
	// Everything routed to DC 0 may exceed its capacity but satisfies the
	// other constraints.
	if rep.MaxLoadBalanceErr > 1e-9 || rep.MaxPowerBalanceErr > 1e-9 || rep.MaxNegativeVariable > 0 {
		t.Errorf("unexpected violations: %+v", rep)
	}

	alloc.Lambda[0][0] -= 10 // break load balance
	rep = core.CheckFeasibility(inst, alloc)
	if rep.MaxLoadBalanceErr < 9.9 {
		t.Errorf("load balance violation not detected: %+v", rep)
	}
	if rep.Ok(1e-6) {
		t.Error("Ok() on infeasible allocation")
	}
}

func TestAllocationClone(t *testing.T) {
	a := core.NewAllocation(2, 2)
	a.Lambda[0][1] = 5
	a.MuMW[0] = 1
	c := a.Clone()
	c.Lambda[0][1] = 9
	c.MuMW[0] = 9
	if a.Lambda[0][1] != 5 || a.MuMW[0] != 1 {
		t.Error("Clone aliased data")
	}
}

func TestFuelCellOnlyNeedsCapacity(t *testing.T) {
	pm := model.DefaultPowerModel()
	dc := model.Datacenter{Location: model.Dallas, Servers: 100, Power: pm, FuelCellMaxMW: 0.001}
	cloud, err := model.NewCloud([]model.Datacenter{dc}, []model.FrontEnd{{Location: model.Dallas}})
	if err != nil {
		t.Fatal(err)
	}
	inst := &core.Instance{
		Cloud:            cloud,
		Arrivals:         []float64{50},
		PriceUSD:         []float64{40},
		FuelCellPriceUSD: 80,
		CarbonRate:       []float64{0.5},
		EmissionCost:     []carbon.CostFunc{carbon.LinearTax{Rate: 25}},
		Utility:          utility.Quadratic{},
		WeightW:          10,
	}
	_, _, _, err = core.Solve(inst, core.Options{Strategy: core.FuelCellOnly})
	if !errors.Is(err, core.ErrFuelCellDeficit) {
		t.Fatalf("err = %v, want ErrFuelCellDeficit", err)
	}
}
