// Package core implements the paper's primary contribution: the UFC index
// (utility of the cloud using fuel cells) and the distributed 4-block ADM-G
// algorithm of §III-C that maximizes it by jointly choosing fuel-cell
// generation μ_j and geographic request routing λ_ij for one time slot.
package core

import (
	"errors"
	"fmt"

	"repro/internal/carbon"
	"repro/internal/model"
	"repro/internal/utility"
)

// Strategy selects which energy sources the optimizer may use (§IV-B).
type Strategy int

const (
	// Hybrid coordinates grid power and fuel-cell generation (the paper's
	// proposal).
	Hybrid Strategy = iota + 1
	// GridOnly forbids fuel cells (μ_j = 0 for all j).
	GridOnly
	// FuelCellOnly forbids grid power (ν_j = 0 for all j); feasible only
	// when every datacenter's fuel cells can cover its demand.
	FuelCellOnly
)

// String names the strategy for reporting.
func (s Strategy) String() string {
	switch s {
	case Hybrid:
		return "hybrid"
	case GridOnly:
		return "grid"
	case FuelCellOnly:
		return "fuelcell"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Validation errors.
var (
	ErrNilCloud        = errors.New("core: instance has no cloud")
	ErrNoUtility       = errors.New("core: instance has no utility function")
	ErrOverloaded      = errors.New("core: total arrivals exceed total server capacity")
	ErrFuelCellDeficit = errors.New("core: fuel-cell capacity cannot cover demand for fuel-cell-only strategy")
)

// Instance is one time slot of the UFC maximization problem (3): the static
// cloud plus the slot's arrivals, prices, carbon rates and policy functions.
type Instance struct {
	Cloud *model.Cloud

	// Arrivals is A_i, the workload (in servers) arriving at each
	// front-end proxy; length M.
	Arrivals []float64

	// PriceUSD is p_j, the grid electricity price at each datacenter in
	// $/MWh; length N.
	PriceUSD []float64

	// FuelCellPriceUSD is p0, the (fixed) price of fuel-cell generation
	// in $/MWh.
	FuelCellPriceUSD float64

	// CarbonRate is C_j, the grid carbon emission rate at each datacenter
	// in tons of CO₂ per MWh; length N.
	CarbonRate []float64

	// EmissionCost is V_j, the emission cost function at each datacenter;
	// length N. All must be non-decreasing and convex.
	EmissionCost []carbon.CostFunc

	// Utility is the latency-utility function U shared by all front-ends.
	Utility utility.Func

	// WeightW is w, the weight of workload utility against monetary costs
	// ($/s² for the quadratic utility with latency in seconds).
	WeightW float64

	// RightSizing enables the extension discussed in the paper's §II-C
	// Remark: instead of keeping all S_j servers powered on, each
	// datacenter activates only the servers its routed load requires
	// (idle servers draw no power). With per-server idle cost strictly
	// positive the optimal active count is exactly the load, so the
	// facility demand becomes load · P_peak · PUE and the
	// load-independent α_j term disappears.
	RightSizing bool
}

// Validate checks the instance for shape and feasibility.
func (inst *Instance) Validate() error {
	if inst.Cloud == nil {
		return ErrNilCloud
	}
	n, m := inst.Cloud.N(), inst.Cloud.M()
	if len(inst.Arrivals) != m {
		return fmt.Errorf("core: %d arrivals for %d front-ends", len(inst.Arrivals), m)
	}
	if len(inst.PriceUSD) != n {
		return fmt.Errorf("core: %d prices for %d datacenters", len(inst.PriceUSD), n)
	}
	if len(inst.CarbonRate) != n {
		return fmt.Errorf("core: %d carbon rates for %d datacenters", len(inst.CarbonRate), n)
	}
	if len(inst.EmissionCost) != n {
		return fmt.Errorf("core: %d emission cost functions for %d datacenters", len(inst.EmissionCost), n)
	}
	if inst.Utility == nil {
		return ErrNoUtility
	}
	if inst.WeightW < 0 {
		return fmt.Errorf("core: negative utility weight %g", inst.WeightW)
	}
	if inst.FuelCellPriceUSD < 0 {
		return fmt.Errorf("core: negative fuel-cell price %g", inst.FuelCellPriceUSD)
	}
	var total float64
	for i, a := range inst.Arrivals {
		if a < 0 {
			return fmt.Errorf("core: negative arrivals %g at front-end %d", a, i)
		}
		total += a
	}
	for j, p := range inst.PriceUSD {
		if p < 0 {
			return fmt.Errorf("core: negative price %g at datacenter %d", p, j)
		}
		if inst.CarbonRate[j] < 0 {
			return fmt.Errorf("core: negative carbon rate at datacenter %d", j)
		}
		if inst.EmissionCost[j] == nil {
			return fmt.Errorf("core: nil emission cost at datacenter %d", j)
		}
	}
	if total > inst.Cloud.TotalServers()+1e-9 {
		return fmt.Errorf("arrivals %g > capacity %g: %w", total, inst.Cloud.TotalServers(), ErrOverloaded)
	}
	return nil
}

// AlphaMW returns the load-independent facility power α_j in MW under the
// instance's server-management mode.
func (inst *Instance) AlphaMW(j int) float64 {
	if inst.RightSizing {
		return 0
	}
	return inst.Cloud.Datacenters[j].AlphaMW()
}

// BetaMW returns the per-workload-unit facility power β_j in MW under the
// instance's server-management mode.
func (inst *Instance) BetaMW(j int) float64 {
	dc := inst.Cloud.Datacenters[j]
	if inst.RightSizing {
		return dc.Power.PeakW * dc.Power.PUE / 1e6
	}
	return dc.BetaMW()
}

// DemandMW returns the facility power demand of datacenter j at the given
// routed load under the instance's server-management mode.
func (inst *Instance) DemandMW(j int, load float64) float64 {
	return inst.AlphaMW(j) + inst.BetaMW(j)*load
}

// PeakDemandMW returns the facility demand of datacenter j with every
// server busy (identical in both server-management modes).
func (inst *Instance) PeakDemandMW(j int) float64 {
	return inst.DemandMW(j, inst.Cloud.Datacenters[j].Servers)
}

// TotalArrivals returns Σ_i A_i.
func (inst *Instance) TotalArrivals() float64 {
	var s float64
	for _, a := range inst.Arrivals {
		s += a
	}
	return s
}

// Allocation is a feasible joint decision: routing λ, fuel-cell output μ
// and grid draw ν.
type Allocation struct {
	// Lambda[i][j] is the workload routed from front-end i to datacenter j.
	Lambda [][]float64
	// MuMW[j] is the fuel-cell generation at datacenter j in MW.
	MuMW []float64
	// NuMW[j] is the grid power draw at datacenter j in MW.
	NuMW []float64
}

// NewAllocation returns a zero allocation shaped for the instance.
func NewAllocation(m, n int) *Allocation {
	lam := make([][]float64, m)
	for i := range lam {
		lam[i] = make([]float64, n)
	}
	return &Allocation{Lambda: lam, MuMW: make([]float64, n), NuMW: make([]float64, n)}
}

// Clone deep-copies the allocation.
func (a *Allocation) Clone() *Allocation {
	out := NewAllocation(len(a.Lambda), len(a.MuMW))
	for i := range a.Lambda {
		copy(out.Lambda[i], a.Lambda[i])
	}
	copy(out.MuMW, a.MuMW)
	copy(out.NuMW, a.NuMW)
	return out
}

// DCLoad returns Σ_i λ_ij for datacenter j.
func (a *Allocation) DCLoad(j int) float64 {
	var s float64
	for i := range a.Lambda {
		s += a.Lambda[i][j]
	}
	return s
}

// Breakdown decomposes the UFC of an allocation into its components
// (§II-B). All monetary values are per-slot dollars.
type Breakdown struct {
	UFC float64 `json:"ufc"` // w·Σ U − carbon cost − energy cost

	UtilityRaw      float64 `json:"utilityRaw"`      // Σ_i U(λ_i) (unweighted)
	UtilityWeighted float64 `json:"utilityWeighted"` // w · Σ_i U(λ_i)
	EnergyCostUSD   float64 `json:"energyCostUSD"`   // Σ_j p_j ν_j + p0 μ_j
	GridCostUSD     float64 `json:"gridCostUSD"`     // Σ_j p_j ν_j
	FuelCellCostUSD float64 `json:"fuelCellCostUSD"` // Σ_j p0 μ_j
	CarbonCostUSD   float64 `json:"carbonCostUSD"`   // Σ_j V_j(C_j ν_j)
	EmissionTons    float64 `json:"emissionTons"`    // Σ_j C_j ν_j

	DemandMWh   float64 `json:"demandMWh"`   // Σ_j D_j(load_j) over the 1-hour slot
	GridMWh     float64 `json:"gridMWh"`     // Σ_j ν_j
	FuelCellMWh float64 `json:"fuelCellMWh"` // Σ_j μ_j

	AvgLatencySec float64 `json:"avgLatencySec"` // traffic-weighted average propagation latency

	// FuelCellUtilization is Σμ / Σdemand, the paper's Fig. 8 metric.
	FuelCellUtilization float64 `json:"fuelCellUtilization"`
}

// Evaluate computes the UFC breakdown of an allocation against the
// instance. It does not require the allocation to be exactly feasible; the
// caller is responsible for feasibility (the solver guarantees it).
func Evaluate(inst *Instance, alloc *Allocation) Breakdown {
	var b Breakdown
	n, m := inst.Cloud.N(), inst.Cloud.M()

	var latWeighted, traffic float64
	for i := 0; i < m; i++ {
		lat := inst.Cloud.LatencyRow(i)
		u := inst.Utility.Value(alloc.Lambda[i], lat, inst.Arrivals[i])
		b.UtilityRaw += u
		avg := utility.AverageLatencySec(alloc.Lambda[i], lat, inst.Arrivals[i])
		latWeighted += avg * inst.Arrivals[i]
		traffic += inst.Arrivals[i]
	}
	b.UtilityWeighted = inst.WeightW * b.UtilityRaw
	if traffic > 0 {
		b.AvgLatencySec = latWeighted / traffic
	}

	for j := 0; j < n; j++ {
		b.DemandMWh += inst.DemandMW(j, alloc.DCLoad(j))
		b.GridMWh += alloc.NuMW[j]
		b.FuelCellMWh += alloc.MuMW[j]
		b.GridCostUSD += inst.PriceUSD[j] * alloc.NuMW[j]
		b.FuelCellCostUSD += inst.FuelCellPriceUSD * alloc.MuMW[j]
		emission := inst.CarbonRate[j] * alloc.NuMW[j]
		b.EmissionTons += emission
		b.CarbonCostUSD += inst.EmissionCost[j].Cost(emission)
	}
	b.EnergyCostUSD = b.GridCostUSD + b.FuelCellCostUSD
	b.UFC = b.UtilityWeighted - b.CarbonCostUSD - b.EnergyCostUSD
	if b.DemandMWh > 0 {
		b.FuelCellUtilization = b.FuelCellMWh / b.DemandMWh
	}
	return b
}

// Improvement returns the relative UFC improvement of x over y,
// (UFC_x − UFC_y)/|UFC_y| (the paper's I_hg, I_hf, I_fg metrics). It
// returns 0 when UFC_y is zero.
func Improvement(x, y Breakdown) float64 {
	if y.UFC == 0 {
		return 0
	}
	d := y.UFC
	if d < 0 {
		d = -d
	}
	return (x.UFC - y.UFC) / d
}

// FeasibilityReport quantifies constraint violations of an allocation.
type FeasibilityReport struct {
	MaxLoadBalanceErr   float64 // max_i |Σ_j λ_ij − A_i|
	MaxCapacityExcess   float64 // max_j max(0, Σ_i λ_ij − S_j)
	MaxPowerBalanceErr  float64 // max_j |α_j + β_j Σλ − μ_j − ν_j|
	MaxNegativeVariable float64 // most negative λ/μ/ν entry (as a magnitude)
	MaxFuelCellExcess   float64 // max_j max(0, μ_j − μ_j^max)
}

// Ok reports whether all violations are within tol.
func (r FeasibilityReport) Ok(tol float64) bool {
	return r.MaxLoadBalanceErr <= tol &&
		r.MaxCapacityExcess <= tol &&
		r.MaxPowerBalanceErr <= tol &&
		r.MaxNegativeVariable <= tol &&
		r.MaxFuelCellExcess <= tol
}

// CheckFeasibility measures how far the allocation is from the constraint
// set of problem (3)/(12).
func CheckFeasibility(inst *Instance, alloc *Allocation) FeasibilityReport {
	var r FeasibilityReport
	n, m := inst.Cloud.N(), inst.Cloud.M()
	for i := 0; i < m; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			v := alloc.Lambda[i][j]
			sum += v
			if v < 0 && -v > r.MaxNegativeVariable {
				r.MaxNegativeVariable = -v
			}
		}
		if d := abs(sum - inst.Arrivals[i]); d > r.MaxLoadBalanceErr {
			r.MaxLoadBalanceErr = d
		}
	}
	for j := 0; j < n; j++ {
		dc := inst.Cloud.Datacenters[j]
		load := alloc.DCLoad(j)
		if ex := load - dc.Servers; ex > r.MaxCapacityExcess {
			r.MaxCapacityExcess = ex
		}
		if v := alloc.MuMW[j]; v < 0 && -v > r.MaxNegativeVariable {
			r.MaxNegativeVariable = -v
		}
		if v := alloc.NuMW[j]; v < 0 && -v > r.MaxNegativeVariable {
			r.MaxNegativeVariable = -v
		}
		if ex := alloc.MuMW[j] - dc.FuelCellMaxMW; ex > r.MaxFuelCellExcess {
			r.MaxFuelCellExcess = ex
		}
		bal := inst.DemandMW(j, load) - alloc.MuMW[j] - alloc.NuMW[j]
		if d := abs(bal); d > r.MaxPowerBalanceErr {
			r.MaxPowerBalanceErr = d
		}
	}
	return r
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
