package core

// sparsity is the routing-feasibility mask derived from
// Options.SparsityCutoff: the set of (front-end i, datacenter j) pairs
// whose propagation latency is at most the cutoff. The solver restricts
// every M×N loop — λ-steps, a-steps, dual updates, residuals — to this
// set, so per-iteration work and wire traffic scale with the number of
// feasible pairs instead of M·N. Off-mask variables are identically zero
// for the whole solve, which makes the masked iterate a feasible point of
// the dense problem with the extra constraint λ_ij = a_ij = 0 off-mask.
//
// Both index lists are ascending and share one backing slab each, so the
// mask adds two allocations regardless of M and N.
type sparsity struct {
	rows [][]int32 // per front-end i: feasible datacenter indices j
	cols [][]int32 // per datacenter j: feasible front-end indices i
	nnz  int       // number of feasible pairs
}

// buildSparsity derives the mask from the engine's latency cache. Every
// front-end keeps at least its nearest datacenter (first index on ties),
// so the per-row simplex constraint Σ_j λ_ij = A_i always has a feasible
// support; a datacenter outside every front-end's cutoff simply receives
// no load. The construction reads only lat, so it is deterministic.
func buildSparsity(lat [][]float64, cutoff float64) *sparsity {
	m := len(lat)
	n := 0
	if m > 0 {
		n = len(lat[0])
	}
	sp := &sparsity{
		rows: make([][]int32, m),
		cols: make([][]int32, n),
	}
	// Pass 1: per-row and per-column feasible counts. forced[i] holds the
	// argmin-latency datacenter of a row with no pair under the cutoff,
	// -1 otherwise.
	rowCnt := make([]int, m)
	colCnt := make([]int, n)
	forced := make([]int32, m)
	for i := 0; i < m; i++ {
		row := lat[i]
		cnt, argmin := 0, 0
		for j := 0; j < n; j++ {
			if row[j] < row[argmin] {
				argmin = j
			}
			if row[j] <= cutoff {
				cnt++
			}
		}
		if cnt == 0 {
			// Force the nearest datacenter so the row stays feasible.
			forced[i] = int32(argmin)
			rowCnt[i] = 1
			colCnt[argmin]++
			sp.nnz++
			continue
		}
		forced[i] = -1
		rowCnt[i] = cnt
		sp.nnz += cnt
		for j := 0; j < n; j++ {
			if row[j] <= cutoff {
				colCnt[j]++
			}
		}
	}
	// Pass 2: carve both index lists out of single slabs and fill them in
	// ascending scan order (columns inherit ascending i because rows are
	// visited in order).
	rowBack := make([]int32, sp.nnz)
	colBack := make([]int32, sp.nnz)
	off := 0
	for i, cnt := range rowCnt {
		sp.rows[i] = rowBack[off : off : off+cnt]
		off += cnt
	}
	off = 0
	for j, cnt := range colCnt {
		sp.cols[j] = colBack[off : off : off+cnt]
		off += cnt
	}
	for i := 0; i < m; i++ {
		if j := forced[i]; j >= 0 {
			sp.rows[i] = append(sp.rows[i], j)
			sp.cols[j] = append(sp.cols[j], int32(i))
			continue
		}
		row := lat[i]
		for j := 0; j < n; j++ {
			if row[j] <= cutoff {
				sp.rows[i] = append(sp.rows[i], int32(j))
				sp.cols[j] = append(sp.cols[j], int32(i))
			}
		}
	}
	return sp
}

// Sparse reports whether the engine runs with a routing-feasibility mask
// (Options.SparsityCutoff > 0).
func (e *Engine) Sparse() bool { return e.sp != nil }

// FeasiblePairs returns the number of (front-end, datacenter) pairs the
// solver iterates over: the mask size when sparse, M·N when dense.
func (e *Engine) FeasiblePairs() int {
	if e.sp != nil {
		return e.sp.nnz
	}
	return e.m * e.n
}

// FeasibleCols returns the ascending datacenter indices front-end i may
// route to, or nil when the engine is dense (all N columns feasible). The
// slice is owned by the engine and must not be mutated.
func (e *Engine) FeasibleCols(i int) []int32 {
	if e.sp == nil {
		return nil
	}
	return e.sp.rows[i]
}

// FeasibleRows returns the ascending front-end indices that may route to
// datacenter j, or nil when the engine is dense (all M rows feasible). The
// slice is owned by the engine and must not be mutated.
func (e *Engine) FeasibleRows(j int) []int32 {
	if e.sp == nil {
		return nil
	}
	return e.sp.cols[j]
}
